// End-to-end: an in-process HTTP Ptile server and a streaming client talking
// over a real TCP socket — the networked deployment path that cmd/ptileserver
// and cmd/stream expose as standalone binaries.
package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	if err := run(); err != nil {
		slog.Error("endtoend failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	// Server side: prepare video 2's catalogue.
	p, err := video.ProfileByID(2)
	if err != nil {
		return err
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 16
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		return err
	}
	train, eval, err := ds.SplitTrainEval(12, 7)
	if err != nil {
		return err
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return err
	}
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return err
	}
	srv, err := httpstream.NewServer(map[int]*sim.Catalog{2: cat},
		video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()
	defer func() {
		if err := httpServer.Close(); err != nil {
			slog.Error("server close failed", "err", err)
		}
		<-serveErr // wait for the serve goroutine to exit
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("ptile server listening on %s\n", baseURL)

	// Client side: stream 20 segments shaped to the LTE trace 2 (highly
	// time-compressed so the example finishes quickly).
	_, tr2, err := lte.StandardTraces(120, 99)
	if err != nil {
		return err
	}
	client, err := httpstream.NewClient(httpstream.ClientConfig{
		BaseURL:         baseURL,
		Phone:           power.Pixel3,
		Shape:           tr2,
		TimeCompression: 100,
		MaxSegments:     20,
		UseMPC:          true,
	})
	if err != nil {
		return err
	}
	report, err := client.Stream(2, eval[0])
	if err != nil {
		return err
	}

	fmt.Printf("\nstreamed %d segments over HTTP:\n", len(report.Segments))
	for _, rec := range report.Segments[:5] {
		fmt.Printf("  seg %2d: q%d @ %2.0f fps, %4.0f kB, %.2f Mbps, ptile=%v\n",
			rec.Segment, rec.Quality, rec.FrameRate,
			float64(rec.Bytes)/1e3, rec.ThroughputBps/1e6, rec.FromPtile)
	}
	fmt.Printf("  ... (%d more)\n", len(report.Segments)-5)
	fmt.Printf("\ntotals: %.1f MB downloaded, %.1f J, %d/%d Ptile-served\n",
		float64(report.TotalBytes)/1e6, report.TotalEnergyMJ/1e3,
		report.PtileSegments, len(report.Segments))
	return nil
}
