// Energy comparison: the five streaming schemes across the three measured
// phones and both network conditions — the experiment behind Figs. 9 and 10.
package main

import (
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"

	"ptile360"
)

func main() {
	if err := run(); err != nil {
		slog.Error("energycomparison failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := ptile360.NewSystem(ptile360.Options{
		UsersPerVideo: 20,
		TrainUsers:    16,
		TraceSamples:  300,
		Seed:          42,
	})
	if err != nil {
		return err
	}
	prep, err := sys.PrepareVideo(2)
	if err != nil {
		return err
	}
	fmt.Printf("video %d (%s), %d evaluation users\n\n",
		prep.Profile.ID, prep.Profile.Name, len(prep.EvalUsers))

	schemes := []ptile360.Scheme{
		ptile360.SchemeCtile, ptile360.SchemeFtile, ptile360.SchemeNontile,
		ptile360.SchemePtile, ptile360.SchemeOurs,
	}
	phones := []ptile360.Phone{ptile360.Nexus5X, ptile360.Pixel3, ptile360.GalaxyS20}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phone\ttrace\tCtile\tFtile\tNontile\tPtile\tOurs\tOurs saving")
	for _, phone := range phones {
		for traceID := 1; traceID <= 2; traceID++ {
			row := fmt.Sprintf("%v\t%d", phone, traceID)
			var ctile, ours float64
			for _, scheme := range schemes {
				// Average the per-segment energy over the evaluation users.
				var energy float64
				for idx := range prep.EvalUsers {
					res, err := sys.Stream(prep, idx, scheme, phone, traceID)
					if err != nil {
						return err
					}
					energy += res.Energy.Total() / float64(res.Segments)
				}
				energy /= float64(len(prep.EvalUsers))
				row += fmt.Sprintf("\t%.0f", energy)
				switch scheme {
				case ptile360.SchemeCtile:
					ctile = energy
				case ptile360.SchemeOurs:
					ours = energy
				}
			}
			row += fmt.Sprintf("\t%.0f%%", 100*(1-ours/ctile))
			fmt.Fprintln(w, row)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\n(energy in mJ per one-second segment; paper: Ours saves 49.7% vs Ctile on average)")
	return nil
}
