// Chaos streaming: the endtoend deployment path run twice against the same
// in-process Ptile server — once over a clean transport, once through the
// "chaos" fault profile (latency spikes, 5xx, resets, truncations, dribble).
// The resilient client retries with backoff, degrades down the rung ladder,
// and keeps the session alive; the run prints both sessions side by side with
// the resilience accounting and the injector's fault tally.
package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	if err := run(); err != nil {
		slog.Error("chaosstream failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	// Server side: prepare video 2's catalogue, exactly as endtoend does.
	p, err := video.ProfileByID(2)
	if err != nil {
		return err
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 16
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		return err
	}
	train, eval, err := ds.SplitTrainEval(12, 7)
	if err != nil {
		return err
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return err
	}
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return err
	}
	srv, err := httpstream.NewServer(map[int]*sim.Catalog{2: cat},
		video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()
	defer func() {
		if err := httpServer.Close(); err != nil {
			slog.Error("server close failed", "err", err)
		}
		<-serveErr
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("ptile server listening on %s\n", baseURL)

	// The chaos profile injects ~17%% faults per request. TimeScale compresses
	// its latency spikes and dribble delays so the example finishes quickly;
	// the fast retry policy does the same for the client's backoff waits.
	profile, err := faultinject.Named("chaos")
	if err != nil {
		return err
	}
	profile.TimeScale = 50
	injector, err := faultinject.NewTransport(profile, 1234, nil)
	if err != nil {
		return err
	}
	retry := httpstream.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5}

	baseCfg := httpstream.ClientConfig{
		BaseURL:     baseURL,
		Phone:       power.Pixel3,
		MaxSegments: 25,
		UseMPC:      true,
		Retry:       retry,
	}

	// Session 1: clean transport — the baseline the chaos run degrades from.
	clean, err := stream(baseCfg, eval[0])
	if err != nil {
		return err
	}

	// Session 2: same viewer, same server, faults injected at the transport.
	chaosCfg := baseCfg
	chaosCfg.Transport = injector
	chaosCfg.RetrySeed = 1234
	chaos, err := stream(chaosCfg, eval[0])
	if err != nil {
		return err
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "clean", "chaos")
	row := func(label, format string, a, b any) {
		fmt.Printf("%-22s %12s %12s\n", label, fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	row("segments", "%d", len(clean.Segments), len(chaos.Segments))
	row("downloaded (MB)", "%.1f", float64(clean.TotalBytes)/1e6, float64(chaos.TotalBytes)/1e6)
	row("energy (J)", "%.1f", clean.TotalEnergyMJ/1e3, chaos.TotalEnergyMJ/1e3)
	row("retries", "%d", clean.TotalRetries, chaos.TotalRetries)
	row("degraded segments", "%d", clean.DegradedSegments, chaos.DegradedSegments)
	row("abandoned segments", "%d", clean.AbandonedSegments, chaos.AbandonedSegments)
	row("stalls", "%d", clean.Stalls, chaos.Stalls)
	row("total stall (s)", "%.2f", clean.TotalStallSec, chaos.TotalStallSec)
	fmt.Printf("\ninjected faults: %v\n", injector.Stats())

	fmt.Println("\nchaos-session segments with resilience events:")
	events := 0
	for _, rec := range chaos.Segments {
		if rec.Retries == 0 && rec.DegradeSteps == 0 && !rec.Abandoned && rec.StallSec == 0 {
			continue
		}
		events++
		note := ""
		switch {
		case rec.Abandoned:
			note = "ABANDONED"
		case rec.DegradeSteps > 0:
			note = fmt.Sprintf("degraded -%d", rec.DegradeSteps)
		}
		fmt.Printf("  seg %2d: q%d @ %2.0f fps, %4.0f kB, %d retries, stall %.2fs %s\n",
			rec.Segment, rec.Quality, rec.FrameRate, float64(rec.Bytes)/1e3,
			rec.Retries, rec.StallSec, note)
	}
	if events == 0 {
		fmt.Println("  (none — every segment downloaded on the first attempt)")
	}
	return nil
}

func stream(cfg httpstream.ClientConfig, viewer *headtrace.Trace) (*httpstream.SessionReport, error) {
	client, err := httpstream.NewClient(cfg)
	if err != nil {
		return nil, err
	}
	return client.Stream(2, viewer)
}
