// Ptile analysis: a walkthrough of the paper's Ptile construction pipeline
// (Section IV-A) — clustering viewing centers with Algorithm 1, building the
// popularity tiles, and reporting the coverage statistics behind Figs. 6–8.
package main

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
	"text/tabwriter"

	"ptile360"
)

func main() {
	if err := run(); err != nil {
		slog.Error("ptileanalysis failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := ptile360.NewSystem(ptile360.DefaultOptions())
	if err != nil {
		return err
	}

	// Inspect the constructed catalogue of an exploring video directly.
	prep, err := sys.PrepareVideo(8)
	if err != nil {
		return err
	}
	fmt.Printf("video %d (%s): %d segments\n", prep.Profile.ID, prep.Profile.Name, len(prep.Catalog.Content))

	counts := map[int]int{}
	var coverage float64
	var maxArea float64
	for seg := range prep.Catalog.Ptiles {
		n := len(prep.Catalog.Ptiles[seg])
		if n > 3 {
			n = 3
		}
		counts[n]++
		coverage += prep.Catalog.Coverage[seg]
		for _, pt := range prep.Catalog.Ptiles[seg] {
			if a := pt.Rect.Area(); a > maxArea {
				maxArea = a
			}
		}
	}
	total := float64(len(prep.Catalog.Ptiles))
	fmt.Printf("  segments with 1 Ptile: %.0f%%, 2 Ptiles: %.0f%%, 3+: %.0f%%\n",
		100*float64(counts[1])/total, 100*float64(counts[2])/total, 100*float64(counts[3])/total)
	fmt.Printf("  mean training-user coverage: %.1f%% (paper: >80%% for exploring videos)\n", 100*coverage/total)
	fmt.Printf("  largest Ptile: %.0f%% of the panorama\n\n", 100*maxArea/(360*180))

	// The aggregate experiments behind Figs. 6, 7 and 8 via the experiment
	// registry (quick scale keeps this example fast).
	for _, name := range []string{"fig6", "fig7", "fig8"} {
		tables, err := ptile360.RunExperiment(name, ptile360.QuickScale())
		if err != nil {
			return err
		}
		for _, tbl := range tables {
			printTable(tbl)
		}
	}
	return nil
}

func printTable(tbl ptile360.Table) {
	fmt.Printf("== %s ==\n", tbl.Title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(tbl.Columns, "\t"))
	for _, row := range tbl.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	if err := w.Flush(); err != nil {
		slog.Error("table render failed", "err", err)
	}
	fmt.Println()
}
