// Chaos soak: the server-side overload-protection story end to end. A
// deliberately under-provisioned Ptile server (small admission limit and
// queue, per-client rate limit, circuit breaker) is wrapped around a
// fault-injected tile server and hammered by three kinds of traffic at
// once: a fleet of resilient streaming clients, a request stampede far
// beyond capacity, and a single abusive client bursting past its token
// budget. The run prints the chain's per-endpoint outcome ledger, shows
// that every request reached exactly one terminal outcome, and finishes
// with a signal-style graceful drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/power"
	"ptile360/internal/resilience"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	if err := run(); err != nil {
		slog.Error("chaossoak failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	clients := flag.Int("clients", 12, "concurrent streaming clients")
	segments := flag.Int("segments", 4, "segments per streaming session")
	stampede := flag.Int("stampede", 36, "concurrent one-shot requests in the stampede burst")
	flag.Parse()

	// Server side: video 2's catalogue, as in the other examples.
	p, err := video.ProfileByID(2)
	if err != nil {
		return err
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 14
	ds, err := headtrace.Generate(p, gcfg, 11)
	if err != nil {
		return err
	}
	train, eval, err := ds.SplitTrainEval(10, 3)
	if err != nil {
		return err
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return err
	}
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return err
	}
	inner, err := httpstream.NewServer(map[int]*sim.Catalog{2: cat},
		video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		return err
	}

	// Chaos inside the protection chain: injected latency is served while
	// holding an admission slot, which is what drives the queue overflow.
	profile := faultinject.Profile{
		Name:        "soak-chaos",
		LatencyProb: 0.9, LatencyMin: 400 * time.Millisecond, LatencyMax: 2 * time.Second,
		Error5xxProb: 0.08,
		ResetProb:    0.05,
		TruncateProb: 0.05, TruncateFrac: 0.4,
		TimeScale: 50,
	}
	faulty, err := faultinject.Middleware(profile, 1234, inner)
	if err != nil {
		return err
	}
	breaker := resilience.DefaultBreakerConfig()
	cfg := resilience.Config{
		MaxInFlight:    6,
		MaxQueue:       6,
		QueueTimeout:   150 * time.Millisecond,
		HandlerTimeout: 10 * time.Second,
		RetryAfter:     time.Second,
		RatePerSec:     50,
		Burst:          20,
		Breaker:        &breaker,
		ExemptPaths:    []string{"/healthz"},
	}
	chain, err := resilience.NewChain(cfg, faulty)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           chain,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       10 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- resilience.Serve(ctx, srv, ln, chain, 10*time.Second) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("soak server on %s: N=%d in-flight, Q=%d queued, %g req/s per client (burst %g)\n\n",
		ln.Addr(), cfg.MaxInFlight, cfg.MaxQueue, cfg.RatePerSec, cfg.Burst)

	// Traffic 1 — resilient streaming sessions.
	type outcome struct {
		id     int
		report *httpstream.SessionReport
		err    error
	}
	results := make(chan outcome, *clients)
	var sessions sync.WaitGroup
	for i := 0; i < *clients; i++ {
		sessions.Add(1)
		go func(i int) {
			defer sessions.Done()
			client, err := httpstream.NewClient(httpstream.ClientConfig{
				BaseURL:     baseURL,
				Phone:       power.Pixel3,
				MaxSegments: *segments,
				UseMPC:      true,
				ClientID:    fmt.Sprintf("viewer-%d", i),
				Retry: httpstream.RetryPolicy{
					MaxAttempts: 5, BaseDelay: 2 * time.Millisecond,
					MaxDelay: 40 * time.Millisecond, Jitter: 0.5,
				},
				RetrySeed: int64(i + 1),
			})
			if err != nil {
				results <- outcome{id: i, err: err}
				return
			}
			report, err := client.Stream(2, eval[i%len(eval)])
			results <- outcome{id: i, report: report, err: err}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)

	// Traffic 2 — stampede: one-shot requests far beyond N+Q.
	var burst sync.WaitGroup
	var shed503, retryAfterSeen atomic.Int64
	for i := 0; i < *stampede; i++ {
		burst.Add(1)
		go func(i int) {
			defer burst.Done()
			req, _ := http.NewRequest(http.MethodGet, baseURL+"/manifest?video=2", nil)
			req.Header.Set("X-Client-Id", fmt.Sprintf("stampede-%d", i))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				shed503.Add(1)
				if resp.Header.Get("Retry-After") != "" {
					retryAfterSeen.Add(1)
				}
			}
		}(i)
	}

	// Traffic 3 — abuser: one client ID, concurrent burst past its bucket.
	var limited atomic.Int64
	for i := 0; i < 60; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			req, _ := http.NewRequest(http.MethodGet, baseURL+"/manifest?video=2", nil)
			req.Header.Set("X-Client-Id", "abuser")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				limited.Add(1)
			}
		}()
	}

	burst.Wait()
	sessions.Wait()
	close(results)

	fmt.Println("== streaming sessions ==")
	completed := 0
	for r := range results {
		if r.err != nil {
			fmt.Printf("  viewer-%-2d FAILED: %v\n", r.id, r.err)
			continue
		}
		completed++
		fmt.Printf("  viewer-%-2d %d segments, %d retries, %d abandoned, stall %.2fs\n",
			r.id, len(r.report.Segments), r.report.TotalRetries,
			r.report.AbandonedSegments, r.report.TotalStallSec)
	}
	fmt.Printf("  %d/%d sessions completed under overload\n\n", completed, *clients)

	fmt.Println("== burst traffic ==")
	fmt.Printf("  stampede: %d shed with 503 (%d carried Retry-After)\n", shed503.Load(), retryAfterSeen.Load())
	fmt.Printf("  abuser:   %d of 60 requests answered 429\n\n", limited.Load())

	// Graceful drain, exactly what cmd/ptileserver does on SIGTERM.
	cancel()
	if err := <-serveDone; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	snap := chain.Snapshot()
	fmt.Println("== server outcome ledger (post-drain) ==")
	fmt.Println(snap)
	totals := snap.Totals()
	fmt.Printf("\nterminal outcomes: %d (admitted %d, shed %d, limited %d, broken %d, panicked %d)\n",
		totals.Terminal(), totals.Admitted, totals.Shed, totals.Limited, totals.Broken, totals.Panicked)
	fmt.Println("drained cleanly: no request left without a terminal outcome")
	return nil
}
