// Quickstart: prepare one video, stream it with the paper's algorithm, and
// print the energy/QoE accounting.
package main

import (
	"fmt"
	"log/slog"
	"os"

	"ptile360"
)

func main() {
	if err := run(); err != nil {
		slog.Error("quickstart failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	// A small system: 16 synthetic viewers, 12 of which train the Ptiles.
	sys, err := ptile360.NewSystem(ptile360.Options{
		UsersPerVideo: 16,
		TrainUsers:    12,
		TraceSamples:  300,
		Seed:          42,
	})
	if err != nil {
		return err
	}

	// Prepare video 8 ("Freestyle Skiing"): generates head-movement traces,
	// clusters viewing centers, and constructs the per-segment Ptiles.
	prep, err := sys.PrepareVideo(8)
	if err != nil {
		return err
	}
	fmt.Printf("prepared %q: %d segments, %d evaluation users\n",
		prep.Profile.Name, len(prep.Catalog.Content), len(prep.EvalUsers))

	// Stream with the full energy-efficient QoE-aware algorithm (Ours) on a
	// Pixel 3 over the slower network condition (trace 2).
	res, err := sys.Stream(prep, 0, ptile360.SchemeOurs, ptile360.Pixel3, 2)
	if err != nil {
		return err
	}

	fmt.Printf("\nsession (%v, %v, trace 2):\n", res.Scheme, res.Phone)
	fmt.Printf("  segments        %d\n", res.Segments)
	fmt.Printf("  energy          %.1f J (tx %.1f, decode %.1f, render %.1f)\n",
		res.Energy.Total()/1e3, res.Energy.Tx/1e3, res.Energy.Decode/1e3, res.Energy.Render/1e3)
	fmt.Printf("  QoE             %.1f (quality %.1f, variation %.1f, rebuffer %.1f)\n",
		res.QoE.MeanQ, res.QoE.MeanQ0, res.QoE.MeanVariation, res.QoE.MeanRebuffer)
	fmt.Printf("  mean version    q%.1f @ %.1f fps\n", res.MeanQuality, res.MeanFrameRate)
	fmt.Printf("  Ptile-served    %d/%d segments\n", res.PtileSegments, res.Segments)
	fmt.Printf("  stalls          %d (%.2f s)\n", res.QoE.Stalls, res.QoE.StallSec)

	// Compare against the conventional tile baseline.
	base, err := sys.Stream(prep, 0, ptile360.SchemeCtile, ptile360.Pixel3, 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nvs Ctile: %.0f%% energy saving, %+.0f%% QoE\n",
		100*(1-res.Energy.Total()/base.Energy.Total()),
		100*(res.QoE.MeanQ/base.QoE.MeanQ-1))
	return nil
}
