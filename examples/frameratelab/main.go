// Frameratelab: the mechanics of the paper's frame-rate adaptation
// (Section III-C2) — how view-switching speed and content motion decide
// when frames can be dropped, and what it costs in quality versus saves in
// power.
package main

import (
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"

	"ptile360/internal/power"
	"ptile360/internal/video"
	"ptile360/internal/vmaf"
)

func main() {
	if err := run(); err != nil {
		slog.Error("frameratelab failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	coeffs := vmaf.TableII()
	enc := video.DefaultEncoderConfig()
	pm, err := power.TableI(power.Pixel3)
	if err != nil {
		return err
	}

	fmt.Println("Eq. 4: perceived-quality factor of playing at f instead of 30 fps")
	fmt.Println("alpha = kappa * S_fov / TI   (kappa = 6, TI = 25)")
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "view switching\talpha\tf=27\tf=24\tf=21\tallowed at eps=5%")
	const (
		kappa = 6.0
		ti    = 25.0
	)
	for _, speed := range []float64{2, 5, 10, 20, 45, 120, 240} {
		alpha := kappa * speed / ti
		row := fmt.Sprintf("%.0f°/s\t%.1f", speed, alpha)
		best := "none"
		for _, f := range []float64{27, 24, 21} {
			factor, err := vmaf.FrameRateFactor(alpha, f, 30)
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%.3f", factor)
			if factor >= 0.95 {
				best = fmt.Sprintf("f=%.0f", f)
			}
		}
		fmt.Fprintf(w, "%s\t%s\n", row, best)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nWhat one reduced-frame-rate segment buys (Pixel 3, Ptile at q4):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "fps\tsize (Mbit)\tdecode (mW)\trender (mW)\tQ0 at 45°/s switch")
	sc := video.SegmentContent{SI: 50, TI: 25, Jitter: 1}
	b, err := enc.QoEBitrateMbps(4)
	if err != nil {
		return err
	}
	for _, f := range []float64{30, 27, 24, 21} {
		bits, err := enc.RegionBits(0.38, 4, f, video.KindPtile, 1, sc)
		if err != nil {
			return err
		}
		q, err := coeffs.PerceivedQuality(sc.SI, sc.TI, b, kappa*45, f, 30)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0f\t%.2f\t%.0f\t%.0f\t%.1f\n",
			f, bits/1e6, pm.Decode[power.PtileScheme].At(f), pm.Render.At(f), q)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nDuring fast view switching the viewer's vision is blurred (Section")
	fmt.Println("III-C2), so the 30% frame-rate reduction costs almost no quality while")
	fmt.Println("cutting decode power by ~17% and segment size by ~25%.")
	return nil
}
