// Command ptileserver runs the HTTP Ptile streaming server: it prepares the
// catalogues (head-movement generation, Ptile construction) for the selected
// videos and serves manifests plus synthesized segments behind the
// overload-protection chain (admission control, per-client rate limiting,
// circuit breaking). SIGINT/SIGTERM trigger a graceful drain: the server
// stops admitting, finishes in-flight requests under -drain-timeout, and
// logs the per-endpoint outcome ledger before exiting.
//
// With -metrics-addr a second, unprotected ops listener serves /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof, /debug/spans/*,
// and /healthz.
//
// Usage:
//
//	ptileserver -addr :8360 -videos 2,8 -metrics-addr 127.0.0.1:9360
package main

import (
	"context"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/netem"
	"ptile360/internal/obs"
	"ptile360/internal/ptilelive"
	"ptile360/internal/resilience"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", ":8360", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "ops listener address for /metrics, /debug/pprof, /debug/vars (empty disables)")
		videos      = flag.String("videos", "2,8", "comma-separated Table III video IDs to serve")
		users       = flag.Int("users", 48, "viewers per video (40 train Ptiles)")
		seed        = flag.Int64("seed", 42, "random seed")
		chaos       = flag.String("chaos", "off", "server-side fault profile: off, flaky, lossy, slow, chaos")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for the fault injector's reproducible schedule")
		logCfg      = obs.LogFlags(nil)

		def          = resilience.DefaultConfig()
		maxInFlight  = flag.Int("max-inflight", def.MaxInFlight, "admission limit: concurrently served requests")
		maxQueue     = flag.Int("max-queue", def.MaxQueue, "admission queue slots behind the in-flight limit")
		queueWait    = flag.Duration("queue-wait", def.QueueTimeout, "longest a queued request may wait before a 503")
		handlerLimit = flag.Duration("handler-timeout", def.HandlerTimeout, "cooperative per-request timeout (0 disables)")
		retryAfter   = flag.Duration("retry-after", def.RetryAfter, "Retry-After hint on shed responses")
		rate         = flag.Float64("rate", 0, "per-client requests/second (0 disables rate limiting)")
		burst        = flag.Float64("burst", 50, "per-client token-bucket burst (with -rate)")
		drainWait    = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
		rebuildEvery = flag.Duration("rebuild-interval", 0, "regenerate online Ptiles from served viewport reports and hot-swap the catalogue on this period (0 disables)")
		paceMbps     = flag.Float64("pace-mbps", 0, "paced sender: throttle segment bodies to this rate in Mbit/s instead of bursting (0 disables)")
		tsdbEvery    = flag.Duration("tsdb-interval", time.Second, "in-process TSDB sampling period backing /debug/tsdb and the /slo burn-rate engine (0 disables both)")
		flightSample = flag.Int("flight-sample", 16, "flight recorder samples 1-in-N sessions; dumps surface at /debug/flight (0 disables)")
		spanRing     = flag.Int("span-ring", 0, "per-tracer recent-span ring size (0 keeps the default)")
	)
	flag.Parse()

	logger, err := logCfg.NewLogger(os.Stderr)
	if err != nil {
		// No logger yet to report the bad logging flags through.
		os.Stderr.WriteString("ptileserver: " + err.Error() + "\n")
		return 2
	}

	reg := obs.Default()
	obs.RegisterGoMetrics(reg)

	catalogs := make(map[int]*sim.Catalog)
	for _, field := range strings.Split(*videos, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			logger.Error("bad video id", "video", field)
			return 2
		}
		p, err := video.ProfileByID(id)
		if err != nil {
			logger.Error("unknown video profile", "video", id, "err", err)
			return 2
		}
		logger.Info("preparing video", "video", id, "name", p.Name, "users", *users)
		gcfg := headtrace.DefaultGeneratorConfig()
		gcfg.NumUsers = *users
		ds, err := headtrace.Generate(p, gcfg, *seed)
		if err != nil {
			logger.Error("head-trace generation failed", "video", id, "err", err)
			return 1
		}
		nTrain := *users * 5 / 6
		train, _, err := ds.SplitTrainEval(nTrain, *seed+1)
		if err != nil {
			logger.Error("train/eval split failed", "video", id, "err", err)
			return 1
		}
		ccfg, err := sim.DefaultCatalogConfig()
		if err != nil {
			logger.Error("catalogue config invalid", "err", err)
			return 1
		}
		ccfg.Seed = *seed
		cat, err := sim.BuildCatalog(p, train, ccfg)
		if err != nil {
			logger.Error("catalogue build failed", "video", id, "err", err)
			return 1
		}
		catalogs[id] = cat
	}

	srv, err := httpstream.NewServer(catalogs, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		logger.Error("server construction failed", "err", err)
		return 1
	}
	srv.Instrument(reg, logger)

	if *paceMbps > 0 {
		if err := srv.SetPacing(*paceMbps*1e6, netem.NewPacerMetrics(reg)); err != nil {
			logger.Error("bad pacing rate", "pace_mbps", *paceMbps, "err", err)
			return 2
		}
		logger.Info("paced sender active", "pace_mbps", *paceMbps)
	}

	// The online Ptile pipeline regenerates Ptiles from the viewport centers
	// of served segments and hot-swaps the catalogue on a timer. The loop
	// goroutine is joined on shutdown so the drain is clean.
	var rebuildWG sync.WaitGroup
	rebuildCtx, stopRebuild := context.WithCancel(context.Background())
	defer stopRebuild()
	var pipeline *ptilelive.Pipeline
	if *rebuildEvery > 0 {
		lcfg, err := ptilelive.DefaultConfig()
		if err != nil {
			logger.Error("online pipeline config invalid", "err", err)
			return 1
		}
		lcfg.Registry = reg
		pipeline, err = ptilelive.New(lcfg)
		if err != nil {
			logger.Error("online pipeline construction failed", "err", err)
			return 1
		}
		srv.SetViewportSink(pipeline.IngestTelemetry)
		rebuildWG.Add(1)
		go func() {
			defer rebuildWG.Done()
			err := pipeline.Loop(rebuildCtx, *rebuildEvery, func(videoID int, b ptilelive.Build) {
				base, ok := catalogs[videoID]
				if !ok {
					return
				}
				v := srv.SwapCatalog(pipeline.ApplyToCatalog(base))
				logger.Info("online catalogue published", "video", videoID,
					"build_version", b.Version, "catalog_version", v, "ptiles", b.Ptiles())
			}, func(videoID int, err error) {
				logger.Error("online rebuild failed", "video", videoID, "err", err)
			})
			if err != nil {
				logger.Error("rebuild loop failed", "err", err)
			}
		}()
		logger.Info("online rebuild loop active", "interval", *rebuildEvery)
	}

	// Fault injection (when enabled) sits *inside* the protection chain, so
	// shed requests never consume fault budget and the breaker observes the
	// injected 5xx.
	var handler http.Handler = srv
	profile, err := faultinject.Named(*chaos)
	if err != nil {
		logger.Error("unknown chaos profile", "profile", *chaos, "err", err)
		return 2
	}
	if profile.Enabled() {
		mw, err := faultinject.Middleware(profile, *chaosSeed, srv)
		if err != nil {
			logger.Error("fault middleware failed", "err", err)
			return 1
		}
		handler = mw
		logger.Info("chaos profile active", "profile", profile.Name, "seed", *chaosSeed)
	}

	cfg := def
	cfg.MaxInFlight = *maxInFlight
	cfg.MaxQueue = *maxQueue
	cfg.QueueTimeout = *queueWait
	cfg.HandlerTimeout = *handlerLimit
	cfg.RetryAfter = *retryAfter
	cfg.RatePerSec = *rate
	cfg.Burst = *burst
	cfg.Registry = reg
	cfg.Logger = logger
	chain, err := resilience.NewChain(cfg, handler)
	if err != nil {
		logger.Error("protection chain invalid", "err", err)
		return 2
	}

	if *spanRing > 0 {
		srv.Tracer().SetRingSize(*spanRing)
		chain.Tracer().SetRingSize(*spanRing)
	}

	// Anomaly flight recorder: sampled sessions dump their black box on SLO
	// burn (hooked below); dumps are served as JSONL at /debug/flight.
	var flight *obs.FlightRecorder
	if *flightSample > 0 {
		flight = obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: *flightSample, Registry: reg})
	}

	// In-process TSDB over the registry plus the SLO burn-rate engine:
	// availability (5xx ratio) and request latency objectives evaluated with
	// multi-window multi-burn-rate alerting on every sample tick.
	var db *obs.TSDB
	var slos *obs.SLOEngine
	if *tsdbEvery > 0 {
		db = obs.NewTSDB(reg, obs.TSDBConfig{Resolutions: []obs.Resolution{
			{Step: *tsdbEvery, Slots: 120},
			{Step: 10 * *tsdbEvery, Slots: 90},
			{Step: 60 * *tsdbEvery, Slots: 60},
		}})
		slos, err = obs.NewSLOEngine(db, reg, []obs.Objective{
			{
				Name:        "availability",
				Description: "Non-5xx responses across all serving paths.",
				Kind:        obs.SLOEventRatio,
				Target:      0.99,
				Bad:         []obs.Selector{obs.Sel("httpstream_requests_total", obs.L("code", "5*"))},
				Total:       []obs.Selector{obs.Sel("httpstream_requests_total")},
				Windows:     obs.BurnWindows(*tsdbEvery),
			},
			{
				Name:         "latency",
				Description:  "Requests served under 500 ms.",
				Kind:         obs.SLOLatency,
				Target:       0.95,
				Latency:      obs.Sel("httpstream_request_seconds"),
				ThresholdSec: 0.5,
				Windows:      obs.BurnWindows(*tsdbEvery),
			},
		})
		if err != nil {
			logger.Error("slo engine invalid", "err", err)
			return 2
		}
		slos.OnBurn(func(name string) {
			logger.Warn("slo burning", "slo", name)
			if flight != nil {
				flight.TriggerAll("slo:" + name)
			}
		})
		db.Start()
		defer db.Stop()
	}

	// /healthz reports the live catalogue generation and, with the online
	// pipeline active, how stale its last rebuild is.
	health := obs.NewHealth()
	health.Set("catalog_version", func() any { return srv.CatalogVersion() })
	if pipeline != nil {
		p := pipeline
		health.Set("rebuild_age_seconds", func() any {
			age := p.RebuildAge()
			if age < 0 {
				return -1.0
			}
			return age.Seconds()
		})
	}

	// The ops endpoint listens separately so a scrape answers even while
	// the serving listener is saturated or draining.
	if *metricsAddr != "" {
		mux := obs.NewOpsMuxWith(reg, health)
		mux.Handle("/debug/spans/server", srv.Tracer().Handler())
		mux.Handle("/debug/spans/resilience", chain.Tracer().Handler())
		mux.Handle("/debug/spans", obs.NewSpanHub(srv.Tracer(), chain.Tracer()).Handler())
		if db != nil {
			mux.Handle("/debug/tsdb", db.Handler())
			mux.Handle("/slo", slos.Handler())
		}
		if flight != nil {
			mux.Handle("/debug/flight", flight.Handler())
		}
		ops, err := obs.StartOpsMux(*metricsAddr, mux, logger)
		if err != nil {
			logger.Error("ops listener failed", "addr", *metricsAddr, "err", err)
			return 1
		}
		defer ops.Close()
	}

	// The flight middleware wraps the whole chain so shed 503s and breaker
	// rejections land in the black box alongside served segments.
	var serveHandler http.Handler = chain
	if flight != nil {
		serveHandler = httpstream.FlightMiddleware(flight, chain)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           serveHandler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	logger.Info("serving", "videos", len(catalogs), "addr", *addr,
		"max_inflight", *maxInFlight, "max_queue", *maxQueue, "rate_per_sec", *rate)
	err = resilience.Serve(ctx, httpServer, nil, chain, *drainWait)
	stopRebuild()
	rebuildWG.Wait()
	logger.Info("final outcome ledger")
	os.Stderr.WriteString(chain.Snapshot().String() + "\n")
	if err != nil {
		logger.Error("serve failed", "err", err)
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}
