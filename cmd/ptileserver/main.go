// Command ptileserver runs the HTTP Ptile streaming server: it prepares the
// catalogues (head-movement generation, Ptile construction) for the selected
// videos and serves manifests plus synthesized segments behind the
// overload-protection chain (admission control, per-client rate limiting,
// circuit breaking). SIGINT/SIGTERM trigger a graceful drain: the server
// stops admitting, finishes in-flight requests under -drain-timeout, and
// prints the per-endpoint outcome ledger before exiting.
//
// Usage:
//
//	ptileserver -addr :8360 -videos 2,8
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/resilience"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8360", "listen address")
		videos    = flag.String("videos", "2,8", "comma-separated Table III video IDs to serve")
		users     = flag.Int("users", 48, "viewers per video (40 train Ptiles)")
		seed      = flag.Int64("seed", 42, "random seed")
		chaos     = flag.String("chaos", "off", "server-side fault profile: off, flaky, lossy, slow, chaos")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the fault injector's reproducible schedule")

		def          = resilience.DefaultConfig()
		maxInFlight  = flag.Int("max-inflight", def.MaxInFlight, "admission limit: concurrently served requests")
		maxQueue     = flag.Int("max-queue", def.MaxQueue, "admission queue slots behind the in-flight limit")
		queueWait    = flag.Duration("queue-wait", def.QueueTimeout, "longest a queued request may wait before a 503")
		handlerLimit = flag.Duration("handler-timeout", def.HandlerTimeout, "cooperative per-request timeout (0 disables)")
		retryAfter   = flag.Duration("retry-after", def.RetryAfter, "Retry-After hint on shed responses")
		rate         = flag.Float64("rate", 0, "per-client requests/second (0 disables rate limiting)")
		burst        = flag.Float64("burst", 50, "per-client token-bucket burst (with -rate)")
		drainWait    = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	)
	flag.Parse()

	catalogs := make(map[int]*sim.Catalog)
	for _, field := range strings.Split(*videos, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: bad video id %q\n", field)
			return 2
		}
		p, err := video.ProfileByID(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 2
		}
		fmt.Printf("preparing video %d (%s)...\n", id, p.Name)
		gcfg := headtrace.DefaultGeneratorConfig()
		gcfg.NumUsers = *users
		ds, err := headtrace.Generate(p, gcfg, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		nTrain := *users * 5 / 6
		train, _, err := ds.SplitTrainEval(nTrain, *seed+1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		ccfg, err := sim.DefaultCatalogConfig()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		ccfg.Seed = *seed
		cat, err := sim.BuildCatalog(p, train, ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		catalogs[id] = cat
	}

	srv, err := httpstream.NewServer(catalogs, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 1
	}

	// Fault injection (when enabled) sits *inside* the protection chain, so
	// shed requests never consume fault budget and the breaker observes the
	// injected 5xx.
	var handler http.Handler = srv
	profile, err := faultinject.Named(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 2
	}
	if profile.Enabled() {
		mw, err := faultinject.Middleware(profile, *chaosSeed, srv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		handler = mw
		fmt.Printf("chaos profile %q (seed %d) active on all responses\n", profile.Name, *chaosSeed)
	}

	cfg := def
	cfg.MaxInFlight = *maxInFlight
	cfg.MaxQueue = *maxQueue
	cfg.QueueTimeout = *queueWait
	cfg.HandlerTimeout = *handlerLimit
	cfg.RetryAfter = *retryAfter
	cfg.RatePerSec = *rate
	cfg.Burst = *burst
	chain, err := resilience.NewChain(cfg, handler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 2
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           chain,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving %d videos on %s (admission %d+%d queued", len(catalogs), *addr, *maxInFlight, *maxQueue)
	if *rate > 0 {
		fmt.Printf(", %g req/s per client", *rate)
	}
	fmt.Println("); SIGINT/SIGTERM drains gracefully")
	err = resilience.Serve(ctx, httpServer, nil, chain, *drainWait)
	fmt.Println("\nfinal outcome ledger:")
	fmt.Println(chain.Snapshot())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 1
	}
	fmt.Println("drained cleanly")
	return 0
}
