// Command ptileserver runs the HTTP Ptile streaming server: it prepares the
// catalogues (head-movement generation, Ptile construction) for the selected
// videos and serves manifests plus synthesized segments.
//
// Usage:
//
//	ptileserver -addr :8360 -videos 2,8
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8360", "listen address")
		videos    = flag.String("videos", "2,8", "comma-separated Table III video IDs to serve")
		users     = flag.Int("users", 48, "viewers per video (40 train Ptiles)")
		seed      = flag.Int64("seed", 42, "random seed")
		chaos     = flag.String("chaos", "off", "server-side fault profile: off, flaky, lossy, slow, chaos")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the fault injector's reproducible schedule")
	)
	flag.Parse()

	catalogs := make(map[int]*sim.Catalog)
	for _, field := range strings.Split(*videos, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: bad video id %q\n", field)
			return 2
		}
		p, err := video.ProfileByID(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 2
		}
		fmt.Printf("preparing video %d (%s)...\n", id, p.Name)
		gcfg := headtrace.DefaultGeneratorConfig()
		gcfg.NumUsers = *users
		ds, err := headtrace.Generate(p, gcfg, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		nTrain := *users * 5 / 6
		train, _, err := ds.SplitTrainEval(nTrain, *seed+1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		ccfg, err := sim.DefaultCatalogConfig()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		ccfg.Seed = *seed
		cat, err := sim.BuildCatalog(p, train, ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		catalogs[id] = cat
	}

	srv, err := httpstream.NewServer(catalogs, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 1
	}
	var handler http.Handler = srv
	profile, err := faultinject.Named(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 2
	}
	if profile.Enabled() {
		mw, err := faultinject.Middleware(profile, *chaosSeed, srv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
			return 1
		}
		handler = mw
		fmt.Printf("chaos profile %q (seed %d) active on all responses\n", profile.Name, *chaosSeed)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("serving %d videos on %s\n", len(catalogs), *addr)
	if err := httpServer.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "ptileserver: %v\n", err)
		return 1
	}
	return 0
}
