// Command stream drives a full playback session against a ptileserver: it
// generates a viewer, fetches the manifest, and streams segments with the
// paper's controller, printing per-segment accounting.
//
// A chaos run injects client-side faults from a named profile and reports
// the resilience accounting (retries, degradations, abandons, stalls):
//
//	stream -url http://127.0.0.1:8360 -video 8 -segments 30 -shaped
//	stream -url http://127.0.0.1:8360 -video 8 -faults chaos -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseURL   = flag.String("url", "http://127.0.0.1:8360", "ptileserver address")
		videoID   = flag.Int("video", 8, "Table III video ID")
		segments  = flag.Int("segments", 30, "number of segments to stream (0 = all)")
		shaped    = flag.Bool("shaped", false, "pace downloads against the LTE trace 2")
		compress  = flag.Float64("compress", 20, "time compression for shaping")
		useMPC    = flag.Bool("mpc", true, "use the energy-minimizing MPC controller")
		seed      = flag.Int64("seed", 7, "viewer seed")
		csvOut    = flag.String("csv", "", "also write per-segment records as CSV to this file")
		faults    = flag.String("faults", "off", "fault profile injected at the client transport: off, flaky, lossy, slow, chaos")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault injector's reproducible schedule")
		timeout   = flag.Duration("timeout", httpstream.DefaultRequestTimeout, "per-request timeout")
		retries   = flag.Int("retries", 0, "attempts per quality rung (0 = default policy)")
	)
	flag.Parse()

	p, err := video.ProfileByID(*videoID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 2
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 1
	ds, err := headtrace.Generate(p, gcfg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 1
	}
	viewer := ds.Traces[0]

	cfg := httpstream.ClientConfig{
		BaseURL:         *baseURL,
		Phone:           power.Pixel3,
		MaxSegments:     *segments,
		TimeCompression: *compress,
		UseMPC:          *useMPC,
		RequestTimeout:  *timeout,
		RetrySeed:       *faultSeed,
	}
	if *retries > 0 {
		rp := httpstream.DefaultRetryPolicy()
		rp.MaxAttempts = *retries
		cfg.Retry = rp
	}
	if *shaped {
		_, tr2, err := lte.StandardTraces(400, 99)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		cfg.Shape = tr2
	}
	var injector *faultinject.Transport
	profile, err := faultinject.Named(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 2
	}
	if profile.Enabled() {
		injector, err = faultinject.NewTransport(profile, *faultSeed, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		cfg.Transport = injector
		fmt.Printf("fault profile %q (seed %d) active on the client transport\n", profile.Name, *faultSeed)
	}
	client, err := httpstream.NewClient(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 1
	}
	start := time.Now()
	report, err := client.Stream(*videoID, viewer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 1
	}

	fmt.Printf("seg\tq\tfps\tkB\tMbps\tptile\tenergy(mJ)\tretries\tnote\n")
	for _, rec := range report.Segments {
		note := ""
		switch {
		case rec.Abandoned:
			note = "ABANDONED"
		case rec.DegradeSteps > 0:
			note = fmt.Sprintf("degraded -%d", rec.DegradeSteps)
		case rec.StallSec > 0:
			note = fmt.Sprintf("stall %.2fs", rec.StallSec)
		}
		fmt.Printf("%d\tq%d\t%.0f\t%.0f\t%.2f\t%v\t%.0f\t%d\t%s\n",
			rec.Segment, rec.Quality, rec.FrameRate,
			float64(rec.Bytes)/1e3, rec.ThroughputBps/1e6, rec.FromPtile, rec.EnergyMJ, rec.Retries, note)
	}
	fmt.Printf("\ntotal: %.1f MB, %.1f J, %d/%d segments from Ptiles (%.1fs wall)\n",
		float64(report.TotalBytes)/1e6, report.TotalEnergyMJ/1e3,
		report.PtileSegments, len(report.Segments), time.Since(start).Seconds())
	fmt.Printf("resilience: %d retries, %d degraded, %d abandoned, %d stalls (%.2fs total stall)\n",
		report.TotalRetries, report.DegradedSegments, report.AbandonedSegments,
		report.Stalls, report.TotalStallSec)
	if injector != nil {
		fmt.Printf("injected faults: %v\n", injector.Stats())
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		if err := sim.WriteSegmentsCSV(f, report.SegmentTraces()); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
	return 0
}
