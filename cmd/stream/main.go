// Command stream drives a full playback session against a ptileserver: it
// generates a viewer, fetches the manifest, and streams segments with the
// paper's controller, printing per-segment accounting.
//
// Usage:
//
//	stream -url http://127.0.0.1:8360 -video 8 -segments 30 -shaped
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseURL  = flag.String("url", "http://127.0.0.1:8360", "ptileserver address")
		videoID  = flag.Int("video", 8, "Table III video ID")
		segments = flag.Int("segments", 30, "number of segments to stream (0 = all)")
		shaped   = flag.Bool("shaped", false, "pace downloads against the LTE trace 2")
		compress = flag.Float64("compress", 20, "time compression for shaping")
		useMPC   = flag.Bool("mpc", true, "use the energy-minimizing MPC controller")
		seed     = flag.Int64("seed", 7, "viewer seed")
		csvOut   = flag.String("csv", "", "also write per-segment records as CSV to this file")
	)
	flag.Parse()

	p, err := video.ProfileByID(*videoID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 2
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 1
	ds, err := headtrace.Generate(p, gcfg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 1
	}
	viewer := ds.Traces[0]

	cfg := httpstream.ClientConfig{
		BaseURL:         *baseURL,
		Phone:           power.Pixel3,
		MaxSegments:     *segments,
		TimeCompression: *compress,
		UseMPC:          *useMPC,
	}
	if *shaped {
		_, tr2, err := lte.StandardTraces(400, 99)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		cfg.Shape = tr2
	}
	client, err := httpstream.NewClient(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 1
	}
	report, err := client.Stream(*videoID, viewer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		return 1
	}

	fmt.Printf("seg\tq\tfps\tkB\tMbps\tptile\tenergy(mJ)\n")
	for _, rec := range report.Segments {
		fmt.Printf("%d\tq%d\t%.0f\t%.0f\t%.2f\t%v\t%.0f\n",
			rec.Segment, rec.Quality, rec.FrameRate,
			float64(rec.Bytes)/1e3, rec.ThroughputBps/1e6, rec.FromPtile, rec.EnergyMJ)
	}
	fmt.Printf("\ntotal: %.1f MB, %.1f J, %d/%d segments from Ptiles\n",
		float64(report.TotalBytes)/1e6, report.TotalEnergyMJ/1e3,
		report.PtileSegments, len(report.Segments))

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		if err := writeRecordsCSV(f, report); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
	return 0
}

func writeRecordsCSV(w io.Writer, report *httpstream.SessionReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"segment", "quality", "fps", "bytes", "throughput_bps", "from_ptile", "energy_mj"}); err != nil {
		return err
	}
	for _, rec := range report.Segments {
		row := []string{
			strconv.Itoa(rec.Segment),
			strconv.Itoa(int(rec.Quality)),
			strconv.FormatFloat(rec.FrameRate, 'f', 0, 64),
			strconv.FormatInt(rec.Bytes, 10),
			strconv.FormatFloat(rec.ThroughputBps, 'f', 0, 64),
			strconv.FormatBool(rec.FromPtile),
			strconv.FormatFloat(rec.EnergyMJ, 'f', 1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
