// Command stream drives a full playback session against a ptileserver: it
// generates a viewer, fetches the manifest, and streams segments with the
// paper's controller, emitting one JSON telemetry record per segment (the
// paper's headline series: bitrate, frame rate, stall, QoE loss, energy)
// and logging a periodic session summary.
//
// A chaos run injects client-side faults from a named profile and reports
// the resilience accounting (retries, degradations, abandons, stalls):
//
//	stream -url http://127.0.0.1:8360 -video 8 -segments 30 -shaped
//	stream -url http://127.0.0.1:8360 -video 8 -faults chaos -fault-seed 7
//	stream -telemetry session.jsonl -session-json session.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/headtrace"
	"ptile360/internal/httpstream"
	"ptile360/internal/lte"
	"ptile360/internal/netem"
	"ptile360/internal/obs"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseURL      = flag.String("url", "http://127.0.0.1:8360", "ptileserver address")
		videoID      = flag.Int("video", 8, "Table III video ID")
		segments     = flag.Int("segments", 30, "number of segments to stream (0 = all)")
		shaped       = flag.Bool("shaped", false, "pace downloads against the LTE trace 2")
		netSpec      = flag.String("net", "off", "packet-level network model: off, or netem:<profile[,key=val...]> (profiles: "+strings.Join(netem.ProfileNames(), ", ")+")")
		netPace      = flag.Float64("net-pace", 0, "netem paced-sender factor: transmit at factor x segment bitrate instead of bursting (0 disables; with -net)")
		estimator    = flag.String("estimator", "harmonic", "bandwidth estimator: harmonic, last-sample, ewma, moving-average, delay-gradient")
		compress     = flag.Float64("compress", 20, "time compression for shaping")
		useMPC       = flag.Bool("mpc", true, "use the energy-minimizing MPC controller")
		seed         = flag.Int64("seed", 7, "viewer seed")
		csvOut       = flag.String("csv", "", "also write per-segment records as CSV to this file")
		faults       = flag.String("faults", "off", "fault profile injected at the client transport: off, flaky, lossy, slow, chaos")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for the fault injector's reproducible schedule")
		timeout      = flag.Duration("timeout", httpstream.DefaultRequestTimeout, "per-request timeout")
		retries      = flag.Int("retries", 0, "attempts per quality rung (0 = default policy)")
		telemetryOut = flag.String("telemetry", "-", "write per-segment JSON telemetry records to this file (\"-\" = stdout, empty disables)")
		sessionOut   = flag.String("session-json", "", "write the full session report as JSON to this file")
		flightOut    = flag.String("flight", "", "record the session in a flight recorder and write its anomaly dumps as JSONL to this file (\"-\" = stderr, empty disables)")
		summaryEvery = flag.Int("summary-every", 10, "log a session summary every N segments (0 disables)")
		logCfg       = obs.LogFlags(nil)
	)
	flag.Parse()

	logger, err := logCfg.NewLogger(os.Stderr)
	if err != nil {
		os.Stderr.WriteString("stream: " + err.Error() + "\n")
		return 2
	}

	p, err := video.ProfileByID(*videoID)
	if err != nil {
		logger.Error("unknown video profile", "video", *videoID, "err", err)
		return 2
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 1
	ds, err := headtrace.Generate(p, gcfg, *seed)
	if err != nil {
		logger.Error("head-trace generation failed", "err", err)
		return 1
	}
	viewer := ds.Traces[0]

	// Telemetry sink: JSONL records as the session progresses.
	var telemetryW io.Writer
	switch *telemetryOut {
	case "":
	case "-":
		telemetryW = os.Stdout
	default:
		f, err := os.Create(*telemetryOut)
		if err != nil {
			logger.Error("telemetry file", "path", *telemetryOut, "err", err)
			return 1
		}
		defer f.Close()
		telemetryW = f
	}

	reg := obs.Default()
	cfg := httpstream.ClientConfig{
		BaseURL:         *baseURL,
		Phone:           power.Pixel3,
		MaxSegments:     *segments,
		TimeCompression: *compress,
		UseMPC:          *useMPC,
		RequestTimeout:  *timeout,
		RetrySeed:       *faultSeed,
		ClientID:        fmt.Sprintf("stream-%d", *seed),
		Metrics:         reg,
	}
	// Flight recorder: SampleEvery 1 so this single session is always
	// recorded; dumps (abandon, stall burst) are written after the run.
	var flight *obs.FlightRecorder
	if *flightOut != "" {
		flight = obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 1, Registry: reg})
		cfg.Flight = flight
	}
	enc := json.NewEncoder(telemetryW)
	if telemetryW == nil {
		enc = nil
	}
	var sum sessionAccumulator
	cfg.Telemetry = func(tr httpstream.TelemetryRecord) {
		sum.add(tr)
		if enc != nil {
			if err := enc.Encode(tr); err != nil {
				logger.Error("telemetry write failed", "err", err)
			}
		}
		if *summaryEvery > 0 && sum.segments%*summaryEvery == 0 {
			sum.log(logger)
		}
	}
	if *retries > 0 {
		rp := httpstream.DefaultRetryPolicy()
		rp.MaxAttempts = *retries
		cfg.Retry = rp
	}
	kind, err := predict.ParseEstimatorKind(*estimator)
	if err != nil {
		logger.Error("bad estimator", "err", err)
		return 2
	}
	cfg.Estimator = kind
	if *shaped {
		_, tr2, err := lte.StandardTraces(400, 99)
		if err != nil {
			logger.Error("LTE trace generation failed", "err", err)
			return 1
		}
		cfg.Shape = tr2
	}
	if *netSpec != "" && *netSpec != "off" {
		if *shaped {
			logger.Error("-shaped and -net are mutually exclusive bandwidth models")
			return 2
		}
		spec, ok := strings.CutPrefix(*netSpec, "netem:")
		if !ok {
			logger.Error("bad -net value: want off or netem:<profile>", "net", *netSpec)
			return 2
		}
		prof, err := netem.ParseProfile(spec)
		if err != nil {
			logger.Error("bad netem profile", "net", spec, "err", err)
			return 2
		}
		pn, err := netem.NewSessionNet(netem.SessionConfig{
			Profile: prof,
			Seed:    *seed,
			// The catalogue serves 1 s segments (the paper's L); the paced
			// sending rate is PaceFactor x sizeBits/L.
			SegmentSec: 1,
			PaceFactor: *netPace,
			Metrics:    netem.NewMetrics(reg, prof.Name),
		})
		if err != nil {
			logger.Error("netem path construction failed", "err", err)
			return 1
		}
		cfg.Net = pn
		logger.Info("packet-level network emulation active",
			"profile", prof.Name, "estimator", kind.String(), "pace_factor", *netPace)
	}
	var injector *faultinject.Transport
	profile, err := faultinject.Named(*faults)
	if err != nil {
		logger.Error("unknown fault profile", "profile", *faults, "err", err)
		return 2
	}
	if profile.Enabled() {
		injector, err = faultinject.NewTransport(profile, *faultSeed, nil)
		if err != nil {
			logger.Error("fault transport failed", "err", err)
			return 1
		}
		cfg.Transport = injector
		logger.Info("fault profile active", "profile", profile.Name, "seed", *faultSeed)
	}
	client, err := httpstream.NewClient(cfg)
	if err != nil {
		logger.Error("client construction failed", "err", err)
		return 1
	}
	start := time.Now()
	report, err := client.Stream(*videoID, viewer)
	if err != nil {
		logger.Error("stream failed", "video", *videoID, "err", err)
		return 1
	}

	meanLoss := 0.0
	if len(report.Segments) > 0 {
		meanLoss = report.TotalQoELoss / float64(len(report.Segments))
	}
	logger.Info("session complete",
		"video", *videoID,
		"segments", len(report.Segments),
		"mb", float64(report.TotalBytes)/1e6,
		"energy_j", report.TotalEnergyMJ/1e3,
		"ptile_segments", report.PtileSegments,
		"qoe_loss_mean", meanLoss,
		"retries", report.TotalRetries,
		"degraded", report.DegradedSegments,
		"abandoned", report.AbandonedSegments,
		"stalls", report.Stalls,
		"stall_sec", report.TotalStallSec,
		"wall_sec", time.Since(start).Seconds())
	if injector != nil {
		logger.Info("injected faults", "stats", fmt.Sprint(injector.Stats()))
	}

	if *sessionOut != "" {
		if err := writeJSON(*sessionOut, report); err != nil {
			logger.Error("session dump failed", "path", *sessionOut, "err", err)
			return 1
		}
		logger.Info("wrote session dump", "path", *sessionOut)
	}
	if *csvOut != "" {
		if err := writeCSV(*csvOut, report); err != nil {
			logger.Error("CSV write failed", "path", *csvOut, "err", err)
			return 1
		}
		logger.Info("wrote CSV", "path", *csvOut)
	}
	if flight != nil {
		var w io.Writer = os.Stderr
		if *flightOut != "-" {
			f, err := os.Create(*flightOut)
			if err != nil {
				logger.Error("flight file", "path", *flightOut, "err", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := flight.WriteJSONL(w); err != nil {
			logger.Error("flight dump failed", "err", err)
			return 1
		}
		logger.Info("wrote flight dumps", "path", *flightOut, "dumps", len(flight.Dumps()))
	}
	return 0
}

// sessionAccumulator aggregates telemetry for the periodic summary log.
type sessionAccumulator struct {
	segments  int
	bytes     int64
	energyMJ  float64
	stallSec  float64
	qoeLoss   float64
	retries   int
	abandoned int
}

func (s *sessionAccumulator) add(tr httpstream.TelemetryRecord) {
	s.segments++
	s.bytes += tr.Bytes
	s.energyMJ += tr.EnergyMJ
	s.stallSec += tr.StallSec
	s.qoeLoss += tr.QoELoss
	s.retries += tr.Retries
	if tr.Abandoned {
		s.abandoned++
	}
}

func (s *sessionAccumulator) log(logger *slog.Logger) {
	logger.Info("session progress",
		"segments", s.segments,
		"mb", float64(s.bytes)/1e6,
		"energy_j", s.energyMJ/1e3,
		"stall_sec", s.stallSec,
		"qoe_loss_mean", s.qoeLoss/float64(s.segments),
		"retries", s.retries,
		"abandoned", s.abandoned)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(path string, report *httpstream.SessionReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.WriteSegmentsCSV(f, report.SegmentTraces()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
