// Command benchbudget enforces the CI performance budget: it compares a
// fresh scripts/bench.sh record against the committed baseline and fails
// when any benchmark's cost regressed past tolerance.
//
// Usage:
//
//	go run ./cmd/benchbudget -baseline BENCH_2026-08-08.json -fresh /tmp/bench-fresh.json
//
// Benchmarks are matched by (name, GOMAXPROCS). Fresh series absent from
// the baseline — freshly added benchmarks — are reported as NEW and skipped,
// never failed: they pick up a budget once a BENCH_*.json containing them is
// committed. Baseline-only series are ignored (use -allow-unmatched to also
// tolerate zero matches, e.g. while bootstrapping a new baseline file). Tolerances are fractions
// of the baseline value; a negative tolerance disables that metric.
// allocs/op is the hard, machine-independent budget — ns/op defaults loose
// because wall time shifts between machines.
//
// Override knob: setting BENCH_BUDGET_SKIP=1 in the environment skips the
// gate entirely (exit 0 with a warning). Use it for commits that knowingly
// trade benchmark cost for something else; the next committed BENCH_*.json
// then becomes the new baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"ptile360/internal/benchrecord"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseline       = flag.String("baseline", "", "committed baseline BENCH_*.json (JSONL)")
		fresh          = flag.String("fresh", "", "fresh bench.sh record to check (JSONL)")
		nsTol          = flag.Float64("ns-tol", 0.10, "ns/op regression tolerance as a fraction of baseline (negative disables)")
		allocTol       = flag.Float64("alloc-tol", 0.10, "allocs/op regression tolerance as a fraction of baseline (negative disables)")
		allowUnmatched = flag.Bool("allow-unmatched", false, "exit 0 even when no benchmark series matched the baseline")
	)
	flag.Parse()

	if os.Getenv("BENCH_BUDGET_SKIP") == "1" {
		fmt.Fprintln(os.Stderr, "benchbudget: BENCH_BUDGET_SKIP=1 — budget gate skipped")
		return 0
	}
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchbudget: -baseline and -fresh are required")
		return 2
	}
	base, err := benchrecord.ParseFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchbudget: baseline: %v\n", err)
		return 2
	}
	cand, err := benchrecord.ParseFile(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchbudget: fresh: %v\n", err)
		return 2
	}
	viols, matched := benchrecord.Compare(base, cand, benchrecord.Budget{
		NsTolerance:    *nsTol,
		AllocTolerance: *allocTol,
	})
	fmt.Fprintf(os.Stderr, "benchbudget: %d series compared against %s (ns-tol %.2f, alloc-tol %.2f)\n",
		matched, *baseline, *nsTol, *allocTol)
	// New benchmarks have no budget yet: report them so the skip is visible,
	// then let them through — the next committed baseline picks them up.
	for _, k := range benchrecord.Unmatched(base, cand) {
		fmt.Fprintf(os.Stderr, "  NEW  %s — not in baseline, skipped (baselines on next BENCH_*.json)\n", k)
	}
	if matched == 0 && !*allowUnmatched {
		fmt.Fprintln(os.Stderr, "benchbudget: no benchmark series matched the baseline — "+
			"check the regex/GOMAXPROCS, or pass -allow-unmatched when bootstrapping")
		return 1
	}
	if len(viols) > 0 {
		fmt.Fprintf(os.Stderr, "benchbudget: %d budget violation(s):\n", len(viols))
		for _, v := range viols {
			fmt.Fprintf(os.Stderr, "  FAIL %s\n", v)
		}
		fmt.Fprintln(os.Stderr, "benchbudget: set BENCH_BUDGET_SKIP=1 to override for an intentional trade-off")
		return 1
	}
	fmt.Fprintln(os.Stderr, "benchbudget: within budget")
	return 0
}
