// Command repro regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	repro -exp fig9            # one experiment at full scale
//	repro -exp all -scale quick
//	repro -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"text/tabwriter"

	"ptile360"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expName    = flag.String("exp", "all", "experiment to run (e.g. table1, fig9, all)")
		scaleName  = flag.String("scale", "full", "workload scale: full or quick")
		seed       = flag.Int64("seed", 42, "random seed")
		list       = flag.Bool("list", false, "list available experiments and exit")
		csvDir     = flag.String("csvdir", "", "also write each table as CSV into this directory")
		workers    = flag.Int("workers", 0, "worker-pool cap for the experiment engine (0 = GOMAXPROCS); outputs are identical for any value")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range ptile360.ExperimentNames() {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("  all")
		return 0
	}

	ptile360.SetMaxWorkers(*workers)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "repro: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: trace: %v\n", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "repro: trace: %v\n", err)
			return 1
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "repro: memprofile: %v\n", err)
			}
		}()
	}

	var scale ptile360.Scale
	switch strings.ToLower(*scaleName) {
	case "full":
		scale = ptile360.FullScale()
	case "quick":
		scale = ptile360.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q (want full or quick)\n", *scaleName)
		return 2
	}
	scale.Seed = *seed

	tables, err := ptile360.RunExperiment(*expName, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 1
	}
	for i, tbl := range tables {
		printTable(tbl)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, i, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

func writeCSV(dir string, idx int, tbl ptile360.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("table_%02d.csv", idx))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := ptile360.WriteTableCSV(f, tbl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printTable(tbl ptile360.Table) {
	fmt.Printf("\n== %s ==\n", tbl.Title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(tbl.Columns, "\t"))
	for _, row := range tbl.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "repro: render: %v\n", err)
	}
}
