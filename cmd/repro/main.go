// Command repro regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Long sweeps log a
// periodic progress summary, can expose the experiment-engine metrics on an
// ops endpoint (-metrics-addr), and can dump a machine-readable run summary
// (-run-json).
//
// Usage:
//
//	repro -exp fig9            # one experiment at full scale
//	repro -exp all -scale quick -metrics-addr 127.0.0.1:9361
//	repro -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"text/tabwriter"
	"time"

	"ptile360"
	"ptile360/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expName      = flag.String("exp", "all", "experiment to run (e.g. table1, fig9, all)")
		scaleName    = flag.String("scale", "full", "workload scale: full or quick")
		seed         = flag.Int64("seed", 42, "random seed")
		list         = flag.Bool("list", false, "list available experiments and exit")
		csvDir       = flag.String("csvdir", "", "also write each table as CSV into this directory")
		workers      = flag.Int("workers", 0, "worker-pool cap for the experiment engine (0 = GOMAXPROCS); outputs are identical for any value")
		netSpec      = flag.String("net", "", "restrict the netem experiment to one packet-level profile: netem:<profile[,key=val...]> (empty sweeps the default profiles)")
		metricsAddr  = flag.String("metrics-addr", "", "ops listener address for /metrics, /debug/pprof, /debug/vars during the run (empty disables)")
		runJSON      = flag.String("run-json", "", "write a JSON run summary (experiments, tables, wall time) to this file")
		summaryEvery = flag.Duration("summary-every", 30*time.Second, "log a sweep progress summary at this interval (0 disables)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile    = flag.String("trace", "", "write a runtime execution trace to this file")
		logCfg       = obs.LogFlags(nil)
	)
	flag.Parse()

	logger, err := logCfg.NewLogger(os.Stderr)
	if err != nil {
		os.Stderr.WriteString("repro: " + err.Error() + "\n")
		return 2
	}

	if *list {
		fmt.Println("available experiments:")
		for _, name := range ptile360.ExperimentNames() {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("  all")
		return 0
	}

	ptile360.SetMaxWorkers(*workers)

	if *netSpec != "" {
		spec, ok := strings.CutPrefix(*netSpec, "netem:")
		if !ok {
			logger.Error("bad -net value: want netem:<profile[,key=val...]>", "net", *netSpec)
			return 2
		}
		if err := ptile360.SetNetemProfile(spec); err != nil {
			logger.Error("bad netem profile", "net", spec, "err", err)
			return 2
		}
	}

	reg := obs.Default()
	ptile360.RegisterExperimentMetrics(reg)
	if *metricsAddr != "" {
		obs.RegisterGoMetrics(reg)
		ops, err := obs.StartOps(*metricsAddr, reg, logger)
		if err != nil {
			logger.Error("ops listener failed", "addr", *metricsAddr, "err", err)
			return 1
		}
		defer ops.Close()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			logger.Error("trace", "err", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			logger.Error("trace", "err", err)
			return 1
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				logger.Error("memprofile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("memprofile", "err", err)
			}
		}()
	}

	var scale ptile360.Scale
	switch strings.ToLower(*scaleName) {
	case "full":
		scale = ptile360.FullScale()
	case "quick":
		scale = ptile360.QuickScale()
	default:
		logger.Error("unknown scale", "scale", *scaleName, "want", "full or quick")
		return 2
	}
	scale.Seed = *seed

	start := time.Now()
	// Periodic sweep progress, so -exp all at full scale isn't a silent
	// multi-minute wait.
	if *summaryEvery > 0 {
		done := make(chan struct{})
		defer close(done)
		go func() {
			t := time.NewTicker(*summaryEvery)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					cur, fin, total := ptile360.ExperimentProgress()
					logger.Info("sweep progress", "running", cur, "done", fin,
						"total", total, "elapsed_sec", time.Since(start).Seconds())
				}
			}
		}()
	}

	logger.Info("running experiment", "exp", *expName, "scale", strings.ToLower(*scaleName), "seed", *seed)
	tables, err := ptile360.RunExperiment(*expName, scale)
	if err != nil {
		logger.Error("experiment failed", "exp", *expName, "err", err)
		return 1
	}
	for i, tbl := range tables {
		printTable(tbl, logger)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, i, tbl); err != nil {
				logger.Error("csv write failed", "dir", *csvDir, "err", err)
				return 1
			}
		}
	}
	_, fin, total := ptile360.ExperimentProgress()
	logger.Info("sweep complete", "exp", *expName, "tables", len(tables),
		"figures_done", fin, "figures_total", total, "wall_sec", time.Since(start).Seconds())

	if *runJSON != "" {
		if err := writeRunSummary(*runJSON, *expName, strings.ToLower(*scaleName), *seed, tables, time.Since(start)); err != nil {
			logger.Error("run summary failed", "path", *runJSON, "err", err)
			return 1
		}
		logger.Info("wrote run summary", "path", *runJSON)
	}
	return 0
}

// runSummary is the -run-json payload: what ran, what it produced, and how
// long it took.
type runSummary struct {
	Experiment string         `json:"experiment"`
	Scale      string         `json:"scale"`
	Seed       int64          `json:"seed"`
	WallSec    float64        `json:"wall_sec"`
	Tables     []tableSummary `json:"tables"`
}

type tableSummary struct {
	Title   string `json:"title"`
	Columns int    `json:"columns"`
	Rows    int    `json:"rows"`
}

func writeRunSummary(path, exp, scale string, seed int64, tables []ptile360.Table, wall time.Duration) error {
	s := runSummary{Experiment: exp, Scale: scale, Seed: seed, WallSec: wall.Seconds()}
	for _, tbl := range tables {
		s.Tables = append(s.Tables, tableSummary{Title: tbl.Title, Columns: len(tbl.Columns), Rows: len(tbl.Rows)})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir string, idx int, tbl ptile360.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("table_%02d.csv", idx))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := ptile360.WriteTableCSV(f, tbl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printTable(tbl ptile360.Table, logger *slog.Logger) {
	fmt.Printf("\n== %s ==\n", tbl.Title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(tbl.Columns, "\t"))
	for _, row := range tbl.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	if err := w.Flush(); err != nil {
		logger.Error("table render failed", "err", err)
	}
}
