// Command netemfig regenerates the packet-level robustness figure: MPC
// QoE/energy/stall under the segment-level fluid bandwidth model versus the
// packet-level network emulator, for the harmonic-mean and delay-gradient
// estimators, across the adversarial link profiles. It writes one JSON row
// per (profile, model, estimator) cell to stdout (the NETEM_*.jsonl
// artifact) and renders the human-readable table to stderr.
//
// Usage:
//
//	netemfig -scale quick > NETEM_$(date +%F).jsonl
//	netemfig -net netem:bufferbloat,capacity=8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"ptile360/internal/experiments"
)

type row struct {
	Video       int     `json:"video"`
	Users       int     `json:"users"`
	Profile     string  `json:"profile"`
	Model       string  `json:"model"`
	Estimator   string  `json:"estimator"`
	QoE         float64 `json:"qoe"`
	EnergyJ     float64 `json:"energy_j"`
	StallSec    float64 `json:"stall_sec"`
	Stalls      int     `json:"stalls"`
	Packets     int     `json:"packets"`
	Retransmits int     `json:"retransmits"`
	DropsTail   int     `json:"drops_tail"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scaleName = flag.String("scale", "quick", "workload scale: full or quick")
		videoID   = flag.Int("video", 8, "Table III video ID")
		netSpec   = flag.String("net", "", "restrict to one profile: netem:<profile[,key=val...]> (empty sweeps the defaults)")
	)
	flag.Parse()

	if *netSpec != "" {
		spec, ok := strings.CutPrefix(*netSpec, "netem:")
		if !ok {
			fmt.Fprintf(os.Stderr, "netemfig: bad -net value %q: want netem:<profile[,key=val...]>\n", *netSpec)
			return 2
		}
		if err := experiments.SetNetemProfile(spec); err != nil {
			fmt.Fprintf(os.Stderr, "netemfig: %v\n", err)
			return 2
		}
	}
	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.FullScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "netemfig: unknown scale %q (full, quick)\n", *scaleName)
		return 2
	}

	res, err := experiments.NetemFig(*videoID, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netemfig: %v\n", err)
		return 1
	}

	enc := json.NewEncoder(os.Stdout)
	for _, r := range res.Rows {
		if err := enc.Encode(row{
			Video: res.Video, Users: res.Users,
			Profile: r.Profile, Model: r.Model, Estimator: r.Estimator,
			QoE: r.MeanQoE, EnergyJ: r.EnergyJ, StallSec: r.StallSec, Stalls: r.Stalls,
			Packets: r.Packets, Retransmits: r.Retransmits, DropsTail: r.DropsTail,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "netemfig: %v\n", err)
			return 1
		}
	}

	table := res.Render()
	fmt.Fprintln(os.Stderr, table.Title)
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(table.Columns, "\t"))
	for _, cells := range table.Rows {
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	tw.Flush()
	return 0
}
