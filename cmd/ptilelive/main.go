// Command ptilelive runs the online-Ptile convergence experiment: how many
// live viewers does the streaming pipeline (internal/ptilelive — sliding
// windows over grid-indexed DBSCAN, ptile.BuildSegmentClusters geometry)
// need before its regenerated Ptiles serve held-out viewers as well as the
// offline catalogue built from dedicated training traces?
//
// The experiment feeds viewport reports from a growing live audience into
// the pipeline and, at geometric checkpoints (1, 2, 4, ... viewers),
// rebuilds and measures coverage on an eval set that neither the offline
// catalogue nor the online pipeline ever saw: the fraction of
// (viewer, segment) pairs whose snapped FoV is fully inside some Ptile.
// One JSON line per checkpoint goes to stdout, ready for a JSONL log;
// the offline catalogue's coverage on the same eval set is the horizontal
// asymptote the online curve should approach.
//
// Usage:
//
//	ptilelive -video 2 -viewers 256 -eval-users 12 > convergence.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ptile360/internal/headtrace"
	"ptile360/internal/obs"
	"ptile360/internal/ptile"
	"ptile360/internal/ptilelive"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// record is one JSONL checkpoint line.
type record struct {
	Video           int     `json:"video"`
	Viewers         int     `json:"viewers"`
	Reports         int64   `json:"reports"`
	BuildVersion    int64   `json:"build_version"`
	WindowPoints    int     `json:"window_points"`
	PtilesOnline    int     `json:"ptiles_online"`
	PtilesOffline   int     `json:"ptiles_offline"`
	CoverageOnline  float64 `json:"coverage_online"`
	CoverageOffline float64 `json:"coverage_offline"`
	WallSec         float64 `json:"wall_sec"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		videoID   = flag.Int("video", 2, "Table III video ID")
		users     = flag.Int("users", 14, "viewers generated for the offline catalogue (5/6 train the catalogue, the rest are the shared eval set)")
		evalUsers = flag.Int("eval-users", 12, "extra held-out viewers to measure coverage on (added to the catalogue's eval split)")
		viewers   = flag.Int("viewers", 256, "live audience size the online pipeline ingests")
		seed      = flag.Int64("seed", 42, "random seed (live audience and eval set fork from it)")
		logCfg    = obs.LogFlags(nil)
	)
	flag.Parse()
	logger, err := logCfg.NewLogger(os.Stderr)
	if err != nil {
		os.Stderr.WriteString("ptilelive: " + err.Error() + "\n")
		return 2
	}

	p, err := video.ProfileByID(*videoID)
	if err != nil {
		logger.Error("unknown video profile", "video", *videoID, "err", err)
		return 2
	}

	// Offline reference: the catalogue exactly as the simulator builds it,
	// from a dedicated training split.
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = *users
	ds, err := headtrace.Generate(p, gcfg, *seed)
	if err != nil {
		logger.Error("head-trace generation failed", "err", err)
		return 1
	}
	train, eval, err := ds.SplitTrainEval(*users*5/6, *seed+1)
	if err != nil {
		logger.Error("train/eval split failed", "err", err)
		return 1
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		logger.Error("catalogue config invalid", "err", err)
		return 1
	}
	ccfg.Seed = *seed
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		logger.Error("catalogue build failed", "err", err)
		return 1
	}

	// Measurement set: the catalogue's own eval split plus extra held-out
	// viewers, none of which feed either pipeline.
	if *evalUsers > 0 {
		ecfg := headtrace.DefaultGeneratorConfig()
		ecfg.NumUsers = *evalUsers
		eds, err := headtrace.Generate(p, ecfg, *seed+7919)
		if err != nil {
			logger.Error("eval-trace generation failed", "err", err)
			return 1
		}
		eval = append(eval, eds.Traces...)
	}

	// Live audience: fresh viewers of the same video, disjoint seeds from
	// both the training and eval sets.
	lcfg := headtrace.DefaultGeneratorConfig()
	lcfg.NumUsers = *viewers
	live, err := headtrace.Generate(p, lcfg, *seed+104729)
	if err != nil {
		logger.Error("live-trace generation failed", "err", err)
		return 1
	}

	pcfg, err := ptilelive.DefaultConfig()
	if err != nil {
		logger.Error("pipeline config failed", "err", err)
		return 1
	}
	pcfg.Stream.Seed = *seed
	pipe, err := ptilelive.New(pcfg)
	if err != nil {
		logger.Error("pipeline construction failed", "err", err)
		return 1
	}

	nSeg := len(cat.Ptiles)
	offCov := coverage(eval, cat.Ptiles, nSeg, cat.SegmentSec, pcfg.Ptile)
	offPtiles := 0
	for _, ps := range cat.Ptiles {
		offPtiles += len(ps)
	}
	logger.Info("offline reference ready", "video", *videoID, "segments", nSeg,
		"ptiles", offPtiles, "coverage", fmt.Sprintf("%.3f", offCov),
		"eval_viewers", len(eval), "live_viewers", *viewers)

	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	next := 1
	for n := 1; n <= *viewers; n++ {
		tr := live.Traces[n-1]
		for seg := 0; seg < nSeg; seg++ {
			center, err := tr.ViewingCenter(seg, cat.SegmentSec)
			if err != nil {
				logger.Error("viewing center failed", "viewer", n-1, "segment", seg, "err", err)
				return 1
			}
			pipe.Ingest(ptilelive.Report{Video: *videoID, Segment: seg, Center: center})
		}
		if n != next && n != *viewers {
			continue
		}
		if n == next {
			next *= 2
		}
		b, err := pipe.Rebuild(*videoID)
		if err != nil {
			logger.Error("rebuild failed", "viewers", n, "err", err)
			return 1
		}
		online := make([][]ptile.Ptile, nSeg)
		onPtiles := 0
		for seg, res := range b.Segments {
			online[seg] = res.Ptiles
			onPtiles += len(res.Ptiles)
		}
		rec := record{
			Video:           *videoID,
			Viewers:         n,
			Reports:         b.Reports,
			BuildVersion:    b.Version,
			WindowPoints:    b.Windows,
			PtilesOnline:    onPtiles,
			PtilesOffline:   offPtiles,
			CoverageOnline:  coverage(eval, online, nSeg, cat.SegmentSec, pcfg.Ptile),
			CoverageOffline: offCov,
			WallSec:         time.Since(start).Seconds(),
		}
		if err := enc.Encode(rec); err != nil {
			logger.Error("record encode failed", "err", err)
			return 1
		}
	}
	return 0
}

// coverage returns the fraction of (eval viewer, segment) pairs whose FoV
// tile block lies entirely inside at least one of the segment's Ptiles —
// the user-coverage metric of Fig. 7b, evaluated on held-out viewers.
func coverage(eval []*headtrace.Trace, ptiles [][]ptile.Ptile, nSeg int, segSec float64, cfg ptile.Config) float64 {
	covered, total := 0, 0
	for _, tr := range eval {
		for seg := 0; seg < nSeg; seg++ {
			center, err := tr.ViewingCenter(seg, segSec)
			if err != nil {
				continue
			}
			total++
			for _, pt := range ptiles[seg] {
				if pt.Covers(cfg.Grid, center, cfg.FoVDeg) {
					covered++
					break
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}
