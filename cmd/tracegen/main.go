// Command tracegen emits the synthetic traces the evaluation runs on: 50 Hz
// head-movement traces per video (the MMSys'17-dataset stand-in) and LTE
// bandwidth traces.
//
// Usage:
//
//	tracegen -kind head -video 8 -users 48 -out video8.csv
//	tracegen -kind lte -samples 400 -trace 2 -out lte2.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/video"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		kind    = flag.String("kind", "head", "trace kind: head or lte")
		videoID = flag.Int("video", 8, "Table III video ID (head traces)")
		users   = flag.Int("users", 48, "number of viewers (head traces)")
		samples = flag.Int("samples", 400, "trace length in seconds (lte traces)")
		traceID = flag.Int("trace", 2, "network condition 1 or 2 (lte traces)")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", "", "output file (default stdout)")
		doStats = flag.Bool("stats", false, "print dataset statistics instead of the trace (head traces)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: close: %v\n", err)
			}
		}()
		w = f
	}

	switch *kind {
	case "head":
		p, err := video.ProfileByID(*videoID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		cfg := headtrace.DefaultGeneratorConfig()
		cfg.NumUsers = *users
		ds, err := headtrace.Generate(p, cfg, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		if *doStats {
			st, err := ds.Statistics(1, 10)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				return 1
			}
			fmt.Fprintf(w, "video %d (%s): %d users, %d samples\n", p.ID, p.Name, st.Users, st.Samples)
			fmt.Fprintf(w, "switching speed: mean %.1f°/s, median %.1f°/s, p95 %.1f°/s\n",
				st.Speed.Mean, st.Speed.P50, st.Speed.P95)
			fmt.Fprintf(w, "above 10°/s: %.0f%% of time (paper Fig. 5: >30%%)\n", 100*st.FracAbove10)
			fmt.Fprintf(w, "mean pairwise viewing-center distance: %.1f°\n", st.MeanPairwiseDist)
			return 0
		}
		if err := headtrace.WriteCSV(w, ds.Traces); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
	case "lte":
		tr1, tr2, err := lte.StandardTraces(*samples, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		tr := tr2
		if *traceID == 1 {
			tr = tr1
		} else if *traceID != 2 {
			fmt.Fprintf(os.Stderr, "tracegen: trace must be 1 or 2\n")
			return 2
		}
		if err := lte.WriteCSV(w, tr); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q (want head or lte)\n", *kind)
		return 2
	}
	return 0
}
