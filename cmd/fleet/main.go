// Command fleet runs the event-driven fleet simulator: a population of
// -sessions concurrent viewers advanced on per-shard virtual clocks by
// O(shards) goroutines — session count and goroutine count are independent,
// which is what lets one process push 100k–1M sessions. Each shard owns a
// private planning workspace (sim.Stepper); per-session state is a compact
// sim.State allocated when the session's join event fires.
//
// The engine executes exactly the code path of the blocking per-goroutine
// simulator (sim.Run), so results are bit-identical to it — the fleet
// package's differential tests pin that equivalence.
//
// With -metrics-addr an ops listener serves /metrics (fleet_* series),
// /debug/vars, /debug/pprof, and /healthz; the fleet counters there
// reconcile exactly with the final ledger. The run summary is written to
// stdout as one JSON line, ready for appending to a JSONL log.
//
// Usage:
//
//	fleet -sessions 100000 -shards 16 -duration 120 -metrics-addr 127.0.0.1:9361
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ptile360/internal/fleet"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/obs"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// summary is the JSONL run record.
type summary struct {
	Sessions       int     `json:"sessions"`
	Shards         int     `json:"shards"`
	Workers        int     `json:"workers"`
	Planner        string  `json:"planner"`
	Scheme         string  `json:"scheme"`
	Video          int     `json:"video"`
	NetProfile     string  `json:"net_profile"`
	Seed           int64   `json:"seed"`
	DurationSec    float64 `json:"duration_sec"`
	Joined         int     `json:"joined"`
	Finished       int     `json:"finished"`
	Active         int     `json:"active"`
	Segments       int     `json:"segments"`
	Stalls         int     `json:"stalls"`
	StallSec       float64 `json:"stall_sec"`
	EnergyMJ       float64 `json:"energy_mj"`
	MeanQoE        float64 `json:"mean_qoe"`
	BitsDownloaded float64 `json:"bits_downloaded"`
	Events         int     `json:"events"`
	BatchLeaders   int     `json:"batch_leaders"`
	BatchReplays   int     `json:"batch_replays"`
	BatchFallbacks int     `json:"batch_fallbacks"`
	WallSec        float64 `json:"wall_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	GoroutinePeak  int     `json:"goroutine_peak"`
}

func main() {
	os.Exit(run())
}

// autoShards picks the default shard count: one shard per core, raised
// toward ~16k sessions per shard for huge fleets but never beyond 4× the
// core count. Finer shards keep each shard's event heap shallow and its
// advance working set cache-sized (and, on multi-core hosts, balance the
// per-advance barrier); oversharding a small fleet just multiplies
// planning-scratch copies and batch-leader overhead. Measured on the fleet
// bench: 4×-oversharding is +30–45 % events/sec on a 1M-session fleet and
// −53 % on a 10k one — see EXPERIMENTS.md ("Fleet shard sizing").
func autoShards(procs, sessions int) int {
	s := sessions / 16384
	if s < procs {
		s = procs
	}
	if s > 4*procs {
		s = 4 * procs
	}
	return s
}

func run() int {
	var (
		sessions     = flag.Int("sessions", 10000, "concurrent viewer sessions to simulate")
		shards       = flag.Int("shards", 0, "independent event queues (bounds parallelism and planning-scratch copies); 0 sizes automatically from GOMAXPROCS and the session count")
		workers      = flag.Int("workers", 0, "goroutines advancing shards (0 = one per shard)")
		duration     = flag.Float64("duration", 0, "virtual seconds to simulate (0 = run every session to completion)")
		metricsAddr  = flag.String("metrics-addr", "", "ops listener address for /metrics, /debug/pprof, /debug/vars (empty disables)")
		videoID      = flag.Int("video", 2, "Table III video ID every session streams")
		users        = flag.Int("users", 14, "distinct viewers to generate (sessions cycle the eval pool)")
		seed         = flag.Int64("seed", 42, "random seed")
		scheme       = flag.String("scheme", "Ptile", "streaming scheme (Ctile, Ftile, Nontile, Ptile, Ours)")
		netProfile   = flag.String("net", "walking", "LTE mobility profile: stationary, walking, driving")
		vpUpdate     = flag.Float64("viewport-update", 0.5, "virtual seconds between head-pose refresh events (0 disables)")
		plannerStr   = flag.String("planner", "batched", "fleet planner: batched (share work across decision-identical sessions) or scalar (plan every session independently)")
		tsdbEvery    = flag.Duration("tsdb-interval", time.Second, "in-process TSDB sampling period backing /debug/tsdb and the /slo burn-rate engine (0 disables both)")
		flightSample = flag.Int("flight-sample", 0, "flight recorder samples 1-in-N sessions; dumps surface at /debug/flight (0 disables)")
		logCfg       = obs.LogFlags(nil)
	)
	flag.Parse()

	logger, err := logCfg.NewLogger(os.Stderr)
	if err != nil {
		os.Stderr.WriteString("fleet: " + err.Error() + "\n")
		return 2
	}

	if *shards == 0 {
		*shards = autoShards(runtime.GOMAXPROCS(0), *sessions)
	}

	var sch sim.Scheme
	for _, s := range sim.Schemes() {
		if s.String() == *scheme {
			sch = s
		}
	}
	if sch == 0 {
		logger.Error("unknown scheme", "scheme", *scheme)
		return 2
	}
	planner, err := fleet.ParsePlanner(*plannerStr)
	if err != nil {
		logger.Error("unknown planner", "planner", *plannerStr, "err", err)
		return 2
	}
	var prof lte.Profile
	switch *netProfile {
	case "stationary":
		prof = lte.ProfileStationary
	case "walking":
		prof = lte.ProfileWalking
	case "driving":
		prof = lte.ProfileDriving
	default:
		logger.Error("unknown net profile", "net", *netProfile)
		return 2
	}

	p, err := video.ProfileByID(*videoID)
	if err != nil {
		logger.Error("unknown video profile", "video", *videoID, "err", err)
		return 2
	}
	logger.Info("preparing catalogue", "video", *videoID, "name", p.Name, "users", *users)
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = *users
	ds, err := headtrace.Generate(p, gcfg, *seed)
	if err != nil {
		logger.Error("head-trace generation failed", "err", err)
		return 1
	}
	nTrain := *users * 5 / 6
	train, eval, err := ds.SplitTrainEval(nTrain, *seed+1)
	if err != nil {
		logger.Error("train/eval split failed", "err", err)
		return 1
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		logger.Error("catalogue config invalid", "err", err)
		return 1
	}
	ccfg.Seed = *seed
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		logger.Error("catalogue build failed", "err", err)
		return 1
	}
	ncfg, err := lte.ProfileConfig(prof)
	if err != nil {
		logger.Error("net profile config failed", "err", err)
		return 1
	}
	net, err := lte.Generate(600, ncfg, *seed)
	if err != nil {
		logger.Error("bandwidth trace generation failed", "err", err)
		return 1
	}

	cfg, err := sim.DefaultConfig(sch, power.Pixel3)
	if err != nil {
		logger.Error("sim config failed", "err", err)
		return 1
	}
	// Sessions cycle the eval viewers with staggered joins so the event
	// queues interleave instead of marching in lockstep.
	specs := make([]fleet.SessionSpec, *sessions)
	for i := range specs {
		specs[i] = fleet.SessionSpec{
			User:    eval[i%len(eval)],
			Net:     net,
			JoinSec: 0.25 * float64(i%13),
		}
	}

	reg := obs.NewRegistry()
	obs.RegisterGoMetrics(reg)
	var flight *obs.FlightRecorder
	if *flightSample > 0 {
		flight = obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: *flightSample, Registry: reg})
	}
	eng, err := fleet.New(fleet.Config{
		Catalog:           cat,
		Sim:               cfg,
		Shards:            *shards,
		Workers:           *workers,
		ViewportUpdateSec: *vpUpdate,
		Registry:          reg,
		Planner:           planner,
		Flight:            flight,
	}, specs)
	if err != nil {
		logger.Error("engine construction failed", "err", err)
		return 1
	}

	// In-process TSDB plus QoE/energy SLO burn-rate objectives over the
	// fleet counters; a burning objective triggers flight dumps for every
	// sampled session.
	var db *obs.TSDB
	var slos *obs.SLOEngine
	if *tsdbEvery > 0 {
		db = obs.NewTSDB(reg, obs.TSDBConfig{Resolutions: []obs.Resolution{
			{Step: *tsdbEvery, Slots: 120},
			{Step: 10 * *tsdbEvery, Slots: 90},
			{Step: 60 * *tsdbEvery, Slots: 60},
		}})
		slos, err = obs.NewSLOEngine(db, reg, []obs.Objective{
			{
				Name:        "stall",
				Description: "Rebuffering seconds per completed segment.",
				Kind:        obs.SLOQuotient,
				Num:         []obs.Selector{obs.Sel("fleet_stall_seconds_total")},
				Den:         []obs.Selector{obs.Sel("fleet_segments_total")},
				Budget:      0.05,
				Windows:     obs.BurnWindows(*tsdbEvery),
			},
			{
				Name:        "energy",
				Description: "Modeled energy (mJ) per completed segment.",
				Kind:        obs.SLOQuotient,
				Num:         []obs.Selector{obs.Sel("fleet_energy_mj_total")},
				Den:         []obs.Selector{obs.Sel("fleet_segments_total")},
				Budget:      2000,
				Windows:     obs.BurnWindows(*tsdbEvery),
			},
		})
		if err != nil {
			logger.Error("slo engine invalid", "err", err)
			return 2
		}
		slos.OnBurn(func(name string) {
			logger.Warn("slo burning", "slo", name)
			if flight != nil {
				flight.TriggerAll("slo:" + name)
			}
		})
		db.Start()
		defer db.Stop()
	}

	if *metricsAddr != "" {
		mux := obs.NewOpsMux(reg)
		if db != nil {
			mux.Handle("/debug/tsdb", db.Handler())
			mux.Handle("/slo", slos.Handler())
		}
		if flight != nil {
			mux.Handle("/debug/flight", flight.Handler())
		}
		ops, err := obs.StartOpsMux(*metricsAddr, mux, logger)
		if err != nil {
			logger.Error("ops listener failed", "addr", *metricsAddr, "err", err)
			return 1
		}
		defer ops.Close()
	}

	logger.Info("fleet starting", "sessions", *sessions, "shards", *shards,
		"workers", *workers, "scheme", sch.String(), "planner", planner.String(),
		"duration_sec", *duration)
	start := time.Now()
	peak := runtime.NumGoroutine()
	// Advance in bounded virtual-time chunks so the published metrics (and
	// any scraper on -metrics-addr) track the run instead of jumping from
	// zero to final.
	const chunk = 5.0
	horizon := chunk
	for {
		next, ok := eng.NextEventTime()
		if !ok {
			break
		}
		if *duration > 0 && next > *duration {
			break
		}
		if *duration > 0 && horizon > *duration {
			horizon = *duration
		}
		if err := eng.Advance(horizon); err != nil {
			logger.Error("fleet advance failed", "err", err)
			return 1
		}
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		horizon += chunk
	}
	wall := time.Since(start).Seconds()

	led := eng.Ledger()
	meanQoE := 0.0
	if led.Finished > 0 {
		meanQoE = led.QoESum / float64(led.Finished)
	}
	sum := summary{
		Sessions:       *sessions,
		Shards:         *shards,
		Workers:        *workers,
		Planner:        planner.String(),
		Scheme:         sch.String(),
		Video:          *videoID,
		NetProfile:     *netProfile,
		Seed:           *seed,
		DurationSec:    *duration,
		Joined:         led.Joined,
		Finished:       led.Finished,
		Active:         led.Active,
		Segments:       led.Segments,
		Stalls:         led.Stalls,
		StallSec:       led.StallSec,
		EnergyMJ:       led.EnergyMJ,
		MeanQoE:        meanQoE,
		BitsDownloaded: led.Bits,
		Events:         led.Events,
		BatchLeaders:   led.BatchLeaders,
		BatchReplays:   led.BatchReplays,
		BatchFallbacks: led.BatchFallbacks,
		WallSec:        wall,
		EventsPerSec:   float64(led.Events) / wall,
		GoroutinePeak:  peak,
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(sum); err != nil {
		logger.Error("summary encode failed", "err", err)
		return 1
	}
	logger.Info("fleet done",
		"finished", led.Finished, "segments", led.Segments,
		"events", led.Events, "planner", planner.String(),
		"batch_replays", led.BatchReplays,
		"wall_sec", fmt.Sprintf("%.2f", wall),
		"events_per_sec", fmt.Sprintf("%.0f", float64(led.Events)/wall),
		"goroutine_peak", peak)
	return 0
}
