module ptile360

go 1.22
