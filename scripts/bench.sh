#!/bin/sh
# bench.sh — run the Table/Fig benchmarks and append a machine-readable
# record to BENCH_<date>.json in the repo root.
#
# Usage:
#   scripts/bench.sh [-dirty] [label] [bench-regex] [benchtime]
#
#   -dirty      allow recording from a tree with uncommitted changes. By
#               default a dirty tree is refused: a committed BENCH_*.json
#               line is a perf baseline, and a baseline whose commit hash
#               doesn't describe the measured code is worse than none.
#   label       free-form tag stored with the run (default: "dev")
#   bench-regex go test -bench regex (default: the Table/Fig benches)
#   benchtime   go test -benchtime (default: 1x — a smoke pass; use e.g.
#               3x or 2s for lower-variance numbers)
#
# Environment:
#   BENCH_OUT    overrides the output file (default BENCH_<date>.json).
#   BENCH_PROCS  space-separated GOMAXPROCS values; the benchmarks run once
#                per value and each run appends its own record line (the
#                scaling curve, e.g. BENCH_PROCS="1 4 16"). Defaults to the
#                current GOMAXPROCS (or the CPU count).
#
# The output file is JSON lines: one JSON object per run, so a before/after
# pair is two lines in the same file. Each object carries the label, commit,
# GOMAXPROCS, and the parsed benchmark results
# ({name, iters, metrics:{"ns/op": ..., ...}}). cmd/benchbudget consumes
# this format to enforce the CI perf budget.
set -eu

cd "$(dirname "$0")/.."

ALLOW_DIRTY=0
if [ "${1:-}" = "-dirty" ]; then
    ALLOW_DIRTY=1
    shift
fi

LABEL="${1:-dev}"
REGEX="${2:-^(BenchmarkTable|BenchmarkFig)}"
BENCHTIME="${3:-1x}"

DATE="$(date -u +%Y-%m-%d)"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
OUT="${BENCH_OUT:-BENCH_${DATE}.json}"
# Record the tree the run actually measured: the per-run commit, suffixed
# with -dirty when uncommitted changes are present (an unsuffixed before/
# after pair from the same commit would be indistinguishable otherwise).
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [ "$COMMIT" != unknown ] && ! git diff --quiet HEAD -- 2>/dev/null; then
    if [ "$ALLOW_DIRTY" != 1 ]; then
        echo "bench.sh: working tree has uncommitted changes; commit first or pass -dirty to record anyway" >&2
        exit 1
    fi
    COMMIT="${COMMIT}-dirty"
fi
DEFAULT_PROCS="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"
PROCS_LIST="${BENCH_PROCS:-$DEFAULT_PROCS}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

for PROCS in $PROCS_LIST; do
    echo "bench.sh: running -bench='$REGEX' -benchtime=$BENCHTIME GOMAXPROCS=$PROCS ..." >&2
    GOMAXPROCS="$PROCS" go test -run '^$' -bench "$REGEX" -benchtime "$BENCHTIME" -benchmem . | tee "$RAW" >&2

    awk -v label="$LABEL" -v stamp="$STAMP" -v commit="$COMMIT" -v procs="$PROCS" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if (metrics != "") metrics = metrics ","
        metrics = metrics "\"" $(i + 1) "\":" $i
    }
    if (n > 0) results = results ","
    results = results "{\"name\":\"" name "\",\"iters\":" iters ",\"metrics\":{" metrics "}}"
    n++
}
END {
    printf "{\"label\":\"%s\",\"time\":\"%s\",\"commit\":\"%s\",\"gomaxprocs\":%s,\"results\":[%s]}\n",
        label, stamp, commit, procs, results
}' "$RAW" >>"$OUT"

    echo "bench.sh: appended $(grep -c '^Benchmark' "$RAW") results to $OUT (label=$LABEL, gomaxprocs=$PROCS)" >&2
done
