package ptile360

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4), plus ablation benches for the design
// choices called out in DESIGN.md §5. Benchmarks report the regenerated
// headline metric of each experiment via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a results summary.

import (
	"strconv"
	"testing"

	"ptile360/internal/cluster"
	"ptile360/internal/experiments"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/projection"
	"ptile360/internal/sim"
	"ptile360/internal/stats"
	"ptile360/internal/video"
)

// benchScale is the workload for the trace-driven benches: the calibrated
// 48/40 user split on two representative videos.
func benchScale() experiments.Scale {
	s := experiments.FullScale()
	s.Videos = []int{2, 8}
	s.EvalUsers = 3
	return s
}

func BenchmarkTable1PowerFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(42)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Fitted[power.Pixel3].Tx, "fitted-Pt-mW")
		}
	}
}

func BenchmarkTable2QoEFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(42)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Pearson, "pearson")
		}
	}
}

func BenchmarkFig2aTransmissionEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2a()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*(1-res.Mean), "saving-%")
		}
	}
}

func BenchmarkFig2bDecoderScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2b()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Pool[8].PowerMW, "p9-mW")
		}
	}
}

func BenchmarkFig2cProcessingEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2c()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.SavingVsBest, "saving-%")
		}
	}
}

func BenchmarkFig4bQoSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4b(42)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Fit.Pearson, "pearson")
		}
	}
}

func BenchmarkFig5SwitchingSpeed(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.FracAbove10, "frac>10-%")
		}
	}
}

func BenchmarkFig7PtileConstruction(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.Coverage[8], "video8-coverage-%")
		}
	}
}

func BenchmarkFig8SizeRatios(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.Medians[8][4], "q5-median-%")
		}
	}
}

func BenchmarkFig9EnergyComparison(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := experiments.RunComparison(power.Pixel3, scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*(1-comp.NormalizedEnergy(1)[sim.SchemeOurs]), "ours-saving-%")
		}
	}
}

func BenchmarkFig10EnergyPhones(b *testing.B) {
	scale := benchScale()
	for _, phone := range []power.Phone{power.Nexus5X, power.GalaxyS20} {
		b.Run(phone.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp, err := experiments.RunComparison(phone, scale)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(100*(1-comp.NormalizedEnergy(1)[sim.SchemeOurs]), "ours-saving-%")
				}
			}
		})
	}
}

func BenchmarkFig11QoEComparison(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := experiments.RunComparison(power.Pixel3, scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(comp.NormalizedQoE(2)[sim.SchemeOurs], "ours-qoe-vs-ctile")
		}
	}
}

// benchSession prepares a single-session fixture for the ablation benches.
type benchFixture struct {
	cat   *sim.Catalog
	user  *headtrace.Trace
	trace *lte.Trace
}

func newBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	p, err := video.ProfileByID(8)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	train, eval, err := ds.SplitTrainEval(40, 7)
	if err != nil {
		b.Fatal(err)
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		b.Fatal(err)
	}
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	_, tr2, err := lte.StandardTraces(400, 99)
	if err != nil {
		b.Fatal(err)
	}
	return &benchFixture{cat: cat, user: eval[0], trace: tr2}
}

// BenchmarkAblationEpsilonSweep sweeps the (8c) QoE-loss tolerance ε and
// reports the energy at each setting: larger tolerance buys more frame-rate
// reduction and lower energy (DESIGN.md §5.2).
func BenchmarkAblationEpsilonSweep(b *testing.B) {
	fx := newBenchFixture(b)
	for _, eps := range []float64{0.0, 0.05, 0.15} {
		b.Run(formatPct(eps), func(b *testing.B) {
			cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Epsilon = eps
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(fx.cat, fx.user, fx.trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Energy.Total()/float64(res.Segments), "mJ/segment")
					b.ReportMetric(res.QoE.MeanQ, "qoe")
				}
			}
		})
	}
}

// BenchmarkAblationHorizonSweep sweeps the MPC look-ahead H: the DP costs
// O(H·V·F) per decision (DESIGN.md §5.4).
func BenchmarkAblationHorizonSweep(b *testing.B) {
	fx := newBenchFixture(b)
	for _, h := range []int{1, 3, 5, 8} {
		b.Run(formatInt(h), func(b *testing.B) {
			cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Horizon = h
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(fx.cat, fx.user, fx.trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.QoE.Stalls), "stalls")
				}
			}
		})
	}
}

// BenchmarkAblationClusterSplit compares Algorithm 1 against unbounded
// density growth on the same viewing centers (DESIGN.md §5.3).
func BenchmarkAblationClusterSplit(b *testing.B) {
	rng := stats.NewRNG(1)
	centers := make([]geom.Point, 40)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Uniform(60, 200), Y: rng.Uniform(60, 120)}
	}
	params := cluster.DefaultParams()
	b.Run("algorithm1", func(b *testing.B) {
		var maxDiam float64
		for i := 0; i < b.N; i++ {
			clusters, err := cluster.ViewingCenters(centers, params)
			if err != nil {
				b.Fatal(err)
			}
			maxDiam = 0
			for _, cl := range clusters {
				if d := cluster.Diameter(centers, cl.Members); d > maxDiam {
					maxDiam = d
				}
			}
		}
		b.ReportMetric(maxDiam, "max-diameter-deg")
	})
	b.Run("unbounded", func(b *testing.B) {
		var maxDiam float64
		for i := 0; i < b.N; i++ {
			clusters, err := cluster.DensityGrow(centers, params.Delta)
			if err != nil {
				b.Fatal(err)
			}
			maxDiam = 0
			for _, cl := range clusters {
				if d := cluster.Diameter(centers, cl.Members); d > maxDiam {
					maxDiam = d
				}
			}
		}
		b.ReportMetric(maxDiam, "max-diameter-deg")
	})
}

// BenchmarkAblationBandwidthEstimator compares the harmonic-mean estimator
// against last-sample estimation through the stall count of an Ours session
// (DESIGN.md §5.5).
func BenchmarkAblationBandwidthEstimator(b *testing.B) {
	fx := newBenchFixture(b)
	for _, window := range []int{1, 5, 20} {
		b.Run(formatInt(window), func(b *testing.B) {
			cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.BandwidthWindow = window
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(fx.cat, fx.user, fx.trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.QoE.Stalls), "stalls")
				}
			}
		})
	}
}

// BenchmarkAblationNoTileOverhead zeroes the per-tile overhead to show the
// mechanism behind the Ptile advantage (DESIGN.md §5.1): without it the
// Fig. 2a transmission saving shrinks toward the pure merge-efficiency gain.
func BenchmarkAblationNoTileOverhead(b *testing.B) {
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	fov := grid.FoVTiles(geom.Point{X: 180, Y: 90}, 100, 100)
	bound, err := grid.BoundingRect(fov)
	if err != nil {
		b.Fatal(err)
	}
	sc := video.SegmentContent{SI: 50, TI: 25, Jitter: 1}
	for _, overhead := range []bool{true, false} {
		name := "with-overhead"
		enc := video.DefaultEncoderConfig()
		if !overhead {
			name = "no-overhead"
			enc.TileOverheadBits = 0
		}
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				var ctileBits float64
				for _, id := range fov {
					bits, err := enc.TileBits(video.TileSpec{Rect: grid.TileRect(id), Quality: 3}, 1, sc)
					if err != nil {
						b.Fatal(err)
					}
					ctileBits += bits
				}
				ptileBits, err := enc.TileBits(video.TileSpec{Rect: bound, Quality: 3, Kind: video.KindPtile}, 1, sc)
				if err != nil {
					b.Fatal(err)
				}
				ratio = ptileBits / ctileBits
			}
			b.ReportMetric(100*ratio, "ptile-size-%")
		})
	}
}

func formatPct(v float64) string { return strconv.Itoa(int(v*100)) + "pct" }

func formatInt(v int) string { return strconv.Itoa(v) }

// BenchmarkAblationBufferSweep sweeps the playback buffer threshold β — the
// prefetch-aggressiveness trade-off the paper's setup fixes at 3 s: larger
// buffers absorb bandwidth drops (fewer stalls) but prefetch further ahead
// of the viewport prediction.
func BenchmarkAblationBufferSweep(b *testing.B) {
	fx := newBenchFixture(b)
	for _, beta := range []float64{2, 3, 5} {
		b.Run(formatInt(int(beta))+"s", func(b *testing.B) {
			cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.BufferCapSec = beta
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(fx.cat, fx.user, fx.trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.QoE.Stalls), "stalls")
					b.ReportMetric(res.QoE.MeanQ, "qoe")
				}
			}
		})
	}
}

// BenchmarkAblationEstimatorKinds compares the bandwidth-estimator families
// (DESIGN.md §5.5) through a full Ours session each.
func BenchmarkAblationEstimatorKinds(b *testing.B) {
	fx := newBenchFixture(b)
	for _, kind := range []predict.EstimatorKind{
		predict.EstimatorHarmonic, predict.EstimatorLastSample,
		predict.EstimatorEWMA, predict.EstimatorMovingAverage,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Estimator = kind
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(fx.cat, fx.user, fx.trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.QoE.Stalls), "stalls")
				}
			}
		})
	}
}

// BenchmarkAblationStrictViewportQoE quantifies the viewport-sensitivity of
// the QoE accounting (DESIGN.md §6.3): strict mode blends quality down by
// uncovered FoV area, hurting narrow-coverage schemes most.
func BenchmarkAblationStrictViewportQoE(b *testing.B) {
	fx := newBenchFixture(b)
	for _, strict := range []bool{false, true} {
		name := "delivered"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			cfg, err := sim.DefaultConfig(sim.SchemeCtile, power.Pixel3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.StrictViewportQoE = strict
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(fx.cat, fx.user, fx.trace, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.QoE.MeanQ0, "q0")
				}
			}
		})
	}
}

// BenchmarkCoveredTilesSampling measures the pixel-trace ground truth for
// viewport coverage: projection.CoveredTiles over a rendered view, deduped
// through the bitset fast path (geom.TileSet) on the standard 4x8 grid.
func BenchmarkCoveredTilesSampling(b *testing.B) {
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	v := projection.View{
		Center: geom.Orientation{Yaw: 50, Pitch: 10},
		FoVDeg: 100,
		Width:  480,
		Height: 480,
	}
	var tiles int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Center.Yaw = float64(i % 360)
		out, err := v.CoveredTiles(grid, 8)
		if err != nil {
			b.Fatal(err)
		}
		tiles += len(out)
	}
	b.ReportMetric(float64(tiles)/float64(b.N), "tiles/op")
}

// BenchmarkCoveredTilesLUT measures the quantized FoV-coverage lookup the
// session hot loop uses instead of re-deriving FoV tiles per call: one
// geom.FoVLUT mask fetch plus a popcount per viewport position.
func BenchmarkCoveredTilesLUT(b *testing.B) {
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	lut := geom.FoVLUTFor(grid, 100, 100)
	if lut == nil {
		b.Fatal("grid does not support the FoV LUT")
	}
	var tiles int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: float64(i % 360), Y: float64(20 + i%140)}
		s := lut.SetAt(p)
		tiles += s.Count()
	}
	b.ReportMetric(float64(tiles)/float64(b.N), "tiles/op")
}

// BenchmarkTraceGenBatch measures synthetic head-trace generation for one
// video: the batched per-user fan-out with a single shared sample backing.
func BenchmarkTraceGenBatch(b *testing.B) {
	p, err := video.ProfileByID(2)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := headtrace.Generate(p, gcfg, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Traces) != gcfg.NumUsers {
			b.Fatalf("got %d traces", len(ds.Traces))
		}
	}
}

// BenchmarkTraceGenSwitchingSpeeds measures the Eq. 5 switching-speed pass
// over a generated dataset through the allocation-free append API.
func BenchmarkTraceGenSwitchingSpeeds(b *testing.B) {
	p, err := video.ProfileByID(2)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 16
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	var speeds []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		speeds = speeds[:0]
		for _, tr := range ds.Traces {
			speeds = tr.AppendSwitchingSpeeds(speeds)
		}
	}
	b.ReportMetric(float64(len(speeds)), "samples")
}
