// Package ptile360 is a trace-driven reproduction of "Energy-Efficient and
// QoE-Aware 360-Degree Video Streaming on Mobile Devices" (Chen & Cao, IEEE
// ICDCS 2022).
//
// The package is the public façade over the internal substrates: it prepares
// per-video server catalogues (Ptile construction from training users'
// head-movement traces), streams evaluation sessions under the paper's five
// schemes (Ctile, Ftile, Nontile, Ptile, Ours), and regenerates every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	sys, err := ptile360.NewSystem(ptile360.DefaultOptions())
//	prep, err := sys.PrepareVideo(8)          // build Ptiles for video 8
//	res, err := sys.Stream(prep, 0, ptile360.SchemeOurs, ptile360.Pixel3, 2)
//	fmt.Println(res.Energy.Total(), res.QoE.MeanQ)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
// results.
package ptile360

import (
	"fmt"

	"ptile360/internal/experiments"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// Re-exported types: the façade aliases the internal vocabulary so library
// users can name every type they receive.
type (
	// Scheme is a streaming approach under evaluation.
	Scheme = sim.Scheme
	// Phone selects a Table I power model.
	Phone = power.Phone
	// SessionResult is the outcome of one streaming session.
	SessionResult = sim.Result
	// Catalog is a prepared per-video server catalogue.
	Catalog = sim.Catalog
	// Scale sets the experiment workload size.
	Scale = experiments.Scale
	// Table is a printable experiment output.
	Table = experiments.Table
	// VideoProfile describes one Table III test video.
	VideoProfile = video.Profile
	// HeadTrace is one user's head-movement record.
	HeadTrace = headtrace.Trace
	// NetworkTrace is an LTE bandwidth time series.
	NetworkTrace = lte.Trace
)

// Streaming schemes (Section V-A).
const (
	SchemeCtile   = sim.SchemeCtile
	SchemeFtile   = sim.SchemeFtile
	SchemeNontile = sim.SchemeNontile
	SchemePtile   = sim.SchemePtile
	SchemeOurs    = sim.SchemeOurs
)

// Measured phones (Table I).
const (
	Nexus5X   = power.Nexus5X
	Pixel3    = power.Pixel3
	GalaxyS20 = power.GalaxyS20
)

// Options configures a System.
type Options struct {
	// UsersPerVideo is the number of generated viewers per video.
	UsersPerVideo int
	// TrainUsers of them construct Ptiles; the rest are evaluation users.
	TrainUsers int
	// TraceSamples is the LTE trace length in seconds.
	TraceSamples int
	// Seed drives every stochastic component; equal seeds reproduce
	// bit-identical systems.
	Seed int64
}

// DefaultOptions returns the paper's evaluation setting: 48 viewers per
// video with 40 used for Ptile construction.
func DefaultOptions() Options {
	return Options{
		UsersPerVideo: 48,
		TrainUsers:    40,
		TraceSamples:  400,
		Seed:          42,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.UsersPerVideo <= 1 {
		return fmt.Errorf("ptile360: users per video %d too small", o.UsersPerVideo)
	}
	if o.TrainUsers <= 0 || o.TrainUsers >= o.UsersPerVideo {
		return fmt.Errorf("ptile360: train users %d outside (0, %d)", o.TrainUsers, o.UsersPerVideo)
	}
	if o.TraceSamples <= 0 {
		return fmt.Errorf("ptile360: non-positive trace length %d", o.TraceSamples)
	}
	return nil
}

// System is a prepared streaming test-bed: network traces plus lazily built
// per-video catalogues.
type System struct {
	opts   Options
	trace1 *lte.Trace
	trace2 *lte.Trace
}

// NewSystem validates the options and generates the two network conditions
// (trace 1 = 2 × trace 2, Section V-A).
func NewSystem(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	tr1, tr2, err := lte.StandardTraces(opts.TraceSamples, opts.Seed+99)
	if err != nil {
		return nil, err
	}
	return &System{opts: opts, trace1: tr1, trace2: tr2}, nil
}

// Videos lists the Table III test videos.
func Videos() []VideoProfile { return video.Catalog() }

// Prepared bundles a video's catalogue with its evaluation users.
type Prepared struct {
	// Profile is the video.
	Profile VideoProfile
	// Catalog is the server-side preparation (content series, Ptiles,
	// Ftile groups).
	Catalog *Catalog
	// EvalUsers are the held-out viewers available to Stream.
	EvalUsers []*HeadTrace
}

// PrepareVideo generates the head-movement dataset for the given Table III
// video, splits it into training and evaluation users, and constructs the
// Ptile catalogue from the training set (Section IV-A).
func (s *System) PrepareVideo(videoID int) (*Prepared, error) {
	p, err := video.ProfileByID(videoID)
	if err != nil {
		return nil, err
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = s.opts.UsersPerVideo
	ds, err := headtrace.Generate(p, gcfg, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	train, eval, err := ds.SplitTrainEval(s.opts.TrainUsers, s.opts.Seed+1)
	if err != nil {
		return nil, err
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return nil, err
	}
	ccfg.Seed = s.opts.Seed
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return nil, err
	}
	return &Prepared{Profile: p, Catalog: cat, EvalUsers: eval}, nil
}

// Trace returns one of the two standard network conditions (1 or 2).
func (s *System) Trace(traceID int) (*NetworkTrace, error) {
	switch traceID {
	case 1:
		return s.trace1, nil
	case 2:
		return s.trace2, nil
	default:
		return nil, fmt.Errorf("ptile360: trace ID %d outside {1, 2}", traceID)
	}
}

// Stream runs one full playback session: evaluation user evalIdx of the
// prepared video streams under the given scheme on the given phone over
// network condition traceID.
func (s *System) Stream(prep *Prepared, evalIdx int, scheme Scheme, phone Phone, traceID int) (*SessionResult, error) {
	if prep == nil {
		return nil, fmt.Errorf("ptile360: nil prepared video")
	}
	if evalIdx < 0 || evalIdx >= len(prep.EvalUsers) {
		return nil, fmt.Errorf("ptile360: eval user %d outside [0, %d)", evalIdx, len(prep.EvalUsers))
	}
	net, err := s.Trace(traceID)
	if err != nil {
		return nil, err
	}
	cfg, err := sim.DefaultConfig(scheme, phone)
	if err != nil {
		return nil, err
	}
	return sim.Run(prep.Catalog, prep.EvalUsers[evalIdx], net, cfg)
}

// StreamConfig exposes the full session configuration for advanced callers.
func (s *System) StreamConfig(prep *Prepared, user *HeadTrace, traceID int, cfg sim.Config) (*SessionResult, error) {
	net, err := s.Trace(traceID)
	if err != nil {
		return nil, err
	}
	return sim.Run(prep.Catalog, user, net, cfg)
}
