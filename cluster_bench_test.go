package ptile360

// Clustering benches: BenchmarkDBSCANNaive vs BenchmarkDBSCANGrid time one
// full DBSCAN pass over a 10k-point viewport window — the naive O(n²)
// neighbor build against the spherical-grid index (O(n·k), bit-identical
// output, pinned by the cluster package's differential fuzz target).
// BenchmarkStreamWindow measures the online pipeline's steady state: one
// viewport report into a reservoir-capped sliding window plus the amortized
// re-cluster every windowful.
//
// Run via:
//
//	scripts/bench.sh cluster '^Benchmark(DBSCAN|StreamWindow)' 1x

import (
	"testing"

	"ptile360/internal/cluster"
	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

// clusterBenchEps is the neighbour radius the DBSCAN benches run at. It is
// deliberately smaller than the hot-spot spread below (σ ≈ 12°): that is the
// regime a spatial index exists for — each point's eps-ball holds O(100) of
// the 10k points, so the naive pass wastes 99% of its n² distance checks on
// far-away pairs while the grid scans only the 3×3 surrounding cells. (At
// radii larger than the hot-spot spread, every hot-spot point's
// neighbourhood is its entire blob and neighbour-list output itself is the
// bottleneck — no index helps there.)
const clusterBenchEps = 10

// viewportWindow synthesizes n viewing centers the way a fleet-scale
// window looks: a dozen attention hot-spots spread over the panorama (one
// straddling the yaw seam) holding half the viewers, plus a uniform
// exploration floor for the other half.
func viewportWindow(n int, seed int64) []geom.Point {
	rng := stats.NewRNG(seed)
	hotspots := []geom.Point{
		{X: 20, Y: 70}, {X: 55, Y: 100}, {X: 90, Y: 80}, {X: 120, Y: 60},
		{X: 160, Y: 95}, {X: 200, Y: 85}, {X: 230, Y: 110}, {X: 260, Y: 75},
		{X: 290, Y: 90}, {X: 320, Y: 65}, {X: 340, Y: 105},
		{X: 355, Y: 88}, // straddles the 0/360 seam
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		if rng.Float64() < 0.5 {
			h := hotspots[rng.Intn(len(hotspots))]
			pts[i] = geom.Point{
				X: geom.NormalizeYaw(h.X + rng.Normal(0, 12)),
				Y: clampPitch(h.Y + rng.Normal(0, 8)),
			}
		} else {
			pts[i] = geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(0, 180)}
		}
	}
	return pts
}

func clampPitch(y float64) float64 {
	if y < 0 {
		return 0
	}
	if y > 180 {
		return 180
	}
	return y
}

func benchmarkDBSCAN(b *testing.B, n int, f func([]geom.Point, float64, int) ([]cluster.Cluster, []int, error)) {
	pts := viewportWindow(n, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters, _, err := f(pts, clusterBenchEps, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(clusters) == 0 {
			b.Fatal("no clusters on a hot-spot window")
		}
	}
}

func BenchmarkDBSCANNaive10k(b *testing.B) { benchmarkDBSCAN(b, 10_000, cluster.DBSCAN) }
func BenchmarkDBSCANGrid10k(b *testing.B)  { benchmarkDBSCAN(b, 10_000, cluster.DBSCANGrid) }

// BenchmarkStreamWindow is the per-report cost of the online stage: every
// iteration ingests one viewport report; once per windowful the dirty
// segment is re-clustered, so the reported cost amortizes reservoir
// maintenance and grid DBSCAN exactly as the live pipeline pays them.
func BenchmarkStreamWindow(b *testing.B) {
	const windowCap = 512
	pts := viewportWindow(windowCap*4, 43)
	s, err := cluster.NewStream(cluster.StreamConfig{
		Eps:       clusterBenchEps,
		MinPts:    4,
		WindowCap: windowCap,
		Seed:      42,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	reclusters := 0
	for i := 0; i < b.N; i++ {
		s.Add(0, pts[i%len(pts)])
		if i%windowCap == windowCap-1 {
			if _, _, ok := s.Cluster(0); !ok {
				b.Fatal("re-cluster failed")
			}
			reclusters++
		}
	}
	b.StopTimer()
	if b.N >= windowCap && reclusters == 0 {
		b.Fatal("benchmark never re-clustered")
	}
	b.ReportMetric(float64(reclusters), "reclusters")
}
