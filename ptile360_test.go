package ptile360

import (
	"strings"
	"testing"
)

func testOptions() Options {
	return Options{UsersPerVideo: 14, TrainUsers: 10, TraceSamples: 250, Seed: 5}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{UsersPerVideo: 1, TrainUsers: 0, TraceSamples: 10},
		{UsersPerVideo: 10, TrainUsers: 10, TraceSamples: 10},
		{UsersPerVideo: 10, TrainUsers: 5, TraceSamples: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("options %d accepted", i)
		}
	}
	if _, err := NewSystem(Options{}); err == nil {
		t.Fatal("want error for zero options")
	}
}

func TestVideos(t *testing.T) {
	if len(Videos()) != 8 {
		t.Fatalf("Videos() returned %d entries, want 8", len(Videos()))
	}
}

func TestSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	prep, err := sys.PrepareVideo(2)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Profile.ID != 2 || prep.Catalog == nil || len(prep.EvalUsers) != 4 {
		t.Fatalf("prepared video malformed: %+v", prep.Profile)
	}
	res, err := sys.Stream(prep, 0, SchemeOurs, Pixel3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments == 0 || res.Energy.Total() <= 0 {
		t.Fatalf("empty session result: %+v", res)
	}
	// Determinism through the façade.
	res2, err := sys.Stream(prep, 0, SchemeOurs, Pixel3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != res2.Energy {
		t.Fatal("façade sessions not deterministic")
	}
}

func TestSystemStreamValidation(t *testing.T) {
	sys, err := NewSystem(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	prep, err := sys.PrepareVideo(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Stream(nil, 0, SchemeOurs, Pixel3, 1); err == nil {
		t.Fatal("want error for nil prep")
	}
	if _, err := sys.Stream(prep, 99, SchemeOurs, Pixel3, 1); err == nil {
		t.Fatal("want error for bad user index")
	}
	if _, err := sys.Stream(prep, 0, SchemeOurs, Pixel3, 3); err == nil {
		t.Fatal("want error for bad trace ID")
	}
	if _, err := sys.PrepareVideo(99); err == nil {
		t.Fatal("want error for unknown video")
	}
}

func TestTraceAccess(t *testing.T) {
	sys, err := NewSystem(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := sys.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := sys.Trace(2)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Mean() <= tr2.Mean() {
		t.Fatal("trace 1 should be faster than trace 2")
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(names))
	}
	for _, want := range []string{"table1", "table2", "table3", "fig1", "fig2a", "fig2b", "fig2c",
		"fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"ablations", "robustness", "predaccuracy", "projection"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
}

func TestRunExperimentQuick(t *testing.T) {
	// Fast experiments at quick scale through the public API.
	for _, name := range []string{"table2", "table3", "fig2a", "fig2b", "fig2c", "fig4b"} {
		tables, err := RunExperiment(name, QuickScale())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", name)
		}
		for _, tbl := range tables {
			if tbl.Title == "" || len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced a malformed table: %+v", name, tbl.Title)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s: row width %d != %d columns", name, len(row), len(tbl.Columns))
				}
			}
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	_, err := RunExperiment("fig99", QuickScale())
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("error should name the experiment: %v", err)
	}
	bad := QuickScale()
	bad.Videos = nil
	if _, err := RunExperiment("table3", bad); err == nil {
		t.Fatal("want error for invalid scale")
	}
}

func TestWriteTableCSV(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf strings.Builder
	if err := WriteTableCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "#Demo\na,b\n1,2\n3,4\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestCompare(t *testing.T) {
	sums, err := Compare(Pixel3, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 5 {
		t.Fatalf("summaries = %d, want 5", len(sums))
	}
	byScheme := map[Scheme]SchemeSummary{}
	for _, s := range sums {
		byScheme[s.Scheme] = s
		for traceID := 1; traceID <= 2; traceID++ {
			if s.EnergyVsCtile[traceID] <= 0 || s.QoEVsCtile[traceID] <= 0 {
				t.Fatalf("%v trace %d: non-positive normalized metrics", s.Scheme, traceID)
			}
		}
	}
	// Ctile normalizes to exactly 1.
	if byScheme[SchemeCtile].EnergyVsCtile[1] != 1 || byScheme[SchemeCtile].QoEVsCtile[2] != 1 {
		t.Fatal("Ctile must normalize to 1")
	}
	// Headline direction survives even at quick scale.
	if byScheme[SchemeOurs].EnergyVsCtile[1] >= 1 {
		t.Fatalf("Ours energy %g not below Ctile", byScheme[SchemeOurs].EnergyVsCtile[1])
	}
}
