package ptile360_test

import (
	"fmt"

	"ptile360"
)

// Example streams one video with the paper's algorithm and reports the
// headline session metrics.
func Example() {
	sys, err := ptile360.NewSystem(ptile360.Options{
		UsersPerVideo: 14,
		TrainUsers:    10,
		TraceSamples:  250,
		Seed:          5,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	prep, err := sys.PrepareVideo(2)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sys.Stream(prep, 0, ptile360.SchemeOurs, ptile360.Pixel3, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("video=%d scheme=%v segments=%d\n", res.VideoID, res.Scheme, res.Segments)
	fmt.Printf("frame rate reduced below source: %v\n", res.MeanFrameRate < 30)
	// Output:
	// video=2 scheme=Ours segments=172
	// frame rate reduced below source: true
}

// ExampleRunExperiment regenerates one of the paper's tables through the
// experiment registry.
func ExampleRunExperiment() {
	tables, err := ptile360.RunExperiment("table3", ptile360.QuickScale())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(tables), "table(s)")
	fmt.Println(tables[0].Rows[7][2])
	// Output:
	// 1 table(s)
	// Freestyle Skiing
}

// ExampleVideos lists the Table III catalogue.
func ExampleVideos() {
	for _, v := range ptile360.Videos()[:3] {
		fmt.Printf("%d %s (%v)\n", v.ID, v.Name, v.Class)
	}
	// Output:
	// 1 Basketball Match (focused)
	// 2 Showtime Boxing (focused)
	// 3 Festival Gala (focused)
}
