package httpstream

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"ptile360/internal/obs"
)

// TestFlightMiddleware: the serving path feeds per-client flight sessions —
// joins are stamped once, 2xx records downloads, 5xx records stalls, an
// error burst for one client trips the stall-burst dump on its own, and a
// TriggerAll (the SLO-burn hook) dumps every live client.
func TestFlightMiddleware(t *testing.T) {
	rec := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 1, StallBurst: 3})
	var status int
	mw := FlightMiddleware(rec, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(status)
	}))

	do := func(client, path string, code int) {
		r := httptest.NewRequest("GET", path, nil)
		r.Header.Set("X-Client-Id", client)
		status = code
		w := httptest.NewRecorder()
		mw.ServeHTTP(w, r)
		if w.Code != code {
			t.Fatalf("middleware rewrote status: got %d, want %d", w.Code, code)
		}
	}

	do("alice", "/segment?video=2&seg=4", 200)
	do("alice", "/segment?video=2&seg=5", 200)
	// Three 5xx inside the burst window dump alice's black box.
	for i := 0; i < 3; i++ {
		do("alice", "/segment?video=2&seg=6", 503)
	}
	dumps := rec.Dumps()
	if len(dumps) != 1 || dumps[0].Session != "alice" || dumps[0].Reason != "stall_burst" {
		t.Fatalf("dumps = %+v, want one stall_burst for alice", dumps)
	}
	evs := dumps[0].Events
	if evs[0].Kind != obs.FlightJoin {
		t.Fatalf("first event = %+v, want join", evs[0])
	}
	var downloads, stalls int
	for _, ev := range evs[1:] {
		switch ev.Kind {
		case obs.FlightDownload:
			downloads++
			if ev.V2 != 200 {
				t.Fatalf("download event carries code %v", ev.V2)
			}
		case obs.FlightStall:
			stalls++
			if ev.V2 != 503 {
				t.Fatalf("stall event carries code %v", ev.V2)
			}
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	if downloads != 2 || stalls != 3 {
		t.Fatalf("events = %d downloads, %d stalls, want 2/3", downloads, stalls)
	}
	if evs[1].Seg != 4 || evs[2].Seg != 5 {
		t.Fatalf("segment tags = %d, %d, want 4, 5", evs[1].Seg, evs[2].Seg)
	}

	// A second client stays live; the burn hook dumps both.
	do("bob", "/manifest?video=2", 200)
	if n := rec.TriggerAll("slo:availability"); n != 2 {
		t.Fatalf("TriggerAll dumped %d sessions, want 2 (alice, bob)", n)
	}

	// No X-Client-Id: the remote host becomes the session id.
	r := httptest.NewRequest("GET", "/manifest?video=2", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	status = 200
	mw.ServeHTTP(httptest.NewRecorder(), r)
	if !rec.Trigger("10.1.2.3", "manual") {
		t.Fatal("remote-host session not recorded")
	}

	// A nil recorder is a no-op passthrough.
	passthrough := FlightMiddleware(nil, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(204)
	}))
	w := httptest.NewRecorder()
	passthrough.ServeHTTP(w, httptest.NewRequest("GET", "/", nil))
	if w.Code != 204 {
		t.Fatalf("nil-recorder passthrough status = %d", w.Code)
	}
}

// TestFlightMiddlewareEviction: the client table is bounded — the
// longest-idle client is closed to admit a new one.
func TestFlightMiddlewareEviction(t *testing.T) {
	rec := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 1})
	mw := FlightMiddleware(rec, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(200)
	})).(*flightHandler)
	mw.maxClients = 2

	for _, id := range []string{"a", "b"} {
		r := httptest.NewRequest("GET", "/manifest?video=2", nil)
		r.Header.Set("X-Client-Id", id)
		mw.ServeHTTP(httptest.NewRecorder(), r)
	}
	// Touch "a" so "b" is the idle one, then admit "c".
	for _, id := range []string{"a", "c"} {
		r := httptest.NewRequest("GET", "/manifest?video=2", nil)
		r.Header.Set("X-Client-Id", id)
		mw.ServeHTTP(httptest.NewRecorder(), r)
	}
	if len(mw.sess) != 2 {
		t.Fatalf("table size = %d, want 2", len(mw.sess))
	}
	if _, ok := mw.sess["b"]; ok {
		t.Fatal("idle client b not evicted")
	}
	// Evicted sessions are closed: triggering them no longer dumps.
	if rec.Trigger("b", "manual") {
		t.Fatal("evicted session still live")
	}
	if !rec.Trigger("a", "manual") || !rec.Trigger("c", "manual") {
		t.Fatal("live sessions lost")
	}
}
