package httpstream

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"time"

	"ptile360/internal/obs"
)

// This file is the sharded serving tier: a consistent-hash router spreading
// requests over N replica tile servers, with a hot-object edge cache in
// front (see edgecache.go). Each replica ("shard") usually arrives wrapped
// in its own resilience.Chain reporting to its own registry; the router
// keeps the fleet-wide roll-up: every request ends as exactly one of
// cache-hit, shard request, or unrouted, so
//
//	router_requests_total = router_cache_hits_total
//	                      + router_shard_requests_total
//	                      + router_unrouted_total
//
// and router_shard_requests_total reconciles exactly with the sum of the
// per-shard chains' outcome counters (the soak test enforces both).

// Ring is a consistent-hash ring with virtual nodes. Keys map to the first
// ring point clockwise from their hash, so adding a shard moves to it only
// the keys it now owns, and removing a shard moves only that shard's keys —
// every other mapping is untouched (the fuzz target pins both properties
// exactly). Ring is not safe for concurrent use; Router guards it.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds an empty ring with the given virtual-node count per shard
// (0 means the 64 default; more vnodes → smoother key spread).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash is FNV-1a pushed through a 64-bit mix finalizer. Raw FNV
// barely avalanches when inputs differ only in a short suffix — "a#0" …
// "a#63" (and "…s=0" … "…s=499") land in one tight cluster, collapsing
// the ring into one arc per shard. The finalizer spreads them uniformly.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a shard's virtual nodes. Adding a present member is a no-op.
func (r *Ring) Add(shard string) {
	if r.members[shard] {
		return
	}
	r.members[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:  ringHash(fmt.Sprintf("%s#%d", shard, v)),
			shard: shard,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes. Removing an absent member is a
// no-op.
func (r *Ring) Remove(shard string) {
	if !r.members[shard] {
		return
	}
	delete(r.members, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the live shard names (unordered).
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for s := range r.members {
		out = append(out, s)
	}
	return out
}

// Lookup maps a key to its owning shard. ok is false on an empty ring.
func (r *Ring) Lookup(key string) (shard string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard, true
}

// Shard is one replica behind the router: a name (stable identity on the
// ring) and its handler, typically resilience.Chain → faultinject →
// Server.
type Shard struct {
	Name    string
	Handler http.Handler
}

// RouterConfig tunes the sharded tier.
type RouterConfig struct {
	// VNodes is the virtual-node count per shard (0 → 64).
	VNodes int
	// Cache configures the edge cache; a zero value uses the defaults.
	Cache EdgeCacheConfig
	// KeyFunc derives the ring key from a request. The default keys by
	// (path, video, seg) so all quality/frame-rate variants of a segment
	// land on one shard.
	KeyFunc func(*http.Request) string
	// Registry receives the router metrics; nil creates a private registry.
	Registry *obs.Registry
	// SpanRing resizes the router tracer's recent-spans ring (0 → 128).
	SpanRing int
}

// TierLedger is the router's fleet-wide outcome roll-up, read from the same
// counters the registry scrapes (so ledger and scrape cannot disagree).
type TierLedger struct {
	// Requests counts every request entering the router.
	Requests int64
	// CacheHits counts requests served from the edge cache or a shared
	// singleflight fill, i.e. without a shard request of their own.
	CacheHits int64
	// ShardRequests counts requests that reached a shard handler.
	ShardRequests int64
	// Unrouted counts requests refused because the ring was empty.
	Unrouted int64
	// PerShard maps shard name → requests that reached it.
	PerShard map[string]int64
	// CatalogVersion is the current cache-invalidation epoch.
	CatalogVersion int64
}

// Router is the sharded serving tier's front door.
type Router struct {
	mu       sync.RWMutex
	ring     *Ring
	handlers map[string]http.Handler
	keyFunc  func(*http.Request) string

	cache *EdgeCache
	reg   *obs.Registry

	requests  *obs.Counter
	hits      *obs.Counter
	shardReqs *obs.Counter
	unrouted  *obs.Counter
	version   *obs.Gauge
	perShard  map[string]*obs.Counter
	tracer    *obs.Tracer
	latency   *obs.Histogram
}

// NewRouter builds the tier over an initial shard set.
func NewRouter(cfg RouterConfig, shards ...Shard) (*Router, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	keyFunc := cfg.KeyFunc
	if keyFunc == nil {
		keyFunc = DefaultRingKey
	}
	rt := &Router{
		ring:     NewRing(cfg.VNodes),
		handlers: make(map[string]http.Handler),
		keyFunc:  keyFunc,
		cache:    NewEdgeCache(cfg.Cache),
		reg:      reg,
		perShard: make(map[string]*obs.Counter),
	}
	rt.requests = reg.Counter("router_requests_total", "Requests entering the sharded tier.")
	rt.hits = reg.Counter("router_cache_hits_total", "Requests served by the edge cache (stored entry or shared fill).")
	rt.shardReqs = reg.Counter("router_shard_requests_total", "Requests that reached a shard handler.")
	rt.unrouted = reg.Counter("router_unrouted_total", "Requests refused because no shard was live.")
	rt.version = reg.Gauge("router_catalog_version", "Current catalogue version (edge-cache epoch).")
	rt.tracer = obs.NewTracer(reg, "router_request")
	if cfg.SpanRing > 0 {
		rt.tracer.SetRingSize(cfg.SpanRing)
	}
	rt.latency = reg.Histogram("router_request_seconds", "Sharded-tier request latency at the router.", nil)
	reg.GaugeFunc("router_shards", "Live shard count.", func() float64 {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		return float64(len(rt.handlers))
	})
	reg.GaugeFunc("router_cache_entries", "Stored edge-cache entries.", func() float64 {
		return float64(rt.cache.Entries())
	})
	for _, s := range shards {
		if err := rt.AddShard(s); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// DefaultRingKey keys a request by (path, video, seg): every variant of a
// segment maps to one shard, spreading the catalogue across the tier.
func DefaultRingKey(r *http.Request) string {
	q := r.URL.Query()
	return r.URL.Path + "|v=" + q.Get("video") + "|s=" + q.Get("seg")
}

// Registry returns the registry carrying the router metrics.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Tracer returns the router's request tracer for /debug/spans mounting and
// SpanHub stitching.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// AddShard inserts a replica and rebalances the ring (only keys the new
// shard now owns move to it).
func (rt *Router) AddShard(s Shard) error {
	if s.Name == "" || s.Handler == nil {
		return fmt.Errorf("httpstream: shard needs a name and a handler")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.handlers[s.Name]; dup {
		return fmt.Errorf("httpstream: duplicate shard %q", s.Name)
	}
	rt.handlers[s.Name] = s.Handler
	rt.ring.Add(s.Name)
	if _, ok := rt.perShard[s.Name]; !ok {
		rt.perShard[s.Name] = rt.reg.Counter("router_shard_requests_by_shard_total",
			"Requests that reached one shard.", obs.L("shard", s.Name))
	}
	return nil
}

// RemoveShard drops a replica; only its keys move (to their next ring
// point). Its request counter remains registered — history survives the
// shard.
func (rt *Router) RemoveShard(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.handlers[name]; !ok {
		return fmt.Errorf("httpstream: unknown shard %q", name)
	}
	delete(rt.handlers, name)
	rt.ring.Remove(name)
	return nil
}

// BumpCatalogVersion invalidates the whole edge cache: the epoch is part of
// every cache key, so entries of older versions can never be served again,
// and the store is flushed eagerly to release memory. Call it whenever a
// shard's catalogue changes.
func (rt *Router) BumpCatalogVersion() int64 {
	v := rt.cache.Bump()
	rt.version.Set(float64(v))
	return v
}

// Ledger reads the fleet-wide roll-up from the live counters.
func (rt *Router) Ledger() TierLedger {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	led := TierLedger{
		Requests:       int64(rt.requests.Value()),
		CacheHits:      int64(rt.hits.Value()),
		ShardRequests:  int64(rt.shardReqs.Value()),
		Unrouted:       int64(rt.unrouted.Value()),
		PerShard:       make(map[string]int64, len(rt.perShard)),
		CatalogVersion: int64(rt.version.Value()),
	}
	for name, c := range rt.perShard {
		led.PerShard[name] = int64(c.Value())
	}
	return led
}

// ServeHTTP implements http.Handler: pick the shard by consistent hash,
// then serve through the edge cache (manifest and segment GETs) or
// directly.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.requests.Inc()
	// Join (or start) the cross-tier trace: the router adopts the client's
	// trace id from the propagation headers, minting one for untraced
	// requests, and re-parents both the context and the forward headers so
	// shards — in-process or remote — continue the same trace.
	span := rt.tracer.Start(rt.keyFunc(r))
	tc, _ := obs.TraceFromHeader(r.Header)
	span.WithTrace(tc)
	down := span.TraceContext()
	w.Header().Set(obs.TraceIDHeader, down.TraceID)
	down.SetHeader(r.Header)
	r = r.WithContext(obs.WithTraceContext(r.Context(), down))
	start := time.Now()
	defer func() {
		span.Stage("serve")
		span.End()
		rt.latency.ObserveExemplar(time.Since(start).Seconds(), down.TraceID)
	}()

	rt.mu.RLock()
	name, ok := rt.ring.Lookup(rt.keyFunc(r))
	h := rt.handlers[name]
	counter := rt.perShard[name]
	rt.mu.RUnlock()
	span.Stage("route")
	if !ok || h == nil {
		rt.unrouted.Inc()
		http.Error(w, "router: no live shard", http.StatusServiceUnavailable)
		return
	}
	// Count a shard request at the moment the shard actually serves one —
	// a cache hit or a shared singleflight fill never increments this.
	toShard := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.shardReqs.Inc()
		counter.Inc()
		h.ServeHTTP(w, r)
	})
	if cacheable(r) {
		if served := rt.cache.Serve(w, r, toShard); served {
			rt.hits.Inc()
		}
		return
	}
	toShard.ServeHTTP(w, r)
}

// cacheable marks the hot read-only objects: manifest and segment GETs.
func cacheable(r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != "" {
		return false
	}
	return r.URL.Path == "/manifest" || r.URL.Path == "/segment"
}
