package httpstream

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

type harness struct {
	server *httptest.Server
	cat    *sim.Catalog
	eval   []*headtrace.Trace
}

// The harness is expensive (catalog build) and shared across the whole
// package, including parallel and fuzz workers — build it exactly once
// behind a sync.Once so the cache is race-clean.
var (
	harnessOnce  sync.Once
	harnessCache *harness
	harnessErr   error
)

func newHarness(t *testing.T) *harness {
	t.Helper()
	harnessOnce.Do(func() { harnessCache, harnessErr = buildHarness() })
	if harnessErr != nil {
		t.Fatal(harnessErr)
	}
	return harnessCache
}

func buildHarness() (*harness, error) {
	p, err := video.ProfileByID(2)
	if err != nil {
		return nil, err
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 14
	ds, err := headtrace.Generate(p, gcfg, 11)
	if err != nil {
		return nil, err
	}
	train, eval, err := ds.SplitTrainEval(10, 3)
	if err != nil {
		return nil, err
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return nil, err
	}
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return nil, err
	}
	srv, err := NewServer(map[int]*sim.Catalog{2: cat}, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		return nil, err
	}
	return &harness{server: httptest.NewServer(srv), cat: cat, eval: eval}, nil
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, video.DefaultEncoderConfig(), []float64{30}); err == nil {
		t.Fatal("want error for no catalogues")
	}
	h := newHarness(t)
	if _, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.EncoderConfig{}, []float64{30}); err == nil {
		t.Fatal("want error for invalid encoder")
	}
	if _, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.DefaultEncoderConfig(), nil); err == nil {
		t.Fatal("want error for no frame rates")
	}
}

func TestManifestEndpoint(t *testing.T) {
	h := newHarness(t)
	resp, err := http.Get(h.server.URL + "/manifest?video=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.VideoID != 2 || m.SegmentSec != 1 || len(m.Segments) != 172 {
		t.Fatalf("manifest malformed: video %d, %g s, %d segments", m.VideoID, m.SegmentSec, len(m.Segments))
	}
	if len(m.FrameRates) != 4 || m.SourceFPS != 30 {
		t.Fatalf("frame rates wrong: %v @ %g", m.FrameRates, m.SourceFPS)
	}
}

func TestManifestErrors(t *testing.T) {
	h := newHarness(t)
	for _, path := range []string{"/manifest", "/manifest?video=abc", "/manifest?video=99"} {
		resp, err := http.Get(h.server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s should fail", path)
		}
	}
}

func TestSegmentEndpointPtile(t *testing.T) {
	h := newHarness(t)
	// Find a segment with at least one Ptile.
	seg := -1
	for i, pts := range h.cat.Ptiles {
		if len(pts) > 0 {
			seg = i
			break
		}
	}
	if seg < 0 {
		t.Fatal("no segment with a Ptile")
	}
	resp, err := http.Get(h.server.URL + "/segment?video=2&seg=" + strconv.Itoa(seg) + "&q=4&f=27&ptile=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) < 10_000 {
		t.Fatalf("segment body suspiciously small: %d bytes", len(body))
	}
	// The size must match the encoder model.
	wantLen := resp.Header.Get("Content-Length")
	if strconv.Itoa(len(body)) != wantLen {
		t.Fatalf("body %d bytes vs Content-Length %s", len(body), wantLen)
	}

	// A lower quality must be smaller.
	resp2, err := http.Get(h.server.URL + "/segment?video=2&seg=" + strconv.Itoa(seg) + "&q=1&f=27&ptile=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body2) >= len(body) {
		t.Fatalf("q1 payload (%d) not smaller than q4 (%d)", len(body2), len(body))
	}
}

func TestSegmentEndpointConventional(t *testing.T) {
	h := newHarness(t)
	resp, err := http.Get(h.server.URL + "/segment?video=2&seg=0&q=3&cx=180&cy=90")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100_000 {
		t.Fatalf("conventional segment too small: %d bytes", n)
	}
}

func TestSegmentEndpointErrors(t *testing.T) {
	h := newHarness(t)
	cases := []string{
		"/segment?video=2&seg=abc&q=3&cx=0&cy=90",
		"/segment?video=2&seg=99999&q=3&cx=0&cy=90",
		"/segment?video=2&seg=0&q=9&cx=0&cy=90",
		"/segment?video=2&seg=0&q=abc&cx=0&cy=90",
		"/segment?video=2&seg=0&q=3&f=bad&cx=0&cy=90",
		"/segment?video=2&seg=0&q=3&ptile=99",
		"/segment?video=2&seg=0&q=3&ptile=bad",
		"/segment?video=2&seg=0&q=3", // conventional without center
		"/segment?video=99&seg=0&q=3&cx=0&cy=90",
	}
	for _, path := range cases {
		resp, err := http.Get(h.server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s should fail", path)
		}
	}
}

func TestHealthz(t *testing.T) {
	h := newHarness(t)
	resp, err := http.Get(h.server.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %s", resp.Status)
	}
}

func TestClientConfigValidate(t *testing.T) {
	good := ClientConfig{BaseURL: "http://127.0.0.1:1", Phone: power.Pixel3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ClientConfig{
		{},
		{BaseURL: "http://x", TimeCompression: -1},
		{BaseURL: "http://x", MaxSegments: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("want error for empty client config")
	}
}

func TestClientStreamUnshaped(t *testing.T) {
	h := newHarness(t)
	client, err := NewClient(ClientConfig{
		BaseURL:     h.server.URL,
		Phone:       power.Pixel3,
		MaxSegments: 12,
		UseMPC:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := client.Stream(2, h.eval[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Segments) != 12 {
		t.Fatalf("streamed %d segments, want 12", len(report.Segments))
	}
	if report.TotalBytes <= 0 || report.TotalEnergyMJ <= 0 {
		t.Fatalf("empty accounting: %+v", report)
	}
	for _, rec := range report.Segments {
		if rec.Bytes <= 0 || rec.ThroughputBps <= 0 {
			t.Fatalf("segment %d malformed: %+v", rec.Segment, rec)
		}
		if rec.Quality < 1 || rec.Quality > 5 {
			t.Fatalf("segment %d quality %d", rec.Segment, rec.Quality)
		}
	}
}

func TestClientStreamShaped(t *testing.T) {
	h := newHarness(t)
	_, tr2, err := lte.StandardTraces(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{
		BaseURL:         h.server.URL,
		Phone:           power.Pixel3,
		Shape:           tr2,
		TimeCompression: 200, // keep the test fast
		MaxSegments:     6,
		UseMPC:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := client.Stream(2, h.eval[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Segments) != 6 {
		t.Fatalf("streamed %d segments, want 6", len(report.Segments))
	}
	// Shaped throughput must be in the LTE trace's ballpark, not local-loop
	// gigabits.
	for _, rec := range report.Segments {
		if rec.ThroughputBps > 20e6 {
			t.Fatalf("segment %d throughput %.0f bps: shaping not applied", rec.Segment, rec.ThroughputBps)
		}
	}
}

func TestClientStreamValidation(t *testing.T) {
	h := newHarness(t)
	client, err := NewClient(ClientConfig{BaseURL: h.server.URL, Phone: power.Pixel3, MaxSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stream(2, nil); err == nil {
		t.Fatal("want error for nil viewer")
	}
	if _, err := client.Stream(99, h.eval[0]); err == nil {
		t.Fatal("want error for unknown video")
	}
}

func TestConcurrentClients(t *testing.T) {
	// Several viewers stream from the same server simultaneously; each
	// session must complete with independent, sane accounting.
	h := newHarness(t)
	const n = 4
	reports := make([]*SessionReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := NewClient(ClientConfig{
				BaseURL:     h.server.URL,
				Phone:       power.Pixel3,
				MaxSegments: 8,
				UseMPC:      true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = client.Stream(2, h.eval[i%len(h.eval)])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if len(reports[i].Segments) != 8 || reports[i].TotalBytes <= 0 {
			t.Fatalf("client %d: malformed report", i)
		}
	}
	// Identical viewers must produce identical downloads even under
	// concurrency (the server is stateless per request).
	if reports[0].TotalBytes != reports[len(h.eval)%n].TotalBytes && len(h.eval) <= n {
		// Same viewer index wraps around when n > len(eval).
		t.Log("viewer wrap check skipped: distinct viewers")
	}
}

func TestServerConcurrentMixedRequests(t *testing.T) {
	// Hammer the server with interleaved manifest/segment/invalid requests.
	h := newHarness(t)
	paths := []string{
		"/manifest?video=2",
		"/segment?video=2&seg=0&q=3&cx=180&cy=90",
		"/segment?video=2&seg=1&q=1&cx=10&cy=70",
		"/healthz",
		"/segment?video=99&seg=0&q=3&cx=0&cy=90", // 404
		"/manifest?video=abc",                    // 400
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 60)
	for i := 0; i < 10; i++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				resp, err := http.Get(h.server.URL + p)
				if err != nil {
					errCh <- err
					return
				}
				defer resp.Body.Close()
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					errCh <- err
				}
			}(p)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent request failed: %v", err)
	}
}
