package httpstream

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/obs"
	"ptile360/internal/resilience"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// envInt reads a positive integer knob from the environment, falling back
// to def — lets CI scale the soak without editing code.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// ringKeys is the fixed key corpus the rebalance tests map through the
// ring.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("/segment|v=2|s=%d", i)
	}
	return keys
}

func ringSnapshot(r *Ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		if shard, ok := r.Lookup(k); ok {
			m[k] = shard
		}
	}
	return m
}

func TestRingExactRebalance(t *testing.T) {
	keys := ringKeys(500)
	r := NewRing(128)
	if _, ok := r.Lookup("x"); ok {
		t.Fatal("lookup on empty ring succeeded")
	}
	r.Add("a")
	r.Add("b")
	r.Add("c")
	before := ringSnapshot(r, keys)
	owned := map[string]int{}
	for _, s := range before {
		owned[s]++
	}
	for _, name := range []string{"a", "b", "c"} {
		if owned[name] == 0 {
			t.Fatalf("shard %s owns no keys out of %d; vnode spread is broken", name, len(keys))
		}
	}

	// Removing b moves exactly b's keys; a's and c's mappings are untouched.
	r.Remove("b")
	after := ringSnapshot(r, keys)
	for _, k := range keys {
		if after[k] == "b" {
			t.Fatalf("key %s maps to removed shard", k)
		}
		if before[k] != "b" && after[k] != before[k] {
			t.Fatalf("key %s moved %s→%s although b did not own it", k, before[k], after[k])
		}
	}

	// Re-adding b restores the original mapping exactly (hash points are
	// deterministic), which also proves Add moves only the keys the new
	// shard owns.
	r.Add("b")
	restored := ringSnapshot(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %s: %s after re-add, want %s", k, restored[k], before[k])
		}
	}
}

// FuzzConsistentHashRouter drives random add/remove sequences, checking the
// exact rebalance contract after every mutation: no key ever maps to a dead
// shard, and the set of moved keys is precisely the set the changed shard
// owns — removing s moves only s's keys, adding s moves only keys s now
// owns. (That is the strongest form of the "≤ expected fraction" property:
// nothing moves except what must.)
func FuzzConsistentHashRouter(f *testing.F) {
	f.Add([]byte{0, 1, 2, 9, 1, 0})
	f.Add([]byte{0, 0, 8, 1, 8, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := ringKeys(120)
		r := NewRing(16)
		live := map[string]bool{}
		prev := ringSnapshot(r, keys)
		for _, b := range data {
			name := fmt.Sprintf("shard-%d", b&7)
			adding := b&8 == 0
			if adding == live[name] {
				adding = !adding // flip to the meaningful operation
			}
			if adding {
				r.Add(name)
				live[name] = true
			} else {
				r.Remove(name)
				delete(live, name)
			}
			cur := ringSnapshot(r, keys)
			if len(live) == 0 {
				if len(cur) != 0 {
					t.Fatalf("empty ring still resolves %d keys", len(cur))
				}
				prev = cur
				continue
			}
			for _, k := range keys {
				owner, ok := cur[k]
				if !ok {
					t.Fatalf("key %s unresolved with %d live shards", k, len(live))
				}
				if !live[owner] {
					t.Fatalf("key %s maps to dead shard %s", k, owner)
				}
				if adding {
					if owner != name && len(prev) > 0 && owner != prev[k] {
						t.Fatalf("add %s moved key %s from %s to %s", name, k, prev[k], owner)
					}
				} else {
					if prev[k] != name && owner != prev[k] {
						t.Fatalf("remove %s moved key %s from %s to %s", name, k, prev[k], owner)
					}
				}
			}
			prev = cur
		}
	})
}

func TestRouterCacheSingleflightAndInvalidation(t *testing.T) {
	var origin atomic.Int64
	gate := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		origin.Add(1)
		<-gate
		w.Header().Set("Content-Length", "2")
		w.Write([]byte("ok"))
	})
	rt, err := NewRouter(RouterConfig{}, Shard{Name: "a", Handler: slow})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/manifest?video=2")
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != "ok" {
				errs <- fmt.Errorf("body %q", body)
			}
		}()
	}
	// Let the requests pile onto the single in-progress fill, then open it.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := origin.Load(); got != 1 {
		t.Fatalf("origin saw %d requests for one key, want 1 (singleflight)", got)
	}
	led := rt.Ledger()
	if led.Requests != n || led.ShardRequests != 1 || led.CacheHits != n-1 {
		t.Fatalf("ledger %+v, want requests=%d shard=1 hits=%d", led, n, n-1)
	}

	// A stored entry serves without the origin; a version bump invalidates
	// it and the next request refills.
	resp, err := http.Get(ts.URL + "/manifest?video=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Edge-Cache") != "hit" {
		t.Fatal("second-round request missed the cache")
	}
	if got := origin.Load(); got != 1 {
		t.Fatalf("origin saw %d requests, want still 1", got)
	}
	rt.BumpCatalogVersion()
	resp, err = http.Get(ts.URL + "/manifest?video=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Edge-Cache") == "hit" {
		t.Fatal("request after catalog bump served from stale cache")
	}
	if got := origin.Load(); got != 2 {
		t.Fatalf("origin saw %d requests after bump, want 2 (refill)", got)
	}
}

func TestEdgeCacheRejectsTruncatedBody(t *testing.T) {
	var origin atomic.Int64
	truncating := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		origin.Add(1)
		// Declares 100 bytes, delivers 4: must never enter the cache.
		w.Header().Set("Content-Length", "100")
		w.Write([]byte("oops"))
		panic(http.ErrAbortHandler)
	})
	rt, err := NewRouter(RouterConfig{}, Shard{Name: "a", Handler: truncating})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/segment?video=2&seg=0&q=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.Header.Get("X-Edge-Cache") == "hit" {
				t.Fatal("truncated response was served from cache")
			}
		}
	}
	if got := origin.Load(); got != 3 {
		t.Fatalf("origin saw %d requests, want 3 (nothing cacheable)", got)
	}
}

func TestRouterNoShards(t *testing.T) {
	rt, err := NewRouter(RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/manifest?video=2", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	led := rt.Ledger()
	if led.Requests != 1 || led.Unrouted != 1 {
		t.Fatalf("ledger %+v, want one unrouted request", led)
	}
}

func TestRouterShardLifecycle(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("x")) })
	rt, err := NewRouter(RouterConfig{}, Shard{Name: "a", Handler: ok})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AddShard(Shard{Name: "a", Handler: ok}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if err := rt.AddShard(Shard{Name: "", Handler: ok}); err == nil {
		t.Fatal("anonymous shard accepted")
	}
	if err := rt.RemoveShard("ghost"); err == nil {
		t.Fatal("removing unknown shard succeeded")
	}
	if err := rt.AddShard(Shard{Name: "b", Handler: ok}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RemoveShard("a"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after rebalance, want 200", rec.Code)
	}
	led := rt.Ledger()
	if led.PerShard["b"] != 1 || led.PerShard["a"] != 0 {
		t.Fatalf("per-shard counts %+v, want the request on b", led.PerShard)
	}
}

// TestShardedTierSoak is the tier's chaos acceptance: concurrent clients
// hammer a 3-shard router (one shard fault-injected) through the edge
// cache while the catalogue version is bumped and a fourth shard joins and
// leaves mid-storm. Afterwards the fleet-wide ledger must reconcile exactly
// with the per-shard /metrics scrapes:
//
//	requests = cache hits + shard requests + unrouted
//	shard requests = Σ over shards of Σ resilience_requests_total
//	per-shard router counters = that shard's chain terminal total
//
// and after drain the process returns to its goroutine baseline.
func TestShardedTierSoak(t *testing.T) {
	h := newHarness(t)
	nClients := envInt("TIER_SOAK_CLIENTS", 8)
	nReqs := envInt("TIER_SOAK_REQS", 150)
	baseline := runtime.NumGoroutine()

	type shardParts struct {
		name  string
		chain *resilience.Chain
		reg   *obs.Registry
	}
	newShard := func(name string, seed int64, faulty bool) (Shard, shardParts) {
		srv, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
		if err != nil {
			t.Fatal(err)
		}
		var inner http.Handler = srv
		if faulty {
			profile := faultinject.Profile{
				Name:        "tier-soak",
				LatencyProb: 0.3, LatencyMin: 50 * time.Millisecond, LatencyMax: 300 * time.Millisecond,
				Error5xxProb: 0.10,
				ResetProb:    0.03,
				TruncateProb: 0.05, TruncateFrac: 0.4,
				TimeScale: 50,
			}
			inner, err = faultinject.Middleware(profile, seed, srv)
			if err != nil {
				t.Fatal(err)
			}
		}
		reg := obs.NewRegistry()
		chain, err := resilience.NewChain(resilience.Config{
			Registry:       reg,
			MaxInFlight:    16,
			MaxQueue:       32,
			QueueTimeout:   200 * time.Millisecond,
			HandlerTimeout: 5 * time.Second,
			Breaker:        nil, // outcomes stay admitted/shed: reconciliation covers the sum either way
		}, inner)
		if err != nil {
			t.Fatal(err)
		}
		return Shard{Name: name, Handler: chain}, shardParts{name: name, chain: chain, reg: reg}
	}

	shardA, partsA := newShard("shard-a", 1, false)
	shardB, partsB := newShard("shard-b", 2, true) // the chaos shard
	shardC, partsC := newShard("shard-c", 3, false)
	shardD, partsD := newShard("shard-d", 4, false) // joins and leaves mid-storm
	parts := []shardParts{partsA, partsB, partsC, partsD}

	routerReg := obs.NewRegistry()
	rt, err := NewRouter(RouterConfig{Registry: routerReg}, shardA, shardB, shardC)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	var attempts atomic.Int64
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			client := &http.Client{
				Transport: &http.Transport{DisableKeepAlives: true},
				Timeout:   30 * time.Second,
			}
			for i := 0; i < nReqs; i++ {
				var url string
				if rng.Intn(5) == 0 {
					url = fmt.Sprintf("%s/manifest?video=2", ts.URL)
				} else {
					url = fmt.Sprintf("%s/segment?video=2&seg=%d&q=%d&f=0&ptile=0",
						ts.URL, rng.Intn(10), 1+rng.Intn(5))
				}
				attempts.Add(1)
				resp, err := client.Get(url)
				if err != nil {
					failed.Add(1) // injected reset: terminal on both sides
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				}
			}
		}(c)
	}

	// Mid-storm mutations: catalogue bumps plus a shard joining and
	// leaving, all while requests are in flight.
	mutDone := make(chan struct{})
	go func() {
		defer close(mutDone)
		for i := 0; i < 5; i++ {
			time.Sleep(40 * time.Millisecond)
			rt.BumpCatalogVersion()
			if i%2 == 0 {
				if err := rt.AddShard(shardD); err != nil {
					t.Errorf("mid-storm add: %v", err)
					return
				}
			} else {
				if err := rt.RemoveShard("shard-d"); err != nil {
					t.Errorf("mid-storm remove: %v", err)
					return
				}
			}
		}
		// Leave shard-d out for the drain phase.
		if err := rt.RemoveShard("shard-d"); err != nil {
			t.Errorf("final remove: %v", err)
		}
	}()

	wg.Wait()
	<-mutDone

	// Drain every chain; a post-drain probe must be shed with Retry-After.
	for _, p := range parts {
		p.chain.StartDrain()
	}
	probe, err := http.Get(ts.URL + "/segment?video=2&seg=999&q=1") // uncached key
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, probe.Body)
	probe.Body.Close()
	probes := int64(1)
	if probe.StatusCode != http.StatusServiceUnavailable || probe.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain probe: status %d retry-after %q; want shed with hint",
			probe.StatusCode, probe.Header.Get("Retry-After"))
	}

	// ---- Reconciliation ----
	led := rt.Ledger()
	wantRequests := attempts.Load() + probes
	if led.Requests != wantRequests {
		t.Fatalf("router saw %d requests, clients issued %d", led.Requests, wantRequests)
	}
	if led.Requests != led.CacheHits+led.ShardRequests+led.Unrouted {
		t.Fatalf("ledger does not partition: %+v", led)
	}
	if led.Unrouted != 0 {
		t.Fatalf("%d requests found no shard; the ring was never empty", led.Unrouted)
	}
	if led.CacheHits == 0 {
		t.Fatal("the soak never hit the edge cache")
	}
	if served.Load() == 0 {
		t.Fatal("no request was ever served; the soak never exercised the happy path")
	}

	// The router's ledger IS its scrape: parse the Prometheus text and
	// compare the series values exactly.
	var routerText strings.Builder
	if err := routerReg.WritePrometheus(&routerText); err != nil {
		t.Fatal(err)
	}
	routerSamples, err := obs.ParsePrometheus(routerText.String())
	if err != nil {
		t.Fatal(err)
	}
	scraped := map[string]float64{}
	for _, s := range routerSamples {
		scraped[s.Series()] += s.Value
	}
	if got := scraped["router_requests_total"]; got != float64(led.Requests) {
		t.Fatalf("scraped router_requests_total %g != ledger %d", got, led.Requests)
	}
	if got := scraped["router_shard_requests_total"]; got != float64(led.ShardRequests) {
		t.Fatalf("scraped router_shard_requests_total %g != ledger %d", got, led.ShardRequests)
	}

	// Shard requests reconcile exactly with the per-shard chains' outcome
	// counters, shard by shard and in total.
	var chainTotal int64
	for _, p := range parts {
		var text strings.Builder
		if err := p.reg.WritePrometheus(&text); err != nil {
			t.Fatal(err)
		}
		samples, err := obs.ParsePrometheus(text.String())
		if err != nil {
			t.Fatal(err)
		}
		var terminal int64
		for _, s := range samples {
			if s.Name == resilience.MetricRequestsTotal {
				terminal += int64(s.Value)
			}
		}
		if snap := p.chain.Snapshot().Totals().Terminal(); snap != terminal {
			t.Fatalf("%s: scrape %d != snapshot %d", p.name, terminal, snap)
		}
		if perShard := led.PerShard[p.name]; perShard != terminal {
			t.Fatalf("%s: router counted %d requests, chain terminated %d", p.name, perShard, terminal)
		}
		chainTotal += terminal
	}
	if chainTotal != led.ShardRequests {
		t.Fatalf("chains terminated %d requests, router forwarded %d", chainTotal, led.ShardRequests)
	}

	// Goroutine-leak check after drain.
	ts.Close()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Logf("tier soak: %d requests, %d cache hits, %d shard requests, %d served, %d reset",
		led.Requests, led.CacheHits, led.ShardRequests, served.Load(), failed.Load())
}
