package httpstream

import (
	"ptile360/internal/obs"
)

// Session telemetry is the client-side answer to the paper's headline
// series: for every downloaded segment the client emits one TelemetryRecord
// carrying the chosen bitrate and frame rate, the rebuffer (stall) time,
// the QoE loss against the best version the ladder offered, and the
// modeled transmission/decode/render energy (Eq. 1). cmd/stream prints the
// records as JSON lines; with a registry attached, the same numbers feed
// counters and histograms a scrape can watch live.

// TelemetryRecord is the per-segment session telemetry datum.
type TelemetryRecord struct {
	// Session identifies the client session (ClientID when set).
	Session string `json:"session,omitempty"`
	// Video and Segment address the content.
	Video   int `json:"video"`
	Segment int `json:"segment"`
	// Quality is the served version's quality level (0 when abandoned).
	Quality int `json:"quality"`
	// FrameRate is the served frame rate in fps (0 when abandoned).
	FrameRate float64 `json:"frame_rate"`
	// BitrateMbps is the served segment size over the segment duration.
	BitrateMbps float64 `json:"bitrate_mbps"`
	// ThroughputMbps is the measured goodput of the successful download.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// Bytes is the payload size received.
	Bytes int64 `json:"bytes"`
	// StallSec is the rebuffering time charged to the segment.
	StallSec float64 `json:"stall_sec"`
	// QoE is the perceived quality Q(v, f) of the served version.
	QoE float64 `json:"qoe"`
	// QoEBest is the best perceived quality any offered version had.
	QoEBest float64 `json:"qoe_best"`
	// QoELoss is (QoEBest − QoE) / QoEBest — the paper's ≤5 % constraint
	// watches exactly this quantity. 1 for an abandoned segment.
	QoELoss float64 `json:"qoe_loss"`
	// EnergyMJ is the total Eq. 1 segment energy; TxEnergyMJ and
	// DecodeEnergyMJ split out the transmission and decode terms
	// (render is the remainder).
	EnergyMJ       float64 `json:"energy_mj"`
	TxEnergyMJ     float64 `json:"tx_energy_mj"`
	DecodeEnergyMJ float64 `json:"decode_energy_mj"`
	// FromPtile reports whether a Ptile served the segment.
	FromPtile bool `json:"from_ptile"`
	// Retries, DegradeSteps, and Abandoned are the resilience accounting.
	Retries      int  `json:"retries"`
	DegradeSteps int  `json:"degrade_steps,omitempty"`
	Abandoned    bool `json:"abandoned,omitempty"`
	// BufferSec is the buffer level when the download started.
	BufferSec float64 `json:"buffer_sec"`
	// ViewX/ViewY are the predicted viewport center the segment was fetched
	// for (panorama degrees) — the viewport report internal/ptilelive
	// clusters into online Ptiles.
	ViewX float64 `json:"view_x"`
	ViewY float64 `json:"view_y"`
}

// telemetryFrom converts one segment's accounting into the wire record.
func telemetryFrom(session string, videoID int, segmentSec float64, rec SegmentRecord) TelemetryRecord {
	tr := TelemetryRecord{
		Session:        session,
		Video:          videoID,
		Segment:        rec.Segment,
		Quality:        int(rec.Quality),
		FrameRate:      rec.FrameRate,
		ThroughputMbps: rec.ThroughputBps / 1e6,
		Bytes:          rec.Bytes,
		StallSec:       rec.StallSec,
		QoE:            rec.PerceivedQuality,
		QoEBest:        rec.BestPerceivedQuality,
		EnergyMJ:       rec.EnergyMJ,
		TxEnergyMJ:     rec.TxEnergyMJ,
		DecodeEnergyMJ: rec.DecodeEnergyMJ,
		FromPtile:      rec.FromPtile,
		Retries:        rec.Retries,
		DegradeSteps:   rec.DegradeSteps,
		Abandoned:      rec.Abandoned,
		BufferSec:      rec.BufferSec,
		ViewX:          rec.ViewCenter.X,
		ViewY:          rec.ViewCenter.Y,
	}
	if segmentSec > 0 {
		tr.BitrateMbps = float64(rec.Bytes) * 8 / segmentSec / 1e6
	}
	if rec.Abandoned {
		tr.QoELoss = 1
	} else if rec.BestPerceivedQuality > 0 {
		tr.QoELoss = (rec.BestPerceivedQuality - rec.PerceivedQuality) / rec.BestPerceivedQuality
	}
	return tr
}

// clientObs holds the client's registry handles: one atomic add per
// segment event, created once in NewClient.
type clientObs struct {
	tracer    *obs.Tracer
	served    *obs.Counter
	abandoned *obs.Counter
	retries   *obs.Counter
	degraded  *obs.Counter
	bytes     *obs.Counter
	stallSec  *obs.Counter
	energyMJ  *obs.Counter
	qoeLoss   *obs.Histogram
}

// qoeLossBuckets resolve the paper's ≤5 % region finely.
var qoeLossBuckets = []float64{0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1}

func newClientObs(reg *obs.Registry) *clientObs {
	return &clientObs{
		tracer: obs.NewTracer(reg, "client_segment"),
		served: reg.Counter("client_segments_total",
			"Segments downloaded by the streaming client.", obs.L("result", "served")),
		abandoned: reg.Counter("client_segments_total",
			"Segments downloaded by the streaming client.", obs.L("result", "abandoned")),
		retries: reg.Counter("client_retries_total",
			"Failed download attempts across the session."),
		degraded: reg.Counter("client_degraded_segments_total",
			"Segments served below the controller's chosen rung."),
		bytes: reg.Counter("client_bytes_total",
			"Payload bytes received."),
		stallSec: reg.Counter("client_stall_seconds_total",
			"Rebuffering time charged across the session."),
		energyMJ: reg.Counter("client_energy_millijoules_total",
			"Modeled Eq. 1 segment energy across the session."),
		qoeLoss: reg.Histogram("client_qoe_loss",
			"Per-segment QoE loss relative to the best offered version.", qoeLossBuckets),
	}
}

// observe feeds one segment's telemetry into the registry.
func (o *clientObs) observe(tr TelemetryRecord) {
	if o == nil {
		return
	}
	if tr.Abandoned {
		o.abandoned.Inc()
	} else {
		o.served.Inc()
	}
	o.retries.Add(float64(tr.Retries))
	if tr.DegradeSteps > 0 {
		o.degraded.Inc()
	}
	o.bytes.Add(float64(tr.Bytes))
	o.stallSec.Add(tr.StallSec)
	o.energyMJ.Add(tr.EnergyMJ)
	o.qoeLoss.Observe(tr.QoELoss)
}
