package httpstream

import (
	"net/http"
	"testing"
)

// TestServerBadInputTable drives every malformed-query path of the server:
// negative, non-numeric, NaN/Inf, and overflow values must all die with a
// 4xx instead of falling through into the catalogue or the size model.
func TestServerBadInputTable(t *testing.T) {
	h := newHarness(t)
	cases := []struct {
		name string
		path string
		want int
	}{
		// catalogFor (shared by /manifest and /segment).
		{"manifest missing video", "/manifest", http.StatusBadRequest},
		{"manifest non-numeric video", "/manifest?video=abc", http.StatusBadRequest},
		{"manifest negative video", "/manifest?video=-1", http.StatusBadRequest},
		{"manifest overflow video", "/manifest?video=99999999999999999999999", http.StatusBadRequest},
		{"manifest float video", "/manifest?video=2.5", http.StatusBadRequest},
		{"manifest unknown video", "/manifest?video=99", http.StatusNotFound},
		{"segment missing video", "/segment?seg=0&q=3&cx=180&cy=90", http.StatusBadRequest},
		{"segment negative video", "/segment?video=-7&seg=0&q=3&cx=180&cy=90", http.StatusBadRequest},

		// Segment index.
		{"seg missing", "/segment?video=2&q=3&cx=180&cy=90", http.StatusBadRequest},
		{"seg non-numeric", "/segment?video=2&seg=abc&q=3&cx=180&cy=90", http.StatusBadRequest},
		{"seg negative", "/segment?video=2&seg=-1&q=3&cx=180&cy=90", http.StatusBadRequest},
		{"seg past end", "/segment?video=2&seg=100000&q=3&cx=180&cy=90", http.StatusBadRequest},
		{"seg overflow", "/segment?video=2&seg=99999999999999999999999&q=3&cx=180&cy=90", http.StatusBadRequest},

		// Quality.
		{"q missing", "/segment?video=2&seg=0&cx=180&cy=90", http.StatusBadRequest},
		{"q zero", "/segment?video=2&seg=0&q=0&cx=180&cy=90", http.StatusBadRequest},
		{"q negative", "/segment?video=2&seg=0&q=-3&cx=180&cy=90", http.StatusBadRequest},
		{"q too high", "/segment?video=2&seg=0&q=6&cx=180&cy=90", http.StatusBadRequest},
		{"q non-numeric", "/segment?video=2&seg=0&q=high&cx=180&cy=90", http.StatusBadRequest},
		{"q overflow", "/segment?video=2&seg=0&q=99999999999999999999999&cx=180&cy=90", http.StatusBadRequest},

		// Frame rate.
		{"f NaN", "/segment?video=2&seg=0&q=3&f=NaN&cx=180&cy=90", http.StatusBadRequest},
		{"f +Inf", "/segment?video=2&seg=0&q=3&f=%2BInf&cx=180&cy=90", http.StatusBadRequest},
		{"f -Inf", "/segment?video=2&seg=0&q=3&f=-Inf&cx=180&cy=90", http.StatusBadRequest},
		{"f negative", "/segment?video=2&seg=0&q=3&f=-30&cx=180&cy=90", http.StatusBadRequest},
		{"f absurd", "/segment?video=2&seg=0&q=3&f=1e9&cx=180&cy=90", http.StatusBadRequest},
		{"f non-numeric", "/segment?video=2&seg=0&q=3&f=fast&cx=180&cy=90", http.StatusBadRequest},

		// Ptile index.
		{"ptile non-numeric", "/segment?video=2&seg=0&q=3&ptile=abc", http.StatusBadRequest},
		{"ptile negative", "/segment?video=2&seg=0&q=3&ptile=-1", http.StatusBadRequest},
		{"ptile past end", "/segment?video=2&seg=0&q=3&ptile=100000", http.StatusBadRequest},
		{"ptile overflow", "/segment?video=2&seg=0&q=3&ptile=99999999999999999999999", http.StatusBadRequest},

		// Viewport center (conventional request).
		{"center missing", "/segment?video=2&seg=0&q=3", http.StatusBadRequest},
		{"cx missing", "/segment?video=2&seg=0&q=3&cy=90", http.StatusBadRequest},
		{"cy missing", "/segment?video=2&seg=0&q=3&cx=180", http.StatusBadRequest},
		{"cx NaN", "/segment?video=2&seg=0&q=3&cx=NaN&cy=90", http.StatusBadRequest},
		{"cy NaN", "/segment?video=2&seg=0&q=3&cx=180&cy=NaN", http.StatusBadRequest},
		{"cx Inf", "/segment?video=2&seg=0&q=3&cx=Inf&cy=90", http.StatusBadRequest},
		{"cy -Inf", "/segment?video=2&seg=0&q=3&cx=180&cy=-Inf", http.StatusBadRequest},
		{"cx out of range", "/segment?video=2&seg=0&q=3&cx=1e300&cy=90", http.StatusBadRequest},
		{"cy out of range", "/segment?video=2&seg=0&q=3&cx=180&cy=-1e300", http.StatusBadRequest},
		{"cx non-numeric", "/segment?video=2&seg=0&q=3&cx=left&cy=90", http.StatusBadRequest},

		// Sanity: well-formed requests still work.
		{"good manifest", "/manifest?video=2", http.StatusOK},
		{"good conventional segment", "/segment?video=2&seg=0&q=3&cx=180&cy=90", http.StatusOK},
		{"good ptile segment", "/segment?video=2&seg=0&q=3&f=24&ptile=0", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(h.server.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}
