// Package httpstream provides the networked streaming path: an HTTP tile
// server that serves manifests and synthesized segment payloads from a
// prepared catalogue, and a client that runs the paper's controller against
// it over real net/http connections with trace-shaped bandwidth.
//
// The wire format is deliberately simple (JSON manifest + opaque segment
// bodies) — the point is to exercise the full request/response path of a
// tile-based streaming deployment, not to reimplement DASH.
package httpstream

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ptile360/internal/geom"
	"ptile360/internal/netem"
	"ptile360/internal/ptile"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// RectJSON is a serializable panorama rectangle.
type RectJSON struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	W  float64 `json:"w"`
	H  float64 `json:"h"`
}

func toRectJSON(r geom.Rect) RectJSON { return RectJSON{X0: r.X0, Y0: r.Y0, W: r.W, H: r.H} }
func (r RectJSON) toRect() geom.Rect  { return geom.Rect{X0: r.X0, Y0: r.Y0, W: r.W, H: r.H} }

// SegmentMetaJSON is the per-segment manifest entry.
type SegmentMetaJSON struct {
	SI     float64    `json:"si"`
	TI     float64    `json:"ti"`
	Ptiles []RectJSON `json:"ptiles"`
}

// Manifest describes one video to the client.
type Manifest struct {
	VideoID    int               `json:"video_id"`
	SegmentSec float64           `json:"segment_sec"`
	Segments   []SegmentMetaJSON `json:"segments"`
	Qualities  int               `json:"qualities"`
	FrameRates []float64         `json:"frame_rates"`
	SourceFPS  float64           `json:"source_fps"`
	GridRows   int               `json:"grid_rows"`
	GridCols   int               `json:"grid_cols"`
	// CatalogVersion is the catalog set the manifest was cut from. Clients
	// pin their segment requests to it (the cv query parameter) so an
	// in-flight session keeps streaming the catalogue it started on across
	// hot swaps.
	CatalogVersion int64 `json:"catalog_version,omitempty"`
}

// maxCatalogHistory bounds how many superseded catalog versions stay
// resolvable after hot swaps; requests pinned to an evicted version get
// 410 Gone and must refetch the manifest.
const maxCatalogHistory = 8

// catalogSet is one immutable published catalogue generation. Readers load
// it with a single atomic pointer read — no lock anywhere on the request
// hot path — and resolve pinned versions through the history map, which is
// never mutated after publication.
type catalogSet struct {
	version  int64
	catalogs map[int]*sim.Catalog
	// history resolves still-supported older versions (most recent
	// maxCatalogHistory generations).
	history map[int64]map[int]*sim.Catalog
}

// resolve returns the catalogue map for a pinned version (version 0 means
// "current").
func (cs *catalogSet) resolve(version int64) (map[int]*sim.Catalog, bool) {
	if version == 0 || version == cs.version {
		return cs.catalogs, true
	}
	m, ok := cs.history[version]
	return m, ok
}

// Server serves manifests and segments for a set of prepared catalogues.
// The active catalogue generation sits behind an atomic pointer so
// SwapCatalog can publish a new one with zero downtime: requests in flight
// (and sessions pinned via cv) keep reading the generation they started on.
type Server struct {
	mux    *http.ServeMux
	cats   atomic.Pointer[catalogSet]
	swapMu sync.Mutex // serializes writers; readers never take it
	enc    video.EncoderConfig
	frames []float64
	inst   *serverObs // nil until Instrument
	pacing atomic.Pointer[pacingState]
	sink   atomic.Pointer[ViewportSink]
}

// pacingState is one published paced-sender configuration; swapped
// atomically so in-flight requests see a consistent (rate, metrics) pair.
type pacingState struct {
	rateBps float64
	metrics *netem.PacerMetrics
}

// ViewportSink receives one viewport report per served segment: the video,
// segment index, and the panorama-degree center the client fetched for. The
// online Ptile pipeline (internal/ptilelive) ingests exactly this shape. It
// is called on the request goroutine; keep it fast.
type ViewportSink func(video, segment int, x, y float64)

// NewServer builds a server over the given catalogues. frameRates lists the
// Ptile frame-rate versions available for download.
func NewServer(catalogs map[int]*sim.Catalog, enc video.EncoderConfig, frameRates []float64) (*Server, error) {
	if len(catalogs) == 0 {
		return nil, fmt.Errorf("httpstream: no catalogues")
	}
	if err := enc.Validate(); err != nil {
		return nil, err
	}
	if len(frameRates) == 0 {
		return nil, fmt.Errorf("httpstream: no frame rates")
	}
	s := &Server{
		mux:    http.NewServeMux(),
		enc:    enc,
		frames: frameRates,
	}
	s.cats.Store(&catalogSet{version: 1, catalogs: catalogs})
	s.mux.HandleFunc("/manifest", s.handleManifest)
	s.mux.HandleFunc("/segment", s.handleSegment)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.inst != nil {
		s.inst.serve(s.mux, w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// SwapCatalog atomically publishes a new catalogue for one video and
// returns the new generation's version. Every other video keeps its current
// catalogue; the superseded generation stays resolvable for pinned sessions
// until it ages out of the bounded history. Concurrent swaps serialize on
// swapMu; readers are wait-free (one atomic load per request).
func (s *Server) SwapCatalog(cat *sim.Catalog) int64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.cats.Load()
	next := &catalogSet{
		version:  old.version + 1,
		catalogs: make(map[int]*sim.Catalog, len(old.catalogs)+1),
		history:  make(map[int64]map[int]*sim.Catalog, len(old.history)+1),
	}
	for id, c := range old.catalogs {
		next.catalogs[id] = c
	}
	next.catalogs[cat.Video.ID] = cat
	for v, m := range old.history {
		if v > next.version-maxCatalogHistory {
			next.history[v] = m
		}
	}
	if old.version > next.version-maxCatalogHistory {
		next.history[old.version] = old.catalogs
	}
	s.cats.Store(next)
	return next.version
}

// CatalogVersion returns the currently published generation.
func (s *Server) CatalogVersion() int64 { return s.cats.Load().version }

// SetPacing throttles segment payload writes to rateBps bits/s through the
// interval-budget pacer (netem.PacedWriter): bodies leave in MTU-sized
// quanta at the target rate instead of one burst, which keeps a shared
// bottleneck queue shallow. rateBps 0 restores unpaced writes. m optionally
// publishes the pacing_* instruments; nil is silent.
func (s *Server) SetPacing(rateBps float64, m *netem.PacerMetrics) error {
	if rateBps == 0 {
		s.pacing.Store(nil)
		return nil
	}
	// Construct a probe writer up front so a bad rate fails here, not per
	// request.
	if _, err := netem.NewPacer(rateBps, 0); err != nil {
		return err
	}
	s.pacing.Store(&pacingState{rateBps: rateBps, metrics: m})
	return nil
}

// SetViewportSink publishes the per-segment viewport report callback; nil
// disables reporting.
func (s *Server) SetViewportSink(sink ViewportSink) {
	if sink == nil {
		s.sink.Store(nil)
		return
	}
	s.sink.Store(&sink)
}

// report forwards one served segment's viewport center to the sink, if set.
func (s *Server) report(video, segment int, x, y float64) {
	if p := s.sink.Load(); p != nil {
		(*p)(video, segment, x, y)
	}
}

// catalogFor resolves the request's catalogue: the video parameter selects
// the video, and the optional cv parameter pins the catalogue generation a
// session started on. An evicted generation answers 410 Gone — the signal
// to refetch the manifest.
func (s *Server) catalogFor(w http.ResponseWriter, r *http.Request) (*sim.Catalog, int64, bool) {
	qy := r.URL.Query()
	id, err := strconv.Atoi(qy.Get("video"))
	if err != nil || id < 0 {
		http.Error(w, "bad or missing video parameter", http.StatusBadRequest)
		return nil, 0, false
	}
	set := s.cats.Load()
	version := set.version
	if cvs := qy.Get("cv"); cvs != "" {
		v, err := strconv.ParseInt(cvs, 10, 64)
		if err != nil || v < 1 {
			http.Error(w, "bad catalog version", http.StatusBadRequest)
			return nil, 0, false
		}
		version = v
	}
	catalogs, ok := set.resolve(version)
	if !ok {
		http.Error(w, fmt.Sprintf("catalog version %d no longer served", version), http.StatusGone)
		return nil, 0, false
	}
	cat, ok := catalogs[id]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown video %d", id), http.StatusNotFound)
		return nil, 0, false
	}
	return cat, version, true
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	cat, version, ok := s.catalogFor(w, r)
	if !ok {
		return
	}
	m := Manifest{
		VideoID:        cat.Video.ID,
		SegmentSec:     cat.SegmentSec,
		Qualities:      int(video.MaxQuality),
		FrameRates:     s.frames,
		SourceFPS:      s.enc.FrameRate,
		GridRows:       4,
		GridCols:       8,
		CatalogVersion: version,
	}
	for seg := range cat.Content {
		sm := SegmentMetaJSON{SI: cat.Content[seg].SI, TI: cat.Content[seg].TI}
		for _, pt := range cat.Ptiles[seg] {
			sm.Ptiles = append(sm.Ptiles, toRectJSON(pt.Rect))
		}
		m.Segments = append(m.Segments, sm)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(m); err != nil {
		// The response is already partially written; nothing to recover.
		return
	}
}

// handleSegment synthesizes a segment payload. Query parameters:
//
//	video, seg           — segment address
//	q                    — quality level 1..5
//	f                    — frame rate (0 → source rate)
//	cv                   — catalogue generation the session is pinned to
//	                       (absent → current; evicted → 410)
//	ptile                — Ptile index within the segment; when present the
//	                       response is the Ptile (plus background blocks),
//	                       otherwise the conventional tile set is served.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	cat, _, ok := s.catalogFor(w, r)
	if !ok {
		return
	}
	qy := r.URL.Query()
	seg, err := strconv.Atoi(qy.Get("seg"))
	if err != nil || seg < 0 || seg >= len(cat.Content) {
		http.Error(w, "bad segment index", http.StatusBadRequest)
		return
	}
	qLevel, err := strconv.Atoi(qy.Get("q"))
	if err != nil {
		http.Error(w, "bad quality", http.StatusBadRequest)
		return
	}
	quality := video.Quality(qLevel)
	if err := quality.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f := 0.0
	if fs := qy.Get("f"); fs != "" {
		f, err = strconv.ParseFloat(fs, 64)
		// NaN, infinities, negatives, and absurd rates must die here with
		// a 400, not fall through into the size model.
		if err != nil || !finite(f) || f < 0 || f > 1000 {
			http.Error(w, "bad frame rate", http.StatusBadRequest)
			return
		}
	}

	sc := cat.Content[seg]
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	var bits float64
	if ps := qy.Get("ptile"); ps != "" {
		idx, err := strconv.Atoi(ps)
		if err != nil || idx < 0 || idx >= len(cat.Ptiles[seg]) {
			http.Error(w, "bad ptile index", http.StatusBadRequest)
			return
		}
		pt := cat.Ptiles[seg][idx]
		s.report(cat.Video.ID, seg, pt.Rect.X0+pt.Rect.W/2, pt.Rect.Y0+pt.Rect.H/2)
		bits, err = s.enc.TileBits(video.TileSpec{
			Rect: pt.Rect, Quality: quality, FrameRate: f, Kind: video.KindPtile,
		}, cat.SegmentSec, sc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, block := range ptile.BackgroundBlocks(pt, grid) {
			b, err := s.enc.TileBits(video.TileSpec{
				Rect: block, Quality: video.MinQuality, Kind: video.KindBlock,
			}, cat.SegmentSec, sc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			bits += b
		}
	} else {
		// Conventional request: FoV tiles at q (center supplied by the
		// client), background tiles at the lowest quality.
		cx, errX := strconv.ParseFloat(qy.Get("cx"), 64)
		cy, errY := strconv.ParseFloat(qy.Get("cy"), 64)
		if errX != nil || errY != nil || !finite(cx) || !finite(cy) ||
			cx < -1e6 || cx > 1e6 || cy < -1e6 || cy > 1e6 {
			http.Error(w, "bad or missing viewport center", http.StatusBadRequest)
			return
		}
		center := geom.Point{X: cx, Y: cy}
		s.report(cat.Video.ID, seg, cx, cy)
		// The shared FoV LUT answers membership with a bitset; the map is
		// only needed if the grid cannot carry tile masks.
		var fovSet geom.TileSet
		var inFoV map[geom.TileID]bool
		if lut := geom.FoVLUTFor(grid, 100, 100); lut != nil {
			fovSet = lut.SetAt(center)
		} else {
			fov := grid.FoVTiles(center, 100, 100)
			inFoV = make(map[geom.TileID]bool, len(fov))
			for _, id := range fov {
				inFoV[id] = true
			}
		}
		for row := 0; row < grid.Rows; row++ {
			for col := 0; col < grid.Cols; col++ {
				id := geom.TileID{Row: row, Col: col}
				tq := video.MinQuality
				if inFoV != nil {
					if inFoV[id] {
						tq = quality
					}
				} else if fovSet.Contains(grid.Index(id)) {
					tq = quality
				}
				b, err := s.enc.TileBits(video.TileSpec{Rect: grid.TileRect(id), Quality: tq}, cat.SegmentSec, sc)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				bits += b
			}
		}
	}

	nBytes := int64(bits / 8)
	if nBytes < 1 {
		nBytes = 1
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(nBytes, 10))
	var dst io.Writer = w
	if ps := s.pacing.Load(); ps != nil {
		pw, err := netem.NewPacedWriter(w, ps.rateBps, nil, nil, ps.metrics)
		if err == nil {
			dst = pw
		}
	}
	writePayload(dst, nBytes)
}

// writePayload streams nBytes of deterministic filler without allocating the
// whole body.
func writePayload(w io.Writer, nBytes int64) {
	var chunk [8192]byte
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for nBytes > 0 {
		n := int64(len(chunk))
		if n > nBytes {
			n = nBytes
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return
		}
		nBytes -= n
	}
}
