package httpstream

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"ptile360/internal/obs"
)

// Server instrumentation: request counters, latency histograms, and
// byte totals per handler path, plus debug logs keyed by the
// request-scoped ID. It is opt-in (Instrument) so tests and library users
// without a registry pay nothing.

// serverObs holds the server's registry handles.
type serverObs struct {
	reg    *obs.Registry
	log    *slog.Logger
	tracer *obs.Tracer
}

// Instrument attaches a registry (and optional logger) to the server:
// every request is counted into httpstream_requests_total{path,code},
// timed into httpstream_request_seconds{path}, and its response size added
// to httpstream_response_bytes_total{path}. Call before serving traffic.
func (s *Server) Instrument(reg *obs.Registry, logger *slog.Logger) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.inst = &serverObs{reg: reg, log: logger, tracer: obs.NewTracer(reg, "server_request")}
}

// Tracer returns the server's request-lifecycle tracer (nil before
// Instrument) for mounting its recent-spans handler on an ops mux.
func (s *Server) Tracer() *obs.Tracer {
	if s.inst == nil {
		return nil
	}
	return s.inst.tracer
}

// countingWriter captures status and body size for the metrics.
type countingWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *countingWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush keeps paced body writers working behind the wrapper.
func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// serveInstrumented wraps the mux with request-ID assignment, counting,
// and timing.
func (o *serverObs) serve(mux *http.ServeMux, w http.ResponseWriter, r *http.Request) {
	obs.RequestIDMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &countingWriter{ResponseWriter: w}
		span := o.tracer.Start(obs.RequestID(r.Context()))
		// Join the cross-tier trace: an in-process upstream (router, chain)
		// re-parented the context; a remote client sends headers.
		if tc, ok := obs.TraceForRequest(r); ok {
			span.WithTrace(tc)
			w.Header().Set(obs.TraceIDHeader, span.TraceID())
			r = r.WithContext(obs.WithTraceContext(r.Context(), span.TraceContext()))
		}
		start := time.Now()
		defer func() {
			span.Stage("handler")
			span.End()
			elapsed := time.Since(start).Seconds()
			path := r.URL.Path
			code := cw.code
			if code == 0 {
				code = http.StatusOK
			}
			o.reg.Counter("httpstream_requests_total",
				"Requests served by the tile server, by path and status.",
				obs.L("path", path), obs.L("code", strconv.Itoa(code))).Inc()
			o.reg.Histogram("httpstream_request_seconds",
				"Tile-server request latency.", nil, obs.L("path", path)).ObserveExemplar(elapsed, span.TraceID())
			o.reg.Counter("httpstream_response_bytes_total",
				"Response payload bytes written, by path.", obs.L("path", path)).Add(float64(cw.bytes))
			if o.log != nil {
				o.log.Debug("request served", "component", "httpstream",
					"request_id", obs.RequestID(r.Context()), "path", path,
					"code", code, "bytes", cw.bytes, "elapsed_sec", elapsed)
			}
		}()
		mux.ServeHTTP(cw, r)
	})).ServeHTTP(w, r)
}
