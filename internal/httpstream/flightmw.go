package httpstream

import (
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ptile360/internal/obs"
)

// FlightMiddleware feeds an anomaly flight recorder from the serving path:
// each distinct client — the `X-Client-Id` header, falling back to the
// remote host — is one flight session, and every request lands one event in
// its black-box ring. Successful responses record FlightDownload and 5xx
// responses record FlightStall (both with V1 = handler seconds, V2 = status
// code, Seg from the `seg` query parameter), so a burst of errors for one
// client trips the recorder's stall-burst trigger on its own, and an SLO
// burn's TriggerAll dumps the recent request history of every live client.
// Unsampled clients hold a nil session: their per-request cost is the id
// lookup and a nil-check.
//
// The client table is bounded: past maxClients the longest-idle client is
// closed and evicted, so an open-ended id space (e.g. remote ports) cannot
// grow the map without limit.
func FlightMiddleware(rec *obs.FlightRecorder, next http.Handler) http.Handler {
	if rec == nil {
		return next
	}
	return &flightHandler{
		rec:        rec,
		next:       next,
		start:      time.Now(),
		sess:       make(map[string]*flightClient),
		maxClients: 1024,
	}
}

type flightHandler struct {
	rec        *obs.FlightRecorder
	next       http.Handler
	start      time.Time
	maxClients int

	mu   sync.Mutex
	sess map[string]*flightClient
}

type flightClient struct {
	s        *obs.FlightSession // nil when the sampling gate skipped it
	lastSeen time.Time
}

// session returns the (possibly nil) flight session for a client id,
// admitting and join-stamping new clients and evicting the longest-idle
// one when the table is full.
func (h *flightHandler) session(id string, now time.Time) *obs.FlightSession {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.sess[id]
	if c == nil {
		if len(h.sess) >= h.maxClients {
			oldID, oldest := "", now
			for k, v := range h.sess {
				if !v.lastSeen.After(oldest) {
					oldID, oldest = k, v.lastSeen
				}
			}
			if old := h.sess[oldID]; old != nil {
				old.s.Close()
				delete(h.sess, oldID)
			}
		}
		c = &flightClient{s: h.rec.Session(id)}
		h.sess[id] = c
		c.s.Record(obs.FlightEvent{
			TimeSec: now.Sub(h.start).Seconds(),
			Kind:    obs.FlightJoin,
			Seg:     -1,
		})
	}
	c.lastSeen = now
	return c.s
}

func (h *flightHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Client-Id")
	if id == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
			id = host
		} else {
			id = r.RemoteAddr
		}
	}
	t0 := time.Now()
	s := h.session(id, t0)
	if s == nil {
		h.next.ServeHTTP(w, r)
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	h.next.ServeHTTP(cw, r)
	if cw.code == 0 {
		cw.code = http.StatusOK
	}
	seg := int32(-1)
	if v := r.URL.Query().Get("seg"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			seg = int32(n)
		}
	}
	kind := obs.FlightDownload
	if cw.code >= 500 {
		kind = obs.FlightStall
	}
	s.Record(obs.FlightEvent{
		TimeSec: t0.Sub(h.start).Seconds(),
		Kind:    kind,
		Seg:     seg,
		V1:      time.Since(t0).Seconds(),
		V2:      float64(cw.code),
	})
}
