package httpstream

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Wire-format sanity bounds. A hostile or corrupted server must never be
// able to make the client allocate absurdly or loop forever; anything past
// these limits is a decode error, not a bigger buffer.
const (
	// maxManifestBytes bounds the manifest body.
	maxManifestBytes = 16 << 20
	// maxManifestSegments bounds the per-video segment count (≈12 days of
	// 1 s segments).
	maxManifestSegments = 1 << 20
	// maxPtilesPerSegment bounds the Ptile list of one segment.
	maxPtilesPerSegment = 4096
	// maxSegmentBytes bounds a single segment payload (1 GiB).
	maxSegmentBytes = 1 << 30
	// maxFrameRates bounds the version ladder width.
	maxFrameRates = 64
)

// DecodeManifest reads and validates a manifest from an untrusted stream.
// It never panics on malformed input: oversized bodies, trailing garbage,
// absurd or negative fields all return errors.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	lr := io.LimitReader(r, maxManifestBytes+1)
	dec := json.NewDecoder(lr)
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("httpstream: decode manifest: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("httpstream: decode manifest: trailing data after JSON document")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// finite reports whether v is a usable real number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports whether the manifest is internally consistent and within
// the wire-format sanity bounds.
func (m *Manifest) Validate() error {
	if m.VideoID < 0 {
		return fmt.Errorf("httpstream: manifest: negative video id %d", m.VideoID)
	}
	if !finite(m.SegmentSec) || m.SegmentSec <= 0 || m.SegmentSec > 3600 {
		return fmt.Errorf("httpstream: manifest: segment duration %g outside (0, 3600]", m.SegmentSec)
	}
	if len(m.Segments) == 0 {
		return fmt.Errorf("httpstream: empty manifest")
	}
	if len(m.Segments) > maxManifestSegments {
		return fmt.Errorf("httpstream: manifest: %d segments exceeds cap %d", len(m.Segments), maxManifestSegments)
	}
	if m.Qualities < 0 || m.Qualities > 100 {
		return fmt.Errorf("httpstream: manifest: quality count %d outside [0, 100]", m.Qualities)
	}
	if len(m.FrameRates) == 0 || len(m.FrameRates) > maxFrameRates {
		return fmt.Errorf("httpstream: manifest: %d frame rates outside [1, %d]", len(m.FrameRates), maxFrameRates)
	}
	for i, f := range m.FrameRates {
		if !finite(f) || f <= 0 || f > 1000 {
			return fmt.Errorf("httpstream: manifest: frame rate %g at index %d outside (0, 1000]", f, i)
		}
	}
	if !finite(m.SourceFPS) || m.SourceFPS <= 0 || m.SourceFPS > 1000 {
		return fmt.Errorf("httpstream: manifest: source fps %g outside (0, 1000]", m.SourceFPS)
	}
	if m.GridRows < 0 || m.GridRows > 1024 || m.GridCols < 0 || m.GridCols > 1024 {
		return fmt.Errorf("httpstream: manifest: grid %dx%d outside [0, 1024]", m.GridRows, m.GridCols)
	}
	for i, seg := range m.Segments {
		if !finite(seg.SI) || seg.SI < 0 || seg.SI > 1e9 {
			return fmt.Errorf("httpstream: manifest: segment %d SI %g outside [0, 1e9]", i, seg.SI)
		}
		if !finite(seg.TI) || seg.TI < 0 || seg.TI > 1e9 {
			return fmt.Errorf("httpstream: manifest: segment %d TI %g outside [0, 1e9]", i, seg.TI)
		}
		if len(seg.Ptiles) > maxPtilesPerSegment {
			return fmt.Errorf("httpstream: manifest: segment %d has %d ptiles, cap %d", i, len(seg.Ptiles), maxPtilesPerSegment)
		}
		for j, r := range seg.Ptiles {
			if !finite(r.X0) || !finite(r.Y0) || !finite(r.W) || !finite(r.H) {
				return fmt.Errorf("httpstream: manifest: segment %d ptile %d has non-finite rect", i, j)
			}
			if r.W <= 0 || r.H <= 0 || r.W > 1e6 || r.H > 1e6 {
				return fmt.Errorf("httpstream: manifest: segment %d ptile %d has degenerate rect %gx%g", i, j, r.W, r.H)
			}
			if r.X0 < -1e6 || r.X0 > 1e6 || r.Y0 < -1e6 || r.Y0 > 1e6 {
				return fmt.Errorf("httpstream: manifest: segment %d ptile %d origin (%g, %g) out of range", i, j, r.X0, r.Y0)
			}
		}
	}
	return nil
}

// SegmentHeader is the validated header metadata of a segment response.
type SegmentHeader struct {
	// ContentLength is the declared body size in bytes, or -1 when the
	// server did not declare one.
	ContentLength int64
}

// ParseSegmentHeader validates the headers of a segment response before the
// client commits to reading the body. Malformed, negative, or absurdly large
// declared sizes are errors, never panics or unbounded allocations.
func ParseSegmentHeader(h http.Header) (SegmentHeader, error) {
	cl := strings.TrimSpace(h.Get("Content-Length"))
	if cl == "" {
		return SegmentHeader{ContentLength: -1}, nil
	}
	n, err := strconv.ParseInt(cl, 10, 64)
	if err != nil {
		return SegmentHeader{}, fmt.Errorf("httpstream: bad Content-Length %q: %w", cl, err)
	}
	if n < 0 {
		return SegmentHeader{}, fmt.Errorf("httpstream: negative Content-Length %d", n)
	}
	if n > maxSegmentBytes {
		return SegmentHeader{}, fmt.Errorf("httpstream: declared segment size %d exceeds cap %d", n, maxSegmentBytes)
	}
	return SegmentHeader{ContentLength: n}, nil
}
