package httpstream

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/power"
)

// chaosProfile is the acceptance-gate fault mix: ≥10 % hard request
// failures plus latency spikes, with delays compressed so the suite stays
// fast.
func chaosProfile() faultinject.Profile {
	return faultinject.Profile{
		Name:        "test-chaos",
		LatencyProb: 0.15, LatencyMin: 20 * time.Millisecond, LatencyMax: 300 * time.Millisecond,
		Error5xxProb: 0.10,
		ResetProb:    0.08,
		TruncateProb: 0.08, TruncateFrac: 0.4,
		TimeScale: 50,
	}
}

// fastRetry keeps backoff waits negligible in tests.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5}
}

func TestClientConfigValidateTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  ClientConfig
		ok   bool
	}{
		{"good", ClientConfig{BaseURL: "http://127.0.0.1:1"}, true},
		{"good https", ClientConfig{BaseURL: "https://cdn.example.com"}, true},
		{"empty URL", ClientConfig{}, false},
		{"garbage URL", ClientConfig{BaseURL: "://\x00nope"}, false},
		{"relative URL", ClientConfig{BaseURL: "just-a-path"}, false},
		{"wrong scheme", ClientConfig{BaseURL: "ftp://host"}, false},
		{"no host", ClientConfig{BaseURL: "http://"}, false},
		{"negative compression", ClientConfig{BaseURL: "http://x", TimeCompression: -1}, false},
		{"negative cap", ClientConfig{BaseURL: "http://x", MaxSegments: -1}, false},
		{"negative timeout", ClientConfig{BaseURL: "http://x", RequestTimeout: -time.Second}, false},
		{"bad retry attempts", ClientConfig{BaseURL: "http://x", Retry: RetryPolicy{MaxAttempts: 0, MaxDelay: time.Second}}, false},
		{"bad retry jitter", ClientConfig{BaseURL: "http://x", Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Second, Jitter: 2}}, false},
		{"inverted retry delays", ClientConfig{BaseURL: "http://x", Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Second, MaxDelay: time.Millisecond}}, false},
		{"custom retry ok", ClientConfig{BaseURL: "http://x", Retry: fastRetry()}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
	// Exponential growth, capped at MaxDelay.
	for retry, want := range map[int]time.Duration{
		1: 50 * time.Millisecond,
		2: 100 * time.Millisecond,
		3: 200 * time.Millisecond,
		7: 2 * time.Second, // capped
	} {
		if got := p.Backoff(retry, 0); got != want {
			t.Errorf("Backoff(%d, 0) = %v, want %v", retry, got, want)
		}
	}
	// Jitter is bounded: delay ≤ base·2^(k−1)·(1+Jitter), even at u→1.
	for retry := 1; retry <= 8; retry++ {
		lo := p.Backoff(retry, 0)
		hi := p.Backoff(retry, 0.999999)
		if hi < lo {
			t.Fatalf("retry %d: jittered %v below unjittered %v", retry, hi, lo)
		}
		if max := time.Duration(float64(lo) * (1 + p.Jitter)); hi > max {
			t.Fatalf("retry %d: jittered %v above bound %v", retry, hi, max)
		}
	}
	// Degenerate inputs stay safe.
	if p.Backoff(0, 0) != 0 || p.Backoff(-3, 0.5) != 0 {
		t.Fatal("non-positive retry must yield zero backoff")
	}
	if (RetryPolicy{MaxAttempts: 1}).Backoff(4, 0.5) != 0 {
		t.Fatal("zero base delay must yield zero backoff")
	}
	if p.Backoff(2, -5) != p.Backoff(2, 0) {
		t.Fatal("negative jitter draw must clamp to 0")
	}
}

func TestRetryPolicyValidateTable(t *testing.T) {
	cases := []struct {
		name string
		p    RetryPolicy
		ok   bool
	}{
		{"default", DefaultRetryPolicy(), true},
		{"single attempt", RetryPolicy{MaxAttempts: 1}, true},
		{"zero attempts", RetryPolicy{MaxAttempts: 0}, false},
		{"negative base", RetryPolicy{MaxAttempts: 2, BaseDelay: -1}, false},
		{"max below base", RetryPolicy{MaxAttempts: 2, BaseDelay: time.Second, MaxDelay: time.Millisecond}, false},
		{"jitter above 1", RetryPolicy{MaxAttempts: 2, Jitter: 1.5}, false},
		{"negative jitter", RetryPolicy{MaxAttempts: 2, Jitter: -0.1}, false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestManifestRetryAfterTransientFailures verifies the client outlasts a
// server that fails the first attempts.
func TestManifestRetryAfterTransientFailures(t *testing.T) {
	h := newHarness(t)
	var calls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		h.server.Config.Handler.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	client, err := NewClient(ClientConfig{BaseURL: srv.URL, Phone: power.Pixel3, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := client.FetchManifest(2)
	if err != nil {
		t.Fatalf("manifest fetch did not survive transient 503s: %v", err)
	}
	if len(m.Segments) == 0 || calls.Load() != 3 {
		t.Fatalf("want success on attempt 3, got %d calls", calls.Load())
	}
}

// TestManifestRetryGivesUp verifies the retry budget is respected against a
// permanently failing server.
func TestManifestRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	client, err := NewClient(ClientConfig{BaseURL: srv.URL, Phone: power.Pixel3, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchManifest(2); err == nil {
		t.Fatal("want error from permanently failing server")
	}
	if got := calls.Load(); got != int64(fastRetry().MaxAttempts) {
		t.Fatalf("server saw %d attempts, want %d", got, fastRetry().MaxAttempts)
	}
}

// Test4xxFailsFast verifies permanent client errors are not retried.
func Test4xxFailsFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "no such video", http.StatusNotFound)
	}))
	defer srv.Close()
	client, err := NewClient(ClientConfig{BaseURL: srv.URL, Phone: power.Pixel3, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchManifest(99); err == nil {
		t.Fatal("want error for 404")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("404 retried %d times, want fail-fast single attempt", got)
	}
}

// TestContextCancellationAbortsPromptly verifies a cancelled session context
// stops the retry machinery quickly, including mid-backoff.
func TestContextCancellationAbortsPromptly(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client, err := NewClient(ClientConfig{
		BaseURL: srv.URL,
		Phone:   power.Pixel3,
		Retry:   RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.FetchManifestContext(ctx, 2)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the first long backoff
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want cancellation error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in chain, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the retry loop")
	}
}

// pathTransport routes requests whose path has the given prefix through the
// faulty transport and everything else through the clean one, so tests can
// damage segments while leaving the manifest alone.
type pathTransport struct {
	prefix        string
	faulty, clean http.RoundTripper
}

func (t *pathTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasPrefix(req.URL.Path, t.prefix) {
		return t.faulty.RoundTrip(req)
	}
	return t.clean.RoundTrip(req)
}

// TestTruncatedSegmentDetectedAndRetried verifies the client catches short
// bodies via Content-Length and recovers by retrying.
func TestTruncatedSegmentDetectedAndRetried(t *testing.T) {
	h := newHarness(t)
	faulty, err := faultinject.NewTransport(faultinject.Profile{TruncateProb: 1, TruncateFrac: 0.5}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{
		BaseURL:     h.server.URL,
		Phone:       power.Pixel3,
		MaxSegments: 2,
		UseMPC:      true,
		Transport:   &pathTransport{prefix: "/segment", faulty: faulty, clean: http.DefaultTransport},
		Retry:       fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every response is truncated, so every rung fails: the session must
	// still complete, with both segments abandoned — never a short body
	// silently accepted as success.
	report, err := client.Stream(2, h.eval[0])
	if err != nil {
		t.Fatal(err)
	}
	if report.AbandonedSegments != 2 || report.TotalBytes != 0 {
		t.Fatalf("all-truncated run: %d abandoned, %d bytes; want 2 abandoned, 0 bytes",
			report.AbandonedSegments, report.TotalBytes)
	}
	if report.TotalRetries == 0 || report.Stalls != 2 {
		t.Fatalf("truncation must burn retries and record stalls: %+v", report)
	}
}

// TestDegradationLadder verifies that when only small payloads survive, the
// client steps down rungs instead of stalling out the session.
func TestDegradationLadder(t *testing.T) {
	h := newHarness(t)
	// A pass-through proxy that 503s any segment response predicted to be
	// large: only cheap rungs survive.
	inner := h.server.Config.Handler
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/segment") {
			q := r.URL.Query().Get("q")
			if q != "1" { // only the lowest quality gets through
				http.Error(w, "overloaded", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	client, err := NewClient(ClientConfig{
		BaseURL:     proxy.URL,
		Phone:       power.Pixel3,
		MaxSegments: 4,
		UseMPC:      true,
		Retry:       RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := client.Stream(2, h.eval[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Segments) != 4 {
		t.Fatalf("streamed %d segments, want 4", len(report.Segments))
	}
	for _, rec := range report.Segments {
		if rec.Abandoned {
			t.Fatalf("segment %d abandoned; the q1 rung should have served it", rec.Segment)
		}
		if rec.Quality != 1 {
			t.Fatalf("segment %d served at q%d; only q1 passes the proxy", rec.Segment, rec.Quality)
		}
	}
	if report.DegradedSegments == 0 {
		t.Fatalf("controller never picks q1 up front with local bandwidth; degradations must be recorded: %+v", report)
	}
}

// TestNoDegradeSurfacesErrors verifies the opt-out: with the ladder
// disabled, persistent failure fails the session.
func TestNoDegradeSurfacesErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client, err := NewClient(ClientConfig{
		BaseURL:   srv.URL,
		Phone:     power.Pixel3,
		Retry:     fastRetry(),
		NoDegrade: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchManifest(2); err == nil {
		t.Fatal("want manifest error")
	}
}

// TestChaosStreamingSession is the acceptance gate: under ≥10 % hard request
// failures plus latency spikes, a full session completes without panic and
// with honest degradation/stall accounting.
func TestChaosStreamingSession(t *testing.T) {
	h := newHarness(t)
	tr, err := faultinject.NewTransport(chaosProfile(), 1234, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{
		BaseURL:     h.server.URL,
		Phone:       power.Pixel3,
		MaxSegments: 25,
		UseMPC:      true,
		Transport:   tr,
		Retry:       fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := client.Stream(2, h.eval[0])
	if err != nil {
		t.Fatalf("chaos session must not fail: %v", err)
	}
	if len(report.Segments) != 25 {
		t.Fatalf("chaos session streamed %d segments, want 25", len(report.Segments))
	}
	stats := tr.Stats()
	if stats.Faults() == 0 {
		t.Fatalf("fault injector never fired: %v", stats)
	}
	// Resilience accounting must reconcile with the injected faults: every
	// hard fault either burned a retry or ended in an abandon.
	if report.TotalRetries == 0 {
		t.Fatalf("injected %d hard faults but recorded no retries", stats.Faults())
	}
	served := 0
	for _, rec := range report.Segments {
		if rec.Abandoned {
			if rec.Bytes != 0 || rec.StallSec <= 0 {
				t.Fatalf("abandoned segment %d must have zero bytes and a stall: %+v", rec.Segment, rec)
			}
			continue
		}
		served++
		if rec.Bytes <= 0 || rec.ThroughputBps <= 0 {
			t.Fatalf("segment %d malformed: %+v", rec.Segment, rec)
		}
		if rec.Quality < 1 || rec.Quality > 5 {
			t.Fatalf("segment %d quality %d", rec.Segment, rec.Quality)
		}
	}
	if served == 0 {
		t.Fatal("chaos run served nothing at all")
	}
	if report.AbandonedSegments+served != 25 {
		t.Fatalf("accounting mismatch: %d abandoned + %d served != 25", report.AbandonedSegments, served)
	}
	// The report must survive conversion into the simulator record schema.
	traces := report.SegmentTraces()
	if len(traces) != len(report.Segments) {
		t.Fatalf("SegmentTraces() lost rows: %d vs %d", len(traces), len(report.Segments))
	}
	for i, tr := range traces {
		if tr.Retries != report.Segments[i].Retries || tr.Abandoned != report.Segments[i].Abandoned {
			t.Fatalf("trace %d resilience fields diverged: %+v vs %+v", i, tr, report.Segments[i])
		}
	}
}

// TestChaosServerSideMiddleware runs the same gate with the faults injected
// at the origin instead of the transport.
func TestChaosServerSideMiddleware(t *testing.T) {
	h := newHarness(t)
	mw, err := faultinject.Middleware(chaosProfile(), 99, h.server.Config.Handler)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mw)
	defer srv.Close()

	client, err := NewClient(ClientConfig{
		BaseURL:     srv.URL,
		Phone:       power.Pixel3,
		MaxSegments: 15,
		UseMPC:      true,
		Retry:       fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := client.Stream(2, h.eval[1])
	if err != nil {
		t.Fatalf("server-side chaos session must not fail: %v", err)
	}
	if len(report.Segments) != 15 {
		t.Fatalf("streamed %d segments, want 15", len(report.Segments))
	}
	if mw.Stats().Faults() == 0 {
		t.Fatalf("middleware never fired: %v", mw.Stats())
	}
}

// TestNoFaultRunMatchesSeedBehavior pins the zero-overhead path: with the
// injector off and the default config, the resilient client downloads the
// exact same bytes as a plain run (retries and degradation never engage).
func TestNoFaultRunMatchesSeedBehavior(t *testing.T) {
	h := newHarness(t)
	run := func(transport http.RoundTripper) *SessionReport {
		t.Helper()
		cfg := ClientConfig{
			BaseURL:     h.server.URL,
			Phone:       power.Pixel3,
			MaxSegments: 10,
			UseMPC:      true,
			Transport:   transport,
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		report, err := client.Stream(2, h.eval[2])
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	plain := run(nil)
	offTr, err := faultinject.NewTransport(faultinject.Profile{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	withOff := run(offTr)

	if plain.TotalBytes != withOff.TotalBytes || len(plain.Segments) != len(withOff.Segments) {
		t.Fatalf("off-injector run diverged: %d vs %d bytes", plain.TotalBytes, withOff.TotalBytes)
	}
	for i := range plain.Segments {
		a, b := plain.Segments[i], withOff.Segments[i]
		if a.Bytes != b.Bytes || a.Quality != b.Quality || a.FrameRate != b.FrameRate {
			t.Fatalf("segment %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if plain.TotalRetries != 0 || plain.DegradedSegments != 0 || plain.AbandonedSegments != 0 {
		t.Fatalf("healthy run engaged resilience: %+v", plain)
	}
}

// TestStreamContextCancelMidSession verifies StreamContext aborts between
// segments.
func TestStreamContextCancelMidSession(t *testing.T) {
	h := newHarness(t)
	client, err := NewClient(ClientConfig{BaseURL: h.server.URL, Phone: power.Pixel3, MaxSegments: 50, UseMPC: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.StreamContext(ctx, 2, h.eval[0]); err == nil {
		t.Fatal("want error from cancelled session")
	}
}

// TestDownloadBodyCapEnforced verifies the client refuses absurd bodies
// instead of reading them forever.
func TestDownloadBodyCapEnforced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Declare an absurd size; the header gate must trip before any
		// bytes are read.
		w.Header().Set("Content-Length", "99999999999999")
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	if _, err := ParseSegmentHeader(http.Header{"Content-Length": {"99999999999999"}}); err == nil {
		t.Fatal("want error for absurd declared size")
	}
	resp, err := http.Get(srv.URL)
	if err == nil {
		defer resp.Body.Close()
		if _, err := ParseSegmentHeader(resp.Header); err == nil {
			t.Fatal("want error for absurd Content-Length on the wire")
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 16))
	}
}
