package httpstream

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptile360/internal/faultinject"
	"ptile360/internal/obs"
	"ptile360/internal/power"
	"ptile360/internal/resilience"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// TestObservabilitySoak extends the sharded-tier soak with the second
// observability tier: streaming clients (flight-recorded, SLO-monitored via
// an in-process TSDB) drive a router over chain-wrapped shards, a faulty
// shard is swapped in mid-run, and the test asserts the full loop:
//
//	(a) the availability SLO transitions to burning under the injected
//	    faults and recovers after the faulty shard drains out;
//	(b) a flight dump for an anomalous (abandoning) session reconciles
//	    exactly with that session's report entries;
//	(c) one cross-tier trace stitches client → router → chain → server
//	    spans under a shared trace id with a matching histogram exemplar.
func TestObservabilitySoak(t *testing.T) {
	h := newHarness(t)
	nTraffic := envInt("OBS_SOAK_CLIENTS", 3)
	nSegs := envInt("OBS_SOAK_SEGMENTS", 12)
	baseline := runtime.NumGoroutine()

	// --- edge-side observability: shared client registry, flight recorder,
	// TSDB, and a compressed-window availability SLO over abandons.
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 1, MaxDumps: 4096, Registry: reg})
	db := obs.NewTSDB(reg, obs.TSDBConfig{
		Resolutions: []obs.Resolution{{Step: 50 * time.Millisecond, Slots: 240}},
	})
	slos, err := obs.NewSLOEngine(db, reg, []obs.Objective{{
		Name:   "availability",
		Kind:   obs.SLOEventRatio,
		Target: 0.95,
		Bad:    []obs.Selector{obs.Sel("client_segments_total", obs.L("result", "abandoned"))},
		Total:  []obs.Selector{obs.Sel("client_segments_total")},
		Windows: []obs.BurnWindow{
			{Name: "soak", Long: 2 * time.Second, Short: 500 * time.Millisecond, Factor: 2},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	slos.OnBurn(func(name string) { flight.TriggerAll("slo:" + name) })
	db.Start()
	defer db.Stop()

	// --- sharded serving tier. Every shard carries its own registry with an
	// instrumented server behind a resilience chain, so the probe trace can
	// stitch all four tiers.
	type shardParts struct {
		name  string
		chain *resilience.Chain
		srv   *Server
	}
	newShard := func(name string, faulty bool) (Shard, shardParts) {
		srv, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
		if err != nil {
			t.Fatal(err)
		}
		shardReg := obs.NewRegistry()
		srv.Instrument(shardReg, nil)
		var inner http.Handler = srv
		if faulty {
			// Every request 5xxes, so a segment owned by this shard fails
			// all ladder rungs and abandons — except the manifest, which
			// bypasses the injector so sessions always get off the ground.
			fh, err := faultinject.Middleware(faultinject.Profile{
				Name: "obs-soak", Error5xxProb: 1.0,
			}, 1, srv)
			if err != nil {
				t.Fatal(err)
			}
			inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/manifest" {
					srv.ServeHTTP(w, r)
					return
				}
				fh.ServeHTTP(w, r)
			})
		}
		chain, err := resilience.NewChain(resilience.Config{
			Registry:       shardReg,
			MaxInFlight:    16,
			MaxQueue:       32,
			QueueTimeout:   200 * time.Millisecond,
			HandlerTimeout: 5 * time.Second,
		}, inner)
		if err != nil {
			t.Fatal(err)
		}
		return Shard{Name: name, Handler: chain}, shardParts{name: name, chain: chain, srv: srv}
	}

	// Pick the faulty shard's name so that, in the chaos membership
	// {shard-a, shard-f*}, it deterministically owns a meaningful share of
	// the streamed segment keys — consistent hashing makes ownership a pure
	// function of the member names.
	faultyName := ""
	for i := 0; i < 32 && faultyName == ""; i++ {
		cand := fmt.Sprintf("shard-f%d", i)
		ring := NewRing(0)
		ring.Add("shard-a")
		ring.Add(cand)
		owned := 0
		for seg := 0; seg < nSegs; seg++ {
			if s, ok := ring.Lookup(fmt.Sprintf("/segment|v=2|s=%d", seg)); ok && s == cand {
				owned++
			}
		}
		if owned*3 >= nSegs { // at least a third of the segments abandon
			faultyName = cand
		}
	}
	if faultyName == "" {
		t.Fatal("no candidate faulty shard name owns enough segment keys")
	}

	shardA, partsA := newShard("shard-a", false)
	shardB, partsB := newShard("shard-b", false)
	shardF, partsF := newShard(faultyName, true)
	parts := []shardParts{partsA, partsB, partsF}

	routerReg := obs.NewRegistry()
	rt, err := NewRouter(RouterConfig{Registry: routerReg}, shardA, shardB)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// --- traffic machinery: short back-to-back sessions, one report per
	// unique client id, never cancelled mid-session so every flight dump has
	// a completed report to reconcile against.
	sharedTransport := &http.Transport{DisableKeepAlives: true}
	defer sharedTransport.CloseIdleConnections()
	var repMu sync.Mutex
	reports := map[string]*SessionReport{}
	runSession := func(id string, viewer int) error {
		client, err := NewClient(ClientConfig{
			BaseURL:     ts.URL,
			Phone:       power.Pixel3,
			MaxSegments: nSegs,
			ClientID:    id,
			Metrics:     reg,
			Flight:      flight,
			Transport:   sharedTransport,
			Retry:       RetryPolicy{MaxAttempts: 1},
		})
		if err != nil {
			return err
		}
		rep, err := client.Stream(2, h.eval[viewer%len(h.eval)])
		if err != nil {
			return err
		}
		repMu.Lock()
		reports[id] = rep
		repMu.Unlock()
		return nil
	}
	startTraffic := func(prefix string) (stopFn func()) {
		var stop atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < nTraffic; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for s := 0; !stop.Load(); s++ {
					id := fmt.Sprintf("%s-g%d-s%d", prefix, g, s)
					if err := runSession(id, g); err != nil {
						t.Errorf("session %s: %v", id, err)
						return
					}
				}
			}(g)
		}
		return func() { stop.Store(true); wg.Wait() }
	}
	burning := func() bool {
		for _, st := range slos.Status() {
			if st.Name == "availability" {
				return st.Burning
			}
		}
		return false
	}
	waitBurning := func(want bool, deadline time.Duration) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if burning() == want {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		return false
	}

	// --- phase 1: healthy warmup. The SLO must not burn.
	stop := startTraffic("warm")
	time.Sleep(600 * time.Millisecond)
	stop()
	if burning() {
		t.Fatal("availability SLO burning during healthy warmup")
	}

	// --- phase 2: chaos. Swap the always-5xx shard in for shard-b and
	// invalidate the edge cache so its keys actually reach it.
	if err := rt.AddShard(shardF); err != nil {
		t.Fatal(err)
	}
	if err := rt.RemoveShard("shard-b"); err != nil {
		t.Fatal(err)
	}
	rt.BumpCatalogVersion()
	// A long-lived sentinel session spans the whole chaos phase: the burn
	// transition's TriggerAll always finds at least one active session even
	// if every streaming session happens to be between runs at that instant.
	sentinel := flight.Session("sentinel")
	sentinel.Record(obs.FlightEvent{Kind: obs.FlightJoin, Seg: -1})
	stop = startTraffic("chaos")
	burned := waitBurning(true, 30*time.Second)
	stop()
	sentinel.Close()
	if !burned {
		t.Fatalf("availability SLO never burned under a shard that 5xxes everything; status %+v", slos.Status())
	}

	// --- phase 3: drain the faulty shard and recover.
	if err := rt.RemoveShard(faultyName); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddShard(shardB); err != nil {
		t.Fatal(err)
	}
	rt.BumpCatalogVersion()
	stop = startTraffic("drain")
	recovered := waitBurning(false, 30*time.Second)
	stop()
	if !recovered {
		t.Fatalf("availability SLO still burning after drain; status %+v", slos.Status())
	}

	// --- (b) flight dumps reconcile exactly with the session reports.
	dumps := flight.Dumps()
	abandonDumps, sloDumps := 0, 0
	for _, d := range dumps {
		if strings.HasPrefix(d.Reason, "slo:") {
			sloDumps++
		}
		if d.Reason != "abandon" {
			continue
		}
		abandonDumps++
		repMu.Lock()
		rep := reports[d.Session]
		repMu.Unlock()
		if rep == nil {
			t.Fatalf("abandon dump for session %q without a report", d.Session)
		}
		bySeg := map[int32]SegmentRecord{}
		for _, r := range rep.Segments {
			bySeg[int32(r.Segment)] = r
		}
		sawAbandon := false
		for _, ev := range d.Events {
			switch ev.Kind {
			case obs.FlightJoin, obs.FlightLeave:
				continue
			}
			rec, ok := bySeg[ev.Seg]
			if !ok {
				t.Fatalf("dump %s/%s: event for segment %d not in report", d.Session, d.Reason, ev.Seg)
			}
			if ev.TimeSec != float64(rec.Segment) {
				t.Fatalf("dump %s: event time %g != segment %d (1 s segments)", d.Session, ev.TimeSec, rec.Segment)
			}
			switch ev.Kind {
			case obs.FlightDownload:
				loss := 0.0
				if rec.BestPerceivedQuality > 0 {
					loss = (rec.BestPerceivedQuality - rec.PerceivedQuality) / rec.BestPerceivedQuality
				}
				if ev.V1 != float64(rec.Bytes) || ev.V2 != rec.StallSec || ev.V3 != loss {
					t.Fatalf("dump %s seg %d: download event %+v != report %+v", d.Session, ev.Seg, ev, rec)
				}
			case obs.FlightStall:
				if ev.V1 != rec.StallSec || rec.StallSec <= 0 {
					t.Fatalf("dump %s seg %d: stall event %+v != report stall %g", d.Session, ev.Seg, ev, rec.StallSec)
				}
			case obs.FlightAbandon:
				sawAbandon = true
				if !rec.Abandoned || ev.V2 != rec.StallSec || ev.V3 != 1 {
					t.Fatalf("dump %s seg %d: abandon event %+v != report %+v", d.Session, ev.Seg, ev, rec)
				}
			}
		}
		if !sawAbandon {
			t.Fatalf("abandon dump %s carries no abandon event: %+v", d.Session, d.Events)
		}
	}
	if abandonDumps == 0 {
		t.Fatal("chaos phase produced no abandon-triggered flight dumps")
	}
	if sloDumps == 0 {
		t.Fatal("the SLO burn transition triggered no flight dumps")
	}

	// --- (c) cross-tier trace: one cache-defeated probe session, kept
	// around so its segment tracer joins the span hub; a router histogram
	// exemplar must then name a trace that stitches client → router →
	// chain → server spans under the shared id.
	rt.BumpCatalogVersion()
	probe, err := NewClient(ClientConfig{
		BaseURL:     ts.URL,
		Phone:       power.Pixel3,
		MaxSegments: nSegs,
		ClientID:    "trace-probe",
		Metrics:     reg,
		Transport:   sharedTransport,
		Retry:       RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Stream(2, h.eval[0]); err != nil {
		t.Fatalf("probe session: %v", err)
	}
	probeTraces := map[string]bool{}
	for _, sp := range probe.Tracer().Recent() {
		if sp.TraceID != "" {
			probeTraces[sp.TraceID] = true
		}
	}
	if len(probeTraces) == 0 {
		t.Fatal("probe session minted no traces")
	}
	// Exemplar side: sample the router registry into a TSDB and read the
	// freshest exemplars off router_request_seconds, the way /debug/tsdb
	// surfaces them. The probe ran last and alone, so the newest exemplar
	// per touched bucket is one of its requests.
	routerDB := obs.NewTSDB(routerReg, obs.TSDBConfig{
		Resolutions: []obs.Resolution{{Step: time.Second, Slots: 4}},
	})
	routerDB.Sample(time.Now())
	hub := obs.NewSpanHub(probe.Tracer(), rt.Tracer())
	for _, p := range parts {
		hub.Add(p.chain.Tracer())
		hub.Add(p.srv.Tracer())
	}
	stitched := false
	for _, sj := range routerDB.Snapshot("router_request_seconds", 0).Series {
		for _, ex := range sj.Exemplars {
			if !probeTraces[ex.TraceID] {
				continue // stale exemplar from the chaos phases
			}
			spans := hub.Trace(ex.TraceID)
			names := map[string]bool{}
			for _, sp := range spans {
				if sp.TraceID != ex.TraceID {
					t.Fatalf("span %+v leaked into trace %s", sp, ex.TraceID)
				}
				names[sp.Name] = true
			}
			if names["client_segment"] && names["router_request"] &&
				names["resilience_request"] && names["server_request"] {
				stitched = true
			}
		}
	}
	if !stitched {
		t.Fatal("no probe exemplar trace stitched client + router + chain + server spans")
	}

	// --- goroutine-leak check, after stopping everything.
	db.Stop()
	ts.Close()
	sharedTransport.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Logf("observability soak: %d sessions, %d dumps (%d abandon, %d slo), burned and recovered",
		len(reports), len(dumps), abandonDumps, sloDumps)
}
