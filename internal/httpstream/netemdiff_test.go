package httpstream

import (
	"bytes"
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"testing"

	"ptile360/internal/netem"
	"ptile360/internal/power"
)

// streamOverTransport runs one full client session against the shared
// harness server, optionally through a custom transport.
func streamOverTransport(t *testing.T, rt http.RoundTripper, baseURL string) *SessionReport {
	t.Helper()
	client, err := NewClient(ClientConfig{
		BaseURL:     baseURL,
		Phone:       power.Pixel3,
		MaxSegments: 30,
		UseMPC:      true,
		Transport:   rt,
		ClientID:    "netem-diff",
	})
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t)
	report, err := client.Stream(2, h.eval[0])
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestNetemIdealConnMatchesDirectTransport is the shim's differential
// guarantee: the ideal profile (unlimited capacity, zero latency, zero loss)
// must be invisible — a full client session routed through a netem.Listener
// makes byte-for-byte the same decisions, downloads the same payloads, and
// reports bit-identical (Float64bits) values for every field that does not
// measure wall time. Wall-derived fields (throughput, energy, stall) carry
// scheduler noise on BOTH transports and are excluded.
func TestNetemIdealConnMatchesDirectTransport(t *testing.T) {
	h := newHarness(t)

	direct := streamOverTransport(t, nil, h.server.URL)

	prof, err := netem.Named("ideal")
	if err != nil {
		t.Fatal(err)
	}
	l, err := netem.Listen(prof, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := &http.Server{Handler: h.server.Config.Handler}
	go srv.Serve(l)
	defer srv.Close()
	rt := &http.Transport{
		DialContext: func(context.Context, string, string) (net.Conn, error) { return l.Dial() },
	}
	emulated := streamOverTransport(t, rt, "http://netem")

	if len(direct.Segments) != len(emulated.Segments) {
		t.Fatalf("segment counts diverge: direct %d, netem %d", len(direct.Segments), len(emulated.Segments))
	}
	for i := range direct.Segments {
		d, e := direct.Segments[i], emulated.Segments[i]
		if d.Segment != e.Segment || d.Quality != e.Quality || d.Bytes != e.Bytes ||
			d.FromPtile != e.FromPtile || d.Emergency != e.Emergency ||
			d.Retries != e.Retries || d.DegradeSteps != e.DegradeSteps || d.Abandoned != e.Abandoned {
			t.Fatalf("segment %d decisions diverge:\ndirect  %+v\nnetem   %+v", i, d, e)
		}
		for _, f := range [][2]float64{
			{d.FrameRate, e.FrameRate},
			{d.PerceivedQuality, e.PerceivedQuality},
			{d.BestPerceivedQuality, e.BestPerceivedQuality},
			{d.ViewCenter.X, e.ViewCenter.X},
			{d.ViewCenter.Y, e.ViewCenter.Y},
		} {
			if math.Float64bits(f[0]) != math.Float64bits(f[1]) {
				t.Fatalf("segment %d float diverges: %x vs %x (%g vs %g)",
					i, math.Float64bits(f[0]), math.Float64bits(f[1]), f[0], f[1])
			}
		}
	}
	if direct.TotalBytes != emulated.TotalBytes || direct.PtileSegments != emulated.PtileSegments ||
		direct.TotalRetries != emulated.TotalRetries || direct.AbandonedSegments != emulated.AbandonedSegments {
		t.Fatalf("session totals diverge:\ndirect  %+v\nnetem   %+v", direct, emulated)
	}

	// Raw payloads are byte-identical too: same segment fetched over both
	// transports yields the same body.
	directBody := fetchBody(t, http.DefaultClient, h.server.URL+"/manifest?video=2")
	netemBody := fetchBody(t, &http.Client{Transport: rt}, "http://netem/manifest?video=2")
	if !bytes.Equal(directBody, netemBody) {
		t.Fatalf("manifest bodies diverge: %d vs %d bytes", len(directBody), len(netemBody))
	}
}

func fetchBody(t *testing.T, c *http.Client, url string) []byte {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
