package httpstream

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"ptile360/internal/abr"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/netem"
	"ptile360/internal/obs"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/ptile"
	"ptile360/internal/video"
	"ptile360/internal/vmaf"
)

// ClientConfig tunes the streaming client.
type ClientConfig struct {
	// BaseURL is the server address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Phone selects the power model for the MPC controller.
	Phone power.Phone
	// Shape optionally paces downloads to an LTE trace. Nil means
	// unshaped (full local throughput).
	Shape *lte.Trace
	// Net routes downloads through the in-process packet-level network
	// emulator instead of the segment-level Shape trace: each segment body
	// is read from the server at local speed, then charged the emulated
	// transfer time (packetization, queueing, loss, retransmission) and the
	// per-packet timing is fed to a PacketObserver estimator. Mutually
	// exclusive with Shape.
	Net *netem.SessionNet
	// Estimator selects the bandwidth-estimator family. The zero value
	// means the paper's harmonic mean over a 5-sample window. The
	// delay-gradient kind additionally consumes packet timing when Net is
	// set.
	Estimator predict.EstimatorKind
	// TimeCompression divides the shaping sleep times: 10 means the session
	// runs 10× faster than real time while preserving per-segment
	// throughput accounting. Zero means 1.
	TimeCompression float64
	// MaxSegments caps the number of segments streamed (0 = whole video).
	MaxSegments int
	// UseMPC selects the energy-minimizing controller; false streams with
	// the rate-based baseline.
	UseMPC bool

	// RequestTimeout bounds each HTTP request (one manifest fetch or one
	// segment download attempt) via context. Zero means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Retry governs failed-request handling. The zero value means
	// DefaultRetryPolicy().
	Retry RetryPolicy
	// RetrySeed seeds the backoff jitter so resilience runs reproduce
	// exactly. Zero means seed 1.
	RetrySeed int64
	// Transport optionally replaces the HTTP transport — e.g. a
	// faultinject.Transport for chaos testing. Nil uses the default
	// transport; the healthy path is then byte-identical to a client
	// without the resilience layer, because retries and degradation only
	// engage on failure.
	Transport http.RoundTripper
	// NoDegrade disables the degradation ladder: after the retry budget of
	// the chosen rung is exhausted the session fails instead of stepping
	// down to cheaper rungs and, ultimately, abandoning the segment.
	NoDegrade bool
	// ClientID, when set, is sent as the X-Client-Id header so the
	// server's per-client rate limiter can key on the session rather than
	// the shared NAT address. It also labels telemetry records.
	ClientID string
	// Telemetry, when set, receives one record per segment (served or
	// abandoned) as the session progresses — the paper's headline series:
	// bitrate, frame rate, stall, QoE loss, and modeled energy. The
	// callback runs on the streaming goroutine; keep it fast.
	Telemetry func(TelemetryRecord)
	// Metrics, when set, receives the session's counters and per-stage
	// latency histograms (client_segments_total, client_stall_seconds_total,
	// client_qoe_loss, client_segment_stage_seconds, ...).
	Metrics *obs.Registry
	// Flight, when set, black-boxes the session: a sampled per-session ring
	// of segment events that dumps on anomaly triggers (abandon, stall
	// burst, SLO burn). Sessions the recorder does not sample pay one nil
	// check per segment.
	Flight *obs.FlightRecorder
}

// Validate reports whether the configuration is usable.
func (c ClientConfig) Validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("httpstream: empty base URL")
	}
	u, err := url.Parse(c.BaseURL)
	if err != nil {
		return fmt.Errorf("httpstream: bad base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("httpstream: base URL %q: scheme %q is not http(s)", c.BaseURL, u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("httpstream: base URL %q has no host", c.BaseURL)
	}
	if c.TimeCompression < 0 {
		return fmt.Errorf("httpstream: negative time compression %g", c.TimeCompression)
	}
	if c.Shape != nil && c.Net != nil {
		return fmt.Errorf("httpstream: Shape and Net are mutually exclusive bandwidth models")
	}
	if c.MaxSegments < 0 {
		return fmt.Errorf("httpstream: negative segment cap %d", c.MaxSegments)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("httpstream: negative request timeout %v", c.RequestTimeout)
	}
	if c.Retry != (RetryPolicy{}) {
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SegmentRecord is the client-side accounting of one downloaded segment.
type SegmentRecord struct {
	// Segment is the index.
	Segment int
	// Quality and FrameRate are the chosen version.
	Quality video.Quality
	// FrameRate is in fps.
	FrameRate float64
	// Bytes is the payload size received.
	Bytes int64
	// ThroughputBps is the measured goodput.
	ThroughputBps float64
	// FromPtile reports whether a Ptile served the segment.
	FromPtile bool
	// EnergyMJ is the Eq. 1 energy estimate for the segment.
	EnergyMJ float64
	// PerceivedQuality is the Q(v, f) of the served version.
	PerceivedQuality float64
	// BufferSec is the buffer level when the download started.
	BufferSec float64
	// Emergency reports a stall-accepting controller fallback decision.
	Emergency bool
	// Retries counts failed download attempts before the segment was
	// served (or given up on).
	Retries int
	// DegradeSteps counts ladder rungs dropped below the controller's
	// choice before an attempt succeeded.
	DegradeSteps int
	// Abandoned reports that every rung failed and playback skipped the
	// segment.
	Abandoned bool
	// StallSec is the rebuffering time charged to this segment, including
	// the deadline miss of an abandoned segment.
	StallSec float64
	// BestPerceivedQuality is the highest Q(v, f) any offered version had —
	// the reference the per-segment QoE loss is measured against.
	BestPerceivedQuality float64
	// TxEnergyMJ and DecodeEnergyMJ split the Eq. 1 estimate into its
	// transmission and decode terms (render is the remainder).
	TxEnergyMJ     float64
	DecodeEnergyMJ float64
	// ViewCenter is the predicted viewport center the segment was fetched
	// for — the viewport report the online Ptile pipeline clusters.
	ViewCenter geom.Point
}

// SessionReport summarizes a client streaming run.
type SessionReport struct {
	VideoID  int
	Segments []SegmentRecord
	// TotalBytes is the summed payload volume.
	TotalBytes int64
	// TotalEnergyMJ is the summed Eq. 1 energy estimate.
	TotalEnergyMJ float64
	// PtileSegments counts Ptile-served segments.
	PtileSegments int
	// TotalRetries counts failed download attempts across the session.
	TotalRetries int
	// DegradedSegments counts segments served below the controller's
	// chosen rung.
	DegradedSegments int
	// AbandonedSegments counts segments skipped after the ladder was
	// exhausted.
	AbandonedSegments int
	// Stalls counts segments that charged rebuffering time.
	Stalls int
	// TotalStallSec is the summed rebuffering time.
	TotalStallSec float64
	// TotalQoELoss sums the per-segment QoE losses (fractions in [0, 1]);
	// divide by len(Segments) for the session mean the paper's ≤5 %
	// constraint is stated over.
	TotalQoELoss float64
}

// Client streams a video from a Server, driving the paper's controller over
// real HTTP. It survives flaky transports: per-request timeouts, bounded
// retries with exponential backoff and jitter, and a degradation ladder
// that steps down to cheaper rungs — abandoning a segment only when every
// rung has failed — so an unreliable network degrades the session instead
// of killing it.
type Client struct {
	cfg     ClientConfig
	http    *http.Client
	pm      power.Model
	mpc     *abr.EnergyMPC
	rate    *abr.RateBased
	enc     video.EncoderConfig
	grid    geom.Grid
	timeout time.Duration
	retry   RetryPolicy
	obs     *clientObs // nil when cfg.Metrics is unset

	mu  sync.Mutex // guards rng
	rng *rand.Rand // backoff jitter draws
}

// NewClient validates the configuration and builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pm, err := power.TableI(cfg.Phone)
	if err != nil {
		return nil, err
	}
	mpc, err := abr.NewEnergyMPC(abr.DefaultConfig(pm.Tx))
	if err != nil {
		return nil, err
	}
	rb, err := abr.NewRateBased(0.9)
	if err != nil {
		return nil, err
	}
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return nil, err
	}
	retry := cfg.Retry
	if retry == (RetryPolicy{}) {
		retry = DefaultRetryPolicy()
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = 1
	}
	hc := &http.Client{Timeout: 2 * time.Minute}
	if cfg.Transport != nil {
		hc.Transport = cfg.Transport
	}
	var co *clientObs
	if cfg.Metrics != nil {
		co = newClientObs(cfg.Metrics)
	}
	return &Client{
		cfg:     cfg,
		http:    hc,
		pm:      pm,
		mpc:     mpc,
		rate:    rb,
		enc:     video.DefaultEncoderConfig(),
		grid:    grid,
		timeout: timeout,
		retry:   retry,
		obs:     co,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Tracer returns the client's per-segment span recorder (nil without
// Metrics) for stitching cross-tier traces in a SpanHub.
func (c *Client) Tracer() *obs.Tracer {
	if c.obs == nil {
		return nil
	}
	return c.obs.tracer
}

// jitter draws a uniform jitter sample under the client lock.
func (c *Client) jitter() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// backoffWait sleeps before the retry-th retry: the policy's backoff,
// raised to any Retry-After hint the failed attempt carried (capped at the
// policy's max delay), aborting promptly when the session context dies.
func (c *Client) backoffWait(ctx context.Context, retry int, lastErr error) error {
	return sleepCtx(ctx, c.retry.BackoffWithHint(retry, c.jitter(), retryAfterHint(lastErr)))
}

// cancelBody ties a request-scoped cancel to the response body's Close so
// per-request contexts do not leak.
type cancelBody struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Read(p []byte) (int, error) { return b.rc.Read(p) }
func (b *cancelBody) Close() error {
	err := b.rc.Close()
	b.cancel()
	return err
}

// get issues one GET bounded by the per-request timeout.
func (c *Client) get(ctx context.Context, rawURL string) (*http.Response, error) {
	reqCtx, cancel := ctx, context.CancelFunc(func() {})
	if c.timeout > 0 {
		reqCtx, cancel = context.WithTimeout(ctx, c.timeout)
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, rawURL, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	if c.cfg.ClientID != "" {
		req.Header.Set("X-Client-Id", c.cfg.ClientID)
	}
	// Propagate the segment span's trace across the wire so the router,
	// resilience chain, and server stitch their spans under the same trace.
	if tc, ok := obs.TraceFromContext(ctx); ok {
		tc.SetHeader(req.Header)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
	return resp, nil
}

// FetchManifest downloads and decodes the manifest for the given video.
func (c *Client) FetchManifest(videoID int) (*Manifest, error) {
	return c.FetchManifestContext(context.Background(), videoID)
}

// FetchManifestContext is FetchManifest bounded by a session context, with
// the client's retry policy applied to transient failures.
func (c *Client) FetchManifestContext(ctx context.Context, videoID int) (*Manifest, error) {
	var lastErr error
	attempts := 0
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoffWait(ctx, attempt, lastErr); err != nil {
				return nil, fmt.Errorf("httpstream: fetch manifest: %w", err)
			}
		}
		m, err := c.fetchManifestOnce(ctx, videoID)
		if err == nil {
			return m, nil
		}
		lastErr = err
		attempts++
		if !retryable(err) || ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("httpstream: fetch manifest (%d attempts): %w", attempts, lastErr)
}

func (c *Client) fetchManifestOnce(ctx context.Context, videoID int) (*Manifest, error) {
	resp, err := c.get(ctx, fmt.Sprintf("%s/manifest?video=%d", c.cfg.BaseURL, videoID))
	if err != nil {
		return nil, fmt.Errorf("fetch manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("manifest: %w", newStatusError(resp))
	}
	return DecodeManifest(resp.Body)
}

// Stream plays the whole video for the given viewer, returning the
// per-segment accounting.
func (c *Client) Stream(videoID int, viewer *headtrace.Trace) (*SessionReport, error) {
	return c.StreamContext(context.Background(), videoID, viewer)
}

// StreamContext plays the video under a session context: cancelling it
// aborts the session promptly, including mid-backoff and mid-download.
func (c *Client) StreamContext(ctx context.Context, videoID int, viewer *headtrace.Trace) (*SessionReport, error) {
	if viewer == nil || len(viewer.Samples) == 0 {
		return nil, fmt.Errorf("httpstream: empty viewer trace")
	}
	man, err := c.FetchManifestContext(ctx, videoID)
	if err != nil {
		return nil, err
	}
	n := len(man.Segments)
	if c.cfg.MaxSegments > 0 && c.cfg.MaxSegments < n {
		n = c.cfg.MaxSegments
	}

	kind := c.cfg.Estimator
	if kind == 0 {
		kind = predict.EstimatorHarmonic
	}
	bw, err := predict.NewEstimator(kind, 5)
	if err != nil {
		return nil, err
	}
	xs, ys := viewer.XYSeries()
	report := &SessionReport{VideoID: videoID}
	buffer := 0.0
	virtual := 0.0 // virtual wall-clock (seconds) for trace shaping

	// Open the session's flight-recorder ring (nil when unsampled or the
	// recorder is absent — every Record below is then one branch).
	var fs *obs.FlightSession
	if c.cfg.Flight != nil {
		id := c.cfg.ClientID
		if id == "" {
			id = fmt.Sprintf("video-%d", videoID)
		}
		fs = c.cfg.Flight.Session(id)
		defer fs.Close()
		fs.Record(obs.FlightEvent{Kind: obs.FlightJoin, Seg: -1})
	}

	for seg := 0; seg < n; seg++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("httpstream: session cancelled at segment %d: %w", seg, err)
		}
		var span *obs.Span
		segCtx := ctx
		if c.obs != nil {
			span = c.obs.tracer.Start(fmt.Sprintf("%s/seg%d", c.cfg.ClientID, seg))
			// Mint a fresh trace per segment and re-parent the context so
			// every download attempt carries it across the wire.
			span.WithTrace(obs.TraceContext{})
			segCtx = obs.WithTraceContext(ctx, span.TraceContext())
		}
		// Viewport prediction from played history.
		played := float64(seg)*man.SegmentSec - buffer
		if played < 0 {
			played = 0
		}
		idx := int(played * headtrace.SampleRate)
		var center geom.Point
		if idx < 2 {
			center = geom.PointOf(viewer.Samples[0].O)
		} else {
			if idx > len(xs) {
				idx = len(xs)
			}
			horizon := (float64(seg)+0.5)*man.SegmentSec - played
			if horizon > 1 {
				horizon = 1
			}
			p, err := predict.Viewport(xs[:idx], ys[:idx], horizon, predict.DefaultViewportConfig())
			if err != nil {
				p = geom.PointOf(viewer.Samples[idx-1].O)
			}
			center = p
		}

		if span != nil {
			span.Stage("predict")
		}

		// Pick the serving Ptile from the manifest.
		ptIdx, ptRect := c.pickPtile(man, seg, center)

		// Decide the version.
		rateEst := 5e6
		if bw.Ready() {
			if est, err := bw.Estimate(); err == nil {
				rateEst = est
			}
		}
		speedEst := 0.0
		if seg > 0 {
			if sp, err := viewer.SegmentPeakSpeed(seg-1, man.SegmentSec); err == nil {
				speedEst = sp
			}
		}
		options, err := c.options(man, seg, ptIdx >= 0, ptRect, speedEst)
		if err != nil {
			return nil, err
		}
		var decision abr.Decision
		if c.cfg.UseMPC {
			decision, err = c.mpc.Decide(buffer, rateEst, []abr.SegmentMeta{{Options: options}})
		} else {
			decision, err = c.rate.Decide(buffer, rateEst, options)
		}
		if err != nil {
			return nil, err
		}
		bestQ := 0.0
		for _, o := range options {
			if o.PerceivedQuality > bestQ {
				bestQ = o.PerceivedQuality
			}
		}
		if span != nil {
			span.Stage("decide")
		}

		// Download over HTTP with retries and the degradation ladder,
		// pacing reads against the shaping trace.
		out, err := c.downloadResilient(segCtx, videoID, seg, man.CatalogVersion, degradeLadder(options, decision.Chosen), ptIdx, center, &virtual)
		if span != nil {
			span.Stage("download")
		}
		if err != nil {
			return nil, err
		}
		bufferBefore := buffer

		if out.abandoned {
			// Every rung failed: playback skips the segment. The deadline
			// miss freezes the display for the segment duration on top of
			// whatever buffer the failed attempts burned.
			stall := out.wasted - bufferBefore
			if stall < 0 {
				stall = 0
			}
			stall += man.SegmentSec
			if buffer -= out.wasted; buffer < 0 {
				buffer = 0
			}
			rec := SegmentRecord{
				Segment:              seg,
				Abandoned:            true,
				Retries:              out.retries,
				BufferSec:            bufferBefore,
				StallSec:             stall,
				BestPerceivedQuality: bestQ,
				ViewCenter:           center,
			}
			report.Segments = append(report.Segments, rec)
			report.TotalRetries += out.retries
			report.AbandonedSegments++
			report.Stalls++
			report.TotalStallSec += stall
			report.TotalQoELoss += 1
			if fs != nil {
				now := float64(seg) * man.SegmentSec
				fs.Record(obs.FlightEvent{TimeSec: now, Kind: obs.FlightStall, Seg: int32(seg), V1: stall})
				fs.Record(obs.FlightEvent{TimeSec: now, Kind: obs.FlightAbandon, Seg: int32(seg), V2: stall, V3: 1})
			}
			c.emitTelemetry(videoID, man.SegmentSec, rec, span)
			continue
		}

		chosen := out.used
		throughput := float64(out.bytes*8) / out.elapsed
		if c.cfg.Net != nil {
			// Feed the successful attempt's wire timing to the estimator
			// before the segment-level sample, mirroring arrival order.
			if po, ok := bw.(predict.PacketObserver); ok {
				for _, ps := range c.cfg.Net.Packets() {
					po.ObservePacket(ps.SendSec, ps.RecvSec, ps.Bytes)
				}
			}
		}
		if err := bw.Observe(throughput); err != nil {
			return nil, err
		}
		spent := out.elapsed + out.wasted
		stall := spent - bufferBefore
		if stall < 0 {
			stall = 0
		}
		if buffer -= spent; buffer < 0 {
			buffer = 0
		}
		buffer += man.SegmentSec
		if buffer > 3+man.SegmentSec {
			buffer = 3 + man.SegmentSec
		}

		e, err := c.pm.Segment(power.PtileScheme, float64(out.bytes*8), throughput, chosen.FrameRate, man.SegmentSec)
		if err != nil {
			return nil, err
		}
		rec := SegmentRecord{
			Segment:              seg,
			Quality:              chosen.Quality,
			FrameRate:            chosen.FrameRate,
			Bytes:                out.bytes,
			ThroughputBps:        throughput,
			FromPtile:            ptIdx >= 0,
			EnergyMJ:             e.Total(),
			TxEnergyMJ:           e.Tx,
			DecodeEnergyMJ:       e.Decode,
			PerceivedQuality:     chosen.PerceivedQuality,
			BestPerceivedQuality: bestQ,
			BufferSec:            bufferBefore,
			Emergency:            decision.Emergency,
			Retries:              out.retries,
			DegradeSteps:         out.degradeSteps,
			StallSec:             stall,
			ViewCenter:           center,
		}
		report.Segments = append(report.Segments, rec)
		report.TotalBytes += out.bytes
		report.TotalEnergyMJ += rec.EnergyMJ
		if rec.FromPtile {
			report.PtileSegments++
		}
		report.TotalRetries += out.retries
		if out.degradeSteps > 0 {
			report.DegradedSegments++
		}
		if stall > 0 {
			report.Stalls++
			report.TotalStallSec += stall
		}
		if bestQ > 0 {
			report.TotalQoELoss += (bestQ - rec.PerceivedQuality) / bestQ
		}
		if fs != nil {
			now := float64(seg) * man.SegmentSec
			if stall > 0 {
				fs.Record(obs.FlightEvent{TimeSec: now, Kind: obs.FlightStall, Seg: int32(seg), V1: stall})
			}
			loss := 0.0
			if bestQ > 0 {
				loss = (bestQ - rec.PerceivedQuality) / bestQ
			}
			fs.Record(obs.FlightEvent{TimeSec: now, Kind: obs.FlightDownload, Seg: int32(seg), V1: float64(rec.Bytes), V2: stall, V3: loss})
		}
		c.emitTelemetry(videoID, man.SegmentSec, rec, span)
	}
	if fs != nil {
		fs.Record(obs.FlightEvent{TimeSec: float64(n) * man.SegmentSec, Kind: obs.FlightLeave, Seg: int32(n)})
	}
	return report, nil
}

// emitTelemetry converts one segment's accounting into a telemetry record,
// feeds the registry, closes the segment span, and invokes the callback.
func (c *Client) emitTelemetry(videoID int, segmentSec float64, rec SegmentRecord, span *obs.Span) {
	if span != nil {
		span.Stage("account")
		span.End()
	}
	if c.obs == nil && c.cfg.Telemetry == nil {
		return
	}
	tr := telemetryFrom(c.cfg.ClientID, videoID, segmentSec, rec)
	c.obs.observe(tr)
	if c.cfg.Telemetry != nil {
		c.cfg.Telemetry(tr)
	}
}

// pickPtile returns the index and rect of the manifest Ptile serving the
// predicted center, or (-1, zero).
func (c *Client) pickPtile(man *Manifest, seg int, center geom.Point) (int, geom.Rect) {
	best := -1
	var bestRect geom.Rect
	bestArea := 1e18
	for i, rj := range man.Segments[seg].Ptiles {
		r := rj.toRect()
		pt := ptile.Ptile{Rect: r}
		if pt.Covers(c.grid, center, 100) && r.Area() < bestArea {
			best, bestRect, bestArea = i, r, r.Area()
		}
	}
	if best >= 0 {
		return best, bestRect
	}
	for i, rj := range man.Segments[seg].Ptiles {
		r := rj.toRect()
		if r.Contains(center) && r.Area() < bestArea {
			best, bestRect, bestArea = i, r, r.Area()
		}
	}
	return best, bestRect
}

// options computes the version ladder for one segment from manifest
// metadata, mirroring the server's size model.
func (c *Client) options(man *Manifest, seg int, havePtile bool, ptRect geom.Rect, speed float64) ([]abr.OptionMeta, error) {
	sc := video.SegmentContent{SI: man.Segments[seg].SI, TI: man.Segments[seg].TI, Jitter: 1}
	frameRates := man.FrameRates
	if !havePtile {
		frameRates = []float64{man.SourceFPS}
	}
	var out []abr.OptionMeta
	for v := video.MinQuality; v <= video.MaxQuality; v++ {
		for _, f := range frameRates {
			var bits float64
			var err error
			if havePtile {
				bits, err = c.enc.TileBits(video.TileSpec{Rect: ptRect, Quality: v, FrameRate: f, Kind: video.KindPtile}, man.SegmentSec, sc)
			} else {
				bits, err = c.enc.RegionBits(0.28125, v, f, video.KindGrid, man.SegmentSec, sc)
			}
			if err != nil {
				return nil, err
			}
			b, err := c.enc.QoEBitrateMbps(v)
			if err != nil {
				return nil, err
			}
			// α = κ·S_fov/TI with the same κ = 6 calibration as the
			// simulator (sim.Config.AlphaScale).
			q, err := vmaf.TableII().PerceivedQuality(sc.SI, sc.TI, b, 6*speed, f, man.SourceFPS)
			if err != nil {
				return nil, err
			}
			dec := c.pm.Decode[power.PtileScheme]
			out = append(out, abr.OptionMeta{
				Option:           abr.Option{Quality: v, FrameRate: f},
				SizeBits:         bits,
				PerceivedQuality: q,
				ProcPowerMW:      dec.At(f) + c.pm.Render.At(f),
			})
		}
	}
	return out, nil
}

// degradeLadder orders the fallback rungs for a segment: the controller's
// choice first, then every cheaper (smaller) version by descending size,
// ending at the smallest. Repeated failure walks down this ladder.
func degradeLadder(options []abr.OptionMeta, chosen abr.OptionMeta) []abr.OptionMeta {
	rungs := make([]abr.OptionMeta, 0, len(options))
	for _, o := range options {
		if o.Option == chosen.Option || o.SizeBits < chosen.SizeBits {
			rungs = append(rungs, o)
		}
	}
	sort.SliceStable(rungs, func(i, j int) bool {
		if rungs[i].Option == chosen.Option {
			return true
		}
		if rungs[j].Option == chosen.Option {
			return false
		}
		return rungs[i].SizeBits > rungs[j].SizeBits
	})
	return rungs
}

// downloadOutcome is the result of the retry/degradation loop for one
// segment.
type downloadOutcome struct {
	bytes        int64
	elapsed      float64 // successful attempt's (virtual) download time
	wasted       float64 // time burned on failed attempts
	used         abr.OptionMeta
	retries      int
	degradeSteps int
	abandoned    bool
}

// downloadResilient walks the degradation ladder: each rung gets the retry
// budget, and when every rung is exhausted the segment is abandoned rather
// than failing the session. Only context cancellation and permanent (4xx)
// errors propagate.
func (c *Client) downloadResilient(ctx context.Context, videoID, seg int, cv int64, ladder []abr.OptionMeta, ptIdx int, center geom.Point, virtual *float64) (downloadOutcome, error) {
	var out downloadOutcome
	var lastErr error
	for rung, opt := range ladder {
		for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
			if attempt > 0 {
				if err := c.backoffWait(ctx, attempt, lastErr); err != nil {
					return out, fmt.Errorf("httpstream: segment %d: %w", seg, err)
				}
			}
			nBytes, elapsed, err := c.downloadOnce(ctx, videoID, seg, cv, opt, ptIdx, center, virtual)
			if err == nil {
				out.bytes, out.elapsed, out.used, out.degradeSteps = nBytes, elapsed, opt, rung
				return out, nil
			}
			out.retries++
			out.wasted += elapsed
			lastErr = err
			if ctx.Err() != nil {
				return out, fmt.Errorf("httpstream: segment %d: %w", seg, ctx.Err())
			}
			if !retryable(err) {
				return out, err
			}
		}
		if c.cfg.NoDegrade {
			return out, fmt.Errorf("httpstream: segment %d failed after %d attempts: %w", seg, out.retries, lastErr)
		}
	}
	out.abandoned = true
	return out, nil
}

// downloadOnce GETs one segment version and paces reads against the shaping
// trace, returning the byte count and the (virtual) elapsed seconds. On
// failure the partial byte count and elapsed time are still returned so the
// caller can account the waste.
func (c *Client) downloadOnce(ctx context.Context, videoID, seg int, cv int64, chosen abr.OptionMeta, ptIdx int, center geom.Point, virtual *float64) (int64, float64, error) {
	u := fmt.Sprintf("%s/segment?video=%d&seg=%d&q=%d&f=%s",
		c.cfg.BaseURL, videoID, seg, int(chosen.Quality),
		strconv.FormatFloat(chosen.FrameRate, 'f', -1, 64))
	if cv > 0 {
		// Pin the session to the catalogue generation its manifest was cut
		// from: hot swaps must not change the Ptile geometry under a
		// session mid-stream.
		u += fmt.Sprintf("&cv=%d", cv)
	}
	if ptIdx >= 0 {
		u += fmt.Sprintf("&ptile=%d", ptIdx)
	} else {
		u += fmt.Sprintf("&cx=%g&cy=%g", center.X, center.Y)
	}
	resp, err := c.get(ctx, u)
	if err != nil {
		return 0, 0, fmt.Errorf("httpstream: segment %d: %w", seg, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, 0, fmt.Errorf("httpstream: segment %d: %w", seg, newStatusError(resp))
	}
	hdr, err := ParseSegmentHeader(resp.Header)
	if err != nil {
		return 0, 0, fmt.Errorf("httpstream: segment %d: %w", seg, err)
	}

	start := time.Now()
	var nBytes int64
	var readErr error
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		nBytes += int64(n)
		if c.cfg.Shape != nil && n > 0 {
			// Pace against the trace: reading n bytes at rate R takes
			// n·8/R seconds of virtual time.
			rate := c.cfg.Shape.At(*virtual)
			dt := float64(n*8) / rate
			*virtual += dt
			compression := c.cfg.TimeCompression
			if compression == 0 {
				compression = 1
			}
			time.Sleep(time.Duration(dt / compression * float64(time.Second)))
		}
		if nBytes > maxSegmentBytes {
			readErr = fmt.Errorf("body exceeds cap %d", int64(maxSegmentBytes))
			break
		}
		if err == io.EOF {
			if hdr.ContentLength >= 0 && nBytes != hdr.ContentLength {
				readErr = fmt.Errorf("truncated body: %d of %d bytes: %w", nBytes, hdr.ContentLength, io.ErrUnexpectedEOF)
			}
			break
		}
		if err != nil {
			readErr = err
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	switch {
	case c.cfg.Net != nil && nBytes > 0:
		// The body was read at local speed; charge the emulated wire time
		// instead, and advance the session's virtual clock so back-to-back
		// segments see the link schedule at the right offsets.
		dur, derr := c.cfg.Net.Download(float64(nBytes*8), *virtual)
		if derr != nil {
			return nBytes, elapsed, fmt.Errorf("httpstream: segment %d: %w", seg, derr)
		}
		*virtual += dur
		compression := c.cfg.TimeCompression
		if compression == 0 {
			compression = 1
		}
		time.Sleep(time.Duration(dur / compression * float64(time.Second)))
		elapsed = dur
	case c.cfg.Shape != nil:
		// Under shaping, the virtual elapsed time is authoritative.
		elapsed = float64(nBytes*8) / c.cfg.Shape.At(*virtual)
	}
	if elapsed <= 0 {
		elapsed = 1e-6
	}
	if readErr != nil {
		return nBytes, elapsed, fmt.Errorf("httpstream: segment %d read: %w", seg, readErr)
	}
	return nBytes, elapsed, nil
}
