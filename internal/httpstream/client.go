package httpstream

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ptile360/internal/abr"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/ptile"
	"ptile360/internal/video"
	"ptile360/internal/vmaf"
)

// ClientConfig tunes the streaming client.
type ClientConfig struct {
	// BaseURL is the server address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Phone selects the power model for the MPC controller.
	Phone power.Phone
	// Shape optionally paces downloads to an LTE trace. Nil means
	// unshaped (full local throughput).
	Shape *lte.Trace
	// TimeCompression divides the shaping sleep times: 10 means the session
	// runs 10× faster than real time while preserving per-segment
	// throughput accounting. Zero means 1.
	TimeCompression float64
	// MaxSegments caps the number of segments streamed (0 = whole video).
	MaxSegments int
	// UseMPC selects the energy-minimizing controller; false streams with
	// the rate-based baseline.
	UseMPC bool
}

// Validate reports whether the configuration is usable.
func (c ClientConfig) Validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("httpstream: empty base URL")
	}
	if _, err := url.Parse(c.BaseURL); err != nil {
		return fmt.Errorf("httpstream: bad base URL: %w", err)
	}
	if c.TimeCompression < 0 {
		return fmt.Errorf("httpstream: negative time compression %g", c.TimeCompression)
	}
	if c.MaxSegments < 0 {
		return fmt.Errorf("httpstream: negative segment cap %d", c.MaxSegments)
	}
	return nil
}

// SegmentRecord is the client-side accounting of one downloaded segment.
type SegmentRecord struct {
	// Segment is the index.
	Segment int
	// Quality and FrameRate are the chosen version.
	Quality video.Quality
	// FrameRate is in fps.
	FrameRate float64
	// Bytes is the payload size received.
	Bytes int64
	// ThroughputBps is the measured goodput.
	ThroughputBps float64
	// FromPtile reports whether a Ptile served the segment.
	FromPtile bool
	// EnergyMJ is the Eq. 1 energy estimate for the segment.
	EnergyMJ float64
}

// SessionReport summarizes a client streaming run.
type SessionReport struct {
	VideoID  int
	Segments []SegmentRecord
	// TotalBytes is the summed payload volume.
	TotalBytes int64
	// TotalEnergyMJ is the summed Eq. 1 energy estimate.
	TotalEnergyMJ float64
	// PtileSegments counts Ptile-served segments.
	PtileSegments int
}

// Client streams a video from a Server, driving the paper's controller over
// real HTTP.
type Client struct {
	cfg  ClientConfig
	http *http.Client
	pm   power.Model
	mpc  *abr.EnergyMPC
	rate *abr.RateBased
	enc  video.EncoderConfig
	grid geom.Grid
}

// NewClient validates the configuration and builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pm, err := power.TableI(cfg.Phone)
	if err != nil {
		return nil, err
	}
	mpc, err := abr.NewEnergyMPC(abr.DefaultConfig(pm.Tx))
	if err != nil {
		return nil, err
	}
	rb, err := abr.NewRateBased(0.9)
	if err != nil {
		return nil, err
	}
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:  cfg,
		http: &http.Client{Timeout: 2 * time.Minute},
		pm:   pm,
		mpc:  mpc,
		rate: rb,
		enc:  video.DefaultEncoderConfig(),
		grid: grid,
	}, nil
}

// FetchManifest downloads and decodes the manifest for the given video.
func (c *Client) FetchManifest(videoID int) (*Manifest, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/manifest?video=%d", c.cfg.BaseURL, videoID))
	if err != nil {
		return nil, fmt.Errorf("httpstream: fetch manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpstream: manifest status %s", resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("httpstream: decode manifest: %w", err)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("httpstream: empty manifest")
	}
	return &m, nil
}

// Stream plays the whole video for the given viewer, returning the
// per-segment accounting.
func (c *Client) Stream(videoID int, viewer *headtrace.Trace) (*SessionReport, error) {
	if viewer == nil || len(viewer.Samples) == 0 {
		return nil, fmt.Errorf("httpstream: empty viewer trace")
	}
	man, err := c.FetchManifest(videoID)
	if err != nil {
		return nil, err
	}
	n := len(man.Segments)
	if c.cfg.MaxSegments > 0 && c.cfg.MaxSegments < n {
		n = c.cfg.MaxSegments
	}

	bw, err := predict.NewBandwidth(5)
	if err != nil {
		return nil, err
	}
	xs, ys := viewer.XYSeries()
	report := &SessionReport{VideoID: videoID}
	buffer := 0.0
	virtual := 0.0 // virtual wall-clock (seconds) for trace shaping

	for seg := 0; seg < n; seg++ {
		// Viewport prediction from played history.
		played := float64(seg)*man.SegmentSec - buffer
		if played < 0 {
			played = 0
		}
		idx := int(played * headtrace.SampleRate)
		var center geom.Point
		if idx < 2 {
			center = geom.PointOf(viewer.Samples[0].O)
		} else {
			if idx > len(xs) {
				idx = len(xs)
			}
			horizon := (float64(seg)+0.5)*man.SegmentSec - played
			if horizon > 1 {
				horizon = 1
			}
			p, err := predict.Viewport(xs[:idx], ys[:idx], horizon, predict.DefaultViewportConfig())
			if err != nil {
				p = geom.PointOf(viewer.Samples[idx-1].O)
			}
			center = p
		}

		// Pick the serving Ptile from the manifest.
		ptIdx, ptRect := c.pickPtile(man, seg, center)

		// Decide the version.
		rateEst := 5e6
		if bw.Ready() {
			if est, err := bw.Estimate(); err == nil {
				rateEst = est
			}
		}
		speedEst := 0.0
		if seg > 0 {
			if sp, err := viewer.SegmentPeakSpeed(seg-1, man.SegmentSec); err == nil {
				speedEst = sp
			}
		}
		options, err := c.options(man, seg, ptIdx >= 0, ptRect, speedEst)
		if err != nil {
			return nil, err
		}
		var decision abr.Decision
		if c.cfg.UseMPC {
			decision, err = c.mpc.Decide(buffer, rateEst, []abr.SegmentMeta{{Options: options}})
		} else {
			decision, err = c.rate.Decide(buffer, rateEst, options)
		}
		if err != nil {
			return nil, err
		}
		chosen := decision.Chosen

		// Download over HTTP, pacing reads against the shaping trace.
		nBytes, elapsed, err := c.download(videoID, seg, chosen, ptIdx, center, &virtual)
		if err != nil {
			return nil, err
		}
		throughput := float64(nBytes*8) / elapsed
		if err := bw.Observe(throughput); err != nil {
			return nil, err
		}
		if buffer -= elapsed; buffer < 0 {
			buffer = 0
		}
		buffer += man.SegmentSec
		if buffer > 3+man.SegmentSec {
			buffer = 3 + man.SegmentSec
		}

		e, err := c.pm.Segment(power.PtileScheme, float64(nBytes*8), throughput, chosen.FrameRate, man.SegmentSec)
		if err != nil {
			return nil, err
		}
		rec := SegmentRecord{
			Segment:       seg,
			Quality:       chosen.Quality,
			FrameRate:     chosen.FrameRate,
			Bytes:         nBytes,
			ThroughputBps: throughput,
			FromPtile:     ptIdx >= 0,
			EnergyMJ:      e.Total(),
		}
		report.Segments = append(report.Segments, rec)
		report.TotalBytes += nBytes
		report.TotalEnergyMJ += rec.EnergyMJ
		if rec.FromPtile {
			report.PtileSegments++
		}
	}
	return report, nil
}

// pickPtile returns the index and rect of the manifest Ptile serving the
// predicted center, or (-1, zero).
func (c *Client) pickPtile(man *Manifest, seg int, center geom.Point) (int, geom.Rect) {
	best := -1
	var bestRect geom.Rect
	bestArea := 1e18
	for i, rj := range man.Segments[seg].Ptiles {
		r := rj.toRect()
		pt := ptile.Ptile{Rect: r}
		if pt.Covers(c.grid, center, 100) && r.Area() < bestArea {
			best, bestRect, bestArea = i, r, r.Area()
		}
	}
	if best >= 0 {
		return best, bestRect
	}
	for i, rj := range man.Segments[seg].Ptiles {
		r := rj.toRect()
		if r.Contains(center) && r.Area() < bestArea {
			best, bestRect, bestArea = i, r, r.Area()
		}
	}
	return best, bestRect
}

// options computes the version ladder for one segment from manifest
// metadata, mirroring the server's size model.
func (c *Client) options(man *Manifest, seg int, havePtile bool, ptRect geom.Rect, speed float64) ([]abr.OptionMeta, error) {
	sc := video.SegmentContent{SI: man.Segments[seg].SI, TI: man.Segments[seg].TI, Jitter: 1}
	frameRates := man.FrameRates
	if !havePtile {
		frameRates = []float64{man.SourceFPS}
	}
	var out []abr.OptionMeta
	for v := video.MinQuality; v <= video.MaxQuality; v++ {
		for _, f := range frameRates {
			var bits float64
			var err error
			if havePtile {
				bits, err = c.enc.TileBits(video.TileSpec{Rect: ptRect, Quality: v, FrameRate: f, Kind: video.KindPtile}, man.SegmentSec, sc)
			} else {
				bits, err = c.enc.RegionBits(0.28125, v, f, video.KindGrid, man.SegmentSec, sc)
			}
			if err != nil {
				return nil, err
			}
			b, err := c.enc.QoEBitrateMbps(v)
			if err != nil {
				return nil, err
			}
			// α = κ·S_fov/TI with the same κ = 6 calibration as the
			// simulator (sim.Config.AlphaScale).
			q, err := vmaf.TableII().PerceivedQuality(sc.SI, sc.TI, b, 6*speed, f, man.SourceFPS)
			if err != nil {
				return nil, err
			}
			dec := c.pm.Decode[power.PtileScheme]
			out = append(out, abr.OptionMeta{
				Option:           abr.Option{Quality: v, FrameRate: f},
				SizeBits:         bits,
				PerceivedQuality: q,
				ProcPowerMW:      dec.At(f) + c.pm.Render.At(f),
			})
		}
	}
	return out, nil
}

// download GETs one segment and paces reads against the shaping trace,
// returning the byte count and the (virtual) elapsed seconds.
func (c *Client) download(videoID, seg int, chosen abr.OptionMeta, ptIdx int, center geom.Point, virtual *float64) (int64, float64, error) {
	u := fmt.Sprintf("%s/segment?video=%d&seg=%d&q=%d&f=%s",
		c.cfg.BaseURL, videoID, seg, int(chosen.Quality),
		strconv.FormatFloat(chosen.FrameRate, 'f', -1, 64))
	if ptIdx >= 0 {
		u += fmt.Sprintf("&ptile=%d", ptIdx)
	} else {
		u += fmt.Sprintf("&cx=%g&cy=%g", center.X, center.Y)
	}
	resp, err := c.http.Get(u)
	if err != nil {
		return 0, 0, fmt.Errorf("httpstream: segment %d: %w", seg, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("httpstream: segment %d: status %s", seg, resp.Status)
	}

	start := time.Now()
	var nBytes int64
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		nBytes += int64(n)
		if c.cfg.Shape != nil && n > 0 {
			// Pace against the trace: reading n bytes at rate R takes
			// n·8/R seconds of virtual time.
			rate := c.cfg.Shape.At(*virtual)
			dt := float64(n*8) / rate
			*virtual += dt
			compression := c.cfg.TimeCompression
			if compression == 0 {
				compression = 1
			}
			time.Sleep(time.Duration(dt / compression * float64(time.Second)))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, fmt.Errorf("httpstream: segment %d read: %w", seg, err)
		}
	}
	elapsed := time.Since(start).Seconds()
	if c.cfg.Shape != nil {
		// Under shaping, the virtual elapsed time is authoritative.
		elapsed = float64(nBytes*8) / c.cfg.Shape.At(*virtual)
	}
	if elapsed <= 0 {
		elapsed = 1e-6
	}
	return nBytes, elapsed, nil
}
