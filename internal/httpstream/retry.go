package httpstream

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// DefaultRequestTimeout bounds a single HTTP request (one manifest fetch or
// one segment download attempt) when ClientConfig.RequestTimeout is zero.
const DefaultRequestTimeout = 30 * time.Second

// RetryPolicy governs how the client handles failed requests: bounded
// attempts per quality rung with exponential backoff and uniform jitter.
type RetryPolicy struct {
	// MaxAttempts is the number of tries per rung (the first attempt plus
	// MaxAttempts−1 retries). Must be ≥ 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (before jitter).
	MaxDelay time.Duration
	// Jitter is the uniform jitter fraction in [0, 1]: the actual wait is
	// delay · (1 + Jitter·u) with u ~ U[0, 1).
	Jitter float64
}

// DefaultRetryPolicy returns the client's standard failure handling:
// 3 attempts per rung, 50 ms base backoff doubling up to 2 s, 50 % jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      0.5,
	}
}

// Validate reports whether the policy is usable.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("httpstream: retry attempts %d < 1", p.MaxAttempts)
	}
	if p.BaseDelay < 0 {
		return fmt.Errorf("httpstream: negative base delay %v", p.BaseDelay)
	}
	if p.MaxDelay < p.BaseDelay {
		return fmt.Errorf("httpstream: max delay %v below base delay %v", p.MaxDelay, p.BaseDelay)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("httpstream: jitter %g outside [0, 1]", p.Jitter)
	}
	return nil
}

// Backoff returns the wait before the retry-th retry (retry ≥ 1), given a
// jitter draw u in [0, 1). The result is bounded by MaxDelay·(1+Jitter).
func (p RetryPolicy) Backoff(retry int, u float64) time.Duration {
	if retry < 1 || p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if u < 0 {
		u = 0
	} else if u >= 1 {
		u = 1
	}
	return d + time.Duration(p.Jitter*u*float64(d))
}

// BackoffWithHint combines the exponential backoff with a server-supplied
// Retry-After hint: the wait is the larger of the two, with the hint capped
// at MaxDelay so a hostile or confused server cannot park the client.
func (p RetryPolicy) BackoffWithHint(retry int, u float64, hint time.Duration) time.Duration {
	d := p.Backoff(retry, u)
	if hint > p.MaxDelay {
		hint = p.MaxDelay
	}
	if hint > d {
		d = hint
	}
	return d
}

// maxRetryAfter bounds a parsed Retry-After value before the policy cap is
// applied, so absurd or overflowing hints cannot produce a bogus duration.
const maxRetryAfter = 24 * time.Hour

// ParseRetryAfter parses an HTTP Retry-After header value in either RFC
// 9110 form — delay seconds ("120") or HTTP-date ("Fri, 31 Dec 1999
// 23:59:59 GMT") — relative to now. Malformed or negative values report
// ok=false; dates in the past report a zero wait.
func ParseRetryAfter(v string, now time.Time) (wait time.Duration, ok bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil || errors.Is(err, strconv.ErrRange) {
		if errors.Is(err, strconv.ErrRange) {
			// Syntactically valid delay-seconds too large for int64: the
			// cap applies, same as any other oversized hint.
			if strings.HasPrefix(v, "-") {
				return 0, false
			}
			return maxRetryAfter, true
		}
		if secs < 0 {
			return 0, false
		}
		if secs > int64(maxRetryAfter/time.Second) {
			return maxRetryAfter, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		if d > maxRetryAfter {
			d = maxRetryAfter
		}
		return d, true
	}
	return 0, false
}

// statusError carries a non-200 HTTP status through the retry machinery so
// 4xx (caller bugs) fail fast while 5xx (server trouble) retry, together
// with the server's Retry-After hint when one was sent.
type statusError struct {
	code       int
	status     string
	retryAfter time.Duration
}

func (e *statusError) Error() string { return fmt.Sprintf("status %s", e.status) }

// newStatusError captures a failed response's status and Retry-After hint.
func newStatusError(resp *http.Response) *statusError {
	se := &statusError{code: resp.StatusCode, status: resp.Status}
	if wait, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
		se.retryAfter = wait
	}
	return se
}

// retryAfterHint extracts the Retry-After hint buried in an attempt error
// (zero when the failure carried none).
func retryAfterHint(err error) time.Duration {
	var se *statusError
	if errors.As(err, &se) {
		return se.retryAfter
	}
	return 0
}

// retryable classifies an attempt failure: client-side 4xx responses are
// permanent — except 429, which is the server shedding load and explicitly
// inviting a later retry; everything else (5xx, transport errors,
// truncation, per-attempt deadlines) is worth retrying. Session-level
// cancellation is checked separately by the retry loops.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// sleepCtx waits for d, aborting early when the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
