package httpstream

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// EdgeCacheConfig tunes the router's hot-object cache.
type EdgeCacheConfig struct {
	// MaxBodyBytes caps one stored body; larger responses stream through
	// uncached. 0 → 1 MiB.
	MaxBodyBytes int
	// MaxEntries caps stored objects; the oldest entry is evicted first.
	// 0 → 4096.
	MaxEntries int
}

// cachedResponse is one stored origin response.
type cachedResponse struct {
	status int
	header http.Header
	body   []byte
}

// flight is one in-progress fill. Waiters block on done; resp is non-nil
// only when the fill produced a storable response they may replay.
type flight struct {
	done chan struct{}
	resp *cachedResponse
}

// EdgeCache is the tier's hot-segment/manifest cache with singleflight
// fill: concurrent requests for one key produce a single origin request,
// and every waiter replays the captured response. Keys are prefixed with a
// version epoch; Bump advances the epoch, which both invalidates every
// stored entry and detaches in-progress fills (they complete under the old
// epoch's keys and are never served again).
//
// Only complete 200 responses whose body matches the declared
// Content-Length are stored — a fault-truncated body must not poison the
// cache (the chaos soak injects exactly that).
type EdgeCache struct {
	cfg     EdgeCacheConfig
	epoch   atomic.Int64
	mu      sync.Mutex
	entries map[string]*cachedResponse
	order   []string // insertion order for eviction
	flights map[string]*flight
}

// NewEdgeCache builds an empty cache.
func NewEdgeCache(cfg EdgeCacheConfig) *EdgeCache {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	return &EdgeCache{
		cfg:     cfg,
		entries: make(map[string]*cachedResponse),
		flights: make(map[string]*flight),
	}
}

// Entries returns the number of stored objects.
func (c *EdgeCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Epoch returns the current version epoch.
func (c *EdgeCache) Epoch() int64 { return c.epoch.Load() }

// Bump advances the version epoch and flushes the store, returning the new
// epoch. Entries from older epochs are unreachable by construction (the
// epoch is part of the key); the flush just releases their memory at once.
func (c *EdgeCache) Bump() int64 {
	v := c.epoch.Add(1)
	c.mu.Lock()
	c.entries = make(map[string]*cachedResponse)
	c.order = nil
	c.mu.Unlock()
	return v
}

// key derives the epoch-qualified cache key: the full variant identity
// (path plus canonically ordered query — quality, frame rate, ptile index
// all distinguish entries) under the current version.
func (c *EdgeCache) key(r *http.Request) string {
	return "v" + strconv.FormatInt(c.epoch.Load(), 10) + "|" + r.URL.Path + "?" + r.URL.Query().Encode()
}

// Serve answers the request from the cache when possible, otherwise fills
// through next. It reports true when the response came from a stored entry
// or a shared in-progress fill — i.e. when next was NOT invoked for this
// request.
func (c *EdgeCache) Serve(w http.ResponseWriter, r *http.Request, next http.Handler) (hit bool) {
	key := c.key(r)
	c.mu.Lock()
	if resp, ok := c.entries[key]; ok {
		c.mu.Unlock()
		writeCached(w, resp)
		return true
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.resp != nil {
			writeCached(w, fl.resp)
			return true
		}
		// The fill failed or was uncacheable; go to the origin directly.
		next.ServeHTTP(w, r)
		return false
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	cw := &captureWriter{dst: w, max: c.cfg.MaxBodyBytes}
	completed := false
	// Finalize on every exit path — including a panicking origin handler
	// (an injected connection abort): waiters must never hang, and a
	// partial body must never be stored.
	defer func() {
		if completed && cw.storable() {
			resp := cw.snapshot()
			fl.resp = resp
			c.store(key, resp)
		}
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(fl.done)
	}()
	next.ServeHTTP(cw, r)
	completed = true
	return false
}

// store inserts an entry, evicting oldest-first beyond the entry cap.
func (c *EdgeCache) store(key string, resp *cachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	for len(c.entries) >= c.cfg.MaxEntries && len(c.order) > 0 {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = resp
	c.order = append(c.order, key)
}

// writeCached replays a stored response, marking it for observability.
func writeCached(w http.ResponseWriter, resp *cachedResponse) {
	h := w.Header()
	for k, vs := range resp.header {
		h[k] = vs
	}
	h.Set("X-Edge-Cache", "hit")
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// captureWriter tees the origin response to the requesting client while
// buffering up to max bytes for the cache. Oversized bodies flip overflow
// and drop the buffer — the client still gets the full stream.
type captureWriter struct {
	dst         http.ResponseWriter
	status      int
	wroteHeader bool
	buf         []byte
	max         int
	overflow    bool
}

func (cw *captureWriter) Header() http.Header { return cw.dst.Header() }

func (cw *captureWriter) WriteHeader(code int) {
	if !cw.wroteHeader {
		cw.status = code
		cw.wroteHeader = true
	}
	cw.dst.WriteHeader(code)
}

func (cw *captureWriter) Write(p []byte) (int, error) {
	if !cw.wroteHeader {
		cw.WriteHeader(http.StatusOK)
	}
	if !cw.overflow {
		if len(cw.buf)+len(p) > cw.max {
			cw.overflow = true
			cw.buf = nil
		} else {
			cw.buf = append(cw.buf, p...)
		}
	}
	return cw.dst.Write(p)
}

// Flush forwards to the underlying writer so paced body writers keep
// working through the cache.
func (cw *captureWriter) Flush() {
	if f, ok := cw.dst.(http.Flusher); ok {
		f.Flush()
	}
}

// storable reports whether the captured response may enter the cache: a
// complete 200 whose body, when a Content-Length was declared, matches it.
func (cw *captureWriter) storable() bool {
	if cw.overflow || cw.status != http.StatusOK {
		return false
	}
	if cl := cw.dst.Header().Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n != int64(len(cw.buf)) {
			return false
		}
	}
	return true
}

// snapshot clones the captured response for storage.
func (cw *captureWriter) snapshot() *cachedResponse {
	status := cw.status
	if !cw.wroteHeader {
		status = http.StatusOK
	}
	hdr := make(http.Header, len(cw.dst.Header()))
	for k, vs := range cw.dst.Header() {
		hdr[k] = append([]string(nil), vs...)
	}
	body := append([]byte(nil), cw.buf...)
	return &cachedResponse{status: status, header: hdr, body: body}
}
