package httpstream

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ptile360/internal/power"
)

func TestParseRetryAfterTable(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"empty", "", 0, false},
		{"zero seconds", "0", 0, true},
		{"seconds", "120", 120 * time.Second, true},
		{"seconds padded", "  7 ", 7 * time.Second, true},
		{"negative seconds", "-5", 0, false},
		{"overflow seconds", "99999999999999999999", maxRetryAfter, true},
		{"huge seconds capped", "9999999999", maxRetryAfter, true},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"rfc850 date", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second, true},
		{"garbage", "soon", 0, false},
		{"float seconds", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.in, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestBackoffWithHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	// A hint above the computed backoff wins.
	if got := p.BackoffWithHint(1, 0, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("hint should raise the wait: got %v", got)
	}
	// A hint below the computed backoff changes nothing.
	if got := p.BackoffWithHint(1, 0, time.Millisecond); got != p.Backoff(1, 0) {
		t.Fatalf("small hint must not lower the wait: got %v", got)
	}
	// The hint is capped at MaxDelay so a hostile server cannot park us.
	if got := p.BackoffWithHint(1, 0, time.Hour); got != p.MaxDelay {
		t.Fatalf("hint must cap at MaxDelay: got %v, want %v", got, p.MaxDelay)
	}
	// Zero hint degenerates to the plain backoff.
	if got := p.BackoffWithHint(2, 0, 0); got != p.Backoff(2, 0) {
		t.Fatalf("zero hint must match Backoff: got %v", got)
	}
}

// Test429RetriedWithRetryAfterHonored verifies the full loop: a 429 is
// classified as retryable, and the wait before the retry is at least the
// server's Retry-After hint.
func Test429RetriedWithRetryAfterHonored(t *testing.T) {
	h := newHarness(t)
	var calls atomic.Int64
	var firstDone, retryStart atomic.Int64
	inner := h.server.Config.Handler
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n == 1 {
			firstDone.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		retryStart.Store(time.Now().UnixNano())
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client, err := NewClient(ClientConfig{
		BaseURL: srv.URL,
		Phone:   power.Pixel3,
		// MaxDelay comfortably above the 1 s hint so the hint is binding.
		Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchManifest(2); err != nil {
		t.Fatalf("429 with Retry-After must be survivable: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want a single retry (2)", got)
	}
	waited := time.Duration(retryStart.Load() - firstDone.Load())
	if waited < 900*time.Millisecond {
		t.Fatalf("client waited %v before the retry; Retry-After demanded ≥ 1s", waited)
	}
}

// TestRetryAfterCappedByPolicy verifies the complementary bound: a huge
// hint cannot stretch the wait past the policy's MaxDelay.
func TestRetryAfterCappedByPolicy(t *testing.T) {
	var calls atomic.Int64
	var firstDone, retryStart atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := calls.Add(1)
		if n == 1 {
			firstDone.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		retryStart.Store(time.Now().UnixNano())
		http.Error(w, "still down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client, err := NewClient(ClientConfig{
		BaseURL: srv.URL,
		Phone:   power.Pixel3,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.FetchManifest(2); err == nil {
		t.Fatal("want failure from permanently shedding server")
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	// Total session time must reflect the cap, not the 1 h hint.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hour-long hint was not capped: session took %v", elapsed)
	}
	if waited := time.Duration(retryStart.Load() - firstDone.Load()); waited > 2*time.Second {
		t.Fatalf("waited %v before retry; cap is 50ms+jitter", waited)
	}
}
