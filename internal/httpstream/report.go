package httpstream

import (
	"ptile360/internal/sim"
)

// SegmentTraces converts the HTTP session's per-segment accounting into the
// simulator's record schema, so networked runs share the CSV tooling and
// QoE/energy post-processing with trace-driven experiments — including the
// resilience columns (retries, degradations, abandons) that keep chaos-run
// accounting honest.
func (r *SessionReport) SegmentTraces() []sim.SegmentTrace {
	traces := make([]sim.SegmentTrace, 0, len(r.Segments))
	for _, rec := range r.Segments {
		traces = append(traces, sim.SegmentTrace{
			Segment:       rec.Segment,
			Quality:       rec.Quality,
			FrameRate:     rec.FrameRate,
			SizeBits:      float64(rec.Bytes * 8),
			ThroughputBps: rec.ThroughputBps,
			BufferSec:     rec.BufferSec,
			Q0:            rec.PerceivedQuality,
			Q:             rec.PerceivedQuality,
			StallSec:      rec.StallSec,
			EnergyMJ:      rec.EnergyMJ,
			FromPtile:     rec.FromPtile,
			Emergency:     rec.Emergency,
			Retries:       rec.Retries,
			Degraded:      rec.DegradeSteps > 0,
			Abandoned:     rec.Abandoned,
		})
	}
	return traces
}
