package httpstream

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptile360/internal/obs"
	"ptile360/internal/power"
	"ptile360/internal/ptile"
	"ptile360/internal/ptilelive"
	"ptile360/internal/resilience"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// altCatalog returns a copy-on-write variant of base with segment 0's
// Ptiles dropped — a visibly different catalogue generation.
func altCatalog(base *sim.Catalog) *sim.Catalog {
	next := &sim.Catalog{
		Video:      base.Video,
		SegmentSec: base.SegmentSec,
		Content:    base.Content,
		Ptiles:     make([][]ptile.Ptile, len(base.Ptiles)),
		Ftiles:     base.Ftiles,
		Coverage:   base.Coverage,
	}
	copy(next.Ptiles, base.Ptiles)
	next.Ptiles[0] = nil
	return next
}

func fetchManifest(t *testing.T, url string) Manifest {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest %s: status %s", url, resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCatalogSwapVersioning pins the hot-swap contract: generations are
// monotonically versioned, the manifest advertises its generation, pinned
// requests resolve superseded generations until they age out of the bounded
// history (then 410), and malformed pins die with 400.
func TestCatalogSwapVersioning(t *testing.T) {
	h := newHarness(t)
	srv, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if v := srv.CatalogVersion(); v != 1 {
		t.Fatalf("fresh server version %d, want 1", v)
	}
	m1 := fetchManifest(t, ts.URL+"/manifest?video=2")
	if m1.CatalogVersion != 1 {
		t.Fatalf("manifest version %d, want 1", m1.CatalogVersion)
	}
	basePtiles0 := len(m1.Segments[0].Ptiles)
	if basePtiles0 == 0 {
		t.Fatal("fixture segment 0 has no Ptiles; pick another probe segment")
	}

	if v := srv.SwapCatalog(altCatalog(h.cat)); v != 2 {
		t.Fatalf("first swap version %d, want 2", v)
	}
	m2 := fetchManifest(t, ts.URL+"/manifest?video=2")
	if m2.CatalogVersion != 2 || len(m2.Segments[0].Ptiles) != 0 {
		t.Fatalf("post-swap manifest: version %d, %d Ptiles at seg 0; want 2, 0",
			m2.CatalogVersion, len(m2.Segments[0].Ptiles))
	}
	// A session pinned to generation 1 still sees the old geometry.
	mPinned := fetchManifest(t, ts.URL+"/manifest?video=2&cv=1")
	if mPinned.CatalogVersion != 1 || len(mPinned.Segments[0].Ptiles) != basePtiles0 {
		t.Fatalf("pinned manifest: version %d, %d Ptiles; want 1, %d",
			mPinned.CatalogVersion, len(mPinned.Segments[0].Ptiles), basePtiles0)
	}
	// Pinned segment downloads work on the superseded generation too.
	resp, err := http.Get(ts.URL + "/segment?video=2&seg=0&q=3&f=30&cv=1&ptile=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned segment on v1: status %s", resp.Status)
	}
	// The same request against the current generation must 400: segment 0
	// has no Ptile 0 anymore.
	resp, err = http.Get(ts.URL + "/segment?video=2&seg=0&q=3&f=30&ptile=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("segment 0 ptile 0 on current: status %s, want 400", resp.Status)
	}

	for _, bad := range []string{"cv=abc", "cv=0", "cv=-3"} {
		resp, err := http.Get(ts.URL + "/segment?video=2&seg=0&q=3&f=30&" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %s, want 400", bad, resp.Status)
		}
	}
	// A generation the server never published is simply not served.
	resp, err = http.Get(ts.URL + "/segment?video=2&seg=0&q=3&f=30&cv=99")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("future pin: status %s, want 410", resp.Status)
	}

	// Age generation 1 out of the bounded history.
	for i := 0; i < maxCatalogHistory; i++ {
		srv.SwapCatalog(h.cat)
	}
	resp, err = http.Get(ts.URL + "/segment?video=2&seg=0&q=3&f=30&cv=1&ptile=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted pin: status %s, want 410 Gone", resp.Status)
	}
	// The newest surviving history generation still resolves.
	resp, err = http.Get(fmt.Sprintf("%s/segment?video=2&seg=0&q=3&f=30&cv=%d&ptile=0",
		ts.URL, srv.CatalogVersion()-1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recent pin: status %s, want 200", resp.Status)
	}
}

// TestCatalogHotSwapSoak is the zero-downtime soak: a storm of full client
// sessions streams through the sharded tier while the online Ptile
// pipeline — fed by those same sessions' telemetry — regenerates the
// catalogue and hot-swaps every shard mid-storm. Run under -race. The
// contract:
//
//   - zero failed sessions, zero abandoned segments, zero retries — a swap
//     may never break an in-flight session (they finish pinned to the
//     generation their manifest was cut from);
//   - the router ledger partitions exactly and reconciles with the
//     per-shard resilience scrapes, swaps or not;
//   - after drain the process returns to its goroutine baseline.
func TestCatalogHotSwapSoak(t *testing.T) {
	h := newHarness(t)
	nClients := envInt("SWAP_SOAK_CLIENTS", 6)
	nSessions := envInt("SWAP_SOAK_SESSIONS", 3)
	nSwaps := envInt("SWAP_SOAK_SWAPS", 5)
	baseline := runtime.NumGoroutine()

	// The online pipeline, fed by client telemetry below.
	pcfg, err := ptilelive.DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	pcfg.Ptile.MinUsers = 2
	pipe, err := ptilelive.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}

	type shardParts struct {
		name  string
		srv   *Server
		chain *resilience.Chain
		reg   *obs.Registry
	}
	newShard := func(name string) (Shard, shardParts) {
		srv, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		chain, err := resilience.NewChain(resilience.Config{
			Registry:       reg,
			MaxInFlight:    64,
			MaxQueue:       256,
			QueueTimeout:   5 * time.Second,
			HandlerTimeout: 30 * time.Second,
		}, srv)
		if err != nil {
			t.Fatal(err)
		}
		return Shard{Name: name, Handler: chain}, shardParts{name: name, srv: srv, chain: chain, reg: reg}
	}
	shardA, partsA := newShard("swap-a")
	shardB, partsB := newShard("swap-b")
	parts := []shardParts{partsA, partsB}

	routerReg := obs.NewRegistry()
	rt, err := NewRouter(RouterConfig{Registry: routerReg}, shardA, shardB)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	var sessions, abandoned, retries atomic.Int64
	var sessionErr atomic.Value // first error, if any
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := NewClient(ClientConfig{
				BaseURL:     ts.URL,
				Phone:       power.Pixel3,
				MaxSegments: 8,
				ClientID:    fmt.Sprintf("swap-soak-%d", c),
				Telemetry: func(tr TelemetryRecord) {
					pipe.IngestTelemetry(tr.Video, tr.Segment, tr.ViewX, tr.ViewY)
				},
			})
			if err != nil {
				sessionErr.CompareAndSwap(nil, err)
				return
			}
			for s := 0; s < nSessions; s++ {
				report, err := client.StreamContext(context.Background(), 2, h.eval[(c+s)%len(h.eval)])
				if err != nil {
					sessionErr.CompareAndSwap(nil, fmt.Errorf("client %d session %d: %w", c, s, err))
					return
				}
				sessions.Add(1)
				abandoned.Add(int64(report.AbandonedSegments))
				retries.Add(int64(report.TotalRetries))
			}
		}(c)
	}

	// Mid-storm: rebuild from live telemetry and hot-swap both shards, then
	// invalidate the edge cache. Swaps land while sessions are in flight.
	mutDone := make(chan struct{})
	go func() {
		defer close(mutDone)
		for i := 0; i < nSwaps; i++ {
			time.Sleep(50 * time.Millisecond)
			if _, err := pipe.Rebuild(2); err != nil {
				t.Errorf("mid-storm rebuild: %v", err)
				return
			}
			next := pipe.ApplyToCatalog(h.cat)
			for _, p := range parts {
				p.srv.SwapCatalog(next)
			}
			rt.BumpCatalogVersion()
		}
	}()

	wg.Wait()
	<-mutDone

	if err, _ := sessionErr.Load().(error); err != nil {
		t.Fatalf("session failed during swap storm: %v", err)
	}
	if got := sessions.Load(); got != int64(nClients*nSessions) {
		t.Fatalf("completed %d sessions, want %d", got, nClients*nSessions)
	}
	if a, r := abandoned.Load(), retries.Load(); a != 0 || r != 0 {
		t.Fatalf("swap-attributable degradation: %d abandoned segments, %d retries; want 0, 0", a, r)
	}
	for _, p := range parts {
		if v := p.srv.CatalogVersion(); v != int64(nSwaps)+1 {
			t.Fatalf("%s: catalog version %d, want %d", p.name, v, nSwaps+1)
		}
	}
	if b := pipe.Current(2); b.Reports == 0 {
		t.Fatal("pipeline ingested no telemetry; the feedback loop is dead")
	}

	// Drain the chains and reconcile: ledger partition, ledger == scrape,
	// shard requests == chain terminal outcomes.
	for _, p := range parts {
		p.chain.StartDrain()
	}
	led := rt.Ledger()
	if led.Requests != led.CacheHits+led.ShardRequests+led.Unrouted {
		t.Fatalf("ledger does not partition: %+v", led)
	}
	if led.Unrouted != 0 {
		t.Fatalf("%d requests found no shard; the ring was never empty", led.Unrouted)
	}
	if led.CatalogVersion != int64(nSwaps) {
		t.Fatalf("router epoch %d, want %d bumps", led.CatalogVersion, nSwaps)
	}

	var routerText strings.Builder
	if err := routerReg.WritePrometheus(&routerText); err != nil {
		t.Fatal(err)
	}
	routerSamples, err := obs.ParsePrometheus(routerText.String())
	if err != nil {
		t.Fatal(err)
	}
	scraped := map[string]float64{}
	for _, s := range routerSamples {
		scraped[s.Series()] += s.Value
	}
	if got := scraped["router_requests_total"]; got != float64(led.Requests) {
		t.Fatalf("scraped router_requests_total %g != ledger %d", got, led.Requests)
	}
	if got := scraped["router_shard_requests_total"]; got != float64(led.ShardRequests) {
		t.Fatalf("scraped router_shard_requests_total %g != ledger %d", got, led.ShardRequests)
	}

	var chainTotal int64
	for _, p := range parts {
		var text strings.Builder
		if err := p.reg.WritePrometheus(&text); err != nil {
			t.Fatal(err)
		}
		samples, err := obs.ParsePrometheus(text.String())
		if err != nil {
			t.Fatal(err)
		}
		var terminal int64
		for _, s := range samples {
			if s.Name == resilience.MetricRequestsTotal {
				terminal += int64(s.Value)
			}
		}
		if snap := p.chain.Snapshot().Totals().Terminal(); snap != terminal {
			t.Fatalf("%s: scrape %d != snapshot %d", p.name, terminal, snap)
		}
		if perShard := led.PerShard[p.name]; perShard != terminal {
			t.Fatalf("%s: router counted %d requests, chain terminated %d", p.name, perShard, terminal)
		}
		chainTotal += terminal
	}
	if chainTotal != led.ShardRequests {
		t.Fatalf("chains terminated %d requests, router forwarded %d", chainTotal, led.ShardRequests)
	}

	// Goroutine-leak check after drain.
	ts.Close()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Logf("swap soak: %d sessions, %d requests (%d cache hits, %d shard), %d swaps, %d telemetry reports",
		sessions.Load(), led.Requests, led.CacheHits, led.ShardRequests, nSwaps, pipe.Current(2).Reports)
}
