package httpstream

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ptile360/internal/obs"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// TestClientTelemetryPerSegment is the acceptance check for session
// telemetry: every downloaded segment yields exactly one record carrying
// bitrate, frame rate, stall, QoE loss, and energy, and the registry series
// agree with the records and the session report.
func TestClientTelemetryPerSegment(t *testing.T) {
	h := newHarness(t)
	const nSegments = 6
	reg := obs.NewRegistry()
	var records []TelemetryRecord
	client, err := NewClient(ClientConfig{
		BaseURL:     h.server.URL,
		Phone:       power.Pixel3,
		MaxSegments: nSegments,
		UseMPC:      true,
		ClientID:    "telemetry-test",
		Metrics:     reg,
		Telemetry:   func(tr TelemetryRecord) { records = append(records, tr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := client.Stream(2, h.eval[0])
	if err != nil {
		t.Fatal(err)
	}

	if len(records) != nSegments {
		t.Fatalf("got %d telemetry records, want one per segment (%d)", len(records), nSegments)
	}
	var sumLoss, sumEnergy float64
	var sumBytes int64
	for i, tr := range records {
		if tr.Session != "telemetry-test" || tr.Video != 2 || tr.Segment != i {
			t.Fatalf("record %d misaddressed: %+v", i, tr)
		}
		if tr.Abandoned {
			t.Fatalf("segment %d abandoned against a healthy server", i)
		}
		// The headline fields must all be populated on a served segment.
		if tr.BitrateMbps <= 0 || tr.FrameRate <= 0 || tr.Bytes <= 0 || tr.EnergyMJ <= 0 {
			t.Fatalf("record %d missing headline fields: %+v", i, tr)
		}
		if tr.StallSec < 0 {
			t.Fatalf("record %d negative stall: %+v", i, tr)
		}
		if tr.QoELoss < 0 || tr.QoELoss > 1 || tr.QoEBest < tr.QoE {
			t.Fatalf("record %d QoE accounting broken: %+v", i, tr)
		}
		if tr.TxEnergyMJ <= 0 || tr.DecodeEnergyMJ <= 0 || tr.TxEnergyMJ+tr.DecodeEnergyMJ > tr.EnergyMJ {
			t.Fatalf("record %d energy split broken: %+v", i, tr)
		}
		sumLoss += tr.QoELoss
		sumEnergy += tr.EnergyMJ
		sumBytes += tr.Bytes
	}
	if math.Abs(sumLoss-report.TotalQoELoss) > 1e-9 {
		t.Fatalf("telemetry QoE loss %g != report %g", sumLoss, report.TotalQoELoss)
	}
	if math.Abs(sumEnergy-report.TotalEnergyMJ) > 1e-6 {
		t.Fatalf("telemetry energy %g != report %g", sumEnergy, report.TotalEnergyMJ)
	}
	if sumBytes != report.TotalBytes {
		t.Fatalf("telemetry bytes %d != report %d", sumBytes, report.TotalBytes)
	}

	// The registry saw the same session.
	samples := scrapeRegistry(t, reg)
	if got := samples[`client_segments_total{result="served"}`]; got != nSegments {
		t.Fatalf("client_segments_total served = %v, want %d", got, nSegments)
	}
	if got := samples["client_qoe_loss_count"]; got != nSegments {
		t.Fatalf("client_qoe_loss_count = %v, want %d", got, nSegments)
	}
	if got := samples["client_bytes_total"]; int64(got) != sumBytes {
		t.Fatalf("client_bytes_total = %v, want %d", got, sumBytes)
	}
	if got := samples["client_segment_span_seconds_count"]; got != nSegments {
		t.Fatalf("client_segment_span_seconds_count = %v, want %d", got, nSegments)
	}
}

// TestServerInstrumentation checks the request-path metrics and the
// request-ID contract on an instrumented server.
func TestServerInstrumentation(t *testing.T) {
	h := newHarness(t)
	reg := obs.NewRegistry()
	srv, err := NewServer(map[int]*sim.Catalog{2: h.cat}, video.DefaultEncoderConfig(), []float64{30, 27, 24, 21})
	if err != nil {
		t.Fatal(err)
	}
	logger, err := obs.LogConfig{Level: "error"}.NewLogger(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(reg, logger)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/manifest?video=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("instrumented server response missing X-Request-Id")
	}
	// A client-chosen request ID must echo back.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/manifest?video=99", nil)
	req.Header.Set(obs.RequestIDHeader, "joinable-id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "joinable-id" {
		t.Fatalf("request ID not honored: %q", got)
	}

	samples := scrapeRegistry(t, reg)
	if got := samples[`httpstream_requests_total{code="200",path="/manifest"}`]; got != 1 {
		t.Fatalf("requests_total 200 = %v, want 1; samples: %v", got, samples)
	}
	if got := samples[`httpstream_requests_total{code="404",path="/manifest"}`]; got != 1 {
		t.Fatalf("requests_total 404 = %v, want 1; samples: %v", got, samples)
	}
	if got := samples[`httpstream_request_seconds_count{path="/manifest"}`]; got != 2 {
		t.Fatalf("request_seconds_count = %v, want 2", got)
	}
	if got := samples[`httpstream_response_bytes_total{path="/manifest"}`]; got <= 0 {
		t.Fatalf("response_bytes_total = %v, want > 0", got)
	}
	if got := samples["server_request_span_seconds_count"]; got != 2 {
		t.Fatalf("server span count = %v, want 2", got)
	}
}

func scrapeRegistry(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Series()] = s.Value
	}
	return out
}
