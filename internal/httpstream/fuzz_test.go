package httpstream

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// FuzzManifestJSON exercises the client's manifest decode path with
// arbitrary server responses: truncated JSON, absurd sizes, negative
// fields, trailing garbage. The contract is errors, never panics — and any
// accepted manifest must re-validate cleanly.
func FuzzManifestJSON(f *testing.F) {
	valid := Manifest{
		VideoID:    2,
		SegmentSec: 1,
		Segments: []SegmentMetaJSON{
			{SI: 40, TI: 20, Ptiles: []RectJSON{{X0: 10, Y0: 30, W: 120, H: 90}}},
			{SI: 55, TI: 25},
		},
		Qualities:  5,
		FrameRates: []float64{30, 27, 24, 21},
		SourceFPS:  30,
		GridRows:   4,
		GridCols:   8,
	}
	validJSON, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validJSON)
	f.Add(validJSON[:len(validJSON)/2]) // truncated mid-document
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"video_id":-1}`))
	f.Add([]byte(`{"segment_sec":-5,"segments":[{}]}`))
	f.Add([]byte(`{"segment_sec":1e308,"segments":[{}],"frame_rates":[30],"source_fps":30}`))
	f.Add([]byte(`{"segment_sec":1,"segments":[{"si":-1}],"frame_rates":[30],"source_fps":30}`))
	f.Add([]byte(`{"segment_sec":1,"segments":[{"ptiles":[{"w":-10,"h":5}]}],"frame_rates":[30],"source_fps":30}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add(append(append([]byte{}, validJSON...), []byte(`{"trailing":"garbage"}`)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// Anything accepted must satisfy the documented invariants.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted manifest fails Validate: %v", err)
		}
		if len(m.Segments) == 0 || m.SegmentSec <= 0 {
			t.Fatalf("accepted manifest violates basic invariants: %+v", m)
		}
		// Round-tripping an accepted manifest must stay accepted.
		again, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest fails to re-encode: %v", err)
		}
		if _, err := DecodeManifest(bytes.NewReader(again)); err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
	})
}

// FuzzSegmentHeader exercises the segment-response header gate with
// arbitrary Content-Length values: whitespace, signs, overflow, absurd
// sizes. Accepted values must be within [0, maxSegmentBytes] or the unknown
// sentinel -1.
func FuzzSegmentHeader(f *testing.F) {
	f.Add("1024")
	f.Add("")
	f.Add("  42  ")
	f.Add("-1")
	f.Add("+7")
	f.Add("99999999999999999999999999")
	f.Add("0x10")
	f.Add("1e9")
	f.Add("1073741824") // exactly the cap
	f.Add("1073741825") // one past the cap
	f.Add("12 34")      // embedded whitespace
	f.Add("\x00\xff")   // binary garbage
	f.Add(strings.Repeat("9", 1000))

	f.Fuzz(func(t *testing.T, cl string) {
		h := http.Header{}
		if cl != "" {
			h.Set("Content-Length", cl)
		}
		hdr, err := ParseSegmentHeader(h)
		if err != nil {
			return
		}
		if hdr.ContentLength < -1 {
			t.Fatalf("accepted header with length %d", hdr.ContentLength)
		}
		if hdr.ContentLength > maxSegmentBytes {
			t.Fatalf("accepted absurd length %d above cap %d", hdr.ContentLength, int64(maxSegmentBytes))
		}
	})
}
