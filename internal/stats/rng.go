package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distribution helpers the synthetic substrates
// need. Every stochastic component in ptile360 draws from an explicitly
// seeded RNG so that experiments regenerate bit-identically.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma). It models
// the heavy-tailed per-segment content-complexity factor in the encoder
// model.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return expFast(mu + sigma*g.r.NormFloat64())
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork derives an independent child generator. The child's stream is a
// deterministic function of the parent state at the time of the call, so
// forking in a fixed order is reproducible.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

func expFast(x float64) float64 {
	// Clamp to avoid +Inf from extreme tails; the substrates only need
	// moderate dynamic range.
	if x > 40 {
		x = 40
	}
	if x < -40 {
		x = -40
	}
	return math.Exp(x)
}
