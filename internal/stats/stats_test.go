package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Sum(xs); got != 40 {
		t.Fatalf("Sum = %g, want 40", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance(single) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Fatalf("Min = %g, %v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 7 {
		t.Fatalf("Max = %g, %v", hi, err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Min(nil): want ErrEmpty, got %v", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Max(nil): want ErrEmpty, got %v", err)
	}
}

func TestHarmonicMean(t *testing.T) {
	hm, err := HarmonicMean([]float64{1, 4, 4})
	if err != nil {
		t.Fatalf("HarmonicMean: %v", err)
	}
	if math.Abs(hm-2) > 1e-12 {
		t.Fatalf("HarmonicMean = %g, want 2", hm)
	}
}

func TestHarmonicMeanRejectsNonPositive(t *testing.T) {
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Fatal("want error for zero sample")
	}
	if _, err := HarmonicMean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

// Property: the harmonic mean never exceeds the arithmetic mean (AM-HM
// inequality), which is exactly why it damps throughput spikes.
func TestHarmonicMeanBelowArithmetic(t *testing.T) {
	check := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
				return 1
			}
			return math.Mod(v, 100) + 0.1
		}
		xs := []float64{clamp(a), clamp(b), clamp(c)}
		hm, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		return hm <= Mean(xs)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {0.1, 14},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("want error for q > 1")
	}
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Fatalf("single-sample quantile = %g, %v", got, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile sorted caller's slice: %v", xs)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %g, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("want zero-variance error")
	}
}

func TestCDF(t *testing.T) {
	pts, err := CDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatalf("CDF: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || math.Abs(pts[0].P-1.0/3) > 1e-12 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].P != 1 {
		t.Fatalf("last point = %+v", pts[2])
	}
}

// Property: a CDF is monotone in both value and probability and ends at 1.
func TestCDFMonotone(t *testing.T) {
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs = append(xs, v)
		}
		pts, err := CDF(xs)
		if err != nil {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return pts[len(pts)-1].P == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{1, 5, 10, 15, 20}
	if got := FractionAbove(xs, 10); got != 0.4 {
		t.Fatalf("FractionAbove = %g, want 0.4", got)
	}
	if got := FractionAbove(nil, 10); got != 0 {
		t.Fatalf("FractionAbove(nil) = %g, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shapes: %d counts, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram loses samples: total %d", total)
	}
	if edges[0] != 0 || edges[5] != 9 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _, err := Histogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("constant-input histogram total = %d, want 3", total)
	}
	if _, _, err := Histogram(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("want error for nbins = 0")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 5 || s.Mean != 3 || s.P50 != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.HarmonicMean <= 0 || s.HarmonicMean > s.Mean {
		t.Fatalf("harmonic mean %g out of range", s.HarmonicMean)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(1)
	n := 20000
	var normSum, uniSum float64
	for i := 0; i < n; i++ {
		normSum += g.Normal(5, 2)
		uniSum += g.Uniform(10, 20)
	}
	if m := normSum / float64(n); math.Abs(m-5) > 0.1 {
		t.Fatalf("Normal mean = %g, want ≈5", m)
	}
	if m := uniSum / float64(n); math.Abs(m-15) > 0.2 {
		t.Fatalf("Uniform mean = %g, want ≈15", m)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %g", v)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Fork()
	// Child stream must be deterministic given the fork order.
	parent2 := NewRNG(9)
	child2 := parent2.Fork()
	for i := 0; i < 50; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatal("forked streams not reproducible")
		}
	}
}

func TestRNGExp(t *testing.T) {
	g := NewRNG(4)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Exp(3)
		if v < 0 {
			t.Fatalf("negative exponential sample %g", v)
		}
		sum += v
	}
	if m := sum / float64(n); math.Abs(m-3) > 0.15 {
		t.Fatalf("Exp mean = %g, want ≈3", m)
	}
}

func TestRNGPermAndShuffle(t *testing.T) {
	g := NewRNG(5)
	perm := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", perm)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v vs %v", xs, orig)
	}
}

func TestRNGIntn(t *testing.T) {
	g := NewRNG(6)
	for i := 0; i < 1000; i++ {
		if v := g.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
