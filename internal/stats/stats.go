// Package stats provides the descriptive-statistics toolkit shared by the
// ptile360 experiments: quantiles, CDFs, harmonic means, Pearson correlation,
// histograms, and deterministic random-variate helpers.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// ErrEmpty is returned by aggregations over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// HarmonicMean returns the harmonic mean of xs. It is the bandwidth estimator
// the paper uses to smooth throughput fluctuations (Section IV-C): spikes and
// dips contribute reciprocally, so outliers are dampened. All samples must be
// positive.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean requires positive samples, got %g at index %d", x, i)
		}
		s += 1 / x
	}
	return float64(len(xs)) / s, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input need not be sorted.
//
// The order statistics come from an introselect rather than a full sort —
// O(n) instead of O(n log n) for the million-sample Fig. 5 medians — and the
// selected values equal the sort-based ones, so the interpolation (the same
// expression on the same operands) is bit-identical to the sorted path.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	work := make([]float64, len(xs))
	copy(work, xs)
	if len(work) == 1 {
		return work[0], nil
	}
	pos := q * float64(len(work)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo := selectKth(work, lo)
	if lo == hi {
		return vlo, nil
	}
	// selectKth leaves work[lo+1:] holding only elements ≥ work[lo], so the
	// next order statistic is their minimum.
	vhi := work[lo+1]
	for _, x := range work[lo+2:] {
		if x < vhi {
			vhi = x
		}
	}
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac, nil
}

// selectKth partially orders work so work[k] holds the k-th smallest value
// (0-based), everything before index k is ≤ it, and everything after is
// ≥ it, then returns work[k]. Introselect: median-of-three quickselect with
// a recursion-depth bound, falling back to sorting the remaining range when
// the bound is hit or the range is small.
func selectKth(work []float64, k int) float64 {
	lo, hi := 0, len(work)-1
	depth := 2 * bits.Len(uint(len(work)))
	for hi > lo {
		if hi-lo < 12 || depth == 0 {
			sort.Float64s(work[lo : hi+1])
			break
		}
		depth--
		p := partitionFloat64s(work, lo, hi)
		switch {
		case k < p:
			hi = p - 1
		case k > p:
			lo = p + 1
		default:
			return work[k]
		}
	}
	return work[k]
}

// partitionFloat64s is a Lomuto partition around the median of a[lo], a[mid],
// a[hi]: afterwards a[lo..p-1] < a[p] ≤ a[p+1..hi], and p is returned.
func partitionFloat64s(a []float64, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi] = a[hi], a[mid]
	pivot := a[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// The paper reports r = 0.9791 for the fitted Q₀ model (Section III-C1).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	// Value is the sample value.
	Value float64
	// P is the cumulative probability P(X ≤ Value).
	P float64
}

// CDF returns the empirical cumulative distribution function of xs as a
// sorted sequence of (value, probability) points.
func CDF(xs []float64) ([]CDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / n}
	}
	return out, nil
}

// FractionAbove returns the fraction of samples strictly greater than
// threshold. Fig. 5's ">10°/s for more than 30% of time" claim is checked
// with this helper.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// per-bin counts along with the bin edges (nbins+1 values).
func Histogram(xs []float64, nbins int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nbins <= 0 {
		return nil, nil, fmt.Errorf("stats: nbins %d must be positive", nbins)
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges, nil
}

// Summary bundles descriptive statistics of one sample set.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P25, P50, P75  float64
	P5, P95        float64
	HarmonicMean   float64 // 0 when any sample is non-positive
	FractionAbove0 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	p5, _ := Quantile(xs, 0.05)
	p25, _ := Quantile(xs, 0.25)
	p50, _ := Quantile(xs, 0.50)
	p75, _ := Quantile(xs, 0.75)
	p95, _ := Quantile(xs, 0.95)
	hm, err := HarmonicMean(xs)
	if err != nil {
		hm = 0
	}
	return Summary{
		N: len(xs), Mean: Mean(xs), Std: StdDev(xs),
		Min: lo, Max: hi,
		P5: p5, P25: p25, P50: p50, P75: p75, P95: p95,
		HarmonicMean:   hm,
		FractionAbove0: FractionAbove(xs, 0),
	}, nil
}
