package stats

import (
	"math"
	"sort"
	"testing"
)

// quantileSortReference is the pre-selection Quantile: full sort then
// interpolate.
func quantileSortReference(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TestQuantileSelectionVsSort pins the introselect Quantile bit-for-bit
// against the sort-based reference across adversarial shapes (duplicates,
// sorted, reversed, constant, two-valued) and quantiles.
func TestQuantileSelectionVsSort(t *testing.T) {
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	qs := []float64{0, 0.02, 0.25, 0.5, 0.75, 0.98, 1}
	shapes := []func(n int) []float64{
		func(n int) []float64 { // uniform
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = next() * 1000
			}
			return xs
		},
		func(n int) []float64 { // heavy duplicates
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Floor(next() * 8)
			}
			return xs
		},
		func(n int) []float64 { // sorted ascending
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		func(n int) []float64 { // sorted descending
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
		func(n int) []float64 { // constant (quickselect worst case)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 7.5
			}
			return xs
		},
		func(n int) []float64 { // two-valued
			xs := make([]float64, n)
			for i := range xs {
				if next() < 0.5 {
					xs[i] = 1
				} else {
					xs[i] = 2
				}
			}
			return xs
		},
	}
	for si, shape := range shapes {
		for _, n := range []int{1, 2, 3, 5, 11, 12, 13, 100, 1001, 5000} {
			xs := shape(n)
			orig := make([]float64, len(xs))
			copy(orig, xs)
			for _, q := range qs {
				got, err := Quantile(xs, q)
				if err != nil {
					t.Fatal(err)
				}
				want := quantileSortReference(orig, q)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("shape %d n %d q %g: selection %v, sort %v", si, n, q, got, want)
				}
			}
			// Quantile must not mutate its input.
			for i := range xs {
				if xs[i] != orig[i] {
					t.Fatalf("shape %d n %d: input mutated at %d", si, n, i)
				}
			}
		}
	}
}

// TestSelectKthPostcondition checks the partial-order contract the hi-order-
// statistic scan in Quantile relies on.
func TestSelectKthPostcondition(t *testing.T) {
	state := uint64(9)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for trial := 0; trial < 50; trial++ {
		n := 20 + int(next()*500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(next() * 50)
		}
		k := int(next() * float64(n))
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		v := selectKth(xs, k)
		if v != sorted[k] {
			t.Fatalf("trial %d: selectKth(%d) = %v, sorted %v", trial, k, v, sorted[k])
		}
		for i := 0; i < k; i++ {
			if xs[i] > v {
				t.Fatalf("trial %d: xs[%d] = %v > selected %v", trial, i, xs[i], v)
			}
		}
		for i := k + 1; i < n; i++ {
			if xs[i] < v {
				t.Fatalf("trial %d: xs[%d] = %v < selected %v", trial, i, xs[i], v)
			}
		}
	}
}
