package ptile

import (
	"math"
	"reflect"
	"testing"

	"ptile360/internal/cluster"
	"ptile360/internal/geom"
)

// buildSegmentMapReference reimplements BuildSegment with the pre-bitset
// map-dedup Ptile construction so the LUT/mask path can be pinned against it.
func buildSegmentMapReference(t *testing.T, centers []geom.Point, cfg Config) SegmentResult {
	t.Helper()
	clusters, err := cluster.ViewingCenters(centers, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	res := SegmentResult{TotalUsers: len(centers)}
	for _, cl := range clusters {
		if len(cl.Members) < cfg.MinUsers {
			continue
		}
		seen := make(map[geom.TileID]bool)
		var tiles []geom.TileID
		for _, m := range cl.Members {
			for _, id := range cfg.Grid.FoVTiles(centers[m], cfg.FoVDeg, cfg.FoVDeg) {
				if !seen[id] {
					seen[id] = true
					tiles = append(tiles, id)
				}
			}
		}
		rect, err := cfg.Grid.BoundingRect(tiles)
		if err != nil {
			t.Fatal(err)
		}
		users := make([]int, len(cl.Members))
		copy(users, cl.Members)
		res.Ptiles = append(res.Ptiles, Ptile{Rect: rect, Users: users})
		res.CoveredUsers += len(cl.Members)
	}
	return res
}

// TestBuildSegmentMaskVsMapReference pins the mask path byte-for-byte
// against the map reference over randomized center sets, including clusters
// that straddle the antimeridian seam and pole-clipped FoVs.
func TestBuildSegmentMaskVsMapReference(t *testing.T) {
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(42)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for trial := 0; trial < 30; trial++ {
		n := 10 + int(next()*40)
		centers := make([]geom.Point, n)
		// Two anchor blobs plus uniform noise; shift one blob onto the seam
		// or a pole on alternating trials.
		a := geom.Point{X: next() * 360, Y: 30 + next()*120}
		b := geom.Point{X: next() * 360, Y: 30 + next()*120}
		switch trial % 3 {
		case 1:
			a.X = 358
		case 2:
			a.Y = 3 // pole-clipped FoV blocks
		}
		for i := range centers {
			base := a
			if i%2 == 0 {
				base = b
			}
			if next() < 0.2 {
				centers[i] = geom.Point{X: next() * 360, Y: next() * 180}
				continue
			}
			centers[i] = geom.Point{
				X: geom.NormalizeYaw(base.X + (next()-0.5)*20),
				Y: math.Min(180, math.Max(0, base.Y+(next()-0.5)*20)),
			}
		}
		got, err := BuildSegment(centers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := buildSegmentMapReference(t, centers, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: mask path %+v, map reference %+v", trial, got, want)
		}
		// Covers must agree with the raw predicate loop for every center.
		for _, pt := range got.Ptiles {
			for _, c := range centers {
				want := true
				for _, id := range cfg.Grid.FoVTiles(c, cfg.FoVDeg, cfg.FoVDeg) {
					if !rectContainsTile(pt.Rect, cfg.Grid, id) {
						want = false
						break
					}
				}
				if gotC := pt.Covers(cfg.Grid, c, cfg.FoVDeg); gotC != want {
					t.Fatalf("Covers(%+v) = %v, predicate loop %v", c, gotC, want)
				}
			}
		}
	}
}
