// Package ptile constructs popularity tiles (Ptiles) from clustered viewing
// centers (paper Section IV-A) and the low-quality background blocks
// downloaded alongside them, and computes the coverage metrics of Fig. 7.
//
// A Ptile is the grid-aligned bounding rectangle of the FoV tile blocks of
// every user in one cluster, encoded as a single independently decodable
// tile. Clusters smaller than MinUsers do not earn a Ptile (the paper
// requires at least five users, i.e. 10 % of the training population).
package ptile

import (
	"fmt"

	"ptile360/internal/cluster"
	"ptile360/internal/geom"
)

// Config controls Ptile construction.
type Config struct {
	// Grid is the conventional tile grid the Ptile is assembled from.
	Grid geom.Grid
	// FoVDeg is the device field of view in degrees (horizontal = vertical,
	// 100° in the paper).
	FoVDeg float64
	// MinUsers is the minimum cluster size that earns a Ptile (5 in the
	// paper, i.e. roughly 10 % of the users in the dataset).
	MinUsers int
	// Params are the Algorithm 1 clustering parameters.
	Params cluster.Params
}

// DefaultConfig returns the paper's evaluation setting: 4×8 grid, 100° FoV,
// Ptiles require five users, σ = tile width, δ = σ/4.
func DefaultConfig() (Config, error) {
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Grid:     grid,
		FoVDeg:   100,
		MinUsers: 5,
		Params:   cluster.DefaultParams(),
	}, nil
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Grid.Rows <= 0 || c.Grid.Cols <= 0 {
		return fmt.Errorf("ptile: invalid grid %dx%d", c.Grid.Rows, c.Grid.Cols)
	}
	if c.FoVDeg <= 0 || c.FoVDeg > 180 {
		return fmt.Errorf("ptile: FoV %g outside (0, 180]", c.FoVDeg)
	}
	if c.MinUsers < 1 {
		return fmt.Errorf("ptile: MinUsers %d below 1", c.MinUsers)
	}
	return c.Params.Validate()
}

// Ptile is one constructed popularity tile.
type Ptile struct {
	// Rect is the panorama area the Ptile covers (grid-aligned).
	Rect geom.Rect
	// Users holds the indices (into the clustering input) of the covered
	// training users.
	Users []int
}

// Covers reports whether the viewer's snapped FoV tile block lies entirely
// within the Ptile, i.e. whether downloading this Ptile serves the viewer.
func (p Ptile) Covers(g geom.Grid, center geom.Point, fovDeg float64) bool {
	if lut := geom.FoVLUTFor(g, fovDeg, fovDeg); lut != nil {
		// Same per-tile predicate, but the FoV block comes from the shared
		// LUT instead of an allocating FoVTiles call.
		for _, id := range lut.TilesAt(center) {
			if !rectContainsTile(p.Rect, g, id) {
				return false
			}
		}
		return true
	}
	for _, id := range g.FoVTiles(center, fovDeg, fovDeg) {
		if !rectContainsTile(p.Rect, g, id) {
			return false
		}
	}
	return true
}

func rectContainsTile(r geom.Rect, g geom.Grid, id geom.TileID) bool {
	return r.Contains(g.TileRect(id).Center())
}

// SegmentResult is the construction outcome for one video segment.
type SegmentResult struct {
	// Ptiles are the constructed popularity tiles, largest cluster first.
	Ptiles []Ptile
	// CoveredUsers is the number of training users whose cluster earned a
	// Ptile.
	CoveredUsers int
	// TotalUsers is the number of training viewing centers clustered.
	TotalUsers int
}

// CoverageFraction returns CoveredUsers/TotalUsers (0 when empty).
func (r SegmentResult) CoverageFraction() float64 {
	if r.TotalUsers == 0 {
		return 0
	}
	return float64(r.CoveredUsers) / float64(r.TotalUsers)
}

// BuildSegment clusters the per-segment viewing centers with Algorithm 1 and
// constructs the Ptiles for one video segment.
func BuildSegment(centers []geom.Point, cfg Config) (SegmentResult, error) {
	if err := cfg.Validate(); err != nil {
		return SegmentResult{}, err
	}
	clusters, err := cluster.ViewingCenters(centers, cfg.Params)
	if err != nil {
		return SegmentResult{}, err
	}
	return BuildSegmentClusters(centers, clusters, cfg)
}

// BuildSegmentClusters constructs the Ptiles for one segment from an already
// computed clustering of the viewing centers (cluster member indices refer
// into centers). This is the hook the online pipeline uses: ptilelive
// clusters its sliding windows incrementally (cluster.Stream over the
// grid-indexed DBSCAN) and hands the result here, so the geometric Ptile
// construction is shared verbatim between the offline and online paths.
func BuildSegmentClusters(centers []geom.Point, clusters []cluster.Cluster, cfg Config) (SegmentResult, error) {
	if err := cfg.Validate(); err != nil {
		return SegmentResult{}, err
	}
	lut := geom.FoVLUTFor(cfg.Grid, cfg.FoVDeg, cfg.FoVDeg)
	res := SegmentResult{TotalUsers: len(centers)}
	for _, cl := range clusters {
		if len(cl.Members) < cfg.MinUsers {
			continue
		}
		pt, err := buildPtile(centers, cl.Members, cfg, lut)
		if err != nil {
			return SegmentResult{}, err
		}
		res.Ptiles = append(res.Ptiles, pt)
		res.CoveredUsers += len(cl.Members)
	}
	return res, nil
}

// buildPtile encodes the conventional tiles covering the cluster members'
// FoV blocks as one large tile. With a LUT the tile union is a few word-ORs
// and the bounding rect is computed from the mask; the result is identical
// because BoundingRect depends only on the tile membership, not its order.
func buildPtile(centers []geom.Point, members []int, cfg Config, lut *geom.FoVLUT) (Ptile, error) {
	var rect geom.Rect
	var err error
	if lut != nil {
		var union geom.TileSet
		for _, m := range members {
			union.Union(lut.SetAt(centers[m]))
		}
		rect, err = cfg.Grid.BoundingRectOfSet(union)
	} else {
		seen := make(map[geom.TileID]bool)
		var tiles []geom.TileID
		for _, m := range members {
			for _, id := range cfg.Grid.FoVTiles(centers[m], cfg.FoVDeg, cfg.FoVDeg) {
				if !seen[id] {
					seen[id] = true
					tiles = append(tiles, id)
				}
			}
		}
		rect, err = cfg.Grid.BoundingRect(tiles)
	}
	if err != nil {
		return Ptile{}, fmt.Errorf("ptile: bounding cluster of %d users: %w", len(members), err)
	}
	users := make([]int, len(members))
	copy(users, members)
	return Ptile{Rect: rect, Users: users}, nil
}

// BackgroundBlocks partitions the panorama area outside the Ptile into at
// most four large blocks along the Ptile's upper and lower horizontal lines
// (Section IV-A): a full-width strip above, a full-width strip below, and
// left/right side blocks at the Ptile's vertical extent.
func BackgroundBlocks(p Ptile, g geom.Grid) []geom.Rect {
	var blocks []geom.Rect
	r := p.Rect
	if r.Y0 > 0 {
		blocks = append(blocks, geom.Rect{X0: 0, Y0: 0, W: 360, H: r.Y0})
	}
	if bottom := r.Y0 + r.H; bottom < 180 {
		blocks = append(blocks, geom.Rect{X0: 0, Y0: bottom, W: 360, H: 180 - bottom})
	}
	if r.W < 360 {
		// The remaining side band at the Ptile's rows, wrapping from the
		// Ptile's right edge around to its left edge.
		blocks = append(blocks, geom.Rect{
			X0: geom.NormalizeYaw(r.X0 + r.W),
			Y0: r.Y0,
			W:  360 - r.W,
			H:  r.H,
		})
	}
	return blocks
}
