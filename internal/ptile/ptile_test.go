package ptile

import (
	"testing"

	"ptile360/internal/cluster"
	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

func mustConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestDefaultConfig(t *testing.T) {
	cfg := mustConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Grid.Rows != 4 || cfg.Grid.Cols != 8 || cfg.FoVDeg != 100 || cfg.MinUsers != 5 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestConfigValidate(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Grid.Rows = 0 },
		func(c *Config) { c.FoVDeg = 0 },
		func(c *Config) { c.FoVDeg = 200 },
		func(c *Config) { c.MinUsers = 0 },
		func(c *Config) { c.Params = cluster.Params{} },
	}
	for i, mutate := range muts {
		cfg := mustConfig(t)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

// blob returns n viewing centers around (cx, cy).
func blob(rng *stats.RNG, n int, cx, cy, std float64) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: geom.NormalizeYaw(cx + rng.Normal(0, std)), Y: cy + rng.Normal(0, std)}
	}
	return out
}

func TestBuildSegmentSingleCluster(t *testing.T) {
	cfg := mustConfig(t)
	rng := stats.NewRNG(1)
	centers := blob(rng, 20, 180, 90, 4)
	res, err := BuildSegment(centers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ptiles) != 1 {
		t.Fatalf("ptiles = %d, want 1", len(res.Ptiles))
	}
	if res.CoveredUsers != 20 || res.TotalUsers != 20 {
		t.Fatalf("coverage %d/%d", res.CoveredUsers, res.TotalUsers)
	}
	if res.CoverageFraction() != 1 {
		t.Fatalf("coverage fraction = %g", res.CoverageFraction())
	}
	// Every member's FoV block must fit inside the Ptile.
	pt := res.Ptiles[0]
	for _, u := range pt.Users {
		if !pt.Covers(cfg.Grid, centers[u], cfg.FoVDeg) {
			t.Fatalf("user %d FoV not covered by its own Ptile", u)
		}
	}
	if err := pt.Rect.Validate(); err != nil {
		t.Fatalf("Ptile rect invalid: %v", err)
	}
}

func TestBuildSegmentMinUsers(t *testing.T) {
	cfg := mustConfig(t)
	rng := stats.NewRNG(2)
	// 20 users in one cluster, 3 stragglers far away: the stragglers form a
	// sub-threshold cluster and earn no Ptile.
	centers := append(blob(rng, 20, 90, 90, 4), blob(rng, 3, 300, 90, 2)...)
	res, err := BuildSegment(centers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ptiles) != 1 {
		t.Fatalf("ptiles = %d, want 1 (straggler cluster below MinUsers)", len(res.Ptiles))
	}
	if res.CoveredUsers != 20 {
		t.Fatalf("covered = %d, want 20", res.CoveredUsers)
	}
	if f := res.CoverageFraction(); f <= 0.85 || f >= 0.88 {
		t.Fatalf("coverage fraction = %g, want 20/23", f)
	}
}

func TestBuildSegmentTwoClusters(t *testing.T) {
	cfg := mustConfig(t)
	rng := stats.NewRNG(3)
	centers := append(blob(rng, 12, 60, 90, 4), blob(rng, 8, 250, 90, 4)...)
	res, err := BuildSegment(centers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ptiles) != 2 {
		t.Fatalf("ptiles = %d, want 2", len(res.Ptiles))
	}
	// Largest cluster first.
	if len(res.Ptiles[0].Users) < len(res.Ptiles[1].Users) {
		t.Fatal("ptiles not ordered by cluster size")
	}
}

func TestBuildSegmentEmpty(t *testing.T) {
	cfg := mustConfig(t)
	res, err := BuildSegment(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ptiles) != 0 || res.CoverageFraction() != 0 {
		t.Fatalf("empty result = %+v", res)
	}
}

func TestBuildSegmentBadConfig(t *testing.T) {
	cfg := mustConfig(t)
	cfg.MinUsers = 0
	if _, err := BuildSegment([]geom.Point{{X: 1, Y: 90}}, cfg); err == nil {
		t.Fatal("want config validation error")
	}
}

func TestPtileRectGridAligned(t *testing.T) {
	cfg := mustConfig(t)
	rng := stats.NewRNG(4)
	centers := blob(rng, 15, 123, 77, 5)
	res, err := BuildSegment(centers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Ptiles {
		w, h := cfg.Grid.TileW(), cfg.Grid.TileH()
		for name, v := range map[string]float64{
			"X0": pt.Rect.X0 / w, "Y0": pt.Rect.Y0 / h, "W": pt.Rect.W / w, "H": pt.Rect.H / h,
		} {
			if v != float64(int(v)) {
				t.Fatalf("Ptile %s = %g not grid-aligned", name, v)
			}
		}
	}
}

func TestCoversRejectsOutsideViewer(t *testing.T) {
	cfg := mustConfig(t)
	rng := stats.NewRNG(5)
	centers := blob(rng, 10, 90, 90, 3)
	res, err := BuildSegment(centers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Ptiles[0]
	if pt.Covers(cfg.Grid, geom.Point{X: 280, Y: 90}, cfg.FoVDeg) {
		t.Fatal("Ptile should not cover a viewer on the opposite side")
	}
}

func TestBackgroundBlocksPartition(t *testing.T) {
	cfg := mustConfig(t)
	pt := Ptile{Rect: geom.Rect{X0: 90, Y0: 45, W: 135, H: 90}}
	blocks := BackgroundBlocks(pt, cfg.Grid)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (above, below, side)", len(blocks))
	}
	var area float64
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d invalid: %v", i, err)
		}
		area += b.Area()
	}
	// Blocks plus Ptile must tile the panorama exactly.
	if total := area + pt.Rect.Area(); total != 360*180 {
		t.Fatalf("blocks+Ptile area = %g, want %g", total, 360.0*180)
	}
	// No block may overlap the Ptile.
	for i, b := range blocks {
		if b.Contains(pt.Rect.Center()) {
			t.Fatalf("block %d overlaps the Ptile", i)
		}
	}
}

func TestBackgroundBlocksFullHeightPtile(t *testing.T) {
	cfg := mustConfig(t)
	pt := Ptile{Rect: geom.Rect{X0: 0, Y0: 0, W: 135, H: 180}}
	blocks := BackgroundBlocks(pt, cfg.Grid)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (side only)", len(blocks))
	}
	if blocks[0].W != 225 || blocks[0].H != 180 {
		t.Fatalf("side block = %+v", blocks[0])
	}
}

func TestBackgroundBlocksFullPanorama(t *testing.T) {
	cfg := mustConfig(t)
	pt := Ptile{Rect: geom.Rect{X0: 0, Y0: 0, W: 360, H: 180}}
	if blocks := BackgroundBlocks(pt, cfg.Grid); len(blocks) != 0 {
		t.Fatalf("full-panorama Ptile should have no background, got %d", len(blocks))
	}
}

// Property: BuildSegment never loses users and never covers more users than
// exist; all Ptile rects are valid.
func TestBuildSegmentInvariants(t *testing.T) {
	cfg := mustConfig(t)
	for seed := int64(0); seed < 30; seed++ {
		rng := stats.NewRNG(seed)
		n := 5 + rng.Intn(40)
		centers := make([]geom.Point, n)
		for i := range centers {
			centers[i] = geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(30, 150)}
		}
		res, err := BuildSegment(centers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalUsers != n || res.CoveredUsers > n || res.CoveredUsers < 0 {
			t.Fatalf("seed %d: counts %d/%d", seed, res.CoveredUsers, res.TotalUsers)
		}
		var sum int
		for _, pt := range res.Ptiles {
			sum += len(pt.Users)
			if len(pt.Users) < cfg.MinUsers {
				t.Fatalf("seed %d: Ptile with %d users below threshold", seed, len(pt.Users))
			}
			if err := pt.Rect.Validate(); err != nil {
				t.Fatalf("seed %d: invalid Ptile rect: %v", seed, err)
			}
		}
		if sum != res.CoveredUsers {
			t.Fatalf("seed %d: covered mismatch %d vs %d", seed, sum, res.CoveredUsers)
		}
	}
}
