package sim

import (
	"fmt"
	"math"

	"ptile360/internal/abr"
	"ptile360/internal/geom"
	"ptile360/internal/power"
	"ptile360/internal/ptile"
	"ptile360/internal/video"
)

// segmentPlan is the request structure for one segment: the quality-version
// options offered to the controller plus what they cover. Plans live in the
// session's recycled per-slot buffers (planBuf), so steady-state planning
// allocates neither the struct nor its coverage bookkeeping.
type segmentPlan struct {
	// options are the downloadable versions.
	options []abr.OptionMeta
	// chosenPtile is the serving Ptile (Ptile/Ours schemes, nil on
	// fallback).
	chosenPtile *ptile.Ptile
	// hqTiles is the high-quality grid-tile set (Ctile and fallback). On the
	// LUT path it aliases the shared FoVLUT slice — read-only.
	hqTiles []geom.TileID
	// hqSet is the bitset form of hqTiles, valid when hasHQSet (grids that
	// fit a TileSet); coverage is then counted with popcounts.
	hqSet    geom.TileSet
	hasHQSet bool
	// hqGroups marks the high-quality Ftile groups by index, valid when
	// hasHQGroups. The slice is recycled across plans.
	hqGroups    []bool
	hasHQGroups bool
	// fallback reports that a Ptile scheme had no covering Ptile and
	// reverted to conventional tiles for this segment.
	fallback bool
}

// segmentPlan builds the request options for segment k given the predicted
// viewing center and the estimated switching speed. slot selects the
// session's recycled options buffer (0 for the requested segment, 1..H−1
// for MPC horizon look-ahead), so steady-state planning allocates no new
// option storage.
func (s *session) segmentPlan(k, slot int, predCenter geom.Point, speedEst float64) (*segmentPlan, error) {
	sc := s.cat.Content[k]
	switch s.cfg.Scheme {
	case SchemeCtile:
		return s.ctilePlan(k, slot, predCenter, speedEst, sc)
	case SchemeFtile:
		return s.ftilePlan(k, slot, predCenter, speedEst, sc)
	case SchemeNontile:
		return s.nontilePlan(k, slot, speedEst, sc)
	case SchemePtile, SchemeOurs:
		return s.ptilePlan(k, slot, predCenter, speedEst, sc, false)
	default:
		return nil, fmt.Errorf("sim: unknown scheme %v", s.cfg.Scheme)
	}
}

// optionBuf returns the recycled zero-length options slice for scratch slot
// i; storeOptionBuf gives the (possibly grown) slice back. One slot is live
// per horizon position, so after the first few decisions option storage is
// allocation-free.
func (s *session) optionBuf(slot int) []abr.OptionMeta {
	for slot >= len(s.optBufs) {
		s.optBufs = append(s.optBufs, nil)
	}
	return s.optBufs[slot][:0]
}

func (s *session) storeOptionBuf(slot int, buf []abr.OptionMeta) { s.optBufs[slot] = buf }

// planBuf returns the recycled segmentPlan for scratch slot i, cleared of the
// previous decision while keeping grown buffers. Slots 0..Horizon are
// preallocated; a larger slot (which no current caller produces) gets a fresh
// struct rather than growing the array under live pointers.
func (s *session) planBuf(slot int) *segmentPlan {
	if slot >= len(s.planBufs) {
		return &segmentPlan{}
	}
	p := &s.planBufs[slot]
	p.options = nil
	p.chosenPtile = nil
	p.hqTiles = nil
	p.hqSet = geom.TileSet{}
	p.hasHQSet = false
	p.hqGroups = p.hqGroups[:0]
	p.hasHQGroups = false
	p.fallback = false
	return p
}

// quality evaluates the perceived quality Q(v, f) for this segment. The
// switching speed is scaled by AlphaScale, implementing α = κ·S_fov/TI
// (see Config.AlphaScale).
func (s *session) quality(sc video.SegmentContent, v video.Quality, f, speed float64) (float64, error) {
	b, err := s.cfg.Encoder.QoEBitrateMbps(v)
	if err != nil {
		return 0, err
	}
	return s.cfg.QoECoeffs.PerceivedQuality(sc.SI, sc.TI, b, speed*s.cfg.AlphaScale, f, s.fm)
}

// procPower returns P_d(f) + P_r(f) for the given decode pipeline.
func (s *session) procPower(scheme power.Scheme, f float64) (float64, error) {
	dec, ok := s.pm.Decode[scheme]
	if !ok {
		return 0, fmt.Errorf("sim: no decode model for %v", scheme)
	}
	return dec.At(f) + s.pm.Render.At(f), nil
}

// ctilePlan: nine FoV grid tiles at quality v, the rest at the lowest
// quality, one option per v at the source frame rate.
func (s *session) ctilePlan(k, slot int, predCenter geom.Point, speedEst float64, sc video.SegmentContent) (*segmentPlan, error) {
	plan := s.planBuf(slot)
	var hq []geom.TileID
	if s.lut != nil {
		hq = s.lut.TilesAt(predCenter)
		plan.hqSet = s.lut.SetAt(predCenter)
		plan.hasHQSet = true
	} else {
		hq = s.cfg.Grid.FoVTiles(predCenter, s.cfg.FoVDeg, s.cfg.FoVDeg)
	}
	plan.hqTiles = hq
	tileFrac := 1.0 / float64(s.cfg.Grid.NumTiles())
	nBG := s.cfg.Grid.NumTiles() - len(hq)

	gridBits := func(v video.Quality) (float64, error) {
		if s.tab != nil {
			return s.tab.gridTileBits[k][int(v)-1], nil
		}
		return s.cfg.Encoder.RegionBits(tileFrac, v, s.fm, video.KindGrid, s.cfg.SegmentSec, sc)
	}
	bgBits, err := gridBits(video.MinQuality)
	if err != nil {
		return nil, err
	}
	proc, err := s.procPower(power.Ctile, s.fm)
	if err != nil {
		return nil, err
	}
	plan.options = s.optionBuf(slot)
	for v := video.MinQuality; v <= video.MaxQuality; v++ {
		tileBits, err := gridBits(v)
		if err != nil {
			return nil, err
		}
		q, err := s.quality(sc, v, s.fm, speedEst)
		if err != nil {
			return nil, err
		}
		plan.options = append(plan.options, abr.OptionMeta{
			Option:           abr.Option{Quality: v, FrameRate: s.fm},
			SizeBits:         float64(len(hq))*tileBits + float64(nBG)*bgBits,
			PerceivedQuality: q,
			ProcPowerMW:      proc,
		})
	}
	s.storeOptionBuf(slot, plan.options)
	return plan, nil
}

// ftilePlan: the variable-size groups intersecting the predicted FoV at
// quality v, the rest at the lowest quality.
func (s *session) ftilePlan(k, slot int, predCenter geom.Point, speedEst float64, sc video.SegmentContent) (*segmentPlan, error) {
	groups := s.cat.Ftiles[k]
	plan := s.planBuf(slot)
	hq := plan.hqGroups
	if s.lut != nil && s.tab != nil && s.tab.setsOK {
		// Mask path: a group is high-quality iff its tile mask meets the
		// FoV mask — the same membership test as the map loop below.
		fovSet := s.lut.SetAt(predCenter)
		for gi := range groups {
			hq = append(hq, s.tab.ftileSets[k][gi].Intersects(fovSet))
		}
	} else {
		var fov []geom.TileID
		if s.lut != nil {
			fov = s.lut.TilesAt(predCenter)
		} else {
			fov = s.cfg.Grid.FoVTiles(predCenter, s.cfg.FoVDeg, s.cfg.FoVDeg)
		}
		inFoV := make(map[geom.TileID]bool, len(fov))
		for _, id := range fov {
			inFoV[id] = true
		}
		for _, g := range groups {
			in := false
			for _, id := range g.Tiles {
				if inFoV[id] {
					in = true
					break
				}
			}
			hq = append(hq, in)
		}
	}
	plan.hqGroups = hq
	plan.hasHQGroups = true
	proc, err := s.procPower(power.Ftile, s.fm)
	if err != nil {
		return nil, err
	}
	groupBits := func(gi int, g FtileGroup, q video.Quality) (float64, error) {
		if s.tab != nil {
			return s.tab.ftileBits[k][gi][int(q)-1], nil
		}
		return s.cfg.Encoder.RegionBits(g.AreaFrac, q, s.fm, video.KindFtile, s.cfg.SegmentSec, sc)
	}
	plan.options = s.optionBuf(slot)
	for v := video.MinQuality; v <= video.MaxQuality; v++ {
		var total float64
		for gi, g := range groups {
			q := video.MinQuality
			if hq[gi] {
				q = v
			}
			bits, err := groupBits(gi, g, q)
			if err != nil {
				return nil, err
			}
			total += bits
		}
		q, err := s.quality(sc, v, s.fm, speedEst)
		if err != nil {
			return nil, err
		}
		plan.options = append(plan.options, abr.OptionMeta{
			Option:           abr.Option{Quality: v, FrameRate: s.fm},
			SizeBits:         total,
			PerceivedQuality: q,
			ProcPowerMW:      proc,
		})
	}
	s.storeOptionBuf(slot, plan.options)
	return plan, nil
}

// nontilePlan: the whole panorama at quality v.
func (s *session) nontilePlan(k, slot int, speedEst float64, sc video.SegmentContent) (*segmentPlan, error) {
	proc, err := s.procPower(power.Nontile, s.fm)
	if err != nil {
		return nil, err
	}
	plan := s.planBuf(slot)
	plan.options = s.optionBuf(slot)
	for v := video.MinQuality; v <= video.MaxQuality; v++ {
		var bits float64
		if s.tab != nil {
			bits = s.tab.panoramaBits[k][int(v)-1]
		} else {
			bits, err = s.cfg.Encoder.RegionBits(1, v, s.fm, video.KindPanorama, s.cfg.SegmentSec, sc)
			if err != nil {
				return nil, err
			}
		}
		q, err := s.quality(sc, v, s.fm, speedEst)
		if err != nil {
			return nil, err
		}
		plan.options = append(plan.options, abr.OptionMeta{
			Option:           abr.Option{Quality: v, FrameRate: s.fm},
			SizeBits:         bits,
			PerceivedQuality: q,
			ProcPowerMW:      proc,
		})
	}
	s.storeOptionBuf(slot, plan.options)
	return plan, nil
}

// ptilePlan: the covering Ptile at (v, f) plus low-quality background
// blocks; falls back to conventional tiles when no Ptile covers the
// predicted viewport. preferLargest selects the most popular Ptile instead
// of the viewport-covering one (used for horizon approximation).
func (s *session) ptilePlan(k, slot int, predCenter geom.Point, speedEst float64, sc video.SegmentContent, preferLargest bool) (*segmentPlan, error) {
	pt, pi := s.coveringPtile(k, predCenter)
	if pt == nil && preferLargest && len(s.cat.Ptiles[k]) > 0 {
		pt, pi = &s.cat.Ptiles[k][0], 0
	}
	if pt == nil {
		// Section IV-B: no covering Ptile → conventional tiles at the best
		// possible quality, decoded with the conventional pipeline.
		plan, err := s.ctilePlan(k, slot, predCenter, speedEst, sc)
		if err != nil {
			return nil, err
		}
		plan.fallback = true
		return plan, nil
	}

	var tab *ptileTable
	if s.tab != nil {
		tab = &s.tab.ptiles[k][pi]
	}

	// Background blocks at lowest quality and full frame rate.
	var bgBits float64
	if tab != nil {
		bgBits = tab.bgBits
	} else {
		for _, block := range ptile.BackgroundBlocks(*pt, s.cfg.Grid) {
			bits, err := s.cfg.Encoder.TileBits(video.TileSpec{
				Rect: block, Quality: video.MinQuality, Kind: video.KindBlock,
			}, s.cfg.SegmentSec, sc)
			if err != nil {
				return nil, err
			}
			bgBits += bits
		}
	}

	plan := s.planBuf(slot)
	plan.chosenPtile = pt
	plan.options = s.optionBuf(slot)
	for v := video.MinQuality; v <= video.MaxQuality; v++ {
		for fi, f := range s.cfg.FrameRates {
			var bits float64
			if tab != nil {
				bits = tab.bits[int(v)-1][fi]
			} else {
				var err error
				bits, err = s.cfg.Encoder.TileBits(video.TileSpec{
					Rect: pt.Rect, Quality: v, FrameRate: f, Kind: video.KindPtile,
				}, s.cfg.SegmentSec, sc)
				if err != nil {
					return nil, err
				}
			}
			q, err := s.quality(sc, v, f, speedEst)
			if err != nil {
				return nil, err
			}
			proc, err := s.procPower(power.PtileScheme, f)
			if err != nil {
				return nil, err
			}
			plan.options = append(plan.options, abr.OptionMeta{
				Option:           abr.Option{Quality: v, FrameRate: f},
				SizeBits:         bits + bgBits,
				PerceivedQuality: q,
				ProcPowerMW:      proc,
			})
		}
	}
	s.storeOptionBuf(slot, plan.options)
	return plan, nil
}

// coveringPtile returns the catalogue Ptile of segment k serving a viewer
// predicted at center, plus its index into cat.Ptiles[k] (for the
// precomputed size tables): the smallest Ptile fully covering the FoV
// block, or — when prediction noise pushes the block edge outside every
// Ptile — the largest Ptile still containing the center itself (the viewer
// then gets partial high-quality coverage rather than a full conventional
// fallback).
func (s *session) coveringPtile(k int, center geom.Point) (*ptile.Ptile, int) {
	var best *ptile.Ptile
	bestIdx := -1
	bestArea := math.Inf(1)
	// Mask path: "every FoV tile center inside the rect" is exactly
	// "FoV mask ⊆ rect-coverage mask", with both masks precomputed.
	useSets := s.lut != nil && s.tab != nil && s.tab.setsOK
	var fovSet geom.TileSet
	if useSets {
		fovSet = s.lut.SetAt(center)
	}
	for i := range s.cat.Ptiles[k] {
		pt := &s.cat.Ptiles[k][i]
		var covers bool
		if useSets {
			covers = s.tab.ptileSets[k][i].ContainsAll(fovSet)
		} else {
			covers = pt.Covers(s.cfg.Grid, center, s.cfg.FoVDeg)
		}
		if covers && pt.Rect.Area() < bestArea {
			best, bestIdx, bestArea = pt, i, pt.Rect.Area()
		}
	}
	if best != nil {
		return best, bestIdx
	}
	bestArea = 0
	for i := range s.cat.Ptiles[k] {
		pt := &s.cat.Ptiles[k][i]
		if pt.Rect.Contains(center) && pt.Rect.Area() > bestArea {
			best, bestIdx, bestArea = pt, i, pt.Rect.Area()
		}
	}
	return best, bestIdx
}

// horizonPlans assembles the MPC horizon: segment k's actual plan followed
// by approximate plans for k+1..k+H−1 using the current viewport prediction
// (far-future predictions are unreliable, so popular Ptiles stand in). The
// look-ahead plans use option slots 1..H−1 and the horizon slice is
// recycled across decisions.
func (s *session) horizonPlans(k int, predCenter geom.Point, speedEst float64, first *segmentPlan) ([]abr.SegmentMeta, error) {
	out := append(s.horizonBuf[:0], abr.SegmentMeta{Options: first.options})
	for i := k + 1; i < k+s.cfg.Horizon && i < len(s.cat.Content); i++ {
		plan, err := s.ptilePlan(i, 1+(i-k-1), predCenter, speedEst, s.cat.Content[i], true)
		if err != nil {
			return nil, err
		}
		out = append(out, abr.SegmentMeta{Options: plan.options})
	}
	s.horizonBuf = out
	return out, nil
}

// perceivedQuality determines what the user experienced for segment k: the
// delivered quality Q(v, f) evaluated at the actual switching speed. With
// StrictViewportQoE the quality is additionally blended down by the
// uncovered fraction of the actually-viewed FoV block (a slightly-off
// viewport prediction degrades the edge of the view, not the whole frame).
// hit reports full coverage either way.
func (s *session) perceivedQuality(k int, plan *segmentPlan, chosen abr.OptionMeta) (q0 float64, hit bool, err error) {
	actual, err := s.user.ViewingCenter(k, s.cfg.SegmentSec)
	if err != nil {
		return 0, false, err
	}
	actualSpeed, err := s.user.SegmentPeakSpeed(k, s.cfg.SegmentSec)
	if err != nil {
		actualSpeed = 0
	}
	sc := s.cat.Content[k]
	frac := s.coverageFraction(k, plan, actual)

	qHigh, err := s.quality(sc, chosen.Quality, chosen.FrameRate, actualSpeed)
	if err != nil {
		return 0, false, err
	}
	if !s.cfg.StrictViewportQoE {
		return qHigh, frac >= 1, nil
	}
	qLow, err := s.quality(sc, video.MinQuality, s.fm, actualSpeed)
	if err != nil {
		return 0, false, err
	}
	return frac*qHigh + (1-frac)*qLow, frac >= 1, nil
}

// coverageFraction returns the fraction of the actually-viewed FoV tile
// block that the downloaded high-quality region covers.
func (s *session) coverageFraction(k int, plan *segmentPlan, actual geom.Point) float64 {
	if s.cfg.Scheme == SchemeNontile {
		return 1
	}
	var fov []geom.TileID
	if s.lut != nil {
		fov = s.lut.TilesAt(actual)
	} else {
		fov = s.cfg.Grid.FoVTiles(actual, s.cfg.FoVDeg, s.cfg.FoVDeg)
	}
	if len(fov) == 0 {
		return 0
	}
	covered := 0
	switch {
	case plan.chosenPtile != nil:
		for _, id := range fov {
			if plan.chosenPtile.Rect.Contains(s.cfg.Grid.TileRect(id).Center()) {
				covered++
			}
		}
	case plan.hasHQGroups:
		if s.lut != nil && s.tab != nil && s.tab.setsOK {
			var inHQ geom.TileSet
			for gi := range s.cat.Ftiles[k] {
				if plan.hqGroups[gi] {
					inHQ.Union(s.tab.ftileSets[k][gi])
				}
			}
			covered = inHQ.CountIn(s.lut.SetAt(actual))
		} else {
			inHQ := make(map[geom.TileID]bool)
			for gi, g := range s.cat.Ftiles[k] {
				if plan.hqGroups[gi] {
					for _, id := range g.Tiles {
						inHQ[id] = true
					}
				}
			}
			for _, id := range fov {
				if inHQ[id] {
					covered++
				}
			}
		}
	default:
		if plan.hasHQSet {
			covered = plan.hqSet.CountIn(s.lut.SetAt(actual))
		} else {
			have := make(map[geom.TileID]bool, len(plan.hqTiles))
			for _, id := range plan.hqTiles {
				have[id] = true
			}
			for _, id := range fov {
				if have[id] {
					covered++
				}
			}
		}
	}
	return float64(covered) / float64(len(fov))
}
