package sim

import (
	"fmt"
	"math"

	"ptile360/internal/abr"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/netem"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/qoe"
)

// This file is the resumable form of the session loop. Run streams a whole
// video in one blocking call; fleet-scale schedulers instead advance
// sessions one segment at a time from a virtual-clock event queue. The
// split is:
//
//   - Stepper carries everything shared by sessions of one
//     (catalogue, config) pair — power model, controllers, plan tables, FoV
//     LUT — plus the recycled planning scratch. It is the expensive part
//     (kilobytes of DP and plan buffers) and exists once per worker, not
//     once per session.
//   - State is the compact persistent state of one viewer: clocks, buffer,
//     bandwidth-estimator window, previous-choice memory, and the running
//     accounting sums. It is a few hundred bytes, so a million concurrent
//     sessions fit in one process.
//
// Run is itself implemented as NewStepper + NewState + a Step loop, so the
// blocking path and the event-driven path execute the same code; the
// fleet package's differential tests pin the two bit-identical.

// Stepper advances resumable sessions of one (catalogue, config) pair. It
// owns mutable planning scratch, so it must not be shared by concurrent
// goroutines — give each worker its own.
type Stepper struct {
	s       session
	estKind predict.EstimatorKind
	// xyCache shares the unwrapped head-trace series across sessions of the
	// same viewer trace (they are read-only), so a fleet replaying a trace
	// pool pays the XYSeries allocation once per trace, not per session.
	xyCache map[*headtrace.Trace]xySeries
	// netSeen remembers bandwidth traces that already passed Validate, so a
	// fleet joining many sessions onto a shared trace scans it once, not
	// once per join. Traces are immutable by contract after first use.
	netSeen map[*lte.Trace]struct{}
}

type xySeries struct{ xs, ys []float64 }

// State is the compact persistent state of one resumable session. Create
// with Stepper.NewState, advance with Stepper.Step, and settle the
// accounting with Stepper.Finish. A State is bound to the stepper's
// (catalogue, config); any stepper built from the same pair may advance it.
type State struct {
	user *headtrace.Trace
	net  *lte.Trace
	// pnet, when set (InitStateNetem), replaces net with the packet-level
	// emulated path: downloads resolve through the droptail-queue link and
	// the estimator additionally receives per-packet timing when it
	// implements predict.PacketObserver. A SessionNet carries mutable
	// cross-download queue state, so netem-backed sessions are excluded
	// from StepBatch fingerprint grouping (each session's link history is
	// unique).
	pnet *netem.SessionNet
	bw   predict.Estimator
	// bwStore is the in-struct home of the default harmonic estimator, so a
	// bulk-allocated State (fleet slabs) costs no separate estimator
	// allocation; bw points at it then. Because bwStore's window may alias
	// its own inline array, a State must not be copied by value after
	// InitState.
	bwStore predict.Bandwidth
	// xs, ys alias the stepper's shared per-trace series (read-only).
	xs, ys []float64

	nextSeg    int
	tWall      float64
	buffer     float64
	prevQ0     float64
	hasPrevQ0  bool
	prevChoice abr.Option
	hasPrev    bool

	// Running accounting, folded exactly as Run's result loop would.
	energy        EnergyBreakdown
	bits          float64
	qualitySum    float64
	frameRateSum  float64
	segments      int
	ptileSegments int
	viewportHits  int
	emergencies   int
	acc           qoe.Accumulator
	perSegment    []SegmentTrace
}

// Segment returns the index of the next segment Step would fetch.
func (st *State) Segment() int { return st.nextSeg }

// WallSec returns the session-local wall clock (seconds since the session
// started) after the last completed download.
func (st *State) WallSec() float64 { return st.tWall }

// BufferSec returns the current playback buffer level in seconds.
func (st *State) BufferSec() float64 { return st.buffer }

// Segments returns the number of segments streamed so far.
func (st *State) Segments() int { return st.segments }

// EstimateBps returns the session's current bandwidth estimate in bits per
// second, or 0 before the estimator has warmed up.
func (st *State) EstimateBps() float64 {
	if st.bw == nil || !st.bw.Ready() {
		return 0
	}
	est, err := st.bw.Estimate()
	if err != nil {
		return 0
	}
	return est
}

// StepInfo reports one Step: the timing a scheduler needs to place the
// download-completion event on its virtual clock.
type StepInfo struct {
	// Segment is the segment index this step fetched.
	Segment int
	// WaitSec is the pre-request pacing wait (buffer above β).
	WaitSec float64
	// DownloadSec is the download duration against the bandwidth trace.
	DownloadSec float64
	// StallSec is the rebuffering charged to this segment.
	StallSec float64
	// WallSec is the session-local wall clock when the download completed.
	WallSec float64
	// BufferSec is the buffer level after the segment was appended.
	BufferSec float64
	// Done reports that no segments remain: the session is complete and
	// ready for Finish.
	Done bool
}

// NewStepper validates the configuration against the catalogue and builds
// the shared session runtime.
func NewStepper(cat *Catalog, cfg Config) (*Stepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cat == nil || len(cat.Content) == 0 {
		return nil, fmt.Errorf("sim: empty catalogue")
	}
	if cat.SegmentSec != cfg.SegmentSec {
		return nil, fmt.Errorf("sim: catalogue segment duration %g != config %g", cat.SegmentSec, cfg.SegmentSec)
	}
	pm, err := power.TableI(cfg.Phone)
	if err != nil {
		return nil, err
	}
	mpcCfg := abr.DefaultConfig(pm.Tx)
	mpcCfg.Horizon = cfg.Horizon
	mpcCfg.SegmentSec = cfg.SegmentSec
	mpcCfg.BufferCapSec = cfg.BufferCapSec
	mpcCfg.Epsilon = cfg.Epsilon
	mpc, err := abr.NewEnergyMPC(mpcCfg)
	if err != nil {
		return nil, err
	}
	qoeMPC, err := abr.NewQoEMPC(mpcCfg, cfg.Weights.Variation)
	if err != nil {
		return nil, err
	}
	rateCtl, err := abr.NewRateBased(cfg.RateSafety)
	if err != nil {
		return nil, err
	}
	estKind := cfg.Estimator
	if estKind == 0 {
		estKind = predict.EstimatorHarmonic
	}
	// Validate the estimator kind once here so a bad configuration fails at
	// stepper construction, not at the first NewState.
	if _, err := predict.NewEstimator(estKind, cfg.BandwidthWindow); err != nil {
		return nil, err
	}

	// Fetch the catalogue's shared precomputed size tables; when disabled
	// (determinism tests) the planners fall back to computing every size
	// directly, which is the bit-identical serial reference path.
	var tab *planTables
	if !disablePlanTables {
		tab, err = cat.tablesFor(&cfg)
		if err != nil {
			return nil, err
		}
	}

	st := &Stepper{
		s: session{
			cfg: cfg, cat: cat,
			pm: pm, mpc: mpc, qoeMPC: qoeMPC, rate: rateCtl,
			tab: tab, fm: cfg.Encoder.FrameRate,
		},
		estKind: estKind,
		xyCache: make(map[*headtrace.Trace]xySeries),
		netSeen: make(map[*lte.Trace]struct{}),
	}
	// Shared FoV coverage LUT (nil on grids too large for a TileSet — the
	// planners then keep the direct FoVTiles paths) and the reusable
	// viewport predictor. A config the predictor rejects is one Viewport
	// would reject on every call, so predictViewport's trace fallback applies
	// either way.
	st.s.lut = geom.FoVLUTFor(cfg.Grid, cfg.FoVDeg, cfg.FoVDeg)
	if vp, vpErr := predict.NewViewportPredictor(cfg.Viewport); vpErr == nil {
		st.s.vp = vp
	}
	// One recycled plan per horizon slot; preallocated so held plan pointers
	// are never invalidated by growth.
	st.s.planBufs = make([]segmentPlan, cfg.Horizon+1)
	return st, nil
}

// Segments returns the number of segments in the stepper's catalogue.
func (st *Stepper) Segments() int { return len(st.s.cat.Content) }

// Config returns the stepper's session configuration.
func (st *Stepper) Config() Config { return st.s.cfg }

// xySeriesFor returns the shared unwrapped head series for a viewer trace.
func (st *Stepper) xySeriesFor(user *headtrace.Trace) xySeries {
	if xy, ok := st.xyCache[user]; ok {
		return xy
	}
	xs, ys := user.XYSeries()
	xy := xySeries{xs: xs, ys: ys}
	st.xyCache[user] = xy
	return xy
}

// NewState binds a viewer and a bandwidth trace into a fresh session state,
// seeding the bandwidth estimator with the trace's initial probe exactly as
// Run does.
func (st *Stepper) NewState(user *headtrace.Trace, net *lte.Trace) (*State, error) {
	state := new(State)
	if err := st.InitState(state, user, net); err != nil {
		return nil, err
	}
	return state, nil
}

// InitState initializes a caller-allocated State in place — the bulk form of
// NewState for engines that slab-allocate session state. state's previous
// contents are discarded. With the default harmonic estimator and a window
// that fits its inline storage, initialization performs no heap allocation
// beyond the once-per-trace series cache.
func (st *Stepper) InitState(state *State, user *headtrace.Trace, net *lte.Trace) error {
	if user == nil || len(user.Samples) == 0 {
		return fmt.Errorf("sim: empty user trace")
	}
	if _, ok := st.netSeen[net]; !ok {
		if err := net.Validate(); err != nil {
			return err
		}
		st.netSeen[net] = struct{}{}
	}
	*state = State{user: user, net: net}
	if st.estKind == predict.EstimatorHarmonic {
		if err := state.bwStore.Init(st.s.cfg.BandwidthWindow); err != nil {
			return err
		}
		state.bw = &state.bwStore
	} else {
		bw, err := predict.NewEstimator(st.estKind, st.s.cfg.BandwidthWindow)
		if err != nil {
			return err
		}
		state.bw = bw
	}
	xy := st.xySeriesFor(user)
	state.xs, state.ys = xy.xs, xy.ys
	// Seed the bandwidth estimator with an initial probe (the paper's
	// startup phase downloads segment metadata).
	return state.bw.Observe(net.At(0))
}

// NewStateNetem is NewState over the packet-level network path instead of a
// segment-granularity trace: downloads go through pn's emulated droptail
// link, and estimators that implement predict.PacketObserver receive every
// delivered packet's timing before the segment-level Observe. pn carries
// the session's link state and must not be shared between states.
func (st *Stepper) NewStateNetem(user *headtrace.Trace, pn *netem.SessionNet) (*State, error) {
	state := new(State)
	if err := st.InitStateNetem(state, user, pn); err != nil {
		return nil, err
	}
	return state, nil
}

// InitStateNetem initializes a caller-allocated State in place over the
// packet-level path — the bulk form of NewStateNetem.
func (st *Stepper) InitStateNetem(state *State, user *headtrace.Trace, pn *netem.SessionNet) error {
	if user == nil || len(user.Samples) == 0 {
		return fmt.Errorf("sim: empty user trace")
	}
	if pn == nil {
		return fmt.Errorf("sim: nil netem session path")
	}
	*state = State{user: user, pnet: pn}
	if st.estKind == predict.EstimatorHarmonic {
		if err := state.bwStore.Init(st.s.cfg.BandwidthWindow); err != nil {
			return err
		}
		state.bw = &state.bwStore
	} else {
		bw, err := predict.NewEstimator(st.estKind, st.s.cfg.BandwidthWindow)
		if err != nil {
			return err
		}
		state.bw = bw
	}
	xy := st.xySeriesFor(user)
	state.xs, state.ys = xy.xs, xy.ys
	// Seed with the link's advertised rate at t=0, mirroring InitState's
	// net.At(0) probe.
	return state.bw.Observe(pn.RateAt(0))
}

// attach points the shared session workspace at one session's state.
func (s *session) attach(state *State) {
	s.user, s.net, s.pnet, s.bw = state.user, state.net, state.pnet, state.bw
	s.xs, s.ys = state.xs, state.ys
	s.tWall, s.buffer = state.tWall, state.buffer
	s.prevQ0, s.hasPrevQ0 = state.prevQ0, state.hasPrevQ0
	s.prevChoice, s.hasPrev = state.prevChoice, state.hasPrev
}

// detach writes the advanced clocks back and drops the per-session aliases.
func (s *session) detach(state *State) {
	state.tWall, state.buffer = s.tWall, s.buffer
	state.prevQ0, state.hasPrevQ0 = s.prevQ0, s.hasPrevQ0
	state.prevChoice, state.hasPrev = s.prevChoice, s.hasPrev
	s.user, s.net, s.pnet, s.bw = nil, nil, nil, nil
	s.xs, s.ys = nil, nil
}

// Step advances the session by one segment: the wait rule, the controller
// decision, the download, and the energy/QoE accounting — one iteration of
// Run's loop, bit for bit.
func (st *Stepper) Step(state *State) (StepInfo, error) {
	if state.nextSeg >= len(st.s.cat.Content) {
		return StepInfo{}, fmt.Errorf("sim: session already streamed all %d segments", len(st.s.cat.Content))
	}
	s := &st.s
	s.attach(state)
	info, err := s.step(state)
	s.detach(state)
	return info, err
}

// step is Run's loop body for segment k = state.nextSeg.
func (s *session) step(state *State) (StepInfo, error) {
	k := state.nextSeg
	info := StepInfo{Segment: k}

	// Wait rule: Δt = max(B − β, 0) before requesting segment k.
	if dt := s.buffer - s.cfg.BufferCapSec; dt > 0 {
		s.tWall += dt
		s.buffer -= dt
		info.WaitSec = dt
	}

	rateEst, err := s.bw.Estimate()
	if err != nil {
		return info, err
	}

	predCenter := s.predictViewport(k)
	speedEst := s.recentSwitchingSpeed(k)

	seg, err := s.segmentPlan(k, 0, predCenter, speedEst)
	if err != nil {
		return info, err
	}

	// Only Ours runs the energy-minimizing MPC (Section IV-C). The Ptile
	// baseline is "similar to the Ctile approach" (Section V-A): it
	// requests the best quality the network affords, merely encoded as
	// one large tile.
	var decision abr.Decision
	switch s.cfg.Scheme {
	case SchemeOurs:
		horizon, err := s.horizonPlans(k, predCenter, speedEst, seg)
		if err != nil {
			return info, err
		}
		// DecideCached with a nil cache is exactly Decide; a batch step
		// installs a per-tick cache so group leaders with bit-identical
		// (buffer, rate, horizon) inputs share one DP solve.
		if s.cfg.UseQoEMPC {
			prevQ := s.prevQ0
			if !s.hasPrevQ0 {
				prevQ = bestQuality(seg.options)
			}
			decision, err = s.qoeMPC.DecideCached(s.decCache, s.buffer, rateEst, prevQ, horizon)
		} else {
			decision, err = s.mpc.DecideCached(s.decCache, s.buffer, rateEst, horizon)
		}
		if err != nil {
			return info, err
		}
	default:
		decision, err = s.rate.Decide(s.buffer, rateEst, seg.options)
		if err != nil {
			return info, err
		}
	}
	if decision.Emergency {
		state.emergencies++
	}
	chosen := decision.Chosen
	// Version hysteresis (Ours only): Eq. 2 charges |ΔQ| between
	// consecutive segments, which the energy DP does not model. When
	// last segment's version is still feasible and within a small energy
	// margin of the fresh optimum, keep it to avoid quality flapping.
	if s.cfg.VersionHysteresis && s.cfg.Scheme == SchemeOurs && !s.cfg.UseQoEMPC &&
		s.hasPrev && !decision.Emergency {
		chosen = s.applyHysteresis(seg.options, chosen, rateEst)
	}
	s.prevChoice = chosen.Option
	s.hasPrev = true

	// Download against the bandwidth model. The packet-level path (netem)
	// resolves the transfer through the emulated droptail link and feeds
	// packet timing to delay-aware estimators; the segment-level path
	// integrates the trace, validated when the state was bound (InitState).
	bufferAtRequest := s.buffer
	var dl float64
	if s.pnet != nil {
		dl, err = s.pnet.Download(chosen.SizeBits, s.tWall)
		if err != nil {
			return info, err
		}
		if po, ok := s.bw.(predict.PacketObserver); ok {
			for _, ps := range s.pnet.Packets() {
				po.ObservePacket(ps.SendSec, ps.RecvSec, ps.Bytes)
			}
		}
	} else {
		dl, err = s.net.DownloadTimeTrusted(chosen.SizeBits, s.tWall)
		if err != nil {
			return info, err
		}
	}
	s.tWall += dl
	measuredRate := chosen.SizeBits / dl
	if dl <= 0 {
		if s.pnet != nil {
			measuredRate = s.pnet.RateAt(s.tWall)
		} else {
			measuredRate = s.net.At(s.tWall)
		}
	}
	if err := s.bw.Observe(measuredRate); err != nil {
		return info, err
	}
	s.buffer = math.Max(s.buffer-dl, 0) + s.cfg.SegmentSec

	// Energy accounting (Eq. 1). Fallback segments decode with the
	// conventional pipeline.
	decSch := s.cfg.Scheme.decodeScheme()
	if seg.fallback {
		decSch = power.Ctile
	}
	e, err := s.pm.Segment(decSch, chosen.SizeBits, measuredRate, chosen.FrameRate, s.cfg.SegmentSec)
	if err != nil {
		return info, err
	}
	state.energy.Tx += e.Tx
	state.energy.Decode += e.Decode
	state.energy.Render += e.Render

	// QoE accounting: the user perceives the chosen quality only if the
	// downloaded high-quality region covers what they actually watch;
	// otherwise they see the low-quality background.
	q0, hit, err := s.perceivedQuality(k, seg, chosen)
	if err != nil {
		return info, err
	}
	if hit {
		state.viewportHits++
	}
	prev := q0
	if s.hasPrevQ0 {
		prev = s.prevQ0
	}
	// The startup download (k = 0, empty buffer) is excluded from
	// rebuffering, as is standard in ABR evaluation.
	qoeBuffer := bufferAtRequest
	if k == 0 {
		qoeBuffer = dl + 1
	}
	bd, err := qoe.Segment(qoe.SegmentInput{
		Q0: q0, PrevQ0: prev,
		SizeBits: chosen.SizeBits, RateBps: measuredRate,
		BufferSec: qoeBuffer,
	}, s.cfg.Weights)
	if err != nil {
		return info, err
	}
	state.acc.Add(bd)
	s.prevQ0 = q0
	s.hasPrevQ0 = true

	state.bits += chosen.SizeBits
	state.qualitySum += float64(chosen.Quality)
	state.frameRateSum += chosen.FrameRate
	fromPtile := !seg.fallback && (s.cfg.Scheme == SchemePtile || s.cfg.Scheme == SchemeOurs)
	if fromPtile {
		state.ptileSegments++
	}
	if s.cfg.RecordSegments {
		state.perSegment = append(state.perSegment, SegmentTrace{
			Segment:       k,
			Quality:       chosen.Quality,
			FrameRate:     chosen.FrameRate,
			SizeBits:      chosen.SizeBits,
			ThroughputBps: measuredRate,
			BufferSec:     bufferAtRequest,
			Q0:            q0,
			Q:             bd.Q,
			StallSec:      bd.StallSec,
			EnergyMJ:      e.Total(),
			FromPtile:     fromPtile,
			Emergency:     decision.Emergency,
		})
	}
	state.segments++
	state.nextSeg = k + 1

	info.DownloadSec = dl
	info.StallSec = bd.StallSec
	info.WallSec = s.tWall
	info.BufferSec = s.buffer
	info.Done = state.nextSeg >= len(s.cat.Content)

	// Batch leaders capture the step's computed values so decision-identical
	// followers replay the same mutations without re-planning (batch.go).
	if s.rec != nil {
		*s.rec = stepDelta{
			info:         info,
			chosen:       chosen,
			emergency:    decision.Emergency,
			downloadSec:  dl,
			measuredRate: measuredRate,
			energy:       e,
			q0:           q0,
			hit:          hit,
			fromPtile:    fromPtile,
			bd:           bd,
		}
		if s.cfg.RecordSegments {
			s.rec.trace = state.perSegment[len(state.perSegment)-1]
		}
	}
	return info, nil
}

// Finish settles the session accounting into a Result. It may be called
// before the catalogue is exhausted (a truncated session); it fails on a
// session that never streamed a segment.
func (st *Stepper) Finish(state *State) (*Result, error) {
	res := &Result{
		Scheme:         st.s.cfg.Scheme,
		Phone:          st.s.cfg.Phone,
		VideoID:        st.s.cat.Video.ID,
		UserID:         state.user.UserID,
		Segments:       state.segments,
		Energy:         state.energy,
		BitsDownloaded: state.bits,
		MeanQuality:    state.qualitySum,
		MeanFrameRate:  state.frameRateSum,
		PtileSegments:  state.ptileSegments,
		ViewportHits:   state.viewportHits,
		Emergencies:    state.emergencies,
		PerSegment:     state.perSegment,
	}
	summary, err := state.acc.Summary()
	if err != nil {
		return nil, err
	}
	res.QoE = summary
	res.MeanQuality /= float64(res.Segments)
	res.MeanFrameRate /= float64(res.Segments)
	return res, nil
}
