package sim

import (
	"fmt"
	"math"

	"ptile360/internal/abr"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/qoe"
)

// This file is the batched form of Step. A fleet advancing N sessions at one
// virtual tick repeats the same planning work for every session whose
// decision inputs coincide — and at scale they coincide massively: sessions
// replaying the same (viewer trace, bandwidth trace) pair from the same join
// offset stay in bit-identical lockstep forever (a property the fleet
// differential tests already pin), so a 100k-session fleet built from a
// trace pool contains only dozens of distinct trajectories.
//
// StepBatch exploits that structurally, not statistically:
//
//   - Each session's decision-relevant residual state is fingerprinted into
//     raw words: (user, net, next segment) identity plus the exact bits of
//     the wall clock, buffer, previous-choice memory, and the full
//     bandwidth-estimator window (predict.StateBits).
//   - Sessions are grouped by a quantized bucket hash of those words. The
//     bucket is only a rendezvous: membership in a group always requires
//     word-for-word equality with the group leader — the exactness guard.
//     A session whose words match no leader becomes a new leader; a session
//     that cannot be fingerprinted falls back to the scalar Step.
//   - The group leader runs the ordinary scalar step (plan build, MPC DP,
//     download integration, energy/QoE evaluation), recording the computed
//     values as a stepDelta. Followers replay the delta: the same mutation
//     sequence with the same addends applied to their own accounting sums.
//
// Replay is bit-identical to the scalar path by construction. Every value a
// scalar step would compute is a deterministic function of state the
// fingerprint pins exactly, so the leader's captured values are the very
// values the follower's own step would have produced; applying them in the
// same order performs the same floating-point operations. Nothing is
// re-associated, re-ordered, or approximated — which is why the shared
// result survives Float64bits comparison across schemes, seeds, and worker
// counts (see the differential tests here and in internal/fleet).
//
// Quantization (the bucket-hash truncation) affects only how candidates
// rendezvous, never what is shared; BatchOptions.NoQuant switches to
// full-bit hashing with identical results.

// stepDelta captures what one scalar step computed, so a decision-identical
// follower can apply the same mutations without re-planning.
type stepDelta struct {
	info         StepInfo
	chosen       abr.OptionMeta
	emergency    bool
	downloadSec  float64
	measuredRate float64
	energy       power.SegmentEnergy
	q0           float64
	hit          bool
	fromPtile    bool
	bd           qoe.Breakdown
	trace        SegmentTrace
}

// BatchStats reports how one StepBatch call decomposed its input.
type BatchStats struct {
	// Leaders counts sessions that ran the full scalar step for their group.
	Leaders int
	// Replays counts sessions resolved by delta replay against a leader.
	Replays int
	// Fallbacks counts sessions stepped scalar because their state could not
	// be fingerprinted (estimator without predict.StateBits).
	Fallbacks int
}

// BatchScratch is the reusable workspace of StepBatch: signature storage,
// the group table, and the per-tick decision cache. One scratch serves one
// stepper; like the stepper it must not be shared by concurrent goroutines.
type BatchScratch struct {
	noQuant bool
	words   []uint64
	groups  []batchGroup
	table   map[batchKey]int32
	dec     *abr.DecisionCache
}

// batchKey is the group rendezvous: shared-trace identity plus the bucket
// hash of the residual-state words.
type batchKey struct {
	user *headtrace.Trace
	net  *lte.Trace
	seg  int
	hash uint64
}

// batchGroup is one leader's signature (words[off:off+n]) and captured
// delta; groups whose keys collide chain through next.
type batchGroup struct {
	off, n int32
	next   int32
	delta  stepDelta
}

// BatchOptions tunes StepBatch grouping.
type BatchOptions struct {
	// NoQuant hashes the full signature words instead of the quantized
	// (buffer, rate) bucket form. Grouping decisions — and therefore results
	// — are identical either way (the exact word comparison is always the
	// arbiter); this knob exists for the quantization-on/off differential
	// tests and for diagnosing bucket-collision pathologies.
	NoQuant bool
}

// NewBatchScratch returns an empty batch workspace.
func NewBatchScratch(opts BatchOptions) *BatchScratch {
	return &BatchScratch{
		noQuant: opts.NoQuant,
		table:   make(map[batchKey]int32),
		dec:     abr.NewDecisionCache(),
	}
}

func (sc *BatchScratch) reset() {
	sc.words = sc.words[:0]
	sc.groups = sc.groups[:0]
	clear(sc.table)
	sc.dec.Reset()
}

// batchFingerprintDisabled forces every session onto the scalar fallback —
// a test hook mirroring disablePlanTables, so the fallback path is
// exercisable end to end.
var batchFingerprintDisabled bool

// appendSigWords appends state's decision-relevant fingerprint: every datum
// the step reads besides the shared (stepper, user trace, net trace, segment
// index) identity carried in batchKey. ok is false when the bandwidth
// estimator does not expose its state (no predict.StateBits).
func appendSigWords(dst []uint64, state *State) (_ []uint64, ok bool) {
	if batchFingerprintDisabled {
		return dst, false
	}
	// Packet-level sessions carry per-session link state (queue backlog,
	// loss RNG) outside the fingerprint; batchKey's net pointer is nil for
	// all of them, so two distinct links would collide. Scalar-only.
	if state.pnet != nil {
		return dst, false
	}
	sb, fits := state.bw.(predict.StateBits)
	if !fits {
		return dst, false
	}
	var flags uint64
	if state.hasPrevQ0 {
		flags |= 1
	}
	if state.hasPrev {
		flags |= 2
	}
	dst = append(dst, flags, math.Float64bits(state.tWall), math.Float64bits(state.buffer))
	if state.hasPrevQ0 {
		dst = append(dst, math.Float64bits(state.prevQ0))
	}
	if state.hasPrev {
		dst = append(dst, uint64(state.prevChoice.Quality), math.Float64bits(state.prevChoice.FrameRate))
	}
	return sb.AppendStateBits(dst), true
}

// sigHash folds the signature words into the bucket hash. In quantized mode
// the low 20 mantissa bits of each word are dropped first, so states that
// differ only microscopically still rendezvous in one bucket and settle
// membership by the exact comparison; NoQuant hashes full words.
func sigHash(words []uint64, noQuant bool) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range words {
		if !noQuant {
			w >>= 20
		}
		h ^= w
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// StepBatch advances every session in states by one segment, sharing the
// planning work across decision-identical sessions, and writes each
// session's StepInfo into infos. It is bit-identical to calling Step on each
// state in order. Sessions may be heterogeneous (different traces, segments,
// progress); only provably identical ones share work. On error the batch
// aborts with some sessions already advanced — the same partial-progress
// contract as a scalar loop that errors midway.
func (st *Stepper) StepBatch(sc *BatchScratch, states []*State, infos []StepInfo) (BatchStats, error) {
	var stats BatchStats
	if len(states) != len(infos) {
		return stats, fmt.Errorf("sim: StepBatch infos length %d != states %d", len(infos), len(states))
	}
	if sc == nil {
		return stats, fmt.Errorf("sim: StepBatch needs a scratch")
	}
	sc.reset()
	st.s.decCache = sc.dec
	defer func() { st.s.decCache = nil }()

	for i, state := range states {
		base := len(sc.words)
		words, ok := appendSigWords(sc.words, state)
		if !ok {
			info, err := st.Step(state)
			if err != nil {
				return stats, err
			}
			infos[i] = info
			stats.Fallbacks++
			continue
		}
		sc.words = words
		sig := sc.words[base:]
		key := batchKey{user: state.user, net: state.net, seg: state.nextSeg, hash: sigHash(sig, sc.noQuant)}

		// Probe the bucket; exact word equality decides membership.
		gi, seen := sc.table[key]
		tail := int32(-1)
		for seen {
			g := &sc.groups[gi]
			if wordsEqual(sc.words[g.off:g.off+g.n], sig) {
				break
			}
			if g.next < 0 {
				tail, gi = gi, -1
				break
			}
			gi = g.next
		}
		if seen && gi >= 0 {
			// Follower: replay the leader's delta. Its signature words are
			// no longer needed.
			sc.words = sc.words[:base]
			info, err := st.replay(state, &sc.groups[gi].delta)
			if err != nil {
				return stats, err
			}
			infos[i] = info
			stats.Replays++
			continue
		}

		// Leader: run the scalar step, recording the delta for followers.
		sc.groups = append(sc.groups, batchGroup{off: int32(base), n: int32(len(sig)), next: -1})
		ni := int32(len(sc.groups) - 1)
		if tail >= 0 {
			sc.groups[tail].next = ni
		} else {
			sc.table[key] = ni
		}
		info, err := st.stepRecorded(state, &sc.groups[ni].delta)
		if err != nil {
			return stats, err
		}
		infos[i] = info
		stats.Leaders++
	}
	return stats, nil
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stepRecorded is Step with delta capture enabled.
func (st *Stepper) stepRecorded(state *State, d *stepDelta) (StepInfo, error) {
	if state.nextSeg >= len(st.s.cat.Content) {
		return StepInfo{}, fmt.Errorf("sim: session already streamed all %d segments", len(st.s.cat.Content))
	}
	s := &st.s
	s.attach(state)
	s.rec = d
	info, err := s.step(state)
	s.rec = nil
	s.detach(state)
	return info, err
}

// replay applies a leader's captured step to a follower whose
// decision-relevant state is word-identical to the leader's. Each mutation
// below is the scalar step's mutation with the same operands in the same
// order, applied to the follower's own accounting — so the follower ends in
// exactly the state its own scalar step would have produced.
func (st *Stepper) replay(state *State, d *stepDelta) (StepInfo, error) {
	cfg := &st.s.cfg
	k := state.nextSeg

	// Wait rule, on state the signature pinned equal to the leader's.
	if dt := state.buffer - cfg.BufferCapSec; dt > 0 {
		state.tWall += dt
		state.buffer -= dt
	}
	if d.emergency {
		state.emergencies++
	}
	state.prevChoice = d.chosen.Option
	state.hasPrev = true

	state.tWall += d.downloadSec
	if err := state.bw.Observe(d.measuredRate); err != nil {
		return StepInfo{}, err
	}
	state.buffer = math.Max(state.buffer-d.downloadSec, 0) + cfg.SegmentSec

	state.energy.Tx += d.energy.Tx
	state.energy.Decode += d.energy.Decode
	state.energy.Render += d.energy.Render

	if d.hit {
		state.viewportHits++
	}
	state.acc.Add(d.bd)
	state.prevQ0 = d.q0
	state.hasPrevQ0 = true

	state.bits += d.chosen.SizeBits
	state.qualitySum += float64(d.chosen.Quality)
	state.frameRateSum += d.chosen.FrameRate
	if d.fromPtile {
		state.ptileSegments++
	}
	if cfg.RecordSegments {
		state.perSegment = append(state.perSegment, d.trace)
	}
	state.segments++
	state.nextSeg = k + 1
	return d.info, nil
}
