package sim

import (
	"reflect"
	"testing"

	"ptile360/internal/headtrace"
	"ptile360/internal/power"
	"ptile360/internal/video"
)

// buildCatalogWithWorkers rebuilds the fixture's catalogue with the given
// worker count from identical inputs.
func buildCatalogWithWorkers(t *testing.T, workers int) *Catalog {
	t.Helper()
	p, err := video.ProfileByID(2)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 16
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := ds.SplitTrainEval(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	ccfg, err := DefaultCatalogConfig()
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Workers = workers
	cat, err := BuildCatalog(p, train, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestBuildCatalogWorkersDeterministic proves the parallel per-segment
// construction is bit-identical to the serial loop: every segment is an
// independent seeded computation writing only its own slots, so the worker
// count must not change a single byte of the catalogue.
func TestBuildCatalogWorkersDeterministic(t *testing.T) {
	serial := buildCatalogWithWorkers(t, 1)
	for _, workers := range []int{0, 4, 16} {
		par := buildCatalogWithWorkers(t, workers)
		if !reflect.DeepEqual(serial.Content, par.Content) {
			t.Fatalf("workers=%d: content series differ", workers)
		}
		if !reflect.DeepEqual(serial.Ptiles, par.Ptiles) {
			t.Fatalf("workers=%d: Ptile catalogues differ", workers)
		}
		if !reflect.DeepEqual(serial.Ftiles, par.Ftiles) {
			t.Fatalf("workers=%d: Ftile groupings differ", workers)
		}
		if !reflect.DeepEqual(serial.Coverage, par.Coverage) {
			t.Fatalf("workers=%d: coverage series differ", workers)
		}
	}
}

// TestSessionPlanTablesBitIdentical proves the precomputed size tables are a
// pure memoization: for every scheme, a session planned from the tables
// returns byte-for-byte the same Result as the direct per-call computation
// path (the serial reference).
func TestSessionPlanTablesBitIdentical(t *testing.T) {
	fx := fixture(t)
	for _, scheme := range Schemes() {
		cfg, err := DefaultConfig(scheme, power.Nexus5X)
		if err != nil {
			t.Fatal(err)
		}
		cfg.RecordSegments = true
		user := fx.eval[0]

		disablePlanTables = true
		ref, refErr := Run(fx.cat, user, fx.trace, cfg)
		disablePlanTables = false
		if refErr != nil {
			t.Fatalf("%v: reference run: %v", scheme, refErr)
		}

		got, err := Run(fx.cat, user, fx.trace, cfg)
		if err != nil {
			t.Fatalf("%v: table run: %v", scheme, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%v: table-planned session differs from direct-computation reference:\nref: %+v\ngot: %+v",
				scheme, ref, got)
		}
	}
}

// TestPlanTablesSingleflight checks that repeated sessions with the same
// configuration share one table build per catalogue fingerprint.
func TestPlanTablesSingleflight(t *testing.T) {
	cat := buildCatalogWithWorkers(t, 1)
	cfgOurs, err := DefaultConfig(SchemeOurs, power.Nexus5X)
	if err != nil {
		t.Fatal(err)
	}
	cfgCtile, err := DefaultConfig(SchemeCtile, power.Nexus5X)
	if err != nil {
		t.Fatal(err)
	}
	t1a, err := cat.tablesFor(&cfgOurs)
	if err != nil {
		t.Fatal(err)
	}
	t1b, err := cat.tablesFor(&cfgOurs)
	if err != nil {
		t.Fatal(err)
	}
	if t1a != t1b {
		t.Fatal("same fingerprint built twice")
	}
	// Ctile uses a single source frame rate, so its ladder fingerprint
	// differs from Ours and must map to its own table.
	t2, err := cat.tablesFor(&cfgCtile)
	if err != nil {
		t.Fatal(err)
	}
	if t2 == t1a {
		t.Fatal("distinct fingerprints shared one table")
	}
}
