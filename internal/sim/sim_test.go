package sim

import (
	"math"
	"sync"
	"testing"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/video"
)

// testFixture builds a small deterministic evaluation setup shared by the
// session tests: video 2 (shortest focused video), 16 users, a 300 s LTE
// trace.
type testFixture struct {
	cat   *Catalog
	eval  []*headtrace.Trace
	trace *lte.Trace
}

// The fixture is shared package-wide (notably by the stress tests); build
// it once behind a sync.Once so the cache stays race-clean under -race and
// t.Parallel.
var (
	fixtureOnce  sync.Once
	fixtureCache *testFixture
	fixtureErr   error
)

func fixture(t *testing.T) *testFixture {
	t.Helper()
	fixtureOnce.Do(func() { fixtureCache, fixtureErr = buildFixture() })
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureCache
}

func buildFixture() (*testFixture, error) {
	p, err := video.ProfileByID(2)
	if err != nil {
		return nil, err
	}
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 16
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		return nil, err
	}
	train, eval, err := ds.SplitTrainEval(12, 7)
	if err != nil {
		return nil, err
	}
	ccfg, err := DefaultCatalogConfig()
	if err != nil {
		return nil, err
	}
	cat, err := BuildCatalog(p, train, ccfg)
	if err != nil {
		return nil, err
	}
	_, tr2, err := lte.StandardTraces(300, 99)
	if err != nil {
		return nil, err
	}
	return &testFixture{cat: cat, eval: eval, trace: tr2}, nil
}

func TestBuildCatalogShape(t *testing.T) {
	fx := fixture(t)
	nSeg := fx.cat.Video.Segments(1)
	if len(fx.cat.Content) != nSeg || len(fx.cat.Ptiles) != nSeg || len(fx.cat.Ftiles) != nSeg {
		t.Fatalf("catalogue arrays not per-segment: %d/%d/%d vs %d",
			len(fx.cat.Content), len(fx.cat.Ptiles), len(fx.cat.Ftiles), nSeg)
	}
	for seg, groups := range fx.cat.Ftiles {
		var area float64
		tileCount := 0
		for _, g := range groups {
			area += g.AreaFrac
			tileCount += len(g.Tiles)
		}
		if math.Abs(area-1) > 1e-9 {
			t.Fatalf("segment %d: Ftile groups cover %.4f of panorama, want 1", seg, area)
		}
		if tileCount != 32 {
			t.Fatalf("segment %d: Ftile groups hold %d tiles, want 32", seg, tileCount)
		}
		if len(groups) > 10 {
			t.Fatalf("segment %d: %d Ftile groups, want ≤ 10", seg, len(groups))
		}
	}
	for seg, cov := range fx.cat.Coverage {
		if cov < 0 || cov > 1 {
			t.Fatalf("segment %d coverage %g outside [0,1]", seg, cov)
		}
	}
}

func TestBuildCatalogValidation(t *testing.T) {
	p, _ := video.ProfileByID(2)
	ccfg, _ := DefaultCatalogConfig()
	if _, err := BuildCatalog(p, nil, ccfg); err == nil {
		t.Fatal("want error for no training traces")
	}
	fx := fixture(t)
	bad := ccfg
	bad.SegmentSec = 0
	if _, err := BuildCatalog(p, fx.eval, bad); err == nil {
		t.Fatal("want error for zero segment duration")
	}
	bad = ccfg
	bad.FtileCount = 0
	if _, err := BuildCatalog(p, fx.eval, bad); err == nil {
		t.Fatal("want error for zero Ftile count")
	}
	short := p
	short.DurationSec = 0
	if _, err := BuildCatalog(short, fx.eval, ccfg); err == nil {
		t.Fatal("want error for zero-length video")
	}
}

func TestDefaultConfigPerScheme(t *testing.T) {
	for _, scheme := range Schemes() {
		cfg, err := DefaultConfig(scheme, power.Pixel3)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%v: invalid default config: %v", scheme, err)
		}
		if scheme == SchemeOurs {
			if len(cfg.FrameRates) != 4 {
				t.Fatalf("Ours should have 4 frame rates, got %d", len(cfg.FrameRates))
			}
		} else if len(cfg.FrameRates) != 1 {
			t.Fatalf("%v should have 1 frame rate, got %d", scheme, len(cfg.FrameRates))
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Scheme = Scheme(99) },
		func(c *Config) { c.Encoder.BaseDensity = 0 },
		func(c *Config) { c.Grid.Rows = 0 },
		func(c *Config) { c.FoVDeg = 0 },
		func(c *Config) { c.SegmentSec = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Epsilon = 1 },
		func(c *Config) { c.FrameRates = nil },
		func(c *Config) { c.FrameRates = []float64{99} },
		func(c *Config) { c.BandwidthWindow = 0 },
		func(c *Config) { c.RateSafety = 0 },
		func(c *Config) { c.AlphaScale = 0 },
		func(c *Config) { c.Viewport.SampleRate = 0 },
		func(c *Config) { c.Weights.Variation = -1 },
	}
	for i, mutate := range muts {
		cfg, err := DefaultConfig(SchemeOurs, power.Pixel3)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRunAllSchemes(t *testing.T) {
	fx := fixture(t)
	for _, scheme := range Schemes() {
		cfg, err := DefaultConfig(scheme, power.Pixel3)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if r.Segments != len(fx.cat.Content) {
			t.Fatalf("%v: streamed %d segments, want %d", scheme, r.Segments, len(fx.cat.Content))
		}
		if r.Energy.Total() <= 0 || r.Energy.Tx <= 0 || r.Energy.Decode <= 0 || r.Energy.Render <= 0 {
			t.Fatalf("%v: non-positive energy %+v", scheme, r.Energy)
		}
		if r.BitsDownloaded <= 0 {
			t.Fatalf("%v: no bits downloaded", scheme)
		}
		if r.MeanQuality < 1 || r.MeanQuality > 5 {
			t.Fatalf("%v: mean quality %g outside [1, 5]", scheme, r.MeanQuality)
		}
		if r.MeanFrameRate <= 0 || r.MeanFrameRate > 30 {
			t.Fatalf("%v: mean frame rate %g outside (0, 30]", scheme, r.MeanFrameRate)
		}
		if r.QoE.MeanQ0 <= 0 || r.QoE.MeanQ0 > 100 {
			t.Fatalf("%v: Q0 %g outside (0, 100]", scheme, r.QoE.MeanQ0)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
	a, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.QoE != b.QoE || a.BitsDownloaded != b.BitsDownloaded {
		t.Fatal("session not deterministic")
	}
}

// TestPaperShapeOrdering is the headline reproduction check on a small
// setup: the paper's qualitative orderings must hold.
func TestPaperShapeOrdering(t *testing.T) {
	fx := fixture(t)
	energy := map[Scheme]float64{}
	qoe := map[Scheme]float64{}
	frameRate := map[Scheme]float64{}
	for _, scheme := range Schemes() {
		cfg, _ := DefaultConfig(scheme, power.Pixel3)
		var e, q, f float64
		n := 0
		for _, u := range fx.eval[:3] {
			r, err := Run(fx.cat, u, fx.trace, cfg)
			if err != nil {
				t.Fatal(err)
			}
			e += r.Energy.Total() / float64(r.Segments)
			q += r.QoE.MeanQ
			f += r.MeanFrameRate
			n++
		}
		energy[scheme] = e / float64(n)
		qoe[scheme] = q / float64(n)
		frameRate[scheme] = f / float64(n)
	}

	// Fig. 9/10 orderings that survive this deliberately small fixture
	// (12 training users → sparser Ptile coverage than the paper's 40, so
	// Ptile-vs-Nontile is checked at full scale in the experiments
	// package): Ours < Ptile < Ftile < Ctile, Nontile < Ctile.
	if !(energy[SchemeOurs] < energy[SchemePtile] &&
		energy[SchemePtile] < energy[SchemeFtile] &&
		energy[SchemeFtile] < energy[SchemeCtile] &&
		energy[SchemeNontile] < energy[SchemeCtile]) {
		t.Fatalf("energy ordering broken: %v", energy)
	}
	// Headline claim: Ours saves a meaningful fraction of Ctile's energy
	// even on the small fixture.
	saving := 1 - energy[SchemeOurs]/energy[SchemeCtile]
	if saving < 0.12 {
		t.Fatalf("Ours energy saving vs Ctile = %.1f%%, want ≥ 12%%", 100*saving)
	}
	// Fig. 11: Ptile and Ours beat Ctile; Nontile is the worst.
	if qoe[SchemePtile] <= qoe[SchemeCtile] {
		t.Fatalf("Ptile QoE %.1f not above Ctile %.1f", qoe[SchemePtile], qoe[SchemeCtile])
	}
	if qoe[SchemeOurs] <= qoe[SchemeCtile] {
		t.Fatalf("Ours QoE %.1f not above Ctile %.1f", qoe[SchemeOurs], qoe[SchemeCtile])
	}
	if qoe[SchemeNontile] >= qoe[SchemeCtile] {
		t.Fatalf("Nontile QoE %.1f should be the worst (Ctile %.1f)", qoe[SchemeNontile], qoe[SchemeCtile])
	}
	// Ours actually reduces the frame rate; everyone else plays at 30 fps.
	if frameRate[SchemeOurs] >= 29 {
		t.Fatalf("Ours mean frame rate %.1f: frame-rate adaptation not engaging", frameRate[SchemeOurs])
	}
	for _, s := range []Scheme{SchemeCtile, SchemeFtile, SchemeNontile, SchemePtile} {
		if frameRate[s] != 30 {
			t.Fatalf("%v mean frame rate %.1f, want 30", s, frameRate[s])
		}
	}
}

func TestRunValidation(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
	if _, err := Run(nil, fx.eval[0], fx.trace, cfg); err == nil {
		t.Fatal("want error for nil catalogue")
	}
	if _, err := Run(fx.cat, nil, fx.trace, cfg); err == nil {
		t.Fatal("want error for nil user")
	}
	if _, err := Run(fx.cat, fx.eval[0], &lte.Trace{IntervalSec: 1}, cfg); err == nil {
		t.Fatal("want error for empty network trace")
	}
	bad := cfg
	bad.SegmentSec = 2
	if _, err := Run(fx.cat, fx.eval[0], fx.trace, bad); err == nil {
		t.Fatal("want error for segment-duration mismatch")
	}
	bad = cfg
	bad.Horizon = 0
	if _, err := Run(fx.cat, fx.eval[0], fx.trace, bad); err == nil {
		t.Fatal("want config validation error")
	}
}

func TestStrictViewportQoELowersQuality(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeCtile, power.Pixel3)
	plain, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StrictViewportQoE = true
	strict, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strict.QoE.MeanQ0 >= plain.QoE.MeanQ0 {
		t.Fatalf("strict viewport QoE (%.1f) should be below delivered QoE (%.1f)",
			strict.QoE.MeanQ0, plain.QoE.MeanQ0)
	}
}

func TestOursNoRebuffering(t *testing.T) {
	// Paper Section V-C2: "Ours does not generate any rebuffering events".
	// With the planning safety margin, stalls should be rare (allow a small
	// tail for bandwidth-drop surprises).
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
	var stalls, segs int
	for _, u := range fx.eval[:3] {
		r, err := Run(fx.cat, u, fx.trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stalls += r.QoE.Stalls
		segs += r.Segments
	}
	if frac := float64(stalls) / float64(segs); frac > 0.08 {
		t.Fatalf("Ours stalls on %.1f%% of segments, want ≤ 8%%", 100*frac)
	}
}

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		SchemeCtile: "Ctile", SchemeFtile: "Ftile", SchemeNontile: "Nontile",
		SchemePtile: "Ptile", SchemeOurs: "Ours",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if Scheme(42).String() == "" {
		t.Fatal("unknown scheme should still print")
	}
}

func TestDecodeSchemeMapping(t *testing.T) {
	want := map[Scheme]power.Scheme{
		SchemeCtile:   power.Ctile,
		SchemeFtile:   power.Ftile,
		SchemeNontile: power.Nontile,
		SchemePtile:   power.PtileScheme,
		SchemeOurs:    power.PtileScheme,
	}
	for s, w := range want {
		if got := s.decodeScheme(); got != w {
			t.Fatalf("%v decode scheme = %v, want %v", s, got, w)
		}
	}
}
