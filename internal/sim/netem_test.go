package sim

import (
	"reflect"
	"sync"
	"testing"

	"ptile360/internal/headtrace"
	"ptile360/internal/netem"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/video"
)

// netemFixture builds a small catalogue and eval users once per test run.
var netemFixture struct {
	once sync.Once
	cat  *Catalog
	eval []*headtrace.Trace
	err  error
}

func netemSetup(t *testing.T) (*Catalog, []*headtrace.Trace) {
	t.Helper()
	netemFixture.once.Do(func() {
		p, err := video.ProfileByID(3)
		if err != nil {
			netemFixture.err = err
			return
		}
		gcfg := headtrace.DefaultGeneratorConfig()
		gcfg.NumUsers = 12
		ds, err := headtrace.Generate(p, gcfg, 99)
		if err != nil {
			netemFixture.err = err
			return
		}
		train, eval, err := ds.SplitTrainEval(9, 5)
		if err != nil {
			netemFixture.err = err
			return
		}
		ccfg, err := DefaultCatalogConfig()
		if err != nil {
			netemFixture.err = err
			return
		}
		cat, err := BuildCatalog(p, train, ccfg)
		if err != nil {
			netemFixture.err = err
			return
		}
		netemFixture.cat, netemFixture.eval = cat, eval
	})
	if netemFixture.err != nil {
		t.Fatal(netemFixture.err)
	}
	return netemFixture.cat, netemFixture.eval
}

func netemPath(t *testing.T, profile string, seed int64) *netem.SessionNet {
	t.Helper()
	p, err := netem.ParseProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := netem.NewSessionNet(netem.SessionConfig{Profile: p, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return pn
}

// TestRunNetemDeterministicReplay pins the tentpole acceptance criterion:
// identical (seed, profile) reproduce bit-identical session outcomes across
// repeated runs and across concurrent workers. Every field of the Result —
// QoE terms, energy split, per-segment traces — must match exactly.
func TestRunNetemDeterministicReplay(t *testing.T) {
	cat, eval := netemSetup(t)
	profiles := []string{"bufferbloat", "suddendrop,capacity=40", "crossflow,loss=0.005"}
	estimators := []predict.EstimatorKind{predict.EstimatorHarmonic, predict.EstimatorDelayGradient}

	type job struct {
		profile string
		kind    predict.EstimatorKind
		user    int
	}
	var jobs []job
	for _, pr := range profiles {
		for _, kind := range estimators {
			for u := 0; u < 3; u++ {
				jobs = append(jobs, job{profile: pr, kind: kind, user: u})
			}
		}
	}

	run := func(j job) (*Result, error) {
		cfg, err := DefaultConfig(SchemeOurs, power.Pixel3)
		if err != nil {
			return nil, err
		}
		cfg.Estimator = j.kind
		cfg.RecordSegments = true
		pn := netemPath(t, j.profile, 1000+int64(j.user))
		return RunNetem(cat, eval[j.user], pn, cfg)
	}

	// Serial reference.
	want := make([]*Result, len(jobs))
	for i, j := range jobs {
		r, err := run(j)
		if err != nil {
			t.Fatalf("serial %+v: %v", j, err)
		}
		want[i] = r
	}

	// Repeat serially, then with 8 concurrent workers; both must match the
	// reference bit for bit.
	for pass, workers := range []int{1, 8} {
		got := make([]*Result, len(jobs))
		errs := make([]error, len(jobs))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				got[i], errs[i] = run(j)
			}(i, j)
		}
		wg.Wait()
		for i, j := range jobs {
			if errs[i] != nil {
				t.Fatalf("pass %d %+v: %v", pass, j, errs[i])
			}
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("pass %d (workers=%d) %+v: session outcome diverged\nwant %+v\ngot  %+v",
					pass, workers, j, want[i].QoE, got[i].QoE)
			}
		}
	}
}

// TestRunNetemDelayGradientGetsPacketFeed checks the estimator actually
// receives packet timing on the netem path: under bufferbloat the
// delay-gradient session must make different decisions than harmonic mean
// (if the feed were dead, both would behave identically on this noiseless
// link).
func TestRunNetemDelayGradientGetsPacketFeed(t *testing.T) {
	cat, eval := netemSetup(t)
	run := func(kind predict.EstimatorKind) *Result {
		cfg, err := DefaultConfig(SchemeOurs, power.Pixel3)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Estimator = kind
		pn := netemPath(t, "bufferbloat", 7)
		r, err := RunNetem(cat, eval[0], pn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	h := run(predict.EstimatorHarmonic)
	dg := run(predict.EstimatorDelayGradient)
	if reflect.DeepEqual(h, dg) {
		t.Fatal("delay-gradient session identical to harmonic: packet feed is dead")
	}
}

// TestStepBatchSkipsNetemStates pins the fingerprint exclusion: netem
// sessions must take the scalar fallback, never group, because their link
// state lives outside the fingerprint words.
func TestStepBatchSkipsNetemStates(t *testing.T) {
	cat, eval := netemSetup(t)
	cfg, err := DefaultConfig(SchemeOurs, power.Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var states []*State
	for u := 0; u < 3; u++ {
		pn := netemPath(t, "stable", 50) // same seed: states look identical
		state, err := st.NewStateNetem(eval[0], pn)
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, state)
	}
	sc := NewBatchScratch(BatchOptions{})
	infos := make([]StepInfo, len(states))
	stats, err := st.StepBatch(sc, states, infos)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replays != 0 {
		t.Fatalf("netem states were batched: %+v", stats)
	}
	if stats.Fallbacks != len(states) {
		t.Fatalf("want %d scalar fallbacks, got %+v", len(states), stats)
	}
	// And the scalar fallbacks must still advance the sessions correctly:
	// identical inputs produce identical outcomes.
	if infos[0] != infos[1] || infos[1] != infos[2] {
		t.Fatalf("identical netem sessions diverged: %+v", infos)
	}
}

// TestRunNetemIdealMatchesUnlimitedTrace sanity-checks the ideal profile:
// downloads complete (effectively) instantly, so the session never stalls
// after startup.
func TestRunNetemIdealMatchesUnlimitedTrace(t *testing.T) {
	cat, eval := netemSetup(t)
	cfg, err := DefaultConfig(SchemeOurs, power.Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	pn := netemPath(t, "ideal", 1)
	r, err := RunNetem(cat, eval[1], pn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.QoE.StallSec > 0 {
		t.Fatalf("ideal link stalled %g s", r.QoE.StallSec)
	}
	if r.Segments != len(cat.Content) {
		t.Fatalf("streamed %d/%d segments", r.Segments, len(cat.Content))
	}
}
