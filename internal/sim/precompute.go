package sim

import (
	"fmt"
	"sync"

	"ptile360/internal/geom"
	"ptile360/internal/ptile"
	"ptile360/internal/video"
)

// This file holds the catalogue's precomputed encoded-size tables: the
// planner's hot loop (segmentPlan and the MPC horizon) used to re-derive the
// same EncoderConfig.TileBits/RegionBits values — including a math.Pow per
// call — for every user, every scheme, and H times per segment through
// horizonPlans. Sizes depend only on (catalogue, encoder config, grid,
// segment duration, frame-rate ladder), so they are computed once per
// catalogue per configuration fingerprint and shared by every session.
//
// Determinism: the tables memoize the exact outputs of the same pure
// function calls the direct path makes, and every consumer sums them in the
// same order, so planning with tables is bit-identical to planning without
// (TestSessionPlanTablesBitIdentical enforces this).

// numQualities is the size of the quality ladder (video.MinQuality..MaxQuality).
const numQualities = int(video.MaxQuality-video.MinQuality) + 1

// disablePlanTables forces sessions onto the direct per-call computation
// path — the serial reference the determinism tests compare the tables
// against. Toggled via export_test.go only.
var disablePlanTables bool

// planKey fingerprints every session-config field the size tables depend
// on. Frame rates are rendered to a string because slices are not
// comparable.
type planKey struct {
	enc        video.EncoderConfig
	grid       struct{ rows, cols int }
	segmentSec float64
	rates      string
}

func planKeyFor(cfg *Config) planKey {
	k := planKey{
		enc:        cfg.Encoder,
		segmentSec: cfg.SegmentSec,
		rates:      fmt.Sprint(cfg.FrameRates),
	}
	k.grid.rows, k.grid.cols = cfg.Grid.Rows, cfg.Grid.Cols
	return k
}

// ptileTable holds one catalogue Ptile's precomputed sizes.
type ptileTable struct {
	// bgBits is the total background-block size at the minimum quality and
	// source frame rate, summed in BackgroundBlocks order.
	bgBits float64
	// bits[v-1][fi] is the Ptile rect's encoded size at quality v and
	// frame rate planTables.rates[fi].
	bits [numQualities][]float64
}

// planTables carries the per-segment size tables for one (catalogue,
// planKey) pair.
type planTables struct {
	// rates is the frame-rate ladder the ptile tables are indexed by.
	rates []float64
	// gridTileBits[k][v-1] is one conventional grid tile's size at quality v
	// and the source frame rate.
	gridTileBits [][numQualities]float64
	// panoramaBits[k][v-1] is the whole panorama's single-encode size.
	panoramaBits [][numQualities]float64
	// ftileBits[k][g][v-1] is Ftile group g's size at quality v.
	ftileBits [][][numQualities]float64
	// ptiles[k][i] are the per-Ptile tables.
	ptiles [][]ptileTable
	// setsOK reports that the coverage masks below were built: the grid fits
	// a geom.TileSet and every catalogue Ftile tile lies on it. When false
	// the planners keep the per-tile predicate paths.
	setsOK bool
	// ptileSets[k][i] is Ptile i's rect-coverage mask (tiles whose centers
	// the rect contains), so the covering-Ptile test is a subset check.
	ptileSets [][]geom.TileSet
	// ftileSets[k][g] is Ftile group g's tile mask.
	ftileSets [][]geom.TileSet
}

// planEntry is one singleflight cache slot: built under its own Once so
// concurrent sessions requesting the same key share one build.
type planEntry struct {
	once sync.Once
	tab  *planTables
	err  error
}

// tablesFor returns the catalogue's size tables for the given session
// configuration, building them at most once per distinct fingerprint.
func (c *Catalog) tablesFor(cfg *Config) (*planTables, error) {
	key := planKeyFor(cfg)
	c.planMu.Lock()
	if c.plans == nil {
		c.plans = make(map[planKey]*planEntry)
	}
	e, ok := c.plans[key]
	if !ok {
		e = &planEntry{}
		c.plans[key] = e
	}
	c.planMu.Unlock()

	e.once.Do(func() {
		e.tab, e.err = c.buildPlanTables(cfg)
	})
	return e.tab, e.err
}

// buildPlanTables computes every size the planners can request, in the same
// call order as the direct path.
func (c *Catalog) buildPlanTables(cfg *Config) (*planTables, error) {
	nSeg := len(c.Content)
	enc := cfg.Encoder
	fm := enc.FrameRate
	tileFrac := 1.0 / float64(cfg.Grid.NumTiles())
	t := &planTables{
		rates:        append([]float64(nil), cfg.FrameRates...),
		gridTileBits: make([][numQualities]float64, nSeg),
		panoramaBits: make([][numQualities]float64, nSeg),
		ftileBits:    make([][][numQualities]float64, nSeg),
		ptiles:       make([][]ptileTable, nSeg),
	}
	t.setsOK = cfg.Grid.SetSupported()
	if t.setsOK {
		// Guard against a catalogue built on a different grid: an out-of-range
		// tile index would corrupt the masks, so any stray tile disables them.
	rangeCheck:
		for k := 0; k < nSeg; k++ {
			for _, g := range c.Ftiles[k] {
				for _, id := range g.Tiles {
					if id.Row < 0 || id.Row >= cfg.Grid.Rows || id.Col < 0 || id.Col >= cfg.Grid.Cols {
						t.setsOK = false
						break rangeCheck
					}
				}
			}
		}
	}
	if t.setsOK {
		t.ptileSets = make([][]geom.TileSet, nSeg)
		t.ftileSets = make([][]geom.TileSet, nSeg)
	}
	for k := 0; k < nSeg; k++ {
		sc := c.Content[k]
		for v := video.MinQuality; v <= video.MaxQuality; v++ {
			gb, err := enc.RegionBits(tileFrac, v, fm, video.KindGrid, cfg.SegmentSec, sc)
			if err != nil {
				return nil, err
			}
			t.gridTileBits[k][int(v)-1] = gb
			pb, err := enc.RegionBits(1, v, fm, video.KindPanorama, cfg.SegmentSec, sc)
			if err != nil {
				return nil, err
			}
			t.panoramaBits[k][int(v)-1] = pb
		}

		groups := c.Ftiles[k]
		t.ftileBits[k] = make([][numQualities]float64, len(groups))
		if t.setsOK {
			t.ftileSets[k] = make([]geom.TileSet, len(groups))
			for gi, g := range groups {
				for _, id := range g.Tiles {
					t.ftileSets[k][gi].Add(cfg.Grid.Index(id))
				}
			}
			t.ptileSets[k] = make([]geom.TileSet, len(c.Ptiles[k]))
			for pi := range c.Ptiles[k] {
				t.ptileSets[k][pi] = cfg.Grid.RectCoverSet(c.Ptiles[k][pi].Rect)
			}
		}
		for gi, g := range groups {
			for v := video.MinQuality; v <= video.MaxQuality; v++ {
				fb, err := enc.RegionBits(g.AreaFrac, v, fm, video.KindFtile, cfg.SegmentSec, sc)
				if err != nil {
					return nil, err
				}
				t.ftileBits[k][gi][int(v)-1] = fb
			}
		}

		t.ptiles[k] = make([]ptileTable, len(c.Ptiles[k]))
		for pi := range c.Ptiles[k] {
			pt := &c.Ptiles[k][pi]
			entry := &t.ptiles[k][pi]
			for _, block := range ptile.BackgroundBlocks(*pt, cfg.Grid) {
				bits, err := enc.TileBits(video.TileSpec{
					Rect: block, Quality: video.MinQuality, Kind: video.KindBlock,
				}, cfg.SegmentSec, sc)
				if err != nil {
					return nil, err
				}
				entry.bgBits += bits
			}
			for v := video.MinQuality; v <= video.MaxQuality; v++ {
				entry.bits[int(v)-1] = make([]float64, len(t.rates))
				for fi, f := range t.rates {
					bits, err := enc.TileBits(video.TileSpec{
						Rect: pt.Rect, Quality: v, FrameRate: f, Kind: video.KindPtile,
					}, cfg.SegmentSec, sc)
					if err != nil {
						return nil, err
					}
					entry.bits[int(v)-1][fi] = bits
				}
			}
		}
	}
	return t, nil
}
