// Package sim runs trace-driven 360° streaming sessions (paper Section V):
// it combines the head-movement traces, the encoder model, the Ptile
// catalogue, the LTE bandwidth trace, the viewport predictor, the ABR
// controllers, the power models and the QoE model into one client-side
// playback loop, and reports the energy and QoE accounting behind
// Figs. 9–11.
package sim

import (
	"fmt"
	"sync"

	"ptile360/internal/cluster"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/parallel"
	"ptile360/internal/ptile"
	"ptile360/internal/video"
)

// FtileGroup is one variable-size tile of the Ftile baseline: a cluster of
// grid tiles encoded together.
type FtileGroup struct {
	// Tiles are the member grid tiles.
	Tiles []geom.TileID
	// AreaFrac is the group's share of the panorama area.
	AreaFrac float64
}

// Catalog is the server-side preparation for one video: per-segment content
// metadata, the Ptile catalogue built from the training users (Section
// IV-A), and the Ftile grouping (Section V-A).
type Catalog struct {
	// Video is the content profile.
	Video video.Profile
	// SegmentSec is the segment duration L.
	SegmentSec float64
	// Content holds per-segment SI/TI/jitter.
	Content []video.SegmentContent
	// Ptiles holds the constructed Ptiles per segment.
	Ptiles [][]ptile.Ptile
	// Ftiles holds the ten variable-size tile groups per segment.
	Ftiles [][]FtileGroup
	// Coverage holds the per-segment training-user coverage fraction
	// (Fig. 7b).
	Coverage []float64

	// planMu guards plans, the lazily built per-configuration encoded-size
	// tables shared by every session streaming this catalogue (see
	// precompute.go). Zero-valued on a fresh catalogue.
	planMu sync.Mutex
	plans  map[planKey]*planEntry
}

// CatalogConfig tunes catalogue construction.
type CatalogConfig struct {
	// Encoder is the encoder model (content series generation).
	Encoder video.EncoderConfig
	// Ptile is the Ptile construction setting.
	Ptile ptile.Config
	// SegmentSec is the segment duration L.
	SegmentSec float64
	// FtileCount is the number of variable-size tiles (10 in the paper).
	FtileCount int
	// Seed drives the deterministic content series and k-means seeding.
	Seed int64
	// Workers bounds the per-segment construction pool (0 = GOMAXPROCS,
	// 1 = serial). The catalogue is bit-identical for any setting: every
	// segment is an independent, seeded computation written to its own slot.
	Workers int
}

// DefaultCatalogConfig returns the paper's evaluation setting.
func DefaultCatalogConfig() (CatalogConfig, error) {
	pcfg, err := ptile.DefaultConfig()
	if err != nil {
		return CatalogConfig{}, err
	}
	return CatalogConfig{
		Encoder:    video.DefaultEncoderConfig(),
		Ptile:      pcfg,
		SegmentSec: 1,
		FtileCount: 10,
		Seed:       1,
	}, nil
}

// BuildCatalog prepares the server-side catalogue for one video from the
// training users' traces.
func BuildCatalog(p video.Profile, train []*headtrace.Trace, cfg CatalogConfig) (*Catalog, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("sim: no training traces")
	}
	if cfg.SegmentSec <= 0 {
		return nil, fmt.Errorf("sim: non-positive segment duration %g", cfg.SegmentSec)
	}
	if cfg.FtileCount <= 0 {
		return nil, fmt.Errorf("sim: non-positive Ftile count %d", cfg.FtileCount)
	}
	if err := cfg.Encoder.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Ptile.Validate(); err != nil {
		return nil, err
	}
	nSeg := p.Segments(cfg.SegmentSec)
	if nSeg == 0 {
		return nil, fmt.Errorf("sim: video %d shorter than one segment", p.ID)
	}
	content, err := p.ContentSeries(nSeg, cfg.Seed, cfg.Encoder)
	if err != nil {
		return nil, err
	}
	cat := &Catalog{
		Video:      p,
		SegmentSec: cfg.SegmentSec,
		Content:    content,
		Ptiles:     make([][]ptile.Ptile, nSeg),
		Ftiles:     make([][]FtileGroup, nSeg),
		Coverage:   make([]float64, nSeg),
	}
	// Segments are independent (per-segment k-means seeding, read-only
	// traces), so they build on a bounded worker pool, each writing only its
	// own slots — the result is bit-identical to the serial loop.
	if err := parallel.ForEach(nSeg, cfg.Workers, func(seg int) error {
		centers := make([]geom.Point, 0, len(train))
		for _, tr := range train {
			pt, err := tr.ViewingCenter(seg, cfg.SegmentSec)
			if err != nil {
				return fmt.Errorf("sim: user %d segment %d: %w", tr.UserID, seg, err)
			}
			centers = append(centers, pt)
		}
		res, err := ptile.BuildSegment(centers, cfg.Ptile)
		if err != nil {
			return fmt.Errorf("sim: Ptile construction segment %d: %w", seg, err)
		}
		cat.Ptiles[seg] = res.Ptiles
		cat.Coverage[seg] = res.CoverageFraction()

		groups, err := buildFtileGroups(centers, cfg.Ptile.Grid, cfg.FtileCount, cfg.Seed+int64(seg))
		if err != nil {
			return fmt.Errorf("sim: Ftile grouping segment %d: %w", seg, err)
		}
		cat.Ftiles[seg] = groups
		return nil
	}); err != nil {
		return nil, err
	}
	return cat, nil
}

// buildFtileGroups clusters the training viewing centers into k groups and
// assigns every grid tile to the nearest group centroid, yielding the
// variable-size tiling of the Ftile baseline.
func buildFtileGroups(centers []geom.Point, grid geom.Grid, k int, seed int64) ([]FtileGroup, error) {
	clusters, err := cluster.KMeans(centers, k, seed)
	if err != nil {
		return nil, err
	}
	if len(clusters) == 0 {
		// No viewers at all: a single group covering everything.
		all := make([]geom.TileID, 0, grid.NumTiles())
		for r := 0; r < grid.Rows; r++ {
			for c := 0; c < grid.Cols; c++ {
				all = append(all, geom.TileID{Row: r, Col: c})
			}
		}
		return []FtileGroup{{Tiles: all, AreaFrac: 1}}, nil
	}
	centroids := make([]geom.Point, len(clusters))
	for i, cl := range clusters {
		centroids[i] = centroidOf(centers, cl.Members)
	}
	groups := make([]FtileGroup, len(clusters))
	tileArea := 1.0 / float64(grid.NumTiles())
	for r := 0; r < grid.Rows; r++ {
		for c := 0; c < grid.Cols; c++ {
			id := geom.TileID{Row: r, Col: c}
			center := grid.TileRect(id).Center()
			best, bestD := 0, geom.Dist(center, centroids[0])
			for j := 1; j < len(centroids); j++ {
				if d := geom.Dist(center, centroids[j]); d < bestD {
					best, bestD = j, d
				}
			}
			groups[best].Tiles = append(groups[best].Tiles, id)
			groups[best].AreaFrac += tileArea
		}
	}
	// Drop empty groups (clusters whose centroid attracted no tiles).
	out := groups[:0]
	for _, g := range groups {
		if len(g.Tiles) > 0 {
			out = append(out, g)
		}
	}
	return out, nil
}

func centroidOf(points []geom.Point, members []int) geom.Point {
	if len(members) == 0 {
		return geom.Point{}
	}
	anchor := points[members[0]]
	var sx, sy float64
	for _, m := range members {
		sx += anchor.X + geom.WrapDeltaX(anchor.X, points[m].X)
		sy += points[m].Y
	}
	n := float64(len(members))
	return geom.Point{X: geom.NormalizeYaw(sx / n), Y: sy / n}
}
