package sim

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ptile360/internal/video"
)

// SegmentTrace is the per-segment record emitted when Config.RecordSegments
// is set: everything needed to plot a session timeline or debug a
// controller decision.
type SegmentTrace struct {
	// Segment is the index within the video.
	Segment int
	// Quality and FrameRate are the chosen version.
	Quality video.Quality
	// FrameRate is in fps.
	FrameRate float64
	// SizeBits is the downloaded payload.
	SizeBits float64
	// ThroughputBps is the measured download throughput.
	ThroughputBps float64
	// BufferSec is the buffer level when the request was issued (after the
	// β wait).
	BufferSec float64
	// Q0 and Q are the segment's perceived quality and Eq. 2 QoE.
	Q0, Q float64
	// StallSec is the rebuffering duration charged to this segment.
	StallSec float64
	// EnergyMJ is the segment's Eq. 1 energy.
	EnergyMJ float64
	// FromPtile reports whether a Ptile served the segment.
	FromPtile bool
	// Emergency reports a stall-accepting fallback decision.
	Emergency bool
	// Retries counts failed download attempts charged to this segment
	// (zero in fault-free trace-driven runs).
	Retries int
	// Degraded reports the segment was served below the controller's
	// chosen rung by the resilience ladder.
	Degraded bool
	// Abandoned reports playback skipped the segment after the resilience
	// ladder was exhausted.
	Abandoned bool
}

// WriteSegmentsCSV serializes per-segment traces as CSV for external
// analysis/plotting.
func WriteSegmentsCSV(w io.Writer, traces []SegmentTrace) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := []string{
		"segment", "quality", "fps", "size_bits", "throughput_bps",
		"buffer_sec", "q0", "q", "stall_sec", "energy_mj", "from_ptile", "emergency",
		"retries", "degraded", "abandoned",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sim: write header: %w", err)
	}
	for _, tr := range traces {
		rec := []string{
			strconv.Itoa(tr.Segment),
			strconv.Itoa(int(tr.Quality)),
			strconv.FormatFloat(tr.FrameRate, 'f', 1, 64),
			strconv.FormatFloat(tr.SizeBits, 'f', 0, 64),
			strconv.FormatFloat(tr.ThroughputBps, 'f', 0, 64),
			strconv.FormatFloat(tr.BufferSec, 'f', 3, 64),
			strconv.FormatFloat(tr.Q0, 'f', 2, 64),
			strconv.FormatFloat(tr.Q, 'f', 2, 64),
			strconv.FormatFloat(tr.StallSec, 'f', 3, 64),
			strconv.FormatFloat(tr.EnergyMJ, 'f', 1, 64),
			strconv.FormatBool(tr.FromPtile),
			strconv.FormatBool(tr.Emergency),
			strconv.Itoa(tr.Retries),
			strconv.FormatBool(tr.Degraded),
			strconv.FormatBool(tr.Abandoned),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sim: write segment %d: %w", tr.Segment, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}
