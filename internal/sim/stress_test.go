package sim

import (
	"testing"

	"ptile360/internal/lte"
	"ptile360/internal/power"
)

// Stress tests: sessions must complete with consistent accounting under
// pathological network conditions, for every scheme.

func constantTrace(bps float64, n int) *lte.Trace {
	tr := &lte.Trace{IntervalSec: 1, Bps: make([]float64, n)}
	for i := range tr.Bps {
		tr.Bps[i] = bps
	}
	return tr
}

func sawtoothTrace(lo, hi float64, n int) *lte.Trace {
	tr := &lte.Trace{IntervalSec: 1, Bps: make([]float64, n)}
	for i := range tr.Bps {
		if i%8 < 4 {
			tr.Bps[i] = hi
		} else {
			tr.Bps[i] = lo
		}
	}
	return tr
}

func assertSane(t *testing.T, r *Result, scheme Scheme) {
	t.Helper()
	if r.Segments == 0 {
		t.Fatalf("%v: no segments streamed", scheme)
	}
	if r.Energy.Tx < 0 || r.Energy.Decode <= 0 || r.Energy.Render <= 0 {
		t.Fatalf("%v: bad energy %+v", scheme, r.Energy)
	}
	if r.BitsDownloaded <= 0 {
		t.Fatalf("%v: no bits downloaded", scheme)
	}
	if r.QoE.MeanQ0 < 0 || r.QoE.MeanQ0 > 100 {
		t.Fatalf("%v: Q0 %g outside [0, 100]", scheme, r.QoE.MeanQ0)
	}
	if r.QoE.Stalls > r.Segments {
		t.Fatalf("%v: more stalls (%d) than segments (%d)", scheme, r.QoE.Stalls, r.Segments)
	}
	if r.ViewportHits > r.Segments || r.PtileSegments > r.Segments {
		t.Fatalf("%v: hit counters exceed segments", scheme)
	}
}

func TestStressStarvationNetwork(t *testing.T) {
	// 500 kbps: nothing fits; every scheme must survive on emergency picks.
	fx := fixture(t)
	net := constantTrace(0.5e6, 400)
	for _, scheme := range Schemes() {
		cfg, _ := DefaultConfig(scheme, power.Pixel3)
		r, err := Run(fx.cat, fx.eval[0], net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		assertSane(t, r, scheme)
		if r.MeanQuality > 1.5 {
			t.Fatalf("%v: mean quality %g on a starved link", scheme, r.MeanQuality)
		}
	}
}

func TestStressOverprovisionedNetwork(t *testing.T) {
	// 100 Mbps: everything fits instantly; top qualities everywhere, no
	// stalls after startup.
	fx := fixture(t)
	net := constantTrace(100e6, 400)
	for _, scheme := range Schemes() {
		cfg, _ := DefaultConfig(scheme, power.Pixel3)
		r, err := Run(fx.cat, fx.eval[0], net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		assertSane(t, r, scheme)
		if r.MeanQuality < 4.4 {
			t.Fatalf("%v: mean quality %g on a 100 Mbps link", scheme, r.MeanQuality)
		}
		if r.QoE.Stalls > 0 {
			t.Fatalf("%v: %d stalls on a 100 Mbps link", scheme, r.QoE.Stalls)
		}
	}
}

func TestStressSawtoothNetwork(t *testing.T) {
	// Violent 1↔10 Mbps oscillation: controllers must adapt without error
	// and with bounded stalling.
	fx := fixture(t)
	net := sawtoothTrace(1e6, 10e6, 400)
	for _, scheme := range Schemes() {
		cfg, _ := DefaultConfig(scheme, power.Pixel3)
		r, err := Run(fx.cat, fx.eval[0], net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		assertSane(t, r, scheme)
		if frac := float64(r.QoE.Stalls) / float64(r.Segments); frac > 0.5 {
			t.Fatalf("%v: stalls on %.0f%% of segments", scheme, 100*frac)
		}
	}
}

func TestStressEveryEvalUserEveryScheme(t *testing.T) {
	// Exhaustive small sweep: all eval users × all schemes on the standard
	// trace, checking accounting invariants everywhere.
	fx := fixture(t)
	for _, scheme := range Schemes() {
		cfg, _ := DefaultConfig(scheme, power.Pixel3)
		cfg.RecordSegments = true
		for _, user := range fx.eval {
			r, err := Run(fx.cat, user, fx.trace, cfg)
			if err != nil {
				t.Fatalf("%v user %d: %v", scheme, user.UserID, err)
			}
			assertSane(t, r, scheme)
			// Per-segment records must reconcile with totals.
			var bits float64
			for _, tr := range r.PerSegment {
				bits += tr.SizeBits
			}
			if diff := bits - r.BitsDownloaded; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%v user %d: per-segment bits %g != total %g", scheme, user.UserID, bits, r.BitsDownloaded)
			}
		}
	}
}

func TestStressAllPhones(t *testing.T) {
	fx := fixture(t)
	for _, phone := range power.Phones() {
		for _, scheme := range []Scheme{SchemeCtile, SchemeOurs} {
			cfg, _ := DefaultConfig(scheme, phone)
			r, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", phone, scheme, err)
			}
			assertSane(t, r, scheme)
		}
	}
}

func TestStressQoEMPCController(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
	cfg.UseQoEMPC = true
	qoeRes, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSane(t, qoeRes, SchemeOurs)
	cfg.UseQoEMPC = false
	energyRes, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The objective swap: QoE-max must not beat energy-min on energy.
	if energyRes.Energy.Total() > qoeRes.Energy.Total()+1 {
		t.Fatalf("energy MPC (%g mJ) spends more than QoE MPC (%g mJ)",
			energyRes.Energy.Total(), qoeRes.Energy.Total())
	}
	// The QoE controller only drops frames when the Eq. 4 factor saturates
	// to exactly 1.0 (a free tie); it must play at least as fast as the
	// energy controller on average.
	if qoeRes.MeanFrameRate < energyRes.MeanFrameRate {
		t.Fatalf("QoE MPC frame rate %g below energy MPC %g",
			qoeRes.MeanFrameRate, energyRes.MeanFrameRate)
	}
}

func TestVersionHysteresis(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
	base, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.VersionHysteresis = true
	hyst, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSane(t, hyst, SchemeOurs)
	// The guarded hysteresis may smooth quality but must stay within a
	// modest energy band of the default controller.
	ratio := hyst.Energy.Total() / base.Energy.Total()
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("hysteresis energy ratio %g outside [0.9, 1.15]", ratio)
	}
	// And it cannot worsen quality variation.
	if hyst.QoE.MeanVariation > base.QoE.MeanVariation+1 {
		t.Fatalf("hysteresis raised I_v: %g vs %g", hyst.QoE.MeanVariation, base.QoE.MeanVariation)
	}
}
