package sim

import (
	"bytes"
	"strings"
	"testing"

	"ptile360/internal/power"
	"ptile360/internal/predict"
)

func TestRecordSegments(t *testing.T) {
	fx := fixture(t)
	cfg, err := DefaultConfig(SchemeOurs, power.Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RecordSegments = true
	res, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSegment) != res.Segments {
		t.Fatalf("recorded %d traces for %d segments", len(res.PerSegment), res.Segments)
	}
	var energy, bits float64
	for i, tr := range res.PerSegment {
		if tr.Segment != i {
			t.Fatalf("trace %d has segment index %d", i, tr.Segment)
		}
		if tr.Quality < 1 || tr.Quality > 5 || tr.FrameRate <= 0 || tr.SizeBits <= 0 {
			t.Fatalf("malformed trace: %+v", tr)
		}
		if tr.BufferSec < 0 || tr.ThroughputBps <= 0 {
			t.Fatalf("malformed trace: %+v", tr)
		}
		energy += tr.EnergyMJ
		bits += tr.SizeBits
	}
	// Per-segment records must reconcile with the session totals.
	if diff := energy - res.Energy.Total(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("per-segment energy %g != session total %g", energy, res.Energy.Total())
	}
	if diff := bits - res.BitsDownloaded; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("per-segment bits %g != session total %g", bits, res.BitsDownloaded)
	}
}

func TestRecordSegmentsOffByDefault(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeCtile, power.Pixel3)
	res, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerSegment != nil {
		t.Fatal("PerSegment should be nil when recording is off")
	}
}

func TestWriteSegmentsCSV(t *testing.T) {
	fx := fixture(t)
	cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
	cfg.RecordSegments = true
	res, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSegmentsCSV(&buf, res.PerSegment); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != res.Segments+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), res.Segments+1)
	}
	if !strings.HasPrefix(lines[0], "segment,quality,fps") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 14 {
			t.Fatalf("row %q has %d commas, want 14", line, got)
		}
	}
}

func TestEstimatorKindsRun(t *testing.T) {
	// Every estimator family must drive a session to completion with sane
	// accounting (the relative stall behaviour is workload-dependent and is
	// explored by BenchmarkAblationBandwidthEstimator, not asserted here).
	fx := fixture(t)
	for _, kind := range []struct {
		name string
		k    int
	}{
		{"harmonic", 1}, {"last-sample", 2}, {"ewma", 3}, {"moving-average", 4},
	} {
		cfg, _ := DefaultConfig(SchemeOurs, power.Pixel3)
		cfg.Estimator = estimatorKindFromInt(kind.k)
		res, err := Run(fx.cat, fx.eval[0], fx.trace, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind.name, err)
		}
		if res.Segments != len(fx.cat.Content) || res.Energy.Total() <= 0 {
			t.Fatalf("%s: malformed result", kind.name)
		}
		if res.QoE.Stalls > res.Segments/4 {
			t.Fatalf("%s: %d stalls over %d segments", kind.name, res.QoE.Stalls, res.Segments)
		}
	}
}

// estimatorKindFromInt maps 1..4 to the predict estimator kinds without
// importing the package constants into the test table literal.
func estimatorKindFromInt(k int) predict.EstimatorKind { return predict.EstimatorKind(k) }
