package sim

import (
	"fmt"
	"reflect"
	"testing"

	"ptile360/internal/power"
)

// newBatchDiffStates builds a mixed fleet of session states over the shared
// fixture: three replicas of each eval viewer (replicas are the lockstep
// groups the batch planner should collapse) with the replicas staggered to
// different segment offsets so the batch always holds heterogeneous
// progress.
func newBatchDiffStates(t *testing.T, st *Stepper) []*State {
	t.Helper()
	fx := fixture(t)
	var states []*State
	for _, user := range fx.eval[:4] {
		for rep := 0; rep < 3; rep++ {
			state, err := st.NewState(user, fx.trace)
			if err != nil {
				t.Fatal(err)
			}
			// Stagger replica 2 by one pre-step so the batch mixes segment
			// indices; replicas 0 and 1 stay lockstep from segment 0.
			if rep == 2 {
				if _, err := st.Step(state); err != nil {
					t.Fatal(err)
				}
			}
			states = append(states, state)
		}
	}
	return states
}

func batchDiffConfig(t *testing.T, scheme Scheme, qoeMPC bool) Config {
	t.Helper()
	cfg, err := DefaultConfig(scheme, power.Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseQoEMPC = qoeMPC
	cfg.RecordSegments = true
	return cfg
}

// TestStepBatchMatchesStep pins the batched planner bit-identical to the
// scalar path: for every scheme (both Ours controllers), both quantization
// modes, every StepInfo and every settled Result must match exactly —
// floats compared by bits, per-segment traces by deep equality.
func TestStepBatchMatchesStep(t *testing.T) {
	fx := fixture(t)
	cases := []struct {
		name   string
		scheme Scheme
		qoeMPC bool
	}{
		{"ptile", SchemePtile, false},
		{"ctile", SchemeCtile, false},
		{"ours-energy", SchemeOurs, false},
		{"ours-qoe", SchemeOurs, true},
	}
	for _, tc := range cases {
		for _, noQuant := range []bool{false, true} {
			name := fmt.Sprintf("%s/quant=%v", tc.name, !noQuant)
			t.Run(name, func(t *testing.T) {
				cfg := batchDiffConfig(t, tc.scheme, tc.qoeMPC)
				batched, err := NewStepper(fx.cat, cfg)
				if err != nil {
					t.Fatal(err)
				}
				scalar, err := NewStepper(fx.cat, cfg)
				if err != nil {
					t.Fatal(err)
				}
				bStates := newBatchDiffStates(t, batched)
				sStates := newBatchDiffStates(t, scalar)

				sc := NewBatchScratch(BatchOptions{NoQuant: noQuant})
				var total BatchStats
				bInfos := make([]StepInfo, len(bStates))
				for tick := 0; ; tick++ {
					var live []*State
					var ref []*State
					for i, s := range bStates {
						if s.Segment() < batched.Segments() {
							live = append(live, s)
							ref = append(ref, sStates[i])
						}
					}
					if len(live) == 0 {
						break
					}
					stats, err := batched.StepBatch(sc, live, bInfos[:len(live)])
					if err != nil {
						t.Fatalf("tick %d: StepBatch: %v", tick, err)
					}
					total.Leaders += stats.Leaders
					total.Replays += stats.Replays
					total.Fallbacks += stats.Fallbacks
					for i, rs := range ref {
						want, err := scalar.Step(rs)
						if err != nil {
							t.Fatalf("tick %d: scalar Step: %v", tick, err)
						}
						if bInfos[i] != want {
							t.Fatalf("tick %d session %d: StepInfo diverged\nbatch:  %+v\nscalar: %+v",
								tick, i, bInfos[i], want)
						}
					}
				}
				if total.Replays == 0 {
					t.Fatalf("batch never shared work: %+v", total)
				}
				if total.Fallbacks != 0 {
					t.Fatalf("unexpected scalar fallbacks: %+v", total)
				}
				for i := range bStates {
					br, err := batched.Finish(bStates[i])
					if err != nil {
						t.Fatal(err)
					}
					sr, err := scalar.Finish(sStates[i])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(br, sr) {
						t.Fatalf("session %d: batched Result != scalar Result\nbatch:  %+v\nscalar: %+v", i, br, sr)
					}
				}
			})
		}
	}
}

// TestStepBatchFallback forces the no-fingerprint fallback and checks the
// batch still advances every session bit-identically through scalar steps.
func TestStepBatchFallback(t *testing.T) {
	fx := fixture(t)
	cfg := batchDiffConfig(t, SchemeOurs, false)
	batched, err := NewStepper(fx.cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewStepper(fx.cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bStates := newBatchDiffStates(t, batched)
	sStates := newBatchDiffStates(t, scalar)

	batchFingerprintDisabled = true
	defer func() { batchFingerprintDisabled = false }()

	sc := NewBatchScratch(BatchOptions{})
	infos := make([]StepInfo, len(bStates))
	stats, err := batched.StepBatch(sc, bStates, infos)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks != len(bStates) || stats.Leaders != 0 || stats.Replays != 0 {
		t.Fatalf("want all-fallback stats, got %+v", stats)
	}
	for i, rs := range sStates {
		want, err := scalar.Step(rs)
		if err != nil {
			t.Fatal(err)
		}
		if infos[i] != want {
			t.Fatalf("session %d: fallback StepInfo diverged: %+v vs %+v", i, infos[i], want)
		}
	}
}

// TestStepBatchValidation covers the argument contract.
func TestStepBatchValidation(t *testing.T) {
	fx := fixture(t)
	cfg := batchDiffConfig(t, SchemePtile, false)
	st, err := NewStepper(fx.cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	state, err := st.NewState(fx.eval[0], fx.trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.StepBatch(NewBatchScratch(BatchOptions{}), []*State{state}, nil); err == nil {
		t.Fatal("want error for mismatched infos length")
	}
	if _, err := st.StepBatch(nil, []*State{state}, make([]StepInfo, 1)); err == nil {
		t.Fatal("want error for nil scratch")
	}
}
