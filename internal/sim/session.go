package sim

import (
	"fmt"

	"ptile360/internal/abr"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/netem"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/qoe"
	"ptile360/internal/video"
	"ptile360/internal/vmaf"
)

// Scheme identifies the evaluated streaming approach (Section V-A).
type Scheme int

// Evaluated schemes.
const (
	// SchemeCtile is conventional fixed 4×8 tiling with multiple decoders.
	SchemeCtile Scheme = iota + 1
	// SchemeFtile is the fixed-count variable-size tiling baseline.
	SchemeFtile
	// SchemeNontile downloads the whole panorama at one quality.
	SchemeNontile
	// SchemePtile downloads Ptiles at the source frame rate (the "Ptile"
	// variant of Ours).
	SchemePtile
	// SchemeOurs is the full energy-efficient QoE-aware algorithm with
	// frame-rate adaptation.
	SchemeOurs
)

// Schemes lists all evaluated schemes in presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeCtile, SchemeFtile, SchemeNontile, SchemePtile, SchemeOurs}
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeCtile:
		return "Ctile"
	case SchemeFtile:
		return "Ftile"
	case SchemeNontile:
		return "Nontile"
	case SchemePtile:
		return "Ptile"
	case SchemeOurs:
		return "Ours"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// decodeScheme maps a streaming scheme to its Table I decode pipeline.
func (s Scheme) decodeScheme() power.Scheme {
	switch s {
	case SchemeFtile:
		return power.Ftile
	case SchemeNontile:
		return power.Nontile
	case SchemePtile, SchemeOurs:
		return power.PtileScheme
	default:
		return power.Ctile
	}
}

// Config tunes one streaming session.
type Config struct {
	// Scheme selects the approach under evaluation.
	Scheme Scheme
	// Phone selects the Table I power model.
	Phone power.Phone
	// Encoder is the encoder model (must match the catalogue's).
	Encoder video.EncoderConfig
	// Grid is the conventional tile grid.
	Grid geom.Grid
	// FoVDeg is the device field of view (100° in the paper).
	FoVDeg float64
	// SegmentSec is the segment duration L.
	SegmentSec float64
	// BufferCapSec is the playback buffer threshold β (3 s in the paper).
	BufferCapSec float64
	// Horizon is the MPC look-ahead H.
	Horizon int
	// Epsilon is the QoE-loss tolerance of constraint (8c).
	Epsilon float64
	// FrameRates are the available encoded frame rates for Ours
	// (the paper constructs {0, 10, 20, 30}% reductions).
	FrameRates []float64
	// BandwidthWindow is the bandwidth-estimator window.
	BandwidthWindow int
	// Estimator selects the bandwidth-estimator family; the zero value means
	// the paper's harmonic mean.
	Estimator predict.EstimatorKind
	// Viewport is the ridge-regression predictor setting.
	Viewport predict.ViewportConfig
	// Weights are the QoE weights (ω_v, ω_r).
	Weights qoe.Weights
	// RateSafety is the rate-based baseline's buffer-budget factor.
	RateSafety float64
	// QoECoeffs are the Eq. 3 coefficients (Table II).
	QoECoeffs vmaf.Coefficients
	// AlphaScale is the κ in α = κ·S_fov/TI (Eq. 4). The paper leaves the
	// effective scale of S_fov unspecified; κ is calibrated so the
	// controller's average QoE expenditure sits near the ε boundary, which
	// reproduces the published Ours-vs-Ptile gaps (≈20 % energy for ≤5 %
	// QoE, Figs. 9c/11c).
	AlphaScale float64
	// StrictViewportQoE blends the perceived quality down by the fraction of
	// the actually-viewed FoV left uncovered at high quality. The paper's
	// evaluation scores delivered segment quality (its rebuffering and
	// background-quality machinery handles viewing-interest changes), so
	// this is off by default; it exists for the viewport-sensitivity
	// ablation.
	StrictViewportQoE bool
	// RecordSegments fills Result.PerSegment with a per-segment trace for
	// timeline analysis (see WriteSegmentsCSV).
	RecordSegments bool
	// VersionHysteresis keeps the previous (v, f) version when it remains
	// feasible, within the ε quality floor, and within a few percent of the
	// fresh optimum's energy — trading a little energy for smoother quality
	// (lower I_v). Off by default: the paper's controller re-optimizes every
	// segment.
	VersionHysteresis bool
	// UseQoEMPC swaps Ours' energy-minimizing controller for the
	// QoE-maximizing MPC it descends from (Yin et al. [24]) — the
	// objective-swap ablation. Ignored for the baseline schemes.
	UseQoEMPC bool
}

// DefaultConfig returns the paper's evaluation setting for the given scheme
// and phone.
func DefaultConfig(scheme Scheme, phone power.Phone) (Config, error) {
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Scheme:          scheme,
		Phone:           phone,
		Encoder:         video.DefaultEncoderConfig(),
		Grid:            grid,
		FoVDeg:          100,
		SegmentSec:      1,
		BufferCapSec:    3,
		Horizon:         5,
		Epsilon:         0.05,
		BandwidthWindow: 5,
		Viewport:        predict.DefaultViewportConfig(),
		Weights:         qoe.DefaultWeights(),
		RateSafety:      0.9,
		QoECoeffs:       vmaf.TableII(),
		AlphaScale:      6.0,
	}
	if scheme == SchemeOurs {
		// {0, 10, 20, 30}% frame-rate reductions of the 30 fps source.
		cfg.FrameRates = []float64{30, 27, 24, 21}
	} else {
		cfg.FrameRates = []float64{cfg.Encoder.FrameRate}
	}
	return cfg, nil
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Scheme < SchemeCtile || c.Scheme > SchemeOurs {
		return fmt.Errorf("sim: unknown scheme %d", int(c.Scheme))
	}
	if err := c.Encoder.Validate(); err != nil {
		return err
	}
	if c.Grid.Rows <= 0 || c.Grid.Cols <= 0 {
		return fmt.Errorf("sim: invalid grid")
	}
	if c.FoVDeg <= 0 || c.FoVDeg > 180 {
		return fmt.Errorf("sim: FoV %g outside (0, 180]", c.FoVDeg)
	}
	if c.SegmentSec <= 0 || c.BufferCapSec <= 0 {
		return fmt.Errorf("sim: non-positive timing (L %g, β %g)", c.SegmentSec, c.BufferCapSec)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("sim: non-positive horizon %d", c.Horizon)
	}
	if c.Epsilon < 0 || c.Epsilon >= 1 {
		return fmt.Errorf("sim: epsilon %g outside [0, 1)", c.Epsilon)
	}
	if len(c.FrameRates) == 0 {
		return fmt.Errorf("sim: no frame rates")
	}
	for _, f := range c.FrameRates {
		if f <= 0 || f > c.Encoder.FrameRate {
			return fmt.Errorf("sim: frame rate %g outside (0, %g]", f, c.Encoder.FrameRate)
		}
	}
	if c.BandwidthWindow <= 0 {
		return fmt.Errorf("sim: non-positive bandwidth window %d", c.BandwidthWindow)
	}
	if c.RateSafety <= 0 || c.RateSafety > 1 {
		return fmt.Errorf("sim: rate safety %g outside (0, 1]", c.RateSafety)
	}
	if c.AlphaScale <= 0 {
		return fmt.Errorf("sim: non-positive alpha scale %g", c.AlphaScale)
	}
	if err := c.Viewport.Validate(); err != nil {
		return err
	}
	return c.Weights.Validate()
}

// EnergyBreakdown accumulates Eq. 1 energy in mJ.
type EnergyBreakdown struct {
	Tx, Decode, Render float64
}

// Total returns the summed energy.
func (e EnergyBreakdown) Total() float64 { return e.Tx + e.Decode + e.Render }

// Result reports one streaming session.
type Result struct {
	// Scheme and Phone identify the configuration.
	Scheme Scheme
	Phone  power.Phone
	// VideoID and UserID identify the trace pair.
	VideoID, UserID int
	// Segments is the number of segments streamed.
	Segments int
	// Energy is the session's Eq. 1 energy.
	Energy EnergyBreakdown
	// QoE is the Eq. 2 session summary.
	QoE qoe.SessionSummary
	// BitsDownloaded is the total downloaded volume.
	BitsDownloaded float64
	// MeanQuality is the average chosen quality level.
	MeanQuality float64
	// MeanFrameRate is the average chosen frame rate.
	MeanFrameRate float64
	// PtileSegments counts segments served from a Ptile (vs fallback).
	PtileSegments int
	// ViewportHits counts segments whose actually-viewed area was fully
	// covered at the chosen quality.
	ViewportHits int
	// Emergencies counts segments downloaded in emergency (stall-accepting)
	// mode.
	Emergencies int
	// PerSegment holds the per-segment timeline when Config.RecordSegments
	// is set; nil otherwise.
	PerSegment []SegmentTrace
}

// session is the shared per-worker workspace behind both Run and the
// resumable Stepper: the (catalogue, config) runtime plus the recycled
// planning scratch, with the per-session fields swapped in around each
// step (see step.go).
type session struct {
	cfg        Config
	cat        *Catalog
	user       *headtrace.Trace
	net        *lte.Trace
	pnet       *netem.SessionNet
	pm         power.Model
	mpc        *abr.EnergyMPC
	qoeMPC     *abr.QoEMPC
	rate       *abr.RateBased
	bw         predict.Estimator
	tab        *planTables
	lut        *geom.FoVLUT
	vp         *predict.ViewportPredictor
	planBufs   []segmentPlan
	optBufs    [][]abr.OptionMeta
	horizonBuf []abr.SegmentMeta
	// decCache, when set by a batch step, memoizes MPC decisions across the
	// group leaders of one planning tick (see batch.go); nil on the scalar
	// path.
	decCache *abr.DecisionCache
	// rec, when set, receives the step's delta record for follower replay
	// (see batch.go); nil on the scalar path.
	rec        *stepDelta
	xs, ys     []float64
	fm         float64
	tWall      float64
	buffer     float64
	prevQ0     float64
	hasPrevQ0  bool
	prevChoice abr.Option
	hasPrev    bool
}

// Run streams the whole video for one evaluation user and returns the
// session accounting. It is the blocking-loop form of the resumable
// Stepper/State API: one stepper, one state, stepped to completion.
func Run(cat *Catalog, user *headtrace.Trace, net *lte.Trace, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cat == nil || len(cat.Content) == 0 {
		return nil, fmt.Errorf("sim: empty catalogue")
	}
	if user == nil || len(user.Samples) == 0 {
		return nil, fmt.Errorf("sim: empty user trace")
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	st, err := NewStepper(cat, cfg)
	if err != nil {
		return nil, err
	}
	state, err := st.NewState(user, net)
	if err != nil {
		return nil, err
	}
	for {
		info, err := st.Step(state)
		if err != nil {
			return nil, err
		}
		if info.Done {
			break
		}
	}
	return st.Finish(state)
}

// RunNetem is Run over the packet-level emulated network path: downloads
// resolve through pn's droptail link schedule instead of a per-second
// trace, and delay-aware estimators receive packet timing. pn must be
// fresh (its link clock starts at the session origin).
func RunNetem(cat *Catalog, user *headtrace.Trace, pn *netem.SessionNet, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cat == nil || len(cat.Content) == 0 {
		return nil, fmt.Errorf("sim: empty catalogue")
	}
	if user == nil || len(user.Samples) == 0 {
		return nil, fmt.Errorf("sim: empty user trace")
	}
	st, err := NewStepper(cat, cfg)
	if err != nil {
		return nil, err
	}
	state, err := st.NewStateNetem(user, pn)
	if err != nil {
		return nil, err
	}
	for {
		info, err := st.Step(state)
		if err != nil {
			return nil, err
		}
		if info.Done {
			break
		}
	}
	return st.Finish(state)
}

// predictViewport estimates the viewing center for segment k's playback
// midpoint from the head-movement history available at request time.
func (s *session) predictViewport(k int) geom.Point {
	// Playback position: seconds of video already watched.
	played := float64(k)*s.cfg.SegmentSec - s.buffer
	if played < 0 {
		played = 0
	}
	idx := int(played * headtrace.SampleRate)
	if idx < 2 {
		return geom.PointOf(s.user.Samples[0].O)
	}
	if idx > len(s.xs) {
		idx = len(s.xs)
	}
	horizon := (float64(k)+0.5)*s.cfg.SegmentSec - played
	if horizon < 0 {
		horizon = 0
	}
	// Cap the extrapolation horizon: a linear slope extrapolated several
	// buffer-lengths ahead overshoots wildly; beyond ~1 s the user's current
	// region is the better predictor (the buffer is small, Section IV-B).
	if horizon > 1 {
		horizon = 1
	}
	if s.vp == nil {
		return geom.PointOf(s.user.Samples[idx-1].O)
	}
	p, err := s.vp.Predict(s.xs[:idx], s.ys[:idx], horizon)
	if err != nil {
		return geom.PointOf(s.user.Samples[idx-1].O)
	}
	return p
}

// recentSwitchingSpeed estimates S_fov from the most recently played
// segment, using the within-segment peak (see SegmentPeakSpeed): the Eq. 4
// blurred-vision tolerance applies when the segment contains a fast switch.
func (s *session) recentSwitchingSpeed(k int) float64 {
	if k == 0 {
		return 0
	}
	sp, err := s.user.SegmentPeakSpeed(k-1, s.cfg.SegmentSec)
	if err != nil {
		return 0
	}
	return sp
}

// bestQuality returns the highest perceived quality among the options.
func bestQuality(options []abr.OptionMeta) float64 {
	var best float64
	for _, o := range options {
		if o.PerceivedQuality > best {
			best = o.PerceivedQuality
		}
	}
	return best
}

// applyHysteresis returns the previous segment's (v, f) version when it is
// offered, downloads safely, still satisfies the ε QoE floor against the
// best currently downloadable version (so it cannot ratchet quality down),
// and costs at most a few percent more energy than the DP's fresh choice.
func (s *session) applyHysteresis(options []abr.OptionMeta, chosen abr.OptionMeta, rateEst float64) abr.OptionMeta {
	const margin = 1.03
	var qMax float64
	for _, o := range options {
		if o.SizeBits/rateEst <= s.buffer && o.PerceivedQuality > qMax {
			qMax = o.PerceivedQuality
		}
	}
	for _, o := range options {
		if o.Option != s.prevChoice {
			continue
		}
		if o.SizeBits/rateEst > s.buffer {
			return chosen
		}
		if o.PerceivedQuality < (1-s.cfg.Epsilon)*qMax {
			return chosen
		}
		prevCost := s.pm.Tx*o.SizeBits/rateEst + o.ProcPowerMW*s.cfg.SegmentSec
		chosenCost := s.pm.Tx*chosen.SizeBits/rateEst + chosen.ProcPowerMW*s.cfg.SegmentSec
		if prevCost <= chosenCost*margin {
			return o
		}
		return chosen
	}
	return chosen
}
