package power

import (
	"fmt"

	"ptile360/internal/mat"
	"ptile360/internal/stats"
)

// Monsoon simulates the Monsoon power-monitor measurement rig of Fig. 3: it
// supplies a device-under-test whose true power follows a Table I model and
// returns noisy samples, from which FitLinear re-derives the model — the
// pipeline that produced Table I in the paper.
type Monsoon struct {
	model Model
	noise float64
	rng   *stats.RNG
}

// NewMonsoon returns a monitor for the given phone. noiseMW is the sampling
// noise standard deviation in mW (real Monsoon traces show a few mW of
// jitter after averaging).
func NewMonsoon(phone Phone, noiseMW float64, seed int64) (*Monsoon, error) {
	if noiseMW < 0 {
		return nil, fmt.Errorf("power: negative noise %g", noiseMW)
	}
	m, err := TableI(phone)
	if err != nil {
		return nil, err
	}
	return &Monsoon{model: m, noise: noiseMW, rng: stats.NewRNG(seed)}, nil
}

// MeasureTx samples the transmission power once.
func (mo *Monsoon) MeasureTx() float64 {
	return mo.rng.Normal(mo.model.Tx, mo.noise)
}

// MeasureDecode samples the decode power of the given scheme at frame rate f.
func (mo *Monsoon) MeasureDecode(scheme Scheme, f float64) (float64, error) {
	dec, ok := mo.model.Decode[scheme]
	if !ok {
		return 0, fmt.Errorf("power: no decode model for scheme %v", scheme)
	}
	return mo.rng.Normal(dec.At(f), mo.noise), nil
}

// MeasureRender samples the render power at frame rate f.
func (mo *Monsoon) MeasureRender(f float64) float64 {
	return mo.rng.Normal(mo.model.Render.At(f), mo.noise)
}

// FitLinear recovers an affine power model P(f) = a + b·f from paired
// (frame-rate, power) samples by ordinary least squares, as the paper did to
// produce Table I.
func FitLinear(frameRates, powers []float64) (Linear, error) {
	if len(frameRates) != len(powers) {
		return Linear{}, fmt.Errorf("power: %d frame rates vs %d powers", len(frameRates), len(powers))
	}
	if len(frameRates) < 2 {
		return Linear{}, fmt.Errorf("power: need at least 2 samples, got %d", len(frameRates))
	}
	design := mat.New(len(frameRates), 2)
	for i, f := range frameRates {
		design.Set(i, 0, 1)
		design.Set(i, 1, f)
	}
	coef, err := mat.LeastSquares(design, powers)
	if err != nil {
		return Linear{}, fmt.Errorf("power: fit failed: %w", err)
	}
	return Linear{Base: coef[0], Slope: coef[1]}, nil
}

// ReproduceTableI runs the full measurement campaign for one phone: for each
// decode scheme and the render path, it sweeps frame rates, collects
// samplesPer samples per point from the Monsoon simulator, and fits the
// affine models. The result should match Table I within the noise level.
func ReproduceTableI(phone Phone, frameRates []float64, samplesPer int, noiseMW float64, seed int64) (Model, error) {
	if len(frameRates) < 2 {
		return Model{}, fmt.Errorf("power: need at least 2 frame rates, got %d", len(frameRates))
	}
	if samplesPer <= 0 {
		return Model{}, fmt.Errorf("power: non-positive samples per point %d", samplesPer)
	}
	mo, err := NewMonsoon(phone, noiseMW, seed)
	if err != nil {
		return Model{}, err
	}
	out := Model{Phone: phone, Decode: make(map[Scheme]Linear, len(Schemes()))}

	// Transmission power is frame-rate independent: average repeated samples.
	var txSum float64
	n := samplesPer * len(frameRates)
	for i := 0; i < n; i++ {
		txSum += mo.MeasureTx()
	}
	out.Tx = txSum / float64(n)

	for _, scheme := range Schemes() {
		var fs, ps []float64
		for _, f := range frameRates {
			for s := 0; s < samplesPer; s++ {
				p, err := mo.MeasureDecode(scheme, f)
				if err != nil {
					return Model{}, err
				}
				fs = append(fs, f)
				ps = append(ps, p)
			}
		}
		fit, err := FitLinear(fs, ps)
		if err != nil {
			return Model{}, fmt.Errorf("power: decode fit for %v: %w", scheme, err)
		}
		out.Decode[scheme] = fit
	}

	var fs, ps []float64
	for _, f := range frameRates {
		for s := 0; s < samplesPer; s++ {
			fs = append(fs, f)
			ps = append(ps, mo.MeasureRender(f))
		}
	}
	fit, err := FitLinear(fs, ps)
	if err != nil {
		return Model{}, fmt.Errorf("power: render fit: %w", err)
	}
	out.Render = fit
	return out, nil
}
