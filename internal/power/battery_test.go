package power

import (
	"math"
	"testing"
	"time"
)

func TestBatteriesCoverAllPhones(t *testing.T) {
	for _, phone := range Phones() {
		b, err := BatteryFor(phone)
		if err != nil {
			t.Fatalf("%v: %v", phone, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%v: %v", phone, err)
		}
	}
	if _, err := BatteryFor(Phone(99)); err == nil {
		t.Fatal("want error for unknown phone")
	}
}

func TestDrainPercent(t *testing.T) {
	b := Battery{CapacityMWh: 10000}
	// 36000 mJ = 10 mWh = 0.1% of 10000 mWh.
	got, err := b.DrainPercent(36000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("drain = %g%%, want 0.1%%", got)
	}
	if _, err := b.DrainPercent(-1); err == nil {
		t.Fatal("want error for negative energy")
	}
	if _, err := (Battery{}).DrainPercent(1); err == nil {
		t.Fatal("want error for zero-capacity battery")
	}
}

func TestLifetime(t *testing.T) {
	b := Battery{CapacityMWh: 2000}
	// 2000 mWh at 1000 mW = 2 hours.
	d, err := b.Lifetime(1000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2*time.Hour {
		t.Fatalf("lifetime = %v, want 2h", d)
	}
	if _, err := b.Lifetime(0); err == nil {
		t.Fatal("want error for zero power")
	}
}

// TestSessionDrainRealism sanity-checks the headline motivation: a
// ten-minute 360° session on a Pixel 3 should drain a single-digit share of
// the battery, with Ours draining less than Ctile.
func TestSessionDrainRealism(t *testing.T) {
	b, err := BatteryFor(Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	// Per-segment energies in the measured range (EXPERIMENTS.md): Ctile
	// ≈2.7 J, Ours ≈1.9 J per 1 s segment; 600 segments = 10 minutes.
	ctile, err := b.DrainPercent(2700 * 600)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := b.DrainPercent(1900 * 600)
	if err != nil {
		t.Fatal(err)
	}
	if ctile < 1 || ctile > 10 {
		t.Fatalf("Ctile 10-min drain %g%% outside the plausible single-digit band", ctile)
	}
	if ours >= ctile {
		t.Fatal("Ours must drain less than Ctile")
	}
}
