package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIValues(t *testing.T) {
	// Spot-check published coefficients for each phone.
	p3, err := TableI(Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Tx != 1429.08 {
		t.Fatalf("Pixel3 Tx = %g", p3.Tx)
	}
	if d := p3.Decode[PtileScheme]; d.Base != 140.73 || d.Slope != 5.96 {
		t.Fatalf("Pixel3 Ptile decode = %+v", d)
	}
	if p3.Render.Base != 57.76 || p3.Render.Slope != 4.19 {
		t.Fatalf("Pixel3 render = %+v", p3.Render)
	}
	n5, err := TableI(Nexus5X)
	if err != nil {
		t.Fatal(err)
	}
	if d := n5.Decode[Ctile]; d.Base != 1160.41 || d.Slope != 16.53 {
		t.Fatalf("Nexus5X Ctile decode = %+v", d)
	}
	s20, err := TableI(GalaxyS20)
	if err != nil {
		t.Fatal(err)
	}
	if d := s20.Decode[Nontile]; d.Base != 305.55 || d.Slope != 11.41 {
		t.Fatalf("GalaxyS20 Nontile decode = %+v", d)
	}
	if _, err := TableI(Phone(99)); err == nil {
		t.Fatal("want error for unknown phone")
	}
}

func TestDecodePowerOrdering(t *testing.T) {
	// At the source frame rate, every phone must satisfy the paper's central
	// power ordering: Ptile < Nontile < Ftile < Ctile.
	for _, phone := range Phones() {
		m, err := TableI(phone)
		if err != nil {
			t.Fatal(err)
		}
		f := 30.0
		pt := m.Decode[PtileScheme].At(f)
		nt := m.Decode[Nontile].At(f)
		ft := m.Decode[Ftile].At(f)
		ct := m.Decode[Ctile].At(f)
		if !(pt < nt && nt < ft && ft < ct) {
			t.Fatalf("%v: decode power ordering broken: Ptile %g, Nontile %g, Ftile %g, Ctile %g", phone, pt, nt, ft, ct)
		}
	}
}

func TestLinearAt(t *testing.T) {
	l := Linear{Base: 100, Slope: 5}
	if got := l.At(30); got != 250 {
		t.Fatalf("At(30) = %g, want 250", got)
	}
}

func TestSegmentEnergyEq1(t *testing.T) {
	m, _ := TableI(Pixel3)
	// 2 Mbit at 4 Mbps → 0.5 s of radio: Et = 1429.08 · 0.5.
	e, err := m.Segment(PtileScheme, 2e6, 4e6, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Tx-1429.08*0.5) > 1e-9 {
		t.Fatalf("Tx energy = %g", e.Tx)
	}
	wantDec := (140.73 + 5.96*30) * 1.0
	if math.Abs(e.Decode-wantDec) > 1e-9 {
		t.Fatalf("decode energy = %g, want %g", e.Decode, wantDec)
	}
	wantRen := (57.76 + 4.19*30) * 1.0
	if math.Abs(e.Render-wantRen) > 1e-9 {
		t.Fatalf("render energy = %g, want %g", e.Render, wantRen)
	}
	if math.Abs(e.Total()-(e.Tx+e.Decode+e.Render)) > 1e-12 {
		t.Fatal("Total is not the sum of parts")
	}
}

func TestSegmentValidation(t *testing.T) {
	m, _ := TableI(Pixel3)
	cases := []struct {
		size, rate, f, dur float64
	}{
		{-1, 4e6, 30, 1},
		{1e6, 0, 30, 1},
		{1e6, 4e6, 0, 1},
		{1e6, 4e6, 30, 0},
	}
	for i, c := range cases {
		if _, err := m.Segment(PtileScheme, c.size, c.rate, c.f, c.dur); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := m.Segment(Scheme(42), 1e6, 4e6, 30, 1); err == nil {
		t.Fatal("want error for unknown scheme")
	}
}

// Property: lowering frame rate never increases any energy component.
func TestSegmentEnergyMonotoneInFrameRate(t *testing.T) {
	m, _ := TableI(GalaxyS20)
	check := func(fRaw float64) bool {
		f := 10 + math.Mod(math.Abs(fRaw), 19) // [10, 29]
		lo, err1 := m.Segment(PtileScheme, 1e6, 4e6, f, 1)
		hi, err2 := m.Segment(PtileScheme, 1e6, 4e6, 30, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return lo.Decode <= hi.Decode && lo.Render <= hi.Render && lo.Tx == hi.Tx
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonsoonMeasurements(t *testing.T) {
	mo, err := NewMonsoon(Pixel3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += mo.MeasureTx()
	}
	if m := sum / float64(n); math.Abs(m-1429.08) > 1 {
		t.Fatalf("Tx sample mean = %g, want ≈1429.08", m)
	}
	if _, err := mo.MeasureDecode(Scheme(42), 30); err == nil {
		t.Fatal("want error for unknown scheme")
	}
	if _, err := NewMonsoon(Pixel3, -1, 1); err == nil {
		t.Fatal("want error for negative noise")
	}
	if _, err := NewMonsoon(Phone(42), 1, 1); err == nil {
		t.Fatal("want error for unknown phone")
	}
}

func TestFitLinearRecoversModel(t *testing.T) {
	fs := []float64{10, 20, 30}
	ps := make([]float64, len(fs))
	truth := Linear{Base: 140, Slope: 6}
	for i, f := range fs {
		ps[i] = truth.At(f)
	}
	fit, err := FitLinear(fs, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Base-truth.Base) > 1e-9 || math.Abs(fit.Slope-truth.Slope) > 1e-9 {
		t.Fatalf("fit = %+v, want %+v", fit, truth)
	}
}

func TestFitLinearValidation(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Fatal("want error for single sample")
	}
}

// TestReproduceTableI is the Table I experiment: fitted coefficients must
// match the published models within tight tolerances.
func TestReproduceTableI(t *testing.T) {
	frameRates := []float64{21, 24, 27, 30}
	for _, phone := range Phones() {
		truth, _ := TableI(phone)
		fitted, err := ReproduceTableI(phone, frameRates, 50, 8, 42)
		if err != nil {
			t.Fatalf("%v: %v", phone, err)
		}
		if math.Abs(fitted.Tx-truth.Tx) > 2 {
			t.Fatalf("%v: Tx fitted %g, want %g", phone, fitted.Tx, truth.Tx)
		}
		for _, scheme := range Schemes() {
			ft, tr := fitted.Decode[scheme], truth.Decode[scheme]
			if math.Abs(ft.Base-tr.Base) > 15 || math.Abs(ft.Slope-tr.Slope) > 0.6 {
				t.Fatalf("%v/%v: fitted %+v, want %+v", phone, scheme, ft, tr)
			}
		}
		if math.Abs(fitted.Render.Base-truth.Render.Base) > 15 ||
			math.Abs(fitted.Render.Slope-truth.Render.Slope) > 0.6 {
			t.Fatalf("%v: render fitted %+v, want %+v", phone, fitted.Render, truth.Render)
		}
	}
}

func TestReproduceTableIValidation(t *testing.T) {
	if _, err := ReproduceTableI(Pixel3, []float64{30}, 10, 1, 1); err == nil {
		t.Fatal("want error for single frame rate")
	}
	if _, err := ReproduceTableI(Pixel3, []float64{20, 30}, 0, 1, 1); err == nil {
		t.Fatal("want error for zero samples")
	}
}

func TestStringers(t *testing.T) {
	if Pixel3.String() != "Pixel 3" || Phone(9).String() == "" {
		t.Fatal("Phone.String misbehaves")
	}
	if PtileScheme.String() != "Ptile" || Scheme(9).String() == "" {
		t.Fatal("Scheme.String misbehaves")
	}
}
