// Package power implements the paper's power and energy models (Section
// III-B): the Table I per-phone models for data transmission, video decoding
// and view rendering, the Eq. 1 segment energy accounting, and a simulated
// Monsoon-monitor measurement pipeline that re-derives the Table I
// coefficients by linear regression over noisy samples.
//
// Units: power in mW, energy in mJ (mW·s), sizes in bits, rates in bits/s,
// frame rates in fps.
package power

import "fmt"

// Phone identifies one of the measured devices.
type Phone int

// Measured phones (Table I).
const (
	Nexus5X Phone = iota + 1
	Pixel3
	GalaxyS20
)

// Phones lists every measured device.
func Phones() []Phone { return []Phone{Nexus5X, Pixel3, GalaxyS20} }

// String implements fmt.Stringer.
func (p Phone) String() string {
	switch p {
	case Nexus5X:
		return "Nexus 5X"
	case Pixel3:
		return "Pixel 3"
	case GalaxyS20:
		return "Galaxy S20"
	default:
		return fmt.Sprintf("Phone(%d)", int(p))
	}
}

// Scheme identifies the tiling scheme, which determines the decoding
// pipeline and hence the decode power model.
type Scheme int

// Tiling schemes (Table I decode rows). Ours shares the Ptile pipeline: it
// also downloads one Ptile and uses a single decoder.
const (
	Ctile Scheme = iota + 1
	Ftile
	Nontile
	PtileScheme
)

// Schemes lists every scheme with a Table I decode model.
func Schemes() []Scheme { return []Scheme{Ctile, Ftile, Nontile, PtileScheme} }

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Ctile:
		return "Ctile"
	case Ftile:
		return "Ftile"
	case Nontile:
		return "Nontile"
	case PtileScheme:
		return "Ptile"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Linear is an affine power model P(f) = Base + Slope·f with f the frame
// rate in fps and P in mW.
type Linear struct {
	Base, Slope float64
}

// At evaluates the model at frame rate f.
func (l Linear) At(f float64) float64 { return l.Base + l.Slope*f }

// Model bundles a phone's full Table I power model.
type Model struct {
	// Phone is the measured device.
	Phone Phone
	// Tx is the data-transmission power in mW (frame-rate independent).
	Tx float64
	// Decode maps each tiling scheme to its decode power model P_d(f).
	Decode map[Scheme]Linear
	// Render is the view-rendering power model P_r(f).
	Render Linear
}

// TableI returns the published power model for the given phone
// (paper Table I).
func TableI(p Phone) (Model, error) {
	switch p {
	case Nexus5X:
		return Model{
			Phone: p,
			Tx:    1709.12,
			Decode: map[Scheme]Linear{
				Ctile:       {Base: 1160.41, Slope: 16.53},
				Ftile:       {Base: 832.45, Slope: 15.31},
				Nontile:     {Base: 447.17, Slope: 14.51},
				PtileScheme: {Base: 210.65, Slope: 5.55},
			},
			Render: Linear{Base: 79.46, Slope: 11.74},
		}, nil
	case Pixel3:
		return Model{
			Phone: p,
			Tx:    1429.08,
			Decode: map[Scheme]Linear{
				Ctile:       {Base: 574.89, Slope: 15.46},
				Ftile:       {Base: 386.45, Slope: 13.23},
				Nontile:     {Base: 209.92, Slope: 10.95},
				PtileScheme: {Base: 140.73, Slope: 5.96},
			},
			Render: Linear{Base: 57.76, Slope: 4.19},
		}, nil
	case GalaxyS20:
		return Model{
			Phone: p,
			Tx:    1527.39,
			Decode: map[Scheme]Linear{
				Ctile:       {Base: 798.99, Slope: 16.49},
				Ftile:       {Base: 658.41, Slope: 14.69},
				Nontile:     {Base: 305.55, Slope: 11.41},
				PtileScheme: {Base: 152.72, Slope: 6.13},
			},
			Render: Linear{Base: 108.21, Slope: 3.98},
		}, nil
	default:
		return Model{}, fmt.Errorf("power: unknown phone %d", int(p))
	}
}

// SegmentEnergy is the Eq. 1 decomposition of one segment's energy in mJ.
type SegmentEnergy struct {
	// Tx is the data-transmission energy E_t = P_t · S/R.
	Tx float64
	// Decode is the decoding energy E_d = P_d(f) · L.
	Decode float64
	// Render is the rendering energy E_r = P_r(f) · L.
	Render float64
}

// Total returns E_t + E_d + E_r.
func (e SegmentEnergy) Total() float64 { return e.Tx + e.Decode + e.Render }

// Segment computes the Eq. 1 energy of downloading and playing one segment:
// sizeBits downloaded at rateBps, decoded with the scheme's pipeline at
// frame rate f, over a segment of durationSec seconds.
func (m Model) Segment(scheme Scheme, sizeBits, rateBps, f, durationSec float64) (SegmentEnergy, error) {
	if sizeBits < 0 {
		return SegmentEnergy{}, fmt.Errorf("power: negative segment size %g", sizeBits)
	}
	if rateBps <= 0 {
		return SegmentEnergy{}, fmt.Errorf("power: non-positive bandwidth %g", rateBps)
	}
	if f <= 0 {
		return SegmentEnergy{}, fmt.Errorf("power: non-positive frame rate %g", f)
	}
	if durationSec <= 0 {
		return SegmentEnergy{}, fmt.Errorf("power: non-positive duration %g", durationSec)
	}
	dec, ok := m.Decode[scheme]
	if !ok {
		return SegmentEnergy{}, fmt.Errorf("power: no decode model for scheme %v on %v", scheme, m.Phone)
	}
	return SegmentEnergy{
		Tx:     m.Tx * sizeBits / rateBps,
		Decode: dec.At(f) * durationSec,
		Render: m.Render.At(f) * durationSec,
	}, nil
}
