package power

import (
	"fmt"
	"time"
)

// Battery converts Eq. 1 session energy into user-facing battery figures —
// the terms the paper's motivation is phrased in.
type Battery struct {
	// CapacityMWh is the full-charge energy in milliwatt-hours.
	CapacityMWh float64
}

// Batteries returns the nominal battery of each measured phone
// (capacity = rated mAh × nominal 3.85 V).
func Batteries() map[Phone]Battery {
	return map[Phone]Battery{
		Nexus5X:   {CapacityMWh: 2700 * 3.85},
		Pixel3:    {CapacityMWh: 2915 * 3.85},
		GalaxyS20: {CapacityMWh: 4000 * 3.85},
	}
}

// BatteryFor returns the nominal battery for the given phone.
func BatteryFor(p Phone) (Battery, error) {
	b, ok := Batteries()[p]
	if !ok {
		return Battery{}, fmt.Errorf("power: no battery data for phone %d", int(p))
	}
	return b, nil
}

// Validate reports whether the battery is usable.
func (b Battery) Validate() error {
	if b.CapacityMWh <= 0 {
		return fmt.Errorf("power: non-positive battery capacity %g", b.CapacityMWh)
	}
	return nil
}

// DrainPercent returns the share of a full charge (in percent) consumed by
// the given energy in mJ (1 mWh = 3600 mJ).
func (b Battery) DrainPercent(energyMJ float64) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if energyMJ < 0 {
		return 0, fmt.Errorf("power: negative energy %g", energyMJ)
	}
	return energyMJ / 3600 / b.CapacityMWh * 100, nil
}

// Lifetime returns how long a full charge sustains the given average power
// draw in mW.
func (b Battery) Lifetime(avgPowerMW float64) (time.Duration, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if avgPowerMW <= 0 {
		return 0, fmt.Errorf("power: non-positive power %g", avgPowerMW)
	}
	hours := b.CapacityMWh / avgPowerMW
	return time.Duration(hours * float64(time.Hour)), nil
}
