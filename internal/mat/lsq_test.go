package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestLeastSquaresExactLine(t *testing.T) {
	// y = 3 + 2x fitted from noiseless points must recover coefficients.
	xs := []float64{0, 1, 2, 3, 4}
	design := New(len(xs), 2)
	y := make([]float64, len(xs))
	for i, x := range xs {
		design.Set(i, 0, 1)
		design.Set(i, 1, x)
		y[i] = 3 + 2*x
	}
	coef, err := LeastSquares(design, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEqual(coef[0], 3, 1e-9) || !almostEqual(coef[1], 2, 1e-9) {
		t.Fatalf("coef = %v, want [3 2]", coef)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	design := New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		design.Set(i, 0, 1)
		design.Set(i, 1, x)
		y[i] = 5 - 1.5*x + rng.NormFloat64()*0.1
	}
	coef, err := LeastSquares(design, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEqual(coef[0], 5, 0.05) || !almostEqual(coef[1], -1.5, 0.02) {
		t.Fatalf("coef = %v, want ≈[5 -1.5]", coef)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	// With collinear-ish predictors, larger λ must shrink the solution norm.
	rng := rand.New(rand.NewSource(3))
	n := 60
	design := New(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		design.Set(i, 0, 1)
		design.Set(i, 1, x)
		design.Set(i, 2, x+rng.NormFloat64()*0.001) // nearly collinear
		y[i] = 4 * x
	}
	norm := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	}
	small, err := RidgeLeastSquares(design, y, 1e-6)
	if err != nil {
		t.Fatalf("ridge small: %v", err)
	}
	big, err := RidgeLeastSquares(design, y, 10)
	if err != nil {
		t.Fatalf("ridge big: %v", err)
	}
	if norm(big) >= norm(small) {
		t.Fatalf("ridge with λ=10 (‖x‖=%g) not smaller than λ=1e-6 (‖x‖=%g)", norm(big), norm(small))
	}
}

func TestRidgeRejectsNegativeLambda(t *testing.T) {
	design := Identity(2)
	if _, err := RidgeLeastSquares(design, []float64{1, 2}, -1); err == nil {
		t.Fatal("want error for negative lambda")
	}
}

func TestRidgeShapeMismatch(t *testing.T) {
	design := Identity(3)
	if _, err := RidgeLeastSquares(design, []float64{1, 2}, 0); err == nil {
		t.Fatal("want shape error")
	}
}

func TestLevenbergMarquardtExponential(t *testing.T) {
	// Fit y = a·exp(b·x) from clean synthetic data.
	xs := make([]float64, 40)
	y := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i) / 10
		y[i] = 2.5 * math.Exp(-0.8*xs[i])
	}
	model := func(p []float64, i int) float64 { return p[0] * math.Exp(p[1]*xs[i]) }
	res, err := LevenbergMarquardt(model, y, []float64{1, -0.1}, LMOptions{})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if !almostEqual(res.Params[0], 2.5, 1e-4) || !almostEqual(res.Params[1], -0.8, 1e-4) {
		t.Fatalf("params = %v, want [2.5 -0.8]", res.Params)
	}
	if res.RSS > 1e-8 {
		t.Fatalf("RSS = %g, want ~0", res.RSS)
	}
}

func TestLevenbergMarquardtLogistic(t *testing.T) {
	// The exact shape of the paper's Eq. 3: Q = 100 / (1 + exp(-(c1+c2·u))).
	rng := rand.New(rand.NewSource(11))
	n := 200
	us := make([]float64, n)
	y := make([]float64, n)
	c1, c2 := -0.4, 0.9
	for i := 0; i < n; i++ {
		us[i] = rng.Float64()*8 - 4
		y[i] = 100/(1+math.Exp(-(c1+c2*us[i]))) + rng.NormFloat64()*0.2
	}
	model := func(p []float64, i int) float64 {
		return 100 / (1 + math.Exp(-(p[0] + p[1]*us[i])))
	}
	res, err := LevenbergMarquardt(model, y, []float64{0, 0.1}, LMOptions{})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if !almostEqual(res.Params[0], c1, 0.05) || !almostEqual(res.Params[1], c2, 0.05) {
		t.Fatalf("params = %v, want ≈[%g %g]", res.Params, c1, c2)
	}
}

func TestLevenbergMarquardtInputValidation(t *testing.T) {
	model := func(p []float64, i int) float64 { return p[0] }
	if _, err := LevenbergMarquardt(model, nil, []float64{1}, LMOptions{}); err == nil {
		t.Fatal("want error for no observations")
	}
	if _, err := LevenbergMarquardt(model, []float64{1}, nil, LMOptions{}); err == nil {
		t.Fatal("want error for empty params")
	}
	if _, err := LevenbergMarquardt(model, []float64{1}, []float64{1, 2}, LMOptions{}); err == nil {
		t.Fatal("want error for underdetermined fit")
	}
}

func TestLevenbergMarquardtRespectsMaxIter(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	y := []float64{1, 2.7, 7.4, 20}
	model := func(p []float64, i int) float64 { return math.Exp(p[0] * xs[i]) }
	res, err := LevenbergMarquardt(model, y, []float64{0.1}, LMOptions{MaxIter: 2})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if res.Iterations > 2 {
		t.Fatalf("iterations = %d, want ≤ 2", res.Iterations)
	}
}
