package mat

import (
	"fmt"
	"math"
)

// LeastSquares solves min_x ‖A·x − y‖² via the normal equations AᵀA·x = Aᵀy.
// A has one row per observation and one column per coefficient.
func LeastSquares(a *Matrix, y []float64) ([]float64, error) {
	return RidgeLeastSquares(a, y, 0)
}

// RidgeLeastSquares solves min_x ‖A·x − y‖² + λ‖x‖² via
// (AᵀA + λI)·x = Aᵀy. λ = 0 reduces to ordinary least squares. λ > 0
// regularizes ill-conditioned designs, which is why the paper uses ridge
// regression for viewport prediction (Section IV-B).
func RidgeLeastSquares(a *Matrix, y []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("mat: negative ridge penalty %g", lambda)
	}
	penalties := make([]float64, a.cols)
	for i := range penalties {
		penalties[i] = lambda
	}
	return RidgeLeastSquaresPenalized(a, y, penalties)
}

// RidgeLeastSquaresPenalized solves min_x ‖A·x − y‖² + Σⱼ pⱼ·xⱼ² with one
// penalty per coefficient. A zero penalty leaves that coefficient
// unregularized — the usual treatment for intercept terms.
func RidgeLeastSquaresPenalized(a *Matrix, y []float64, penalties []float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d vs %d observations", ErrShape, a.rows, a.cols, len(y))
	}
	if len(penalties) != a.cols {
		return nil, fmt.Errorf("%w: %d penalties for %d coefficients", ErrShape, len(penalties), a.cols)
	}
	for j, p := range penalties {
		if p < 0 {
			return nil, fmt.Errorf("mat: negative ridge penalty %g for coefficient %d", p, j)
		}
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.rows; i++ {
		ata.Set(i, i, ata.At(i, i)+penalties[i])
	}
	aty, err := at.MulVec(y)
	if err != nil {
		return nil, err
	}
	x, err := Cholesky(ata, aty)
	if err != nil {
		// The normal equations can lose definiteness numerically; fall back to
		// the pivoted solver before reporting failure.
		return Solve(ata, aty)
	}
	return x, nil
}

// ResidualFunc evaluates a model at parameter vector p for observation i and
// returns the predicted value.
type ResidualFunc func(p []float64, i int) float64

// LMOptions configures LevenbergMarquardt.
type LMOptions struct {
	// MaxIter bounds the number of outer iterations. Zero means 200.
	MaxIter int
	// Tol is the relative improvement threshold for convergence. Zero means 1e-10.
	Tol float64
	// InitialLambda is the starting damping factor. Zero means 1e-3.
	InitialLambda float64
}

// LMResult reports the outcome of a Levenberg–Marquardt fit.
type LMResult struct {
	// Params is the fitted parameter vector.
	Params []float64
	// RSS is the final residual sum of squares.
	RSS float64
	// Iterations is the number of iterations performed.
	Iterations int
	// Converged reports whether the relative-improvement tolerance was met
	// before MaxIter.
	Converged bool
}

// LevenbergMarquardt fits parameters p to minimize Σᵢ (model(p, i) − y[i])²
// using the Levenberg–Marquardt algorithm with a numerically differentiated
// Jacobian. It is the Go equivalent of MATLAB's nlinfit used by the paper to
// fit the Q₀ model (Section III-C1).
func LevenbergMarquardt(model ResidualFunc, y, p0 []float64, opts LMOptions) (*LMResult, error) {
	if len(y) == 0 {
		return nil, fmt.Errorf("mat: no observations")
	}
	if len(p0) == 0 {
		return nil, fmt.Errorf("mat: empty initial parameter vector")
	}
	if len(y) < len(p0) {
		return nil, fmt.Errorf("mat: %d observations cannot determine %d parameters", len(y), len(p0))
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-10
	}
	lambda := opts.InitialLambda
	if lambda == 0 {
		lambda = 1e-3
	}

	n, m := len(y), len(p0)
	p := make([]float64, m)
	copy(p, p0)

	residuals := func(p []float64) []float64 {
		r := make([]float64, n)
		for i := 0; i < n; i++ {
			r[i] = model(p, i) - y[i]
		}
		return r
	}
	rss := func(r []float64) float64 {
		var s float64
		for _, v := range r {
			s += v * v
		}
		return s
	}

	r := residuals(p)
	cost := rss(r)
	res := &LMResult{}

	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		// Numerical Jacobian: J[i][j] = ∂model(p, i)/∂p[j].
		jac := New(n, m)
		for j := 0; j < m; j++ {
			h := 1e-6 * math.Max(math.Abs(p[j]), 1e-3)
			pj := p[j]
			p[j] = pj + h
			for i := 0; i < n; i++ {
				jac.Set(i, j, (model(p, i)-(r[i]+y[i]))/h)
			}
			p[j] = pj
		}
		jt := jac.T()
		jtj, err := jt.Mul(jac)
		if err != nil {
			return nil, err
		}
		jtr, err := jt.MulVec(r)
		if err != nil {
			return nil, err
		}

		improved := false
		for attempt := 0; attempt < 30; attempt++ {
			damped := jtj.Clone()
			for i := 0; i < m; i++ {
				damped.Set(i, i, damped.At(i, i)*(1+lambda))
			}
			neg := make([]float64, m)
			for i, v := range jtr {
				neg[i] = -v
			}
			step, err := Solve(damped, neg)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, m)
			for i := range p {
				trial[i] = p[i] + step[i]
			}
			tr := residuals(trial)
			tc := rss(tr)
			if tc < cost {
				rel := (cost - tc) / math.Max(cost, 1e-30)
				p, r, cost = trial, tr, tc
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < tol {
					res.Converged = true
				}
				break
			}
			lambda *= 10
		}
		if !improved || res.Converged {
			res.Converged = res.Converged || !improved
			break
		}
	}
	res.Params = p
	res.RSS = cost
	return res, nil
}
