package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewPanicsOnInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", m.At(1, 0))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]float64{{2, -1, 0}, {4, 3, 1}, {0, 5, 2}})
	id := Identity(3)
	left, err := id.Mul(a)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	right, err := a.Mul(id)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if left.At(i, j) != a.At(i, j) || right.At(i, j) != a.At(i, j) {
				t.Fatalf("identity product mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulShapes(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulKnownProduct(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("product(%d,%d) = %g, want %g", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	check := func(vals [4]float64) bool {
		m, _ := FromRows([][]float64{{vals[0], vals[1]}, {vals[2], vals[3]}})
		tt := m.T().T()
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0, 2}, {-1, 3, 1}})
	got, err := m.MulVec([]float64{3, 1, 2})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	want := []float64{7, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMulVecShape(t *testing.T) {
	m := New(2, 3)
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAddScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Scale(2)
	s, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if s.At(1, 1) != 12 {
		t.Fatalf("Add+Scale: got %g, want 12", s.At(1, 1))
	}
	// Ensure a was not mutated.
	if a.At(1, 1) != 4 {
		t.Fatalf("Add mutated receiver: %g", a.At(1, 1))
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	a := New(2, 3)
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square: want ErrShape, got %v", err)
	}
	sq := Identity(2)
	if _, err := Solve(sq, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("rhs mismatch: want ErrShape, got %v", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != 1 || b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestCholeskySPD(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := Cholesky(a, []float64{10, 9})
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	// Verify a·x = b.
	b, _ := a.MulVec(x)
	if !almostEqual(b[0], 10, 1e-9) || !almostEqual(b[1], 9, 1e-9) {
		t.Fatalf("a·x = %v, want [10 9]", b)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := Cholesky(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// Property: for random well-conditioned SPD systems, Solve and Cholesky agree.
func TestSolveCholeskyAgree(t *testing.T) {
	check := func(p, q, r float64) bool {
		// Build SPD matrix BᵀB + I from arbitrary B.
		b, _ := FromRows([][]float64{{p, q}, {q, r}})
		bt := b.T()
		spd, _ := bt.Mul(b)
		for i := 0; i < 2; i++ {
			spd.Set(i, i, spd.At(i, i)+1)
		}
		rhs := []float64{p + 1, r - 1}
		x1, err1 := Solve(spd, rhs)
		x2, err2 := Cholesky(spd, rhs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(x1[0], x2[0], 1e-6) && almostEqual(x1[1], x2[1], 1e-6)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a, b, c float64) bool {
		// Constrain magnitudes to keep conditioning sane.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(math.Abs(v), 10)
		}
		return check(clamp(a), clamp(b), clamp(c))
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
