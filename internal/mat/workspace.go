package mat

import (
	"fmt"
	"math"
)

// RidgeWorkspace holds the scratch buffers for repeated
// RidgeLeastSquaresPenalized solves of one design shape, so per-solve
// allocation drops to zero on the hot MPC/predictor path. Every intermediate
// is computed with the same loops in the same order as the allocating path,
// so the solutions are bit-identical.
//
// A workspace is not safe for concurrent use, and the slice returned by
// Solve aliases the workspace: callers must consume (or copy) it before the
// next Solve call.
type RidgeWorkspace struct {
	rows, cols int
	at         *Matrix // cols×rows transpose
	ata        *Matrix // cols×cols normal matrix
	aty        []float64
	l          *Matrix // Cholesky factor
	y          []float64
	x          []float64
}

// NewRidgeWorkspace returns a workspace for rows×cols designs.
func NewRidgeWorkspace(rows, cols int) *RidgeWorkspace {
	return &RidgeWorkspace{
		rows: rows,
		cols: cols,
		at:   New(cols, rows),
		ata:  New(cols, cols),
		aty:  make([]float64, cols),
		l:    New(cols, cols),
		y:    make([]float64, cols),
		x:    make([]float64, cols),
	}
}

// Solve computes RidgeLeastSquaresPenalized(a, y, penalties) into the
// workspace buffers. a must be rows×cols as declared at construction. The
// returned slice is owned by the workspace and overwritten by the next call.
func (w *RidgeWorkspace) Solve(a *Matrix, y, penalties []float64) ([]float64, error) {
	if a.rows != w.rows || a.cols != w.cols {
		return nil, fmt.Errorf("%w: design %dx%d in %dx%d workspace", ErrShape, a.rows, a.cols, w.rows, w.cols)
	}
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d vs %d observations", ErrShape, a.rows, a.cols, len(y))
	}
	if len(penalties) != a.cols {
		return nil, fmt.Errorf("%w: %d penalties for %d coefficients", ErrShape, len(penalties), a.cols)
	}
	for j, p := range penalties {
		if p < 0 {
			return nil, fmt.Errorf("mat: negative ridge penalty %g for coefficient %d", p, j)
		}
	}
	// Aᵀ — same element placement as T().
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			w.at.Set(j, i, a.At(i, j))
		}
	}
	// AᵀA — the Mul loop (i, k with skip-zero, j) verbatim, accumulating into
	// a zeroed buffer so the additions happen in the identical order.
	for i := range w.ata.data {
		w.ata.data[i] = 0
	}
	for i := 0; i < w.at.rows; i++ {
		for k := 0; k < w.at.cols; k++ {
			v := w.at.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < a.cols; j++ {
				w.ata.data[i*w.ata.cols+j] += v * a.At(k, j)
			}
		}
	}
	for i := 0; i < w.ata.rows; i++ {
		w.ata.Set(i, i, w.ata.At(i, i)+penalties[i])
	}
	// Aᵀy — the MulVec loop verbatim.
	for i := 0; i < w.at.rows; i++ {
		var s float64
		row := w.at.data[i*w.at.cols : (i+1)*w.at.cols]
		for j, v := range row {
			s += v * y[j]
		}
		w.aty[i] = s
	}
	if err := w.choleskyInto(); err != nil {
		// Same degenerate-path fallback as the allocating solver.
		return Solve(w.ata, w.aty)
	}
	return w.x, nil
}

// choleskyInto is Cholesky(w.ata, w.aty) into the workspace factor and
// solution buffers, loop-for-loop identical to the allocating version.
func (w *RidgeWorkspace) choleskyInto() error {
	n := w.ata.rows
	for i := range w.l.data {
		w.l.data[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := w.ata.At(i, j)
			for k := 0; k < j; k++ {
				s -= w.l.At(i, k) * w.l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return fmt.Errorf("%w: non-positive diagonal %g at %d", ErrSingular, s, i)
				}
				w.l.Set(i, i, math.Sqrt(s))
			} else {
				w.l.Set(i, j, s/w.l.At(j, j))
			}
		}
	}
	for i := 0; i < n; i++ {
		s := w.aty[i]
		for k := 0; k < i; k++ {
			s -= w.l.At(i, k) * w.y[k]
		}
		w.y[i] = s / w.l.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		s := w.y[i]
		for k := i + 1; k < n; k++ {
			s -= w.l.At(k, i) * w.x[k]
		}
		w.x[i] = s / w.l.At(i, i)
	}
	return nil
}
