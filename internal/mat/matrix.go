// Package mat provides the small dense linear-algebra kernel used across
// ptile360: matrix arithmetic, linear solvers, ordinary and ridge least
// squares, and Levenberg–Marquardt nonlinear least squares.
//
// The package is intentionally minimal — it implements exactly what the
// viewport predictor (ridge regression), the QoE model fit (nonlinear least
// squares), and the power-model fit (ordinary least squares) need, with no
// external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: matrix is singular or ill-conditioned")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible matrix shapes")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized rows×cols matrix.
// It panics if rows or cols is not positive, since a zero-dimension matrix is
// always a programming error in this codebase.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrShape)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d × vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Solve solves the linear system a·x = b for x using Gaussian elimination with
// partial pivoting. a must be square; b is the right-hand-side vector.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("%w: coefficient matrix %dx%d is not square", ErrShape, a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs has length %d, want %d", ErrShape, len(b), n)
	}
	// Work on augmented copies so callers keep their inputs.
	aug := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in this column.
		pivot := col
		maxAbs := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(aug.At(r, col)); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrSingular, maxAbs, col)
		}
		if pivot != col {
			swapRows(aug, pivot, col)
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aug.Set(r, c, aug.At(r, c)-f*aug.At(col, c))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Cholesky solves a·x = b for a symmetric positive-definite a. It is used for
// the ridge normal equations, which are SPD by construction.
func Cholesky(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("%w: matrix %dx%d is not square", ErrShape, a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs has length %d, want %d", ErrShape, len(b), n)
	}
	// Lower-triangular factor L with a = L·Lᵀ.
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("%w: non-positive diagonal %g at %d", ErrSingular, s, i)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
