package mat

import (
	"math"
	"testing"
)

// TestRidgeWorkspaceBitIdentical pins the workspace solver bit-for-bit
// against RidgeLeastSquaresPenalized across random designs, penalties, and
// repeated reuse of one workspace.
func TestRidgeWorkspaceBitIdentical(t *testing.T) {
	state := uint64(77)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for _, dims := range [][2]int{{50, 2}, {12, 3}, {5, 5}} {
		rows, cols := dims[0], dims[1]
		w := NewRidgeWorkspace(rows, cols)
		for trial := 0; trial < 20; trial++ {
			a := New(rows, cols)
			for i := 0; i < rows; i++ {
				a.Set(i, 0, 1)
				for j := 1; j < cols; j++ {
					a.Set(i, j, (next()-0.5)*10)
				}
			}
			y := make([]float64, rows)
			for i := range y {
				y[i] = (next() - 0.5) * 100
			}
			penalties := make([]float64, cols)
			for j := 1; j < cols; j++ {
				penalties[j] = next() * 2
			}
			want, err := RidgeLeastSquaresPenalized(a, y, penalties)
			if err != nil {
				t.Fatal(err)
			}
			got, err := w.Solve(a, y, penalties)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("dims %v: %d coefficients, want %d", dims, len(got), len(want))
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("dims %v trial %d coef %d: workspace %v, reference %v",
						dims, trial, j, got[j], want[j])
				}
			}
		}
	}
}

// TestRidgeWorkspaceDegenerateFallback checks the rank-deficient design takes
// the same pivoted-solver fallback as the allocating path.
func TestRidgeWorkspaceDegenerateFallback(t *testing.T) {
	// Two identical columns with zero penalty: AᵀA is singular.
	rows := 10
	a := New(rows, 2)
	for i := 0; i < rows; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, 1)
	}
	y := make([]float64, rows)
	for i := range y {
		y[i] = float64(i)
	}
	penalties := []float64{0, 0}
	want, wantErr := RidgeLeastSquaresPenalized(a, y, penalties)
	got, gotErr := NewRidgeWorkspace(rows, 2).Solve(a, y, penalties)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("error mismatch: workspace %v, reference %v", gotErr, wantErr)
	}
	if wantErr == nil {
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("coef %d: workspace %v, reference %v", j, got[j], want[j])
			}
		}
	}
}

// TestRidgeWorkspaceShapeErrors checks the workspace rejects mismatched
// inputs rather than corrupting its buffers.
func TestRidgeWorkspaceShapeErrors(t *testing.T) {
	w := NewRidgeWorkspace(4, 2)
	a := New(3, 2)
	if _, err := w.Solve(a, make([]float64, 3), []float64{0, 1}); err == nil {
		t.Fatal("wrong-shape design accepted")
	}
	a4 := New(4, 2)
	if _, err := w.Solve(a4, make([]float64, 3), []float64{0, 1}); err == nil {
		t.Fatal("short observation vector accepted")
	}
	if _, err := w.Solve(a4, make([]float64, 4), []float64{0}); err == nil {
		t.Fatal("short penalty vector accepted")
	}
	if _, err := w.Solve(a4, make([]float64, 4), []float64{0, -1}); err == nil {
		t.Fatal("negative penalty accepted")
	}
}
