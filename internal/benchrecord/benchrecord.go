// Package benchrecord parses the JSONL benchmark records written by
// scripts/bench.sh and compares two of them under a performance budget.
// It is the library half of the CI bench-budget gate (cmd/benchbudget):
// the committed BENCH_*.json files are the baseline, a fresh run is the
// candidate, and Compare reports every benchmark whose cost regressed past
// tolerance.
package benchrecord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Record is one bench.sh invocation: a label, provenance, and the parsed
// benchmark results.
type Record struct {
	Label      string   `json:"label"`
	Time       string   `json:"time"`
	Commit     string   `json:"commit"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads JSONL records. Blank lines are skipped; a malformed line is an
// error (a truncated record must not silently shrink the baseline).
func Parse(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("benchrecord: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ParseFile reads JSONL records from a file.
func ParseFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Key identifies one benchmark series: the bare benchmark name (the
// go-test "-N" procs suffix stripped) and the GOMAXPROCS it ran under.
// Costs are only comparable at equal parallelism, so the procs value is
// part of the identity.
type Key struct {
	Name  string
	Procs int
}

func (k Key) String() string { return fmt.Sprintf("%s@%dprocs", k.Name, k.Procs) }

// bareName strips go test's "-N" GOMAXPROCS suffix from a benchmark name.
func bareName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		digits := name[i+1:]
		if digits != "" && strings.Trim(digits, "0123456789") == "" {
			return name[:i]
		}
	}
	return name
}

// Latest folds records into the newest result per series — records are in
// file order (bench.sh appends), so last wins. A re-run of a benchmark in a
// later record supersedes the earlier one.
func Latest(recs []Record) map[Key]Result {
	out := make(map[Key]Result)
	for _, rec := range recs {
		for _, res := range rec.Results {
			out[Key{Name: bareName(res.Name), Procs: rec.GoMaxProcs}] = res
		}
	}
	return out
}

// Budget sets the per-metric regression tolerances as fractions of the
// baseline (0.10 = fail if >10% worse). A negative tolerance disables that
// metric's check.
type Budget struct {
	// NsTolerance bounds ns/op growth. Wall-time budgets are machine-
	// sensitive; CI uses a loose value as a catastrophe guard.
	NsTolerance float64
	// AllocTolerance bounds allocs/op growth. Allocation counts are
	// machine-independent, so this is the hard budget. Growth within ±1
	// alloc/op is always tolerated (integer reporting jitter).
	AllocTolerance float64
}

// Violation is one benchmark metric that exceeded its budget.
type Violation struct {
	Key    Key
	Metric string
	// Base and Fresh are the baseline and candidate values; Limit is the
	// largest Fresh the budget allowed.
	Base, Fresh, Limit float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (limit %.6g)", v.Key, v.Metric, v.Base, v.Fresh, v.Limit)
}

// Compare checks every series present in both baseline and fresh against
// the budget, returning the violations (deterministically ordered) and the
// number of series compared. Series missing from either side are skipped —
// the caller decides whether zero matches is an error.
func Compare(base, fresh []Record, b Budget) ([]Violation, int) {
	bl, fl := Latest(base), Latest(fresh)
	keys := make([]Key, 0, len(fl))
	for k := range fl {
		if _, ok := bl[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Procs < keys[j].Procs
	})
	var out []Violation
	for _, k := range keys {
		bres, fres := bl[k], fl[k]
		out = appendViolation(out, k, "ns/op", bres, fres, b.NsTolerance, 0)
		out = appendViolation(out, k, "allocs/op", bres, fres, b.AllocTolerance, 1)
	}
	return out, len(keys)
}

// Unmatched returns the fresh series that have no baseline counterpart,
// deterministically ordered. These are new benchmarks (or a changed
// GOMAXPROCS): the gate reports them so their absence from the comparison is
// visible, but they cannot fail a budget they were never given — the next
// committed BENCH_*.json baselines them.
func Unmatched(base, fresh []Record) []Key {
	bl, fl := Latest(base), Latest(fresh)
	var keys []Key
	for k := range fl {
		if _, ok := bl[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Procs < keys[j].Procs
	})
	return keys
}

// appendViolation applies one metric budget: fail when fresh exceeds
// base*(1+tol) by more than absSlack. Metrics absent on either side are
// skipped (not every benchmark reports every metric).
func appendViolation(out []Violation, k Key, metric string, base, fresh Result, tol, absSlack float64) []Violation {
	if tol < 0 {
		return out
	}
	bv, bok := base.Metrics[metric]
	fv, fok := fresh.Metrics[metric]
	if !bok || !fok {
		return out
	}
	limit := bv*(1+tol) + absSlack
	if fv > limit {
		out = append(out, Violation{Key: k, Metric: metric, Base: bv, Fresh: fv, Limit: limit})
	}
	return out
}
