package benchrecord

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBase = `{"label":"before","time":"2026-08-08T00:00:00Z","commit":"abc1234","gomaxprocs":1,"results":[{"name":"BenchmarkFleetTick100k","iters":2,"metrics":{"ns/op":400000000,"allocs/op":100000,"events/sec":225000}},{"name":"BenchmarkFleetTick1M","iters":1,"metrics":{"ns/op":9000000000,"allocs/op":1150000}}]}
{"label":"before","time":"2026-08-08T01:00:00Z","commit":"abc1234","gomaxprocs":4,"results":[{"name":"BenchmarkFleetTick100k-4","iters":2,"metrics":{"ns/op":150000000,"allocs/op":100500}}]}
`

func mustParse(t *testing.T, s string) []Record {
	t.Helper()
	recs, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestParseAndLatest(t *testing.T) {
	recs := mustParse(t, sampleBase)
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].Commit != "abc1234" || recs[1].GoMaxProcs != 4 {
		t.Fatalf("record fields wrong: %+v", recs)
	}
	latest := Latest(recs)
	// The -4 procs suffix is stripped; procs comes from the record.
	if _, ok := latest[Key{"BenchmarkFleetTick100k", 4}]; !ok {
		t.Fatalf("missing 4-procs series: %v", latest)
	}
	if _, ok := latest[Key{"BenchmarkFleetTick100k", 1}]; !ok {
		t.Fatalf("missing 1-proc series: %v", latest)
	}

	// Last record wins for a re-run series.
	rerun := sampleBase + `{"label":"again","time":"2026-08-08T02:00:00Z","commit":"abc1234","gomaxprocs":1,"results":[{"name":"BenchmarkFleetTick100k","iters":3,"metrics":{"ns/op":390000000,"allocs/op":99000}}]}` + "\n"
	latest = Latest(mustParse(t, rerun))
	if got := latest[Key{"BenchmarkFleetTick100k", 1}].Metrics["allocs/op"]; got != 99000 {
		t.Fatalf("last record must win: allocs/op = %g, want 99000", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("{\"label\":\"ok\"}\nnot json\n")); err == nil {
		t.Fatal("want error for malformed line")
	}
	recs := mustParse(t, "\n\n") // blank lines are fine
	if len(recs) != 0 {
		t.Fatalf("blank input parsed to %d records", len(recs))
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sampleBase), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if _, err := ParseFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestCompare(t *testing.T) {
	base := mustParse(t, sampleBase)
	budget := Budget{NsTolerance: 0.10, AllocTolerance: 0.10}

	// Within budget: slightly slower, same allocs.
	ok := `{"label":"fresh","time":"t","commit":"def","gomaxprocs":1,"results":[{"name":"BenchmarkFleetTick100k","iters":2,"metrics":{"ns/op":420000000,"allocs/op":100001}}]}`
	viols, matched := Compare(base, mustParse(t, ok), budget)
	if matched != 1 || len(viols) != 0 {
		t.Fatalf("within-budget run flagged: matched=%d viols=%v", matched, viols)
	}

	// Over budget on both metrics.
	bad := `{"label":"fresh","time":"t","commit":"def","gomaxprocs":1,"results":[{"name":"BenchmarkFleetTick100k","iters":2,"metrics":{"ns/op":480000000,"allocs/op":140000}},{"name":"BenchmarkFleetTick1M","iters":1,"metrics":{"ns/op":9100000000,"allocs/op":1150000}}]}`
	viols, matched = Compare(base, mustParse(t, bad), budget)
	if matched != 2 {
		t.Fatalf("matched %d series, want 2", matched)
	}
	if len(viols) != 2 {
		t.Fatalf("want 2 violations (ns + allocs on 100k), got %v", viols)
	}
	if viols[0].Metric != "ns/op" || viols[1].Metric != "allocs/op" {
		t.Fatalf("violation order/metrics wrong: %v", viols)
	}
	if !strings.Contains(viols[0].String(), "BenchmarkFleetTick100k@1procs") {
		t.Fatalf("violation string unhelpful: %s", viols[0])
	}

	// Negative tolerance disables a metric.
	viols, _ = Compare(base, mustParse(t, bad), Budget{NsTolerance: -1, AllocTolerance: 0.10})
	if len(viols) != 1 || viols[0].Metric != "allocs/op" {
		t.Fatalf("disabled ns/op still checked: %v", viols)
	}

	// Different procs never match each other.
	procs16 := `{"label":"fresh","time":"t","commit":"def","gomaxprocs":16,"results":[{"name":"BenchmarkFleetTick100k-16","iters":2,"metrics":{"ns/op":1,"allocs/op":1}}]}`
	if _, matched := Compare(base, mustParse(t, procs16), budget); matched != 0 {
		t.Fatalf("16-procs run matched a 1/4-procs baseline: %d", matched)
	}

	// ±1 alloc jitter is tolerated even at zero tolerance.
	jbase := `{"label":"b","time":"t","commit":"x","gomaxprocs":1,"results":[{"name":"BenchmarkTiny","iters":1,"metrics":{"allocs/op":0}}]}`
	jfresh := `{"label":"f","time":"t","commit":"y","gomaxprocs":1,"results":[{"name":"BenchmarkTiny","iters":1,"metrics":{"allocs/op":1}}]}`
	if viols, _ := Compare(mustParse(t, jbase), mustParse(t, jfresh), Budget{AllocTolerance: 0}); len(viols) != 0 {
		t.Fatalf("1-alloc jitter flagged: %v", viols)
	}
}

func TestUnmatched(t *testing.T) {
	base := mustParse(t, sampleBase)
	// One matched series, one brand-new benchmark, one known benchmark at a
	// new GOMAXPROCS — the latter two are unmatched, in sorted order.
	fresh := `{"label":"f","time":"t","commit":"def","gomaxprocs":1,"results":[{"name":"BenchmarkFleetTick100k","iters":2,"metrics":{"ns/op":1}},{"name":"BenchmarkDBSCANGrid","iters":5,"metrics":{"ns/op":1}}]}
{"label":"f","time":"t","commit":"def","gomaxprocs":16,"results":[{"name":"BenchmarkFleetTick100k-16","iters":2,"metrics":{"ns/op":1}}]}`
	got := Unmatched(base, mustParse(t, fresh))
	want := []Key{
		{Name: "BenchmarkDBSCANGrid", Procs: 1},
		{Name: "BenchmarkFleetTick100k", Procs: 16},
	}
	if len(got) != len(want) {
		t.Fatalf("Unmatched = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Unmatched[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := len(Unmatched(base, base)); n != 0 {
		t.Fatalf("self-comparison reported %d unmatched series", n)
	}
}

func TestBareName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFleetTick100k-4":  "BenchmarkFleetTick100k",
		"BenchmarkFleetTick100k-16": "BenchmarkFleetTick100k",
		"BenchmarkFleetTick100k":    "BenchmarkFleetTick100k",
		"BenchmarkFleetTick1M":      "BenchmarkFleetTick1M",
		"Benchmark-x":               "Benchmark-x",
	}
	for in, want := range cases {
		if got := bareName(in); got != want {
			t.Fatalf("bareName(%q) = %q, want %q", in, got, want)
		}
	}
}
