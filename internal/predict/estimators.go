package predict

import (
	"fmt"
	"math"

	"ptile360/internal/stats"
)

// Estimator predicts near-future throughput from observed per-download
// throughput samples. The paper uses the harmonic mean (Section IV-C) and
// cites rate-based alternatives [25, 26] as out of scope; several are
// implemented here for the bandwidth-estimator ablation (DESIGN.md §5.5).
type Estimator interface {
	// Observe records a completed download's throughput in bits/s.
	Observe(rateBps float64) error
	// Estimate returns the predicted throughput in bits/s. It fails until
	// at least one sample has been observed.
	Estimate() (float64, error)
	// Ready reports whether at least one sample has been observed.
	Ready() bool
}

// StateBits exposes an estimator's complete observable state as raw words,
// for exact-equality fingerprinting: two estimators of the same kind whose
// appended words are identical return bit-identical Estimate() values and
// evolve bit-identically under the same Observe inputs. Batch planners
// (internal/sim) group sessions by these words to share one decision across
// provably identical residual states. The first appended word is the
// EstimatorKind, so fingerprints of different families never collide.
type StateBits interface {
	// AppendStateBits appends the state fingerprint to dst and returns it.
	AppendStateBits(dst []uint64) []uint64
}

// Compile-time interface checks.
var (
	_ Estimator = (*Bandwidth)(nil)
	_ Estimator = (*LastSample)(nil)
	_ Estimator = (*EWMA)(nil)
	_ Estimator = (*MovingAverage)(nil)

	_ StateBits = (*Bandwidth)(nil)
	_ StateBits = (*LastSample)(nil)
	_ StateBits = (*EWMA)(nil)
	_ StateBits = (*MovingAverage)(nil)
)

// maxSaneRateBps caps believable throughput samples at 10 Tbit/s. Samples
// beyond it (a miscomputed elapsed time, a cosmic-ray divisor) clamp rather
// than blow the estimate out for the whole window.
const maxSaneRateBps = 1e13

// sanitizeRate validates one throughput observation. NaN, ±Inf, and
// non-positive samples are rejected — a poisoned sample must never enter an
// estimator window, where a single NaN would stick the estimate at NaN for
// the rest of the session. Finite but absurd samples clamp to
// maxSaneRateBps.
func sanitizeRate(rateBps float64) (float64, error) {
	if math.IsNaN(rateBps) || math.IsInf(rateBps, 0) {
		return 0, fmt.Errorf("predict: non-finite throughput %g", rateBps)
	}
	if rateBps <= 0 {
		return 0, fmt.Errorf("predict: non-positive throughput %g", rateBps)
	}
	if rateBps > maxSaneRateBps {
		return maxSaneRateBps, nil
	}
	return rateBps, nil
}

// LastSample predicts the most recent throughput — the naive baseline that
// chases every fluctuation.
type LastSample struct {
	last  float64
	ready bool
}

// NewLastSample returns a last-sample estimator.
func NewLastSample() *LastSample { return &LastSample{} }

// Observe implements Estimator.
func (e *LastSample) Observe(rateBps float64) error {
	r, err := sanitizeRate(rateBps)
	if err != nil {
		return err
	}
	e.last, e.ready = r, true
	return nil
}

// Estimate implements Estimator.
func (e *LastSample) Estimate() (float64, error) {
	if !e.ready {
		return 0, fmt.Errorf("predict: no bandwidth history")
	}
	return e.last, nil
}

// Ready implements Estimator.
func (e *LastSample) Ready() bool { return e.ready }

// AppendStateBits implements StateBits.
func (e *LastSample) AppendStateBits(dst []uint64) []uint64 {
	r := uint64(0)
	if e.ready {
		r = 1
	}
	return append(dst, uint64(EstimatorLastSample), r, math.Float64bits(e.last))
}

// EWMA predicts with an exponentially weighted moving average, the classic
// TCP-style smoother.
type EWMA struct {
	alpha float64
	value float64
	ready bool
}

// NewEWMA returns an EWMA estimator; alpha ∈ (0, 1] weights the newest
// sample (higher = more reactive).
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("predict: EWMA alpha %g outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe implements Estimator.
func (e *EWMA) Observe(rateBps float64) error {
	r, err := sanitizeRate(rateBps)
	if err != nil {
		return err
	}
	if !e.ready {
		e.value, e.ready = r, true
		return nil
	}
	e.value = e.alpha*r + (1-e.alpha)*e.value
	return nil
}

// Estimate implements Estimator.
func (e *EWMA) Estimate() (float64, error) {
	if !e.ready {
		return 0, fmt.Errorf("predict: no bandwidth history")
	}
	return e.value, nil
}

// Ready implements Estimator.
func (e *EWMA) Ready() bool { return e.ready }

// AppendStateBits implements StateBits.
func (e *EWMA) AppendStateBits(dst []uint64) []uint64 {
	r := uint64(0)
	if e.ready {
		r = 1
	}
	return append(dst, uint64(EstimatorEWMA), r, math.Float64bits(e.alpha), math.Float64bits(e.value))
}

// MovingAverage predicts with the arithmetic mean over a sliding window —
// smoother than last-sample but, unlike the harmonic mean, biased upward by
// throughput spikes.
type MovingAverage struct {
	window  int
	samples []float64
}

// NewMovingAverage returns an arithmetic-mean estimator over the given
// window.
func NewMovingAverage(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, fmt.Errorf("predict: non-positive window %d", window)
	}
	return &MovingAverage{window: window, samples: make([]float64, 0, window)}, nil
}

// Observe implements Estimator. Like Bandwidth, the full window shifts in
// place so steady-state observation allocates nothing.
func (e *MovingAverage) Observe(rateBps float64) error {
	r, err := sanitizeRate(rateBps)
	if err != nil {
		return err
	}
	if len(e.samples) < e.window {
		e.samples = append(e.samples, r)
		return nil
	}
	copy(e.samples, e.samples[1:])
	e.samples[e.window-1] = r
	return nil
}

// Estimate implements Estimator.
func (e *MovingAverage) Estimate() (float64, error) {
	if len(e.samples) == 0 {
		return 0, fmt.Errorf("predict: no bandwidth history")
	}
	return stats.Mean(e.samples), nil
}

// Ready implements Estimator.
func (e *MovingAverage) Ready() bool { return len(e.samples) > 0 }

// AppendStateBits implements StateBits.
func (e *MovingAverage) AppendStateBits(dst []uint64) []uint64 {
	dst = append(dst, uint64(EstimatorMovingAverage), uint64(e.window), uint64(len(e.samples)))
	for _, s := range e.samples {
		dst = append(dst, math.Float64bits(s))
	}
	return dst
}

// EstimatorKind names a bandwidth-estimator family for configuration.
type EstimatorKind int

// Estimator kinds.
const (
	// EstimatorHarmonic is the paper's harmonic mean (default).
	EstimatorHarmonic EstimatorKind = iota + 1
	// EstimatorLastSample chases the most recent sample.
	EstimatorLastSample
	// EstimatorEWMA smooths exponentially with α = 0.3.
	EstimatorEWMA
	// EstimatorMovingAverage averages arithmetically over the window.
	EstimatorMovingAverage
	// EstimatorDelayGradient is the GCC-style arrival-group delay-gradient
	// estimator (delaygradient.go); it additionally consumes packet timing
	// via PacketObserver when the network path provides it.
	EstimatorDelayGradient
)

// String implements fmt.Stringer.
func (k EstimatorKind) String() string {
	switch k {
	case EstimatorHarmonic:
		return "harmonic"
	case EstimatorLastSample:
		return "last-sample"
	case EstimatorEWMA:
		return "ewma"
	case EstimatorMovingAverage:
		return "moving-average"
	case EstimatorDelayGradient:
		return "delay-gradient"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// ParseEstimatorKind maps a kind name (as produced by String) back to the
// kind. The empty string means the paper's harmonic-mean default.
func ParseEstimatorKind(name string) (EstimatorKind, error) {
	switch name {
	case "", "harmonic":
		return EstimatorHarmonic, nil
	case "last-sample":
		return EstimatorLastSample, nil
	case "ewma":
		return EstimatorEWMA, nil
	case "moving-average":
		return EstimatorMovingAverage, nil
	case "delay-gradient":
		return EstimatorDelayGradient, nil
	default:
		return 0, fmt.Errorf("predict: unknown estimator %q (harmonic, last-sample, ewma, moving-average, delay-gradient)", name)
	}
}

// NewEstimator constructs an estimator of the given kind. window applies to
// the windowed kinds.
func NewEstimator(kind EstimatorKind, window int) (Estimator, error) {
	switch kind {
	case EstimatorHarmonic:
		return NewBandwidth(window)
	case EstimatorLastSample:
		return NewLastSample(), nil
	case EstimatorEWMA:
		return NewEWMA(0.3)
	case EstimatorMovingAverage:
		return NewMovingAverage(window)
	case EstimatorDelayGradient:
		return NewDelayGradient(), nil
	default:
		return nil, fmt.Errorf("predict: unknown estimator kind %d", int(kind))
	}
}
