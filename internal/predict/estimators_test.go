package predict

import (
	"math"
	"testing"
)

func observeAll(t *testing.T, e Estimator, samples ...float64) {
	t.Helper()
	for _, s := range samples {
		if err := e.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLastSample(t *testing.T) {
	e := NewLastSample()
	if e.Ready() {
		t.Fatal("fresh estimator should not be ready")
	}
	if _, err := e.Estimate(); err == nil {
		t.Fatal("want error before observations")
	}
	observeAll(t, e, 4e6, 8e6)
	est, err := e.Estimate()
	if err != nil || est != 8e6 {
		t.Fatalf("estimate = %g, %v", est, err)
	}
	if err := e.Observe(0); err == nil {
		t.Fatal("want error for zero sample")
	}
}

func TestEWMA(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(); err == nil {
		t.Fatal("want error before observations")
	}
	observeAll(t, e, 4e6) // seeds
	observeAll(t, e, 8e6) // 0.5·8 + 0.5·4 = 6
	est, err := e.Estimate()
	if err != nil || math.Abs(est-6e6) > 1 {
		t.Fatalf("estimate = %g, %v", est, err)
	}
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("want error for alpha 0")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("want error for alpha > 1")
	}
	if err := e.Observe(-1); err == nil {
		t.Fatal("want error for negative sample")
	}
}

func TestMovingAverage(t *testing.T) {
	e, err := NewMovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(); err == nil {
		t.Fatal("want error before observations")
	}
	observeAll(t, e, 2e6, 4e6, 8e6) // window keeps {4, 8}
	est, err := e.Estimate()
	if err != nil || math.Abs(est-6e6) > 1 {
		t.Fatalf("estimate = %g, %v", est, err)
	}
	if _, err := NewMovingAverage(0); err == nil {
		t.Fatal("want error for zero window")
	}
	if err := e.Observe(0); err == nil {
		t.Fatal("want error for zero sample")
	}
}

// TestEstimatorSpikeBehaviour contrasts the families on a spiky series: the
// harmonic mean must be the most conservative, the arithmetic mean biased
// upward, last-sample fully captured by the spike.
func TestEstimatorSpikeBehaviour(t *testing.T) {
	series := []float64{4e6, 4e6, 4e6, 4e6, 40e6}
	hm, err := NewEstimator(EstimatorHarmonic, 5)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := NewEstimator(EstimatorMovingAverage, 5)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewEstimator(EstimatorLastSample, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		for _, e := range []Estimator{hm, ma, ls} {
			if err := e.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	hme, _ := hm.Estimate()
	mae, _ := ma.Estimate()
	lse, _ := ls.Estimate()
	if !(hme < mae && mae < lse) {
		t.Fatalf("spike ordering broken: harmonic %g, mean %g, last %g", hme, mae, lse)
	}
	if hme > 5.5e6 {
		t.Fatalf("harmonic estimate %g not conservative", hme)
	}
	if lse != 40e6 {
		t.Fatalf("last-sample estimate %g", lse)
	}
}

func TestNewEstimatorKinds(t *testing.T) {
	for _, kind := range []EstimatorKind{EstimatorHarmonic, EstimatorLastSample, EstimatorEWMA, EstimatorMovingAverage} {
		e, err := NewEstimator(kind, 5)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if e.Ready() {
			t.Fatalf("%v: fresh estimator ready", kind)
		}
		if kind.String() == "" {
			t.Fatalf("%v: empty name", kind)
		}
	}
	if _, err := NewEstimator(EstimatorKind(42), 5); err == nil {
		t.Fatal("want error for unknown kind")
	}
	if EstimatorKind(42).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}
