package predict

import (
	"fmt"

	"ptile360/internal/geom"
	"ptile360/internal/mat"
)

// ViewportPredictor is the reusable form of Viewport for session loops: the
// design matrix depends only on the window length, so it is built once and
// cached, and both per-coordinate ridge solves run through one preallocated
// mat.RidgeWorkspace. Predictions are bit-identical to Viewport with the
// same configuration. Not safe for concurrent use.
type ViewportPredictor struct {
	cfg       ViewportConfig
	winN      int
	n         int // rows of the cached design; 0 until first use
	design    *mat.Matrix
	ws        *mat.RidgeWorkspace
	penalties []float64
}

// NewViewportPredictor validates cfg once and returns a predictor.
func NewViewportPredictor(cfg ViewportConfig) (*ViewportPredictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(cfg.HistorySec * cfg.SampleRate)
	if n < 2 {
		return nil, fmt.Errorf("predict: history window of %d samples too short", n)
	}
	lambda := cfg.Lambda
	if cfg.Kind == ViewportOLS {
		lambda = 0
	}
	return &ViewportPredictor{cfg: cfg, winN: n, penalties: []float64{0, lambda}}, nil
}

// Predict is Viewport over the predictor's configuration: xs is the
// unwrapped x stream, ys the y stream, and the result is the extrapolated
// viewing center horizonSec past the last sample.
func (p *ViewportPredictor) Predict(xs, ys []float64, horizonSec float64) (geom.Point, error) {
	if len(xs) != len(ys) {
		return geom.Point{}, fmt.Errorf("predict: x/y length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return geom.Point{}, fmt.Errorf("predict: need at least 2 samples, got %d", len(xs))
	}
	if horizonSec < 0 {
		return geom.Point{}, fmt.Errorf("predict: negative horizon %g", horizonSec)
	}
	if p.cfg.Kind == ViewportStatic {
		return geom.Point{X: geom.NormalizeYaw(xs[len(xs)-1]), Y: clampY(ys[len(ys)-1])}, nil
	}
	n := p.winN
	if len(xs) < n {
		n = len(xs)
	}
	hx := xs[len(xs)-n:]
	hy := ys[len(ys)-n:]
	if n != p.n {
		dt := 1 / p.cfg.SampleRate
		p.design = mat.New(n, 2)
		for i := 0; i < n; i++ {
			p.design.Set(i, 0, 1)
			p.design.Set(i, 1, float64(i-(n-1))*dt)
		}
		p.ws = mat.NewRidgeWorkspace(n, 2)
		p.n = n
	}
	cx, err := p.ws.Solve(p.design, hx, p.penalties)
	if err != nil {
		return geom.Point{}, fmt.Errorf("predict: x fit: %w", err)
	}
	// The workspace reuses its solution buffer: consume the x coefficients
	// before the y solve overwrites them.
	px := cx[0] + cx[1]*horizonSec
	cy, err := p.ws.Solve(p.design, hy, p.penalties)
	if err != nil {
		return geom.Point{}, fmt.Errorf("predict: y fit: %w", err)
	}
	py := cy[0] + cy[1]*horizonSec
	return geom.Point{X: geom.NormalizeYaw(px), Y: clampY(py)}, nil
}
