package predict

import (
	"fmt"
	"math"
)

// PacketObserver is the optional packet-timing feed of an estimator. The
// packet-level network path (internal/netem) calls ObservePacket for every
// delivered packet of a download, in arrival order, before reporting the
// segment-level throughput via Observe. Estimators that cannot use packet
// timing simply do not implement it.
type PacketObserver interface {
	// ObservePacket records one delivered packet's wire timing. Non-finite
	// timestamps are ignored.
	ObservePacket(sendSec, recvSec float64, bytes int)
}

// DelayGradient is a GCC-style congestion estimator: packets are coalesced
// into arrival groups (~5 ms send spacing), the inter-group delay variation
// d(i) = (recv_i − recv_{i−1}) − (send_i − send_{i−1}) is accumulated and
// smoothed, and a trendline fitted over the last groups yields the queueing
// -delay slope. A sustained positive slope means the bottleneck queue is
// growing — overuse — even though no packet was lost, which is exactly the
// signal harmonic-mean throughput averaging cannot see on a buffer-bloated
// link (throughput stays at capacity while latency climbs). The rate
// control is AIMD: β×(received rate) on overuse, a bounded multiplicative
// probe otherwise.
//
// Without a packet feed DelayGradient degrades to a bounded last-sample
// tracker, so it stays usable on the segment-level lte.Trace path.
type DelayGradient struct {
	// AIMD rate state.
	rateBps float64
	ready   bool

	// Overuse latch: set by the packet feed, consumed by the next Observe.
	overuse bool

	// Current arrival group being coalesced.
	groupOpen                    bool
	groupFirstSend               float64
	groupLastSend, groupLastRecv float64

	// Previous completed group, for the inter-group delta.
	havePrev                   bool
	prevLastSend, prevLastRecv float64

	// Trendline over the last trendWindow groups: (arrival, smoothed
	// accumulated delay) pairs in a ring.
	accumDelay    float64
	smoothedDelay float64
	firstArrival  float64
	points        [trendWindow]trendPoint
	count, head   int

	// Consecutive positive-slope detections; overuse latches at
	// overuseCount.
	overruns int
}

type trendPoint struct {
	arrival float64
	delay   float64
}

const (
	// burstIntervalSec coalesces packets sent within this span into one
	// arrival group (the GCC burst interval).
	burstIntervalSec = 0.005
	// trendWindow is how many inter-group deltas the slope is fitted over.
	trendWindow = 20
	// trendSmoothing is the EWMA retention of the accumulated delay.
	trendSmoothing = 0.9
	// minTrendPoints gates the fit: fewer points than this yields no
	// detection.
	minTrendPoints = 5
	// slopeThreshold is the overuse boundary in seconds of queueing delay
	// growth per second. The emulated link is noiseless, so 10 ms/s
	// cleanly separates a growing standing queue from jitter.
	slopeThreshold = 0.010
	// overuseCount is how many consecutive positive-slope fits latch
	// overuse (the GCC sustained-time requirement, in groups).
	overuseCount = 2
	// drainBeta is the AIMD multiplicative decrease applied to the
	// received rate on overuse.
	drainBeta = 0.85
	// probeGain is the multiplicative increase per observation when the
	// link shows no overuse. GCC applies eta = 1.08 once per ~100 ms
	// response interval; our Observe cadence is one media segment (~1 s),
	// so the per-observation gain compounds ten intervals (1.08^10). The
	// probeCap below still bounds every step to what the link actually
	// delivered.
	probeGain = 2.16
	// probeCap bounds the estimate relative to the latest received rate,
	// so probing cannot run away from reality.
	probeCap = 1.25
)

// NewDelayGradient returns a delay-gradient estimator.
func NewDelayGradient() *DelayGradient { return &DelayGradient{} }

// Compile-time interface checks.
var (
	_ Estimator      = (*DelayGradient)(nil)
	_ PacketObserver = (*DelayGradient)(nil)
	_ StateBits      = (*DelayGradient)(nil)
)

// ObservePacket implements PacketObserver: coalesce into arrival groups and
// update the trendline detector at each group boundary.
func (e *DelayGradient) ObservePacket(sendSec, recvSec float64, bytes int) {
	if math.IsNaN(sendSec) || math.IsInf(sendSec, 0) ||
		math.IsNaN(recvSec) || math.IsInf(recvSec, 0) || bytes <= 0 {
		return
	}
	if !e.groupOpen {
		e.openGroup(sendSec, recvSec)
		return
	}
	if sendSec-e.groupFirstSend >= burstIntervalSec {
		e.closeGroup()
		e.openGroup(sendSec, recvSec)
		return
	}
	if sendSec > e.groupLastSend {
		e.groupLastSend = sendSec
	}
	if recvSec > e.groupLastRecv {
		e.groupLastRecv = recvSec
	}
}

func (e *DelayGradient) openGroup(sendSec, recvSec float64) {
	e.groupOpen = true
	e.groupFirstSend = sendSec
	e.groupLastSend = sendSec
	e.groupLastRecv = recvSec
}

// closeGroup completes the current arrival group and feeds the inter-group
// delay variation into the trendline.
func (e *DelayGradient) closeGroup() {
	if !e.groupOpen {
		return
	}
	e.groupOpen = false
	if e.havePrev {
		d := (e.groupLastRecv - e.prevLastRecv) - (e.groupLastSend - e.prevLastSend)
		e.accumDelay += d
		e.smoothedDelay = trendSmoothing*e.smoothedDelay + (1-trendSmoothing)*e.accumDelay
		if e.count == 0 {
			e.firstArrival = e.groupLastRecv
		}
		e.points[e.head] = trendPoint{arrival: e.groupLastRecv - e.firstArrival, delay: e.smoothedDelay}
		e.head = (e.head + 1) % trendWindow
		if e.count < trendWindow {
			e.count++
		}
		e.detect()
	}
	e.havePrev = true
	e.prevLastSend = e.groupLastSend
	e.prevLastRecv = e.groupLastRecv
}

// detect fits the trendline and updates the overuse latch.
func (e *DelayGradient) detect() {
	if e.count < minTrendPoints {
		return
	}
	// Least-squares slope over the ring, in fixed (oldest-first) order so
	// the arithmetic is deterministic.
	var sumX, sumY float64
	for i := 0; i < e.count; i++ {
		p := e.points[(e.head+trendWindow-e.count+i)%trendWindow]
		sumX += p.arrival
		sumY += p.delay
	}
	n := float64(e.count)
	meanX, meanY := sumX/n, sumY/n
	var num, den float64
	for i := 0; i < e.count; i++ {
		p := e.points[(e.head+trendWindow-e.count+i)%trendWindow]
		num += (p.arrival - meanX) * (p.delay - meanY)
		den += (p.arrival - meanX) * (p.arrival - meanX)
	}
	if den <= 0 {
		return
	}
	slope := num / den
	if slope > slopeThreshold {
		e.overruns++
		if e.overruns >= overuseCount {
			e.overuse = true
		}
	} else {
		e.overruns = 0
	}
}

// Observe implements Estimator: rateBps is the completed download's
// received throughput; the AIMD control combines it with the packet feed's
// overuse verdict accumulated since the previous Observe.
func (e *DelayGradient) Observe(rateBps float64) error {
	r, err := sanitizeRate(rateBps)
	if err != nil {
		return err
	}
	// Close any half-open group so the last packets of the download count.
	e.closeGroup()
	switch {
	case !e.ready:
		e.rateBps = r
		e.ready = true
	case e.overuse:
		e.rateBps = drainBeta * r
	default:
		e.rateBps = math.Min(e.rateBps*probeGain, probeCap*r)
	}
	if e.rateBps > maxSaneRateBps {
		e.rateBps = maxSaneRateBps
	}
	e.overuse = false
	e.overruns = 0
	return nil
}

// Estimate implements Estimator.
func (e *DelayGradient) Estimate() (float64, error) {
	if !e.ready {
		return 0, fmt.Errorf("predict: no bandwidth history")
	}
	return e.rateBps, nil
}

// Ready implements Estimator.
func (e *DelayGradient) Ready() bool { return e.ready }

// AppendStateBits implements StateBits: every field that influences future
// Estimate/Observe results, in fixed order.
func (e *DelayGradient) AppendStateBits(dst []uint64) []uint64 {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	dst = append(dst, uint64(EstimatorDelayGradient),
		b(e.ready), b(e.overuse), b(e.groupOpen), b(e.havePrev),
		math.Float64bits(e.rateBps),
		math.Float64bits(e.groupFirstSend), math.Float64bits(e.groupLastSend), math.Float64bits(e.groupLastRecv),
		math.Float64bits(e.prevLastSend), math.Float64bits(e.prevLastRecv),
		math.Float64bits(e.accumDelay), math.Float64bits(e.smoothedDelay), math.Float64bits(e.firstArrival),
		uint64(e.count), uint64(e.head), uint64(e.overruns))
	for i := 0; i < e.count; i++ {
		p := e.points[(e.head+trendWindow-e.count+i)%trendWindow]
		dst = append(dst, math.Float64bits(p.arrival), math.Float64bits(p.delay))
	}
	return dst
}
