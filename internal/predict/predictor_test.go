package predict

import (
	"math"
	"testing"
)

// TestViewportPredictorMatchesViewport pins the cached-design/workspace
// predictor bit-for-bit against the one-shot Viewport across kinds, history
// lengths (shorter and longer than the window), and horizons — reusing one
// predictor for every call so buffer reuse is exercised.
func TestViewportPredictorMatchesViewport(t *testing.T) {
	state := uint64(2024)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	walk := func(n int) (xs, ys []float64) {
		xs = make([]float64, n)
		ys = make([]float64, n)
		x, y := next()*360, 30+next()*120
		for i := 0; i < n; i++ {
			x += (next() - 0.45) * 2
			y += (next() - 0.5) * 1.5
			xs[i] = x
			ys[i] = y
		}
		return xs, ys
	}
	for _, kind := range []ViewportKind{ViewportRidge, ViewportOLS, ViewportStatic} {
		cfg := DefaultViewportConfig()
		cfg.Kind = kind
		p, err := NewViewportPredictor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 10, 49, 50, 51, 200} {
			xs, ys := walk(n)
			for _, h := range []float64{0, 0.5, 1, 2} {
				want, err := Viewport(xs, ys, h, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := p.Predict(xs, ys, h)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(got.X) != math.Float64bits(want.X) ||
					math.Float64bits(got.Y) != math.Float64bits(want.Y) {
					t.Fatalf("kind %v n %d h %g: predictor %+v, Viewport %+v", kind, n, h, got, want)
				}
			}
		}
	}
}

// TestViewportPredictorErrors checks the predictor rejects what Viewport
// rejects.
func TestViewportPredictorErrors(t *testing.T) {
	if _, err := NewViewportPredictor(ViewportConfig{HistorySec: -1, SampleRate: 50}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewViewportPredictor(ViewportConfig{HistorySec: 0.01, SampleRate: 50, Lambda: 1}); err == nil {
		t.Fatal("sub-2-sample window accepted")
	}
	p, err := NewViewportPredictor(DefaultViewportConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := p.Predict([]float64{1}, []float64{1}, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := p.Predict([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// TestEstimatorRingBufferMatchesAppendPath pins the in-place window shift
// against the old append-and-reslice behaviour for both windowed estimators.
func TestEstimatorRingBufferMatchesAppendPath(t *testing.T) {
	state := uint64(5150)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return 1e6 + float64(state>>11)/float64(1<<53)*1e7
	}
	for _, window := range []int{1, 3, 5, 8} {
		bw, err := NewBandwidth(window)
		if err != nil {
			t.Fatal(err)
		}
		ma, err := NewMovingAverage(window)
		if err != nil {
			t.Fatal(err)
		}
		var ref []float64
		for i := 0; i < 40; i++ {
			v := next()
			if err := bw.Observe(v); err != nil {
				t.Fatal(err)
			}
			if err := ma.Observe(v); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, v)
			if len(ref) > window {
				ref = ref[len(ref)-window:]
			}
			wantHM := 0.0
			for _, x := range ref {
				wantHM += 1 / x
			}
			wantHM = float64(len(ref)) / wantHM
			gotHM, err := bw.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(gotHM) != math.Float64bits(wantHM) {
				t.Fatalf("window %d step %d: harmonic %v, reference %v", window, i, gotHM, wantHM)
			}
			var wantMean float64
			for _, x := range ref {
				wantMean += x
			}
			wantMean /= float64(len(ref))
			gotMean, err := ma.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(gotMean) != math.Float64bits(wantMean) {
				t.Fatalf("window %d step %d: mean %v, reference %v", window, i, gotMean, wantMean)
			}
		}
	}
}
