package predict

import (
	"math"
	"testing"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

func TestDefaultViewportConfig(t *testing.T) {
	if err := DefaultViewportConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestViewportConfigValidate(t *testing.T) {
	muts := []func(*ViewportConfig){
		func(c *ViewportConfig) { c.HistorySec = 0 },
		func(c *ViewportConfig) { c.SampleRate = 0 },
		func(c *ViewportConfig) { c.Lambda = -1 },
	}
	for i, mutate := range muts {
		cfg := DefaultViewportConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func linearSeries(n int, x0, vx, y0, vy, dt float64) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		ts := float64(i) * dt
		xs[i] = x0 + vx*ts
		ys[i] = y0 + vy*ts
	}
	return xs, ys
}

func TestViewportExtrapolatesLinearMotion(t *testing.T) {
	cfg := DefaultViewportConfig()
	cfg.Lambda = 1e-6
	// Head turning at 20°/s for 2 s of history; predict 0.5 s ahead.
	xs, ys := linearSeries(100, 100, 20, 90, -4, 1.0/cfg.SampleRate)
	p, err := Viewport(xs, ys, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Position "now" (sample 99 at t=1.98): x = 139.6; +0.5 s → 149.6.
	wantX := 100 + 20*(99.0/50.0+0.5)
	wantY := 90 - 4*(99.0/50.0+0.5)
	if math.Abs(p.X-wantX) > 0.5 || math.Abs(p.Y-wantY) > 0.5 {
		t.Fatalf("predicted (%g, %g), want ≈(%g, %g)", p.X, p.Y, wantX, wantY)
	}
}

func TestViewportStationary(t *testing.T) {
	cfg := DefaultViewportConfig()
	xs, ys := linearSeries(60, 200, 0, 70, 0, 1.0/cfg.SampleRate)
	p, err := Viewport(xs, ys, 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-200) > 1 || math.Abs(p.Y-70) > 1 {
		t.Fatalf("stationary prediction drifted: %+v", p)
	}
}

func TestViewportWrapsSeam(t *testing.T) {
	cfg := DefaultViewportConfig()
	cfg.Lambda = 1e-6
	// Unwrapped x crosses 360: prediction must come back normalized.
	xs, ys := linearSeries(100, 350, 20, 90, 0, 1.0/cfg.SampleRate)
	p, err := Viewport(xs, ys, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.X < 0 || p.X >= 360 {
		t.Fatalf("prediction not normalized: %g", p.X)
	}
	wantX := geom.NormalizeYaw(350 + 20*(99.0/50.0+0.5))
	if math.Abs(geom.WrapDeltaX(p.X, wantX)) > 0.5 {
		t.Fatalf("seam prediction = %g, want ≈%g", p.X, wantX)
	}
}

func TestViewportClampsPitch(t *testing.T) {
	cfg := DefaultViewportConfig()
	cfg.Lambda = 1e-6
	// Heading toward the pole fast: y extrapolation must clamp at 0.
	xs, ys := linearSeries(100, 100, 0, 10, -40, 1.0/cfg.SampleRate)
	p, err := Viewport(xs, ys, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Y != 0 {
		t.Fatalf("pitch not clamped: %g", p.Y)
	}
}

func TestViewportShortHistory(t *testing.T) {
	cfg := DefaultViewportConfig()
	// Fewer samples than the window: still predicts from what exists.
	xs, ys := linearSeries(10, 50, 10, 90, 0, 1.0/cfg.SampleRate)
	p, err := Viewport(xs, ys, 0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.X < 50 || p.X > 60 {
		t.Fatalf("short-history prediction = %g", p.X)
	}
}

func TestViewportValidation(t *testing.T) {
	cfg := DefaultViewportConfig()
	if _, err := Viewport([]float64{1}, []float64{1, 2}, 0.5, cfg); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := Viewport([]float64{1}, []float64{1}, 0.5, cfg); err == nil {
		t.Fatal("want error for single sample")
	}
	if _, err := Viewport([]float64{1, 2}, []float64{1, 2}, -1, cfg); err == nil {
		t.Fatal("want error for negative horizon")
	}
	bad := cfg
	bad.SampleRate = 0
	if _, err := Viewport([]float64{1, 2}, []float64{1, 2}, 0.5, bad); err == nil {
		t.Fatal("want config validation error")
	}
	tiny := cfg
	tiny.HistorySec = 0.01
	if _, err := Viewport([]float64{1, 2}, []float64{1, 2}, 0.5, tiny); err == nil {
		t.Fatal("want error for sub-2-sample window")
	}
}

func TestViewportRidgeRobustness(t *testing.T) {
	// Noisy stationary series: with a strong ridge penalty the slope term is
	// damped, so prediction stays near the mean rather than chasing noise.
	rng := stats.NewRNG(3)
	n := 50
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 180 + rng.Normal(0, 2)
		ys[i] = 90 + rng.Normal(0, 2)
	}
	cfg := DefaultViewportConfig()
	cfg.Lambda = 50
	p, err := Viewport(xs, ys, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-180) > 5 || math.Abs(p.Y-90) > 5 {
		t.Fatalf("ridge prediction drifted: %+v", p)
	}
}

func TestBandwidthEstimator(t *testing.T) {
	b, err := NewBandwidth(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ready() {
		t.Fatal("estimator should not be ready before observations")
	}
	if _, err := b.Estimate(); err == nil {
		t.Fatal("want error before any observation")
	}
	for _, r := range []float64{4e6, 4e6, 4e6} {
		if err := b.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	est, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-4e6) > 1 {
		t.Fatalf("estimate = %g, want 4e6", est)
	}
}

func TestBandwidthWindowSlides(t *testing.T) {
	b, _ := NewBandwidth(2)
	for _, r := range []float64{1e6, 8e6, 8e6} {
		if err := b.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	est, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Only the last two samples remain.
	if math.Abs(est-8e6) > 1 {
		t.Fatalf("estimate = %g, want 8e6 after window slide", est)
	}
}

func TestBandwidthDampensSpikes(t *testing.T) {
	b, _ := NewBandwidth(5)
	for _, r := range []float64{4e6, 4e6, 4e6, 4e6, 40e6} {
		if err := b.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	est, _ := b.Estimate()
	// Harmonic mean of {4,4,4,4,40} Mbps = 5/(4·0.25+0.025) ≈ 4.88 Mbps:
	// the 40 Mbps spike barely moves the estimate.
	if est > 5.5e6 {
		t.Fatalf("estimate = %g, spike not damped", est)
	}
}

func TestBandwidthValidation(t *testing.T) {
	if _, err := NewBandwidth(0); err == nil {
		t.Fatal("want error for zero window")
	}
	b, _ := NewBandwidth(2)
	if err := b.Observe(0); err == nil {
		t.Fatal("want error for zero throughput")
	}
}

func TestViewportStaticKind(t *testing.T) {
	cfg := DefaultViewportConfig()
	cfg.Kind = ViewportStatic
	xs, ys := linearSeries(100, 100, 20, 90, 0, 1.0/cfg.SampleRate)
	p, err := Viewport(xs, ys, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Static ignores the horizon: prediction = last position.
	wantX := geom.NormalizeYaw(xs[len(xs)-1])
	if math.Abs(geom.WrapDeltaX(p.X, wantX)) > 1e-9 || p.Y != ys[len(ys)-1] {
		t.Fatalf("static prediction %+v, want (%g, %g)", p, wantX, ys[len(ys)-1])
	}
}

func TestViewportOLSChasesNoiseMoreThanRidge(t *testing.T) {
	// A noisy stationary series with one outlier run at the end: OLS
	// extrapolates the spurious slope further than ridge.
	rng := stats.NewRNG(5)
	n := 50
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 180 + rng.Normal(0, 1.5)
		ys[i] = 90 + rng.Normal(0, 1.5)
	}
	// Last few samples drift.
	for i := n - 5; i < n; i++ {
		xs[i] = 180 + float64(i-(n-5))*3
	}
	ridgeCfg := DefaultViewportConfig()
	ridgeCfg.Lambda = 200
	olsCfg := ridgeCfg
	olsCfg.Kind = ViewportOLS
	pr, err := Viewport(xs, ys, 2, ridgeCfg)
	if err != nil {
		t.Fatal(err)
	}
	po, err := Viewport(xs, ys, 2, olsCfg)
	if err != nil {
		t.Fatal(err)
	}
	devR := math.Abs(geom.WrapDeltaX(180, pr.X))
	devO := math.Abs(geom.WrapDeltaX(180, po.X))
	if devO <= devR {
		t.Fatalf("OLS deviation %.1f should exceed ridge %.1f", devO, devR)
	}
}

func TestViewportKindString(t *testing.T) {
	for k, want := range map[ViewportKind]string{
		ViewportRidge: "ridge", ViewportOLS: "ols", ViewportStatic: "static",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if ViewportKind(9).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}
