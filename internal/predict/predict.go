// Package predict implements the client-side predictors of Section IV:
// ridge-regression viewport prediction over the 50 Hz viewing-center
// coordinate streams, and the harmonic-mean throughput estimator the MPC
// controller uses.
package predict

import (
	"fmt"
	"math"

	"ptile360/internal/geom"
	"ptile360/internal/mat"
	"ptile360/internal/stats"
)

// ViewportKind selects the viewport-prediction family.
type ViewportKind int

// Viewport predictor kinds.
const (
	// ViewportRidge is the paper's ridge-regression extrapolation (default,
	// zero value).
	ViewportRidge ViewportKind = iota
	// ViewportOLS is ordinary least squares (no slope damping) — the
	// overfitting-prone baseline the paper rejects.
	ViewportOLS
	// ViewportStatic predicts the current position (no extrapolation).
	ViewportStatic
)

// String implements fmt.Stringer.
func (k ViewportKind) String() string {
	switch k {
	case ViewportRidge:
		return "ridge"
	case ViewportOLS:
		return "ols"
	case ViewportStatic:
		return "static"
	default:
		return fmt.Sprintf("ViewportKind(%d)", int(k))
	}
}

// ViewportConfig tunes the viewport predictor.
type ViewportConfig struct {
	// Kind selects the predictor family; the zero value is the paper's
	// ridge regression.
	Kind ViewportKind
	// HistorySec is how much recent history (seconds) feeds the regression.
	HistorySec float64
	// SampleRate is the coordinate sampling rate in Hz.
	SampleRate float64
	// Lambda is the ridge penalty; the paper chose ridge regression for its
	// robustness to overfitting on short, correlated histories.
	Lambda float64
}

// DefaultViewportConfig returns the evaluation setting: one second of 50 Hz
// history with a mild ridge penalty.
func DefaultViewportConfig() ViewportConfig {
	return ViewportConfig{HistorySec: 1.0, SampleRate: 50, Lambda: 1.0}
}

// Validate reports whether the configuration is usable.
func (c ViewportConfig) Validate() error {
	if c.HistorySec <= 0 {
		return fmt.Errorf("predict: non-positive history %g", c.HistorySec)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("predict: non-positive sample rate %g", c.SampleRate)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("predict: negative ridge penalty %g", c.Lambda)
	}
	return nil
}

// Viewport predicts the viewing center horizonSec seconds past the end of
// the coordinate history. xs must be the unwrapped x stream (continuous
// across the panorama seam, as produced by Trace.XYSeries) and ys the y
// stream; both sampled at cfg.SampleRate with the last element being "now".
//
// Each coordinate is regressed on time with ridge-regularized linear least
// squares and extrapolated to the target instant.
func Viewport(xs, ys []float64, horizonSec float64, cfg ViewportConfig) (geom.Point, error) {
	if err := cfg.Validate(); err != nil {
		return geom.Point{}, err
	}
	if len(xs) != len(ys) {
		return geom.Point{}, fmt.Errorf("predict: x/y length mismatch %d vs %d", len(xs), len(ys))
	}
	n := int(cfg.HistorySec * cfg.SampleRate)
	if n < 2 {
		return geom.Point{}, fmt.Errorf("predict: history window of %d samples too short", n)
	}
	if len(xs) < 2 {
		return geom.Point{}, fmt.Errorf("predict: need at least 2 samples, got %d", len(xs))
	}
	if horizonSec < 0 {
		return geom.Point{}, fmt.Errorf("predict: negative horizon %g", horizonSec)
	}
	if len(xs) < n {
		n = len(xs)
	}
	if cfg.Kind == ViewportStatic {
		return geom.Point{X: geom.NormalizeYaw(xs[len(xs)-1]), Y: clampY(ys[len(ys)-1])}, nil
	}
	hx := xs[len(xs)-n:]
	hy := ys[len(ys)-n:]

	dt := 1 / cfg.SampleRate
	// Time axis centred at "now" (t = 0) so the intercept is the current
	// position and extrapolation is numerically stable.
	design := mat.New(n, 2)
	for i := 0; i < n; i++ {
		design.Set(i, 0, 1)
		design.Set(i, 1, float64(i-(n-1))*dt)
	}
	// Penalize only the slope: shrinking the intercept would bias the
	// prediction toward panorama coordinate 0. The OLS kind zeroes the
	// penalty entirely.
	lambda := cfg.Lambda
	if cfg.Kind == ViewportOLS {
		lambda = 0
	}
	penalties := []float64{0, lambda}
	cx, err := mat.RidgeLeastSquaresPenalized(design, hx, penalties)
	if err != nil {
		return geom.Point{}, fmt.Errorf("predict: x fit: %w", err)
	}
	cy, err := mat.RidgeLeastSquaresPenalized(design, hy, penalties)
	if err != nil {
		return geom.Point{}, fmt.Errorf("predict: y fit: %w", err)
	}
	px := cx[0] + cx[1]*horizonSec
	py := cy[0] + cy[1]*horizonSec
	return geom.Point{X: geom.NormalizeYaw(px), Y: clampY(py)}, nil
}

func clampY(y float64) float64 {
	if y < 0 {
		return 0
	}
	if y > 180 {
		return 180
	}
	return y
}

// Bandwidth estimates the throughput for upcoming downloads as the harmonic
// mean of the last window per-segment throughput samples (Section IV-C).
//
// Small windows (≤ bandwidthInlineCap) are stored in the struct itself, so a
// value embedded in bulk-allocated session state costs no separate heap
// allocation. A Bandwidth must not be copied after Init/Observe: the samples
// slice may alias the inline array.
type Bandwidth struct {
	window  int
	samples []float64
	inline  [8]float64
}

// bandwidthInlineCap is the largest window served by the inline array.
const bandwidthInlineCap = 8

// NewBandwidth returns an estimator over the given window size (the paper
// uses the past several segments; 5 is the customary MPC setting).
func NewBandwidth(window int) (*Bandwidth, error) {
	b := new(Bandwidth)
	if err := b.Init(window); err != nil {
		return nil, err
	}
	return b, nil
}

// Init (re)initializes a zero-valued or recycled estimator in place with the
// given window, backing small windows with the inline array. Bulk allocators
// (fleet session slabs) use this to avoid the per-session allocations
// NewBandwidth would cost.
func (b *Bandwidth) Init(window int) error {
	if window <= 0 {
		return fmt.Errorf("predict: non-positive bandwidth window %d", window)
	}
	b.window = window
	if window <= bandwidthInlineCap {
		b.samples = b.inline[:0]
	} else {
		b.samples = make([]float64, 0, window)
	}
	return nil
}

// Observe records a completed download's throughput in bits/s. The window is
// a fixed-capacity buffer shifted in place (oldest-first order preserved for
// the harmonic-mean sum), so steady-state observation allocates nothing.
func (b *Bandwidth) Observe(rateBps float64) error {
	r, err := sanitizeRate(rateBps)
	if err != nil {
		return err
	}
	if len(b.samples) < b.window {
		b.samples = append(b.samples, r)
		return nil
	}
	copy(b.samples, b.samples[1:])
	b.samples[b.window-1] = r
	return nil
}

// Estimate returns the harmonic-mean throughput estimate. It fails until at
// least one sample has been observed.
func (b *Bandwidth) Estimate() (float64, error) {
	hm, err := stats.HarmonicMean(b.samples)
	if err != nil {
		return 0, fmt.Errorf("predict: no bandwidth history: %w", err)
	}
	return hm, nil
}

// Ready reports whether at least one sample has been observed.
func (b *Bandwidth) Ready() bool { return len(b.samples) > 0 }

// AppendStateBits implements StateBits: the window plus every sample, in
// window order.
func (b *Bandwidth) AppendStateBits(dst []uint64) []uint64 {
	dst = append(dst, uint64(EstimatorHarmonic), uint64(b.window), uint64(len(b.samples)))
	for _, s := range b.samples {
		dst = append(dst, math.Float64bits(s))
	}
	return dst
}
