package predict

import (
	"math"
	"testing"
)

// allEstimatorKinds lists every registered kind for table-driven suites.
var allEstimatorKinds = []EstimatorKind{
	EstimatorHarmonic, EstimatorLastSample, EstimatorEWMA,
	EstimatorMovingAverage, EstimatorDelayGradient,
}

// TestObservePoisonRejected pins the hardening contract for every
// estimator kind: zero/negative/NaN/±Inf observations return an error and
// leave the estimate bit-identical, and absurd finite samples clamp
// instead of dominating the window.
func TestObservePoisonRejected(t *testing.T) {
	poisons := []float64{0, -1, -1e9, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, kind := range allEstimatorKinds {
		t.Run(kind.String(), func(t *testing.T) {
			e, err := NewEstimator(kind, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []float64{8e6, 12e6, 10e6} {
				if err := e.Observe(r); err != nil {
					t.Fatalf("good sample %g rejected: %v", r, err)
				}
			}
			before, err := e.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range poisons {
				if err := e.Observe(p); err == nil {
					t.Fatalf("poison sample %g accepted", p)
				}
				after, err := e.Estimate()
				if err != nil {
					t.Fatalf("estimate broken after rejected %g: %v", p, err)
				}
				if math.Float64bits(after) != math.Float64bits(before) {
					t.Fatalf("rejected sample %g changed estimate: %g -> %g", p, before, after)
				}
			}
			// A finite but absurd sample clamps; the estimate stays finite
			// and within the sane ceiling.
			if err := e.Observe(1e300); err != nil {
				t.Fatalf("clampable sample rejected: %v", err)
			}
			got, err := e.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) || got > maxSaneRateBps {
				t.Fatalf("estimate %g escaped the sane ceiling after clamp", got)
			}
		})
	}
}

// TestObservePoisonOnFreshEstimator checks the window stays empty when the
// first-ever sample is poison.
func TestObservePoisonOnFreshEstimator(t *testing.T) {
	for _, kind := range allEstimatorKinds {
		t.Run(kind.String(), func(t *testing.T) {
			e, err := NewEstimator(kind, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Observe(math.NaN()); err == nil {
				t.Fatal("NaN accepted as first sample")
			}
			if e.Ready() {
				t.Fatal("estimator became ready from a rejected sample")
			}
			if _, err := e.Estimate(); err == nil {
				t.Fatal("estimate available after only a rejected sample")
			}
		})
	}
}

// feedSteady feeds packets of a download where the queueing delay stays
// flat: send and recv advance in lockstep.
func feedSteady(e *DelayGradient, start float64, groups int) {
	for g := 0; g < groups; g++ {
		base := start + float64(g)*0.010
		for k := 0; k < 3; k++ {
			ts := base + float64(k)*0.001
			e.ObservePacket(ts, ts+0.020, 1500)
		}
	}
}

// feedBloat feeds packets whose one-way delay grows linearly — a standing
// queue building under the flow.
func feedBloat(e *DelayGradient, start float64, groups int) {
	delay := 0.020
	for g := 0; g < groups; g++ {
		base := start + float64(g)*0.010
		for k := 0; k < 3; k++ {
			ts := base + float64(k)*0.001
			e.ObservePacket(ts, ts+delay, 1500)
		}
		delay += 0.008 // ~0.8 s/s slope, far above threshold
	}
}

func TestDelayGradientSteadyProbesUp(t *testing.T) {
	e := NewDelayGradient()
	if err := e.Observe(10e6); err != nil {
		t.Fatal(err)
	}
	feedSteady(e, 1, 30)
	if err := e.Observe(10e6); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Estimate()
	if got <= 10e6 || got > probeCap*10e6 {
		t.Fatalf("steady link estimate %g, want a bounded probe above 10e6", got)
	}
}

func TestDelayGradientDetectsBufferbloat(t *testing.T) {
	e := NewDelayGradient()
	if err := e.Observe(24e6); err != nil {
		t.Fatal(err)
	}
	feedBloat(e, 1, 30)
	if err := e.Observe(24e6); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Estimate()
	want := drainBeta * 24e6
	if math.Abs(got-want) > 1 {
		t.Fatalf("bloated link estimate %g, want AIMD backoff to %g", got, want)
	}
	// The latch clears: a following clean segment probes again.
	feedSteady(e, 10, 30)
	if err := e.Observe(24e6); err != nil {
		t.Fatal(err)
	}
	got2, _ := e.Estimate()
	if got2 <= got {
		t.Fatalf("estimate did not recover after overuse cleared: %g -> %g", got, got2)
	}
}

func TestDelayGradientIgnoresBadPackets(t *testing.T) {
	e := NewDelayGradient()
	e.ObservePacket(math.NaN(), 1, 100)
	e.ObservePacket(1, math.Inf(1), 100)
	e.ObservePacket(1, 2, 0)
	e.ObservePacket(1, 2, -5)
	if err := e.Observe(5e6); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate()
	if err != nil || math.IsNaN(got) {
		t.Fatalf("bad packets poisoned the estimator: %g, %v", got, err)
	}
}

// TestDelayGradientStateBitsDeterminism pins the fingerprint contract:
// identical feeds produce identical words, and the words change when the
// observable state changes.
func TestDelayGradientStateBitsDeterminism(t *testing.T) {
	mk := func() *DelayGradient {
		e := NewDelayGradient()
		e.Observe(10e6)
		feedBloat(e, 1, 12)
		return e
	}
	a, b := mk(), mk()
	wa := a.AppendStateBits(nil)
	wb := b.AppendStateBits(nil)
	if len(wa) != len(wb) {
		t.Fatalf("word counts diverge: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("word %d diverges: %x vs %x", i, wa[i], wb[i])
		}
	}
	if wa[0] != uint64(EstimatorDelayGradient) {
		t.Fatalf("first word %d, want kind %d", wa[0], EstimatorDelayGradient)
	}
	// Advancing one copy must change the fingerprint.
	feedBloat(a, 5, 3)
	wa2 := a.AppendStateBits(nil)
	same := len(wa2) == len(wb)
	if same {
		for i := range wa2 {
			if wa2[i] != wb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("fingerprint unchanged after new packet groups")
	}
}

func TestEstimatorKindDelayGradientRegistered(t *testing.T) {
	if EstimatorDelayGradient.String() != "delay-gradient" {
		t.Fatalf("String() = %q", EstimatorDelayGradient.String())
	}
	e, err := NewEstimator(EstimatorDelayGradient, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*DelayGradient); !ok {
		t.Fatalf("NewEstimator returned %T", e)
	}
	if _, ok := e.(PacketObserver); !ok {
		t.Fatal("delay-gradient estimator does not expose PacketObserver")
	}
}
