package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// sloHarness is a registry + TSDB + engine driven on a 1 s virtual clock.
type sloHarness struct {
	reg *Registry
	db  *TSDB
	eng *SLOEngine
	now time.Time
}

func newSLOHarness(t *testing.T, objectives []Objective) *sloHarness {
	t.Helper()
	reg := NewRegistry()
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: time.Second, Slots: 600}}})
	eng, err := NewSLOEngine(db, reg, objectives)
	if err != nil {
		t.Fatalf("NewSLOEngine: %v", err)
	}
	return &sloHarness{reg: reg, db: db, eng: eng, now: time.Unix(10000, 0)}
}

// tick advances one virtual second: fn mutates the counters, then the TSDB
// samples (which evaluates the engine via the OnSample hook).
func (h *sloHarness) tick(fn func()) {
	if fn != nil {
		fn()
	}
	h.db.Sample(h.now)
	h.now = h.now.Add(time.Second)
}

func statusOf(t *testing.T, eng *SLOEngine, name string) SLOStatus {
	t.Helper()
	for _, st := range eng.Status() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("SLO %q not in status", name)
	return SLOStatus{}
}

// TestBurnRateTable pins the burn-rate arithmetic against hand-computed
// windows: bad/total event streams with known ratios per window.
func TestBurnRateTable(t *testing.T) {
	win := []BurnWindow{{Name: "w", Long: 8 * time.Second, Short: 2 * time.Second, Factor: 2}}
	cases := []struct {
		name string
		// perTickBad[i] bad events added before tick i; total is always 10.
		perTickBad []float64
		wantRatio  float64 // long-window (8 s) error ratio after the last tick
		wantLong   float64
		wantShort  float64
		wantBurn   bool
	}{
		{
			name:       "healthy",
			perTickBad: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
			wantRatio:  0, wantLong: 0, wantShort: 0, wantBurn: false,
		},
		{
			// 9 ticks of data: the 8 s long window sees 8 tick-deltas with
			// bad 4/tick → ratio 0.4, burn 0.4/(1−0.9) = 4 > 2 in both.
			name:       "steady burn",
			perTickBad: []float64{0, 4, 4, 4, 4, 4, 4, 4, 4, 4},
			wantRatio:  0.4, wantLong: 4, wantShort: 4, wantBurn: true,
		},
		{
			// A burst that ended: the 8 s long window still sees 16 bad of 80
			// total (ratio 0.2 → burn exactly 2, not > 2) while the 2 s short
			// window is clean → not burning. The window delta is measured from
			// the first in-window sample, so the burst sits at ticks 2-3.
			name:       "burst ended",
			perTickBad: []float64{0, 0, 8, 8, 0, 0, 0, 0, 0, 0},
			wantRatio:  0.2, wantLong: 2, wantShort: 0, wantBurn: false,
		},
		{
			// Short window hot but the long window dilutes it below the
			// factor: significance gate holds the alert back.
			name:       "short spike only",
			perTickBad: []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
			wantRatio:  1.0 / 80.0, wantLong: 0.125, wantShort: 0.5, wantBurn: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newSLOHarness(t, []Objective{{
				Name:    "avail",
				Kind:    SLOEventRatio,
				Target:  0.9,
				Bad:     []Selector{Sel("reqs_total", L("code", "5*"))},
				Total:   []Selector{Sel("reqs_total")},
				Windows: win,
			}})
			bad := h.reg.Counter("reqs_total", "t", L("code", "500"))
			good := h.reg.Counter("reqs_total", "t", L("code", "200"))
			for _, b := range tc.perTickBad {
				b := b
				h.tick(func() {
					bad.Add(b)
					good.Add(10 - b)
				})
			}
			st := statusOf(t, h.eng, "avail")
			if abs(st.ErrorRatio-tc.wantRatio) > 1e-9 {
				t.Fatalf("error ratio = %v, want %v", st.ErrorRatio, tc.wantRatio)
			}
			w := st.Windows[0]
			if !w.HasData {
				t.Fatal("window has no data")
			}
			if abs(w.LongBurn-tc.wantLong) > 1e-9 || abs(w.ShortBurn-tc.wantShort) > 1e-9 {
				t.Fatalf("burns = %v/%v, want %v/%v", w.LongBurn, w.ShortBurn, tc.wantLong, tc.wantShort)
			}
			if st.Burning != tc.wantBurn {
				t.Fatalf("burning = %v, want %v", st.Burning, tc.wantBurn)
			}
		})
	}
}

// TestSLOBurnAndRecover drives an availability objective through healthy →
// fault → drain phases, checking the burning transitions and that OnBurn
// fires exactly once per transition into burning.
func TestSLOBurnAndRecover(t *testing.T) {
	win := []BurnWindow{{Name: "w", Long: 6 * time.Second, Short: 2 * time.Second, Factor: 2}}
	h := newSLOHarness(t, []Objective{{
		Name:    "avail",
		Kind:    SLOEventRatio,
		Target:  0.9,
		Bad:     []Selector{Sel("reqs_total", L("code", "5*"))},
		Total:   []Selector{Sel("reqs_total")},
		Windows: win,
	}})
	var burns []string
	h.eng.OnBurn(func(name string) { burns = append(burns, name) })
	bad := h.reg.Counter("reqs_total", "t", L("code", "503"))
	good := h.reg.Counter("reqs_total", "t", L("code", "200"))

	for i := 0; i < 8; i++ {
		h.tick(func() { good.Add(10) })
	}
	if st := statusOf(t, h.eng, "avail"); st.Burning {
		t.Fatal("burning during healthy phase")
	}
	for i := 0; i < 8; i++ {
		h.tick(func() { bad.Add(5); good.Add(5) })
	}
	if st := statusOf(t, h.eng, "avail"); !st.Burning {
		t.Fatalf("not burning after fault phase: %+v", st.Windows[0])
	}
	if len(burns) != 1 || burns[0] != "avail" {
		t.Fatalf("OnBurn calls = %v, want exactly [avail]", burns)
	}
	// Drain: healthy again for longer than the long window.
	for i := 0; i < 10; i++ {
		h.tick(func() { good.Add(10) })
	}
	if st := statusOf(t, h.eng, "avail"); st.Burning {
		t.Fatal("still burning after recovery")
	}
	if len(burns) != 1 {
		t.Fatalf("OnBurn fired on recovery: %v", burns)
	}
	// Gauges mirror the status.
	vals := scrape(t, h.reg)
	if vals[`slo_burning{slo="avail"}`] != 0 {
		t.Fatal("slo_burning gauge still 1 after recovery")
	}
}

// TestSLOLatencyKind: observations above the threshold are the bad events.
func TestSLOLatencyKind(t *testing.T) {
	win := []BurnWindow{{Name: "w", Long: 4 * time.Second, Short: 2 * time.Second, Factor: 3}}
	h := newSLOHarness(t, []Objective{{
		Name:         "latency",
		Kind:         SLOLatency,
		Target:       0.9,
		Latency:      Sel("req_seconds"),
		ThresholdSec: 0.2,
		Windows:      win,
	}})
	hist := h.reg.Histogram("req_seconds", "t", []float64{0.1, 0.2, 0.4})
	for i := 0; i < 6; i++ {
		h.tick(func() {
			// Half the requests land above 0.2 s: ratio 0.5, burn 5 > 3.
			hist.Observe(0.05)
			hist.Observe(0.3)
		})
	}
	st := statusOf(t, h.eng, "latency")
	if abs(st.ErrorRatio-0.5) > 1e-9 {
		t.Fatalf("latency error ratio = %v, want 0.5", st.ErrorRatio)
	}
	if !st.Burning {
		t.Fatal("latency SLO not burning at 50% slow requests")
	}
}

// TestSLOQuotientKind: windowed numerator/denominator against a budget
// (stall seconds per segment).
func TestSLOQuotientKind(t *testing.T) {
	win := []BurnWindow{{Name: "w", Long: 4 * time.Second, Short: 2 * time.Second, Factor: 2}}
	h := newSLOHarness(t, []Objective{{
		Name:    "stall",
		Kind:    SLOQuotient,
		Num:     []Selector{Sel("stall_seconds_total")},
		Den:     []Selector{Sel("segments_total")},
		Budget:  0.05,
		Windows: win,
	}})
	stall := h.reg.Counter("stall_seconds_total", "t")
	segs := h.reg.Counter("segments_total", "t")
	for i := 0; i < 6; i++ {
		h.tick(func() {
			segs.Add(10)
			stall.Add(2) // 0.2 s stall per segment = 4× the 0.05 budget
		})
	}
	st := statusOf(t, h.eng, "stall")
	if abs(st.ErrorRatio-0.2) > 1e-9 {
		t.Fatalf("quotient = %v, want 0.2", st.ErrorRatio)
	}
	if !st.Burning {
		t.Fatal("quotient SLO not burning at 4× budget")
	}
}

// TestSLOValidation rejects malformed objectives.
func TestSLOValidation(t *testing.T) {
	reg := NewRegistry()
	db := NewTSDB(reg, TSDBConfig{})
	bad := []Objective{
		{Name: "", Kind: SLOEventRatio},
		{Name: "x", Kind: SLOEventRatio, Target: 0.9},                                             // no selectors
		{Name: "x", Kind: SLOEventRatio, Target: 1.5, Bad: []Selector{{}}, Total: []Selector{{}}}, // target out of range
		{Name: "x", Kind: SLOLatency, Target: 0.9},                                                // no histogram
		{Name: "x", Kind: SLOQuotient},                                                            // no budget
		{Name: "x", Kind: "bogus"},
	}
	for i, o := range bad {
		if _, err := NewSLOEngine(db, reg, []Objective{o}); err == nil {
			t.Fatalf("objective %d accepted: %+v", i, o)
		}
	}
	dup := Objective{Name: "d", Kind: SLOQuotient, Num: []Selector{Sel("a")}, Den: []Selector{Sel("b")}, Budget: 1}
	if _, err := NewSLOEngine(db, reg, []Objective{dup, dup}); err == nil {
		t.Fatal("duplicate SLO names accepted")
	}
}

// TestSLOGoldenJSON pins the /slo handler's JSON contract.
func TestSLOGoldenJSON(t *testing.T) {
	win := []BurnWindow{{Name: "w", Long: 4 * time.Second, Short: 2 * time.Second, Factor: 2}}
	h := newSLOHarness(t, []Objective{{
		Name:        "avail",
		Description: "test objective",
		Kind:        SLOEventRatio,
		Target:      0.9,
		Bad:         []Selector{Sel("reqs_total", L("code", "5*"))},
		Total:       []Selector{Sel("reqs_total")},
		Windows:     win,
	}})
	good := h.reg.Counter("reqs_total", "t", L("code", "200"))
	for i := 0; i < 5; i++ {
		h.tick(func() { good.Add(10) })
	}

	srv := httptest.NewServer(h.eng.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		SLOs []struct {
			Name        string  `json:"name"`
			Description string  `json:"description"`
			Kind        string  `json:"kind"`
			Target      float64 `json:"target"`
			ErrorRatio  float64 `json:"error_ratio"`
			Burning     bool    `json:"burning"`
			Windows     []struct {
				Name     string  `json:"name"`
				LongSec  float64 `json:"long_sec"`
				ShortSec float64 `json:"short_sec"`
				Factor   float64 `json:"factor"`
				HasData  bool    `json:"has_data"`
			} `json:"windows"`
		} `json:"slos"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.SLOs) != 1 {
		t.Fatalf("slos = %d, want 1", len(got.SLOs))
	}
	s := got.SLOs[0]
	if s.Name != "avail" || s.Description != "test objective" || s.Kind != "event_ratio" ||
		s.Target != 0.9 || s.ErrorRatio != 0 || s.Burning {
		t.Fatalf("unexpected SLO JSON: %+v", s)
	}
	if len(s.Windows) != 1 || s.Windows[0].Name != "w" || s.Windows[0].LongSec != 4 ||
		s.Windows[0].ShortSec != 2 || s.Windows[0].Factor != 2 || !s.Windows[0].HasData {
		t.Fatalf("unexpected window JSON: %+v", s.Windows)
	}
}

// TestBurnWindowsShape: the canonical fast/slow pair scales with the base.
func TestBurnWindowsShape(t *testing.T) {
	ws := BurnWindows(100 * time.Millisecond)
	if len(ws) != 2 {
		t.Fatalf("window pairs = %d, want 2", len(ws))
	}
	if ws[0].Long != 6*time.Second || ws[0].Short != 500*time.Millisecond || ws[0].Factor != 14.4 {
		t.Fatalf("fast pair = %+v", ws[0])
	}
	if ws[1].Long != 30*time.Second || ws[1].Short != 3*time.Second || ws[1].Factor != 6 {
		t.Fatalf("slow pair = %+v", ws[1])
	}
}
