package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOpsMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_test_total", "").Add(5)
	RegisterGoMetrics(reg)
	mux := NewOpsMux(reg)

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String(), rec.Header()
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples, err := ParsePrometheus(body)
	if err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name] = s.Value
	}
	if found["ops_test_total"] != 5 {
		t.Fatalf("ops_test_total missing from scrape: %v", found)
	}
	if found["go_goroutines"] <= 0 {
		t.Fatalf("go_goroutines = %v, want > 0", found["go_goroutines"])
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _, _ := get("/debug/pprof/heap"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d", code)
	}

	// /debug/vars is valid JSON and carries this registry (published under a
	// metrics_N name because it is not the default registry).
	code, body, _ = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	var published map[string]float64
	for name, raw := range vars {
		if !strings.HasPrefix(name, "metrics") {
			continue
		}
		var m map[string]float64
		if json.Unmarshal(raw, &m) == nil && m["ops_test_total"] == 5 {
			published = m
		}
	}
	if published == nil {
		t.Fatalf("registry not found in /debug/vars")
	}
}

func TestStartOpsServesOverTCP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tcp_scrape_total", "").Inc()
	ops, err := StartOps("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatalf("StartOps: %v", err)
	}
	defer ops.Close()

	resp, err := http.Get("http://" + ops.Addr().String() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "tcp_scrape_total 1") {
		t.Fatalf("scrape body missing counter:\n%s", body)
	}
	if err := ops.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
