// Package obs is the repo's unified observability layer: a dependency-free
// (stdlib-only) concurrent metric registry with Prometheus-text and expvar
// exposition, an ops endpoint that also mounts net/http/pprof, structured
// logging on log/slog with request-scoped IDs, and a lightweight span
// recorder with per-stage latency histograms.
//
// The paper's contribution is a measurable trade-off — energy saved per unit
// of QoE lost — so every layer of the repro (server overload protection,
// the streaming client's QoE/energy accounting, the experiment engine's
// caches) reports through this package, and the numbers survive a live
// scrape under load. See DESIGN.md for why the layer is hand-rolled rather
// than a client_golang dependency.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type, mirroring the Prometheus TYPE line.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// String names the kind exactly as the exposition TYPE line expects.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric dimension. Construct with L for brevity.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// atomicFloat is a float64 with atomic add/set via CompareAndSwap on bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry so they are exported.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter. Negative deltas are ignored — counters only go
// up; use a Gauge for values that fall.
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can rise and fall.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add shifts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observations are counted into
// the first bucket whose upper bound is ≥ the value, plus an implicit +Inf
// bucket, with a running sum and count — exactly the Prometheus histogram
// contract (cumulative buckets are computed at exposition time). Each bucket
// additionally retains the most recent exemplar (value + trace id) attached
// via ObserveExemplar; exemplars surface through JSON debug endpoints only,
// so the text exposition stays byte-stable.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	ex     []atomic.Pointer[Exemplar]
	sum    atomicFloat
	count  atomic.Uint64
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	// BucketLE is the upper bound of the bucket the observation landed in
	// (+Inf for the overflow bucket).
	BucketLE float64 `json:"bucket_le"`
	// Value is the observed value.
	Value float64 `json:"value"`
	// TraceID names the trace.
	TraceID string `json:"trace_id"`
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one sample and, when traceID is non-empty, keeps
// it as the landing bucket's exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		h.ex[i].Store(&Exemplar{BucketLE: le, Value: v, TraceID: traceID})
	}
}

// Exemplars snapshots the buckets' retained exemplars (buckets that never
// saw a traced observation are skipped), ordered by bucket bound.
func (h *Histogram) Exemplars() []Exemplar {
	var out []Exemplar
	for i := range h.ex {
		if e := h.ex[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefLatencyBuckets spans 100µs to 10s — wide enough for both the in-memory
// middleware stages and a shaped segment download.
func DefLatencyBuckets() []float64 {
	return []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// series is one exported (labels → metric) instance within a family.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // callback gauge, evaluated at exposition
}

// family groups all series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	mu      sync.Mutex
	series  map[string]*series // keyed by canonical label string
}

// Registry is a concurrent metric store. The zero value is not usable; use
// NewRegistry. Lookups take a lock — hot paths should obtain their Counter /
// Gauge / Histogram handles once and hold them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order snapshot for deterministic iteration growth
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the cmds share.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// labelKey canonicalizes a label set: sorted by key, NUL-joined. The input
// slice is sorted in place (callers pass fresh literals).
func labelKey(labels []Label) string {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(0)
		sb.WriteString(l.Value)
		sb.WriteByte(0)
	}
	return sb.String()
}

// familyFor returns the family, creating it on first use. A name reused with
// a different kind panics: that is a programming error, not load-dependent.
func (r *Registry) familyFor(name, help string, kind Kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	return f
}

func (f *family) seriesFor(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		switch f.kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{
				bounds: f.buckets,
				counts: make([]atomic.Uint64, len(f.buckets)+1),
				ex:     make([]atomic.Pointer[Exemplar], len(f.buckets)+1),
			}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns (registering on first use) the counter for the label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.familyFor(name, help, KindCounter, nil).seriesFor(labels).c
}

// Gauge returns (registering on first use) the gauge for the label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.familyFor(name, help, KindGauge, nil).seriesFor(labels).g
}

// Histogram returns (registering on first use) the histogram for the label
// set. buckets are upper bounds in increasing order (+Inf is implicit); they
// are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets()
	}
	bs := make([]float64, len(buckets))
	copy(bs, buckets)
	sort.Float64s(bs)
	return r.familyFor(name, help, KindHistogram, bs).seriesFor(labels).h
}

// GaugeFunc registers a callback gauge evaluated at exposition time —
// ideal for values another subsystem already tracks (queue depth, cache
// hit counts, runtime stats). Re-registering the same (name, labels)
// replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, KindGauge, nil)
	s := f.seriesFor(labels)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// RegisterGoMetrics exports a minimal set of Go runtime gauges (goroutines,
// heap allocation) so every ops endpoint answers the first triage questions.
func RegisterGoMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", goGoroutines)
	r.GaugeFunc("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", goHeapAlloc)
}
