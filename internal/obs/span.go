package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The span recorder is deliberately lighter than a distributed tracer:
// process-local, fixed stage names, no sampling decisions. Each Tracer owns
// one lifecycle (the server request path, the client segment path), each
// Span is one pass through it, and every stage transition lands in a
// per-stage latency histogram plus a bounded ring of recent spans for
// /debug/spans inspection. Spans can additionally join a cross-tier trace
// (WithTrace): the record then carries trace/span/parent ids and a SpanHub
// can stitch the tiers of one request back together.

// StageRecord is one timed stage within a completed span.
type StageRecord struct {
	// Stage names the lifecycle step (e.g. "admission", "download").
	Stage string `json:"stage"`
	// Seconds is the stage latency.
	Seconds float64 `json:"seconds"`
}

// SpanRecord is one completed span in the recent-spans ring.
type SpanRecord struct {
	// Name is the tracer's lifecycle name.
	Name string `json:"name"`
	// ID is the request/session-scoped identifier, when one was attached.
	ID string `json:"id,omitempty"`
	// TraceID, SpanID, and ParentID place the span in a cross-tier trace
	// when WithTrace joined one.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	// StartUnixNano orders spans of one trace across tracers.
	StartUnixNano int64 `json:"start_unix_nano,omitempty"`
	// Stages lists the recorded stage latencies in order.
	Stages []StageRecord `json:"stages"`
	// TotalSeconds is the span's start→end latency.
	TotalSeconds float64 `json:"total_seconds"`
}

// defaultRingCap bounds the recent-spans ring per tracer unless SetRingSize
// overrides it.
const defaultRingCap = 128

// Tracer records spans for one lifecycle and owns its histograms.
type Tracer struct {
	name    string
	reg     *Registry
	total   *Histogram
	dropped *Counter

	hmu    sync.Mutex
	stages map[string]*Histogram

	rmu  sync.Mutex
	cap  int
	ring []SpanRecord
	next int
}

// NewTracer builds a tracer named name, registering its histograms on reg:
// <name>_stage_seconds{stage=...} per stage, <name>_span_seconds for the
// whole lifecycle, and spans_dropped_total{tracer=name} counting ring
// evictions.
func NewTracer(reg *Registry, name string) *Tracer {
	return &Tracer{
		name:    name,
		reg:     reg,
		total:   reg.Histogram(name+"_span_seconds", "Total latency of one "+name+" lifecycle.", nil),
		dropped: reg.Counter("spans_dropped_total", "Completed spans evicted from a tracer's recent ring.", L("tracer", name)),
		stages:  make(map[string]*Histogram),
		cap:     defaultRingCap,
	}
}

// SetRingSize resizes the recent-spans ring (default 128). The most recent
// min(n, held) spans are kept. n < 1 is ignored.
func (t *Tracer) SetRingSize(n int) {
	if n < 1 {
		return
	}
	t.rmu.Lock()
	defer t.rmu.Unlock()
	recent := t.recentLocked()
	if len(recent) > n {
		recent = recent[len(recent)-n:]
	}
	t.cap = n
	t.ring = make([]SpanRecord, 0, n)
	t.ring = append(t.ring, recent...)
	t.next = len(recent)
}

// RingSize returns the current ring capacity.
func (t *Tracer) RingSize() int {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return t.cap
}

// Name returns the tracer's lifecycle name.
func (t *Tracer) Name() string { return t.name }

// stageHist returns (registering on first use) the stage's histogram.
func (t *Tracer) stageHist(stage string) *Histogram {
	t.hmu.Lock()
	h, ok := t.stages[stage]
	if !ok {
		h = t.reg.Histogram(t.name+"_stage_seconds",
			"Per-stage latency of the "+t.name+" lifecycle.", nil, L("stage", stage))
		t.stages[stage] = h
	}
	t.hmu.Unlock()
	return h
}

// Span is one in-flight pass through the tracer's lifecycle. It is not
// goroutine-safe: a span belongs to the goroutine driving the lifecycle.
type Span struct {
	t        *Tracer
	id       string
	traceID  string
	spanID   string
	parentID string
	start    time.Time
	mark     time.Time
	rec      []StageRecord
	done     bool
}

// Start opens a span. id may be "" (attach one later with SetID).
func (t *Tracer) Start(id string) *Span {
	now := time.Now()
	return &Span{t: t, id: id, start: now, mark: now}
}

// SetID attaches the request/session identifier after the fact.
func (s *Span) SetID(id string) { s.id = id }

// WithTrace joins the span to a cross-tier trace: it adopts tc's trace id
// (minting a fresh one when tc is empty), records tc's span as its parent,
// and mints its own span id. Returns s for chaining.
func (s *Span) WithTrace(tc TraceContext) *Span {
	if tc.TraceID == "" {
		tc.TraceID = NewTraceID()
	}
	s.traceID = tc.TraceID
	s.parentID = tc.SpanID
	if s.spanID == "" {
		s.spanID = NewSpanID()
	}
	return s
}

// TraceContext returns the span's position for downstream propagation:
// same trace, this span as parent. Zero when WithTrace was never called.
func (s *Span) TraceContext() TraceContext {
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID}
}

// TraceID returns the trace id joined by WithTrace, or "".
func (s *Span) TraceID() string { return s.traceID }

// Stage closes the current stage: the time since the previous mark (or the
// span start) is observed into the stage's histogram and recorded.
func (s *Span) Stage(stage string) {
	now := time.Now()
	d := now.Sub(s.mark).Seconds()
	s.mark = now
	s.t.stageHist(stage).Observe(d)
	s.rec = append(s.rec, StageRecord{Stage: stage, Seconds: d})
}

// End closes the span, observing the total latency and pushing the record
// into the recent ring. End is idempotent.
func (s *Span) End() {
	if s.done {
		return
	}
	s.done = true
	total := time.Since(s.start).Seconds()
	s.t.total.Observe(total)
	s.t.push(SpanRecord{
		Name:          s.t.name,
		ID:            s.id,
		TraceID:       s.traceID,
		SpanID:        s.spanID,
		ParentID:      s.parentID,
		StartUnixNano: s.start.UnixNano(),
		Stages:        s.rec,
		TotalSeconds:  total,
	})
}

func (t *Tracer) push(r SpanRecord) {
	t.rmu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next%t.cap] = r
		t.dropped.Inc()
	}
	t.next++
	t.rmu.Unlock()
}

// Recent returns the most recent completed spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return t.recentLocked()
}

func (t *Tracer) recentLocked() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < t.cap {
		out = append(out, t.ring...)
		return out
	}
	for i := 0; i < t.cap; i++ {
		out = append(out, t.ring[(t.next+i)%t.cap])
	}
	return out
}

// Handler serves the recent-span ring as JSON — mount it under
// /debug/spans/<name> on the ops mux.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.Recent())
	})
}

// SpanHub stitches cross-tier traces back together from the rings of every
// registered tracer. It holds tracer pointers only — reading is a snapshot
// of each ring at call time, so a trace is stitchable as long as its spans
// have not been evicted (size the rings via SetRingSize accordingly).
type SpanHub struct {
	mu      sync.Mutex
	tracers []*Tracer
}

// NewSpanHub builds a hub over the given tracers.
func NewSpanHub(tracers ...*Tracer) *SpanHub {
	h := &SpanHub{}
	for _, t := range tracers {
		h.Add(t)
	}
	return h
}

// Add registers another tracer with the hub.
func (h *SpanHub) Add(t *Tracer) {
	if t == nil {
		return
	}
	h.mu.Lock()
	h.tracers = append(h.tracers, t)
	h.mu.Unlock()
}

func (h *SpanHub) snapshot() []*Tracer {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Tracer, len(h.tracers))
	copy(out, h.tracers)
	return out
}

// Trace returns every retained span carrying the trace id, across all
// registered tracers, ordered by start time (ties broken by span id).
func (h *SpanHub) Trace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, t := range h.snapshot() {
		for _, r := range t.Recent() {
			if r.TraceID == traceID {
				out = append(out, r)
			}
		}
	}
	sortSpans(out)
	return out
}

// Traces groups every retained traced span by trace id.
func (h *SpanHub) Traces() map[string][]SpanRecord {
	out := make(map[string][]SpanRecord)
	for _, t := range h.snapshot() {
		for _, r := range t.Recent() {
			if r.TraceID != "" {
				out[r.TraceID] = append(out[r.TraceID], r)
			}
		}
	}
	for _, spans := range out {
		sortSpans(spans)
	}
	return out
}

func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUnixNano != spans[j].StartUnixNano {
			return spans[i].StartUnixNano < spans[j].StartUnixNano
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// Handler serves stitched traces as JSON. Without parameters it returns
// {"traces": {<trace-id>: [spans...]}}; with ?trace=<id> it returns just
// that trace's span list.
func (h *SpanHub) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("trace"); id != "" {
			json.NewEncoder(w).Encode(h.Trace(id))
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"traces": h.Traces()})
	})
}
