package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// The span recorder is deliberately lighter than a distributed tracer:
// process-local, fixed stage names, no propagation. Each Tracer owns one
// lifecycle (the server request path, the client segment path), each Span is
// one pass through it, and every stage transition lands in a per-stage
// latency histogram plus a bounded ring of recent spans for /debug/spans
// inspection. That is exactly enough to answer "where did the time go
// between admission and the handler" without a tracing backend.

// StageRecord is one timed stage within a completed span.
type StageRecord struct {
	// Stage names the lifecycle step (e.g. "admission", "download").
	Stage string `json:"stage"`
	// Seconds is the stage latency.
	Seconds float64 `json:"seconds"`
}

// SpanRecord is one completed span in the recent-spans ring.
type SpanRecord struct {
	// Name is the tracer's lifecycle name.
	Name string `json:"name"`
	// ID is the request/session-scoped identifier, when one was attached.
	ID string `json:"id,omitempty"`
	// Stages lists the recorded stage latencies in order.
	Stages []StageRecord `json:"stages"`
	// TotalSeconds is the span's start→end latency.
	TotalSeconds float64 `json:"total_seconds"`
}

// ringCap bounds the recent-spans ring per tracer.
const ringCap = 128

// Tracer records spans for one lifecycle and owns its histograms.
type Tracer struct {
	name  string
	reg   *Registry
	total *Histogram

	hmu    sync.Mutex
	stages map[string]*Histogram

	rmu  sync.Mutex
	ring []SpanRecord
	next int
}

// NewTracer builds a tracer named name, registering its histograms on reg:
// <name>_stage_seconds{stage=...} per stage and <name>_span_seconds for the
// whole lifecycle.
func NewTracer(reg *Registry, name string) *Tracer {
	return &Tracer{
		name:   name,
		reg:    reg,
		total:  reg.Histogram(name+"_span_seconds", "Total latency of one "+name+" lifecycle.", nil),
		stages: make(map[string]*Histogram),
	}
}

// stageHist returns (registering on first use) the stage's histogram.
func (t *Tracer) stageHist(stage string) *Histogram {
	t.hmu.Lock()
	h, ok := t.stages[stage]
	if !ok {
		h = t.reg.Histogram(t.name+"_stage_seconds",
			"Per-stage latency of the "+t.name+" lifecycle.", nil, L("stage", stage))
		t.stages[stage] = h
	}
	t.hmu.Unlock()
	return h
}

// Span is one in-flight pass through the tracer's lifecycle. It is not
// goroutine-safe: a span belongs to the goroutine driving the lifecycle.
type Span struct {
	t     *Tracer
	id    string
	start time.Time
	mark  time.Time
	rec   []StageRecord
	done  bool
}

// Start opens a span. id may be "" (attach one later with SetID).
func (t *Tracer) Start(id string) *Span {
	now := time.Now()
	return &Span{t: t, id: id, start: now, mark: now}
}

// SetID attaches the request/session identifier after the fact.
func (s *Span) SetID(id string) { s.id = id }

// Stage closes the current stage: the time since the previous mark (or the
// span start) is observed into the stage's histogram and recorded.
func (s *Span) Stage(stage string) {
	now := time.Now()
	d := now.Sub(s.mark).Seconds()
	s.mark = now
	s.t.stageHist(stage).Observe(d)
	s.rec = append(s.rec, StageRecord{Stage: stage, Seconds: d})
}

// End closes the span, observing the total latency and pushing the record
// into the recent ring. End is idempotent.
func (s *Span) End() {
	if s.done {
		return
	}
	s.done = true
	total := time.Since(s.start).Seconds()
	s.t.total.Observe(total)
	s.t.push(SpanRecord{Name: s.t.name, ID: s.id, Stages: s.rec, TotalSeconds: total})
}

func (t *Tracer) push(r SpanRecord) {
	t.rmu.Lock()
	if len(t.ring) < ringCap {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next%ringCap] = r
	}
	t.next++
	t.rmu.Unlock()
}

// Recent returns the most recent completed spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < ringCap {
		out = append(out, t.ring...)
		return out
	}
	for i := 0; i < ringCap; i++ {
		out = append(out, t.ring[(t.next+i)%ringCap])
	}
	return out
}

// Handler serves the recent-span ring as JSON — mount it under
// /debug/spans/<name> on the ops mux.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.Recent())
	})
}
