package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The ops endpoint is a second, unprotected listener dedicated to operators:
// it must answer while the serving listener is melting down, so it sits
// outside the resilience chain and rate limiter. Mount it on a loopback or
// cluster-internal address — pprof and expvar expose internals by design.

// NewOpsMux builds the operator mux over reg:
//
//	/metrics          Prometheus text exposition
//	/debug/vars       expvar JSON (registry published as "metrics")
//	/debug/pprof/...  net/http/pprof profiles (heap, goroutine, profile, ...)
//	/healthz          liveness probe
func NewOpsMux(reg *Registry) *http.ServeMux {
	return NewOpsMuxWith(reg, nil)
}

// NewOpsMuxWith is NewOpsMux with an optional Health report backing
// /healthz (a ServeMux panics on duplicate patterns, so the probe handler
// must be chosen at construction). With h == nil the probe answers plain
// "ok"; otherwise it serves h's JSON report, whose body always contains
// "ok" so existing substring probes keep working.
func NewOpsMuxWith(reg *Registry, h *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	publishExpvar(reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if h != nil {
		mux.Handle("/healthz", h.Handler())
	} else {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
	}
	return mux
}

// Health is a liveness report with pluggable fields: each Set callback is
// evaluated per probe, so /healthz can answer with live values (catalog
// generation, online-rebuild staleness) without the probe path holding any
// subsystem locks between requests.
type Health struct {
	mu     sync.Mutex
	order  []string
	fields map[string]func() any
}

// NewHealth builds an empty report.
func NewHealth() *Health {
	return &Health{fields: make(map[string]func() any)}
}

// Set registers (or replaces) a report field.
func (h *Health) Set(name string, fn func() any) {
	h.mu.Lock()
	if _, ok := h.fields[name]; !ok {
		h.order = append(h.order, name)
	}
	h.fields[name] = fn
	h.mu.Unlock()
}

// Report evaluates every field. The "status" key is always "ok".
func (h *Health) Report() map[string]any {
	h.mu.Lock()
	fns := make(map[string]func() any, len(h.fields))
	for k, v := range h.fields {
		fns[k] = v
	}
	h.mu.Unlock()
	out := map[string]any{"status": "ok"}
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// Handler serves the report as JSON with a 200 status.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h.Report())
	})
}

// expvar.Publish panics on duplicate names, and tests build many ops muxes
// in one process — publish each registry at most once, under a
// per-registry name only for non-default registries.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[*Registry]bool{}
	expvarSeq       int
)

func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[reg] {
		return
	}
	name := "metrics"
	if reg != defaultRegistry {
		expvarSeq++
		name = fmt.Sprintf("metrics_%d", expvarSeq)
	}
	expvar.Publish(name, reg.ExpvarFunc())
	expvarPublished[reg] = true
}

// OpsServer is a running ops listener.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (o *OpsServer) Addr() net.Addr { return o.ln.Addr() }

// Close shuts the ops listener down, waiting briefly for in-flight scrapes.
func (o *OpsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return o.srv.Shutdown(ctx)
}

// StartOps binds addr and serves the standard ops mux over reg in a
// background goroutine. logger may be nil. The caller owns the returned
// server and should Close it on shutdown.
func StartOps(addr string, reg *Registry, logger *slog.Logger) (*OpsServer, error) {
	return StartOpsMux(addr, NewOpsMux(reg), logger)
}

// StartOpsMux is StartOps for a caller-built mux (NewOpsMux plus extra
// routes such as /debug/spans handlers).
func StartOpsMux(addr string, mux http.Handler, logger *slog.Logger) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops listener: %w", err)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Error("ops server exited", "err", err)
		}
	}()
	if logger != nil {
		logger.Info("ops endpoint listening", "addr", ln.Addr().String(),
			"paths", "/metrics /debug/vars /debug/pprof /healthz")
	}
	return &OpsServer{ln: ln, srv: srv}, nil
}
