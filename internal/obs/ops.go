package obs

import (
	"context"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The ops endpoint is a second, unprotected listener dedicated to operators:
// it must answer while the serving listener is melting down, so it sits
// outside the resilience chain and rate limiter. Mount it on a loopback or
// cluster-internal address — pprof and expvar expose internals by design.

// NewOpsMux builds the operator mux over reg:
//
//	/metrics          Prometheus text exposition
//	/debug/vars       expvar JSON (registry published as "metrics")
//	/debug/pprof/...  net/http/pprof profiles (heap, goroutine, profile, ...)
//	/healthz          liveness probe
func NewOpsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	publishExpvar(reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// expvar.Publish panics on duplicate names, and tests build many ops muxes
// in one process — publish each registry at most once, under a
// per-registry name only for non-default registries.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[*Registry]bool{}
	expvarSeq       int
)

func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[reg] {
		return
	}
	name := "metrics"
	if reg != defaultRegistry {
		expvarSeq++
		name = fmt.Sprintf("metrics_%d", expvarSeq)
	}
	expvar.Publish(name, reg.ExpvarFunc())
	expvarPublished[reg] = true
}

// OpsServer is a running ops listener.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (o *OpsServer) Addr() net.Addr { return o.ln.Addr() }

// Close shuts the ops listener down, waiting briefly for in-flight scrapes.
func (o *OpsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return o.srv.Shutdown(ctx)
}

// StartOps binds addr and serves the standard ops mux over reg in a
// background goroutine. logger may be nil. The caller owns the returned
// server and should Close it on shutdown.
func StartOps(addr string, reg *Registry, logger *slog.Logger) (*OpsServer, error) {
	return StartOpsMux(addr, NewOpsMux(reg), logger)
}

// StartOpsMux is StartOps for a caller-built mux (NewOpsMux plus extra
// routes such as /debug/spans handlers).
func StartOpsMux(addr string, mux http.Handler, logger *slog.Logger) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops listener: %w", err)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Error("ops server exited", "err", err)
		}
	}()
	if logger != nil {
		logger.Info("ops endpoint listening", "addr", ln.Addr().String(),
			"paths", "/metrics /debug/vars /debug/pprof /healthz")
	}
	return &OpsServer{ln: ln, srv: srv}, nil
}
