package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestTracerStagesAndHistograms(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "lifecycle")
	for i := 0; i < 3; i++ {
		sp := tr.Start(fmt.Sprintf("id-%d", i))
		sp.Stage("admit")
		sp.Stage("handle")
		sp.End()
		sp.End() // idempotent
	}
	samples := scrape(t, reg)
	if got := samples[`lifecycle_stage_seconds_count{stage="admit"}`]; got != 3 {
		t.Fatalf("admit stage count = %v, want 3", got)
	}
	if got := samples[`lifecycle_stage_seconds_count{stage="handle"}`]; got != 3 {
		t.Fatalf("handle stage count = %v, want 3", got)
	}
	if got := samples["lifecycle_span_seconds_count"]; got != 3 {
		t.Fatalf("span count = %v, want 3 (End must be idempotent)", got)
	}

	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("Recent() = %d spans, want 3", len(recent))
	}
	first := recent[0]
	if first.ID != "id-0" || len(first.Stages) != 2 || first.Stages[0].Stage != "admit" {
		t.Fatalf("first record = %+v", first)
	}
	if first.TotalSeconds < first.Stages[0].Seconds {
		t.Fatalf("total %v < stage %v", first.TotalSeconds, first.Stages[0].Seconds)
	}
}

func TestTracerRingBounded(t *testing.T) {
	const ringCap = defaultRingCap
	tr := NewTracer(NewRegistry(), "ring")
	for i := 0; i < ringCap+10; i++ {
		sp := tr.Start(fmt.Sprintf("id-%d", i))
		sp.End()
	}
	recent := tr.Recent()
	if len(recent) != ringCap {
		t.Fatalf("ring holds %d, want %d", len(recent), ringCap)
	}
	// Oldest first: the first 10 spans were evicted.
	if recent[0].ID != "id-10" {
		t.Fatalf("oldest = %q, want id-10", recent[0].ID)
	}
	if recent[ringCap-1].ID != fmt.Sprintf("id-%d", ringCap+9) {
		t.Fatalf("newest = %q", recent[ringCap-1].ID)
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(NewRegistry(), "h")
	sp := tr.Start("")
	sp.SetID("late-id")
	sp.Stage("only")
	sp.End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/spans/h", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if len(out) != 1 || out[0].ID != "late-id" || out[0].Name != "h" {
		t.Fatalf("payload = %+v", out)
	}
}
