package obs

import (
	"math"
	"strings"
	"testing"
)

// TestGoldenExposition pins the exact exposition bytes: family and series
// ordering, HELP/TYPE lines, label escaping, histogram cumulation. Any
// format drift breaks real scrapers, so this is a byte-for-byte golden.
func TestGoldenExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_requests_total", "Requests by path.", L("path", `/seg?q="hi"\x`)).Add(2)
	reg.Counter("b_requests_total", "Requests by path.", L("path", "/manifest")).Inc()
	reg.Gauge("a_depth", "Queue\ndepth.").Set(-3.5)
	h := reg.Histogram("c_lat_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(99)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP a_depth Queue\ndepth.
# TYPE a_depth gauge
a_depth -3.5
# HELP b_requests_total Requests by path.
# TYPE b_requests_total counter
b_requests_total{path="/manifest"} 1
b_requests_total{path="/seg?q=\"hi\"\\x"} 2
# HELP c_lat_seconds Latency.
# TYPE c_lat_seconds histogram
c_lat_seconds_bucket{le="0.5"} 1
c_lat_seconds_bucket{le="2"} 2
c_lat_seconds_bucket{le="+Inf"} 3
c_lat_seconds_sum 100.25
c_lat_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionStable(t *testing.T) {
	reg := NewRegistry()
	for _, p := range []string{"/c", "/a", "/b"} {
		reg.Counter("m_total", "", L("path", p)).Inc()
	}
	var first strings.Builder
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if err := reg.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
	if !strings.Contains(first.String(), `m_total{path="/a"} 1`) {
		t.Fatalf("missing series:\n%s", first.String())
	}
}

func TestSanitize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ok_name:sub", "ok_name:sub"},
		{"9leading", "_9leading"},
		{"", "_"},
		{"has space-and.dot", "has_space_and_dot"},
		{"héllo", "h__llo"}, // multi-byte rune → one '_' per byte
	}
	for _, c := range cases {
		if got := sanitizeName(c.in); got != c.want {
			t.Errorf("sanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := sanitizeLabelName("a:b"); got != "a_b" {
		t.Errorf("sanitizeLabelName kept a colon: %q", got)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf renders as %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf renders as %q", got)
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN renders as %q", got)
	}
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help", L("k", "v1"), L("a", `weird "quoted" \ value`)).Add(7)
	reg.Gauge("y", "").Set(math.Inf(1))
	reg.Histogram("z_seconds", "", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, sb.String())
	}
	byseries := map[string]float64{}
	for _, s := range samples {
		byseries[s.Series()] = s.Value
	}
	if got := byseries[`x_total{a="weird \"quoted\" \\ value",k="v1"}`]; got != 7 {
		t.Fatalf("escaped-label counter not recovered; samples: %v", byseries)
	}
	if got := byseries["y"]; !math.IsInf(got, 1) {
		t.Fatalf("y = %v, want +Inf", got)
	}
	if got := byseries[`z_seconds_bucket{le="+Inf"}`]; got != 1 {
		t.Fatalf("+Inf bucket = %v, want 1", got)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`bad name 1` + "\n",
		`m{unterminated="v` + "\n",
		`m{k=unquoted} 1` + "\n",
		`m{k="v"} notanumber` + "\n",
		`{*} 1` + "\n",
	} {
		if _, err := ParsePrometheus(bad); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
}
