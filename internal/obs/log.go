package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
)

// Structured logging: every cmd shares the same -log-level / -log-format
// flags and key conventions (err, addr, video, seg, session), and server
// request logs carry a request-scoped ID that also rides the X-Request-Id
// response header so a client-side trace can be joined to the server log.

// LogConfig selects the handler the cmds build their logger from.
type LogConfig struct {
	// Level is one of debug, info, warn, error.
	Level string
	// Format is "text" or "json".
	Format string
}

// LogFlags registers -log-level and -log-format on fs (the default FlagSet
// when nil) and returns the destination config.
func LogFlags(fs *flag.FlagSet) *LogConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	cfg := &LogConfig{}
	fs.StringVar(&cfg.Level, "log-level", "info", "log verbosity: debug, info, warn, error")
	fs.StringVar(&cfg.Format, "log-format", "text", "log encoding: text or json")
	return cfg
}

// NewLogger builds a slog.Logger writing to w (os.Stderr when nil).
func (c LogConfig) NewLogger(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(c.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", c.Format)
	}
}

// ctxKey keys context values privately.
type ctxKey int

const requestIDKey ctxKey = iota

// requestSeq numbers request IDs process-wide; monotonic IDs keep chaos
// runs reproducible where random ones would not be.
var requestSeq atomic.Uint64

// NewRequestID mints the next request ID ("r-000042").
func NewRequestID() string {
	return fmt.Sprintf("r-%06d", requestSeq.Add(1))
}

// WithRequestID attaches a request-scoped ID to ctx.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the ID attached by WithRequestID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// RequestIDHeader is where the middleware surfaces the ID to clients.
const RequestIDHeader = "X-Request-Id"

// RequestIDMiddleware assigns each request a scoped ID: an incoming
// X-Request-Id is honored (truncated to 64 bytes) so a client-chosen ID
// spans retries; otherwise one is minted. The ID lands in the request
// context and the response header.
func RequestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		} else if len(id) > 64 {
			id = id[:64]
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
	})
}
