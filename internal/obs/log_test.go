package obs

import (
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLogFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg := LogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if cfg.Level != "debug" || cfg.Format != "json" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var sb strings.Builder
	logger, err := LogConfig{Level: "warn", Format: "json"}.NewLogger(&sb)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("dropped")
	logger.Warn("kept", "video", 8)
	line := strings.TrimSpace(sb.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("expected one record, got:\n%s", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, line)
	}
	if rec["msg"] != "kept" || rec["video"] != float64(8) {
		t.Fatalf("record = %v", rec)
	}

	for _, bad := range []LogConfig{{Level: "loud"}, {Format: "xml"}} {
		if _, err := bad.NewLogger(&sb); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	// Aliases and case-insensitivity.
	if _, err := (LogConfig{Level: "WARNING", Format: "TEXT"}).NewLogger(&sb); err != nil {
		t.Errorf("warning/text alias rejected: %v", err)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "r-000007")
	if got := RequestID(ctx); got != "r-000007" {
		t.Fatalf("RequestID = %q", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty context RequestID = %q", got)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || !strings.HasPrefix(a, "r-") {
		t.Fatalf("ids not unique/minted: %q %q", a, b)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	var seen string
	h := RequestIDMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))

	// Minted when absent, surfaced on the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if seen == "" || rec.Header().Get(RequestIDHeader) != seen {
		t.Fatalf("minted id %q, header %q", seen, rec.Header().Get(RequestIDHeader))
	}

	// An incoming ID is honored...
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(RequestIDHeader, "client-chosen")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-chosen" {
		t.Fatalf("incoming id not honored: %q", seen)
	}

	// ...but truncated to 64 bytes.
	req = httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 200))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if len(seen) != 64 {
		t.Fatalf("oversized id kept %d bytes", len(seen))
	}
}
