package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "Requests.", L("path", "/a"))
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // counters never go down
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Same (name, labels) → same handle.
	if again := reg.Counter("reqs_total", "Requests.", L("path", "/a")); again != c {
		t.Fatal("re-registration returned a different counter handle")
	}
	// Different labels → different series.
	if other := reg.Counter("reqs_total", "Requests.", L("path", "/b")); other == c {
		t.Fatal("distinct label sets shared a handle")
	}

	g := reg.Gauge("depth", "Queue depth.")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("m", "", L("x", "1"), L("y", "2"))
	b := reg.Counter("m", "", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order changed the series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Bucket occupancy: le=0.1 gets 0.05 and 0.1 (bounds are inclusive),
	// le=1 gets 0.5, le=10 gets 2, +Inf gets 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestGaugeFuncReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("fn", "", func() float64 { return 1 })
	reg.GaugeFunc("fn", "", func() float64 { return 2 })
	samples := scrape(t, reg)
	if got := samples["fn"]; got != 2 {
		t.Fatalf("callback gauge = %v, want the replacement's 2", got)
	}
}

// TestHistogramConcurrent hammers one histogram (and one counter) from many
// goroutines; run with -race. The final count and sum must account for every
// observation exactly once.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{0.5, 1, 2})
	c := reg.Counter("c", "")
	const (
		workers = 16
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%4) * 0.75)
				c.Inc()
			}
		}(w)
	}
	// Scrape concurrently with the writers: exposition must be safe (and
	// internally consistent lines, which ParsePrometheus enforces).
	var sb syncBuffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sb.Reset()
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if _, err := ParsePrometheus(sb.String()); err != nil {
				t.Errorf("mid-load scrape unparseable: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perG
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	if c.Value() != total {
		t.Fatalf("counter = %v, want %d", c.Value(), total)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != total {
		t.Fatalf("bucket occupancy sums to %d, want %d", cum, total)
	}
}

// syncBuffer is a mutex-guarded bytes buffer for cross-goroutine asserts.
type syncBuffer struct {
	mu sync.Mutex
	b  []byte
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *syncBuffer) Reset() { s.mu.Lock(); s.b = s.b[:0]; s.mu.Unlock() }

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}

// scrape renders reg and returns series → value.
func scrape(t *testing.T, reg *Registry) map[string]float64 {
	t.Helper()
	var sb syncBuffer
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, err := ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, sb.String())
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		if _, dup := out[s.Series()]; dup {
			t.Fatalf("duplicate series %s in exposition", s.Series())
		}
		out[s.Series()] = s.Value
	}
	return out
}

func ExampleRegistry_Counter() {
	reg := NewRegistry()
	reg.Counter("segments_total", "Segments served.", L("result", "ok")).Add(3)
	var sb syncBuffer
	reg.WritePrometheus(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP segments_total Segments served.
	// # TYPE segments_total counter
	// segments_total{result="ok"} 3
}
