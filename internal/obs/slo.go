package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// The SLO engine evaluates declarative objectives from the TSDB with the
// Google-SRE multi-window multi-burn-rate recipe: an objective is burning
// when its error budget is being consumed faster than a threshold factor in
// BOTH a long window (significance) and a short window (still happening).
// Evaluation runs on every TSDB sample tick, so alerts are themselves
// scrapeable (slo_burn_rate / slo_error_ratio / slo_burning gauges) without
// an external Alertmanager.

// SLOKind selects how an objective's error ratio is computed.
type SLOKind string

const (
	// SLOEventRatio divides bad events by total events (availability,
	// abandon rate) over each window.
	SLOEventRatio SLOKind = "event_ratio"
	// SLOLatency treats histogram observations above ThresholdSec as bad
	// events (request p99 latency style objectives).
	SLOLatency SLOKind = "latency"
	// SLOQuotient tracks a windowed quotient (stall seconds per segment,
	// energy per segment) against a Budget: burn = quotient / Budget.
	SLOQuotient SLOKind = "quotient"
)

// BurnWindow is one long/short window pair with its burn-rate threshold.
type BurnWindow struct {
	Name   string
	Long   time.Duration
	Short  time.Duration
	Factor float64
}

// BurnWindows returns the classic fast/slow page pair scaled to a base unit:
// with base = time.Second the fast pair is 60s/5s at 14.4× and the slow pair
// 300s/30s at 6× — the canonical 1h/5m and 6h/30m shape compressed so an
// in-process soak can exercise it.
func BurnWindows(base time.Duration) []BurnWindow {
	return []BurnWindow{
		{Name: "fast", Long: 60 * base, Short: 5 * base, Factor: 14.4},
		{Name: "slow", Long: 300 * base, Short: 30 * base, Factor: 6},
	}
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in /slo and the slo_* gauges.
	Name string
	// Description is operator-facing prose.
	Description string
	// Kind selects the error-ratio computation.
	Kind SLOKind
	// Target is the success objective for ratio kinds (0 < Target < 1);
	// burn = errorRatio / (1 - Target). Ignored for SLOQuotient.
	Target float64
	// Bad and Total select the event counters for SLOEventRatio.
	Bad, Total []Selector
	// Latency selects the histogram family for SLOLatency; observations
	// above ThresholdSec are bad events.
	Latency      Selector
	ThresholdSec float64
	// Num and Den select the counters for SLOQuotient; Budget is the
	// quotient at which burn = 1.
	Num, Den []Selector
	Budget   float64
	// Windows are the burn-rate window pairs (default BurnWindows(1s)).
	Windows []BurnWindow
}

func (o *Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("obs: SLO with empty name")
	}
	switch o.Kind {
	case SLOEventRatio:
		if len(o.Bad) == 0 || len(o.Total) == 0 {
			return fmt.Errorf("obs: SLO %s: event_ratio needs Bad and Total selectors", o.Name)
		}
	case SLOLatency:
		if o.Latency.Name == "" || o.ThresholdSec <= 0 {
			return fmt.Errorf("obs: SLO %s: latency needs a histogram selector and threshold", o.Name)
		}
	case SLOQuotient:
		if len(o.Num) == 0 || len(o.Den) == 0 || o.Budget <= 0 {
			return fmt.Errorf("obs: SLO %s: quotient needs Num, Den, and a positive Budget", o.Name)
		}
	default:
		return fmt.Errorf("obs: SLO %s: unknown kind %q", o.Name, o.Kind)
	}
	if o.Kind != SLOQuotient && (o.Target <= 0 || o.Target >= 1) {
		return fmt.Errorf("obs: SLO %s: target %v outside (0,1)", o.Name, o.Target)
	}
	if len(o.Windows) == 0 {
		o.Windows = BurnWindows(time.Second)
	}
	for _, w := range o.Windows {
		if w.Long <= 0 || w.Short <= 0 || w.Short > w.Long || w.Factor <= 0 {
			return fmt.Errorf("obs: SLO %s: bad window %+v", o.Name, w)
		}
	}
	return nil
}

// WindowStatus is one window pair's evaluation.
type WindowStatus struct {
	Name      string  `json:"name"`
	LongSec   float64 `json:"long_sec"`
	ShortSec  float64 `json:"short_sec"`
	Factor    float64 `json:"factor"`
	LongBurn  float64 `json:"long_burn"`
	ShortBurn float64 `json:"short_burn"`
	HasData   bool    `json:"has_data"`
	Burning   bool    `json:"burning"`
}

// SLOStatus is one objective's evaluation.
type SLOStatus struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Kind        SLOKind `json:"kind"`
	Target      float64 `json:"target,omitempty"`
	Budget      float64 `json:"budget,omitempty"`
	// ErrorRatio is the first window pair's long-window error ratio (for
	// SLOQuotient: the quotient value itself).
	ErrorRatio float64        `json:"error_ratio"`
	Burning    bool           `json:"burning"`
	Windows    []WindowStatus `json:"windows"`
}

type sloGauges struct {
	errorRatio *Gauge
	burning    *Gauge
	longBurn   []*Gauge // per window
	shortBurn  []*Gauge
}

// SLOEngine evaluates objectives from a TSDB.
type SLOEngine struct {
	db         *TSDB
	objectives []Objective
	gauges     []sloGauges

	mu      sync.Mutex
	last    []SLOStatus
	burning []bool
	onBurn  []func(slo string)
}

// NewSLOEngine validates the objectives, registers the slo_* gauges on reg,
// and hooks evaluation onto every TSDB sample tick.
func NewSLOEngine(db *TSDB, reg *Registry, objectives []Objective) (*SLOEngine, error) {
	e := &SLOEngine{db: db, objectives: objectives, burning: make([]bool, len(objectives))}
	seen := map[string]bool{}
	for i := range e.objectives {
		o := &e.objectives[i]
		if err := o.validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("obs: duplicate SLO name %q", o.Name)
		}
		seen[o.Name] = true
		g := sloGauges{
			errorRatio: reg.Gauge("slo_error_ratio", "Current long-window error ratio (or quotient value) per SLO.", L("slo", o.Name)),
			burning:    reg.Gauge("slo_burning", "1 while the SLO's burn rate exceeds a window pair's threshold.", L("slo", o.Name)),
		}
		for _, w := range o.Windows {
			g.longBurn = append(g.longBurn, reg.Gauge("slo_burn_rate",
				"Error-budget burn rate per SLO and window.", L("slo", o.Name), L("window", w.Name), L("span", "long")))
			g.shortBurn = append(g.shortBurn, reg.Gauge("slo_burn_rate",
				"Error-budget burn rate per SLO and window.", L("slo", o.Name), L("window", w.Name), L("span", "short")))
		}
		e.gauges = append(e.gauges, g)
	}
	db.OnSample(func(time.Time) { e.Evaluate() })
	return e, nil
}

// OnBurn registers fn to run when an objective transitions into burning —
// the flight recorder's SLO trigger hangs off this.
func (e *SLOEngine) OnBurn(fn func(slo string)) {
	e.mu.Lock()
	e.onBurn = append(e.onBurn, fn)
	e.mu.Unlock()
}

// ratio computes the objective's error ratio (or quotient) over one window.
func (e *SLOEngine) ratio(o *Objective, window time.Duration) (float64, bool) {
	switch o.Kind {
	case SLOEventRatio:
		var bad, total float64
		anyTotal := false
		for _, sel := range o.Total {
			if v, ok := e.db.DeltaSum(sel, window); ok {
				total += v
				anyTotal = true
			}
		}
		for _, sel := range o.Bad {
			if v, ok := e.db.DeltaSum(sel, window); ok {
				bad += v
			}
		}
		if !anyTotal || total <= 0 {
			return 0, false
		}
		r := bad / total
		if r < 0 {
			r = 0
		} else if r > 1 {
			r = 1
		}
		return r, true
	case SLOLatency:
		hw, ok := e.db.HistDelta(o.Latency, window)
		if !ok || hw.Count == 0 {
			return 0, false
		}
		return hw.FracAbove(o.ThresholdSec), true
	case SLOQuotient:
		var num, den float64
		anyDen := false
		for _, sel := range o.Num {
			if v, ok := e.db.DeltaSum(sel, window); ok {
				num += v
			}
		}
		for _, sel := range o.Den {
			if v, ok := e.db.DeltaSum(sel, window); ok {
				den += v
				anyDen = true
			}
		}
		if !anyDen || den <= 0 {
			return 0, false
		}
		return num / den, true
	}
	return 0, false
}

// burnRate converts an error ratio into a burn rate for the objective.
func (o *Objective) burnRate(ratio float64) float64 {
	if o.Kind == SLOQuotient {
		return ratio / o.Budget
	}
	return ratio / (1 - o.Target)
}

// Evaluate computes every objective's status, updates the slo_* gauges, and
// fires burn-transition callbacks. It runs automatically on each TSDB
// sample; calling it directly is safe (tests drive it by hand).
func (e *SLOEngine) Evaluate() []SLOStatus {
	statuses := make([]SLOStatus, len(e.objectives))
	var fired []string

	e.mu.Lock()
	for i := range e.objectives {
		o := &e.objectives[i]
		st := SLOStatus{
			Name:        o.Name,
			Description: o.Description,
			Kind:        o.Kind,
			Target:      o.Target,
			Budget:      o.Budget,
		}
		for wi, w := range o.Windows {
			ws := WindowStatus{
				Name:     w.Name,
				LongSec:  w.Long.Seconds(),
				ShortSec: w.Short.Seconds(),
				Factor:   w.Factor,
			}
			longR, okL := e.ratio(o, w.Long)
			shortR, okS := e.ratio(o, w.Short)
			if okL && okS {
				ws.HasData = true
				ws.LongBurn = o.burnRate(longR)
				ws.ShortBurn = o.burnRate(shortR)
				ws.Burning = ws.LongBurn > w.Factor && ws.ShortBurn > w.Factor
			}
			if wi == 0 && okL {
				st.ErrorRatio = longR
			}
			e.gauges[i].longBurn[wi].Set(ws.LongBurn)
			e.gauges[i].shortBurn[wi].Set(ws.ShortBurn)
			st.Windows = append(st.Windows, ws)
			st.Burning = st.Burning || ws.Burning
		}
		e.gauges[i].errorRatio.Set(st.ErrorRatio)
		if st.Burning {
			e.gauges[i].burning.Set(1)
		} else {
			e.gauges[i].burning.Set(0)
		}
		if st.Burning && !e.burning[i] {
			fired = append(fired, o.Name)
		}
		e.burning[i] = st.Burning
		statuses[i] = st
	}
	e.last = statuses
	callbacks := make([]func(string), len(e.onBurn))
	copy(callbacks, e.onBurn)
	e.mu.Unlock()

	for _, name := range fired {
		for _, fn := range callbacks {
			fn(name)
		}
	}
	return statuses
}

// Status returns the most recent evaluation (empty before the first tick).
func (e *SLOEngine) Status() []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, len(e.last))
	copy(out, e.last)
	return out
}

// Handler serves the current objective statuses as JSON at /slo.
func (e *SLOEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"slos": e.Status()})
	})
}
