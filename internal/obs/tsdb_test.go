package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestTSDBCounterDelta: a counter advancing a fixed amount per tick yields
// exact window deltas at every resolution, and the coarser rings sample on
// their stride.
func TestTSDBCounterDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events_total", "test", L("kind", "a"))
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{
		{Step: time.Second, Slots: 16},
		{Step: 4 * time.Second, Slots: 8},
	}})
	base := time.Unix(1000, 0)
	for i := 0; i < 13; i++ {
		db.Sample(base.Add(time.Duration(i) * time.Second))
		c.Add(5) // 5 events per second, added after the sample
	}

	got, ok := db.DeltaSum(Sel("events_total", L("kind", "a")), 4*time.Second)
	if !ok {
		t.Fatal("no data for 4s window")
	}
	if got != 20 {
		t.Fatalf("4s delta = %v, want 20", got)
	}
	got, ok = db.DeltaSum(Sel("events_total"), 10*time.Second)
	if !ok || got != 50 {
		t.Fatalf("10s delta = %v ok=%v, want 50", got, ok)
	}
	if _, ok := db.DeltaSum(Sel("missing_total"), time.Second); ok {
		t.Fatal("selector for unknown series reported data")
	}
}

// TestTSDBSelectorPrefix: a '*'-suffixed match value sums every series whose
// label value shares the prefix — the 5xx availability selector.
func TestTSDBSelectorPrefix(t *testing.T) {
	reg := NewRegistry()
	c500 := reg.Counter("requests_total", "test", L("code", "500"))
	c503 := reg.Counter("requests_total", "test", L("code", "503"))
	c200 := reg.Counter("requests_total", "test", L("code", "200"))
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: time.Second, Slots: 8}}})

	base := time.Unix(2000, 0)
	db.Sample(base)
	c500.Add(3)
	c503.Add(4)
	c200.Add(100)
	db.Sample(base.Add(time.Second))

	bad, ok := db.DeltaSum(Sel("requests_total", L("code", "5*")), 2*time.Second)
	if !ok || bad != 7 {
		t.Fatalf("5* delta = %v ok=%v, want 7", bad, ok)
	}
	all, ok := db.DeltaSum(Sel("requests_total"), 2*time.Second)
	if !ok || all != 107 {
		t.Fatalf("total delta = %v ok=%v, want 107", all, ok)
	}
}

// TestTSDBHistogramWindow: windowed histogram deltas produce exact counts,
// Prometheus-style interpolated quantiles, and threshold fractions.
func TestTSDBHistogramWindow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "test", []float64{0.1, 0.2, 0.4, 0.8})
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: time.Second, Slots: 8}}})

	base := time.Unix(3000, 0)
	db.Sample(base)
	// 8 fast (≤0.1), 2 slow (0.4–0.8) observations.
	for i := 0; i < 8; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	h.Observe(0.7)
	db.Sample(base.Add(time.Second))

	hw, ok := db.HistDelta(Sel("latency_seconds"), 2*time.Second)
	if !ok {
		t.Fatal("no histogram window")
	}
	if hw.Count != 10 {
		t.Fatalf("window count = %d, want 10", hw.Count)
	}
	if got := hw.FracAbove(0.2); got != 0.2 {
		t.Fatalf("FracAbove(0.2) = %v, want 0.2", got)
	}
	// p50 target = 5th of 8 observations in [0, 0.1): 0.1·5/8.
	if got, want := hw.Quantile(0.5), 0.1*5.0/8.0; abs(got-want) > 1e-12 {
		t.Fatalf("q50 = %v, want %v", got, want)
	}
	// p90 target = 9th observation, the 1st of 2 in [0.4, 0.8).
	if got, want := hw.Quantile(0.9), 0.4+0.4*0.5; abs(got-want) > 1e-12 {
		t.Fatalf("q90 = %v, want %v", got, want)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestTSDBRingWraps: deltas stay correct after the ring has wrapped several
// times over.
func TestTSDBRingWraps(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("wrap_total", "test")
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: time.Second, Slots: 4}}})
	base := time.Unix(4000, 0)
	for i := 0; i < 50; i++ {
		db.Sample(base.Add(time.Duration(i) * time.Second))
		c.Add(2)
	}
	got, ok := db.DeltaSum(Sel("wrap_total"), 3*time.Second)
	if !ok || got != 6 {
		t.Fatalf("post-wrap 3s delta = %v ok=%v, want 6", got, ok)
	}
}

// TestTSDBMaxSeries: series beyond the cap are dropped and counted, never
// stored.
func TestTSDBMaxSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "test")
	reg.Counter("b_total", "test")
	reg.Counter("c_total", "test")
	db := NewTSDB(reg, TSDBConfig{
		Resolutions: []Resolution{{Step: time.Second, Slots: 4}},
		MaxSeries:   2,
	})
	db.Sample(time.Unix(5000, 0))
	db.Sample(time.Unix(5001, 0))
	// Meta-metrics also register on reg, so the cap bites well before c_total.
	if n := len(db.SeriesNames()); n != 2 {
		t.Fatalf("stored series = %d, want 2 (MaxSeries)", n)
	}
	if v := scrape(t, reg)["tsdb_series_dropped_total"]; v == 0 {
		t.Fatal("tsdb_series_dropped_total = 0, want > 0")
	}
}

// TestTSDBGoldenJSON pins the /debug/tsdb JSON contract: structure, point
// ordering, histogram quantiles, and the exemplar surface.
func TestTSDBGoldenJSON(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("gold_total", "test", L("k", "v"))
	h := reg.Histogram("gold_seconds", "test", []float64{0.1, 1})
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: time.Second, Slots: 4}}})

	base := time.Unix(100, 0)
	db.Sample(base)
	c.Add(3)
	h.ObserveExemplar(0.05, "t-000900")
	db.Sample(base.Add(time.Second))

	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?series=gold")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		BaseStepSeconds float64 `json:"base_step_seconds"`
		Series          []struct {
			Series    string `json:"series"`
			Kind      string `json:"kind"`
			Exemplars []struct {
				BucketLE float64 `json:"bucket_le"`
				Value    float64 `json:"value"`
				TraceID  string  `json:"trace_id"`
			} `json:"exemplars"`
			Resolutions []struct {
				StepSeconds float64 `json:"step_seconds"`
				Points      []struct {
					T   float64 `json:"t"`
					V   float64 `json:"v"`
					Q50 float64 `json:"q50"`
				} `json:"points"`
			} `json:"resolutions"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.BaseStepSeconds != 1 {
		t.Fatalf("base_step_seconds = %v, want 1", got.BaseStepSeconds)
	}
	if len(got.Series) != 2 {
		t.Fatalf("series count = %d, want 2 (filter 'gold')", len(got.Series))
	}
	// Sorted keys: gold_seconds before gold_total{k="v"}.
	hs, cs := got.Series[0], got.Series[1]
	if hs.Series != "gold_seconds" || hs.Kind != "histogram" {
		t.Fatalf("series[0] = %q kind %q, want gold_seconds histogram", hs.Series, hs.Kind)
	}
	if cs.Series != `gold_total{k="v"}` || cs.Kind != "counter" {
		t.Fatalf("series[1] = %q kind %q, want gold_total{k=\"v\"} counter", cs.Series, cs.Kind)
	}
	if len(hs.Exemplars) != 1 || hs.Exemplars[0].TraceID != "t-000900" || hs.Exemplars[0].Value != 0.05 {
		t.Fatalf("exemplars = %+v, want one with trace t-000900 value 0.05", hs.Exemplars)
	}
	pts := cs.Resolutions[0].Points
	if len(pts) != 2 || pts[0].V != 0 || pts[1].V != 3 {
		t.Fatalf("counter points = %+v, want [0 3]", pts)
	}
	if pts[0].T != 100 || pts[1].T != 101 {
		t.Fatalf("point times = %v %v, want 100 101", pts[0].T, pts[1].T)
	}
	hpts := hs.Resolutions[0].Points
	if len(hpts) != 2 || hpts[1].V != 1 {
		t.Fatalf("histogram points = %+v, want count 1 at second point", hpts)
	}
	// One observation at 0.05 in [0, 0.1): interpolated q50 = 0.05.
	if abs(hpts[1].Q50-0.05) > 1e-12 {
		t.Fatalf("q50 = %v, want 0.05", hpts[1].Q50)
	}
}

// TestTSDBOnSampleHookRunsUnlocked: hooks must be able to query the store
// (the SLO engine does exactly this on every tick).
func TestTSDBOnSampleHookRunsUnlocked(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hook_total", "test")
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: time.Second, Slots: 4}}})
	var fired int
	db.OnSample(func(time.Time) {
		fired++
		db.DeltaSum(Sel("hook_total"), time.Second) // must not deadlock
	})
	c.Add(1)
	db.Sample(time.Unix(1, 0))
	db.Sample(time.Unix(2, 0))
	if fired != 2 {
		t.Fatalf("hook fired %d times, want 2", fired)
	}
}

// TestTSDBConcurrentHammer races writers, the sampler, and queries; the race
// detector is the assertion.
func TestTSDBConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "test")
	h := reg.Histogram("hammer_seconds", "test", nil)
	reg.GaugeFunc("hammer_gauge", "test", func() float64 { return 1 })
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{
		{Step: time.Millisecond, Slots: 32},
		{Step: 4 * time.Millisecond, Slots: 8},
	}})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.ObserveExemplar(float64(i%10)/100, "t-hammer")
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Unix(0, 0)
		for i := 0; i < 200; i++ {
			db.Sample(base.Add(time.Duration(i) * time.Millisecond))
		}
		close(stop)
	}()
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.DeltaSum(Sel("hammer_total"), 8*time.Millisecond)
				db.HistDelta(Sel("hammer_seconds"), 8*time.Millisecond)
				db.Snapshot("", 4)
			}
		}()
	}
	wg.Wait()

	// Settle deterministically: the 200 racing samples may all have run
	// before any writer was scheduled, so land one more increment and
	// sample it after the dust clears.
	c.Inc()
	db.Sample(time.Unix(0, 0).Add(200 * time.Millisecond))
	if got, ok := db.Last(Sel("hammer_total")); !ok || got <= 0 {
		t.Fatalf("Last(hammer_total) = %v ok=%v, want > 0", got, ok)
	}
}

// TestTSDBStartStop: the ticker goroutine samples and shuts down cleanly;
// Stop is idempotent.
func TestTSDBStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tick_total", "test").Add(1)
	db := NewTSDB(reg, TSDBConfig{Resolutions: []Resolution{{Step: 2 * time.Millisecond, Slots: 8}}})
	db.Start()
	db.Start() // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := db.Last(Sel("tick_total")); ok && v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	db.Stop()
	db.Stop()
}
