package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceHeaderRoundTrip: the propagation pair survives header encode /
// decode, and oversized values are clipped.
func TestTraceHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	TraceContext{TraceID: "t-000001", SpanID: "s-000009"}.SetHeader(h)
	tc, ok := TraceFromHeader(h)
	if !ok || tc.TraceID != "t-000001" || tc.SpanID != "s-000009" {
		t.Fatalf("round trip = %+v, %v", tc, ok)
	}

	// An empty trace id writes nothing, even with a span id set.
	h2 := http.Header{}
	TraceContext{SpanID: "s-1"}.SetHeader(h2)
	if len(h2) != 0 {
		t.Fatalf("empty trace wrote headers: %v", h2)
	}
	if _, ok := TraceFromHeader(h2); ok {
		t.Fatal("empty headers parsed as a trace")
	}

	// Hostile header values are clipped to 64 bytes.
	h3 := http.Header{}
	h3.Set(TraceIDHeader, strings.Repeat("x", 200))
	tc3, ok := TraceFromHeader(h3)
	if !ok || len(tc3.TraceID) != 64 {
		t.Fatalf("clip failed: len=%d ok=%v", len(tc3.TraceID), ok)
	}
}

// TestTraceForRequest: context wins over headers (an in-process upstream tier
// already re-parented), headers are the fallback.
func TestTraceForRequest(t *testing.T) {
	r := httptest.NewRequest("GET", "/segment", nil)
	if _, ok := TraceForRequest(r); ok {
		t.Fatal("untraced request reported a trace")
	}
	r.Header.Set(TraceIDHeader, "t-hdr")
	r.Header.Set(ParentSpanHeader, "s-hdr")
	if tc, ok := TraceForRequest(r); !ok || tc.TraceID != "t-hdr" || tc.SpanID != "s-hdr" {
		t.Fatalf("header fallback = %+v, %v", tc, ok)
	}
	ctx := WithTraceContext(r.Context(), TraceContext{TraceID: "t-ctx", SpanID: "s-ctx"})
	if tc, ok := TraceForRequest(r.WithContext(ctx)); !ok || tc.TraceID != "t-ctx" {
		t.Fatalf("context should win: %+v, %v", tc, ok)
	}
	// An invalid context value falls through to the headers.
	bad := WithTraceContext(context.Background(), TraceContext{})
	if _, ok := TraceFromContext(bad); ok {
		t.Fatal("invalid context trace reported ok")
	}
}

// TestSpanWithTrace: an empty context mints a trace; a populated one is
// adopted with the caller's span as parent; the span's own TraceContext
// re-parents the next hop.
func TestSpanWithTrace(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "edge")

	minted := tr.Start("req-1").WithTrace(TraceContext{})
	if minted.TraceID() == "" || minted.TraceContext().SpanID == "" {
		t.Fatalf("mint failed: %+v", minted.TraceContext())
	}
	minted.End()

	adopted := tr.Start("req-2").WithTrace(TraceContext{TraceID: "t-up", SpanID: "s-up"})
	if adopted.TraceID() != "t-up" {
		t.Fatalf("adopted trace = %q", adopted.TraceID())
	}
	next := adopted.TraceContext()
	if next.TraceID != "t-up" || next.SpanID == "" || next.SpanID == "s-up" {
		t.Fatalf("downstream context = %+v, want same trace with own span id", next)
	}
	adopted.End()

	recs := tr.Recent()
	if len(recs) != 2 {
		t.Fatalf("recent = %d spans", len(recs))
	}
	if recs[1].TraceID != "t-up" || recs[1].ParentID != "s-up" || recs[1].SpanID != next.SpanID {
		t.Fatalf("adopted record = %+v", recs[1])
	}
	if recs[0].StartUnixNano == 0 {
		t.Fatal("span record missing start timestamp")
	}
}

// TestSetRingSizeKeepsNewest: shrinking keeps the most recent spans and
// subsequent evictions count into spans_dropped_total{tracer=...}.
func TestSetRingSizeKeepsNewest(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "sized")
	for i := 0; i < 6; i++ {
		s := tr.Start("")
		s.SetID(string(rune('a' + i)))
		s.End()
	}
	tr.SetRingSize(3)
	if tr.RingSize() != 3 {
		t.Fatalf("ring size = %d", tr.RingSize())
	}
	recs := tr.Recent()
	if len(recs) != 3 || recs[0].ID != "d" || recs[2].ID != "f" {
		t.Fatalf("after shrink: %+v", recs)
	}
	before := scrape(t, reg)[`spans_dropped_total{tracer="sized"}`]
	s := tr.Start("")
	s.SetID("g")
	s.End()
	recs = tr.Recent()
	if len(recs) != 3 || recs[0].ID != "e" || recs[2].ID != "g" {
		t.Fatalf("after push: %+v", recs)
	}
	after := scrape(t, reg)[`spans_dropped_total{tracer="sized"}`]
	if after != before+1 {
		t.Fatalf("spans_dropped_total %v -> %v, want +1", before, after)
	}
	// Growing preserves everything held.
	tr.SetRingSize(10)
	if got := len(tr.Recent()); got != 3 {
		t.Fatalf("after grow: %d spans", got)
	}
	tr.SetRingSize(0) // ignored
	if tr.RingSize() != 10 {
		t.Fatal("SetRingSize(0) not ignored")
	}
}

// TestSpanHubStitch: three tracers emit spans of one trace; the hub returns
// them ordered by start time under the shared id and its handler serves both
// the grouped and the single-trace shape.
func TestSpanHubStitch(t *testing.T) {
	reg := NewRegistry()
	client := NewTracer(reg, "client_segment")
	router := NewTracer(reg, "router_request")
	server := NewTracer(reg, "server_request")

	// Client mints; router and server each re-parent off the upstream hop.
	cs := client.Start("seg0").WithTrace(TraceContext{})
	traceID := cs.TraceID()
	rs := router.Start("seg0").WithTrace(cs.TraceContext())
	ss := server.Start("seg0").WithTrace(rs.TraceContext())
	ss.End()
	rs.End()
	cs.End()
	// Unrelated traced span that must not appear in the stitched trace.
	other := client.Start("seg1").WithTrace(TraceContext{})
	other.End()

	hub := NewSpanHub(client, router, nil, server)
	spans := hub.Trace(traceID)
	if len(spans) != 3 {
		t.Fatalf("stitched %d spans, want 3", len(spans))
	}
	wantOrder := []string{"client_segment", "router_request", "server_request"}
	for i, r := range spans {
		if r.Name != wantOrder[i] {
			t.Fatalf("span %d = %s, want %s (start-time order)", i, r.Name, wantOrder[i])
		}
	}
	if spans[1].ParentID != spans[0].SpanID || spans[2].ParentID != spans[1].SpanID {
		t.Fatalf("parent chain broken: %+v", spans)
	}
	if len(hub.Traces()) != 2 {
		t.Fatalf("traces = %d, want 2", len(hub.Traces()))
	}

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "client_segment" || got[0].TraceID != traceID {
		t.Fatalf("handler trace = %+v", got)
	}
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var grouped struct {
		Traces map[string][]SpanRecord `json:"traces"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&grouped); err != nil {
		t.Fatal(err)
	}
	if len(grouped.Traces[traceID]) != 3 {
		t.Fatalf("grouped handler: %+v", grouped.Traces)
	}
}

// TestHistogramExemplars: ObserveExemplar attaches the latest trace id per
// bucket; plain Observe does not disturb it and /metrics output is unchanged.
func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "t", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "t-aa")
	h.ObserveExemplar(0.5, "t-bb")
	h.ObserveExemplar(0.05, "t-cc") // newer exemplar replaces t-aa
	h.ObserveExemplar(0.07, "")     // empty trace id records no exemplar
	h.Observe(0.08)

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v", ex)
	}
	byTrace := map[string]float64{}
	for _, e := range ex {
		byTrace[e.TraceID] = e.Value
	}
	if byTrace["t-cc"] != 0.05 || byTrace["t-bb"] != 0.5 {
		t.Fatalf("exemplar values = %v", byTrace)
	}
	if _, ok := byTrace["t-aa"]; ok {
		t.Fatal("replaced exemplar still visible")
	}
	// All five observations still count in the text exposition.
	if got := scrape(t, reg)["lat_seconds_count"]; got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
}
