package obs

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Cross-tier trace propagation extends the X-Request-Id contract to a
// trace-id / parent-span pair: the edge (the streaming client, or the first
// tier that sees a request) mints a trace id, every tier starts its own span
// as a child of the incoming one, and re-parents the context (and forward
// headers) before handing off. One segment fetch then yields spans in the
// client, router, resilience chain, and server tracers that all share one
// trace id — a SpanHub stitches them back together for /debug/spans.
//
// IDs are monotonic ("t-000042" / "s-000042"), matching the request-ID
// scheme: reproducible chaos runs beat global uniqueness in-process.

const (
	// TraceIDHeader carries the trace id across tiers.
	TraceIDHeader = "X-Trace-Id"
	// ParentSpanHeader carries the caller's span id across tiers.
	ParentSpanHeader = "X-Parent-Span"
)

// TraceContext identifies a position in a trace: the trace itself and the
// current span, which becomes the parent of whatever the next tier starts.
type TraceContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id,omitempty"`
}

// Valid reports whether the context names a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// SetHeader writes the propagation headers for a downstream hop.
func (tc TraceContext) SetHeader(h http.Header) {
	if tc.TraceID == "" {
		return
	}
	h.Set(TraceIDHeader, tc.TraceID)
	if tc.SpanID != "" {
		h.Set(ParentSpanHeader, tc.SpanID)
	}
}

var (
	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
)

// NewTraceID mints the next trace ID ("t-000042").
func NewTraceID() string { return fmt.Sprintf("t-%06d", traceSeq.Add(1)) }

// NewSpanID mints the next span ID ("s-000042").
func NewSpanID() string { return fmt.Sprintf("s-%06d", spanSeq.Add(1)) }

const traceCtxKey ctxKey = requestIDKey + 1

// WithTraceContext attaches a trace position to ctx.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey, tc)
}

// TraceFromContext returns the trace position attached by WithTraceContext.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey).(TraceContext)
	return tc, ok && tc.Valid()
}

// TraceFromHeader reads the propagation headers (values over 64 bytes are
// truncated, mirroring the request-ID middleware's hygiene).
func TraceFromHeader(h http.Header) (TraceContext, bool) {
	tc := TraceContext{
		TraceID: clipID(h.Get(TraceIDHeader)),
		SpanID:  clipID(h.Get(ParentSpanHeader)),
	}
	return tc, tc.Valid()
}

func clipID(s string) string {
	if len(s) > 64 {
		return s[:64]
	}
	return s
}

// TraceForRequest resolves the trace position for an in-flight server
// request: context first (an upstream in-process tier already re-parented),
// then the propagation headers.
func TraceForRequest(r *http.Request) (TraceContext, bool) {
	if tc, ok := TraceFromContext(r.Context()); ok {
		return tc, true
	}
	return TraceFromHeader(r.Header)
}
