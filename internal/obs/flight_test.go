package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFlightSamplingGates: Session hashes the id, SessionN takes n mod
// SampleEvery; unsampled sessions get nil, on which every method no-ops.
func TestFlightSamplingGates(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleEvery: 4})
	sampled := 0
	for n := 0; n < 16; n++ {
		if s := f.SessionN(n); s != nil {
			if n%4 != 0 {
				t.Fatalf("SessionN(%d) sampled with SampleEvery 4", n)
			}
			sampled++
			s.Close()
		}
	}
	if sampled != 4 {
		t.Fatalf("SessionN sampled %d of 16, want 4", sampled)
	}

	// Session's gate is the fnv32a hash mod SampleEvery — verify against a
	// direct computation on both a sampled and an unsampled id.
	hash := func(id string) uint32 {
		h := fnv.New32a()
		io.WriteString(h, id)
		return h.Sum32()
	}
	var in, out string
	for i := 0; in == "" || out == ""; i++ {
		id := fmt.Sprintf("viewer-%d", i)
		if hash(id)%4 == 0 {
			in = id
		} else {
			out = id
		}
	}
	if s := f.Session(in); s == nil {
		t.Fatalf("Session(%q) not sampled, hash says it should be", in)
	} else {
		if s.ID() != in {
			t.Fatalf("ID() = %q, want %q", s.ID(), in)
		}
		s.Close()
	}
	if s := f.Session(out); s != nil {
		t.Fatalf("Session(%q) sampled, hash says it should not be", out)
	}

	// Nil session: every method is a no-op, not a panic.
	var nilS *FlightSession
	nilS.Record(FlightEvent{Kind: FlightAbandon})
	nilS.Close()
	if nilS.ID() != "" {
		t.Fatal("nil ID() not empty")
	}
	if len(f.Dumps()) != 0 {
		t.Fatal("nil session produced a dump")
	}
}

// TestFlightAbandonTrigger: an abandon event dumps the ring immediately, and
// a re-trigger with no new events is deduplicated.
func TestFlightAbandonTrigger(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1, Registry: reg})
	s := f.Session("sess")
	s.Record(FlightEvent{TimeSec: 0, Kind: FlightJoin, Seg: -1})
	s.Record(FlightEvent{TimeSec: 1, Kind: FlightDownload, Seg: 0, V1: 1000})
	s.Record(FlightEvent{TimeSec: 2, Kind: FlightAbandon, Seg: 1, V1: 0.7})

	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Session != "sess" || d.Reason != "abandon" {
		t.Fatalf("dump = %s/%s", d.Session, d.Reason)
	}
	if len(d.Events) != 3 || d.Events[0].Kind != FlightJoin || d.Events[2].Kind != FlightAbandon {
		t.Fatalf("dump events = %+v", d.Events)
	}
	if d.Events[2].V1 != 0.7 || d.Events[2].Seg != 1 {
		t.Fatalf("abandon payload = %+v", d.Events[2])
	}

	// No new events since the dump: an external trigger must not duplicate.
	if !f.Trigger("sess", "manual") {
		t.Fatal("Trigger on active session returned false")
	}
	if len(f.Dumps()) != 1 {
		t.Fatalf("dedupe failed: %d dumps", len(f.Dumps()))
	}
	// One new event makes the next trigger dump again.
	s.Record(FlightEvent{TimeSec: 3, Kind: FlightLeave, Seg: -1})
	f.Trigger("sess", "manual")
	if len(f.Dumps()) != 2 {
		t.Fatalf("post-event trigger: %d dumps, want 2", len(f.Dumps()))
	}
	vals := scrape(t, reg)
	if vals[`flight_dumps_total{reason="abandon"}`] != 1 || vals[`flight_dumps_total{reason="manual"}`] != 1 {
		t.Fatalf("flight_dumps_total wrong: %v", vals)
	}
}

// TestFlightStallBurst: StallBurst stalls inside the window trigger, spread
// out stalls do not.
func TestFlightStallBurst(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1, StallBurst: 3, StallBurstWindowSec: 10})
	s := f.Session("bursty")
	// Three stalls across 40 s of session time: outside the window.
	for i, ts := range []float64{0, 20, 40} {
		s.Record(FlightEvent{TimeSec: ts, Kind: FlightStall, Seg: int32(i), V1: 0.5})
	}
	if n := len(f.Dumps()); n != 0 {
		t.Fatalf("spread stalls dumped %d times", n)
	}
	// Two more stalls close to the last: stalls at 40, 41, 42 fit in 10 s.
	s.Record(FlightEvent{TimeSec: 41, Kind: FlightStall, Seg: 4, V1: 0.5})
	s.Record(FlightEvent{TimeSec: 42, Kind: FlightStall, Seg: 5, V1: 0.5})
	dumps := f.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "stall_burst" {
		t.Fatalf("dumps = %+v, want one stall_burst", dumps)
	}

	// StallBurst < 0 disables the trigger entirely.
	f2 := NewFlightRecorder(FlightConfig{SampleEvery: 1, StallBurst: -1})
	s2 := f2.Session("quiet")
	for i := 0; i < 10; i++ {
		s2.Record(FlightEvent{TimeSec: float64(i), Kind: FlightStall})
	}
	if len(f2.Dumps()) != 0 {
		t.Fatal("disabled stall trigger still dumped")
	}
}

// TestFlightRingWraps: the per-session ring keeps only the newest RingSize
// events, oldest first in the dump.
func TestFlightRingWraps(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1, RingSize: 4})
	s := f.Session("wrap")
	for i := 0; i < 10; i++ {
		s.Record(FlightEvent{TimeSec: float64(i), Kind: FlightDownload, Seg: int32(i)})
	}
	s.Record(FlightEvent{TimeSec: 10, Kind: FlightAbandon, Seg: 10})
	d := f.Dumps()[0]
	if len(d.Events) != 4 {
		t.Fatalf("ring dump = %d events, want 4", len(d.Events))
	}
	for i, ev := range d.Events {
		if want := int32(7 + i); ev.Seg != want {
			t.Fatalf("event %d seg = %d, want %d (oldest-first)", i, ev.Seg, want)
		}
	}
}

// TestFlightTriggerAll: the SLO-burn hook dumps every active session once and
// skips closed ones.
func TestFlightTriggerAll(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1})
	a, b, c := f.Session("a"), f.Session("b"), f.Session("c")
	for _, s := range []*FlightSession{a, b, c} {
		s.Record(FlightEvent{Kind: FlightJoin, Seg: -1})
	}
	c.Close()
	if n := f.TriggerAll("slo:availability"); n != 2 {
		t.Fatalf("TriggerAll dumped %d sessions, want 2", n)
	}
	dumps := f.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("dumps = %d, want 2", len(dumps))
	}
	for _, d := range dumps {
		if d.Reason != "slo:availability" {
			t.Fatalf("reason = %q", d.Reason)
		}
		if d.Session == "c" {
			t.Fatal("closed session dumped")
		}
	}
	if f.Trigger("c", "late") {
		t.Fatal("Trigger on closed session returned true")
	}
}

// TestFlightMaxDumps: the dump list is bounded; evictions count into
// flight_dumps_dropped_total.
func TestFlightMaxDumps(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1, MaxDumps: 3, Registry: reg})
	for i := 0; i < 5; i++ {
		s := f.Session(fmt.Sprintf("s%d", i))
		s.Record(FlightEvent{TimeSec: float64(i), Kind: FlightAbandon, Seg: int32(i)})
		s.Close()
	}
	dumps := f.Dumps()
	if len(dumps) != 3 {
		t.Fatalf("dumps = %d, want 3", len(dumps))
	}
	// Oldest evicted: s0 and s1 gone, s2..s4 retained in order.
	for i, d := range dumps {
		if want := fmt.Sprintf("s%d", i+2); d.Session != want {
			t.Fatalf("dump %d session = %q, want %q", i, d.Session, want)
		}
	}
	if got := scrape(t, reg)["flight_dumps_dropped_total"]; got != 2 {
		t.Fatalf("flight_dumps_dropped_total = %v, want 2", got)
	}
}

// TestFlightJSONLAndHandler: dumps round-trip through the JSONL format and
// the /debug/flight handler serves the same bytes as NDJSON.
func TestFlightJSONLAndHandler(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1})
	s := f.Session("jsonl")
	s.Record(FlightEvent{TimeSec: 1.5, Kind: FlightDownload, Seg: 3, V1: 4096, V2: 0.25, V3: 0.1})
	s.Record(FlightEvent{TimeSec: 2, Kind: FlightAbandon, Seg: 4, V1: 0.8})

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var d FlightDump
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if d.Session != "jsonl" || d.Reason != "abandon" || len(d.Events) != 2 {
			t.Fatalf("decoded dump = %+v", d)
		}
		if d.Events[0].Kind != FlightDownload || d.Events[0].V1 != 4096 {
			t.Fatalf("event 0 = %+v", d.Events[0])
		}
	}
	if lines != 1 {
		t.Fatalf("JSONL lines = %d, want 1", lines)
	}
	// Kinds serialize as names, not numbers.
	if !bytes.Contains(buf.Bytes(), []byte(`"kind":"download"`)) {
		t.Fatalf("kind not textual: %s", buf.String())
	}

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, buf.Bytes()) {
		t.Fatal("handler body differs from WriteJSONL output")
	}
}

// TestFlightKindRoundTrip: every kind name survives Marshal/Unmarshal and
// unknown names are rejected.
func TestFlightKindRoundTrip(t *testing.T) {
	for k := FlightJoin; k <= FlightLeave; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back FlightKind
		if err := back.UnmarshalText(b); err != nil || back != k {
			t.Fatalf("kind %v round-trip = %v, %v", k, back, err)
		}
	}
	var k FlightKind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestFlightMetrics: the sampling gate's seen/sampled counters.
func TestFlightMetrics(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(FlightConfig{SampleEvery: 2, Registry: reg})
	for n := 0; n < 10; n++ {
		if s := f.SessionN(n); s != nil {
			s.Close()
		}
	}
	vals := scrape(t, reg)
	if vals["flight_sessions_seen_total"] != 10 {
		t.Fatalf("seen = %v, want 10", vals["flight_sessions_seen_total"])
	}
	if vals["flight_sessions_sampled_total"] != 5 {
		t.Fatalf("sampled = %v, want 5", vals["flight_sessions_sampled_total"])
	}
}
