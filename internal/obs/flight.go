package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
)

// The flight recorder is a per-session black box: a sampled subset of
// sessions keeps a small fixed ring of recent events (downloads, plan
// decisions, stalls, estimator state), and an anomaly — abandon, stall
// burst, SLO burn — dumps the ring as a JSONL record for postmortems. The
// design is gated for the fleet hot path: unsampled sessions hold a nil
// *FlightSession and every Record call on nil is a single branch, so the
// engine's ≲0.001 allocs/event steady state survives with the recorder on.

// FlightKind tags one black-box event.
type FlightKind uint8

const (
	// FlightJoin marks session start. v1 = join time.
	FlightJoin FlightKind = iota
	// FlightDownload is one fetched segment. v1/v2/v3 are caller-defined
	// (fleet: download sec / stall sec / estimate bps; client: bytes /
	// stall sec / QoE loss).
	FlightDownload
	// FlightPlan is one planning decision. v1 = buffer sec, v2 = estimate.
	FlightPlan
	// FlightStall is a rebuffering event. v1 = stall sec.
	FlightStall
	// FlightAbandon is a segment abandoned after the retry ladder. v1 =
	// stall sec charged.
	FlightAbandon
	// FlightLeave marks session end.
	FlightLeave
)

var flightKindNames = [...]string{"join", "download", "plan", "stall", "abandon", "leave"}

// String names the kind.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// MarshalText renders the kind as its name in JSON dumps.
func (k FlightKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name.
func (k *FlightKind) UnmarshalText(b []byte) error {
	for i, n := range flightKindNames {
		if n == string(b) {
			*k = FlightKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown flight kind %q", b)
}

// FlightEvent is one black-box entry. It is a compact value type: recording
// into the preallocated ring allocates nothing.
type FlightEvent struct {
	// TimeSec is session-relative (or virtual-clock) time.
	TimeSec float64 `json:"t"`
	// Kind tags the event.
	Kind FlightKind `json:"kind"`
	// Seg is the segment index the event concerns (-1 when not segment
	// scoped).
	Seg int32 `json:"seg"`
	// V1..V3 are kind-specific payloads (see the kind docs).
	V1 float64 `json:"v1"`
	V2 float64 `json:"v2"`
	V3 float64 `json:"v3"`
}

// FlightDump is one triggered black-box dump.
type FlightDump struct {
	Session string        `json:"session"`
	Reason  string        `json:"reason"`
	Events  []FlightEvent `json:"events"`
}

// FlightConfig configures a FlightRecorder.
type FlightConfig struct {
	// SampleEvery records 1-in-N sessions (1 = every session; 0 → 16).
	SampleEvery int
	// RingSize is the per-session event ring (0 → 64).
	RingSize int
	// StallBurst triggers a dump when this many stall events land within
	// StallBurstWindowSec of session time (0 → 3; negative disables).
	StallBurst int
	// StallBurstWindowSec is the burst window (0 → 10).
	StallBurstWindowSec float64
	// MaxDumps bounds retained dumps; the oldest is evicted (0 → 64).
	MaxDumps int
	// Registry receives flight_* metrics when non-nil.
	Registry *Registry
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.StallBurst == 0 {
		c.StallBurst = 3
	}
	if c.StallBurstWindowSec <= 0 {
		c.StallBurstWindowSec = 10
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 64
	}
	return c
}

// FlightRecorder owns the sampled sessions and their dumps.
type FlightRecorder struct {
	cfg FlightConfig

	mu     sync.Mutex
	active map[string]*FlightSession
	dumps  []FlightDump

	seen    *Counter
	sampled *Counter
	dropped *Counter
}

// NewFlightRecorder builds a recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	f := &FlightRecorder{cfg: cfg.withDefaults(), active: make(map[string]*FlightSession)}
	if reg := f.cfg.Registry; reg != nil {
		f.seen = reg.Counter("flight_sessions_seen_total", "Sessions offered to the flight recorder's sampling gate.")
		f.sampled = reg.Counter("flight_sessions_sampled_total", "Sessions the flight recorder is actually recording.")
		f.dropped = reg.Counter("flight_dumps_dropped_total", "Dumps evicted because MaxDumps was reached.")
	}
	return f
}

// Session passes id through the sampling gate: a deterministic hash selects
// 1-in-SampleEvery sessions. Returns nil (on which every FlightSession
// method is a no-op) for unsampled sessions.
func (f *FlightRecorder) Session(id string) *FlightSession {
	h := fnv.New32a()
	io.WriteString(h, id)
	return f.admit(id, int(h.Sum32()%uint32(f.cfg.SampleEvery)) == 0)
}

// SessionN is Session for integer-identified sessions (the fleet engine):
// the gate is n % SampleEvery == 0, so sampled sessions are predictable in
// tests and evenly spread across shards.
func (f *FlightRecorder) SessionN(n int) *FlightSession {
	return f.admit(fmt.Sprintf("session-%d", n), n%f.cfg.SampleEvery == 0)
}

func (f *FlightRecorder) admit(id string, sampled bool) *FlightSession {
	if f.seen != nil {
		f.seen.Inc()
	}
	if !sampled {
		return nil
	}
	s := &FlightSession{
		rec:    f,
		id:     id,
		ring:   make([]FlightEvent, f.cfg.RingSize),
		stalls: make([]float64, maxInt(f.cfg.StallBurst, 1)),
	}
	f.mu.Lock()
	f.active[id] = s
	f.mu.Unlock()
	if f.sampled != nil {
		f.sampled.Inc()
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FlightSession is one sampled session's ring. All methods are nil-safe:
// call sites hold a possibly-nil pointer and pay one branch when unsampled.
type FlightSession struct {
	rec *FlightRecorder
	id  string

	mu      sync.Mutex
	ring    []FlightEvent
	next, n int
	total   uint64 // events ever recorded
	dumpAt  uint64 // total at the last dump (dedupe)

	stalls              []float64
	stallNext, stallCnt int
}

// ID returns the session identifier ("" on nil).
func (s *FlightSession) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Record appends one event and fires the built-in anomaly triggers: an
// abandon event dumps immediately; StallBurst stalls within the burst
// window dump as "stall_burst".
func (s *FlightSession) Record(ev FlightEvent) {
	if s == nil {
		return
	}
	var trigger string
	s.mu.Lock()
	s.ring[s.next] = ev
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.total++
	switch ev.Kind {
	case FlightAbandon:
		trigger = "abandon"
	case FlightStall:
		if s.rec.cfg.StallBurst > 0 {
			s.stalls[s.stallNext] = ev.TimeSec
			s.stallNext = (s.stallNext + 1) % len(s.stalls)
			if s.stallCnt < len(s.stalls) {
				s.stallCnt++
			}
			if s.stallCnt == len(s.stalls) {
				oldest := s.stalls[s.stallNext] // next overwrite = oldest retained
				if s.stallCnt > 1 && ev.TimeSec-oldest <= s.rec.cfg.StallBurstWindowSec {
					trigger = "stall_burst"
				}
			}
		}
	}
	s.mu.Unlock()
	if trigger != "" {
		s.rec.dump(s, trigger)
	}
}

// Close deregisters the session from the recorder's active set (its dumps
// remain). Nil-safe.
func (s *FlightSession) Close() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	delete(s.rec.active, s.id)
	s.rec.mu.Unlock()
}

// dump snapshots the session's ring into the bounded dump list, skipping if
// nothing new was recorded since the last dump.
func (f *FlightRecorder) dump(s *FlightSession, reason string) {
	s.mu.Lock()
	if s.total == s.dumpAt {
		s.mu.Unlock()
		return
	}
	s.dumpAt = s.total
	events := make([]FlightEvent, 0, s.n)
	for k := 0; k < s.n; k++ {
		events = append(events, s.ring[((s.next-s.n+k)%len(s.ring)+len(s.ring))%len(s.ring)])
	}
	s.mu.Unlock()

	d := FlightDump{Session: s.id, Reason: reason, Events: events}
	f.mu.Lock()
	f.dumps = append(f.dumps, d)
	evicted := 0
	if len(f.dumps) > f.cfg.MaxDumps {
		evicted = len(f.dumps) - f.cfg.MaxDumps
		f.dumps = append(f.dumps[:0], f.dumps[evicted:]...)
	}
	f.mu.Unlock()
	if reg := f.cfg.Registry; reg != nil {
		reg.Counter("flight_dumps_total", "Flight-recorder dumps by trigger reason.", L("reason", reason)).Inc()
		if evicted > 0 && f.dropped != nil {
			f.dropped.Add(float64(evicted))
		}
	}
}

// Trigger dumps one active session by id (reason is recorded verbatim).
func (f *FlightRecorder) Trigger(id, reason string) bool {
	f.mu.Lock()
	s := f.active[id]
	f.mu.Unlock()
	if s == nil {
		return false
	}
	f.dump(s, reason)
	return true
}

// TriggerAll dumps every active sampled session — the SLO burn hook. Returns
// the number of sessions dumped.
func (f *FlightRecorder) TriggerAll(reason string) int {
	f.mu.Lock()
	sessions := make([]*FlightSession, 0, len(f.active))
	for _, s := range f.active {
		sessions = append(sessions, s)
	}
	f.mu.Unlock()
	for _, s := range sessions {
		f.dump(s, reason)
	}
	return len(sessions)
}

// Dumps snapshots the retained dumps, oldest first.
func (f *FlightRecorder) Dumps() []FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightDump, len(f.dumps))
	copy(out, f.dumps)
	return out
}

// WriteJSONL writes one JSON object per dump.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range f.Dumps() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the dumps as JSONL at /debug/flight.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		f.WriteJSONL(w)
	})
}
