package obs

import (
	"strings"
	"testing"
)

// FuzzPromExposition pins the defensive-rendering contract: whatever metric
// names, label names, and label values reach the registry, WritePrometheus
// must emit text that a strict exposition parser accepts — names sanitized
// to the legal charset, values escaped, no panics.
func FuzzPromExposition(f *testing.F) {
	f.Add("requests_total", "path", "/manifest", "help text", 1.5)
	f.Add("", "", "", "", 0.0)
	f.Add("9leading", "le", `quote " back \ slash`, "multi\nline", -7.25)
	f.Add("name with spaces", "läbel", "new\nline\\esc\"", `\`, 1e300)
	f.Add("dup", "dup", "v", "h", 2.0)

	f.Fuzz(func(t *testing.T, name, lkey, lval, help string, v float64) {
		reg := NewRegistry()
		reg.Counter(name, help, L(lkey, lval)).Add(v)
		reg.Gauge(name+"_g", help).Set(v)
		h := reg.Histogram(name+"_h", help, []float64{0.5, 2}, L(lkey, lval))
		h.Observe(v)

		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		samples, err := ParsePrometheus(sb.String())
		if err != nil {
			t.Fatalf("unparseable exposition for name=%q lkey=%q lval=%q:\n%s\nerr: %v",
				name, lkey, lval, sb.String(), err)
		}
		// The three families yield at least counter + gauge + histogram
		// (buckets + sum + count) samples.
		if len(samples) < 7 {
			t.Fatalf("expected ≥7 samples, got %d:\n%s", len(samples), sb.String())
		}
	})
}
