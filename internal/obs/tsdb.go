package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The TSDB is the registry's short-term memory: a lock-cheap in-process
// time-series store that snapshots every registered series on a ticker into
// fixed ring-buffer windows at several resolutions (1s/10s/1m by default).
// Counters and histograms are stored as cumulative snapshots, so any window
// reduces to a delta between two ring slots — no per-tick subtraction state,
// and a missed tick degrades resolution instead of corrupting rates. Memory
// is bounded by construction: resolutions × slots × series (capped by
// MaxSeries).
//
// It exists to answer the questions instantaneous counters cannot — "did
// p99 stall-time regress over the last five minutes?" — without an external
// Prometheus: the SLO engine evaluates burn rates from it in-process, and
// /debug/tsdb serves it as JSON.

// Resolution is one rollup level: a ring of Slots samples spaced Step apart.
type Resolution struct {
	// Step is the sampling period of this ring. It must be a multiple of
	// the finest resolution's step (the base sampling interval).
	Step time.Duration
	// Slots is the ring length; the ring retains Step×Slots of history.
	Slots int
}

// DefaultResolutions keeps 2 minutes at 1s, 15 minutes at 10s, and one hour
// at 1m — ~270 slots per series.
func DefaultResolutions() []Resolution {
	return []Resolution{
		{Step: time.Second, Slots: 120},
		{Step: 10 * time.Second, Slots: 90},
		{Step: time.Minute, Slots: 60},
	}
}

// TSDBConfig configures a TSDB.
type TSDBConfig struct {
	// Resolutions are the rollup rings, finest first. Defaults to
	// DefaultResolutions. Steps must be positive multiples of the first
	// (finest) step.
	Resolutions []Resolution
	// MaxSeries bounds distinct stored series (0 → 4096). Series beyond
	// the cap are counted into tsdb_series_dropped_total and skipped.
	MaxSeries int
}

// ring is one resolution's sample window for one series.
type ring struct {
	stepNanos int64
	stride    int // base ticks between samples
	times     []int64
	vals      []float64 // counter cumulative / gauge value / histogram count
	sums      []float64 // histogram cumulative sum (nil for scalars)
	buckets   [][]uint64
	next, n   int
}

func newRing(stepNanos int64, stride, slots int, hist bool) *ring {
	r := &ring{
		stepNanos: stepNanos,
		stride:    stride,
		times:     make([]int64, slots),
		vals:      make([]float64, slots),
	}
	if hist {
		r.sums = make([]float64, slots)
		r.buckets = make([][]uint64, slots)
	}
	return r
}

// idx maps oldest-first position k (0 ≤ k < n) to a slot index.
func (r *ring) idx(k int) int {
	cap := len(r.times)
	return ((r.next-r.n+k)%cap + cap) % cap
}

func (r *ring) push(now int64, val float64, sum float64, bkts []uint64) {
	i := r.next
	r.times[i] = now
	r.vals[i] = val
	if r.sums != nil {
		r.sums[i] = sum
		if r.buckets[i] == nil || len(r.buckets[i]) != len(bkts) {
			r.buckets[i] = make([]uint64, len(bkts))
		}
		copy(r.buckets[i], bkts)
	}
	r.next = (r.next + 1) % len(r.times)
	if r.n < len(r.times) {
		r.n++
	}
}

// window locates the newest sample and the oldest sample within window of
// it, returning oldest-first positions. ok requires two distinct samples.
func (r *ring) window(window time.Duration) (first, last int, ok bool) {
	if r.n < 2 {
		return 0, 0, false
	}
	last = r.n - 1
	lastT := r.times[r.idx(last)]
	first = last
	for k := last - 1; k >= 0; k-- {
		if lastT-r.times[r.idx(k)] > window.Nanoseconds() {
			break
		}
		first = k
	}
	return first, last, first < last
}

// tsSeries is one stored series across all resolutions.
type tsSeries struct {
	key    string
	name   string
	labels []Label
	kind   Kind
	bounds []float64
	hist   *Histogram // exemplar source; nil for scalars
	rings  []*ring
}

// TSDB samples a Registry into bounded multi-resolution rings.
type TSDB struct {
	reg *Registry
	cfg TSDBConfig

	mu     sync.RWMutex
	series map[string]*tsSeries
	order  []string
	ticks  uint64

	nSeries atomic.Int64
	samples *Counter
	dropped *Counter

	hookMu sync.Mutex
	hooks  []func(now time.Time)

	startMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewTSDB builds a TSDB over reg. Registry meta-metrics (tsdb_samples_total,
// tsdb_series, tsdb_series_dropped_total) are registered on reg itself, so
// the store observes its own health.
func NewTSDB(reg *Registry, cfg TSDBConfig) *TSDB {
	if len(cfg.Resolutions) == 0 {
		cfg.Resolutions = DefaultResolutions()
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = 4096
	}
	db := &TSDB{
		reg:    reg,
		cfg:    cfg,
		series: make(map[string]*tsSeries),
	}
	db.samples = reg.Counter("tsdb_samples_total", "Sampling ticks the TSDB has taken.")
	db.dropped = reg.Counter("tsdb_series_dropped_total", "Series skipped because the TSDB hit MaxSeries.")
	reg.GaugeFunc("tsdb_series", "Distinct series held by the TSDB.", func() float64 {
		return float64(db.nSeries.Load())
	})
	return db
}

// BaseStep returns the finest sampling period.
func (db *TSDB) BaseStep() time.Duration { return db.cfg.Resolutions[0].Step }

// OnSample registers fn to run after every Sample tick (outside the store
// lock, so fn may query the TSDB). The SLO engine hangs off this hook.
func (db *TSDB) OnSample(fn func(now time.Time)) {
	db.hookMu.Lock()
	db.hooks = append(db.hooks, fn)
	db.hookMu.Unlock()
}

// Start begins sampling on the base step in a background goroutine.
func (db *TSDB) Start() {
	db.startMu.Lock()
	defer db.startMu.Unlock()
	if db.stop != nil {
		return
	}
	db.stop = make(chan struct{})
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		t := time.NewTicker(db.BaseStep())
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				db.Sample(now)
			case <-db.stop:
				return
			}
		}
	}()
}

// Stop halts the sampling goroutine. Safe to call when never started.
func (db *TSDB) Stop() {
	db.startMu.Lock()
	defer db.startMu.Unlock()
	if db.stop == nil {
		return
	}
	close(db.stop)
	db.wg.Wait()
	db.stop = nil
}

// Sample takes one snapshot of every registered series at time now. Exposed
// so tests (and virtual-time harnesses) can drive the store deterministically
// without the ticker.
func (db *TSDB) Sample(now time.Time) {
	nowN := now.UnixNano()
	db.mu.Lock()
	tick := db.ticks
	db.ticks++

	// Snapshot the family list under the registry lock, then walk each
	// family under its own lock — the same discipline WritePrometheus uses.
	db.reg.mu.Lock()
	fams := make([]*family, 0, len(db.reg.order))
	for _, n := range db.reg.order {
		fams = append(fams, db.reg.families[n])
	}
	db.reg.mu.Unlock()

	var scratch []uint64
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ts := db.seriesSlot(f, s)
			if ts == nil {
				continue
			}
			var val, sum float64
			var bkts []uint64
			switch f.kind {
			case KindCounter:
				val = s.c.Value()
			case KindGauge:
				if s.fn != nil {
					val = s.fn()
				} else {
					val = s.g.Value()
				}
			case KindHistogram:
				if cap(scratch) < len(s.h.counts) {
					scratch = make([]uint64, len(s.h.counts))
				}
				bkts = scratch[:len(s.h.counts)]
				var total uint64
				for i := range s.h.counts {
					bkts[i] = s.h.counts[i].Load()
					total += bkts[i]
				}
				// Count derives from the same bucket loads so count and
				// bucket deltas stay mutually consistent under concurrent
				// observes.
				val = float64(total)
				sum = s.h.Sum()
			}
			for _, rg := range ts.rings {
				if tick%uint64(rg.stride) == 0 {
					rg.push(nowN, val, sum, bkts)
				}
			}
		}
		f.mu.Unlock()
	}
	db.mu.Unlock()
	db.samples.Inc()

	db.hookMu.Lock()
	hooks := make([]func(time.Time), len(db.hooks))
	copy(hooks, db.hooks)
	db.hookMu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
}

// seriesSlot returns (creating on first sight) the stored series for a
// registry series. Called with db.mu and f.mu held.
func (db *TSDB) seriesSlot(f *family, s *series) *tsSeries {
	key := sanitizeName(f.name) + renderLabels(s.labels, "")
	ts, ok := db.series[key]
	if ok {
		return ts
	}
	if len(db.series) >= db.cfg.MaxSeries {
		db.dropped.Inc()
		return nil
	}
	base := db.cfg.Resolutions[0].Step
	ts = &tsSeries{
		key:    key,
		name:   sanitizeName(f.name),
		labels: s.labels,
		kind:   f.kind,
	}
	if f.kind == KindHistogram {
		ts.bounds = f.buckets
		ts.hist = s.h
	}
	for _, res := range db.cfg.Resolutions {
		stride := int(res.Step / base)
		if stride < 1 {
			stride = 1
		}
		ts.rings = append(ts.rings, newRing(res.Step.Nanoseconds(), stride, res.Slots, f.kind == KindHistogram))
	}
	db.series[key] = ts
	db.order = append(db.order, key)
	db.nSeries.Store(int64(len(db.series)))
	return ts
}

// SeriesNames lists stored series keys in first-seen order.
func (db *TSDB) SeriesNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Selector matches stored series: an exact metric name plus required label
// pairs. A match value ending in '*' is a prefix match — Sel("x_total",
// L("code", "5*")) sums every 5xx series of x_total.
type Selector struct {
	Name  string
	Match []Label
}

// Sel builds a Selector.
func Sel(name string, match ...Label) Selector { return Selector{Name: name, Match: match} }

func (sel Selector) matches(ts *tsSeries) bool {
	if ts.name != sel.Name {
		return false
	}
	for _, m := range sel.Match {
		found := false
		for _, l := range ts.labels {
			if l.Key != m.Key {
				continue
			}
			if strings.HasSuffix(m.Value, "*") {
				found = strings.HasPrefix(l.Value, strings.TrimSuffix(m.Value, "*"))
			} else {
				found = l.Value == m.Value
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// pickRing chooses the finest resolution whose retained span covers window
// and that has a computable window; falls back to the coarsest with data.
func pickRing(ts *tsSeries, window time.Duration) (*ring, int, int, bool) {
	for _, rg := range ts.rings {
		span := time.Duration(rg.stepNanos * int64(len(rg.times)-1))
		if span < window {
			continue
		}
		if first, last, ok := rg.window(window); ok {
			return rg, first, last, true
		}
	}
	// Nothing covers the window fully; take the coarsest ring's best effort.
	rg := ts.rings[len(ts.rings)-1]
	if first, last, ok := rg.window(window); ok {
		return rg, first, last, true
	}
	return nil, 0, 0, false
}

// DeltaSum sums, over all series the selector matches, the change across the
// window ending at each series' newest sample: counter value deltas, gauge
// value deltas, histogram observation-count deltas. ok reports whether at
// least one matching series had two samples inside the window.
func (db *TSDB) DeltaSum(sel Selector, window time.Duration) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total float64
	any := false
	for _, key := range db.order {
		ts := db.series[key]
		if !sel.matches(ts) {
			continue
		}
		rg, first, last, ok := pickRing(ts, window)
		if !ok {
			continue
		}
		total += rg.vals[rg.idx(last)] - rg.vals[rg.idx(first)]
		any = true
	}
	return total, any
}

// Last sums the newest sampled value of every matching series.
func (db *TSDB) Last(sel Selector) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total float64
	any := false
	for _, key := range db.order {
		ts := db.series[key]
		if !sel.matches(ts) || ts.rings[0].n == 0 {
			continue
		}
		rg := ts.rings[0]
		total += rg.vals[rg.idx(rg.n-1)]
		any = true
	}
	return total, any
}

// HistWindow is a histogram's observations within one window: per-bucket
// delta counts (last slot is +Inf) over the shared bounds.
type HistWindow struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the landing bucket, the way Prometheus histogram_quantile does.
// Returns 0 when the window holds no observations.
func (hw HistWindow) Quantile(q float64) float64 {
	if hw.Count == 0 || len(hw.Counts) == 0 {
		return 0
	}
	target := q * float64(hw.Count)
	var cum float64
	for i, c := range hw.Counts {
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(hw.Bounds) {
			// +Inf bucket: the largest finite bound is the best answer.
			if len(hw.Bounds) == 0 {
				return 0
			}
			return hw.Bounds[len(hw.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = hw.Bounds[i-1]
		}
		upper := hw.Bounds[i]
		frac := (target - (cum - float64(c))) / float64(c)
		return lower + (upper-lower)*frac
	}
	return hw.Bounds[len(hw.Bounds)-1]
}

// FracAbove returns the fraction of windowed observations strictly above
// the first bucket bound ≥ threshold (bucketed data cannot resolve finer).
func (hw HistWindow) FracAbove(threshold float64) float64 {
	if hw.Count == 0 {
		return 0
	}
	var above uint64
	for i, c := range hw.Counts {
		bound := math.Inf(1)
		if i < len(hw.Bounds) {
			bound = hw.Bounds[i]
		}
		if bound > threshold {
			above += c
		}
	}
	return float64(above) / float64(hw.Count)
}

// HistDelta merges the windowed observations of every histogram series the
// selector matches (they share bounds within one family).
func (db *TSDB) HistDelta(sel Selector, window time.Duration) (HistWindow, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var hw HistWindow
	any := false
	for _, key := range db.order {
		ts := db.series[key]
		if !sel.matches(ts) || ts.kind != KindHistogram {
			continue
		}
		rg, first, last, ok := pickRing(ts, window)
		if !ok {
			continue
		}
		fi, li := rg.idx(first), rg.idx(last)
		if hw.Counts == nil {
			hw.Bounds = ts.bounds
			hw.Counts = make([]uint64, len(rg.buckets[li]))
		}
		if len(rg.buckets[li]) != len(hw.Counts) {
			continue
		}
		for b := range hw.Counts {
			d := rg.buckets[li][b] - rg.buckets[fi][b]
			hw.Counts[b] += d
			hw.Count += d
		}
		hw.Sum += rg.sums[li] - rg.sums[fi]
		any = true
	}
	return hw, any
}

// --- JSON exposition (/debug/tsdb) ---

type tsdbPointJSON struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
	// Histogram points additionally carry the cumulative sum and the
	// delta-quantiles vs the previous slot in the same ring.
	Sum float64 `json:"sum,omitempty"`
	Q50 float64 `json:"q50,omitempty"`
	Q90 float64 `json:"q90,omitempty"`
	Q99 float64 `json:"q99,omitempty"`
}

type tsdbResJSON struct {
	StepSeconds float64         `json:"step_seconds"`
	Points      []tsdbPointJSON `json:"points"`
}

type tsdbSeriesJSON struct {
	Series      string        `json:"series"`
	Kind        string        `json:"kind"`
	Exemplars   []Exemplar    `json:"exemplars,omitempty"`
	Resolutions []tsdbResJSON `json:"resolutions"`
}

type tsdbJSON struct {
	BaseStepSeconds float64          `json:"base_step_seconds"`
	Series          []tsdbSeriesJSON `json:"series"`
}

// Snapshot renders the store for /debug/tsdb. seriesFilter (when non-empty)
// keeps only series whose key contains it; limit (when > 0) keeps only the
// newest limit points per ring.
func (db *TSDB) Snapshot(seriesFilter string, limit int) tsdbJSON {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := tsdbJSON{BaseStepSeconds: db.BaseStep().Seconds()}
	keys := make([]string, len(db.order))
	copy(keys, db.order)
	sort.Strings(keys)
	for _, key := range keys {
		if seriesFilter != "" && !strings.Contains(key, seriesFilter) {
			continue
		}
		ts := db.series[key]
		sj := tsdbSeriesJSON{Series: key, Kind: ts.kind.String()}
		if ts.hist != nil {
			sj.Exemplars = ts.hist.Exemplars()
		}
		for _, rg := range ts.rings {
			rj := tsdbResJSON{StepSeconds: time.Duration(rg.stepNanos).Seconds()}
			start := 0
			if limit > 0 && rg.n > limit {
				start = rg.n - limit
			}
			for k := start; k < rg.n; k++ {
				i := rg.idx(k)
				p := tsdbPointJSON{
					T: float64(rg.times[i]) / float64(time.Second),
					V: rg.vals[i],
				}
				if ts.kind == KindHistogram {
					p.Sum = rg.sums[i]
					if k > 0 {
						prev := rg.idx(k - 1)
						hw := HistWindow{Bounds: ts.bounds, Counts: make([]uint64, len(rg.buckets[i]))}
						for b := range hw.Counts {
							d := rg.buckets[i][b] - rg.buckets[prev][b]
							hw.Counts[b] = d
							hw.Count += d
						}
						p.Q50 = hw.Quantile(0.50)
						p.Q90 = hw.Quantile(0.90)
						p.Q99 = hw.Quantile(0.99)
					}
				}
				rj.Points = append(rj.Points, p)
			}
			sj.Resolutions = append(sj.Resolutions, rj)
		}
		out.Series = append(out.Series, sj)
	}
	return out
}

// Handler serves the store as JSON at /debug/tsdb. Query parameters:
// ?series=<substring> filters series, ?limit=<n> caps points per ring.
func (db *TSDB) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				limit = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(db.Snapshot(r.URL.Query().Get("series"), limit))
	})
}
