package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4) and as an expvar JSON tree. Rendering is defensive:
// metric and label names are sanitized to the exposition charset and label
// values are escaped, so arbitrary strings (fuzzed, user-supplied paths)
// always produce parseable output — FuzzPromExposition pins this.

// sanitizeName maps an arbitrary string onto the exposition name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become '_'; an empty or
// digit-leading name gains a '_' prefix.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// sanitizeLabelName is sanitizeName minus ':' (colons are reserved for
// recording rules in label-name position).
func sanitizeLabelName(s string) string {
	s = sanitizeName(s)
	return strings.ReplaceAll(s, ":", "_")
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// exposition format.
func escapeLabelValue(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// escapeHelp escapes backslash and newline for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a sorted, escaped label block ("{k=\"v\",...}"), with
// extra appended last (already-formatted pairs like `le="0.5"`). Returns ""
// for an empty set.
func renderLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeLabelName(l.Key))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteString(`"`)
	}
	if extra != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders every family in the text exposition format,
// families and series sorted so output is stable for golden tests and
// scrape diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, rawName := range names {
		f := fams[rawName]
		name := sanitizeName(rawName)
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.kind)

		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(bw, "%s%s %s\n", name, renderLabels(s.labels, ""), formatValue(s.c.Value()))
			case KindGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.g.Value()
				}
				fmt.Fprintf(bw, "%s%s %s\n", name, renderLabels(s.labels, ""), formatValue(v))
			case KindHistogram:
				var cum uint64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					le := fmt.Sprintf(`le="%s"`, formatValue(bound))
					fmt.Fprintf(bw, "%s_bucket%s %d\n", name, renderLabels(s.labels, le), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name, renderLabels(s.labels, `le="+Inf"`), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", name, renderLabels(s.labels, ""), formatValue(s.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", name, renderLabels(s.labels, ""), s.h.Count())
			}
		}
		f.mu.Unlock()
	}
	return bw.Flush()
}

// Handler serves the registry at GET /metrics in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ExpvarFunc adapts the registry to an expvar.Var: a JSON object of
// series name (with inline label block) → value. Histograms export their
// _sum and _count.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		out := make(map[string]float64)
		r.mu.Lock()
		fams := make([]*family, 0, len(r.families))
		for _, f := range r.families {
			fams = append(fams, f)
		}
		r.mu.Unlock()
		for _, f := range fams {
			name := sanitizeName(f.name)
			f.mu.Lock()
			for _, s := range f.series {
				series := name + renderLabels(s.labels, "")
				switch f.kind {
				case KindCounter:
					out[series] = s.c.Value()
				case KindGauge:
					if s.fn != nil {
						out[series] = s.fn()
					} else {
						out[series] = s.g.Value()
					}
				case KindHistogram:
					out[series+"_sum"] = s.h.Sum()
					out[series+"_count"] = float64(s.h.Count())
				}
			}
			f.mu.Unlock()
		}
		return out
	}
}

// Sample is one parsed exposition series.
type Sample struct {
	// Name is the metric name (histogram samples keep their _bucket/_sum/
	// _count suffix).
	Name string
	// Labels holds the parsed label pairs, sorted by key.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Series renders the canonical "name{k=\"v\"}" form.
func (s Sample) Series() string { return s.Name + renderLabels(s.Labels, "") }

// ParsePrometheus parses text exposition output back into samples. It
// accepts exactly what WritePrometheus emits (and the common subset of the
// format): comment lines are skipped, every other non-empty line must be
// `name[{labels}] value`. The scrape-under-load soak assertion and the
// exposition fuzz target both run every render through it.
func ParsePrometheus(text string) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
		out = append(out, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("missing name or value in %q", line)
	}
	s.Name = rest[:end]
	if err := validExpositionName(s.Name, false); err != nil {
		return s, err
	}
	rest = rest[end:]
	if rest[0] == '{' {
		var err error
		s.Labels, rest, err = parseLabelBlock(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// A timestamp after the value is legal in the format; we never emit one.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabelBlock(rest string) ([]Label, string, error) {
	rest = rest[1:] // consume '{'
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("bad label pair near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if err := validExpositionName(key, true); err != nil {
			return nil, "", err
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value near %q", rest)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if len(rest) == 0 {
				return nil, "", fmt.Errorf("unterminated label value")
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label value")
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label value", rest[1])
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		rest = strings.TrimLeft(rest, " \t")
		if len(rest) > 0 && rest[0] == ',' {
			rest = rest[1:]
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels, rest, nil
}

// validExpositionName checks the exposition name charset.
func validExpositionName(s string, labelName bool) error {
	if s == "" {
		return fmt.Errorf("empty name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
			(!labelName && c == ':') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid name %q", s)
		}
	}
	return nil
}

// goGoroutines and goHeapAlloc back RegisterGoMetrics.
func goGoroutines() float64 { return float64(runtime.NumGoroutine()) }

func goHeapAlloc() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc)
}
