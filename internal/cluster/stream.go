package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

// DefaultWindowCap bounds a per-segment window when StreamConfig.WindowCap is
// zero. 512 points keeps a window at ~8 KB while staying an order of
// magnitude above the paper's 48-user offline population, so the reservoir
// is a faithful sample of the viewing distribution.
const DefaultWindowCap = 512

// StreamConfig parameterizes a Stream.
type StreamConfig struct {
	// Eps and MinPts are the DBSCAN parameters applied to every window.
	Eps    float64
	MinPts int
	// WindowCap bounds the number of viewport reports retained per segment
	// (0 → DefaultWindowCap). Beyond the cap, reservoir sampling (Algorithm
	// R) keeps a uniform sample of the segment's whole report stream, so a
	// burst of late reports cannot evict the long-run distribution.
	WindowCap int
	// Seed drives the reservoir's deterministic RNG: the same report
	// sequence always yields the same windows and therefore the same
	// clusters.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c StreamConfig) Validate() error {
	if c.Eps <= 0 {
		return fmt.Errorf("cluster: non-positive eps %g", c.Eps)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("cluster: minPts %d below 1", c.MinPts)
	}
	if c.WindowCap < 0 {
		return fmt.Errorf("cluster: negative window cap %d", c.WindowCap)
	}
	return nil
}

// StreamStats counts the work a Stream has done.
type StreamStats struct {
	// Reports is the number of viewport reports offered to Add.
	Reports int64
	// Evictions is the number of retained points replaced by reservoir
	// sampling after a window filled.
	Evictions int64
	// Drops is the number of reports the reservoir declined (window full,
	// sample not selected); Evictions + Drops count every post-fill report.
	Drops int64
	// Reclusters is the number of windows actually re-clustered; CacheHits
	// counts Cluster calls answered from a clean window's cached result.
	Reclusters int64
	CacheHits  int64
}

// segmentWindow is the bounded point window for one segment plus its cached
// clustering.
type segmentWindow struct {
	points   []geom.Point
	seen     int64 // reports ever offered to this window
	rng      *stats.RNG
	dirty    bool
	clusters []Cluster
	noise    []int
}

// Stream is the incremental windowed clustering mode: per-segment sliding
// windows of viewport reports, re-clustered lazily and only when dirty, with
// reservoir caps bounding memory per segment.
//
// Concurrency contract: Add and the mutating accessors must not run
// concurrently with each other. Cluster calls on *distinct* segments may run
// concurrently (ptilelive re-clusters dirty windows with parallel.ForEach);
// the shared stats counters are atomic for exactly that reason.
type Stream struct {
	cfg     StreamConfig
	cap     int
	rng     *stats.RNG
	windows map[int]*segmentWindow

	reports    atomic.Int64
	evictions  atomic.Int64
	drops      atomic.Int64
	reclusters atomic.Int64
	cacheHits  atomic.Int64
}

// NewStream returns an empty stream for the given configuration.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capPts := cfg.WindowCap
	if capPts == 0 {
		capPts = DefaultWindowCap
	}
	return &Stream{
		cfg:     cfg,
		cap:     capPts,
		rng:     stats.NewRNG(cfg.Seed),
		windows: make(map[int]*segmentWindow),
	}, nil
}

// Add offers one viewport report for a segment. While the window is below
// its cap the point is retained outright; afterwards Algorithm R keeps each
// of the segment's seen reports in the window with equal probability.
func (s *Stream) Add(segment int, p geom.Point) {
	s.reports.Add(1)
	w := s.windows[segment]
	if w == nil {
		// Forking the per-window RNG off the stream RNG keeps windows
		// decorrelated while the whole stream stays a pure function of
		// (Seed, report sequence).
		w = &segmentWindow{rng: s.rng.Fork()}
		s.windows[segment] = w
	}
	w.seen++
	if len(w.points) < s.cap {
		w.points = append(w.points, p)
		w.dirty = true
		return
	}
	if j := w.rng.Intn(int(w.seen)); j < s.cap {
		w.points[j] = p
		w.dirty = true
		s.evictions.Add(1)
		return
	}
	s.drops.Add(1)
}

// Segments returns every segment with a window, ascending.
func (s *Stream) Segments() []int {
	out := make([]int, 0, len(s.windows))
	for seg := range s.windows {
		out = append(out, seg)
	}
	sort.Ints(out)
	return out
}

// DirtySegments returns the segments whose window changed since it was last
// clustered, ascending.
func (s *Stream) DirtySegments() []int {
	var out []int
	for seg, w := range s.windows {
		if w.dirty {
			out = append(out, seg)
		}
	}
	sort.Ints(out)
	return out
}

// Window returns a copy of the segment's retained points. Cluster results
// obtained without an intervening Add index into exactly this point set.
func (s *Stream) Window(segment int) []geom.Point {
	w := s.windows[segment]
	if w == nil {
		return nil
	}
	out := make([]geom.Point, len(w.points))
	copy(out, w.points)
	return out
}

// Cluster returns the DBSCAN clustering of the segment's window, running the
// grid-indexed pass only if the window is dirty; clean windows answer from
// cache. The bool reports whether the segment has a window at all. Cluster
// member indices refer to the window's point order (see Window).
func (s *Stream) Cluster(segment int) (clusters []Cluster, noise []int, ok bool) {
	w := s.windows[segment]
	if w == nil {
		return nil, nil, false
	}
	if !w.dirty {
		s.cacheHits.Add(1)
		return w.clusters, w.noise, true
	}
	// eps/minPts were validated at construction and the window is non-empty
	// whenever it exists, so DBSCANGrid cannot fail here.
	cl, no, err := DBSCANGrid(w.points, s.cfg.Eps, s.cfg.MinPts)
	if err != nil {
		panic(fmt.Sprintf("cluster: stream window %d: %v", segment, err))
	}
	w.clusters, w.noise, w.dirty = cl, no, false
	s.reclusters.Add(1)
	return w.clusters, w.noise, true
}

// Stats returns a snapshot of the stream's counters.
func (s *Stream) Stats() StreamStats {
	return StreamStats{
		Reports:    s.reports.Load(),
		Evictions:  s.evictions.Load(),
		Drops:      s.drops.Load(),
		Reclusters: s.reclusters.Load(),
		CacheHits:  s.cacheHits.Load(),
	}
}
