package cluster

import (
	"fmt"
	"math"

	"ptile360/internal/geom"
)

// This file is the spatial index behind DBSCANGrid: viewport centers are
// bucketed into a quantized yaw/pitch cell grid whose cell edge is at least
// eps, so every eps-neighbour of a point lies in the 3×3 cell block around
// it (columns wrap at the panorama seam, rows clamp at the poles). A
// neighbour query then scans ≤9 cells instead of the whole point set,
// dropping neighbour-list construction from O(n²) to O(n·k) for windows
// whose points spread over more than a few cells.
//
// Bit-identity with the naive path is a structural property, not a tuning
// outcome: cells only ever over-approximate the candidate set (merged or
// clamped cells add candidates, never hide one), every candidate is
// confirmed with the same geom.Dist(points[i], points[j]) call in the same
// (i, j) argument order the naive double loop used, and the accepted
// neighbours are ordered into the ascending index order the naive loop
// produces. Identical neighbour lists drive the shared dbscanExpand, so the
// clustering is identical bit for bit (FuzzDBSCANGridVsNaive pins this).

// maxGridCells caps the cell grid edge so a tiny eps cannot demand an
// absurd cell count; cells merely become finer than eps requires, which
// keeps candidate sets small without affecting correctness.
const maxGridCells = 1024

// cellIndex is the CSR-layout spatial hash: point indices bucketed by cell,
// all lists sharing one backing array.
type cellIndex struct {
	cols, rows   int
	cellW, cellH float64
	start        []int32 // len cols*rows+1; cell c owns points[start[c]:start[c+1]]
	points       []int32
	cellOf       []int32 // cell of each input point
}

// cellGridFor sizes the cell grid for a neighbour radius eps. The cell edge
// must be ≥ eps so the 3×3 block bounds the neighbourhood; a non-finite or
// NaN eps degenerates to a single cell (every pair becomes a candidate and
// the distance check decides, exactly as the naive loop would).
func cellGridFor(eps float64) (cols, rows int, cellW, cellH float64) {
	cols, rows = 1, 1
	if !math.IsNaN(eps) && !math.IsInf(eps, 0) {
		if c := int(360 / eps); c > 1 {
			cols = min(c, maxGridCells)
		}
		if r := int(180 / eps); r > 1 {
			rows = min(r, maxGridCells)
		}
	}
	return cols, rows, 360 / float64(cols), 180 / float64(rows)
}

// cellAt quantizes a point. X wraps through NormalizeYaw into [0, 360); Y is
// clamped into [0, rows-1] — out-of-panorama pitches share the boundary
// rows, which merges cells (more candidates) but never separates true
// neighbours. Non-finite coordinates land in cell 0; their distance to
// everything is NaN or huge, so the confirm step discards them exactly as
// the naive path does.
func (ix *cellIndex) cellAt(p geom.Point) int32 {
	col, row := 0, 0
	if x := geom.NormalizeYaw(p.X); x >= 0 && x < 360 {
		col = int(x / ix.cellW)
		if col >= ix.cols {
			col = ix.cols - 1
		}
	}
	if y := p.Y; y == y { // not NaN
		switch {
		case y >= 180:
			row = ix.rows - 1
		case y > 0:
			row = int(y / ix.cellH)
			if row >= ix.rows {
				row = ix.rows - 1
			}
		}
	}
	return int32(row*ix.cols + col)
}

// buildCellIndex buckets every point in two passes over the cell array
// (count, then fill), so the whole index is three allocations.
func buildCellIndex(points []geom.Point, eps float64) *cellIndex {
	ix := &cellIndex{}
	ix.cols, ix.rows, ix.cellW, ix.cellH = cellGridFor(eps)
	nCells := ix.cols * ix.rows
	ix.start = make([]int32, nCells+1)
	ix.cellOf = make([]int32, len(points))
	for i, p := range points {
		c := ix.cellAt(p)
		ix.cellOf[i] = c
		ix.start[c+1]++
	}
	for c := 0; c < nCells; c++ {
		ix.start[c+1] += ix.start[c]
	}
	ix.points = make([]int32, len(points))
	fill := make([]int32, nCells)
	copy(fill, ix.start[:nCells])
	for i := range points {
		c := ix.cellOf[i]
		ix.points[fill[c]] = int32(i)
		fill[c]++
	}
	return ix
}

// neighborCells appends the distinct cells of the 3×3 block around cell c to
// dst: rows clamp (the panorama has no vertical wrap), columns wrap modulo
// the grid width. Grids narrower than three columns would visit a column
// twice, so duplicates are skipped.
func (ix *cellIndex) neighborCells(c int32, dst []int32) []int32 {
	row, col := int(c)/ix.cols, int(c)%ix.cols
	dst = dst[:0]
	rLo, rHi := row-1, row+1
	if rLo < 0 {
		rLo = 0
	}
	if rHi >= ix.rows {
		rHi = ix.rows - 1
	}
	for r := rLo; r <= rHi; r++ {
		for dc := -1; dc <= 1; dc++ {
			cc := col + dc
			if cc < 0 {
				cc += ix.cols
			} else if cc >= ix.cols {
				cc -= ix.cols
			}
			cell := int32(r*ix.cols + cc)
			dup := false
			for _, seen := range dst {
				if seen == cell {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, cell)
			}
		}
	}
	return dst
}

// gridNeighborLists builds the per-point eps-neighbour lists through the
// cell index, in the ascending index order the naive double loop produces.
// All lists share one backing array (subslices of a grown backing stay valid
// after reallocation because finished lists are never written again).
//
// Ordering costs no sort: the CSR fill pass visits points in index order, so
// each cell's run of ix.points is already ascending. The confirmed
// neighbours are collected per cell (≤9 ascending sections) and merged with
// one linear ≤9-way merge — O(k) cheap integer compares instead of
// O(k log k) general sorting, which is what keeps the dense-window case from
// drowning the index's saved distance checks.
func gridNeighborLists(points []geom.Point, eps float64) [][]int {
	n := len(points)
	ix := buildCellIndex(points, eps)
	neighbors := make([][]int, n)
	backing := make([]int, 0, n)
	var cells [9]int32
	var cand, merged []int
	var bounds [10]int
	for i := 0; i < n; i++ {
		cand = cand[:0]
		ns := 0
		for _, c := range ix.neighborCells(ix.cellOf[i], cells[:0]) {
			before := len(cand)
			for _, j := range ix.points[ix.start[c]:ix.start[c+1]] {
				if int(j) != i && geom.Dist(points[i], points[int(j)]) <= eps {
					cand = append(cand, int(j))
				}
			}
			if len(cand) > before {
				bounds[ns] = before
				ns++
				bounds[ns] = len(cand)
			}
		}
		out := cand
		if ns > 1 {
			if cap(merged) < len(cand) {
				merged = make([]int, len(cand))
			}
			out = mergeRuns(cand, merged[:len(cand)], bounds[:ns+1])
		}
		start := len(backing)
		backing = append(backing, out...)
		neighbors[i] = backing[start:len(backing):len(backing)]
	}
	return neighbors
}

// mergeRuns merges the adjacent ascending runs a[bounds[0]:bounds[1]],
// a[bounds[1]:bounds[2]], ... into one ascending slice by bottom-up pairwise
// two-way merges (ceil(log2 runs) passes over the data — cheaper than both
// general sorting and a flat k-way head scan). scratch must have len(a);
// the result aliases a or scratch, whichever holds the final pass. bounds is
// overwritten.
func mergeRuns(a, scratch []int, bounds []int) []int {
	src, dst := a, scratch
	for len(bounds) > 2 {
		nb := 1
		for s := 0; s+2 < len(bounds); s += 2 {
			lo, mid, hi := bounds[s], bounds[s+1], bounds[s+2]
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if src[i] <= src[j] {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			copy(dst[k:hi], src[i:mid])
			copy(dst[k+mid-i:hi], src[j:hi])
			bounds[nb] = hi
			nb++
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the trailing run has no partner this pass.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			bounds[nb] = hi
			nb++
		}
		bounds = bounds[:nb]
		src, dst = dst, src
	}
	return src[bounds[0]:bounds[len(bounds)-1]]
}

// DBSCANGrid is DBSCAN with grid-indexed neighbour queries: identical
// output, O(n·k) neighbour construction instead of O(n²). It accepts and
// validates exactly the same parameters.
func DBSCANGrid(points []geom.Point, eps float64, minPts int) (clusters []Cluster, noise []int, err error) {
	if eps <= 0 {
		return nil, nil, fmt.Errorf("cluster: non-positive eps %g", eps)
	}
	if minPts < 1 {
		return nil, nil, fmt.Errorf("cluster: minPts %d below 1", minPts)
	}
	if len(points) == 0 {
		return nil, nil, nil
	}
	clusters, noise = dbscanExpand(gridNeighborLists(points, eps), minPts)
	return clusters, noise, nil
}
