// Package cluster implements the paper's Algorithm 1 — viewing-center
// clustering with bounded cluster size — plus the k-means splitter it relies
// on and a plain density-growth baseline (DBSCAN-style) for the ablation in
// DESIGN.md §5.
//
// Algorithm 1 grows a cluster from the node with the most δ-neighbours via
// BFS over the δ-proximity graph, then splits any cluster whose diameter
// exceeds σ with k-means (k = 2). Distances are wrap-aware panorama
// distances (geom.Dist), so clusters straddling the 0°/360° seam stay
// intact.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

// Cluster is one group of viewing centers; Members holds indices into the
// input point slice.
type Cluster struct {
	Members []int
}

// Params configures Algorithm 1.
type Params struct {
	// Delta (δ) is the neighbour distance: two viewing centers belong to the
	// same cluster when within δ of each other (possibly transitively).
	Delta float64
	// Sigma (σ) caps the cluster diameter: clusters wider than σ are split.
	Sigma float64
}

// DefaultParams returns the paper's empirical setting (Section V-B): σ is
// the width of a conventional tile on a 4×8 grid (45°) and δ = σ/4.
func DefaultParams() Params {
	return Params{Delta: 45.0 / 4, Sigma: 45.0}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Delta <= 0 {
		return fmt.Errorf("cluster: non-positive delta %g", p.Delta)
	}
	if p.Sigma <= 0 {
		return fmt.Errorf("cluster: non-positive sigma %g", p.Sigma)
	}
	if p.Delta > p.Sigma {
		return fmt.Errorf("cluster: delta %g exceeds sigma %g", p.Delta, p.Sigma)
	}
	return nil
}

// Diameter returns the maximum pairwise distance among the cluster's points.
func Diameter(points []geom.Point, members []int) float64 {
	var d float64
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if dd := geom.Dist(points[members[i]], points[members[j]]); dd > d {
				d = dd
			}
		}
	}
	return d
}

// pairDists computes the full n×n wrap-aware distance matrix (row-major),
// evaluating geom.Dist once per unordered pair. Dist is exactly symmetric —
// the wrapped Δx negates bit-for-bit and Hypot is sign-blind — so mirroring
// the upper triangle reproduces the naive both-orders evaluation.
func pairDists(points []geom.Point) []float64 {
	n := len(points)
	dist := make([]float64, n*n)
	for u := 0; u < n; u++ {
		row := dist[u*n:]
		for v := u + 1; v < n; v++ {
			d := geom.Dist(points[u], points[v])
			row[v] = d
			dist[v*n+u] = d
		}
	}
	return dist
}

// neighborLists builds the δ-neighbour adjacency (line 1 of Algorithm 1)
// from a precomputed distance matrix, sharing one backing array across all
// lists. Neighbours come out in ascending index order, matching the naive
// double loop.
func neighborLists(dist []float64, n int, delta float64) [][]int {
	total := 0
	for u := 0; u < n; u++ {
		row := dist[u*n : (u+1)*n]
		for v := 0; v < n; v++ {
			if v != u && row[v] <= delta {
				total++
			}
		}
	}
	backing := make([]int, 0, total)
	neighbors := make([][]int, n)
	for u := 0; u < n; u++ {
		row := dist[u*n : (u+1)*n]
		start := len(backing)
		for v := 0; v < n; v++ {
			if v != u && row[v] <= delta {
				backing = append(backing, v)
			}
		}
		neighbors[u] = backing[start:len(backing):len(backing)]
	}
	return neighbors
}

// diameterFrom is Diameter reading the precomputed matrix.
func diameterFrom(dist []float64, n int, members []int) float64 {
	var d float64
	for i := 0; i < len(members); i++ {
		row := dist[members[i]*n:]
		for j := i + 1; j < len(members); j++ {
			if dd := row[members[j]]; dd > d {
				d = dd
			}
		}
	}
	return d
}

// ViewingCenters runs Algorithm 1 over the given points and returns the
// cluster list Π. Every input point appears in exactly one cluster.
func ViewingCenters(points []geom.Point, p Params) ([]Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, nil
	}

	// Line 1: δ-neighbour sets, from a distance matrix computed once per
	// pair. The matrix also serves the σ diameter checks below.
	n := len(points)
	dist := pairDists(points)
	neighbors := neighborLists(dist, n, p.Delta)

	unclustered := make([]bool, n)
	for i := range unclustered {
		unclustered[i] = true
	}
	remaining := n

	var out []Cluster
	for remaining > 0 {
		members := clusterFunc(neighbors, unclustered, &remaining)
		// Lines 4–9: split oversized clusters with k-means (k = 2). A split
		// half can still exceed σ, so recurse until all parts fit.
		pending := [][]int{members}
		for len(pending) > 0 {
			m := pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			if len(m) > 1 && diameterFrom(dist, n, m) > p.Sigma {
				a, b := kmeans2(points, m)
				if len(a) == 0 || len(b) == 0 {
					// Degenerate split (coincident points): accept as is.
					out = append(out, Cluster{Members: m})
					continue
				}
				pending = append(pending, a, b)
				continue
			}
			out = append(out, Cluster{Members: m})
		}
	}
	// Deterministic order: largest cluster first, ties by first member.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out, nil
}

// clusterFunc is the ClusterFunc of Algorithm 1: BFS growth from the
// unclustered node with the most unclustered δ-neighbours. The seed rule —
// maximum count, ties to the smallest index — is iteration-order
// independent, so the slice scan selects the same seed the map scan did.
func clusterFunc(neighbors [][]int, unclustered []bool, remaining *int) []int {
	// Line 14: seed with the node of maximum |N_u| among unclustered nodes,
	// counting only unclustered neighbours (clustered ones are removed from
	// U by line 24).
	best, bestCount := -1, -1
	for u, open := range unclustered {
		if !open {
			continue
		}
		count := 0
		for _, n := range neighbors[u] {
			if unclustered[n] {
				count++
			}
		}
		if count > bestCount || (count == bestCount && u < best) {
			best, bestCount = u, count
		}
	}

	members := []int{best}
	unclustered[best] = false
	*remaining--
	queue := []int{best}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, n := range neighbors[u] {
			if unclustered[n] {
				unclustered[n] = false
				*remaining--
				members = append(members, n)
				queue = append(queue, n)
			}
		}
	}
	sort.Ints(members)
	return members
}

// kmeans2 splits members into two clusters with Lloyd's algorithm (k = 2),
// seeded by the farthest pair to make the split deterministic. Distances are
// wrap-aware; centroids are computed in an unwrapped frame anchored at the
// first member so seam-straddling clusters split sensibly.
func kmeans2(points []geom.Point, members []int) (a, b []int) {
	if len(members) < 2 {
		return members, nil
	}
	// Unwrap x relative to the first member.
	anchor := points[members[0]]
	type pt struct{ x, y float64 }
	coords := make([]pt, len(members))
	for i, m := range members {
		coords[i] = pt{
			x: anchor.X + geom.WrapDeltaX(anchor.X, points[m].X),
			y: points[m].Y,
		}
	}
	// Seed with the farthest pair.
	var si, sj int
	var maxd float64
	for i := range coords {
		for j := i + 1; j < len(coords); j++ {
			d := math.Hypot(coords[i].x-coords[j].x, coords[i].y-coords[j].y)
			if d > maxd {
				maxd, si, sj = d, i, j
			}
		}
	}
	ca, cb := coords[si], coords[sj]
	assign := make([]int, len(coords))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, c := range coords {
			da := math.Hypot(c.x-ca.x, c.y-ca.y)
			db := math.Hypot(c.x-cb.x, c.y-cb.y)
			want := 0
			if db < da {
				want = 1
			}
			if assign[i] != want {
				assign[i] = want
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		var sa, sb pt
		var na, nb int
		for i, c := range coords {
			if assign[i] == 0 {
				sa.x += c.x
				sa.y += c.y
				na++
			} else {
				sb.x += c.x
				sb.y += c.y
				nb++
			}
		}
		if na > 0 {
			ca = pt{sa.x / float64(na), sa.y / float64(na)}
		}
		if nb > 0 {
			cb = pt{sb.x / float64(nb), sb.y / float64(nb)}
		}
	}
	for i, m := range members {
		if assign[i] == 0 {
			a = append(a, m)
		} else {
			b = append(b, m)
		}
	}
	return a, b
}

// DensityGrow is the unbounded baseline (DBSCAN-flavoured): Algorithm 1
// without the σ split. Used by the clustering ablation to show that
// unbounded clusters grow too large (Fig. 6a).
func DensityGrow(points []geom.Point, delta float64) ([]Cluster, error) {
	p := Params{Delta: delta, Sigma: math.Inf(1)}
	if delta <= 0 {
		return nil, fmt.Errorf("cluster: non-positive delta %g", delta)
	}
	// Bypass Validate's sigma check: infinite sigma is the point here.
	n := len(points)
	neighbors := neighborLists(pairDists(points), n, p.Delta)
	unclustered := make([]bool, n)
	for i := range unclustered {
		unclustered[i] = true
	}
	remaining := n
	var out []Cluster
	for remaining > 0 {
		out = append(out, Cluster{Members: clusterFunc(neighbors, unclustered, &remaining)})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out, nil
}

// KMeans clusters points into k groups with Lloyd's algorithm and
// deterministic k-means++-style seeding driven by the provided seed. It is
// the fixed-cluster-count baseline used by the Ftile scheme.
func KMeans(points []geom.Point, k int, seed int64) ([]Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: non-positive k %d", k)
	}
	if len(points) == 0 {
		return nil, nil
	}
	if k > len(points) {
		k = len(points)
	}
	rng := stats.NewRNG(seed)
	// k-means++ seeding.
	centroids := make([]geom.Point, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))])
	for len(centroids) < k {
		dists := make([]float64, len(points))
		var total float64
		for i, pt := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := geom.Dist(pt, c); dd < d {
					d = dd
				}
			}
			dists[i] = d * d
			total += dists[i]
		}
		if total == 0 {
			centroids = append(centroids, points[rng.Intn(len(points))])
			continue
		}
		r := rng.Float64() * total
		for i, d := range dists {
			r -= d
			if r <= 0 {
				centroids = append(centroids, points[i])
				break
			}
		}
	}

	assign := make([]int, len(points))
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, pt := range points {
			best, bestD := 0, math.Inf(1)
			for j, c := range centroids {
				if d := geom.Dist(pt, c); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids in an unwrapped frame per cluster.
		for j := range centroids {
			var sx, sy float64
			var n int
			var anchor geom.Point
			found := false
			for i, pt := range points {
				if assign[i] != j {
					continue
				}
				if !found {
					anchor = pt
					found = true
				}
				sx += anchor.X + geom.WrapDeltaX(anchor.X, pt.X)
				sy += pt.Y
				n++
			}
			if n > 0 {
				centroids[j] = geom.Point{X: geom.NormalizeYaw(sx / float64(n)), Y: sy / float64(n)}
			}
		}
	}
	byCluster := make(map[int][]int)
	for i, a := range assign {
		byCluster[a] = append(byCluster[a], i)
	}
	out := make([]Cluster, 0, len(byCluster))
	for j := 0; j < k; j++ {
		if ms := byCluster[j]; len(ms) > 0 {
			sort.Ints(ms)
			out = append(out, Cluster{Members: ms})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out, nil
}
