package cluster

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"ptile360/internal/geom"
)

// referenceClusterFunc replicates the pre-matrix clusterFunc: map-based
// unclustered set, O(n²) Dist-per-query adjacency supplied by the caller.
func referenceClusterFunc(neighbors [][]int, unclustered map[int]bool) []int {
	best, bestCount := -1, -1
	for u := range unclustered {
		count := 0
		for _, n := range neighbors[u] {
			if unclustered[n] {
				count++
			}
		}
		if count > bestCount || (count == bestCount && u < best) {
			best, bestCount = u, count
		}
	}
	members := []int{best}
	delete(unclustered, best)
	queue := []int{best}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, n := range neighbors[u] {
			if unclustered[n] {
				delete(unclustered, n)
				members = append(members, n)
				queue = append(queue, n)
			}
		}
	}
	sort.Ints(members)
	return members
}

// referenceViewingCenters replicates the pre-matrix ViewingCenters, calling
// geom.Dist once per ordered pair and using map-based bookkeeping.
func referenceViewingCenters(points []geom.Point, p Params) []Cluster {
	if len(points) == 0 {
		return nil
	}
	neighbors := make([][]int, len(points))
	for u := range points {
		for n := range points {
			if n != u && geom.Dist(points[u], points[n]) <= p.Delta {
				neighbors[u] = append(neighbors[u], n)
			}
		}
	}
	unclustered := make(map[int]bool, len(points))
	for i := range points {
		unclustered[i] = true
	}
	var out []Cluster
	for len(unclustered) > 0 {
		members := referenceClusterFunc(neighbors, unclustered)
		pending := [][]int{members}
		for len(pending) > 0 {
			m := pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			if len(m) > 1 && Diameter(points, m) > p.Sigma {
				a, b := kmeans2(points, m)
				if len(a) == 0 || len(b) == 0 {
					out = append(out, Cluster{Members: m})
					continue
				}
				pending = append(pending, a, b)
				continue
			}
			out = append(out, Cluster{Members: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}

func randomPanoramaPoints(seed uint64, n int) []geom.Point {
	state := seed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		switch i % 4 {
		case 0: // blob near the seam
			pts[i] = geom.Point{X: geom.NormalizeYaw(355 + next()*10), Y: 80 + next()*20}
		case 1: // blob mid-panorama
			pts[i] = geom.Point{X: 100 + next()*15, Y: 60 + next()*15}
		case 2: // near-pole band
			pts[i] = geom.Point{X: next() * 360, Y: next() * 8}
		default: // uniform noise
			pts[i] = geom.Point{X: next() * 360, Y: next() * 180}
		}
	}
	return pts
}

// TestViewingCentersMatrixVsReference pins the distance-matrix/slice
// implementation byte-for-byte against the map-based reference across
// randomized inputs, including σ-splitting and seam-straddling clusters.
func TestViewingCentersMatrixVsReference(t *testing.T) {
	p := DefaultParams()
	for trial := 0; trial < 25; trial++ {
		pts := randomPanoramaPoints(uint64(trial)*77+1, 8+trial*3)
		got, err := ViewingCenters(pts, p)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceViewingCenters(pts, p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: matrix path %+v, reference %+v", trial, got, want)
		}
	}
	// Tight sigma forces deep recursive splitting.
	tight := Params{Delta: 30, Sigma: 30}
	pts := randomPanoramaPoints(999, 60)
	got, err := ViewingCenters(pts, tight)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceViewingCenters(pts, tight); !reflect.DeepEqual(got, want) {
		t.Fatalf("tight sigma: matrix path %+v, reference %+v", got, want)
	}
}

// TestDensityGrowMatrixVsReference does the same for the unbounded baseline.
func TestDensityGrowMatrixVsReference(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		pts := randomPanoramaPoints(uint64(trial)*13+5, 10+trial*5)
		got, err := DensityGrow(pts, 12)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceViewingCenters(pts, Params{Delta: 12, Sigma: math.Inf(1)})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: DensityGrow %+v, reference %+v", trial, got, want)
		}
	}
}

// TestPairDistsSymmetricExact checks the mirrored matrix entry equals the
// direct both-orders evaluation bit-for-bit, the property the single-
// evaluation optimization rests on.
func TestPairDistsSymmetricExact(t *testing.T) {
	pts := randomPanoramaPoints(31337, 80)
	n := len(pts)
	dist := pairDists(pts)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := geom.Dist(pts[u], pts[v])
			if got := dist[u*n+v]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dist[%d][%d] = %v (bits %x), Dist = %v (bits %x)",
					u, v, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}
