package cluster

import (
	"testing"
	"testing/quick"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Sigma != 45 || p.Delta != 45.0/4 {
		t.Fatalf("default params = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{Delta: 0, Sigma: 45},
		{Delta: 10, Sigma: 0},
		{Delta: 50, Sigma: 45},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

// gauss returns n points around (cx, cy) with the given spread.
func gauss(rng *stats.RNG, n int, cx, cy, std float64) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{
			X: geom.NormalizeYaw(cx + rng.Normal(0, std)),
			Y: cy + rng.Normal(0, std),
		}
	}
	return out
}

func TestTwoWellSeparatedClusters(t *testing.T) {
	rng := stats.NewRNG(1)
	pts := append(gauss(rng, 20, 60, 90, 3), gauss(rng, 15, 250, 90, 3)...)
	clusters, err := ViewingCenters(pts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// Largest first.
	if len(clusters[0].Members) != 20 || len(clusters[1].Members) != 15 {
		t.Fatalf("cluster sizes = %d, %d", len(clusters[0].Members), len(clusters[1].Members))
	}
}

func TestSeamStraddlingCluster(t *testing.T) {
	rng := stats.NewRNG(2)
	pts := gauss(rng, 30, 0, 90, 4) // straddles the 0/360 seam
	clusters, err := ViewingCenters(pts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("seam cluster split into %d parts", len(clusters))
	}
}

func TestSigmaSplitsWideCluster(t *testing.T) {
	// A chain of points, each within δ of the next, spanning far more than
	// σ: plain density growth joins them all; Algorithm 1 must split.
	var pts []geom.Point
	for x := 0.0; x <= 120; x += 8 {
		pts = append(pts, geom.Point{X: 100 + x, Y: 90})
	}
	params := DefaultParams()
	clusters, err := ViewingCenters(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) < 2 {
		t.Fatalf("wide chain not split: %d clusters", len(clusters))
	}
	for i, cl := range clusters {
		if d := Diameter(pts, cl.Members); d > params.Sigma {
			t.Fatalf("cluster %d diameter %g exceeds sigma %g", i, d, params.Sigma)
		}
	}
	// The unbounded baseline keeps the chain whole — the Fig. 6a failure mode.
	grown, err := DensityGrow(pts, params.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != 1 {
		t.Fatalf("DensityGrow split the chain into %d clusters", len(grown))
	}
}

func TestEveryPointClusteredExactlyOnce(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := stats.NewRNG(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(20, 160)}
		}
		clusters, err := ViewingCenters(pts, DefaultParams())
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, cl := range clusters {
			for _, m := range cl.Members {
				if seen[m] || m < 0 || m >= n {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: no cluster produced by Algorithm 1 exceeds the σ diameter bound.
func TestSigmaBoundInvariant(t *testing.T) {
	params := DefaultParams()
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := stats.NewRNG(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			// Mixture of two blobs plus noise to exercise splits.
			if rng.Float64() < 0.5 {
				pts[i] = geom.Point{X: geom.NormalizeYaw(80 + rng.Normal(0, 25)), Y: 90 + rng.Normal(0, 15)}
			} else {
				pts[i] = geom.Point{X: geom.NormalizeYaw(140 + rng.Normal(0, 25)), Y: 90 + rng.Normal(0, 15)}
			}
		}
		clusters, err := ViewingCenters(pts, params)
		if err != nil {
			return false
		}
		for _, cl := range clusters {
			if Diameter(pts, cl.Members) > params.Sigma+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestViewingCentersEmpty(t *testing.T) {
	clusters, err := ViewingCenters(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if clusters != nil {
		t.Fatal("want nil clusters for empty input")
	}
}

func TestViewingCentersSinglePoint(t *testing.T) {
	clusters, err := ViewingCenters([]geom.Point{{X: 10, Y: 90}}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0].Members) != 1 {
		t.Fatalf("clusters = %+v", clusters)
	}
}

func TestViewingCentersBadParams(t *testing.T) {
	if _, err := ViewingCenters([]geom.Point{{X: 1, Y: 1}}, Params{Delta: -1, Sigma: 45}); err == nil {
		t.Fatal("want error for bad params")
	}
}

func TestCoincidentPoints(t *testing.T) {
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Point{X: 50, Y: 90}
	}
	clusters, err := ViewingCenters(pts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0].Members) != 10 {
		t.Fatalf("coincident points: %+v", clusters)
	}
}

func TestDiameter(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 90}, {X: 30, Y: 90}, {X: 10, Y: 90}}
	if d := Diameter(pts, []int{0, 1, 2}); d != 30 {
		t.Fatalf("diameter = %g, want 30", d)
	}
	if d := Diameter(pts, []int{0}); d != 0 {
		t.Fatalf("single-point diameter = %g", d)
	}
}

func TestDensityGrowValidation(t *testing.T) {
	if _, err := DensityGrow([]geom.Point{{X: 1, Y: 1}}, 0); err == nil {
		t.Fatal("want error for zero delta")
	}
}

func TestKMeansBasic(t *testing.T) {
	rng := stats.NewRNG(3)
	pts := append(gauss(rng, 25, 60, 80, 4), gauss(rng, 25, 240, 100, 4)...)
	clusters, err := KMeans(pts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("k-means clusters = %d, want 2", len(clusters))
	}
	// Each cluster must be pure: all members from the same blob.
	for _, cl := range clusters {
		firstBlob := cl.Members[0] < 25
		for _, m := range cl.Members {
			if (m < 25) != firstBlob {
				t.Fatalf("mixed cluster: %v", cl.Members)
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 0, 1); err == nil {
		t.Fatal("want error for k=0")
	}
	empty, err := KMeans(nil, 3, 1)
	if err != nil || empty != nil {
		t.Fatalf("empty input: %v, %v", empty, err)
	}
	// k larger than point count clamps.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 200, Y: 90}}
	clusters, err := KMeans(pts, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cl := range clusters {
		total += len(cl.Members)
	}
	if total != 2 {
		t.Fatalf("k-means lost points: %d", total)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := stats.NewRNG(9)
	pts := append(gauss(rng, 20, 100, 90, 10), gauss(rng, 20, 300, 90, 10)...)
	a, err := KMeans(pts, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("k-means not deterministic")
	}
	for i := range a {
		if len(a[i].Members) != len(b[i].Members) {
			t.Fatal("k-means not deterministic")
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				t.Fatal("k-means not deterministic")
			}
		}
	}
}
