package cluster

import (
	"testing"
	"testing/quick"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := stats.NewRNG(1)
	pts := append(gauss(rng, 20, 60, 90, 3), gauss(rng, 20, 250, 90, 3)...)
	clusters, noise, err := DBSCAN(pts, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	if len(noise) != 0 {
		t.Fatalf("unexpected noise points: %v", noise)
	}
	// Purity: no cluster mixes the two blobs.
	for _, cl := range clusters {
		firstBlob := cl.Members[0] < 20
		for _, m := range cl.Members {
			if (m < 20) != firstBlob {
				t.Fatalf("mixed cluster: %v", cl.Members)
			}
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	rng := stats.NewRNG(2)
	pts := gauss(rng, 15, 100, 90, 3)
	// Two isolated outliers.
	pts = append(pts, geom.Point{X: 300, Y: 40}, geom.Point{X: 20, Y: 150})
	clusters, noise, err := DBSCAN(pts, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	if len(noise) != 2 {
		t.Fatalf("noise = %v, want the two outliers", noise)
	}
}

func TestDBSCANChainGrowsUnbounded(t *testing.T) {
	// The Fig. 6a failure mode: a δ-chain spanning far more than σ stays one
	// DBSCAN cluster, unlike Algorithm 1.
	var pts []geom.Point
	for x := 0.0; x <= 120; x += 8 {
		pts = append(pts, geom.Point{X: 100 + x, Y: 90})
		pts = append(pts, geom.Point{X: 100 + x, Y: 94})
		pts = append(pts, geom.Point{X: 100 + x + 4, Y: 92})
	}
	clusters, _, err := DBSCAN(pts, 11.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("chain split into %d DBSCAN clusters", len(clusters))
	}
	if d := Diameter(pts, clusters[0].Members); d <= 45 {
		t.Fatalf("chain diameter %g should exceed sigma", d)
	}
}

func TestDBSCANValidation(t *testing.T) {
	if _, _, err := DBSCAN([]geom.Point{{X: 1, Y: 1}}, 0, 4); err == nil {
		t.Fatal("want error for zero eps")
	}
	if _, _, err := DBSCAN([]geom.Point{{X: 1, Y: 1}}, 10, 0); err == nil {
		t.Fatal("want error for zero minPts")
	}
	clusters, noise, err := DBSCAN(nil, 10, 4)
	if err != nil || clusters != nil || noise != nil {
		t.Fatalf("empty input: %v %v %v", clusters, noise, err)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 90}, {X: 120, Y: 90}, {X: 240, Y: 90}}
	clusters, noise, err := DBSCAN(pts, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 || len(noise) != 3 {
		t.Fatalf("want all noise, got %d clusters, %d noise", len(clusters), len(noise))
	}
}

// Property: DBSCAN partitions the input — every point is in exactly one
// cluster or in the noise set.
func TestDBSCANPartition(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := stats.NewRNG(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(20, 160)}
		}
		clusters, noise, err := DBSCAN(pts, 15, 3)
		if err != nil {
			return false
		}
		seen := make(map[int]int)
		for _, cl := range clusters {
			if len(cl.Members) == 0 {
				return false
			}
			for _, m := range cl.Members {
				seen[m]++
			}
		}
		for _, m := range noise {
			seen[m]++
		}
		if len(seen) != n {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every DBSCAN cluster contains at least one core point and hence
// at least minPts members (with the point itself counted).
func TestDBSCANMinClusterSize(t *testing.T) {
	check := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		pts := make([]geom.Point, 30)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(30, 150)}
		}
		minPts := 3
		clusters, _, err := DBSCAN(pts, 20, minPts)
		if err != nil {
			return false
		}
		for _, cl := range clusters {
			if len(cl.Members) < minPts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
