package cluster

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

// requireIdentical asserts the grid-indexed path reproduces the naive path
// exactly: same error disposition, same clusters (members in the same
// order), same noise list.
func requireIdentical(t *testing.T, points []geom.Point, eps float64, minPts int) {
	t.Helper()
	wantC, wantN, wantErr := DBSCAN(points, eps, minPts)
	gotC, gotN, gotErr := DBSCANGrid(points, eps, minPts)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("eps=%g minPts=%d: error mismatch: naive %v, grid %v", eps, minPts, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("eps=%g minPts=%d n=%d: clusters differ:\nnaive %v\ngrid  %v",
			eps, minPts, len(points), wantC, gotC)
	}
	if !reflect.DeepEqual(gotN, wantN) {
		t.Fatalf("eps=%g minPts=%d n=%d: noise differs:\nnaive %v\ngrid  %v",
			eps, minPts, len(points), wantN, gotN)
	}
}

// TestDBSCANGridEdgeCases is the table of degenerate and wraparound inputs
// the grid index must not get wrong: empty input, everything-noise
// (minPts > n), rejected eps values, exact duplicates, pole pile-ups, and
// neighbourhoods straddling the 0°/360° seam. Every case is asserted
// identical between the naive and grid-indexed paths, and the cases with a
// known answer also pin that answer.
func TestDBSCANGridEdgeCases(t *testing.T) {
	seam := []geom.Point{
		{X: 359.5, Y: 90}, {X: 0.5, Y: 90}, {X: 1.5, Y: 90}, // one chain across the seam
		{X: 180, Y: 90}, // far away
	}
	dup := []geom.Point{
		{X: 10, Y: 10}, {X: 10, Y: 10}, {X: 10, Y: 10}, {X: 300, Y: 170},
	}
	poles := []geom.Point{
		{X: 10, Y: 0.2}, {X: 120, Y: 0.1}, {X: 250, Y: 0.3}, // same pitch, spread yaw: far apart in panorama metric
		{X: 42, Y: 179.9}, {X: 43, Y: 179.8},
	}
	cases := []struct {
		name   string
		points []geom.Point
		eps    float64
		minPts int
		// wantClusters < 0 skips the shape assertion (identity still checked).
		wantClusters, wantNoise int
		wantErr                 bool
	}{
		{name: "empty", points: nil, eps: 5, minPts: 2, wantClusters: 0, wantNoise: 0},
		{name: "all-noise-minPts-exceeds-n", points: dup[:3], eps: 5, minPts: 4, wantClusters: 0, wantNoise: 3},
		{name: "eps-zero-rejected", points: dup, eps: 0, minPts: 2, wantErr: true},
		{name: "eps-negative-rejected", points: dup, eps: -3, minPts: 2, wantErr: true},
		{name: "minPts-zero-rejected", points: dup, eps: 5, minPts: 0, wantErr: true},
		{name: "duplicate-points", points: dup, eps: 1, minPts: 3, wantClusters: 1, wantNoise: 1},
		{name: "seam-chain", points: seam, eps: 1.2, minPts: 2, wantClusters: 1, wantNoise: 1},
		{name: "pole-neighborhood", points: poles, eps: 2, minPts: 2, wantClusters: 1, wantNoise: 3},
		{name: "eps-larger-than-panorama", points: poles, eps: 500, minPts: 2, wantClusters: 1, wantNoise: 0},
		{name: "eps-below-cell-floor", points: seam[:3], eps: 1e-6, minPts: 1, wantClusters: 3, wantNoise: 0},
		{name: "single-point-minPts-1", points: dup[:1], eps: 5, minPts: 1, wantClusters: 1, wantNoise: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireIdentical(t, tc.points, tc.eps, tc.minPts)
			clusters, noise, err := DBSCANGrid(tc.points, tc.eps, tc.minPts)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected an error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(clusters) != tc.wantClusters || len(noise) != tc.wantNoise {
				t.Fatalf("got %d clusters / %d noise, want %d / %d (clusters %v noise %v)",
					len(clusters), len(noise), tc.wantClusters, tc.wantNoise, clusters, noise)
			}
		})
	}
}

// TestDBSCANGridMatchesNaiveRandom sweeps seeded random point clouds across
// eps/minPts regimes — dense blobs, sparse noise, seam- and pole-hugging
// distributions — and asserts bit-identical output.
func TestDBSCANGridMatchesNaiveRandom(t *testing.T) {
	type regime struct {
		name string
		gen  func(rng *stats.RNG, n int) []geom.Point
	}
	regimes := []regime{
		{"uniform", func(rng *stats.RNG, n int) []geom.Point {
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(0, 180)}
			}
			return pts
		}},
		{"blobs", func(rng *stats.RNG, n int) []geom.Point {
			centers := []geom.Point{{X: 5, Y: 90}, {X: 355, Y: 88}, {X: 180, Y: 30}, {X: 90, Y: 170}}
			pts := make([]geom.Point, n)
			for i := range pts {
				c := centers[rng.Intn(len(centers))]
				pts[i] = geom.Point{
					X: geom.NormalizeYaw(c.X + rng.Normal(0, 4)),
					Y: math.Min(180, math.Max(0, c.Y+rng.Normal(0, 4))),
				}
			}
			return pts
		}},
		{"seam-band", func(rng *stats.RNG, n int) []geom.Point {
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: geom.NormalizeYaw(rng.Uniform(-6, 6)), Y: rng.Uniform(80, 100)}
			}
			return pts
		}},
		{"poles", func(rng *stats.RNG, n int) []geom.Point {
			pts := make([]geom.Point, n)
			for i := range pts {
				y := rng.Uniform(0, 3)
				if rng.Intn(2) == 0 {
					y = 180 - y
				}
				pts[i] = geom.Point{X: rng.Uniform(0, 360), Y: y}
			}
			return pts
		}},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			rng := stats.NewRNG(7)
			for _, n := range []int{1, 2, 17, 120, 400} {
				pts := rg.gen(rng, n)
				for _, eps := range []float64{0.5, 11.25, 45, 200} {
					for _, minPts := range []int{1, 2, 5, n + 1} {
						requireIdentical(t, pts, eps, minPts)
					}
				}
			}
		})
	}
}

// FuzzDBSCANGridVsNaive is the differential fuzz target pinning the grid
// index to the naive O(n²) reference: arbitrary byte strings decode into a
// point set (including out-of-range and non-finite coordinates), an eps and
// a minPts, and both paths must agree exactly.
func FuzzDBSCANGridVsNaive(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0xc0, 0x01, 0x3f, 0xfe})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		// Header: eps selector and minPts; remainder decodes to points.
		epsChoices := []float64{0.25, 1, 11.25, 45, 179, 500, math.Inf(1), math.NaN()}
		eps := epsChoices[int(data[0])%len(epsChoices)]
		minPts := int(data[1])%8 + 1
		body := data[2:]
		var pts []geom.Point
		for len(body) >= 4 && len(pts) < 256 {
			// Two fixed-point coordinates per point; every fourth point gets
			// pushed out of the canonical ranges to probe the clamping paths.
			u := binary.LittleEndian.Uint16(body)
			v := binary.LittleEndian.Uint16(body[2:])
			p := geom.Point{
				X: float64(u) * 360 / 65536,
				Y: float64(v) * 180 / 65536,
			}
			switch len(pts) % 8 {
			case 3:
				p.X -= 720
			case 5:
				p.Y = -p.Y
			case 7:
				p.Y += 180
			}
			pts = append(pts, p)
			body = body[4:]
		}
		wantC, wantN, wantErr := DBSCAN(pts, eps, minPts)
		gotC, gotN, gotErr := DBSCANGrid(pts, eps, minPts)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: naive %v, grid %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !reflect.DeepEqual(gotC, wantC) {
			t.Fatalf("clusters differ (eps=%g minPts=%d, %d points):\nnaive %v\ngrid  %v",
				eps, minPts, len(pts), wantC, gotC)
		}
		if !reflect.DeepEqual(gotN, wantN) {
			t.Fatalf("noise differs (eps=%g minPts=%d, %d points):\nnaive %v\ngrid  %v",
				eps, minPts, len(pts), wantN, gotN)
		}
	})
}
