package cluster

import (
	"fmt"
	"sort"

	"ptile360/internal/geom"
)

// DBSCAN implements the density-based clustering the paper cites as the
// natural non-parametric alternative to Algorithm 1 (Schubert et al., ACM
// TODS 2017 [22]): points with at least minPts neighbours within eps are
// core points; clusters are the density-connected components of core
// points plus their border points. Points in no cluster are noise.
//
// The paper rejects plain DBSCAN because its clusters can grow arbitrarily
// large (the Fig. 6a problem); it is provided here as the comparison
// baseline for the clustering ablation.
func DBSCAN(points []geom.Point, eps float64, minPts int) (clusters []Cluster, noise []int, err error) {
	if eps <= 0 {
		return nil, nil, fmt.Errorf("cluster: non-positive eps %g", eps)
	}
	if minPts < 1 {
		return nil, nil, fmt.Errorf("cluster: minPts %d below 1", minPts)
	}
	n := len(points)
	if n == 0 {
		return nil, nil, nil
	}

	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && geom.Dist(points[i], points[j]) <= eps {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}
	clusters, noise = dbscanExpand(neighbors, minPts)
	return clusters, noise, nil
}

// dbscanExpand is the label-propagation phase of DBSCAN, shared by the naive
// and grid-indexed paths: given per-point neighbour lists (ascending index
// order — BFS order, and with it the final labelling, depends on it), mark
// core points and grow the density-connected components. The output is a
// pure function of the neighbour lists, which is what makes DBSCANGrid
// bit-identical to DBSCAN: identical lists in, identical clusters out.
func dbscanExpand(neighbors [][]int, minPts int) (clusters []Cluster, noise []int) {
	n := len(neighbors)
	// Core points have ≥ minPts neighbours (standard DBSCAN counts the point
	// itself; we follow the original formulation: |N_eps(p)| ≥ minPts with p
	// included).
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		if len(neighbors[i])+1 >= minPts {
			core[i] = true
		}
	}

	const (
		unvisited = -1
		noiseMark = -2
	)
	label := make([]int, n)
	for i := range label {
		label[i] = unvisited
	}
	clusterID := 0
	for i := 0; i < n; i++ {
		if label[i] != unvisited || !core[i] {
			continue
		}
		// Expand a new cluster from core point i.
		label[i] = clusterID
		queue := []int{i}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, q := range neighbors[p] {
				if label[q] == noiseMark {
					// Border point previously misjudged as noise.
					label[q] = clusterID
				}
				if label[q] != unvisited {
					continue
				}
				label[q] = clusterID
				if core[q] {
					queue = append(queue, q)
				}
			}
		}
		clusterID++
	}
	for i := 0; i < n; i++ {
		if label[i] == unvisited {
			label[i] = noiseMark
		}
	}

	byID := make(map[int][]int)
	for i, l := range label {
		if l == noiseMark {
			noise = append(noise, i)
			continue
		}
		byID[l] = append(byID[l], i)
	}
	clusters = make([]Cluster, 0, len(byID))
	for id := 0; id < clusterID; id++ {
		ms := byID[id]
		sort.Ints(ms)
		clusters = append(clusters, Cluster{Members: ms})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Members) != len(clusters[j].Members) {
			return len(clusters[i].Members) > len(clusters[j].Members)
		}
		return clusters[i].Members[0] < clusters[j].Members[0]
	})
	sort.Ints(noise)
	return clusters, noise
}
