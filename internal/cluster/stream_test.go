package cluster

import (
	"reflect"
	"sync"
	"testing"

	"ptile360/internal/geom"
	"ptile360/internal/stats"
)

func TestStreamConfigValidate(t *testing.T) {
	good := StreamConfig{Eps: 11.25, MinPts: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []StreamConfig{
		{Eps: 0, MinPts: 2},
		{Eps: -1, MinPts: 2},
		{Eps: 5, MinPts: 0},
		{Eps: 5, MinPts: 2, WindowCap: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v should be rejected", bad)
		}
		if _, err := NewStream(bad); err == nil {
			t.Fatalf("NewStream(%+v) should fail", bad)
		}
	}
}

// TestStreamMatchesBatch: below the cap, clustering a stream window must be
// identical to clustering the same points in one batch call.
func TestStreamMatchesBatch(t *testing.T) {
	s, err := NewStream(StreamConfig{Eps: 11.25, MinPts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	perSeg := map[int][]geom.Point{}
	for i := 0; i < 300; i++ {
		seg := rng.Intn(4)
		p := geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(0, 180)}
		s.Add(seg, p)
		perSeg[seg] = append(perSeg[seg], p)
	}
	if got := s.Segments(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Segments() = %v", got)
	}
	for seg, pts := range perSeg {
		wantC, wantN, err := DBSCAN(pts, 11.25, 2)
		if err != nil {
			t.Fatal(err)
		}
		gotC, gotN, ok := s.Cluster(seg)
		if !ok {
			t.Fatalf("segment %d missing", seg)
		}
		if !reflect.DeepEqual(gotC, wantC) || !reflect.DeepEqual(gotN, wantN) {
			t.Fatalf("segment %d: stream clustering differs from batch", seg)
		}
		if win := s.Window(seg); !reflect.DeepEqual(win, pts) {
			t.Fatalf("segment %d: window differs from inserted points", seg)
		}
	}
	if _, _, ok := s.Cluster(99); ok {
		t.Fatal("unknown segment should report ok=false")
	}
}

// TestStreamDirtyTracking: Cluster re-runs only after an Add dirtied the
// window, and answers from cache otherwise.
func TestStreamDirtyTracking(t *testing.T) {
	s, err := NewStream(StreamConfig{Eps: 5, MinPts: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(0, geom.Point{X: 10, Y: 90})
	s.Add(1, geom.Point{X: 20, Y: 90})
	if got := s.DirtySegments(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("DirtySegments() = %v", got)
	}
	s.Cluster(0)
	if got := s.DirtySegments(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("after clustering 0, DirtySegments() = %v", got)
	}
	s.Cluster(0) // cache hit
	s.Cluster(1)
	st := s.Stats()
	if st.Reclusters != 2 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 2 reclusters / 1 cache hit", st)
	}
	s.Add(0, geom.Point{X: 11, Y: 90})
	if got := s.DirtySegments(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("after re-add, DirtySegments() = %v", got)
	}
	cl, _, _ := s.Cluster(0)
	if len(cl) != 1 || len(cl[0].Members) != 2 {
		t.Fatalf("recluster after add: %v", cl)
	}
}

// TestStreamReservoirCap: the window never exceeds its cap, the counters
// account for every report, and the reservoir keeps a mix of early and late
// reports rather than degenerating to pure FIFO or pure freeze.
func TestStreamReservoirCap(t *testing.T) {
	const capPts, total = 64, 10000
	s, err := NewStream(StreamConfig{Eps: 5, MinPts: 2, WindowCap: capPts, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		// Encode arrival order into X so retained points reveal their epoch.
		s.Add(7, geom.Point{X: float64(i%3600) / 10, Y: float64(i) / total * 180})
	}
	win := s.Window(7)
	if len(win) != capPts {
		t.Fatalf("window len %d, want cap %d", len(win), capPts)
	}
	st := s.Stats()
	if st.Reports != total {
		t.Fatalf("Reports = %d, want %d", st.Reports, total)
	}
	if got := st.Evictions + st.Drops; got != total-capPts {
		t.Fatalf("Evictions+Drops = %d, want %d", got, total-capPts)
	}
	if st.Evictions == 0 || st.Drops == 0 {
		t.Fatalf("reservoir should both evict and drop at n>>cap: %+v", st)
	}
	var early, late int
	for _, p := range win {
		// Y encodes arrival epoch (0→180 over the run).
		if p.Y < 90 {
			early++
		} else {
			late++
		}
	}
	if early == 0 || late == 0 {
		t.Fatalf("reservoir lost an epoch entirely: early=%d late=%d", early, late)
	}
}

// TestStreamDeterminism: identical seeds and report sequences yield
// bit-identical windows and clusterings; a different seed diverges once the
// reservoir starts sampling.
func TestStreamDeterminism(t *testing.T) {
	feed := func(seed int64) (*Stream, []geom.Point) {
		s, err := NewStream(StreamConfig{Eps: 20, MinPts: 2, WindowCap: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(5)
		for i := 0; i < 500; i++ {
			s.Add(0, geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(0, 180)})
		}
		return s, s.Window(0)
	}
	a, winA := feed(42)
	b, winB := feed(42)
	if !reflect.DeepEqual(winA, winB) {
		t.Fatal("same seed, same reports: windows differ")
	}
	ca, na, _ := a.Cluster(0)
	cb, nb, _ := b.Cluster(0)
	if !reflect.DeepEqual(ca, cb) || !reflect.DeepEqual(na, nb) {
		t.Fatal("same seed, same reports: clusterings differ")
	}
	_, winC := feed(43)
	if reflect.DeepEqual(winA, winC) {
		t.Fatal("different seeds should sample different reservoirs")
	}
}

// TestStreamConcurrentCluster: Cluster on distinct segments may run
// concurrently (the ptilelive rebuild pattern); run with -race.
func TestStreamConcurrentCluster(t *testing.T) {
	s, err := NewStream(StreamConfig{Eps: 15, MinPts: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(8)
	const segs = 16
	for i := 0; i < 2000; i++ {
		s.Add(i%segs, geom.Point{X: rng.Uniform(0, 360), Y: rng.Uniform(0, 180)})
	}
	var wg sync.WaitGroup
	for seg := 0; seg < segs; seg++ {
		wg.Add(1)
		go func(seg int) {
			defer wg.Done()
			if _, _, ok := s.Cluster(seg); !ok {
				t.Errorf("segment %d missing", seg)
			}
		}(seg)
	}
	wg.Wait()
	if st := s.Stats(); st.Reclusters != segs {
		t.Fatalf("Reclusters = %d, want %d", st.Reclusters, segs)
	}
}
