// Package experiments contains one harness per table and figure of the
// paper's evaluation (Section V), regenerating the same rows and series from
// the synthetic substrates. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers.
package experiments

import (
	"fmt"

	"ptile360/internal/headtrace"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// Scale sets the workload size of the trace-driven experiments.
type Scale struct {
	// UsersPerVideo is the number of generated viewers per video (48 in the
	// dataset).
	UsersPerVideo int
	// TrainUsers of them construct Ptiles (40 in the paper); the rest are
	// evaluated.
	TrainUsers int
	// EvalUsers caps how many evaluation users are streamed per video.
	EvalUsers int
	// Videos lists the Table III video IDs to include.
	Videos []int
	// TraceSamples is the LTE trace length in seconds.
	TraceSamples int
	// Seed drives every stochastic component.
	Seed int64
}

// FullScale returns the paper's evaluation scale: 48 users per video with a
// 40/8 split over all eight videos.
func FullScale() Scale {
	return Scale{
		UsersPerVideo: 48,
		TrainUsers:    40,
		EvalUsers:     8,
		Videos:        []int{1, 2, 3, 4, 5, 6, 7, 8},
		TraceSamples:  400,
		Seed:          42,
	}
}

// QuickScale returns a reduced workload for tests and smoke runs.
func QuickScale() Scale {
	return Scale{
		UsersPerVideo: 16,
		TrainUsers:    12,
		EvalUsers:     3,
		Videos:        []int{2, 8},
		TraceSamples:  300,
		Seed:          42,
	}
}

// Validate reports whether the scale is usable.
func (s Scale) Validate() error {
	if s.UsersPerVideo <= 1 {
		return fmt.Errorf("experiments: users per video %d too small", s.UsersPerVideo)
	}
	if s.TrainUsers <= 0 || s.TrainUsers >= s.UsersPerVideo {
		return fmt.Errorf("experiments: train users %d outside (0, %d)", s.TrainUsers, s.UsersPerVideo)
	}
	if s.EvalUsers <= 0 || s.EvalUsers > s.UsersPerVideo-s.TrainUsers {
		return fmt.Errorf("experiments: eval users %d outside (0, %d]", s.EvalUsers, s.UsersPerVideo-s.TrainUsers)
	}
	if len(s.Videos) == 0 {
		return fmt.Errorf("experiments: no videos selected")
	}
	for _, id := range s.Videos {
		if _, err := video.ProfileByID(id); err != nil {
			return err
		}
	}
	if s.TraceSamples <= 0 {
		return fmt.Errorf("experiments: non-positive trace length %d", s.TraceSamples)
	}
	return nil
}

// Table is a generic printable experiment output: a title, column headers
// and rows, rendered by cmd/repro.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// videoSetup bundles the per-video artifacts the trace-driven experiments
// share: traces, the train/eval split, and the server catalogue. Setups are
// memoized and shared across figures (see setupcache.go), so all fields are
// read-only after construction.
type videoSetup struct {
	profile video.Profile
	train   []*headtrace.Trace
	eval    []*headtrace.Trace
	catalog *sim.Catalog
}

// buildVideoSetup generates and splits the head-movement dataset for one
// video and builds its catalogue. Callers go through the memoizing
// setupVideo (setupcache.go) instead of calling this directly.
func buildVideoSetup(id int, scale Scale) (*videoSetup, error) {
	p, err := video.ProfileByID(id)
	if err != nil {
		return nil, err
	}
	ds, err := datasetFor(p, scale.UsersPerVideo, scale.Seed)
	if err != nil {
		return nil, err
	}
	train, eval, err := ds.SplitTrainEval(scale.TrainUsers, scale.Seed+1)
	if err != nil {
		return nil, err
	}
	if len(eval) > scale.EvalUsers {
		eval = eval[:scale.EvalUsers]
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return nil, err
	}
	ccfg.Seed = scale.Seed
	ccfg.Workers = maxWorkers()
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return nil, err
	}
	return &videoSetup{profile: p, train: train, eval: eval, catalog: cat}, nil
}
