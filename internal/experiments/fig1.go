package experiments

import (
	"fmt"
	"strings"

	"ptile360/internal/geom"
	"ptile360/internal/ptile"
)

// Fig1Result is an ASCII rendering of one segment's panorama: the 4×8 tile
// grid, the training users' viewing centers, and the constructed Ptile(s) —
// the illustration of the paper's Fig. 1.
type Fig1Result struct {
	// VideoID and Segment locate the rendered snapshot.
	VideoID, Segment int
	// Lines is the character rendering, top row first.
	Lines []string
	// Ptiles are the rendered Ptile rectangles.
	Ptiles []geom.Rect
	// Users is the number of viewing centers drawn.
	Users int
}

// Fig1 renders the viewing centers and Ptiles of one segment of the given
// video as ASCII art: '·' panorama, '•' a viewing center, '#' Ptile
// interior, '@' a viewing center inside a Ptile. Tile boundaries are drawn
// every 45°.
func Fig1(videoID, segment int, scale Scale) (*Fig1Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	setup, err := setupVideo(videoID, scale)
	if err != nil {
		return nil, err
	}
	if segment < 0 || segment >= len(setup.catalog.Ptiles) {
		return nil, fmt.Errorf("experiments: segment %d outside [0, %d)", segment, len(setup.catalog.Ptiles))
	}

	const (
		cols = 72 // 5° per column
		rows = 18 // 10° per row
	)
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
	}
	set := func(x, y float64, ch byte) {
		c := int(geom.NormalizeYaw(x) / 360 * cols)
		r := int(y / 180 * rows)
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		if r < 0 {
			r = 0
		}
		grid[r][c] = ch
	}
	inAnyPtile := func(p geom.Point, ptiles []ptile.Ptile) bool {
		for _, pt := range ptiles {
			if pt.Rect.Contains(p) {
				return true
			}
		}
		return false
	}

	ptiles := setup.catalog.Ptiles[segment]
	// Paint backgrounds: '.' panorama, '#' Ptile interiors.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := geom.Point{X: (float64(c) + 0.5) / cols * 360, Y: (float64(r) + 0.5) / rows * 180}
			if inAnyPtile(p, ptiles) {
				grid[r][c] = '#'
			} else {
				grid[r][c] = '.'
			}
		}
	}
	// Overlay viewing centers.
	users := 0
	for _, tr := range setup.train {
		center, err := tr.ViewingCenter(segment, setup.catalog.SegmentSec)
		if err != nil {
			continue
		}
		users++
		ch := byte('o')
		if inAnyPtile(center, ptiles) {
			ch = '@'
		}
		set(center.X, center.Y, ch)
	}

	res := &Fig1Result{VideoID: videoID, Segment: segment, Users: users}
	for _, pt := range ptiles {
		res.Ptiles = append(res.Ptiles, pt.Rect)
	}
	for r := 0; r < rows; r++ {
		var sb strings.Builder
		for c := 0; c < cols; c++ {
			sb.WriteByte(grid[r][c])
			// Tile-column boundary every 45° (9 columns of 5°).
			if (c+1)%9 == 0 && c != cols-1 {
				sb.WriteByte('|')
			}
		}
		res.Lines = append(res.Lines, sb.String())
		// Tile-row boundary every 45° (4.5 rows of 10°) — draw after rows
		// 4, 8 and 13 to approximate the 4-row grid.
		if r == 4 || r == 8 || r == 13 {
			res.Lines = append(res.Lines, strings.Repeat("-", cols+7))
		}
	}
	return res, nil
}

// Render formats the snapshot as a single-column table (one row per line).
func (r *Fig1Result) Render() Table {
	t := Table{
		Title: fmt.Sprintf("Fig. 1: video %d segment %d — %d viewing centers ('@' inside a Ptile), %d Ptile(s)",
			r.VideoID, r.Segment, r.Users, len(r.Ptiles)),
		Columns: []string{"panorama (360° × 180°, 45° tile boundaries)"},
	}
	for _, line := range r.Lines {
		t.Rows = append(t.Rows, []string{line})
	}
	for i, rect := range r.Ptiles {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("Ptile %d: %gx%g at (%g, %g)", i+1, rect.W, rect.H, rect.X0, rect.Y0)})
	}
	return t
}
