package experiments

import (
	"fmt"
	"sort"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/parallel"
	"ptile360/internal/power"
	"ptile360/internal/sim"
)

// Cell identifies one evaluation cell: a scheme streaming one video over one
// network trace.
type Cell struct {
	Scheme  sim.Scheme
	VideoID int
	// TraceID is 1 or 2 (the paper's two network conditions).
	TraceID int
}

// CellResult aggregates the per-user session results of one cell.
type CellResult struct {
	Cell
	// EnergyPerSegment is the mean Eq. 1 energy per segment in mJ.
	EnergyPerSegment float64
	// Energy breaks the per-segment energy into Tx/Decode/Render.
	Energy sim.EnergyBreakdown
	// QoE is the mean Eq. 2 session QoE.
	QoE float64
	// Q0, Variation, Rebuffer are the Fig. 11d metric means.
	Q0, Variation, Rebuffer float64
	// Stalls is the mean stall count per session.
	Stalls float64
	// MeanQuality and MeanFrameRate are the average chosen versions.
	MeanQuality, MeanFrameRate float64
	// Users is the number of evaluation sessions aggregated.
	Users int
}

// Comparison is the full Figs. 9–11 evaluation for one phone.
type Comparison struct {
	Phone power.Phone
	Cells []CellResult
}

// RunComparison streams every (scheme, video, trace, user) combination at
// the given scale on the given phone. Per-video setups are memoized and
// built concurrently (setupcache.go); the individual sessions then run on a
// bounded worker pool with one job per (cell, user). Results are
// deterministic regardless of worker count and scheduling: each session is a
// pure function of its inputs, and per-cell aggregation always sums users in
// evaluation order.
func RunComparison(phone power.Phone, scale Scale) (*Comparison, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	trace1, trace2, err := standardTraces(scale)
	if err != nil {
		return nil, err
	}
	traces := [2]*lte.Trace{trace1, trace2}
	workers := maxWorkers()

	// Build (or fetch from cache) every video setup up front; distinct
	// videos build concurrently, and concurrent figures requesting the same
	// video share one build through the cache's singleflight.
	setups := make([]*videoSetup, len(scale.Videos))
	if err := parallel.ForEach(len(scale.Videos), workers, func(i int) error {
		s, err := setupVideo(scale.Videos[i], scale)
		if err != nil {
			return err
		}
		setups[i] = s
		return nil
	}); err != nil {
		return nil, err
	}

	// One session job per (cell, user), flattened so a single bounded pool
	// saturates the machine even when cells have few users each.
	type cellJob struct {
		cell  Cell
		setup *videoSetup
		net   *lte.Trace
		cfg   sim.Config
		// userStart indexes this cell's first session in the flat results.
		userStart int
	}
	type sessionJob struct {
		cellIdx int
		user    *headtrace.Trace
	}
	var cells []cellJob
	var sessions []sessionJob
	for vi, id := range scale.Videos {
		setup := setups[vi]
		for traceID := 1; traceID <= 2; traceID++ {
			for _, scheme := range sim.Schemes() {
				cfg, err := sim.DefaultConfig(scheme, phone)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cellJob{
					cell:      Cell{Scheme: scheme, VideoID: id, TraceID: traceID},
					setup:     setup,
					net:       traces[traceID-1],
					cfg:       cfg,
					userStart: len(sessions),
				})
				for _, user := range setup.eval {
					sessions = append(sessions, sessionJob{cellIdx: len(cells) - 1, user: user})
				}
			}
		}
	}

	sessionResults := make([]*sim.Result, len(sessions))
	if err := parallel.ForEach(len(sessions), workers, func(i int) error {
		job := sessions[i]
		c := cells[job.cellIdx]
		r, err := sim.Run(c.setup.catalog, job.user, c.net, c.cfg)
		if err != nil {
			return fmt.Errorf("experiments: %v video %d trace %d user %d: %w",
				c.cell.Scheme, c.cell.VideoID, c.cell.TraceID, job.user.UserID, err)
		}
		sessionResults[i] = r
		return nil
	}); err != nil {
		return nil, err
	}

	results := make([]CellResult, len(cells))
	for ci, c := range cells {
		results[ci] = aggregateCell(c.cell, sessionResults[c.userStart:c.userStart+len(c.setup.eval)])
	}

	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.VideoID != b.VideoID {
			return a.VideoID < b.VideoID
		}
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		return a.Scheme < b.Scheme
	})
	return &Comparison{Phone: phone, Cells: results}, nil
}

// aggregateCell folds the per-user session results of one cell into its
// means, summing in user order so the floating-point result is independent
// of how the sessions were scheduled.
func aggregateCell(cell Cell, userResults []*sim.Result) CellResult {
	out := CellResult{Cell: cell}
	for _, r := range userResults {
		segs := float64(r.Segments)
		out.EnergyPerSegment += r.Energy.Total() / segs
		out.Energy.Tx += r.Energy.Tx / segs
		out.Energy.Decode += r.Energy.Decode / segs
		out.Energy.Render += r.Energy.Render / segs
		out.QoE += r.QoE.MeanQ
		out.Q0 += r.QoE.MeanQ0
		out.Variation += r.QoE.MeanVariation
		out.Rebuffer += r.QoE.MeanRebuffer
		out.Stalls += float64(r.QoE.Stalls)
		out.MeanQuality += r.MeanQuality
		out.MeanFrameRate += r.MeanFrameRate
		out.Users++
	}
	n := float64(out.Users)
	out.EnergyPerSegment /= n
	out.Energy.Tx /= n
	out.Energy.Decode /= n
	out.Energy.Render /= n
	out.QoE /= n
	out.Q0 /= n
	out.Variation /= n
	out.Rebuffer /= n
	out.Stalls /= n
	out.MeanQuality /= n
	out.MeanFrameRate /= n
	return out
}

// cellFor returns the cell result for the given key, or nil.
func (c *Comparison) cellFor(scheme sim.Scheme, videoID, traceID int) *CellResult {
	for i := range c.Cells {
		cr := &c.Cells[i]
		if cr.Scheme == scheme && cr.VideoID == videoID && cr.TraceID == traceID {
			return cr
		}
	}
	return nil
}

// NormalizedEnergy returns the mean per-scheme energy normalized to Ctile,
// averaged over videos, for the given trace (Fig. 9c / Fig. 10 bars).
func (c *Comparison) NormalizedEnergy(traceID int) map[sim.Scheme]float64 {
	return c.normalized(traceID, func(r *CellResult) float64 { return r.EnergyPerSegment })
}

// NormalizedQoE returns the mean per-scheme QoE normalized to Ctile,
// averaged over videos, for the given trace (Fig. 11c bars).
func (c *Comparison) NormalizedQoE(traceID int) map[sim.Scheme]float64 {
	return c.normalized(traceID, func(r *CellResult) float64 { return r.QoE })
}

func (c *Comparison) normalized(traceID int, metric func(*CellResult) float64) map[sim.Scheme]float64 {
	videos := map[int]bool{}
	for _, cell := range c.Cells {
		videos[cell.VideoID] = true
	}
	out := make(map[sim.Scheme]float64, len(sim.Schemes()))
	for _, scheme := range sim.Schemes() {
		var sum float64
		var n int
		for id := range videos {
			base := c.cellFor(sim.SchemeCtile, id, traceID)
			cell := c.cellFor(scheme, id, traceID)
			if base == nil || cell == nil || metric(base) == 0 {
				continue
			}
			sum += metric(cell) / metric(base)
			n++
		}
		if n > 0 {
			out[scheme] = sum / float64(n)
		}
	}
	return out
}

// RenderEnergy formats the Fig. 9 (or Fig. 10 for other phones) energy
// comparison: per-video detail plus normalized bars.
func (c *Comparison) RenderEnergy() []Table {
	detail := Table{
		Title:   fmt.Sprintf("Fig. 9a/9b: energy per segment (mJ), %v", c.Phone),
		Columns: []string{"Video", "Trace", "Ctile", "Ftile", "Nontile", "Ptile", "Ours"},
	}
	videos := c.videoIDs()
	for _, id := range videos {
		for traceID := 1; traceID <= 2; traceID++ {
			row := []string{fmt.Sprintf("%d", id), fmt.Sprintf("%d", traceID)}
			for _, scheme := range sim.Schemes() {
				if cell := c.cellFor(scheme, id, traceID); cell != nil {
					row = append(row, fmt.Sprintf("%.0f", cell.EnergyPerSegment))
				} else {
					row = append(row, "-")
				}
			}
			detail.Rows = append(detail.Rows, row)
		}
	}

	norm := Table{
		Title:   fmt.Sprintf("Fig. 9c: normalized energy, %v (paper: Ptile 0.70, Ours 0.50 vs Ctile)", c.Phone),
		Columns: []string{"Trace", "Ctile", "Ftile", "Nontile", "Ptile", "Ours"},
	}
	for traceID := 1; traceID <= 2; traceID++ {
		ne := c.NormalizedEnergy(traceID)
		row := []string{fmt.Sprintf("%d", traceID)}
		for _, scheme := range sim.Schemes() {
			row = append(row, fmt.Sprintf("%.2f", ne[scheme]))
		}
		norm.Rows = append(norm.Rows, row)
	}

	breakdown := Table{
		Title:   fmt.Sprintf("Fig. 9d: energy breakdown, video 8 trace 2 (mJ/segment), %v", c.Phone),
		Columns: []string{"Scheme", "Tx", "Decode", "Render"},
	}
	for _, scheme := range sim.Schemes() {
		if cell := c.cellFor(scheme, 8, 2); cell != nil {
			breakdown.Rows = append(breakdown.Rows, []string{
				scheme.String(),
				fmt.Sprintf("%.0f", cell.Energy.Tx),
				fmt.Sprintf("%.0f", cell.Energy.Decode),
				fmt.Sprintf("%.0f", cell.Energy.Render),
			})
		}
	}
	tables := []Table{detail, norm}
	if len(breakdown.Rows) > 0 {
		tables = append(tables, breakdown)
	}
	return tables
}

// RenderQoE formats the Fig. 11 QoE comparison.
func (c *Comparison) RenderQoE() []Table {
	detail := Table{
		Title:   fmt.Sprintf("Fig. 11a/11b: session QoE, %v", c.Phone),
		Columns: []string{"Video", "Trace", "Ctile", "Ftile", "Nontile", "Ptile", "Ours"},
	}
	for _, id := range c.videoIDs() {
		for traceID := 1; traceID <= 2; traceID++ {
			row := []string{fmt.Sprintf("%d", id), fmt.Sprintf("%d", traceID)}
			for _, scheme := range sim.Schemes() {
				if cell := c.cellFor(scheme, id, traceID); cell != nil {
					row = append(row, fmt.Sprintf("%.1f", cell.QoE))
				} else {
					row = append(row, "-")
				}
			}
			detail.Rows = append(detail.Rows, row)
		}
	}

	norm := Table{
		Title:   fmt.Sprintf("Fig. 11c: normalized QoE, %v (paper: Ours +7.4%% trace 1, +18.4%% trace 2)", c.Phone),
		Columns: []string{"Trace", "Ctile", "Ftile", "Nontile", "Ptile", "Ours"},
	}
	for traceID := 1; traceID <= 2; traceID++ {
		nq := c.NormalizedQoE(traceID)
		row := []string{fmt.Sprintf("%d", traceID)}
		for _, scheme := range sim.Schemes() {
			row = append(row, fmt.Sprintf("%.2f", nq[scheme]))
		}
		norm.Rows = append(norm.Rows, row)
	}

	breakdown := Table{
		Title:   fmt.Sprintf("Fig. 11d: QoE metrics, video 8 trace 2, %v", c.Phone),
		Columns: []string{"Scheme", "Avg quality Q0", "Variation Iv", "Rebuffer Ir", "Stalls"},
	}
	for _, scheme := range sim.Schemes() {
		if cell := c.cellFor(scheme, 8, 2); cell != nil {
			breakdown.Rows = append(breakdown.Rows, []string{
				scheme.String(),
				fmt.Sprintf("%.1f", cell.Q0),
				fmt.Sprintf("%.1f", cell.Variation),
				fmt.Sprintf("%.1f", cell.Rebuffer),
				fmt.Sprintf("%.1f", cell.Stalls),
			})
		}
	}
	tables := []Table{detail, norm}
	if len(breakdown.Rows) > 0 {
		tables = append(tables, breakdown)
	}
	return tables
}

func (c *Comparison) videoIDs() []int {
	set := map[int]bool{}
	for _, cell := range c.Cells {
		set[cell.VideoID] = true
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
