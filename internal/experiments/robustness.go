package experiments

import (
	"fmt"

	"ptile360/internal/geom"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/sim"
	"ptile360/internal/stats"
	"ptile360/internal/video"
)

// RobustnessResult reports how stable the headline normalized metrics are
// across independent random seeds — synthetic-substrate reproductions live
// or die by this.
type RobustnessResult struct {
	// Seeds are the evaluated seeds.
	Seeds []int64
	// EnergyOurs and QoEOurs hold, per trace ID, the mean and standard
	// deviation of Ours' Ctile-normalized energy/QoE across seeds.
	EnergyOurs map[int][2]float64
	QoEOurs    map[int][2]float64
	// OrderingHolds counts the seeds on which the full energy ordering
	// (Ours < Ptile < Nontile < Ftile < Ctile) held.
	OrderingHolds int
}

// Robustness reruns the scheme comparison under nSeeds different seeds and
// aggregates the headline metrics.
func Robustness(scale Scale, nSeeds int) (*RobustnessResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if nSeeds < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 seeds, got %d", nSeeds)
	}
	res := &RobustnessResult{
		EnergyOurs: make(map[int][2]float64),
		QoEOurs:    make(map[int][2]float64),
	}
	energyByTrace := map[int][]float64{}
	qoeByTrace := map[int][]float64{}
	for i := 0; i < nSeeds; i++ {
		seedScale := scale
		seedScale.Seed = scale.Seed + int64(i)*1000
		res.Seeds = append(res.Seeds, seedScale.Seed)
		comp, err := RunComparison(power.Pixel3, seedScale)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness seed %d: %w", seedScale.Seed, err)
		}
		ordered := true
		for traceID := 1; traceID <= 2; traceID++ {
			ne := comp.NormalizedEnergy(traceID)
			nq := comp.NormalizedQoE(traceID)
			energyByTrace[traceID] = append(energyByTrace[traceID], ne[sim.SchemeOurs])
			qoeByTrace[traceID] = append(qoeByTrace[traceID], nq[sim.SchemeOurs])
			if !(ne[sim.SchemeOurs] < ne[sim.SchemePtile] &&
				ne[sim.SchemePtile] < ne[sim.SchemeNontile] &&
				ne[sim.SchemeNontile] < ne[sim.SchemeFtile] &&
				ne[sim.SchemeFtile] < 1) {
				ordered = false
			}
		}
		if ordered {
			res.OrderingHolds++
		}
	}
	for traceID := 1; traceID <= 2; traceID++ {
		res.EnergyOurs[traceID] = [2]float64{stats.Mean(energyByTrace[traceID]), stats.StdDev(energyByTrace[traceID])}
		res.QoEOurs[traceID] = [2]float64{stats.Mean(qoeByTrace[traceID]), stats.StdDev(qoeByTrace[traceID])}
	}
	return res, nil
}

// Render formats the robustness summary.
func (r *RobustnessResult) Render() Table {
	t := Table{
		Title: fmt.Sprintf("Robustness: headline metrics across %d seeds (energy ordering held on %d/%d)",
			len(r.Seeds), r.OrderingHolds, len(r.Seeds)),
		Columns: []string{"Trace", "Ours energy vs Ctile (mean±std)", "Ours QoE vs Ctile (mean±std)"},
	}
	for traceID := 1; traceID <= 2; traceID++ {
		e, q := r.EnergyOurs[traceID], r.QoEOurs[traceID]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", traceID),
			fmt.Sprintf("%.2f ± %.2f", e[0], e[1]),
			fmt.Sprintf("%.2f ± %.2f", q[0], q[1]),
		})
	}
	return t
}

// PredAccuracyResult measures viewport-prediction error versus look-ahead
// horizon for each predictor family — the ground truth behind the coverage
// machinery and the DESIGN.md §6 horizon cap.
type PredAccuracyResult struct {
	// Horizons are the evaluated look-aheads in seconds.
	Horizons []float64
	// MeanErr maps predictor kind → per-horizon mean great-circle error in
	// degrees.
	MeanErr map[predict.ViewportKind][]float64
	// HitRate maps predictor kind → per-horizon fraction of predictions
	// whose error stays within half a tile (22.5°).
	HitRate map[predict.ViewportKind][]float64
}

// PredAccuracy evaluates the predictor families on the evaluation users of
// video 8.
func PredAccuracy(scale Scale) (*PredAccuracyResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	p, err := video.ProfileByID(8)
	if err != nil {
		return nil, err
	}
	setup, err := setupVideo(8, scale)
	if err != nil {
		return nil, err
	}
	res := &PredAccuracyResult{
		Horizons: []float64{0.5, 1, 2, 3},
		MeanErr:  make(map[predict.ViewportKind][]float64),
		HitRate:  make(map[predict.ViewportKind][]float64),
	}
	kinds := []predict.ViewportKind{predict.ViewportRidge, predict.ViewportOLS, predict.ViewportStatic}
	nSeg := p.Segments(1)
	for _, kind := range kinds {
		cfg := predict.DefaultViewportConfig()
		cfg.Kind = kind
		meanErr := make([]float64, len(res.Horizons))
		hits := make([]float64, len(res.Horizons))
		var count float64
		for _, tr := range setup.eval {
			xs, ys := tr.XYSeries()
			for seg := 2; seg < nSeg-4; seg += 3 {
				now := float64(seg)
				idx := int(now * 50)
				if idx < 2 || idx > len(xs) {
					continue
				}
				count++
				for hi, h := range res.Horizons {
					pred, err := predict.Viewport(xs[:idx], ys[:idx], h, cfg)
					if err != nil {
						return nil, err
					}
					actualO, err := tr.OrientationAt(now + h)
					if err != nil {
						return nil, err
					}
					errDeg := geom.AngleBetween(geom.OrientationOf(pred), actualO)
					meanErr[hi] += errDeg
					if errDeg <= 22.5 {
						hits[hi]++
					}
				}
			}
		}
		if count == 0 {
			return nil, fmt.Errorf("experiments: no prediction samples")
		}
		for hi := range res.Horizons {
			meanErr[hi] /= count
			hits[hi] /= count
		}
		res.MeanErr[kind] = meanErr
		res.HitRate[kind] = hits
	}
	return res, nil
}

// Render formats the prediction-accuracy sweep.
func (r *PredAccuracyResult) Render() Table {
	t := Table{
		Title:   "Viewport-prediction accuracy vs look-ahead horizon (video 8)",
		Columns: []string{"Predictor", "Horizon (s)", "Mean error (°)", "Within half-tile"},
	}
	for _, kind := range []predict.ViewportKind{predict.ViewportRidge, predict.ViewportOLS, predict.ViewportStatic} {
		for hi, h := range r.Horizons {
			t.Rows = append(t.Rows, []string{
				kind.String(),
				fmt.Sprintf("%.1f", h),
				fmt.Sprintf("%.1f", r.MeanErr[kind][hi]),
				fmt.Sprintf("%.0f%%", 100*r.HitRate[kind][hi]),
			})
		}
	}
	return t
}
