package experiments

import (
	"sync"

	"ptile360/internal/obs"
)

// Observability for the experiment engine: the setup-cache counters and the
// figure-by-figure progress of a sweep become registry series, so a long
// `repro -exp all` run can be watched from an ops endpoint (or the periodic
// telemetry summary cmd/repro logs) instead of staring at a silent terminal.

// progress tracks the engine's advance through a sweep.
var progress struct {
	mu      sync.Mutex
	current string
	done    int
	total   int
	reg     *obs.Registry
}

// RegisterMetrics exports the engine's state on reg as callback gauges:
//
//	experiments_cache_hits{cache=setup|dataset|trace|fovlut}
//	experiments_cache_misses{cache=...}
//	experiments_figures_total, experiments_figures_done
//
// plus the experiments_figure_runs_total{figure} counter advanced by
// FigureDone. Idempotent per registry; meant for the Default registry in
// cmds and private registries in tests.
func RegisterMetrics(reg *obs.Registry) {
	progress.mu.Lock()
	progress.reg = reg
	progress.mu.Unlock()

	stat := func(sel func(CacheStats) int) func() float64 {
		return func() float64 { return float64(sel(Stats())) }
	}
	reg.GaugeFunc("experiments_cache_hits", "Setup-cache hits by cache.",
		stat(func(s CacheStats) int { return s.SetupHits }), obs.L("cache", "setup"))
	reg.GaugeFunc("experiments_cache_misses", "Setup-cache misses by cache.",
		stat(func(s CacheStats) int { return s.SetupMisses }), obs.L("cache", "setup"))
	reg.GaugeFunc("experiments_cache_hits", "Setup-cache hits by cache.",
		stat(func(s CacheStats) int { return s.DatasetHits }), obs.L("cache", "dataset"))
	reg.GaugeFunc("experiments_cache_misses", "Setup-cache misses by cache.",
		stat(func(s CacheStats) int { return s.DatasetMisses }), obs.L("cache", "dataset"))
	reg.GaugeFunc("experiments_cache_hits", "Setup-cache hits by cache.",
		stat(func(s CacheStats) int { return s.TraceHits }), obs.L("cache", "trace"))
	reg.GaugeFunc("experiments_cache_misses", "Setup-cache misses by cache.",
		stat(func(s CacheStats) int { return s.TraceMisses }), obs.L("cache", "trace"))
	reg.GaugeFunc("experiments_cache_hits", "Setup-cache hits by cache.",
		stat(func(s CacheStats) int { return s.FoVLUTHits }), obs.L("cache", "fovlut"))
	reg.GaugeFunc("experiments_cache_misses", "Setup-cache misses by cache.",
		stat(func(s CacheStats) int { return s.FoVLUTMisses }), obs.L("cache", "fovlut"))

	reg.GaugeFunc("experiments_figures_total", "Figures in the current sweep.",
		func() float64 { progress.mu.Lock(); defer progress.mu.Unlock(); return float64(progress.total) })
	reg.GaugeFunc("experiments_figures_done", "Figures completed in the current sweep.",
		func() float64 { progress.mu.Lock(); defer progress.mu.Unlock(); return float64(progress.done) })
}

// SetProgressTotal starts a sweep of n figures (done resets to zero).
func SetProgressTotal(n int) {
	progress.mu.Lock()
	progress.total = n
	progress.done = 0
	progress.current = ""
	progress.mu.Unlock()
}

// FigureStarted marks name as the figure currently running.
func FigureStarted(name string) {
	progress.mu.Lock()
	progress.current = name
	progress.mu.Unlock()
}

// FigureDone advances the sweep and counts the completed figure on the
// registered registry.
func FigureDone(name string) {
	progress.mu.Lock()
	progress.done++
	if progress.current == name {
		progress.current = ""
	}
	reg := progress.reg
	progress.mu.Unlock()
	if reg != nil {
		reg.Counter("experiments_figure_runs_total",
			"Completed figure harness runs.", obs.L("figure", name)).Inc()
	}
}

// ProgressSnapshot reports the sweep position for periodic summaries.
func ProgressSnapshot() (current string, done, total int) {
	progress.mu.Lock()
	defer progress.mu.Unlock()
	return progress.current, progress.done, progress.total
}
