package experiments

import (
	"reflect"
	"testing"

	"ptile360/internal/power"
)

// withWorkers runs fn under the given worker-pool cap with cold caches, so
// every build actually executes at that parallelism, and restores the
// previous cap afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetMaxWorkers(n)
	ResetCaches()
	defer func() {
		SetMaxWorkers(prev)
		ResetCaches()
	}()
	fn()
}

// TestRunComparisonWorkersDeterministic proves the flattened session pool is
// a pure reordering of the serial sweep: the full Comparison — every cell,
// every float — is byte-identical whether the sessions run one at a time or
// on a wide pool.
func TestRunComparisonWorkersDeterministic(t *testing.T) {
	scale := QuickScale()
	var serial, wide *Comparison
	withWorkers(t, 1, func() {
		var err error
		serial, err = RunComparison(power.Nexus5X, scale)
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, workers := range []int{0, 8} {
		withWorkers(t, workers, func() {
			var err error
			wide, err = RunComparison(power.Nexus5X, scale)
			if err != nil {
				t.Fatal(err)
			}
		})
		if !reflect.DeepEqual(serial, wide) {
			t.Fatalf("workers=%d: comparison differs from serial run", workers)
		}
	}
}

// TestFigureHarnessesWorkersDeterministic repeats the worker sweep for the
// Fig. 5/7/8 harnesses, which share the memoized setups with the
// comparisons.
func TestFigureHarnessesWorkersDeterministic(t *testing.T) {
	scale := QuickScale()
	type outputs struct {
		f5 *Fig5Result
		f7 *Fig7Result
		f8 *Fig8Result
	}
	run := func() outputs {
		f5, err := Fig5(scale)
		if err != nil {
			t.Fatal(err)
		}
		f7, err := Fig7(scale)
		if err != nil {
			t.Fatal(err)
		}
		f8, err := Fig8(scale)
		if err != nil {
			t.Fatal(err)
		}
		return outputs{f5: f5, f7: f7, f8: f8}
	}
	var serial, wide outputs
	withWorkers(t, 1, func() { serial = run() })
	withWorkers(t, 8, func() { wide = run() })
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("figure outputs differ between worker counts")
	}
	// The rendered tables are what cmd/repro prints; they must match too.
	if !reflect.DeepEqual(serial.f5.Render(), wide.f5.Render()) ||
		!reflect.DeepEqual(serial.f7.Render(), wide.f7.Render()) ||
		!reflect.DeepEqual(serial.f8.Render(), wide.f8.Render()) {
		t.Fatal("rendered tables differ between worker counts")
	}
}

// TestSetupCacheSingleExecution proves the cache-hit accounting: a sweep
// touching the same scale from several harnesses builds each distinct
// (video, scale) setup and each trace pair exactly once.
func TestSetupCacheSingleExecution(t *testing.T) {
	scale := QuickScale()
	withWorkers(t, 0, func() {
		if _, err := RunComparison(power.Nexus5X, scale); err != nil {
			t.Fatal(err)
		}
		s := Stats()
		if s.SetupMisses != len(scale.Videos) {
			t.Fatalf("first sweep: %d setup builds, want %d", s.SetupMisses, len(scale.Videos))
		}
		if s.TraceMisses != 1 {
			t.Fatalf("first sweep: %d trace builds, want 1", s.TraceMisses)
		}

		// A second comparison on another phone and the figure harnesses
		// re-request the same setups: zero further builds.
		if _, err := RunComparison(power.GalaxyS20, scale); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig7(scale); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig8(scale); err != nil {
			t.Fatal(err)
		}
		s = Stats()
		if s.SetupMisses != len(scale.Videos) {
			t.Fatalf("after shared sweeps: %d setup builds, want %d (hits %d)",
				s.SetupMisses, len(scale.Videos), s.SetupHits)
		}
		if s.SetupHits == 0 {
			t.Fatal("shared sweeps produced no cache hits")
		}

		// A different seed is a different key and must rebuild.
		shifted := scale
		shifted.Seed++
		if _, err := Fig7(shifted); err != nil {
			t.Fatal(err)
		}
		if got := Stats().SetupMisses; got <= s.SetupMisses {
			t.Fatalf("shifted seed did not rebuild: %d builds", got)
		}
	})
}

// TestDatasetCacheSharedAcrossHarnesses proves Fig. 5 and the per-video
// setup builds share one head-trace generation per (video, users, seed),
// and that the LUT counters surface through Stats.
func TestDatasetCacheSharedAcrossHarnesses(t *testing.T) {
	scale := QuickScale()
	withWorkers(t, 0, func() {
		if _, err := Fig5(scale); err != nil {
			t.Fatal(err)
		}
		s := Stats()
		if s.DatasetMisses != len(scale.Videos) {
			t.Fatalf("Fig5: %d dataset builds, want %d", s.DatasetMisses, len(scale.Videos))
		}
		// The setup builds re-request the same datasets: zero further
		// generations.
		if _, err := RunComparison(power.Nexus5X, scale); err != nil {
			t.Fatal(err)
		}
		s = Stats()
		if s.DatasetMisses != len(scale.Videos) {
			t.Fatalf("after comparison: %d dataset builds, want %d (hits %d)",
				s.DatasetMisses, len(scale.Videos), s.DatasetHits)
		}
		if s.DatasetHits < len(scale.Videos) {
			t.Fatalf("setup builds produced %d dataset hits, want >= %d", s.DatasetHits, len(scale.Videos))
		}
		// The comparison's sessions warm the FoV-coverage LUT; repeated
		// sessions share the per-(grid, FoV) build.
		if s.FoVLUTMisses == 0 {
			t.Fatal("comparison built no FoV LUT")
		}
		if s.FoVLUTHits == 0 {
			t.Fatal("repeated sessions produced no FoV-LUT hits")
		}
	})
}

// TestResetCachesZeroes checks the reset used between benchmark runs.
func TestResetCachesZeroes(t *testing.T) {
	scale := QuickScale()
	withWorkers(t, 0, func() {
		if _, err := Fig7(scale); err != nil {
			t.Fatal(err)
		}
		if s := Stats(); s.SetupMisses == 0 {
			t.Fatal("no builds recorded")
		}
		ResetCaches()
		if s := Stats(); s != (CacheStats{}) {
			t.Fatalf("stats not zeroed: %+v", s)
		}
	})
}
