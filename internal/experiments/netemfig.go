package experiments

import (
	"fmt"

	"ptile360/internal/lte"
	"ptile360/internal/netem"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/sim"
	"ptile360/internal/stats"
)

// netemPaceFactor is the paced-sender factor used on the packet-level model:
// the server transmits at 1.25x the segment's media rate instead of dumping
// the whole segment as one burst. Without pacing a burst dump builds a
// standing queue out of its own serialization delay, and the delay-gradient
// detector would (correctly) latch overuse on every segment — self-inflicted
// signal, not network congestion. Tight pacing also blinds throughput-based
// estimators: a download served at 1.25x the media rate reveals only the
// rate the server sent, never the link's headroom, so the harmonic mean can
// neither climb after a cut nor see a sag coming — exactly the regime where
// reading congestion from packet timing pays.
const netemPaceFactor = 1.25

// netemProfileOverride, when non-empty, restricts NetemFig to a single
// parsed profile spec (see SetNetemProfile).
var netemProfileOverride string

// SetNetemProfile restricts the netem experiment to one profile spec of the
// ParseProfile form "name[,key=val,...]"; the empty string restores the
// default three-profile sweep. It returns an error if the spec does not
// parse. Not safe to call concurrently with NetemFig.
func SetNetemProfile(spec string) error {
	if spec != "" {
		if _, err := netem.ParseProfile(spec); err != nil {
			return err
		}
	}
	netemProfileOverride = spec
	return nil
}

// netemProfiles returns the profile specs the experiment sweeps.
func netemProfiles() []string {
	if netemProfileOverride != "" {
		return []string{netemProfileOverride}
	}
	return []string{"bufferbloat", "suddendrop", "crossflow"}
}

// NetemRow aggregates one (profile, bandwidth model, estimator) cell of the
// robustness figure over the evaluation users.
type NetemRow struct {
	// Profile is the netem profile name.
	Profile string
	// Model is the bandwidth model: "segment" (the fluid lte.Trace
	// abstraction, sampled from the same schedule) or "packet" (the full
	// packet-level SessionNet path).
	Model string
	// Estimator is the bandwidth-estimator family driving MPC.
	Estimator string
	// MeanQoE is the mean per-segment QoE (Eq. 2 q term) across users.
	MeanQoE float64
	// EnergyJ is the mean session energy in joules across users.
	EnergyJ float64
	// StallSec is the mean per-session stall time in seconds.
	StallSec float64
	// Stalls is the total stall count across users.
	Stalls int
	// Packets, Retransmits and DropsTail aggregate the packet accounting
	// across users (zero on the segment model, which has no packets).
	Packets     int
	Retransmits int
	DropsTail   int
}

// NetemResult holds the packet-level vs segment-level robustness sweep.
type NetemResult struct {
	// Video is the evaluated Table III video.
	Video int
	// Users is the number of evaluation users behind each row.
	Users int
	// Rows holds one aggregate per (profile, model, estimator).
	Rows []NetemRow
}

// NetemFig compares MPC outcomes under the segment-level fluid bandwidth
// model against the packet-level emulator, for the harmonic-mean and
// delay-gradient estimators, across the adversarial link profiles. The
// segment model samples the same capacity schedule at 1 s granularity, so
// any divergence between the two models is purely packet dynamics: queueing
// delay, loss, retransmission, and the timing signal the delay-gradient
// estimator feeds on.
func NetemFig(videoID int, scale Scale) (*NetemResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	setup, err := setupVideo(videoID, scale)
	if err != nil {
		return nil, err
	}
	res := &NetemResult{Video: videoID, Users: len(setup.eval)}
	estimators := []predict.EstimatorKind{predict.EstimatorHarmonic, predict.EstimatorDelayGradient}
	for _, spec := range netemProfiles() {
		prof, err := netem.ParseProfile(spec)
		if err != nil {
			return nil, err
		}
		// The segment-level twin of the profile: the capacity schedule
		// (minus cross traffic) sampled at the segment cadence. One trace
		// serves every user — the fluid model has no per-session state.
		segTrace, err := netemSegmentTrace(prof, scale.TraceSamples)
		if err != nil {
			return nil, err
		}
		for _, kind := range estimators {
			for _, model := range []string{"segment", "packet"} {
				row, err := netemCell(setup, prof, segTrace, kind, model, scale)
				if err != nil {
					return nil, fmt.Errorf("experiments: netem %s/%s/%s: %w", prof.Name, model, kind, err)
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// netemSegmentTrace samples the profile's deliverable rate at 1 s intervals
// into an lte.Trace.
func netemSegmentTrace(prof *netem.Profile, samples int) (*lte.Trace, error) {
	pn, err := netem.NewSessionNet(netem.SessionConfig{Profile: prof})
	if err != nil {
		return nil, err
	}
	tr := &lte.Trace{IntervalSec: 1, Bps: make([]float64, samples)}
	for i := range tr.Bps {
		tr.Bps[i] = pn.RateAt(float64(i))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// netemCell streams every evaluation user through one configuration and
// aggregates.
func netemCell(setup *videoSetup, prof *netem.Profile, segTrace *lte.Trace, kind predict.EstimatorKind, model string, scale Scale) (NetemRow, error) {
	cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
	if err != nil {
		return NetemRow{}, err
	}
	cfg.Estimator = kind
	row := NetemRow{Profile: prof.Name, Model: model, Estimator: kind.String()}
	var qoes, energies, stallSecs []float64
	for u, user := range setup.eval {
		var r *sim.Result
		switch model {
		case "segment":
			r, err = sim.Run(setup.catalog, user, segTrace, cfg)
		case "packet":
			var pn *netem.SessionNet
			pn, err = netem.NewSessionNet(netem.SessionConfig{
				Profile:    prof,
				Seed:       scale.Seed*1000 + int64(u),
				SegmentSec: cfg.SegmentSec,
				PaceFactor: netemPaceFactor,
			})
			if err == nil {
				r, err = sim.RunNetem(setup.catalog, user, pn, cfg)
				if err == nil {
					st := pn.Stats()
					row.Packets += st.Packets
					row.Retransmits += st.Retransmits
					row.DropsTail += st.DropsTail
				}
			}
		default:
			err = fmt.Errorf("unknown model %q", model)
		}
		if err != nil {
			return NetemRow{}, err
		}
		qoes = append(qoes, r.QoE.MeanQ)
		energies = append(energies, r.Energy.Total())
		stallSecs = append(stallSecs, r.QoE.StallSec)
		row.Stalls += r.QoE.Stalls
	}
	row.MeanQoE = stats.Mean(qoes)
	row.EnergyJ = stats.Mean(energies)
	row.StallSec = stats.Mean(stallSecs)
	return row, nil
}

// Render formats the sweep as a printable table.
func (r *NetemResult) Render() Table {
	t := Table{
		Title: fmt.Sprintf("Netem: MPC under segment-level vs packet-level bandwidth models (video %d, %d eval users)",
			r.Video, r.Users),
		Columns: []string{"Profile", "Model", "Estimator", "QoE", "Energy (J)", "Stall (s)", "Stalls", "Packets", "Rexmit", "Drops"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Profile, row.Model, row.Estimator,
			fmt.Sprintf("%.3f", row.MeanQoE),
			fmt.Sprintf("%.1f", row.EnergyJ),
			fmt.Sprintf("%.2f", row.StallSec),
			fmt.Sprintf("%d", row.Stalls),
			fmt.Sprintf("%d", row.Packets),
			fmt.Sprintf("%d", row.Retransmits),
			fmt.Sprintf("%d", row.DropsTail),
		})
	}
	return t
}
