package experiments

import (
	"sync"

	"ptile360/internal/lte"
)

// This file is the experiment engine's shared setup cache: a deterministic,
// concurrency-safe memoization layer over the expensive per-video artifacts
// (head-trace generation, the train/eval split, and catalogue construction)
// and the LTE evaluation traces. Every figure harness goes through it, so a
// full `cmd/repro -exp all` sweep — or the whole benchmark suite — computes
// each distinct (video, scale, seed) setup exactly once, no matter how many
// figures or concurrent goroutines ask for it.
//
// Correctness rests on two properties:
//
//  1. The builders are pure functions of the key: setupVideo depends only on
//     (video ID, UsersPerVideo, TrainUsers, EvalUsers, Seed) and
//     standardTraces only on (TraceSamples, Seed), all captured in the keys
//     below. A cache hit therefore returns bit-identical artifacts.
//  2. The cached values are immutable after construction: sessions only read
//     the catalogue, traces, and splits (sim.Catalog's lazy plan tables carry
//     their own lock).
//
// Each key executes once even under concurrency (singleflight): the map entry
// is created under the cache lock and built under the entry's sync.Once, so
// concurrent figures requesting the same video share one build instead of
// racing on duplicates.

// setupKey captures every input buildVideoSetup reads. TraceSamples is
// deliberately absent: the video setup does not depend on the LTE trace
// length.
type setupKey struct {
	videoID       int
	usersPerVideo int
	trainUsers    int
	evalUsers     int
	seed          int64
}

type setupEntry struct {
	once  sync.Once
	setup *videoSetup
	err   error
}

type traceKey struct {
	samples int
	seed    int64
}

type traceEntry struct {
	once   sync.Once
	t1, t2 *lte.Trace
	err    error
}

// maxCacheEntries bounds each cache map. Eviction simply clears the map:
// rebuilding is always correct (the builders are pure), and a sweep over
// many seeds (robustness) must not grow memory without bound.
const maxCacheEntries = 64

// CacheStats counts setup-cache traffic, for observability and the
// cache-hit accounting tests.
type CacheStats struct {
	// SetupHits and SetupMisses count videoSetup lookups. A miss triggers
	// one build; concurrent requests for an in-flight key count as hits.
	SetupHits, SetupMisses int
	// TraceHits and TraceMisses count LTE-trace lookups.
	TraceHits, TraceMisses int
}

var cache = struct {
	mu      sync.Mutex
	setups  map[setupKey]*setupEntry
	traces  map[traceKey]*traceEntry
	stats   CacheStats
	workers int
}{
	setups: make(map[setupKey]*setupEntry),
	traces: make(map[traceKey]*traceEntry),
}

// setupVideo returns the memoized per-video artifacts for (id, scale),
// building them at most once per distinct key across all figures and
// goroutines. The returned setup is shared — callers must treat it as
// read-only.
func setupVideo(id int, scale Scale) (*videoSetup, error) {
	key := setupKey{
		videoID:       id,
		usersPerVideo: scale.UsersPerVideo,
		trainUsers:    scale.TrainUsers,
		evalUsers:     scale.EvalUsers,
		seed:          scale.Seed,
	}
	cache.mu.Lock()
	e, ok := cache.setups[key]
	if ok {
		cache.stats.SetupHits++
	} else {
		cache.stats.SetupMisses++
		if len(cache.setups) >= maxCacheEntries {
			cache.setups = make(map[setupKey]*setupEntry)
		}
		e = &setupEntry{}
		cache.setups[key] = e
	}
	cache.mu.Unlock()

	e.once.Do(func() {
		e.setup, e.err = buildVideoSetup(id, scale)
	})
	return e.setup, e.err
}

// standardTraces returns the memoized two evaluation network conditions for
// the scale's (TraceSamples, Seed). The traces are shared and read-only.
func standardTraces(scale Scale) (trace1, trace2 *lte.Trace, err error) {
	key := traceKey{samples: scale.TraceSamples, seed: scale.Seed}
	cache.mu.Lock()
	e, ok := cache.traces[key]
	if ok {
		cache.stats.TraceHits++
	} else {
		cache.stats.TraceMisses++
		if len(cache.traces) >= maxCacheEntries {
			cache.traces = make(map[traceKey]*traceEntry)
		}
		e = &traceEntry{}
		cache.traces[key] = e
	}
	cache.mu.Unlock()

	e.once.Do(func() {
		e.t1, e.t2, e.err = lte.StandardTraces(scale.TraceSamples, scale.Seed+99)
	})
	return e.t1, e.t2, e.err
}

// ResetCaches drops every memoized setup and trace and zeroes the
// statistics. Intended for tests and long-lived processes that want to
// release the memory between sweeps; correctness never requires it.
func ResetCaches() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.setups = make(map[setupKey]*setupEntry)
	cache.traces = make(map[traceKey]*traceEntry)
	cache.stats = CacheStats{}
}

// Stats returns a snapshot of the setup-cache counters.
func Stats() CacheStats {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return cache.stats
}

// SetMaxWorkers caps the experiment engine's worker pools (session sweeps
// and per-video setup builds). n <= 0 restores the default (GOMAXPROCS).
// Returns the previous setting. Results are deterministic regardless of the
// worker count; the knob exists for benchmarking, CI, and the determinism
// tests.
func SetMaxWorkers(n int) (prev int) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	prev = cache.workers
	if n < 0 {
		n = 0
	}
	cache.workers = n
	return prev
}

// maxWorkers reports the current worker-pool cap (0 = GOMAXPROCS).
func maxWorkers() int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return cache.workers
}
