package experiments

import (
	"sync"

	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/video"
)

// This file is the experiment engine's shared setup cache: a deterministic,
// concurrency-safe memoization layer over the expensive per-video artifacts
// (head-trace generation, the train/eval split, and catalogue construction)
// and the LTE evaluation traces. Every figure harness goes through it, so a
// full `cmd/repro -exp all` sweep — or the whole benchmark suite — computes
// each distinct (video, scale, seed) setup exactly once, no matter how many
// figures or concurrent goroutines ask for it.
//
// Correctness rests on two properties:
//
//  1. The builders are pure functions of the key: setupVideo depends only on
//     (video ID, UsersPerVideo, TrainUsers, EvalUsers, Seed) and
//     standardTraces only on (TraceSamples, Seed), all captured in the keys
//     below. A cache hit therefore returns bit-identical artifacts.
//  2. The cached values are immutable after construction: sessions only read
//     the catalogue, traces, and splits (sim.Catalog's lazy plan tables carry
//     their own lock).
//
// Each key executes once even under concurrency (singleflight): the map entry
// is created under the cache lock and built under the entry's sync.Once, so
// concurrent figures requesting the same video share one build instead of
// racing on duplicates.

// setupKey captures every input buildVideoSetup reads. TraceSamples is
// deliberately absent: the video setup does not depend on the LTE trace
// length.
type setupKey struct {
	videoID       int
	usersPerVideo int
	trainUsers    int
	evalUsers     int
	seed          int64
}

type setupEntry struct {
	once  sync.Once
	setup *videoSetup
	err   error
}

// datasetKey captures every input datasetFor reads. The train/eval split is
// deliberately absent: Fig. 5 consumes the raw dataset before any split, so
// keying on (video, users, seed) lets it share the generation with the
// setup builds.
type datasetKey struct {
	videoID  int
	numUsers int
	seed     int64
}

type datasetEntry struct {
	once sync.Once
	ds   *headtrace.Dataset
	err  error
}

type traceKey struct {
	samples int
	seed    int64
}

type traceEntry struct {
	once   sync.Once
	t1, t2 *lte.Trace
	err    error
}

// maxCacheEntries bounds each cache map. Eviction simply clears the map:
// rebuilding is always correct (the builders are pure), and a sweep over
// many seeds (robustness) must not grow memory without bound.
const maxCacheEntries = 64

// CacheStats counts setup-cache traffic, for observability and the
// cache-hit accounting tests.
type CacheStats struct {
	// SetupHits and SetupMisses count videoSetup lookups. A miss triggers
	// one build; concurrent requests for an in-flight key count as hits.
	SetupHits, SetupMisses int
	// DatasetHits and DatasetMisses count head-trace dataset lookups.
	DatasetHits, DatasetMisses int
	// TraceHits and TraceMisses count LTE-trace lookups.
	TraceHits, TraceMisses int
	// FoVLUTHits and FoVLUTMisses mirror the geom package's FoV-coverage
	// LUT counters (geom.FoVLUTCacheStats), merged here so one snapshot
	// covers every cache the experiment engine leans on.
	FoVLUTHits, FoVLUTMisses int
}

var cache = struct {
	mu       sync.Mutex
	setups   map[setupKey]*setupEntry
	datasets map[datasetKey]*datasetEntry
	traces   map[traceKey]*traceEntry
	stats    CacheStats
	workers  int
}{
	setups:   make(map[setupKey]*setupEntry),
	datasets: make(map[datasetKey]*datasetEntry),
	traces:   make(map[traceKey]*traceEntry),
}

// setupVideo returns the memoized per-video artifacts for (id, scale),
// building them at most once per distinct key across all figures and
// goroutines. The returned setup is shared — callers must treat it as
// read-only.
func setupVideo(id int, scale Scale) (*videoSetup, error) {
	key := setupKey{
		videoID:       id,
		usersPerVideo: scale.UsersPerVideo,
		trainUsers:    scale.TrainUsers,
		evalUsers:     scale.EvalUsers,
		seed:          scale.Seed,
	}
	cache.mu.Lock()
	e, ok := cache.setups[key]
	if ok {
		cache.stats.SetupHits++
	} else {
		cache.stats.SetupMisses++
		if len(cache.setups) >= maxCacheEntries {
			cache.setups = make(map[setupKey]*setupEntry)
		}
		e = &setupEntry{}
		cache.setups[key] = e
	}
	cache.mu.Unlock()

	e.once.Do(func() {
		e.setup, e.err = buildVideoSetup(id, scale)
	})
	return e.setup, e.err
}

// datasetFor returns the memoized head-movement dataset for (video, user
// count, seed), generating it at most once per distinct key. Fig. 5 and the
// per-video setup builds share the same generation through it. The dataset
// is shared — callers must treat its traces as read-only.
func datasetFor(p video.Profile, numUsers int, seed int64) (*headtrace.Dataset, error) {
	key := datasetKey{videoID: p.ID, numUsers: numUsers, seed: seed}
	cache.mu.Lock()
	e, ok := cache.datasets[key]
	if ok {
		cache.stats.DatasetHits++
	} else {
		cache.stats.DatasetMisses++
		if len(cache.datasets) >= maxCacheEntries {
			cache.datasets = make(map[datasetKey]*datasetEntry)
		}
		e = &datasetEntry{}
		cache.datasets[key] = e
	}
	cache.mu.Unlock()

	e.once.Do(func() {
		gcfg := headtrace.DefaultGeneratorConfig()
		gcfg.NumUsers = numUsers
		gcfg.Workers = maxWorkers()
		e.ds, e.err = headtrace.Generate(p, gcfg, seed)
	})
	return e.ds, e.err
}

// standardTraces returns the memoized two evaluation network conditions for
// the scale's (TraceSamples, Seed). The traces are shared and read-only.
func standardTraces(scale Scale) (trace1, trace2 *lte.Trace, err error) {
	key := traceKey{samples: scale.TraceSamples, seed: scale.Seed}
	cache.mu.Lock()
	e, ok := cache.traces[key]
	if ok {
		cache.stats.TraceHits++
	} else {
		cache.stats.TraceMisses++
		if len(cache.traces) >= maxCacheEntries {
			cache.traces = make(map[traceKey]*traceEntry)
		}
		e = &traceEntry{}
		cache.traces[key] = e
	}
	cache.mu.Unlock()

	e.once.Do(func() {
		e.t1, e.t2, e.err = lte.StandardTraces(scale.TraceSamples, scale.Seed+99)
	})
	return e.t1, e.t2, e.err
}

// ResetCaches drops every memoized setup and trace and zeroes the
// statistics. Intended for tests and long-lived processes that want to
// release the memory between sweeps; correctness never requires it.
func ResetCaches() {
	cache.mu.Lock()
	cache.setups = make(map[setupKey]*setupEntry)
	cache.datasets = make(map[datasetKey]*datasetEntry)
	cache.traces = make(map[traceKey]*traceEntry)
	cache.stats = CacheStats{}
	cache.mu.Unlock()
	geom.ResetFoVLUTCache()
}

// Stats returns a snapshot of the setup-cache counters, with the geom
// package's FoV-LUT counters folded in.
func Stats() CacheStats {
	cache.mu.Lock()
	s := cache.stats
	cache.mu.Unlock()
	s.FoVLUTHits, s.FoVLUTMisses, _ = geom.FoVLUTCacheStats()
	return s
}

// SetMaxWorkers caps the experiment engine's worker pools (session sweeps
// and per-video setup builds). n <= 0 restores the default (GOMAXPROCS).
// Returns the previous setting. Results are deterministic regardless of the
// worker count; the knob exists for benchmarking, CI, and the determinism
// tests.
func SetMaxWorkers(n int) (prev int) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	prev = cache.workers
	if n < 0 {
		n = 0
	}
	cache.workers = n
	return prev
}

// maxWorkers reports the current worker-pool cap (0 = GOMAXPROCS).
func maxWorkers() int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return cache.workers
}
