package experiments

import (
	"fmt"

	"ptile360/internal/geom"
	"ptile360/internal/projection"
)

// ProjectionResult quantifies two geometric facts behind the paper's
// schemes: how many tiles a truly rendered view actually samples versus the
// snapped FoV block the Ctile scheme downloads, and how heavily the
// equirectangular format oversamples high latitudes (the bits Nontile pays
// for and tiled schemes skip).
type ProjectionResult struct {
	// CoverRows: per view pitch, the exact sampled tile count and the
	// snapped block size.
	CoverRows [][3]float64 // pitch, exact tiles, snapped tiles
	// Oversampling: per pitch band, the equirectangular oversampling ratio.
	Oversampling [][2]float64
}

// Projection runs the view-generation geometry study on a 4×8 grid with the
// paper's 100° FoV.
func Projection() (*ProjectionResult, error) {
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return nil, err
	}
	res := &ProjectionResult{}
	for _, pitch := range []float64{0, 20, 40, 60} {
		v := projection.View{
			Center: geom.Orientation{Yaw: 180, Pitch: pitch},
			FoVDeg: 100,
			Width:  96,
			Height: 96,
		}
		exact, err := v.CoveredTiles(grid, 4)
		if err != nil {
			return nil, err
		}
		snapped := grid.FoVTiles(geom.PointOf(v.Center), 100, 100)
		res.CoverRows = append(res.CoverRows, [3]float64{pitch, float64(len(exact)), float64(len(snapped))})
	}
	for _, pitch := range []float64{0, 30, 60, 75, 85} {
		r, err := projection.OversamplingRatio(pitch)
		if err != nil {
			return nil, err
		}
		res.Oversampling = append(res.Oversampling, [2]float64{pitch, r})
	}
	return res, nil
}

// Render formats the projection study.
func (r *ProjectionResult) Render() []Table {
	cover := Table{
		Title:   "View generation: exact gnomonic tile cover vs the snapped FoV block (100° FoV, 4×8 grid)",
		Columns: []string{"View pitch (°)", "Exact sampled tiles", "Snapped block tiles"},
	}
	for _, row := range r.CoverRows {
		cover.Rows = append(cover.Rows, []string{
			fmt.Sprintf("%.0f", row[0]), fmt.Sprintf("%.0f", row[1]), fmt.Sprintf("%.0f", row[2]),
		})
	}
	over := Table{
		Title:   "Equirectangular polar oversampling (pixels per resolved solid angle, equator = 1)",
		Columns: []string{"Pitch (°)", "Oversampling ratio"},
	}
	for _, row := range r.Oversampling {
		over.Rows = append(over.Rows, []string{
			fmt.Sprintf("%.0f", row[0]), fmt.Sprintf("%.2f", row[1]),
		})
	}
	return []Table{cover, over}
}
