package experiments

import (
	"reflect"
	"testing"

	"ptile360/internal/predict"
)

// netemRowsByKey indexes the sweep for assertions.
func netemRowsByKey(t *testing.T, res *NetemResult) map[[3]string]NetemRow {
	t.Helper()
	idx := make(map[[3]string]NetemRow, len(res.Rows))
	for _, r := range res.Rows {
		k := [3]string{r.Profile, r.Model, r.Estimator}
		if _, dup := idx[k]; dup {
			t.Fatalf("duplicate row %v", k)
		}
		idx[k] = r
	}
	return idx
}

// TestNetemFigBufferbloatDelayGradientBeatsHarmonic pins the PR's headline
// robustness claim: under the bufferbloat profile on the packet-level model,
// the delay-gradient estimator stalls measurably less than the harmonic mean
// at equal-or-better QoE. The run is fully deterministic, so the margins are
// stable across machines and reruns.
func TestNetemFigBufferbloatDelayGradientBeatsHarmonic(t *testing.T) {
	if err := SetNetemProfile("bufferbloat"); err != nil {
		t.Fatal(err)
	}
	defer SetNetemProfile("")
	res, err := NetemFig(8, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (bufferbloat x {segment,packet} x {harmonic,delay-gradient})", len(res.Rows))
	}
	idx := netemRowsByKey(t, res)
	h := idx[[3]string{"bufferbloat", "packet", predict.EstimatorHarmonic.String()}]
	dg := idx[[3]string{"bufferbloat", "packet", predict.EstimatorDelayGradient.String()}]
	if h.Packets == 0 || dg.Packets == 0 {
		t.Fatalf("packet model moved no packets: harmonic %d, delay-gradient %d", h.Packets, dg.Packets)
	}
	// Measurably lower stall: at most half the harmonic stall time, and
	// strictly fewer stall events.
	if !(dg.StallSec < 0.5*h.StallSec) {
		t.Errorf("delay-gradient stall %.2fs not measurably below harmonic %.2fs", dg.StallSec, h.StallSec)
	}
	if dg.Stalls >= h.Stalls {
		t.Errorf("delay-gradient stalls %d >= harmonic %d", dg.Stalls, h.Stalls)
	}
	// At equal or better QoE.
	if dg.MeanQoE < h.MeanQoE {
		t.Errorf("delay-gradient QoE %.3f below harmonic %.3f", dg.MeanQoE, h.MeanQoE)
	}
	// The stall advantage must come from the packet dynamics the segment
	// model cannot express: both estimators stall on the segment model too,
	// so the figure is not comparing against a degenerate baseline.
	segH := idx[[3]string{"bufferbloat", "segment", predict.EstimatorHarmonic.String()}]
	if segH.StallSec == 0 {
		t.Errorf("segment-model harmonic never stalls: sag too shallow to exercise the ladder")
	}
}

// TestNetemFigDeterministic pins replay: the sweep is a pure function of
// (video, scale), bit-identical across runs.
func TestNetemFigDeterministic(t *testing.T) {
	if err := SetNetemProfile("suddendrop"); err != nil {
		t.Fatal(err)
	}
	defer SetNetemProfile("")
	a, err := NetemFig(8, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NetemFig(8, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("netem sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSetNetemProfileRejectsBadSpec pins the override validation.
func TestSetNetemProfileRejectsBadSpec(t *testing.T) {
	if err := SetNetemProfile("nosuch"); err == nil {
		t.Fatal("bad profile spec accepted")
	}
	if err := SetNetemProfile("stable,capacity=-1"); err == nil {
		t.Fatal("invalid override accepted")
	}
}
