package experiments

import (
	"fmt"

	"ptile360/internal/decoder"
	"ptile360/internal/geom"
	"ptile360/internal/power"
	"ptile360/internal/video"
)

// Fig2aResult compares the data-transmission energy of downloading the FoV
// as one Ptile versus nine conventional tiles, normalized to the
// conventional scheme (the paper reports a 35 % saving).
type Fig2aResult struct {
	// PerQuality maps quality level → normalized transmission energy of the
	// Ptile scheme (Ctile = 1).
	PerQuality map[video.Quality]float64
	// Mean is the average over the ladder.
	Mean float64
}

// Fig2a computes the transmission-energy comparison of Section II. Energy is
// Pt·S/R, so at a fixed bandwidth the normalized energy equals the size
// ratio of Fig. 8's underlying model.
func Fig2a() (*Fig2aResult, error) {
	enc := video.DefaultEncoderConfig()
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return nil, err
	}
	fov := grid.FoVTiles(geom.Point{X: 180, Y: 90}, 100, 100)
	bound, err := grid.BoundingRect(fov)
	if err != nil {
		return nil, err
	}
	sc := video.SegmentContent{SI: 50, TI: 25, Jitter: 1}
	res := &Fig2aResult{PerQuality: make(map[video.Quality]float64)}
	for q := video.MinQuality; q <= video.MaxQuality; q++ {
		var ctileBits float64
		for _, id := range fov {
			b, err := enc.TileBits(video.TileSpec{Rect: grid.TileRect(id), Quality: q}, 1, sc)
			if err != nil {
				return nil, err
			}
			ctileBits += b
		}
		ptileBits, err := enc.TileBits(video.TileSpec{Rect: bound, Quality: q, Kind: video.KindPtile}, 1, sc)
		if err != nil {
			return nil, err
		}
		ratio := ptileBits / ctileBits
		res.PerQuality[q] = ratio
		res.Mean += ratio / 5
	}
	return res, nil
}

// Render formats the Fig. 2a series.
func (r *Fig2aResult) Render() Table {
	t := Table{
		Title: fmt.Sprintf("Fig. 2a: normalized transmission energy, Ptile vs Ctile (mean saving %.0f%%; paper 35%%)",
			100*(1-r.Mean)),
		Columns: []string{"Quality", "Normalized Tx energy", "Saving"},
	}
	for q := video.MinQuality; q <= video.MaxQuality; q++ {
		v := r.PerQuality[q]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("q%d", q), fmt.Sprintf("%.2f", v), fmt.Sprintf("%.0f%%", 100*(1-v)),
		})
	}
	return t
}

// Fig2bResult is the decoder-scaling series: decode time and power for 1..9
// concurrent decoders plus the single-decoder Ptile path.
type Fig2bResult struct {
	Pool  []decoder.Result
	Ptile decoder.Result
}

// Fig2b runs the decode-pipeline simulator over the Fig. 2b sweep: the nine
// FoV tiles of a one-second 30 fps segment.
func Fig2b() (*Fig2bResult, error) {
	cfg := decoder.DefaultConfig()
	pool, err := cfg.Sweep(9, 30, 9)
	if err != nil {
		return nil, err
	}
	pt, err := cfg.DecodePtile(30)
	if err != nil {
		return nil, err
	}
	return &Fig2bResult{Pool: pool, Ptile: pt}, nil
}

// Render formats the Fig. 2b series.
func (r *Fig2bResult) Render() Table {
	t := Table{
		Title:   "Fig. 2b: decode time and power vs concurrent decoders (paper: 1.3s/241mW at 1, 0.5s/846mW at 9; Ptile 0.24s/287mW)",
		Columns: []string{"Decoders", "Time (s)", "Power (mW)", "Energy (mJ)"},
	}
	for _, res := range r.Pool {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Decoders),
			fmt.Sprintf("%.2f", res.TimeSec),
			fmt.Sprintf("%.0f", res.PowerMW),
			fmt.Sprintf("%.0f", res.EnergyMJ),
		})
	}
	t.Rows = append(t.Rows, []string{
		"Ptile",
		fmt.Sprintf("%.2f", r.Ptile.TimeSec),
		fmt.Sprintf("%.0f", r.Ptile.PowerMW),
		fmt.Sprintf("%.0f", r.Ptile.EnergyMJ),
	})
	return t
}

// Fig2cResult compares the video-processing energy (decode + view
// generation) of the Ptile path against conventional decoding with 1..9
// decoders, normalized to the one-decoder conventional scheme.
type Fig2cResult struct {
	// Normalized maps decoder count → processing energy normalized to 1
	// decoder; key 0 holds the Ptile path.
	Normalized map[int]float64
	// SavingVsBest is the Ptile saving against the best conventional
	// configuration (the paper reports 41 % vs four decoders).
	SavingVsBest float64
	// BestDecoders is the conventional decoder count with minimum energy.
	BestDecoders int
}

// Fig2c computes the processing-energy comparison of Section II, adding the
// Pixel 3 view-generation energy (P_r · L) to each decode energy.
func Fig2c() (*Fig2cResult, error) {
	dec, err := Fig2b()
	if err != nil {
		return nil, err
	}
	pm, err := power.TableI(power.Pixel3)
	if err != nil {
		return nil, err
	}
	renderMJ := pm.Render.At(30) * 1.0

	base := dec.Pool[0].EnergyMJ + renderMJ
	res := &Fig2cResult{Normalized: make(map[int]float64, len(dec.Pool)+1)}
	best, bestE := 1, dec.Pool[0].EnergyMJ
	for _, p := range dec.Pool {
		res.Normalized[p.Decoders] = (p.EnergyMJ + renderMJ) / base
		if p.EnergyMJ < bestE {
			best, bestE = p.Decoders, p.EnergyMJ
		}
	}
	ptileE := dec.Ptile.EnergyMJ + renderMJ
	res.Normalized[0] = ptileE / base
	res.BestDecoders = best
	res.SavingVsBest = 1 - ptileE/(bestE+renderMJ)
	return res, nil
}

// Render formats the Fig. 2c series.
func (r *Fig2cResult) Render() Table {
	t := Table{
		Title: fmt.Sprintf("Fig. 2c: normalized processing energy (Ptile saves %.0f%% vs best %d-decoder scheme; paper 41%% vs 4)",
			100*r.SavingVsBest, r.BestDecoders),
		Columns: []string{"Scheme", "Normalized processing energy"},
	}
	for d := 1; d <= 9; d++ {
		if v, ok := r.Normalized[d]; ok {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d decoders", d), fmt.Sprintf("%.2f", v)})
		}
	}
	t.Rows = append(t.Rows, []string{"Ptile", fmt.Sprintf("%.2f", r.Normalized[0])})
	return t
}
