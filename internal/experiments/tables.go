package experiments

import (
	"fmt"
	"strconv"

	"ptile360/internal/power"
	"ptile360/internal/video"
	"ptile360/internal/vmaf"
)

// Table1Result holds the Table I reproduction: for each phone, the published
// power model and the model re-fitted from simulated Monsoon measurements.
type Table1Result struct {
	Published map[power.Phone]power.Model
	Fitted    map[power.Phone]power.Model
}

// Table1 reproduces Table I: it runs the simulated measurement campaign
// (frame-rate sweep on the Monsoon rig, DESIGN.md §2) for every phone and
// fits the affine power models.
func Table1(seed int64) (*Table1Result, error) {
	res := &Table1Result{
		Published: make(map[power.Phone]power.Model),
		Fitted:    make(map[power.Phone]power.Model),
	}
	frameRates := []float64{21, 24, 27, 30}
	for _, phone := range power.Phones() {
		pub, err := power.TableI(phone)
		if err != nil {
			return nil, err
		}
		fit, err := power.ReproduceTableI(phone, frameRates, 50, 8, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 1 for %v: %w", phone, err)
		}
		res.Published[phone] = pub
		res.Fitted[phone] = fit
	}
	return res, nil
}

// Render formats the result as the Table I layout.
func (r *Table1Result) Render() Table {
	t := Table{
		Title:   "Table I: power models (published vs fitted from simulated Monsoon sweep)",
		Columns: []string{"State", "Phone", "Published", "Fitted"},
	}
	fmtLin := func(l power.Linear) string {
		return fmt.Sprintf("%.2f + %.2f·f", l.Base, l.Slope)
	}
	for _, phone := range power.Phones() {
		pub, fit := r.Published[phone], r.Fitted[phone]
		t.Rows = append(t.Rows, []string{"Data trans.", phone.String(),
			fmt.Sprintf("Pt = %.2f", pub.Tx), fmt.Sprintf("Pt = %.2f", fit.Tx)})
		for _, scheme := range power.Schemes() {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("Decode/%v", scheme), phone.String(),
				fmtLin(pub.Decode[scheme]), fmtLin(fit.Decode[scheme]),
			})
		}
		t.Rows = append(t.Rows, []string{"Render", phone.String(),
			fmtLin(pub.Render), fmtLin(fit.Render)})
	}
	return t
}

// Table2Result holds the Table II reproduction: the Q₀ model coefficients
// fitted from the synthetic VMAF campaign.
type Table2Result struct {
	Published vmaf.Coefficients
	Fitted    vmaf.Coefficients
	Pearson   float64
}

// Table2 reproduces Table II: generate the VMAF observation set and fit
// Eq. 3 with nonlinear least squares. The paper reports Pearson r = 0.9791.
func Table2(seed int64) (*Table2Result, error) {
	obs, err := vmaf.SyntheticDataset(2000, 2.0, seed)
	if err != nil {
		return nil, err
	}
	fit, err := vmaf.Fit(obs)
	if err != nil {
		return nil, fmt.Errorf("experiments: table 2 fit: %w", err)
	}
	return &Table2Result{
		Published: vmaf.TableII(),
		Fitted:    fit.Coefficients,
		Pearson:   fit.Pearson,
	}, nil
}

// Render formats the result as the Table II layout.
func (r *Table2Result) Render() Table {
	return Table{
		Title:   fmt.Sprintf("Table II: Q0 coefficients (fit Pearson r = %.4f; paper 0.9791)", r.Pearson),
		Columns: []string{"Coefficient", "c1", "c2", "c3", "c4"},
		Rows: [][]string{
			{"Published", fmt.Sprintf("%.4f", r.Published.C1), fmt.Sprintf("%.4f", r.Published.C2),
				fmt.Sprintf("%.4f", r.Published.C3), fmt.Sprintf("%.4f", r.Published.C4)},
			{"Fitted", fmt.Sprintf("%.4f", r.Fitted.C1), fmt.Sprintf("%.4f", r.Fitted.C2),
				fmt.Sprintf("%.4f", r.Fitted.C3), fmt.Sprintf("%.4f", r.Fitted.C4)},
		},
	}
}

// Table3 renders the test-video catalogue (Table III) with the content
// profiles this reproduction assigns.
func Table3() Table {
	t := Table{
		Title:   "Table III: test videos",
		Columns: []string{"ID", "Length", "Content", "Class", "SI", "TI", "Trajectories"},
	}
	for _, p := range video.Catalog() {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.ID),
			fmt.Sprintf("%d:%02d", p.DurationSec/60, p.DurationSec%60),
			p.Name,
			p.Class.String(),
			fmt.Sprintf("%.0f", p.SIMean),
			fmt.Sprintf("%.0f", p.TIMean),
			strconv.Itoa(p.MotionTrajectories),
		})
	}
	return t
}
