package experiments

import (
	"fmt"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/predict"
	"ptile360/internal/sim"
)

// AblationRow is one configuration of an ablation sweep with its session
// outcomes averaged over the evaluation users.
type AblationRow struct {
	// Sweep and Setting identify the knob and its value.
	Sweep, Setting string
	// EnergyPerSegment is the mean Eq. 1 energy per segment (mJ).
	EnergyPerSegment float64
	// QoE is the mean session QoE.
	QoE float64
	// Stalls is the mean stall count per session.
	Stalls float64
	// MeanFrameRate is the average chosen frame rate.
	MeanFrameRate float64
}

// AblationsResult holds the design-choice sweeps of DESIGN.md §5 evaluated
// on one video.
type AblationsResult struct {
	VideoID int
	Rows    []AblationRow
}

// Ablations sweeps the controller's design knobs — ε tolerance, MPC horizon,
// buffer threshold β, bandwidth-estimator family, and viewport-predictor
// family — on video 8 under trace 2, quantifying each choice the paper
// fixes.
func Ablations(scale Scale) (*AblationsResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	setup, err := setupVideo(8, scale)
	if err != nil {
		return nil, err
	}
	_, trace2, err := standardTraces(scale)
	if err != nil {
		return nil, err
	}

	res := &AblationsResult{VideoID: 8}
	runWith := func(sweep, setting string, mutate func(*sim.Config)) error {
		cfg, err := sim.DefaultConfig(sim.SchemeOurs, power.Pixel3)
		if err != nil {
			return err
		}
		mutate(&cfg)
		row := AblationRow{Sweep: sweep, Setting: setting}
		for _, user := range setup.eval {
			r, err := runSession(setup, user, trace2, cfg)
			if err != nil {
				return fmt.Errorf("experiments: ablation %s=%s: %w", sweep, setting, err)
			}
			row.EnergyPerSegment += r.Energy.Total() / float64(r.Segments)
			row.QoE += r.QoE.MeanQ
			row.Stalls += float64(r.QoE.Stalls)
			row.MeanFrameRate += r.MeanFrameRate
		}
		n := float64(len(setup.eval))
		row.EnergyPerSegment /= n
		row.QoE /= n
		row.Stalls /= n
		row.MeanFrameRate /= n
		res.Rows = append(res.Rows, row)
		return nil
	}

	for _, eps := range []float64{0.0, 0.05, 0.15} {
		setting := fmt.Sprintf("%.0f%%", 100*eps)
		if err := runWith("epsilon", setting, func(c *sim.Config) { c.Epsilon = eps }); err != nil {
			return nil, err
		}
	}
	for _, h := range []int{1, 3, 5, 8} {
		if err := runWith("horizon", fmt.Sprintf("H=%d", h), func(c *sim.Config) { c.Horizon = h }); err != nil {
			return nil, err
		}
	}
	for _, beta := range []float64{2, 3, 5} {
		if err := runWith("buffer", fmt.Sprintf("%.0fs", beta), func(c *sim.Config) { c.BufferCapSec = beta }); err != nil {
			return nil, err
		}
	}
	for _, kind := range []predict.EstimatorKind{
		predict.EstimatorHarmonic, predict.EstimatorLastSample,
		predict.EstimatorEWMA, predict.EstimatorMovingAverage,
	} {
		k := kind
		if err := runWith("estimator", kind.String(), func(c *sim.Config) { c.Estimator = k }); err != nil {
			return nil, err
		}
	}
	for _, kind := range []predict.ViewportKind{
		predict.ViewportRidge, predict.ViewportOLS, predict.ViewportStatic,
	} {
		k := kind
		if err := runWith("viewport", kind.String(), func(c *sim.Config) { c.Viewport.Kind = k }); err != nil {
			return nil, err
		}
	}
	// The objective swap: the paper's energy-minimizing MPC against the
	// QoE-maximizing MPC it descends from [24].
	if err := runWith("controller", "energy-mpc", func(*sim.Config) {}); err != nil {
		return nil, err
	}
	if err := runWith("controller", "qoe-mpc", func(c *sim.Config) { c.UseQoEMPC = true }); err != nil {
		return nil, err
	}
	return res, nil
}

// runSession is a seam for Ablations so it shares the videoSetup plumbing.
func runSession(setup *videoSetup, user *headtrace.Trace, net *lte.Trace, cfg sim.Config) (*sim.Result, error) {
	return sim.Run(setup.catalog, user, net, cfg)
}

// Render formats the ablation sweeps.
func (r *AblationsResult) Render() Table {
	t := Table{
		Title:   fmt.Sprintf("Ablations (video %d, trace 2, Ours): controller design-knob sweeps", r.VideoID),
		Columns: []string{"Sweep", "Setting", "Energy (mJ/seg)", "QoE", "Stalls", "Mean fps"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Sweep, row.Setting,
			fmt.Sprintf("%.0f", row.EnergyPerSegment),
			fmt.Sprintf("%.1f", row.QoE),
			fmt.Sprintf("%.1f", row.Stalls),
			fmt.Sprintf("%.1f", row.MeanFrameRate),
		})
	}
	return t
}
