package experiments

import (
	"math"
	"strings"
	"testing"

	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// paperScale runs the paper's 48/40 user split but restricted to two videos
// to keep the test suite fast while preserving the calibrated statistics.
func paperScale() Scale {
	s := FullScale()
	s.Videos = []int{2, 8}
	return s
}

func TestScaleValidate(t *testing.T) {
	if err := FullScale().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickScale().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Scale){
		func(s *Scale) { s.UsersPerVideo = 1 },
		func(s *Scale) { s.TrainUsers = 0 },
		func(s *Scale) { s.TrainUsers = s.UsersPerVideo },
		func(s *Scale) { s.EvalUsers = 0 },
		func(s *Scale) { s.EvalUsers = s.UsersPerVideo },
		func(s *Scale) { s.Videos = nil },
		func(s *Scale) { s.Videos = []int{99} },
		func(s *Scale) { s.TraceSamples = 0 },
	}
	for i, mutate := range muts {
		s := FullScale()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestTable1ReproducesPowerModels(t *testing.T) {
	res, err := Table1(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, phone := range power.Phones() {
		pub, fit := res.Published[phone], res.Fitted[phone]
		if math.Abs(pub.Tx-fit.Tx) > 3 {
			t.Fatalf("%v: Tx fitted %g vs published %g", phone, fit.Tx, pub.Tx)
		}
		for _, scheme := range power.Schemes() {
			p, f := pub.Decode[scheme], fit.Decode[scheme]
			if math.Abs(p.Base-f.Base) > 20 || math.Abs(p.Slope-f.Slope) > 0.8 {
				t.Fatalf("%v/%v: fitted %+v vs published %+v", phone, scheme, f, p)
			}
		}
	}
	tbl := res.Render()
	if len(tbl.Rows) != 3*6 {
		t.Fatalf("Table I render has %d rows, want 18", len(tbl.Rows))
	}
}

func TestTable2ReproducesQoECoefficients(t *testing.T) {
	res, err := Table2(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pearson < 0.97 {
		t.Fatalf("Pearson %g below 0.97 (paper 0.9791)", res.Pearson)
	}
	if math.Abs(res.Fitted.C4-res.Published.C4) > 0.05 {
		t.Fatalf("c4 fitted %g vs published %g", res.Fitted.C4, res.Published.C4)
	}
	if len(res.Render().Rows) != 2 {
		t.Fatal("Table II render should have 2 rows")
	}
}

func TestTable3(t *testing.T) {
	tbl := Table3()
	if len(tbl.Rows) != 8 {
		t.Fatalf("Table III has %d rows, want 8", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "Basketball Match" || tbl.Rows[7][2] != "Freestyle Skiing" {
		t.Fatalf("Table III content wrong: %v", tbl.Rows)
	}
}

func TestFig2aSaving(t *testing.T) {
	res, err := Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports a 35% transmission-energy saving at typical quality;
	// the mean over the ladder should land in a generous band around it.
	saving := 1 - res.Mean
	if saving < 0.30 || saving > 0.70 {
		t.Fatalf("mean Tx saving %.2f outside [0.30, 0.70]", saving)
	}
	// Per-quality ratios reproduce Fig. 8 medians at reference complexity.
	want := map[video.Quality]float64{1: 0.27, 2: 0.35, 3: 0.47, 4: 0.57, 5: 0.62}
	for q, w := range want {
		if math.Abs(res.PerQuality[q]-w) > 0.02 {
			t.Fatalf("q%d ratio %.3f, want %.2f ± 0.02", q, res.PerQuality[q], w)
		}
	}
	if len(res.Render().Rows) != 5 {
		t.Fatal("Fig 2a render should have 5 rows")
	}
}

func TestFig2bSeries(t *testing.T) {
	res, err := Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pool) != 9 {
		t.Fatalf("pool series length %d, want 9", len(res.Pool))
	}
	if math.Abs(res.Pool[0].TimeSec-1.3) > 0.01 || math.Abs(res.Pool[8].TimeSec-0.5) > 0.01 {
		t.Fatalf("decode-time endpoints %g/%g, want 1.3/0.5", res.Pool[0].TimeSec, res.Pool[8].TimeSec)
	}
	if len(res.Render().Rows) != 10 {
		t.Fatal("Fig 2b render should have 10 rows")
	}
}

func TestFig2cSaving(t *testing.T) {
	res, err := Fig2c()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Ptile saves 41% vs the best multi-decoder configuration. Our
	// pipeline model lands in the same band.
	if res.SavingVsBest < 0.30 || res.SavingVsBest > 0.70 {
		t.Fatalf("processing-energy saving %.2f outside [0.30, 0.70]", res.SavingVsBest)
	}
	if res.Normalized[0] >= 1 {
		t.Fatal("Ptile processing energy should be below the 1-decoder baseline")
	}
}

func TestFig4a(t *testing.T) {
	res, err := Fig4a(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVideo) != 2 {
		t.Fatalf("per-video stats for %d videos, want 2", len(res.PerVideo))
	}
	for id, v := range res.PerVideo {
		p, _ := video.ProfileByID(id)
		if math.Abs(v[0]-p.SIMean) > 5 || math.Abs(v[1]-p.TIMean) > 5 {
			t.Fatalf("video %d SI/TI means %v far from profile (%g, %g)", id, v, p.SIMean, p.TIMean)
		}
	}
}

func TestFig4b(t *testing.T) {
	res, err := Fig4b(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Surface) != 15 {
		t.Fatalf("surface has %d samples, want 15", len(res.Surface))
	}
	// Q0 must increase with bitrate within each content row.
	for i := 1; i < len(res.Surface); i++ {
		if res.Surface[i][0] == res.Surface[i-1][0] && res.Surface[i][3] <= res.Surface[i-1][3] {
			t.Fatalf("Q0 not increasing with bitrate at row %d", i)
		}
	}
}

func TestFig5Claim(t *testing.T) {
	scale := paperScale()
	res, err := Fig5(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.FracAbove10 < 0.30 || res.FracAbove10 > 0.55 {
		t.Fatalf("fraction above 10°/s = %.3f, want within [0.30, 0.55] (paper >0.30)", res.FracAbove10)
	}
	if res.Median > 10 {
		t.Fatalf("median speed %.1f should be below 10°/s", res.Median)
	}
	// CDF must be monotone.
	for i := 1; i < len(res.CDF); i++ {
		if res.CDF[i].P < res.CDF[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestFig6Split(t *testing.T) {
	res, err := Fig6(paperScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.UnboundedMaxDiameter <= 45 {
		t.Fatalf("expected an oversized unbounded cluster, max diameter %.1f", res.UnboundedMaxDiameter)
	}
	if res.BoundedMaxDiameter > 45+1e-9 {
		t.Fatalf("Algorithm 1 cluster diameter %.1f exceeds sigma", res.BoundedMaxDiameter)
	}
	if res.BoundedClusters < res.UnboundedClusters {
		t.Fatal("splitting cannot reduce the cluster count")
	}
}

func TestFig7PaperClaims(t *testing.T) {
	res, err := Fig7(paperScale())
	if err != nil {
		t.Fatal(err)
	}
	// Video 2 (focused): ≥95% of segments need one Ptile.
	if d := res.CountDist[2]; d[0] < 0.95 {
		t.Fatalf("video 2: %.2f of segments with one Ptile, want ≥0.95", d[0])
	}
	// Video 8 (exploring): ≥92% need at most two.
	if d := res.CountDist[8]; d[0]+d[1] < 0.92 {
		t.Fatalf("video 8: %.2f of segments with ≤2 Ptiles, want ≥0.92", d[0]+d[1])
	}
	// Coverage: ≥80% of users everywhere (paper Fig. 7b).
	for id, c := range res.Coverage {
		if c < 0.80 {
			t.Fatalf("video %d coverage %.2f below 0.80", id, c)
		}
	}
}

func TestFig8PaperMedians(t *testing.T) {
	res, err := Fig8(paperScale())
	if err != nil {
		t.Fatal(err)
	}
	want := [5]float64{0.27, 0.35, 0.47, 0.57, 0.62}
	for id, med := range res.Medians {
		for i, w := range want {
			// Real Ptiles cover more than the reference nine-tile block and
			// content jitters, so allow a moderate band around the paper's
			// medians.
			if math.Abs(med[i]-w) > 0.10 {
				t.Fatalf("video %d q%d median %.3f, want %.2f ± 0.10", id, i+1, med[i], w)
			}
		}
	}
}

// TestComparisonShape verifies the Figs. 9–11 orderings at the calibrated
// 40-training-user scale on two representative videos.
func TestComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale comparison is slow")
	}
	scale := paperScale()
	scale.EvalUsers = 4
	comp, err := RunComparison(power.Pixel3, scale)
	if err != nil {
		t.Fatal(err)
	}
	for traceID := 1; traceID <= 2; traceID++ {
		ne := comp.NormalizedEnergy(traceID)
		if !(ne[sim.SchemeOurs] < ne[sim.SchemePtile] &&
			ne[sim.SchemePtile] < ne[sim.SchemeNontile] &&
			ne[sim.SchemeNontile] < ne[sim.SchemeFtile] &&
			ne[sim.SchemeFtile] < 1.0) {
			t.Fatalf("trace %d energy ordering broken: %v", traceID, ne)
		}
		nq := comp.NormalizedQoE(traceID)
		if nq[sim.SchemeOurs] <= 1.0 {
			t.Fatalf("trace %d: Ours QoE %.2f not above Ctile", traceID, nq[sim.SchemeOurs])
		}
		if nq[sim.SchemePtile] <= 1.0 {
			t.Fatalf("trace %d: Ptile QoE %.2f not above Ctile", traceID, nq[sim.SchemePtile])
		}
		if nq[sim.SchemeNontile] >= 1.0 {
			t.Fatalf("trace %d: Nontile QoE %.2f should be the worst", traceID, nq[sim.SchemeNontile])
		}
	}
	// Headline: Ours saves a large share of energy (paper 49.7%).
	saving := 1 - comp.NormalizedEnergy(1)[sim.SchemeOurs]
	if saving < 0.25 {
		t.Fatalf("Ours trace-1 energy saving %.2f below 0.25", saving)
	}
	// Renders carry all five schemes.
	for _, tbl := range append(comp.RenderEnergy(), comp.RenderQoE()...) {
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty render: %s", tbl.Title)
		}
	}
}

func TestRunComparisonValidation(t *testing.T) {
	bad := QuickScale()
	bad.Videos = nil
	if _, err := RunComparison(power.Pixel3, bad); err == nil {
		t.Fatal("want error for invalid scale")
	}
}

func TestFig1Snapshot(t *testing.T) {
	res, err := Fig1(8, 30, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.VideoID != 8 || res.Segment != 30 {
		t.Fatalf("snapshot identity: %+v", res)
	}
	if res.Users == 0 {
		t.Fatal("no viewing centers rendered")
	}
	if len(res.Lines) == 0 {
		t.Fatal("no panorama lines rendered")
	}
	// Count the marks: every user must be drawn (possibly overlapping).
	var marks int
	for _, line := range res.Lines {
		marks += strings.Count(line, "@") + strings.Count(line, "o")
	}
	if marks == 0 || marks > res.Users {
		t.Fatalf("marks = %d for %d users", marks, res.Users)
	}
	// With at least one Ptile there must be Ptile interior cells.
	if len(res.Ptiles) > 0 {
		var interior int
		for _, line := range res.Lines {
			interior += strings.Count(line, "#")
		}
		if interior == 0 {
			t.Fatal("Ptile present but no interior rendered")
		}
	}
	tbl := res.Render()
	if len(tbl.Rows) < len(res.Lines) {
		t.Fatal("render dropped lines")
	}
}

func TestFig1Validation(t *testing.T) {
	if _, err := Fig1(8, -1, QuickScale()); err == nil {
		t.Fatal("want error for negative segment")
	}
	if _, err := Fig1(8, 1_000_000, QuickScale()); err == nil {
		t.Fatal("want error for out-of-range segment")
	}
	bad := QuickScale()
	bad.Videos = nil
	if _, err := Fig1(8, 0, bad); err == nil {
		t.Fatal("want error for invalid scale")
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 epsilon + 4 horizon + 3 buffer + 4 estimator + 3 viewport +
	// 2 controller = 19 rows.
	if len(res.Rows) != 19 {
		t.Fatalf("ablation rows = %d, want 19", len(res.Rows))
	}
	var eps0, eps15 *AblationRow
	for i := range res.Rows {
		row := &res.Rows[i]
		if row.EnergyPerSegment <= 0 || row.MeanFrameRate <= 0 {
			t.Fatalf("malformed row: %+v", row)
		}
		if row.Sweep == "epsilon" && row.Setting == "0%" {
			eps0 = row
		}
		if row.Sweep == "epsilon" && row.Setting == "15%" {
			eps15 = row
		}
	}
	if eps0 == nil || eps15 == nil {
		t.Fatal("epsilon sweep rows missing")
	}
	// A larger QoE tolerance must not cost more energy.
	if eps15.EnergyPerSegment > eps0.EnergyPerSegment {
		t.Fatalf("ε=15%% energy %g above ε=0%% %g", eps15.EnergyPerSegment, eps0.EnergyPerSegment)
	}
	// ε=0 pins the full frame rate.
	if eps0.MeanFrameRate < 27 {
		t.Fatalf("ε=0%% mean frame rate %g; reduction should barely engage", eps0.MeanFrameRate)
	}
	if tbl := res.Render(); len(tbl.Rows) != 19 {
		t.Fatal("render row count mismatch")
	}
	// The objective swap: the QoE controller must spend at least as much
	// energy as the energy controller.
	var eMPC, qMPC *AblationRow
	for i := range res.Rows {
		if res.Rows[i].Sweep == "controller" {
			if res.Rows[i].Setting == "energy-mpc" {
				eMPC = &res.Rows[i]
			} else {
				qMPC = &res.Rows[i]
			}
		}
	}
	if eMPC == nil || qMPC == nil {
		t.Fatal("controller sweep rows missing")
	}
	if eMPC.EnergyPerSegment > qMPC.EnergyPerSegment+1 {
		t.Fatalf("energy MPC (%g mJ) spends more than QoE MPC (%g mJ)",
			eMPC.EnergyPerSegment, qMPC.EnergyPerSegment)
	}
}

func TestAblationsValidation(t *testing.T) {
	bad := QuickScale()
	bad.TraceSamples = 0
	if _, err := Ablations(bad); err == nil {
		t.Fatal("want error for invalid scale")
	}
}

func TestPredAccuracy(t *testing.T) {
	res, err := PredAccuracy(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Horizons) != 4 {
		t.Fatalf("horizons = %v", res.Horizons)
	}
	for kind, errs := range res.MeanErr {
		if len(errs) != len(res.Horizons) {
			t.Fatalf("%v: %d error points", kind, len(errs))
		}
		// Error must grow with horizon.
		for i := 1; i < len(errs); i++ {
			if errs[i] < errs[i-1] {
				t.Fatalf("%v: error not increasing with horizon: %v", kind, errs)
			}
		}
		for i, hr := range res.HitRate[kind] {
			if hr < 0 || hr > 1 {
				t.Fatalf("%v horizon %d: hit rate %g", kind, i, hr)
			}
		}
	}
	// Ridge must not be worse than OLS (the paper's stated reason for
	// choosing it).
	ridge := res.MeanErr[0] // ViewportRidge is the zero value
	ols := res.MeanErr[1]
	for i := range ridge {
		if ridge[i] > ols[i]+2 {
			t.Fatalf("ridge error %v notably above OLS %v", ridge, ols)
		}
	}
	if len(res.Render().Rows) != 12 {
		t.Fatal("render should have 12 rows")
	}
}

func TestRobustnessQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed comparison is slow")
	}
	scale := QuickScale()
	res, err := Robustness(scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	for traceID := 1; traceID <= 2; traceID++ {
		e := res.EnergyOurs[traceID]
		if e[0] <= 0 || e[0] >= 1 {
			t.Fatalf("trace %d: mean normalized energy %g outside (0, 1)", traceID, e[0])
		}
		if e[1] < 0 || e[1] > 0.2 {
			t.Fatalf("trace %d: energy std %g implausibly large", traceID, e[1])
		}
	}
	if len(res.Render().Rows) != 2 {
		t.Fatal("render should have 2 rows")
	}
}

func TestRobustnessValidation(t *testing.T) {
	if _, err := Robustness(QuickScale(), 1); err == nil {
		t.Fatal("want error for a single seed")
	}
	bad := QuickScale()
	bad.Videos = nil
	if _, err := Robustness(bad, 2); err == nil {
		t.Fatal("want error for invalid scale")
	}
	if _, err := PredAccuracy(bad); err == nil {
		t.Fatal("want error for invalid scale")
	}
}

func TestProjectionStudy(t *testing.T) {
	res, err := Projection()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoverRows) != 4 || len(res.Oversampling) != 5 {
		t.Fatalf("shapes: %d cover rows, %d oversampling rows", len(res.CoverRows), len(res.Oversampling))
	}
	for _, row := range res.CoverRows {
		if row[1] < 4 || row[1] > 32 || row[2] != 9 {
			t.Fatalf("cover row %v malformed", row)
		}
	}
	// Oversampling grows monotonically toward the pole, starting at 1.
	if res.Oversampling[0][1] != 1 {
		t.Fatalf("equator oversampling %g, want 1", res.Oversampling[0][1])
	}
	for i := 1; i < len(res.Oversampling); i++ {
		if res.Oversampling[i][1] <= res.Oversampling[i-1][1] {
			t.Fatal("oversampling not increasing with pitch")
		}
	}
	if tables := res.Render(); len(tables) != 2 {
		t.Fatal("render should produce 2 tables")
	}
}
