package experiments

import (
	"fmt"
	"sort"

	"ptile360/internal/cluster"
	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/ptile"
	"ptile360/internal/stats"
	"ptile360/internal/video"
)

// Fig4aResult is the SI/TI characterization of the test videos.
type Fig4aResult struct {
	// PerVideo maps video ID → (SI mean, TI mean, SI std, TI std) over its
	// segments.
	PerVideo map[int][4]float64
}

// Fig4a computes per-video SI/TI statistics over the deterministic content
// series (the Fig. 4a scatter).
func Fig4a(scale Scale) (*Fig4aResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	enc := video.DefaultEncoderConfig()
	res := &Fig4aResult{PerVideo: make(map[int][4]float64)}
	for _, id := range scale.Videos {
		p, err := video.ProfileByID(id)
		if err != nil {
			return nil, err
		}
		series, err := p.ContentSeries(p.Segments(1), scale.Seed, enc)
		if err != nil {
			return nil, err
		}
		sis := make([]float64, len(series))
		tis := make([]float64, len(series))
		for i, s := range series {
			sis[i], tis[i] = s.SI, s.TI
		}
		res.PerVideo[id] = [4]float64{stats.Mean(sis), stats.Mean(tis), stats.StdDev(sis), stats.StdDev(tis)}
	}
	return res, nil
}

// Render formats the Fig. 4a statistics.
func (r *Fig4aResult) Render() Table {
	t := Table{
		Title:   "Fig. 4a: spatial and temporal information of the videos",
		Columns: []string{"Video", "SI mean", "SI std", "TI mean", "TI std"},
	}
	ids := make([]int, 0, len(r.PerVideo))
	for id := range r.PerVideo {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		v := r.PerVideo[id]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", id),
			fmt.Sprintf("%.1f", v[0]), fmt.Sprintf("%.1f", v[2]),
			fmt.Sprintf("%.1f", v[1]), fmt.Sprintf("%.1f", v[3]),
		})
	}
	return t
}

// Fig4bResult samples the fitted Q₀ surface (Eq. 3) across bitrates for
// representative content, alongside the fit quality.
type Fig4bResult struct {
	Fit *Table2Result
	// Surface rows: (SI, TI, bitrate, Q0).
	Surface [][4]float64
}

// Fig4b reproduces the Fig. 4b surface: fit the model (as Table II), then
// sample Q₀ over bitrate for low/medium/high-complexity content.
func Fig4b(seed int64) (*Fig4bResult, error) {
	fit, err := Table2(seed)
	if err != nil {
		return nil, err
	}
	res := &Fig4bResult{Fit: fit}
	for _, ct := range [][2]float64{{35, 12}, {50, 25}, {65, 38}} {
		for _, b := range []float64{0.5, 1, 2, 4, 8} {
			q, err := fit.Fitted.Q0(ct[0], ct[1], b)
			if err != nil {
				return nil, err
			}
			res.Surface = append(res.Surface, [4]float64{ct[0], ct[1], b, q})
		}
	}
	return res, nil
}

// Render formats the Fig. 4b surface samples.
func (r *Fig4bResult) Render() Table {
	t := Table{
		Title:   fmt.Sprintf("Fig. 4b: fitted Q0 surface (Pearson r = %.4f; paper 0.9791)", r.Fit.Pearson),
		Columns: []string{"SI", "TI", "Bitrate (Mbps)", "Q0"},
	}
	for _, row := range r.Surface {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", row[0]), fmt.Sprintf("%.0f", row[1]),
			fmt.Sprintf("%.1f", row[2]), fmt.Sprintf("%.1f", row[3]),
		})
	}
	return t
}

// Fig5Result is the view-switching-speed distribution over the dataset.
type Fig5Result struct {
	// CDF holds (speed, cumulative probability) points at round speeds.
	CDF []stats.CDFPoint
	// FracAbove10 is the fraction of samples above 10°/s (paper: >30 %).
	FracAbove10 float64
	// Median is the median speed.
	Median float64
}

// Fig5 computes the Eq. 5 switching-speed distribution over every user and
// video at the given scale.
func Fig5(scale Scale) (*Fig5Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	var speeds []float64
	for _, id := range scale.Videos {
		p, err := video.ProfileByID(id)
		if err != nil {
			return nil, err
		}
		ds, err := datasetFor(p, scale.UsersPerVideo, scale.Seed)
		if err != nil {
			return nil, err
		}
		for _, tr := range ds.Traces {
			speeds = tr.AppendSwitchingSpeeds(speeds)
		}
	}
	med, err := stats.Median(speeds)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		FracAbove10: stats.FractionAbove(speeds, 10),
		Median:      med,
	}
	// Summarize the CDF at round speed thresholds like the published plot.
	for _, s := range []float64{1, 2, 5, 10, 20, 30, 50, 100, 200} {
		res.CDF = append(res.CDF, stats.CDFPoint{Value: s, P: 1 - stats.FractionAbove(speeds, s)})
	}
	return res, nil
}

// Render formats the Fig. 5 distribution.
func (r *Fig5Result) Render() Table {
	t := Table{
		Title: fmt.Sprintf("Fig. 5: view-switching-speed distribution (%.0f%% above 10°/s; paper >30%%; median %.1f°/s)",
			100*r.FracAbove10, r.Median),
		Columns: []string{"Speed (°/s)", "CDF"},
	}
	for _, p := range r.CDF {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", p.Value), fmt.Sprintf("%.3f", p.P)})
	}
	return t
}

// Fig6Result contrasts unbounded density clustering with Algorithm 1 on one
// segment — the Fig. 6 Ptile-split example.
type Fig6Result struct {
	// UnboundedClusters and UnboundedMaxDiameter describe plain density
	// growth (the Fig. 6a oversized cluster).
	UnboundedClusters    int
	UnboundedMaxDiameter float64
	// DBSCANClusters, DBSCANNoise and DBSCANMaxDiameter describe the
	// density-based baseline the paper cites [22].
	DBSCANClusters    int
	DBSCANNoise       int
	DBSCANMaxDiameter float64
	// BoundedClusters and BoundedMaxDiameter describe Algorithm 1.
	BoundedClusters    int
	BoundedMaxDiameter float64
	// Ptiles are the rectangles Algorithm 1 yields.
	Ptiles []geom.Rect
}

// Fig6 runs the split example on a Freestyle-Skiing-like segment: the
// per-segment viewing centers of the training users at the segment where the
// unbounded cluster grows widest.
func Fig6(scale Scale) (*Fig6Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	setup, err := setupVideo(8, scale)
	if err != nil {
		return nil, err
	}
	params := cluster.DefaultParams()
	pcfg, err := ptile.DefaultConfig()
	if err != nil {
		return nil, err
	}

	// Find the segment with the widest unbounded cluster.
	bestSeg, bestDiam := 0, 0.0
	nSeg := setup.profile.Segments(1)
	for seg := 0; seg < nSeg; seg += 5 {
		centers := centersAt(setup.train, seg)
		grown, err := cluster.DensityGrow(centers, params.Delta)
		if err != nil {
			return nil, err
		}
		for _, cl := range grown {
			if d := cluster.Diameter(centers, cl.Members); d > bestDiam {
				bestDiam, bestSeg = d, seg
			}
		}
	}

	centers := centersAt(setup.train, bestSeg)
	grown, err := cluster.DensityGrow(centers, params.Delta)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{UnboundedClusters: len(grown), UnboundedMaxDiameter: 0}
	for _, cl := range grown {
		if d := cluster.Diameter(centers, cl.Members); d > res.UnboundedMaxDiameter {
			res.UnboundedMaxDiameter = d
		}
	}
	dbClusters, dbNoise, err := cluster.DBSCAN(centers, params.Delta, 4)
	if err != nil {
		return nil, err
	}
	res.DBSCANClusters = len(dbClusters)
	res.DBSCANNoise = len(dbNoise)
	for _, cl := range dbClusters {
		if d := cluster.Diameter(centers, cl.Members); d > res.DBSCANMaxDiameter {
			res.DBSCANMaxDiameter = d
		}
	}
	bounded, err := cluster.ViewingCenters(centers, params)
	if err != nil {
		return nil, err
	}
	res.BoundedClusters = len(bounded)
	for _, cl := range bounded {
		if d := cluster.Diameter(centers, cl.Members); d > res.BoundedMaxDiameter {
			res.BoundedMaxDiameter = d
		}
	}
	seg, err := ptile.BuildSegment(centers, pcfg)
	if err != nil {
		return nil, err
	}
	for _, pt := range seg.Ptiles {
		res.Ptiles = append(res.Ptiles, pt.Rect)
	}
	return res, nil
}

func centersAt(traces []*headtrace.Trace, seg int) []geom.Point {
	centers := make([]geom.Point, 0, len(traces))
	for _, tr := range traces {
		if pt, err := tr.ViewingCenter(seg, 1); err == nil {
			centers = append(centers, pt)
		}
	}
	return centers
}

// Render formats the Fig. 6 example.
func (r *Fig6Result) Render() Table {
	t := Table{
		Title:   "Fig. 6: sigma-bounded Ptile construction vs unbounded density growth",
		Columns: []string{"Method", "Clusters", "Max diameter (°)"},
		Rows: [][]string{
			{"Density growth (Fig. 6a)", fmt.Sprintf("%d", r.UnboundedClusters), fmt.Sprintf("%.1f", r.UnboundedMaxDiameter)},
			{fmt.Sprintf("DBSCAN [22] (%d noise pts)", r.DBSCANNoise), fmt.Sprintf("%d", r.DBSCANClusters), fmt.Sprintf("%.1f", r.DBSCANMaxDiameter)},
			{"Algorithm 1 (Fig. 6b)", fmt.Sprintf("%d", r.BoundedClusters), fmt.Sprintf("%.1f", r.BoundedMaxDiameter)},
		},
	}
	for i, rect := range r.Ptiles {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Ptile %d", i+1), "",
			fmt.Sprintf("%gx%g at (%g, %g)", rect.W, rect.H, rect.X0, rect.Y0),
		})
	}
	return t
}

// Fig7Result holds the Ptile construction statistics per video.
type Fig7Result struct {
	// CountDist maps video ID → fraction of segments needing {1, 2, 3, ≥4}
	// Ptiles (index 0 → one Ptile).
	CountDist map[int][4]float64
	// Coverage maps video ID → mean fraction of training users covered.
	Coverage map[int]float64
}

// Fig7 evaluates the Ptile construction over every segment of every video
// at the given scale (Figs. 7a and 7b).
func Fig7(scale Scale) (*Fig7Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &Fig7Result{
		CountDist: make(map[int][4]float64),
		Coverage:  make(map[int]float64),
	}
	for _, id := range scale.Videos {
		setup, err := setupVideo(id, scale)
		if err != nil {
			return nil, err
		}
		var dist [4]float64
		var coverage float64
		nSeg := len(setup.catalog.Ptiles)
		for seg := 0; seg < nSeg; seg++ {
			n := len(setup.catalog.Ptiles[seg])
			switch {
			case n <= 1:
				dist[0]++
			case n == 2:
				dist[1]++
			case n == 3:
				dist[2]++
			default:
				dist[3]++
			}
			coverage += setup.catalog.Coverage[seg]
		}
		for i := range dist {
			dist[i] /= float64(nSeg)
		}
		res.CountDist[id] = dist
		res.Coverage[id] = coverage / float64(nSeg)
	}
	return res, nil
}

// Render formats the Fig. 7 statistics.
func (r *Fig7Result) Render() Table {
	t := Table{
		Title:   "Fig. 7: Ptile counts per segment (a) and user coverage (b)",
		Columns: []string{"Video", "1 Ptile", "2 Ptiles", "3 Ptiles", "4+ Ptiles", "Coverage"},
	}
	ids := make([]int, 0, len(r.CountDist))
	for id := range r.CountDist {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d := r.CountDist[id]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", id),
			fmt.Sprintf("%.0f%%", 100*d[0]), fmt.Sprintf("%.0f%%", 100*d[1]),
			fmt.Sprintf("%.0f%%", 100*d[2]), fmt.Sprintf("%.0f%%", 100*d[3]),
			fmt.Sprintf("%.1f%%", 100*r.Coverage[id]),
		})
	}
	return t
}

// Fig8Result holds the per-quality CDFs of the Ptile/Ctile size ratio.
type Fig8Result struct {
	// Medians maps video ID → per-quality median ratio (index q−1).
	Medians map[int][5]float64
	// CDFs maps video ID → quality → full ratio CDF.
	CDFs map[int]map[video.Quality][]stats.CDFPoint
}

// Fig8 measures, for each segment of the selected videos, the encoded size
// of the largest Ptile against the conventional tiles covering the same
// area, across the quality ladder (paper medians: 62/57/47/35/27 % at
// q = 5..1).
func Fig8(scale Scale) (*Fig8Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	enc := video.DefaultEncoderConfig()
	grid, err := geom.NewGrid(4, 8)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		Medians: make(map[int][5]float64),
		CDFs:    make(map[int]map[video.Quality][]stats.CDFPoint),
	}
	for _, id := range scale.Videos {
		setup, err := setupVideo(id, scale)
		if err != nil {
			return nil, err
		}
		ratios := make(map[video.Quality][]float64)
		for seg, ptiles := range setup.catalog.Ptiles {
			if len(ptiles) == 0 {
				continue
			}
			sc := setup.catalog.Content[seg]
			pt := ptiles[0]
			tiles := grid.CoveringTiles(pt.Rect)
			for q := video.MinQuality; q <= video.MaxQuality; q++ {
				var ctileBits float64
				for _, tid := range tiles {
					b, err := enc.TileBits(video.TileSpec{Rect: grid.TileRect(tid), Quality: q}, 1, sc)
					if err != nil {
						return nil, err
					}
					ctileBits += b
				}
				ptileBits, err := enc.TileBits(video.TileSpec{Rect: pt.Rect, Quality: q, Kind: video.KindPtile}, 1, sc)
				if err != nil {
					return nil, err
				}
				ratios[q] = append(ratios[q], ptileBits/ctileBits)
			}
		}
		var med [5]float64
		cdfs := make(map[video.Quality][]stats.CDFPoint)
		for q := video.MinQuality; q <= video.MaxQuality; q++ {
			m, err := stats.Median(ratios[q])
			if err != nil {
				return nil, err
			}
			med[int(q)-1] = m
			cdf, err := stats.CDF(ratios[q])
			if err != nil {
				return nil, err
			}
			cdfs[q] = cdf
		}
		res.Medians[id] = med
		res.CDFs[id] = cdfs
	}
	return res, nil
}

// Render formats the Fig. 8 medians.
func (r *Fig8Result) Render() Table {
	t := Table{
		Title:   "Fig. 8: median Ptile/Ctile size ratio per quality (paper: 27/35/47/57/62 % at q1..q5)",
		Columns: []string{"Video", "q1", "q2", "q3", "q4", "q5"},
	}
	ids := make([]int, 0, len(r.Medians))
	for id := range r.Medians {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := r.Medians[id]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", id),
			fmt.Sprintf("%.0f%%", 100*m[0]), fmt.Sprintf("%.0f%%", 100*m[1]),
			fmt.Sprintf("%.0f%%", 100*m[2]), fmt.Sprintf("%.0f%%", 100*m[3]),
			fmt.Sprintf("%.0f%%", 100*m[4]),
		})
	}
	return t
}
