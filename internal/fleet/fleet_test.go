package fleet

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/power"
	"ptile360/internal/sim"
	"ptile360/internal/video"
)

// testFixture is a deliberately short synthetic video (24 s, so 24 one-
// second segments) with a small viewer pool: the differential suite runs
// hundreds of full sessions per case, and trajectory equivalence does not
// depend on the video length.
type testFixture struct {
	profile video.Profile
	cat     *sim.Catalog
	eval    []*headtrace.Trace
}

var (
	fixtureOnce  sync.Once
	fixtureCache *testFixture
	fixtureErr   error
)

func fixture(t testing.TB) *testFixture {
	t.Helper()
	fixtureOnce.Do(func() { fixtureCache, fixtureErr = buildFixture() })
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureCache
}

func buildFixture() (*testFixture, error) {
	p, err := video.ProfileByID(2)
	if err != nil {
		return nil, err
	}
	p.DurationSec = 24
	gcfg := headtrace.DefaultGeneratorConfig()
	gcfg.NumUsers = 8
	ds, err := headtrace.Generate(p, gcfg, 42)
	if err != nil {
		return nil, err
	}
	train, eval, err := ds.SplitTrainEval(5, 7)
	if err != nil {
		return nil, err
	}
	ccfg, err := sim.DefaultCatalogConfig()
	if err != nil {
		return nil, err
	}
	cat, err := sim.BuildCatalog(p, train, ccfg)
	if err != nil {
		return nil, err
	}
	return &testFixture{profile: p, cat: cat, eval: eval}, nil
}

// netFor generates a bandwidth trace for one mobility profile and seed,
// long enough to cover any stalled session of the short fixture video.
func netFor(t testing.TB, prof lte.Profile, seed int64) *lte.Trace {
	t.Helper()
	cfg, err := lte.ProfileConfig(prof)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := lte.Generate(120, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// specsFor builds n sessions cycling the eval viewer pool with staggered
// join times (joins at distinct virtual times must not affect the
// session-local trajectory).
func specsFor(fx *testFixture, net *lte.Trace, n int) []SessionSpec {
	specs := make([]SessionSpec, n)
	for i := range specs {
		specs[i] = SessionSpec{
			User:    fx.eval[i%len(fx.eval)],
			Net:     net,
			JoinSec: 0.25 * float64(i%13),
		}
	}
	return specs
}

func simConfig(t testing.TB, scheme sim.Scheme) sim.Config {
	t.Helper()
	cfg, err := sim.DefaultConfig(scheme, power.Pixel3)
	if err != nil {
		t.Fatal(err)
	}
	// Record the full per-segment trace so the differential comparison pins
	// every segment's quality, throughput, stall, and energy — not just the
	// session aggregates.
	cfg.RecordSegments = true
	return cfg
}

// requireSameResult pins two session results bit-identical: DeepEqual over
// the full struct (including the per-segment trace) plus explicit
// Float64bits checks on the headline scalars so a float difference reports
// the exact bit pattern.
func requireSameResult(t *testing.T, label string, got, want *sim.Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got=%v want=%v)", label, got, want)
	}
	pins := []struct {
		name      string
		got, want float64
	}{
		{"QoE.MeanQ", got.QoE.MeanQ, want.QoE.MeanQ},
		{"QoE.StallSec", got.QoE.StallSec, want.QoE.StallSec},
		{"Energy.Tx", got.Energy.Tx, want.Energy.Tx},
		{"Energy.Decode", got.Energy.Decode, want.Energy.Decode},
		{"Energy.Render", got.Energy.Render, want.Energy.Render},
		{"BitsDownloaded", got.BitsDownloaded, want.BitsDownloaded},
	}
	for _, p := range pins {
		if math.Float64bits(p.got) != math.Float64bits(p.want) {
			t.Fatalf("%s: %s differs: got %x (%g) want %x (%g)",
				label, p.name, math.Float64bits(p.got), p.got, math.Float64bits(p.want), p.want)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: results differ beyond pinned scalars:\ngot:  %+v\nwant: %+v", label, got, want)
	}
}

// TestFleetMatchesSim is the differential harness of this package: across
// seeds × scales × mobility (fault) profiles × schemes, every per-session
// trajectory produced by the event-driven engine must be bit-identical to
// the blocking-loop sim.Run under the same inputs.
func TestFleetMatchesSim(t *testing.T) {
	fx := fixture(t)
	cases := []struct {
		scheme   sim.Scheme
		sessions int
		shards   int
		profile  lte.Profile
		seed     int64
	}{
		// The ≤1k headline case at full scale, plus smaller scales covering
		// the remaining seeds, mobility profiles, and controller families
		// (rate-based Ptile/Ctile and the MPC-driven Ours).
		{sim.SchemePtile, 1000, 8, lte.ProfileWalking, 11},
		{sim.SchemePtile, 250, 4, lte.ProfileStationary, 23},
		{sim.SchemePtile, 250, 3, lte.ProfileDriving, 37},
		{sim.SchemeCtile, 120, 5, lte.ProfileStationary, 37},
		{sim.SchemeOurs, 48, 4, lte.ProfileWalking, 11},
		{sim.SchemeOurs, 48, 2, lte.ProfileDriving, 23},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%v/%v/seed=%d/n=%d", tc.scheme, tc.profile, tc.seed, tc.sessions)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			net := netFor(t, tc.profile, tc.seed)
			cfg := simConfig(t, tc.scheme)
			specs := specsFor(fx, net, tc.sessions)
			eng, err := New(Config{
				Catalog:           fx.cat,
				Sim:               cfg,
				Shards:            tc.shards,
				ViewportUpdateSec: 0.5,
			}, specs)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}

			// One blocking-loop reference per distinct viewer (the pool is
			// tiny, every session cycling it must match its viewer's run).
			refs := make(map[*headtrace.Trace]*sim.Result)
			for _, u := range fx.eval {
				ref, err := sim.Run(fx.cat, u, net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				refs[u] = ref
			}
			results := eng.Results()
			for i, spec := range specs {
				requireSameResult(t, fmt.Sprintf("session %d", i), results[i], refs[spec.User])
			}

			led := eng.Ledger()
			if led.Joined != tc.sessions || led.Finished != tc.sessions || led.Active != 0 {
				t.Fatalf("ledger session counts off: %+v", led)
			}
			wantSegs := 0
			wantStallSec := 0.0
			for _, spec := range specs {
				wantSegs += refs[spec.User].Segments
				wantStallSec += refs[spec.User].QoE.StallSec
			}
			if led.Segments != wantSegs {
				t.Fatalf("ledger counted %d segments, references streamed %d", led.Segments, wantSegs)
			}
			if math.Abs(led.StallSec-wantStallSec) > 1e-9*(1+wantStallSec) {
				t.Fatalf("ledger stall time %g, references %g", led.StallSec, wantStallSec)
			}
			if led.EventsByKind[KindJoin] != tc.sessions || led.EventsByKind[KindLeave] != tc.sessions {
				t.Fatalf("event counts off: %+v", led.EventsByKind)
			}
			if led.EventsByKind[KindSegmentComplete] != wantSegs {
				t.Fatalf("segment-complete events %d, want %d", led.EventsByKind[KindSegmentComplete], wantSegs)
			}
		})
	}
}

// TestFleetDeterministicAcrossWorkers pins the whole engine output —
// per-session results and the ledger, floats included — identical between a
// serial advance (workers=1) and the full worker pool: shards are
// independent and the roll-up order is fixed, so worker scheduling must not
// leak into a single bit.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	fx := fixture(t)
	net := netFor(t, lte.ProfileWalking, 5)
	cfg := simConfig(t, sim.SchemePtile)
	run := func(workers int) (*Engine, Ledger) {
		t.Helper()
		eng, err := New(Config{
			Catalog:           fx.cat,
			Sim:               cfg,
			Shards:            8,
			Workers:           workers,
			ViewportUpdateSec: 0.5,
		}, specsFor(fx, net, 400))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng, eng.Ledger()
	}
	serial, serialLed := run(1)
	pooled, pooledLed := run(8)
	if !reflect.DeepEqual(serialLed, pooledLed) {
		t.Fatalf("ledger depends on worker count:\nworkers=1: %+v\nworkers=8: %+v", serialLed, pooledLed)
	}
	for i := range serial.Results() {
		requireSameResult(t, fmt.Sprintf("session %d", i), pooled.Results()[i], serial.Results()[i])
	}
}

// TestFleetShardCountInvariant checks per-session trajectories are
// independent of how sessions are distributed over shards. (The ledger's
// float sums legitimately reassociate across shard counts, so only results
// and integer ledger fields are pinned.)
func TestFleetShardCountInvariant(t *testing.T) {
	fx := fixture(t)
	net := netFor(t, lte.ProfileDriving, 9)
	cfg := simConfig(t, sim.SchemePtile)
	run := func(shards int) *Engine {
		t.Helper()
		eng, err := New(Config{Catalog: fx.cat, Sim: cfg, Shards: shards}, specsFor(fx, net, 200))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	one := run(1)
	many := run(5)
	for i := range one.Results() {
		requireSameResult(t, fmt.Sprintf("session %d", i), many.Results()[i], one.Results()[i])
	}
	l1, l5 := one.Ledger(), many.Ledger()
	l1.StallSec, l5.StallSec = 0, 0
	l1.EnergyMJ, l5.EnergyMJ = 0, 0
	l1.QoESum, l5.QoESum = 0, 0
	l1.Bits, l5.Bits = 0, 0
	// The batched planner groups per shard, so its leader/replay decomposition
	// legitimately shifts with the shard count (the work shared changes; the
	// results do not — pinned above). Only the step total is invariant.
	if s1, s5 := l1.BatchLeaders+l1.BatchReplays+l1.BatchFallbacks,
		l5.BatchLeaders+l5.BatchReplays+l5.BatchFallbacks; s1 != s5 {
		t.Fatalf("batched step total depends on shard count: %d vs %d", s1, s5)
	}
	l1.BatchLeaders, l5.BatchLeaders = 0, 0
	l1.BatchReplays, l5.BatchReplays = 0, 0
	if !reflect.DeepEqual(l1, l5) {
		t.Fatalf("integer ledger depends on shard count:\nshards=1: %+v\nshards=5: %+v", l1, l5)
	}
}

// TestFleetTruncatedSessions checks early leave: a session that leaves after
// k segments must have streamed exactly the first k segments of its full
// blocking-loop trajectory, bit for bit.
func TestFleetTruncatedSessions(t *testing.T) {
	fx := fixture(t)
	net := netFor(t, lte.ProfileWalking, 3)
	cfg := simConfig(t, sim.SchemePtile)
	const k = 7
	specs := specsFor(fx, net, 30)
	for i := range specs {
		specs[i].LeaveAfterSegments = k
	}
	eng, err := New(Config{Catalog: fx.cat, Sim: cfg, Shards: 3}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	refs := make(map[*headtrace.Trace]*sim.Result)
	for _, u := range fx.eval {
		ref, err := sim.Run(fx.cat, u, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs[u] = ref
	}
	for i, spec := range specs {
		got := eng.Results()[i]
		if got == nil {
			t.Fatalf("session %d has no result", i)
		}
		if got.Segments != k {
			t.Fatalf("session %d streamed %d segments, want %d", i, got.Segments, k)
		}
		if !reflect.DeepEqual(got.PerSegment, refs[spec.User].PerSegment[:k]) {
			t.Fatalf("session %d: truncated trajectory is not a prefix of the full run", i)
		}
	}
}

// TestFleetGoroutinesOShards is the goroutine-count regression: advancing a
// fleet must cost O(shards) goroutines, never O(sessions). A
// goroutine-per-session engine would trip this by four orders of magnitude.
func TestFleetGoroutinesOShards(t *testing.T) {
	fx := fixture(t)
	net := netFor(t, lte.ProfileStationary, 1)
	cfg := simConfig(t, sim.SchemePtile)
	cfg.RecordSegments = false
	const sessions, shards, workers = 20000, 8, 4
	specs := specsFor(fx, net, sessions)
	for i := range specs {
		specs[i].LeaveAfterSegments = 1
	}
	eng, err := New(Config{Catalog: fx.cat, Sim: cfg, Shards: shards, Workers: workers}, specs)
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// base + the sampler + at most `workers` shard goroutines + slack for
	// runtime helpers.
	limit := int64(base + 1 + workers + 16)
	if got := peak.Load(); got > limit {
		t.Fatalf("fleet advance used %d goroutines for %d sessions (limit %d): scheduling is not O(shards)",
			got, sessions, limit)
	}
	if led := eng.Ledger(); led.Finished != sessions {
		t.Fatalf("finished %d of %d sessions", led.Finished, sessions)
	}
}

// TestFleetMetricsMatchLedger checks the published obs counters equal the
// ledger exactly after a run (publish writes deltas, so the final scrape is
// the final ledger).
func TestFleetMetricsMatchLedger(t *testing.T) {
	fx := fixture(t)
	net := netFor(t, lte.ProfileWalking, 13)
	cfg := simConfig(t, sim.SchemePtile)
	cfg.RecordSegments = false
	eng, err := New(Config{Catalog: fx.cat, Sim: cfg, Shards: 4, ViewportUpdateSec: 1}, specsFor(fx, net, 60))
	if err != nil {
		t.Fatal(err)
	}
	// Advance in small horizons so publish runs repeatedly mid-flight.
	for until := 2.0; ; until += 2 {
		if err := eng.Advance(until); err != nil {
			t.Fatal(err)
		}
		if _, ok := eng.NextEventTime(); !ok {
			break
		}
	}
	led := eng.Ledger()
	if led.Finished != 60 {
		t.Fatalf("fleet did not drain: %+v", led)
	}
	if got := eng.met.segments.Value(); got != float64(led.Segments) {
		t.Fatalf("segments counter %g != ledger %d", got, led.Segments)
	}
	if got := eng.met.stallSec.Value(); math.Abs(got-led.StallSec) > 1e-9 {
		t.Fatalf("stall counter %g != ledger %g", got, led.StallSec)
	}
	if got := eng.met.active.Value(); got != 0 {
		t.Fatalf("active gauge %g after drain", got)
	}
	for k, c := range eng.met.events {
		if got := c.Value(); got != float64(led.EventsByKind[k]) {
			t.Fatalf("%v events counter %g != ledger %d", Kind(k), got, led.EventsByKind[k])
		}
	}
}
