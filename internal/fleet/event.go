// Package fleet advances large populations of streaming sessions on a
// virtual clock. Instead of one blocking goroutine per viewer (which tops
// out far below the ROADMAP's million-session target), each session is a
// compact sim.State advanced one segment at a time by events popped from a
// per-shard binary heap; scheduling stays O(shards) goroutines regardless
// of the session count. The engine reuses the sim planners, lte bandwidth
// traces, and geom FoV LUT through one sim.Stepper per shard, and its
// per-session trajectories are bit-identical to the blocking sim.Run path
// (see the differential tests).
package fleet

// Kind discriminates virtual-clock events.
type Kind uint8

// Event kinds.
const (
	// KindJoin starts a session: the first segment request is issued at the
	// event's time.
	KindJoin Kind = iota
	// KindSegmentComplete fires when a segment download finishes; the
	// session accounts the segment and issues the next request.
	KindSegmentComplete
	// KindStallResume fires when playback resumes after a rebuffering stall
	// (the moment the blocking download delivers the segment).
	KindStallResume
	// KindViewportUpdate is the periodic head-pose refresh tick; it is
	// accounting-only (the planners read the head trace directly, so the
	// tick cannot perturb the trajectory) and is cancelled on leave.
	KindViewportUpdate
	// KindLeave retires a session and settles its accounting.
	KindLeave
)

// String names the kind for logs and metrics labels.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindSegmentComplete:
		return "segment_complete"
	case KindStallResume:
		return "stall_resume"
	case KindViewportUpdate:
		return "viewport_update"
	case KindLeave:
		return "leave"
	}
	return "unknown"
}

// Event is one scheduled occurrence on a shard's virtual clock.
type Event struct {
	// Time is the virtual timestamp in seconds.
	Time float64
	// Kind is the event type.
	Kind Kind
	// Session is the engine-global session index the event belongs to.
	Session int
	id      uint64
}

// ID is a cancellation handle returned by Heap.PushCancellable. The zero ID
// is never issued, so it can mean "no outstanding event".
type ID uint64

// Heap is a min-heap of events ordered by (Time, insertion order). Ties on
// Time pop in push order, so event processing is deterministic and FIFO at
// equal timestamps. Cancellation is lazy: cancelled IDs are dropped on Pop,
// which keeps Cancel O(1) without sifting. Heap is not safe for concurrent
// use; each shard owns one.
//
// Most fleet events (joins, segment completions, stalls, leaves) are never
// cancelled, so the bookkeeping that makes cancellation possible is opt-in:
// Push schedules an uncancellable event with no per-event map traffic, and
// only PushCancellable (viewport ticks, which leave cancels) pays for a
// pending-set entry.
type Heap struct {
	events    []Event
	cancelled map[ID]struct{}
	pending   map[ID]struct{}
	nextID    uint64
	live      int
}

// Reserve grows the heap's backing array to hold at least n events without
// reallocating. Growing a fleet-sized heap by append-doubling memmoves tens
// of megabytes; the engine knows the steady-state bound up front.
func (h *Heap) Reserve(n int) {
	if cap(h.events) >= n {
		return
	}
	events := make([]Event, len(h.events), n)
	copy(events, h.events)
	h.events = events
}

// Push schedules an event that will never be cancelled. This is the hot
// path: no cancellation bookkeeping is recorded, so Cancel does not work on
// these events (it returns false).
func (h *Heap) Push(t float64, kind Kind, session int) {
	h.nextID++
	ev := Event{Time: t, Kind: kind, Session: session, id: h.nextID}
	h.events = append(h.events, ev)
	h.up(len(h.events) - 1)
	h.live++
}

// PushCancellable schedules an event and returns its cancellation handle.
func (h *Heap) PushCancellable(t float64, kind Kind, session int) ID {
	h.Push(t, kind, session)
	if h.pending == nil {
		h.pending = make(map[ID]struct{})
	}
	h.pending[ID(h.nextID)] = struct{}{}
	return ID(h.nextID)
}

// Cancel removes a scheduled event by handle. It reports whether the handle
// named a still-pending cancellable event; cancelling twice, or cancelling
// an event already popped, returns false.
func (h *Heap) Cancel(id ID) bool {
	if _, ok := h.pending[id]; !ok {
		return false
	}
	delete(h.pending, id)
	if h.cancelled == nil {
		h.cancelled = make(map[ID]struct{})
	}
	h.cancelled[id] = struct{}{}
	h.live--
	return true
}

// Len returns the number of live (scheduled, not cancelled) events.
func (h *Heap) Len() int { return h.live }

// PeekTime returns the timestamp of the earliest live event.
func (h *Heap) PeekTime() (float64, bool) {
	ev, ok := h.Peek()
	return ev.Time, ok
}

// Peek returns the earliest live event without removing it.
func (h *Heap) Peek() (Event, bool) {
	for len(h.events) > 0 {
		if len(h.cancelled) > 0 {
			if _, dead := h.cancelled[ID(h.events[0].id)]; dead {
				delete(h.cancelled, ID(h.events[0].id))
				h.drop()
				continue
			}
		}
		return h.events[0], true
	}
	return Event{}, false
}

// Pop removes and returns the earliest live event.
func (h *Heap) Pop() (Event, bool) {
	for len(h.events) > 0 {
		ev := h.events[0]
		h.drop()
		if len(h.cancelled) > 0 {
			if _, dead := h.cancelled[ID(ev.id)]; dead {
				delete(h.cancelled, ID(ev.id))
				continue
			}
		}
		if len(h.pending) > 0 {
			delete(h.pending, ID(ev.id))
		}
		h.live--
		return ev, true
	}
	return Event{}, false
}

// drop removes the root element.
func (h *Heap) drop() {
	n := len(h.events) - 1
	h.events[0] = h.events[n]
	h.events[n] = Event{}
	h.events = h.events[:n]
	if n > 0 {
		h.down(0)
	}
}

// less orders by (Time, id): id is the strictly increasing push sequence.
func (h *Heap) less(i, j int) bool {
	if h.events[i].Time != h.events[j].Time {
		return h.events[i].Time < h.events[j].Time
	}
	return h.events[i].id < h.events[j].id
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.events[i], h.events[parent] = h.events[parent], h.events[i]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.events)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.events[i], h.events[min] = h.events[min], h.events[i]
		i = min
	}
}
