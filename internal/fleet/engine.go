package fleet

import (
	"fmt"
	"math"

	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/obs"
	"ptile360/internal/parallel"
	"ptile360/internal/sim"
)

// SessionSpec describes one viewer the engine should simulate. Traces may be
// shared freely between specs (and with other engines): both trace types are
// read-only or internally locked, and per-session mutable state lives in the
// sim.State the engine creates at join time.
type SessionSpec struct {
	// User is the head-movement trace.
	User *headtrace.Trace
	// Net is the bandwidth trace.
	Net *lte.Trace
	// JoinSec is the virtual time at which the session joins the fleet.
	JoinSec float64
	// LeaveAfterSegments truncates the session after this many segments;
	// zero streams the whole catalogue.
	LeaveAfterSegments int
}

// Config tunes the fleet engine.
type Config struct {
	// Catalog is the encoded-video catalogue every session streams.
	Catalog *sim.Catalog
	// Sim is the per-session streaming configuration (scheme, phone, MPC
	// settings) shared by the whole fleet.
	Sim sim.Config
	// Shards is the number of independent event queues. Each shard owns a
	// private sim.Stepper (plan scratch, controllers) and is advanced by at
	// most one goroutine, so Shards bounds both parallelism and the number
	// of copies of the planning scratch.
	Shards int
	// Workers caps the goroutines advancing shards (0 = min(Shards,
	// GOMAXPROCS)). Scheduling cost is O(Shards) goroutines at most,
	// independent of the session count.
	Workers int
	// ViewportUpdateSec > 0 schedules a periodic per-session head-pose
	// refresh event. The tick is accounting-only — the planners read the
	// head trace directly — so it exercises the event queue (and its
	// cancellation path on leave) without perturbing trajectories.
	ViewportUpdateSec float64
	// Registry receives the fleet metrics; nil creates a private registry.
	Registry *obs.Registry
}

// Ledger is the fleet-wide accounting roll-up. Integer fields are exact;
// float fields are summed per shard in event order and then across shards
// in shard order, so they are deterministic for a fixed shard count
// regardless of worker count.
type Ledger struct {
	// Joined, Finished, Active count sessions; Active = Joined − Finished.
	Joined, Finished, Active int
	// Segments counts completed segment downloads fleet-wide.
	Segments int
	// Stalls and StallSec count rebuffering events and their total duration.
	Stalls   int
	StallSec float64
	// EnergyMJ, QoESum, and Bits accumulate finished sessions' energy
	// totals, session mean QoE, and downloaded bits.
	EnergyMJ float64
	QoESum   float64
	Bits     float64
	// Emergencies counts finished sessions' emergency controller decisions.
	Emergencies int
	// ViewportUpdates counts head-pose refresh ticks.
	ViewportUpdates int
	// Events counts every processed event; EventsByKind splits it by Kind.
	Events       int
	EventsByKind [5]int
}

// add folds another ledger in (shard roll-up).
func (l *Ledger) add(o Ledger) {
	l.Joined += o.Joined
	l.Finished += o.Finished
	l.Segments += o.Segments
	l.Stalls += o.Stalls
	l.StallSec += o.StallSec
	l.EnergyMJ += o.EnergyMJ
	l.QoESum += o.QoESum
	l.Bits += o.Bits
	l.Emergencies += o.Emergencies
	l.ViewportUpdates += o.ViewportUpdates
	l.Events += o.Events
	for k := range l.EventsByKind {
		l.EventsByKind[k] += o.EventsByKind[k]
	}
}

// shard is one independent event queue plus the structure-of-arrays state
// columns for the sessions it owns (global session i lives on shard
// i % Shards at local slot i / Shards). A shard is advanced by at most one
// goroutine at a time; its stepper and heap are never shared.
type shard struct {
	eng     *Engine
	stepper *sim.Stepper
	heap    Heap
	clock   float64

	// Per-slot columns. states is nil before join and after leave, so a
	// retired session costs one pointer.
	global  []int
	states  []*sim.State
	pending []sim.StepInfo
	vpEvent []ID
	leave   []int32

	led Ledger
	err error
}

// Engine advances a fleet of sessions on per-shard virtual clocks.
type Engine struct {
	cfg     Config
	specs   []SessionSpec
	shards  []*shard
	results []*sim.Result
	reg     *obs.Registry
	met     fleetMetrics
	pub     Ledger
}

// fleetMetrics are the obs series the engine publishes after every Advance.
type fleetMetrics struct {
	active    *obs.Gauge
	clock     *obs.Gauge
	joined    *obs.Counter
	finished  *obs.Counter
	segments  *obs.Counter
	stalls    *obs.Counter
	stallSec  *obs.Counter
	energyMJ  *obs.Counter
	bits      *obs.Counter
	events    [5]*obs.Counter
	shardsG   *obs.Gauge
	sessionsG *obs.Gauge
}

// New builds an engine over the given session population. Construction is
// cheap per session (join events only); per-session state is allocated when
// the join event fires.
func New(cfg Config, specs []SessionSpec) (*Engine, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("fleet: need at least one shard, got %d", cfg.Shards)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: no sessions")
	}
	if cfg.ViewportUpdateSec < 0 {
		return nil, fmt.Errorf("fleet: negative viewport update interval %g", cfg.ViewportUpdateSec)
	}
	for i, spec := range specs {
		if spec.JoinSec < 0 {
			return nil, fmt.Errorf("fleet: session %d joins at negative time %g", i, spec.JoinSec)
		}
		if spec.LeaveAfterSegments < 0 {
			return nil, fmt.Errorf("fleet: session %d has negative leave count", i)
		}
	}
	if cfg.Shards > len(specs) {
		cfg.Shards = len(specs)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:     cfg,
		specs:   specs,
		shards:  make([]*shard, cfg.Shards),
		results: make([]*sim.Result, len(specs)),
		reg:     reg,
	}
	e.registerMetrics()
	for si := range e.shards {
		// One stepper per shard: steppers carry mutable planning scratch and
		// must not be shared, but every copy is built from the same
		// (catalogue, config) pair so the math is identical on any shard.
		stepper, err := sim.NewStepper(cfg.Catalog, cfg.Sim)
		if err != nil {
			return nil, err
		}
		n := (len(specs) - si + cfg.Shards - 1) / cfg.Shards
		sh := &shard{
			eng:     e,
			stepper: stepper,
			global:  make([]int, n),
			states:  make([]*sim.State, n),
			pending: make([]sim.StepInfo, n),
			vpEvent: make([]ID, n),
			leave:   make([]int32, n),
		}
		e.shards[si] = sh
	}
	for i, spec := range specs {
		sh := e.shards[i%cfg.Shards]
		slot := i / cfg.Shards
		sh.global[slot] = i
		sh.leave[slot] = int32(spec.LeaveAfterSegments)
		sh.heap.Push(spec.JoinSec, KindJoin, i)
	}
	return e, nil
}

func (e *Engine) registerMetrics() {
	m := &e.met
	m.active = e.reg.Gauge("fleet_sessions_active", "Sessions currently streaming.")
	m.clock = e.reg.Gauge("fleet_clock_seconds", "Lowest pending virtual timestamp across shards.")
	m.joined = e.reg.Counter("fleet_sessions_joined_total", "Sessions that have joined.")
	m.finished = e.reg.Counter("fleet_sessions_finished_total", "Sessions that have left.")
	m.segments = e.reg.Counter("fleet_segments_total", "Segment downloads completed fleet-wide.")
	m.stalls = e.reg.Counter("fleet_stalls_total", "Rebuffering stalls fleet-wide.")
	m.stallSec = e.reg.Counter("fleet_stall_seconds_total", "Total rebuffering time fleet-wide.")
	m.energyMJ = e.reg.Counter("fleet_energy_mj_total", "Energy of finished sessions (mJ).")
	m.bits = e.reg.Counter("fleet_bits_downloaded_total", "Bits downloaded by finished sessions.")
	for k := range m.events {
		m.events[k] = e.reg.Counter("fleet_events_total", "Virtual-clock events processed.",
			obs.L("kind", Kind(k).String()))
	}
	m.shardsG = e.reg.Gauge("fleet_shards", "Configured shard count.")
	m.sessionsG = e.reg.Gauge("fleet_sessions_total", "Configured session count.")
}

// Registry returns the registry carrying the fleet metrics.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Sessions returns the configured session count.
func (e *Engine) Sessions() int { return len(e.specs) }

// Advance processes every event with timestamp ≤ until on all shards, using
// at most Workers goroutines (never more than one per shard), then
// publishes the aggregate ledger to the metrics registry. It must not be
// called concurrently with itself or with Ledger/Results.
func (e *Engine) Advance(until float64) error {
	err := parallel.ForEach(len(e.shards), e.workers(), func(si int) error {
		return e.shards[si].advance(until)
	})
	e.publish()
	return err
}

// Run advances until every shard's event queue is empty.
func (e *Engine) Run() error { return e.Advance(math.Inf(1)) }

func (e *Engine) workers() int {
	w := e.cfg.Workers
	if w <= 0 || w > len(e.shards) {
		w = len(e.shards)
	}
	return w
}

// NextEventTime returns the earliest pending virtual timestamp across
// shards, or false when the fleet has fully drained.
func (e *Engine) NextEventTime() (float64, bool) {
	t, ok := math.Inf(1), false
	for _, sh := range e.shards {
		if st, sok := sh.heap.PeekTime(); sok && st < t {
			t, ok = st, true
		}
	}
	return t, ok
}

// Ledger aggregates the per-shard ledgers in shard order.
func (e *Engine) Ledger() Ledger {
	var l Ledger
	for _, sh := range e.shards {
		l.add(sh.led)
	}
	l.Active = l.Joined - l.Finished
	return l
}

// Results returns the per-session results in spec order. Sessions that have
// not yet left are nil.
func (e *Engine) Results() []*sim.Result { return e.results }

// publish pushes the aggregate ledger into the obs registry. Counters
// receive the delta since the last publish, so scraped values equal the
// ledger exactly between Advance calls.
func (e *Engine) publish() {
	l := e.Ledger()
	m := &e.met
	m.active.Set(float64(l.Active))
	if t, ok := e.NextEventTime(); ok {
		m.clock.Set(t)
	}
	m.joined.Add(float64(l.Joined - e.pub.Joined))
	m.finished.Add(float64(l.Finished - e.pub.Finished))
	m.segments.Add(float64(l.Segments - e.pub.Segments))
	m.stalls.Add(float64(l.Stalls - e.pub.Stalls))
	m.stallSec.Add(l.StallSec - e.pub.StallSec)
	m.energyMJ.Add(l.EnergyMJ - e.pub.EnergyMJ)
	m.bits.Add(l.Bits - e.pub.Bits)
	for k := range m.events {
		m.events[k].Add(float64(l.EventsByKind[k] - e.pub.EventsByKind[k]))
	}
	m.shardsG.Set(float64(len(e.shards)))
	m.sessionsG.Set(float64(len(e.specs)))
	e.pub = l
}

// advance drains the shard's queue up to the time horizon.
func (sh *shard) advance(until float64) error {
	if sh.err != nil {
		return sh.err
	}
	for {
		t, ok := sh.heap.PeekTime()
		if !ok || t > until {
			return nil
		}
		ev, _ := sh.heap.Pop()
		sh.clock = ev.Time
		sh.led.Events++
		sh.led.EventsByKind[ev.Kind]++
		if err := sh.handle(ev); err != nil {
			sh.err = fmt.Errorf("fleet: session %d (%s at t=%.3f): %w", ev.Session, ev.Kind, ev.Time, err)
			return sh.err
		}
	}
}

func (sh *shard) slot(session int) int { return session / len(sh.eng.shards) }

func (sh *shard) handle(ev Event) error {
	slot := sh.slot(ev.Session)
	switch ev.Kind {
	case KindJoin:
		spec := sh.eng.specs[ev.Session]
		state, err := sh.stepper.NewState(spec.User, spec.Net)
		if err != nil {
			return err
		}
		sh.states[slot] = state
		sh.led.Joined++
		if vp := sh.eng.cfg.ViewportUpdateSec; vp > 0 {
			sh.vpEvent[slot] = sh.heap.Push(ev.Time+vp, KindViewportUpdate, ev.Session)
		}
		return sh.stepOnce(ev.Time, slot, ev.Session)

	case KindSegmentComplete:
		sh.led.Segments++
		info := sh.pending[slot]
		state := sh.states[slot]
		if info.Done || (sh.leave[slot] > 0 && state.Segments() >= int(sh.leave[slot])) {
			sh.heap.Push(ev.Time, KindLeave, ev.Session)
			return nil
		}
		return sh.stepOnce(ev.Time, slot, ev.Session)

	case KindStallResume:
		sh.led.Stalls++
		sh.led.StallSec += sh.pending[slot].StallSec
		return nil

	case KindViewportUpdate:
		if sh.states[slot] == nil {
			return nil
		}
		sh.led.ViewportUpdates++
		sh.vpEvent[slot] = sh.heap.Push(ev.Time+sh.eng.cfg.ViewportUpdateSec, KindViewportUpdate, ev.Session)
		return nil

	case KindLeave:
		res, err := sh.stepper.Finish(sh.states[slot])
		if err != nil {
			return err
		}
		// Distinct indices per session: shards never write the same slot.
		sh.eng.results[ev.Session] = res
		sh.led.Finished++
		sh.led.EnergyMJ += res.Energy.Total()
		sh.led.QoESum += res.QoE.MeanQ
		sh.led.Bits += res.BitsDownloaded
		sh.led.Emergencies += res.Emergencies
		if sh.vpEvent[slot] != 0 {
			sh.heap.Cancel(sh.vpEvent[slot])
			sh.vpEvent[slot] = 0
		}
		sh.states[slot] = nil
		return nil
	}
	return fmt.Errorf("unknown event kind %d", ev.Kind)
}

// stepOnce advances one session by one segment and schedules its
// completion. The stall-resume event (playback restarting the instant the
// blocking download delivers) is pushed first so it pops before the
// completion event at the shared timestamp.
func (sh *shard) stepOnce(now float64, slot, session int) error {
	info, err := sh.stepper.Step(sh.states[slot])
	if err != nil {
		return err
	}
	sh.pending[slot] = info
	done := now + info.WaitSec + info.DownloadSec
	if info.StallSec > 0 {
		sh.heap.Push(done, KindStallResume, session)
	}
	sh.heap.Push(done, KindSegmentComplete, session)
	return nil
}
