package fleet

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"ptile360/internal/geom"
	"ptile360/internal/headtrace"
	"ptile360/internal/lte"
	"ptile360/internal/obs"
	"ptile360/internal/parallel"
	"ptile360/internal/sim"
)

// SessionSpec describes one viewer the engine should simulate. Traces may be
// shared freely between specs (and with other engines): both trace types are
// read-only or internally locked, and per-session mutable state lives in the
// sim.State the engine creates at join time.
type SessionSpec struct {
	// User is the head-movement trace.
	User *headtrace.Trace
	// Net is the bandwidth trace.
	Net *lte.Trace
	// JoinSec is the virtual time at which the session joins the fleet.
	JoinSec float64
	// LeaveAfterSegments truncates the session after this many segments;
	// zero streams the whole catalogue.
	LeaveAfterSegments int
}

// PlannerMode selects how a shard plans the sessions that fire at one
// virtual instant.
type PlannerMode int

// Planner modes.
const (
	// PlannerBatched (default) pops each run of same-timestamp decision
	// events as one batch and plans it with sim.StepBatch: sessions in
	// bit-identical residual state share one controller solve. Results are
	// bit-identical to PlannerScalar (see TestBatchedPlannerMatchesScalar).
	PlannerBatched PlannerMode = iota
	// PlannerScalar plans every session independently — the reference path.
	PlannerScalar
)

// String names the mode for logs and flags.
func (m PlannerMode) String() string {
	switch m {
	case PlannerBatched:
		return "batched"
	case PlannerScalar:
		return "scalar"
	}
	return fmt.Sprintf("PlannerMode(%d)", int(m))
}

// ParsePlanner maps a flag string to a PlannerMode.
func ParsePlanner(s string) (PlannerMode, error) {
	switch s {
	case "batched":
		return PlannerBatched, nil
	case "scalar":
		return PlannerScalar, nil
	}
	return 0, fmt.Errorf("fleet: unknown planner %q (want batched or scalar)", s)
}

// Config tunes the fleet engine.
type Config struct {
	// Catalog is the encoded-video catalogue every session streams.
	Catalog *sim.Catalog
	// Sim is the per-session streaming configuration (scheme, phone, MPC
	// settings) shared by the whole fleet.
	Sim sim.Config
	// Shards is the number of independent event queues. Each shard owns a
	// private sim.Stepper (plan scratch, controllers) and is advanced by at
	// most one goroutine, so Shards bounds both parallelism and the number
	// of copies of the planning scratch.
	Shards int
	// Workers caps the goroutines advancing shards (0 = min(Shards,
	// GOMAXPROCS)). Scheduling cost is O(Shards) goroutines at most,
	// independent of the session count.
	Workers int
	// ViewportUpdateSec > 0 schedules a periodic per-session head-pose
	// refresh event. The tick is accounting-only — the planners read the
	// head trace directly — so it exercises the event queue (and its
	// cancellation path on leave) without perturbing trajectories.
	ViewportUpdateSec float64
	// Registry receives the fleet metrics; nil creates a private registry.
	Registry *obs.Registry
	// Planner selects batched (default) or per-session scalar planning.
	Planner PlannerMode
	// BatchNoQuant disables the quantized bucket hash in the batched
	// planner's grouping (sim.BatchOptions.NoQuant). Diagnostic only:
	// results are identical either way.
	BatchNoQuant bool
	// ViewportSink, when set, receives one viewport report per completed
	// segment download: the session's trace viewing center for the segment
	// it just finished. This is the fleet-side feed of the online Ptile
	// pipeline (ptilelive.Pipeline.Ingest). Shards invoke it concurrently,
	// so the sink must be safe for concurrent use; it runs inline on the
	// event loop and must be cheap. Simulation results are unaffected.
	ViewportSink func(session, segment int, center geom.Point)
	// Flight, when set, black-boxes 1-in-SampleEvery sessions (the
	// recorder's SessionN gate): join/download/stall/leave events land in
	// per-session rings that dump on anomaly triggers. Unsampled sessions
	// and nil recorders cost one nil check per event, preserving the
	// steady-state allocation budget.
	Flight *obs.FlightRecorder
}

// Ledger is the fleet-wide accounting roll-up. Integer fields are exact;
// float fields are summed per shard in event order and then across shards
// in shard order, so they are deterministic for a fixed shard count
// regardless of worker count.
type Ledger struct {
	// Joined, Finished, Active count sessions; Active = Joined − Finished.
	Joined, Finished, Active int
	// Segments counts completed segment downloads fleet-wide.
	Segments int
	// Stalls and StallSec count rebuffering events and their total duration.
	Stalls   int
	StallSec float64
	// EnergyMJ, QoESum, and Bits accumulate finished sessions' energy
	// totals, session mean QoE, and downloaded bits.
	EnergyMJ float64
	QoESum   float64
	Bits     float64
	// Emergencies counts finished sessions' emergency controller decisions.
	Emergencies int
	// ViewportUpdates counts head-pose refresh ticks.
	ViewportUpdates int
	// Events counts every processed event; EventsByKind splits it by Kind.
	Events       int
	EventsByKind [5]int
	// BatchLeaders, BatchReplays, and BatchFallbacks decompose the batched
	// planner's steps: full scalar plans run on behalf of a group, steps
	// resolved by replaying a leader's plan, and steps that could not be
	// fingerprinted. All zero under PlannerScalar. Leaders + Replays +
	// Fallbacks equals the segment steps taken on the batched path.
	BatchLeaders   int
	BatchReplays   int
	BatchFallbacks int
}

// add folds another ledger in (shard roll-up).
func (l *Ledger) add(o Ledger) {
	l.Joined += o.Joined
	l.Finished += o.Finished
	l.Segments += o.Segments
	l.Stalls += o.Stalls
	l.StallSec += o.StallSec
	l.EnergyMJ += o.EnergyMJ
	l.QoESum += o.QoESum
	l.Bits += o.Bits
	l.Emergencies += o.Emergencies
	l.ViewportUpdates += o.ViewportUpdates
	l.Events += o.Events
	for k := range l.EventsByKind {
		l.EventsByKind[k] += o.EventsByKind[k]
	}
	l.BatchLeaders += o.BatchLeaders
	l.BatchReplays += o.BatchReplays
	l.BatchFallbacks += o.BatchFallbacks
}

// shard is one independent event queue plus the structure-of-arrays state
// columns for the sessions it owns (global session i lives on shard
// i % Shards at local slot i / Shards). A shard is advanced by at most one
// goroutine at a time; its stepper and heap are never shared.
type shard struct {
	eng     *Engine
	stepper *sim.Stepper
	heap    Heap
	clock   float64

	// Per-slot columns. states is nil before join and after leave, so a
	// retired session costs one pointer.
	global  []int
	states  []*sim.State
	pending []sim.StepInfo
	vpEvent []ID
	leave   []int32
	// flight is the per-slot black-box column, nil when Config.Flight is
	// unset; unsampled slots hold nil sessions.
	flight []*obs.FlightSession

	// joins is the shard's join schedule, sorted by (time, spec order), and
	// joinPos the next unjoined session. The whole wave is known at
	// construction, so it never touches the heap: a million-session fleet
	// starts with an empty heap instead of a million-entry one, and each
	// join costs a cursor bump instead of an O(log n) pop. Joins order
	// before heap events at the same timestamp — exactly the order the
	// heap gave them when they were pushed first with the lowest ids.
	joins   []joinEv
	joinPos int

	// arena bump-allocates session states in chunks, so a join costs 1/256th
	// of an allocation instead of one. Chunks are reclaimed wholesale once
	// every session living in them has left.
	arena    []sim.State
	arenaPos int

	// Batched-planner scratch: the run of same-(time, kind) events being
	// processed and the StepBatch workspace. Reused across runs.
	scratch    *sim.BatchScratch
	runMembers []runMember
	runStates  []*sim.State
	runInfos   []sim.StepInfo

	led Ledger
	err error
}

// runMember is one event of a same-(time, kind) run: its session/slot and,
// for members that step, the index of their state in the batch (stepIdx < 0
// marks a segment-complete member that leaves instead of stepping).
type runMember struct {
	session int
	slot    int
	stepIdx int32
}

// joinEv is one entry of a shard's static join schedule.
type joinEv struct {
	time    float64
	session int
}

// stateChunk is the arena chunk size in sessions.
const stateChunk = 256

// allocState returns a fresh uninitialized State from the shard's arena.
func (sh *shard) allocState() *sim.State {
	if sh.arenaPos == len(sh.arena) {
		sh.arena = make([]sim.State, stateChunk)
		sh.arenaPos = 0
	}
	st := &sh.arena[sh.arenaPos]
	sh.arenaPos++
	return st
}

// Engine advances a fleet of sessions on per-shard virtual clocks.
type Engine struct {
	cfg     Config
	specs   []SessionSpec
	shards  []*shard
	results []*sim.Result
	reg     *obs.Registry
	met     fleetMetrics
	pub     Ledger
}

// fleetMetrics are the obs series the engine publishes after every Advance.
type fleetMetrics struct {
	active    *obs.Gauge
	clock     *obs.Gauge
	joined    *obs.Counter
	finished  *obs.Counter
	segments  *obs.Counter
	stalls    *obs.Counter
	stallSec  *obs.Counter
	energyMJ  *obs.Counter
	bits      *obs.Counter
	events    [5]*obs.Counter
	shardsG   *obs.Gauge
	sessionsG *obs.Gauge

	batchLeaders   *obs.Counter
	batchReplays   *obs.Counter
	batchFallbacks *obs.Counter
}

// New builds an engine over the given session population. Construction is
// cheap per session (join events only); per-session state is allocated when
// the join event fires.
func New(cfg Config, specs []SessionSpec) (*Engine, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("fleet: need at least one shard, got %d", cfg.Shards)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: no sessions")
	}
	if cfg.ViewportUpdateSec < 0 {
		return nil, fmt.Errorf("fleet: negative viewport update interval %g", cfg.ViewportUpdateSec)
	}
	if cfg.Planner != PlannerBatched && cfg.Planner != PlannerScalar {
		return nil, fmt.Errorf("fleet: unknown planner mode %d", int(cfg.Planner))
	}
	for i, spec := range specs {
		if spec.JoinSec < 0 {
			return nil, fmt.Errorf("fleet: session %d joins at negative time %g", i, spec.JoinSec)
		}
		if spec.LeaveAfterSegments < 0 {
			return nil, fmt.Errorf("fleet: session %d has negative leave count", i)
		}
	}
	if cfg.Shards > len(specs) {
		cfg.Shards = len(specs)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:     cfg,
		specs:   specs,
		shards:  make([]*shard, cfg.Shards),
		results: make([]*sim.Result, len(specs)),
		reg:     reg,
	}
	e.registerMetrics()
	for si := range e.shards {
		// One stepper per shard: steppers carry mutable planning scratch and
		// must not be shared, but every copy is built from the same
		// (catalogue, config) pair so the math is identical on any shard.
		stepper, err := sim.NewStepper(cfg.Catalog, cfg.Sim)
		if err != nil {
			return nil, err
		}
		n := (len(specs) - si + cfg.Shards - 1) / cfg.Shards
		sh := &shard{
			eng:     e,
			stepper: stepper,
			global:  make([]int, n),
			states:  make([]*sim.State, n),
			pending: make([]sim.StepInfo, n),
			vpEvent: make([]ID, n),
			leave:   make([]int32, n),
		}
		if cfg.Flight != nil {
			sh.flight = make([]*obs.FlightSession, n)
		}
		if cfg.Planner == PlannerBatched {
			sh.scratch = sim.NewBatchScratch(sim.BatchOptions{NoQuant: cfg.BatchNoQuant})
		}
		e.shards[si] = sh
	}
	for i, spec := range specs {
		sh := e.shards[i%cfg.Shards]
		slot := i / cfg.Shards
		sh.global[slot] = i
		sh.leave[slot] = int32(spec.LeaveAfterSegments)
		sh.joins = append(sh.joins, joinEv{time: spec.JoinSec, session: i})
	}
	for _, sh := range e.shards {
		// Ordering by (time, session) equals a stable sort by time: appends
		// ran in ascending session order, so this keeps the order the heap's
		// push-sequence ids used to impose on equal join times.
		slices.SortFunc(sh.joins, func(a, b joinEv) int {
			if a.time != b.time {
				return cmp.Compare(a.time, b.time)
			}
			return cmp.Compare(a.session, b.session)
		})
		// Steady state keeps at most two heap events per live session (the
		// pending completion plus a stall or viewport tick); reserving that
		// up front avoids append-doubling memmoves during the join wave.
		sh.heap.Reserve(2 * len(sh.joins))
	}
	return e, nil
}

func (e *Engine) registerMetrics() {
	m := &e.met
	m.active = e.reg.Gauge("fleet_sessions_active", "Sessions currently streaming.")
	m.clock = e.reg.Gauge("fleet_clock_seconds", "Lowest pending virtual timestamp across shards.")
	m.joined = e.reg.Counter("fleet_sessions_joined_total", "Sessions that have joined.")
	m.finished = e.reg.Counter("fleet_sessions_finished_total", "Sessions that have left.")
	m.segments = e.reg.Counter("fleet_segments_total", "Segment downloads completed fleet-wide.")
	m.stalls = e.reg.Counter("fleet_stalls_total", "Rebuffering stalls fleet-wide.")
	m.stallSec = e.reg.Counter("fleet_stall_seconds_total", "Total rebuffering time fleet-wide.")
	m.energyMJ = e.reg.Counter("fleet_energy_mj_total", "Energy of finished sessions (mJ).")
	m.bits = e.reg.Counter("fleet_bits_downloaded_total", "Bits downloaded by finished sessions.")
	for k := range m.events {
		m.events[k] = e.reg.Counter("fleet_events_total", "Virtual-clock events processed.",
			obs.L("kind", Kind(k).String()))
	}
	m.shardsG = e.reg.Gauge("fleet_shards", "Configured shard count.")
	m.sessionsG = e.reg.Gauge("fleet_sessions_total", "Configured session count.")
	m.batchLeaders = e.reg.Counter("fleet_batch_leaders_total",
		"Batched-planner steps that ran a full plan on behalf of a group.")
	m.batchReplays = e.reg.Counter("fleet_batch_replays_total",
		"Batched-planner steps resolved by replaying a group leader's plan.")
	m.batchFallbacks = e.reg.Counter("fleet_batch_fallbacks_total",
		"Batched-planner steps that fell back to scalar planning.")
}

// Registry returns the registry carrying the fleet metrics.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Sessions returns the configured session count.
func (e *Engine) Sessions() int { return len(e.specs) }

// Advance processes every event with timestamp ≤ until on all shards, using
// at most Workers goroutines (never more than one per shard), then
// publishes the aggregate ledger to the metrics registry. It must not be
// called concurrently with itself or with Ledger/Results.
func (e *Engine) Advance(until float64) error {
	err := parallel.ForEach(len(e.shards), e.workers(), func(si int) error {
		return e.shards[si].advance(until)
	})
	e.publish()
	return err
}

// Run advances until every shard's event queue is empty.
func (e *Engine) Run() error { return e.Advance(math.Inf(1)) }

func (e *Engine) workers() int {
	w := e.cfg.Workers
	if w <= 0 || w > len(e.shards) {
		w = len(e.shards)
	}
	return w
}

// NextEventTime returns the earliest pending virtual timestamp across
// shards, or false when the fleet has fully drained.
func (e *Engine) NextEventTime() (float64, bool) {
	t, ok := math.Inf(1), false
	for _, sh := range e.shards {
		if j := sh.joinPos; j < len(sh.joins) && sh.joins[j].time < t {
			t, ok = sh.joins[j].time, true
		}
		if st, sok := sh.heap.PeekTime(); sok && st < t {
			t, ok = st, true
		}
	}
	return t, ok
}

// Ledger aggregates the per-shard ledgers in shard order.
func (e *Engine) Ledger() Ledger {
	var l Ledger
	for _, sh := range e.shards {
		l.add(sh.led)
	}
	l.Active = l.Joined - l.Finished
	return l
}

// Results returns the per-session results in spec order. Sessions that have
// not yet left are nil.
func (e *Engine) Results() []*sim.Result { return e.results }

// publish pushes the aggregate ledger into the obs registry. Counters
// receive the delta since the last publish, so scraped values equal the
// ledger exactly between Advance calls.
func (e *Engine) publish() {
	l := e.Ledger()
	m := &e.met
	m.active.Set(float64(l.Active))
	if t, ok := e.NextEventTime(); ok {
		m.clock.Set(t)
	}
	m.joined.Add(float64(l.Joined - e.pub.Joined))
	m.finished.Add(float64(l.Finished - e.pub.Finished))
	m.segments.Add(float64(l.Segments - e.pub.Segments))
	m.stalls.Add(float64(l.Stalls - e.pub.Stalls))
	m.stallSec.Add(l.StallSec - e.pub.StallSec)
	m.energyMJ.Add(l.EnergyMJ - e.pub.EnergyMJ)
	m.bits.Add(l.Bits - e.pub.Bits)
	for k := range m.events {
		m.events[k].Add(float64(l.EventsByKind[k] - e.pub.EventsByKind[k]))
	}
	m.batchLeaders.Add(float64(l.BatchLeaders - e.pub.BatchLeaders))
	m.batchReplays.Add(float64(l.BatchReplays - e.pub.BatchReplays))
	m.batchFallbacks.Add(float64(l.BatchFallbacks - e.pub.BatchFallbacks))
	m.shardsG.Set(float64(len(e.shards)))
	m.sessionsG.Set(float64(len(e.specs)))
	e.pub = l
}

// advance drains the shard's queue up to the time horizon. With the batched
// planner, runs of decision events sharing one virtual timestamp are popped
// together and planned as one StepBatch; everything else (and everything
// under PlannerScalar) takes the one-event path.
func (sh *shard) advance(until float64) error {
	if sh.err != nil {
		return sh.err
	}
	batched := sh.scratch != nil
	for {
		// Next occurrence: the join cursor merges with the heap top. Joins win
		// ties — they carried the lowest push-sequence ids back when they
		// lived on the heap, so this keeps the old pop order exactly.
		ev, hok := sh.heap.Peek()
		if j := sh.joinPos; j < len(sh.joins) && (!hok || sh.joins[j].time <= ev.Time) {
			ev = Event{Time: sh.joins[j].time, Kind: KindJoin, Session: sh.joins[j].session}
		} else if !hok {
			return nil
		}
		if ev.Time > until {
			return nil
		}
		if batched && (ev.Kind == KindSegmentComplete || ev.Kind == KindJoin) {
			if err := sh.advanceRun(ev.Time, ev.Kind); err != nil {
				sh.err = fmt.Errorf("fleet: %s run at t=%.3f: %w", ev.Kind, ev.Time, err)
				return sh.err
			}
			continue
		}
		if ev.Kind == KindJoin {
			sh.joinPos++
		} else {
			sh.heap.Pop()
		}
		sh.clock = ev.Time
		sh.led.Events++
		sh.led.EventsByKind[ev.Kind]++
		if err := sh.handle(ev); err != nil {
			sh.err = fmt.Errorf("fleet: session %d (%s at t=%.3f): %w", ev.Session, ev.Kind, ev.Time, err)
			return sh.err
		}
	}
}

// advanceRun processes the maximal run of queued events with timestamp t and
// the given kind as one batch, in three phases whose combined heap traffic
// reproduces the scalar path's pop/push sequence exactly:
//
//  1. Pop the whole run. Run members were all pushed before anything a
//     member's handling could push at time t, so the scalar path would pop
//     exactly this run first; popping it up front changes nothing. Joins
//     bind their states here; completions classify into step vs leave.
//  2. Plan every stepping member with one StepBatch call — this is where
//     decision-identical sessions collapse onto shared work.
//  3. Walk the run in pop order performing each member's pushes (leave,
//     viewport tick, stall-resume, segment-complete) exactly as its scalar
//     handler would have — same pushes, same order, so the heap's insertion
//     sequence, and with it every future tie-break, is bit-identical.
func (sh *shard) advanceRun(t float64, kind Kind) error {
	sh.clock = t
	sh.runMembers = sh.runMembers[:0]
	sh.runStates = sh.runStates[:0]

	// Phase 1: pop the run and bind/classify members. Joins drain from the
	// static schedule cursor (all same-time joins precede any heap event at
	// that time, so the run is exactly the cursor's same-time prefix);
	// completions pop from the heap.
	switch kind {
	case KindJoin:
		for sh.joinPos < len(sh.joins) && sh.joins[sh.joinPos].time == t {
			session := sh.joins[sh.joinPos].session
			sh.joinPos++
			sh.led.Events++
			sh.led.EventsByKind[KindJoin]++
			slot := sh.slot(session)
			spec := sh.eng.specs[session]
			state := sh.allocState()
			if err := sh.stepper.InitState(state, spec.User, spec.Net); err != nil {
				return err
			}
			sh.states[slot] = state
			sh.led.Joined++
			sh.flightJoin(t, slot, session)
			sh.runMembers = append(sh.runMembers, runMember{
				session: session, slot: slot, stepIdx: int32(len(sh.runStates)),
			})
			sh.runStates = append(sh.runStates, state)
		}
	case KindSegmentComplete:
		for {
			ev, ok := sh.heap.Peek()
			if !ok || ev.Time != t || ev.Kind != kind {
				break
			}
			sh.heap.Pop()
			sh.led.Events++
			sh.led.EventsByKind[kind]++
			slot := sh.slot(ev.Session)
			m := runMember{session: ev.Session, slot: slot, stepIdx: -1}
			sh.led.Segments++
			info := sh.pending[slot]
			state := sh.states[slot]
			sh.reportViewport(ev.Session, state)
			sh.flightDownload(t, slot, state, info)
			if !info.Done && (sh.leave[slot] == 0 || state.Segments() < int(sh.leave[slot])) {
				m.stepIdx = int32(len(sh.runStates))
				sh.runStates = append(sh.runStates, state)
			}
			sh.runMembers = append(sh.runMembers, m)
		}
	}

	// Phase 2: one batched plan for every stepping member.
	if len(sh.runStates) > 0 {
		if cap(sh.runInfos) < len(sh.runStates) {
			sh.runInfos = make([]sim.StepInfo, len(sh.runStates))
		}
		sh.runInfos = sh.runInfos[:len(sh.runStates)]
		stats, err := sh.stepper.StepBatch(sh.scratch, sh.runStates, sh.runInfos)
		sh.led.BatchLeaders += stats.Leaders
		sh.led.BatchReplays += stats.Replays
		sh.led.BatchFallbacks += stats.Fallbacks
		if err != nil {
			return err
		}
	}

	// Phase 3: perform each member's pushes in pop order.
	vp := sh.eng.cfg.ViewportUpdateSec
	for _, m := range sh.runMembers {
		if m.stepIdx < 0 {
			sh.heap.Push(t, KindLeave, m.session)
			continue
		}
		if kind == KindJoin && vp > 0 {
			sh.vpEvent[m.slot] = sh.heap.PushCancellable(t+vp, KindViewportUpdate, m.session)
		}
		info := sh.runInfos[m.stepIdx]
		sh.pending[m.slot] = info
		done := t + info.WaitSec + info.DownloadSec
		if info.StallSec > 0 {
			sh.heap.Push(done, KindStallResume, m.session)
		}
		sh.heap.Push(done, KindSegmentComplete, m.session)
	}
	return nil
}

func (sh *shard) slot(session int) int { return session / len(sh.eng.shards) }

// flightJoin passes a joining session through the flight recorder's sampling
// gate and records its join event. A no-op without Config.Flight.
func (sh *shard) flightJoin(t float64, slot, session int) {
	if sh.flight == nil {
		return
	}
	fsess := sh.eng.cfg.Flight.SessionN(session)
	sh.flight[slot] = fsess
	if fsess != nil {
		fsess.Record(obs.FlightEvent{TimeSec: t, Kind: obs.FlightJoin, Seg: -1})
	}
}

// flightDownload records one completed segment download into the session's
// black box: v1 = download seconds, v2 = stall seconds, v3 = the session's
// bandwidth estimate (bps). A no-op for unsampled sessions.
func (sh *shard) flightDownload(t float64, slot int, state *sim.State, info sim.StepInfo) {
	if sh.flight == nil {
		return
	}
	fsess := sh.flight[slot]
	if fsess == nil || state == nil {
		return
	}
	fsess.Record(obs.FlightEvent{TimeSec: t, Kind: obs.FlightDownload,
		Seg: int32(info.Segment), V1: info.DownloadSec, V2: info.StallSec, V3: state.EstimateBps()})
}

// reportViewport feeds the just-completed segment's trace viewing center to
// the configured ViewportSink (a no-op without one).
func (sh *shard) reportViewport(session int, state *sim.State) {
	sink := sh.eng.cfg.ViewportSink
	if sink == nil || state == nil {
		return
	}
	seg := state.Segments() - 1
	if seg < 0 {
		return
	}
	c, err := sh.eng.specs[session].User.ViewingCenter(seg, sh.eng.cfg.Catalog.SegmentSec)
	if err != nil {
		return
	}
	sink(session, seg, c)
}

func (sh *shard) handle(ev Event) error {
	slot := sh.slot(ev.Session)
	switch ev.Kind {
	case KindJoin:
		spec := sh.eng.specs[ev.Session]
		state := sh.allocState()
		if err := sh.stepper.InitState(state, spec.User, spec.Net); err != nil {
			return err
		}
		sh.states[slot] = state
		sh.led.Joined++
		sh.flightJoin(ev.Time, slot, ev.Session)
		if vp := sh.eng.cfg.ViewportUpdateSec; vp > 0 {
			sh.vpEvent[slot] = sh.heap.PushCancellable(ev.Time+vp, KindViewportUpdate, ev.Session)
		}
		return sh.stepOnce(ev.Time, slot, ev.Session)

	case KindSegmentComplete:
		sh.led.Segments++
		info := sh.pending[slot]
		state := sh.states[slot]
		sh.reportViewport(ev.Session, state)
		sh.flightDownload(ev.Time, slot, state, info)
		if info.Done || (sh.leave[slot] > 0 && state.Segments() >= int(sh.leave[slot])) {
			sh.heap.Push(ev.Time, KindLeave, ev.Session)
			return nil
		}
		return sh.stepOnce(ev.Time, slot, ev.Session)

	case KindStallResume:
		sh.led.Stalls++
		sh.led.StallSec += sh.pending[slot].StallSec
		if sh.flight != nil {
			if fsess := sh.flight[slot]; fsess != nil {
				fsess.Record(obs.FlightEvent{TimeSec: ev.Time, Kind: obs.FlightStall,
					Seg: int32(sh.pending[slot].Segment), V1: sh.pending[slot].StallSec})
			}
		}
		return nil

	case KindViewportUpdate:
		if sh.states[slot] == nil {
			return nil
		}
		sh.led.ViewportUpdates++
		sh.vpEvent[slot] = sh.heap.PushCancellable(ev.Time+sh.eng.cfg.ViewportUpdateSec, KindViewportUpdate, ev.Session)
		return nil

	case KindLeave:
		res, err := sh.stepper.Finish(sh.states[slot])
		if err != nil {
			return err
		}
		// Distinct indices per session: shards never write the same slot.
		sh.eng.results[ev.Session] = res
		sh.led.Finished++
		sh.led.EnergyMJ += res.Energy.Total()
		sh.led.QoESum += res.QoE.MeanQ
		sh.led.Bits += res.BitsDownloaded
		sh.led.Emergencies += res.Emergencies
		if sh.vpEvent[slot] != 0 {
			sh.heap.Cancel(sh.vpEvent[slot])
			sh.vpEvent[slot] = 0
		}
		if sh.flight != nil {
			if fsess := sh.flight[slot]; fsess != nil {
				fsess.Record(obs.FlightEvent{TimeSec: ev.Time, Kind: obs.FlightLeave, Seg: -1,
					V1: res.Energy.Total(), V2: res.QoE.MeanQ})
				fsess.Close()
				sh.flight[slot] = nil
			}
		}
		sh.states[slot] = nil
		return nil
	}
	return fmt.Errorf("unknown event kind %d", ev.Kind)
}

// stepOnce advances one session by one segment and schedules its
// completion. The stall-resume event (playback restarting the instant the
// blocking download delivers) is pushed first so it pops before the
// completion event at the shared timestamp.
func (sh *shard) stepOnce(now float64, slot, session int) error {
	info, err := sh.stepper.Step(sh.states[slot])
	if err != nil {
		return err
	}
	sh.pending[slot] = info
	done := now + info.WaitSec + info.DownloadSec
	if info.StallSec > 0 {
		sh.heap.Push(done, KindStallResume, session)
	}
	sh.heap.Push(done, KindSegmentComplete, session)
	return nil
}
