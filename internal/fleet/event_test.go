package fleet

import "testing"

func TestHeapOrderingAndCancel(t *testing.T) {
	var h Heap
	a := h.Push(3, KindSegmentComplete, 0)
	b := h.Push(1, KindJoin, 1)
	c := h.Push(2, KindViewportUpdate, 2)
	d := h.Push(1, KindStallResume, 3) // ties with b; b pushed first, pops first
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if !h.Cancel(c) {
		t.Fatal("cancel of pending event failed")
	}
	if h.Cancel(c) {
		t.Fatal("double cancel succeeded")
	}
	if h.Len() != 3 {
		t.Fatalf("Len after cancel = %d, want 3", h.Len())
	}
	if tm, ok := h.PeekTime(); !ok || tm != 1 {
		t.Fatalf("PeekTime = %g,%v, want 1,true", tm, ok)
	}
	wantSessions := []int{1, 3, 0}
	for i, want := range wantSessions {
		ev, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d: heap empty", i)
		}
		if ev.Session != want {
			t.Fatalf("pop %d: session %d, want %d", i, ev.Session, want)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop from drained heap succeeded")
	}
	if h.Cancel(a) || h.Cancel(b) || h.Cancel(d) {
		t.Fatal("cancel of popped event succeeded")
	}
	if h.Cancel(0) || h.Cancel(ID(99)) {
		t.Fatal("cancel of never-issued id succeeded")
	}
}

// FuzzEventHeapOrdering drives the heap through random interleavings of
// push, cancel, and pop, checking against a flat reference model that (a)
// every pop returns the minimum (time, push-order) among live events, (b)
// cancelled events never surface, (c) no live event is lost, and (d) Cancel
// reports exactly whether the handle was still pending.
func FuzzEventHeapOrdering(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 10, 2, 3, 0, 0, 2, 0, 0, 0, 5, 3})
	f.Add([]byte{0, 1, 1, 0, 1, 2, 0, 1, 3, 2, 1, 0, 3, 0, 0, 3, 0, 0})
	f.Add([]byte{3, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Heap
		type rec struct {
			time      float64
			cancelled bool
			popped    bool
		}
		recs := make(map[ID]*rec)
		var ids []ID
		live := func() int {
			n := 0
			for _, r := range recs {
				if !r.cancelled && !r.popped {
					n++
				}
			}
			return n
		}
		checkPop := func() {
			ev, ok := h.Pop()
			if !ok {
				if live() != 0 {
					t.Fatalf("pop reported empty with %d live events", live())
				}
				return
			}
			r := recs[ID(ev.id)]
			if r == nil {
				t.Fatalf("popped unknown id %d", ev.id)
			}
			if r.cancelled {
				t.Fatalf("popped cancelled event %d", ev.id)
			}
			if r.popped {
				t.Fatalf("popped event %d twice", ev.id)
			}
			if r.time != ev.Time {
				t.Fatalf("event %d popped with time %g, pushed at %g", ev.id, ev.Time, r.time)
			}
			// Minimality: nothing live may order before the popped event.
			for id, o := range recs {
				if o.cancelled || o.popped {
					continue
				}
				if o.time < ev.Time || (o.time == ev.Time && uint64(id) < ev.id) {
					t.Fatalf("popped (%g,%d) while (%g,%d) was live", ev.Time, ev.id, o.time, id)
				}
			}
			r.popped = true
		}
		for i := 0; i+2 < len(data); i += 3 {
			switch data[i] % 4 {
			case 0, 1: // push (weighted: populated heaps find more bugs)
				// Coarse timestamps so equal-time ties are common.
				tm := float64(data[i+1]%32) / 4
				id := h.Push(tm, Kind(data[i+2]%5), int(data[i+2]))
				recs[id] = &rec{time: tm}
				ids = append(ids, id)
			case 2: // cancel a known handle (possibly already popped/cancelled)
				if len(ids) == 0 {
					continue
				}
				id := ids[int(data[i+1])%len(ids)]
				r := recs[id]
				want := !r.cancelled && !r.popped
				if got := h.Cancel(id); got != want {
					t.Fatalf("Cancel(%d) = %v, want %v (cancelled=%v popped=%v)",
						id, got, want, r.cancelled, r.popped)
				}
				if want {
					r.cancelled = true
				}
			case 3:
				checkPop()
			}
			if h.Len() != live() {
				t.Fatalf("Len = %d, model has %d live", h.Len(), live())
			}
		}
		// Drain: every live event must come out, in order.
		for h.Len() > 0 {
			checkPop()
		}
		if live() != 0 {
			t.Fatalf("heap drained with %d live events lost", live())
		}
		if _, ok := h.Pop(); ok {
			t.Fatal("pop from drained heap succeeded")
		}
	})
}
