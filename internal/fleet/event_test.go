package fleet

import "testing"

func TestHeapOrderingAndCancel(t *testing.T) {
	var h Heap
	h.Push(3, KindSegmentComplete, 0) // id 1
	h.Push(1, KindJoin, 1)            // id 2
	c := h.PushCancellable(2, KindViewportUpdate, 2)
	h.Push(1, KindStallResume, 3) // ties with id 2; pushed later, pops later
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if !h.Cancel(c) {
		t.Fatal("cancel of pending event failed")
	}
	if h.Cancel(c) {
		t.Fatal("double cancel succeeded")
	}
	if h.Len() != 3 {
		t.Fatalf("Len after cancel = %d, want 3", h.Len())
	}
	if tm, ok := h.PeekTime(); !ok || tm != 1 {
		t.Fatalf("PeekTime = %g,%v, want 1,true", tm, ok)
	}
	if ev, ok := h.Peek(); !ok || ev.Session != 1 || ev.Kind != KindJoin {
		t.Fatalf("Peek = %+v,%v, want join of session 1", ev, ok)
	}
	wantSessions := []int{1, 3, 0}
	for i, want := range wantSessions {
		pk, pok := h.Peek()
		ev, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d: heap empty", i)
		}
		if !pok || pk != ev {
			t.Fatalf("pop %d: Peek %+v,%v disagrees with Pop %+v", i, pk, pok, ev)
		}
		if ev.Session != want {
			t.Fatalf("pop %d: session %d, want %d", i, ev.Session, want)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop from drained heap succeeded")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("peek at drained heap succeeded")
	}
	// Uncancellable events never accept their (internal) ids; popped
	// cancellable and never-issued handles also refuse.
	if h.Cancel(ID(1)) || h.Cancel(ID(2)) || h.Cancel(ID(4)) {
		t.Fatal("cancel of uncancellable event succeeded")
	}
	if h.Cancel(0) || h.Cancel(ID(99)) {
		t.Fatal("cancel of never-issued id succeeded")
	}
}

// FuzzEventHeapOrdering drives the heap through random interleavings of
// plain push, cancellable push, cancel, and pop, checking against a flat
// reference model that (a) every pop returns the minimum (time, push-order)
// among live events, (b) cancelled events never surface, (c) no live event
// is lost, (d) Cancel reports exactly whether the handle named a
// still-pending cancellable event, and (e) Peek always agrees with Pop.
func FuzzEventHeapOrdering(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 10, 2, 3, 0, 0, 2, 0, 0, 0, 5, 3})
	f.Add([]byte{1, 1, 1, 1, 1, 2, 0, 1, 3, 2, 1, 0, 3, 0, 0, 3, 0, 0})
	f.Add([]byte{3, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Heap
		type rec struct {
			time        float64
			cancellable bool
			cancelled   bool
			popped      bool
		}
		recs := make(map[ID]*rec)
		var ids []ID
		var modelNext uint64 // mirrors the heap's internal push sequence
		live := func() int {
			n := 0
			for _, r := range recs {
				if !r.cancelled && !r.popped {
					n++
				}
			}
			return n
		}
		checkPop := func() {
			pk, pok := h.Peek()
			ev, ok := h.Pop()
			if pok != ok || (ok && pk != ev) {
				t.Fatalf("Peek %+v,%v disagrees with Pop %+v,%v", pk, pok, ev, ok)
			}
			if !ok {
				if live() != 0 {
					t.Fatalf("pop reported empty with %d live events", live())
				}
				return
			}
			r := recs[ID(ev.id)]
			if r == nil {
				t.Fatalf("popped unknown id %d", ev.id)
			}
			if r.cancelled {
				t.Fatalf("popped cancelled event %d", ev.id)
			}
			if r.popped {
				t.Fatalf("popped event %d twice", ev.id)
			}
			if r.time != ev.Time {
				t.Fatalf("event %d popped with time %g, pushed at %g", ev.id, ev.Time, r.time)
			}
			// Minimality: nothing live may order before the popped event.
			for id, o := range recs {
				if o.cancelled || o.popped {
					continue
				}
				if o.time < ev.Time || (o.time == ev.Time && uint64(id) < ev.id) {
					t.Fatalf("popped (%g,%d) while (%g,%d) was live", ev.Time, ev.id, o.time, id)
				}
			}
			r.popped = true
		}
		for i := 0; i+2 < len(data); i += 3 {
			switch data[i] % 4 {
			case 0: // plain push: no cancellation handle
				tm := float64(data[i+1]%32) / 4
				h.Push(tm, Kind(data[i+2]%5), int(data[i+2]))
				modelNext++
				recs[ID(modelNext)] = &rec{time: tm}
				ids = append(ids, ID(modelNext))
			case 1: // cancellable push
				tm := float64(data[i+1]%32) / 4
				id := h.PushCancellable(tm, Kind(data[i+2]%5), int(data[i+2]))
				modelNext++
				if id != ID(modelNext) {
					t.Fatalf("handle %d, model expects %d", id, modelNext)
				}
				recs[id] = &rec{time: tm, cancellable: true}
				ids = append(ids, id)
			case 2: // cancel a known handle (possibly uncancellable/popped/cancelled)
				if len(ids) == 0 {
					continue
				}
				id := ids[int(data[i+1])%len(ids)]
				r := recs[id]
				want := r.cancellable && !r.cancelled && !r.popped
				if got := h.Cancel(id); got != want {
					t.Fatalf("Cancel(%d) = %v, want %v (cancellable=%v cancelled=%v popped=%v)",
						id, got, want, r.cancellable, r.cancelled, r.popped)
				}
				if want {
					r.cancelled = true
				}
			case 3:
				checkPop()
			}
			if h.Len() != live() {
				t.Fatalf("Len = %d, model has %d live", h.Len(), live())
			}
		}
		// Drain: every live event must come out, in order.
		for h.Len() > 0 {
			checkPop()
		}
		if live() != 0 {
			t.Fatalf("heap drained with %d live events lost", live())
		}
		if _, ok := h.Pop(); ok {
			t.Fatal("pop from drained heap succeeded")
		}
	})
}
