package fleet

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"ptile360/internal/lte"
	"ptile360/internal/sim"
)

// runPlanner builds and drains one engine with the given planner mode.
func runPlanner(t *testing.T, cfg sim.Config, specs []SessionSpec, planner PlannerMode, noQuant bool, workers int) *Engine {
	t.Helper()
	fx := fixture(t)
	eng, err := New(Config{
		Catalog:           fx.cat,
		Sim:               cfg,
		Shards:            4,
		Workers:           workers,
		ViewportUpdateSec: 0.5,
		Planner:           planner,
		BatchNoQuant:      noQuant,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBatchedPlannerMatchesScalar is the fleet-level differential pin for
// the tentpole: across schemes (both Ours controllers), bandwidth seeds,
// worker counts, and quantization modes, the batched planner must produce
// per-session results bit-identical to the scalar planner — including the
// full per-segment traces — and an identical ledger apart from the batch
// decomposition counters themselves. It also checks the batch counters are
// consistent: scalar runs report zeros; batched runs account every step.
func TestBatchedPlannerMatchesScalar(t *testing.T) {
	fx := fixture(t)
	cases := []struct {
		scheme sim.Scheme
		qoeMPC bool
		prof   lte.Profile
		seed   int64
	}{
		{sim.SchemePtile, false, lte.ProfileWalking, 3},
		{sim.SchemeCtile, false, lte.ProfileDriving, 9},
		{sim.SchemeOurs, false, lte.ProfileWalking, 3},
		{sim.SchemeOurs, false, lte.ProfileDriving, 11},
		{sim.SchemeOurs, true, lte.ProfileWalking, 5},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%v/qoempc=%v/seed=%d", tc.scheme, tc.qoeMPC, tc.seed)
		t.Run(name, func(t *testing.T) {
			net := netFor(t, tc.prof, tc.seed)
			cfg := simConfig(t, tc.scheme)
			cfg.UseQoEMPC = tc.qoeMPC
			specs := specsFor(fx, net, 200)

			scalar := runPlanner(t, cfg, specs, PlannerScalar, false, 1)
			sLed := scalar.Ledger()
			if sLed.BatchLeaders != 0 || sLed.BatchReplays != 0 || sLed.BatchFallbacks != 0 {
				t.Fatalf("scalar planner reported batch work: %+v", sLed)
			}
			for _, workers := range []int{1, 8} {
				for _, noQuant := range []bool{false, true} {
					batched := runPlanner(t, cfg, specs, PlannerBatched, noQuant, workers)
					label := fmt.Sprintf("workers=%d noquant=%v", workers, noQuant)
					for i := range scalar.Results() {
						requireSameResult(t, fmt.Sprintf("%s session %d", label, i),
							batched.Results()[i], scalar.Results()[i])
					}
					bLed := batched.Ledger()
					// Every join steps once and every segment completion
					// steps again unless it retires the session instead.
					want := bLed.Joined + bLed.Segments - bLed.Finished
					if steps := bLed.BatchLeaders + bLed.BatchReplays + bLed.BatchFallbacks; steps != want {
						t.Fatalf("%s: batch counters %d don't cover the %d steps taken",
							label, steps, want)
					}
					if bLed.BatchReplays == 0 {
						t.Fatalf("%s: batched planner never shared work: %+v", label, bLed)
					}
					bLed.BatchLeaders, bLed.BatchReplays, bLed.BatchFallbacks = 0, 0, 0
					if !reflect.DeepEqual(bLed, sLed) {
						t.Fatalf("%s: ledgers diverged:\nbatched: %+v\nscalar:  %+v", label, bLed, sLed)
					}
				}
			}
		})
	}
}

// TestFleetSteadyStateAllocs bounds the event loop's steady-state
// allocation rate. After the join wave, advancing the fleet must stay well
// under one allocation per event: session state comes from shard arenas,
// estimator windows live inline, non-cancellable events skip the pending
// map, and batch replays reuse the leader's plan.
func TestFleetSteadyStateAllocs(t *testing.T) {
	fx := fixture(t)
	net := netFor(t, lte.ProfileWalking, 3)
	cfg := simConfig(t, sim.SchemePtile)
	cfg.RecordSegments = false // per-segment traces are real per-event allocations
	eng, err := New(Config{Catalog: fx.cat, Sim: cfg, Shards: 1, Workers: 1}, specsFor(fx, net, 500))
	if err != nil {
		t.Fatal(err)
	}
	// Warm through the join wave (joins end at t=3) plus a margin so arenas,
	// heaps, and batch scratch have reached steady-state capacity.
	if err := eng.Advance(5); err != nil {
		t.Fatal(err)
	}
	before := eng.Ledger().Events
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := eng.Advance(18); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	events := eng.Ledger().Events - before
	if events < 2000 {
		t.Fatalf("window too small to measure: %d events", events)
	}
	perEvent := float64(m1.Mallocs-m0.Mallocs) / float64(events)
	t.Logf("%d events, %d allocs, %.4f allocs/event", events, m1.Mallocs-m0.Mallocs, perEvent)
	// The seed event loop ran at ~1.15 allocs/event; the budget here is the
	// regression tripwire for the rebuilt loop.
	if perEvent > 0.25 {
		t.Fatalf("steady-state allocation rate %.4f allocs/event exceeds 0.25", perEvent)
	}
}
