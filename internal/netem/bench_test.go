package netem

import (
	"io"
	"testing"
)

// BenchmarkNetemDownload measures one 4 Mbit segment through the
// packet-level path (bufferbloat profile: ~334 MTU packets per download).
func BenchmarkNetemDownload(b *testing.B) {
	p, err := Named("bufferbloat")
	if err != nil {
		b.Fatal(err)
	}
	n, err := NewSessionNet(SessionConfig{Profile: p, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tWall := 0.0
	for i := 0; i < b.N; i++ {
		dur, err := n.Download(4e6, tWall)
		if err != nil {
			b.Fatal(err)
		}
		tWall += dur + 1
	}
}

// BenchmarkNetemDownloadPaced is the same segment with the interval-budget
// paced sender engaged.
func BenchmarkNetemDownloadPaced(b *testing.B) {
	p, err := Named("bufferbloat")
	if err != nil {
		b.Fatal(err)
	}
	n, err := NewSessionNet(SessionConfig{Profile: p, Seed: 1, SegmentSec: 1, PaceFactor: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tWall := 0.0
	for i := 0; i < b.N; i++ {
		dur, err := n.Download(4e6, tWall)
		if err != nil {
			b.Fatal(err)
		}
		tWall += dur + 1
	}
}

// BenchmarkPacerWrite measures the paced writer on a virtual clock pushing
// a 64 KB chunk (the server's segment write unit).
func BenchmarkPacerWrite(b *testing.B) {
	var now float64
	pw, err := NewPacedWriter(io.Discard, 40e6,
		func() float64 { return now },
		func(sec float64) { now += sec },
		nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pw.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}
