// Package netem is a deterministic, seeded, in-process packet-level network
// emulator: per-link capacity, propagation delay, queue depth, random loss,
// and competing-flow cross traffic, all driven by time-indexed schedules
// (step drops, linear ramps, on/off cross flows).
//
// The segment-granularity Markov process in internal/lte draws one
// throughput number per second; everything a real mobile link does *within*
// a download — standing queues (bufferbloat), delay growth under competing
// flows, capacity collapse mid-transfer — is invisible to it. netem models
// the bottleneck itself: app packets and fluid cross traffic share one
// droptail FIFO queue drained at the scheduled capacity, so queuing delay,
// loss, and retransmission emerge from the schedule instead of being
// sampled. The per-packet send/arrival timestamps it produces are exactly
// the signal a delay-gradient bandwidth estimator (predict.DelayGradient)
// needs, which segment-level traces cannot provide.
//
// Three integration surfaces share the same Link core:
//
//   - SessionNet: a virtual-time download path for the simulator and the
//     httpstream client — bit-deterministic for a fixed (profile, seed),
//     independent of wall clock, goroutine scheduling, and worker counts.
//   - Conn/Listener/Dialer: a net.Conn shim that runs a real HTTP
//     client/server pair over the emulated link in (compressed) real time,
//     composing with internal/faultinject above it.
//   - Pacer/PacedWriter: an interval-budget paced sender for the server
//     path, so segment bursts stop building their own bottleneck queue.
package netem

import (
	"fmt"
	"math"
	"sort"
)

// Params is the link state at one instant.
type Params struct {
	// CapacityBps is the bottleneck service rate in bits/s; 0 means
	// unlimited (no queueing).
	CapacityBps float64
	// RTTSec is the round-trip propagation delay excluding queueing.
	RTTSec float64
	// QueueBytes caps the droptail bottleneck queue; 0 means unbounded
	// (the bufferbloat regime).
	QueueBytes float64
	// LossProb is the i.i.d. end-to-end packet loss probability.
	LossProb float64
	// CrossBps is the fluid competing-flow rate entering the same
	// bottleneck queue.
	CrossBps float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.CapacityBps < 0 || math.IsNaN(p.CapacityBps) || math.IsInf(p.CapacityBps, 0) {
		return fmt.Errorf("netem: bad capacity %g", p.CapacityBps)
	}
	if p.RTTSec < 0 || math.IsNaN(p.RTTSec) || p.RTTSec > 60 {
		return fmt.Errorf("netem: RTT %g outside [0, 60]", p.RTTSec)
	}
	if p.QueueBytes < 0 || math.IsNaN(p.QueueBytes) || math.IsInf(p.QueueBytes, 0) {
		return fmt.Errorf("netem: bad queue depth %g", p.QueueBytes)
	}
	if p.LossProb < 0 || p.LossProb >= 1 || math.IsNaN(p.LossProb) {
		return fmt.Errorf("netem: loss probability %g outside [0, 1)", p.LossProb)
	}
	if p.CrossBps < 0 || math.IsNaN(p.CrossBps) || math.IsInf(p.CrossBps, 0) {
		return fmt.Errorf("netem: bad cross-traffic rate %g", p.CrossBps)
	}
	return nil
}

// Phase is one schedule entry: the link holds (or ramps toward) Params from
// StartSec until the next phase begins.
type Phase struct {
	// StartSec is when the phase begins, relative to the schedule origin.
	StartSec float64
	// Ramp interpolates linearly from the previous phase's parameters to
	// this phase's over [previous.StartSec, StartSec] instead of stepping.
	Ramp bool
	Params
}

// Profile is a named link schedule.
type Profile struct {
	// Name identifies the profile in flags, metrics, and result files.
	Name string
	// Phases is the schedule, ascending by StartSec, first at 0.
	Phases []Phase
	// RepeatSec wraps the schedule clock so sessions longer than the
	// schedule keep evolving; 0 holds the last phase forever.
	RepeatSec float64
	// MTUBytes is the packetization unit; 0 means DefaultMTU.
	MTUBytes int
}

// DefaultMTU is the packetization unit when a profile does not set one.
const DefaultMTU = 1500

// rampTick subdivides ramp phases into constant-parameter steps, keeping the
// queue integration and service solver exactly piecewise-constant.
const rampTick = 0.1

// MTU returns the profile's packetization unit.
func (p *Profile) MTU() int {
	if p.MTUBytes <= 0 {
		return DefaultMTU
	}
	return p.MTUBytes
}

// Validate reports whether the profile is usable.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("netem: unnamed profile")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("netem: profile %q has no phases", p.Name)
	}
	if p.Phases[0].StartSec != 0 {
		return fmt.Errorf("netem: profile %q first phase starts at %g, want 0", p.Name, p.Phases[0].StartSec)
	}
	if p.Phases[0].Ramp {
		return fmt.Errorf("netem: profile %q first phase cannot ramp", p.Name)
	}
	prev := -1.0
	for i, ph := range p.Phases {
		if math.IsNaN(ph.StartSec) || math.IsInf(ph.StartSec, 0) || ph.StartSec < 0 {
			return fmt.Errorf("netem: profile %q phase %d bad start %g", p.Name, i, ph.StartSec)
		}
		if ph.StartSec <= prev {
			return fmt.Errorf("netem: profile %q phase %d start %g not ascending", p.Name, i, ph.StartSec)
		}
		prev = ph.StartSec
		if err := ph.Params.Validate(); err != nil {
			return fmt.Errorf("netem: profile %q phase %d: %w", p.Name, i, err)
		}
	}
	if p.RepeatSec < 0 || math.IsNaN(p.RepeatSec) || math.IsInf(p.RepeatSec, 0) {
		return fmt.Errorf("netem: profile %q bad repeat %g", p.Name, p.RepeatSec)
	}
	if p.RepeatSec > 0 && p.RepeatSec <= p.Phases[len(p.Phases)-1].StartSec {
		return fmt.Errorf("netem: profile %q repeat %g not past last phase start %g",
			p.Name, p.RepeatSec, p.Phases[len(p.Phases)-1].StartSec)
	}
	if p.MTUBytes < 0 || p.MTUBytes > 65536 {
		return fmt.Errorf("netem: profile %q MTU %d outside [0, 65536]", p.Name, p.MTUBytes)
	}
	return nil
}

// schedule is a compiled profile: a piecewise-constant parameter timeline
// (ramps pre-subdivided at rampTick), binary-searchable by time.
type schedule struct {
	starts    []float64
	params    []Params
	repeatSec float64
}

// compile flattens the profile into constant steps. Validate must have
// passed.
func (p *Profile) compile() *schedule {
	s := &schedule{repeatSec: p.RepeatSec}
	for i, ph := range p.Phases {
		if !ph.Ramp || i == 0 {
			s.starts = append(s.starts, ph.StartSec)
			s.params = append(s.params, ph.Params)
			continue
		}
		from := p.Phases[i-1]
		span := ph.StartSec - from.StartSec
		steps := int(math.Ceil(span / rampTick))
		if steps < 1 {
			steps = 1
		}
		for k := 1; k <= steps; k++ {
			frac := float64(k) / float64(steps)
			t := from.StartSec + frac*span
			s.starts = append(s.starts, t)
			s.params = append(s.params, lerpParams(from.Params, ph.Params, frac))
		}
	}
	return s
}

func lerpParams(a, b Params, frac float64) Params {
	l := func(x, y float64) float64 { return x + (y-x)*frac }
	return Params{
		CapacityBps: l(a.CapacityBps, b.CapacityBps),
		RTTSec:      l(a.RTTSec, b.RTTSec),
		QueueBytes:  l(a.QueueBytes, b.QueueBytes),
		LossProb:    l(a.LossProb, b.LossProb),
		CrossBps:    l(a.CrossBps, b.CrossBps),
	}
}

// wrap maps absolute time onto the schedule clock.
func (s *schedule) wrap(t float64) float64 {
	if t < 0 {
		return 0
	}
	if s.repeatSec > 0 && t >= s.repeatSec {
		t = math.Mod(t, s.repeatSec)
	}
	return t
}

// at returns the parameters in force at absolute time t.
func (s *schedule) at(t float64) Params {
	w := s.wrap(t)
	// Index of the last start <= w.
	i := sort.SearchFloat64s(s.starts, w)
	if i == len(s.starts) || s.starts[i] > w {
		i--
	}
	if i < 0 {
		i = 0
	}
	return s.params[i]
}

// nextBoundary returns the first schedule breakpoint strictly after absolute
// time t, or +Inf when the schedule holds its last phase forever.
func (s *schedule) nextBoundary(t float64) float64 {
	if s.repeatSec > 0 {
		base := math.Floor(t/s.repeatSec) * s.repeatSec
		w := t - base
		i := sort.SearchFloat64s(s.starts, w)
		for i < len(s.starts) && s.starts[i] <= w {
			i++
		}
		// base+start can round back onto t; skip such candidates so the
		// boundary is strictly after (advance/serviceDone must not spin).
		for ; i < len(s.starts); i++ {
			if cand := base + s.starts[i]; cand > t {
				return cand
			}
		}
		if cand := base + s.repeatSec; cand > t {
			return cand
		}
		return base + 2*s.repeatSec
	}
	i := sort.SearchFloat64s(s.starts, t)
	for i < len(s.starts) && s.starts[i] <= t {
		i++
	}
	if i < len(s.starts) {
		return s.starts[i]
	}
	return math.Inf(1)
}
